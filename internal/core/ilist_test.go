package core

import (
	"fmt"
	"testing"
	"unsafe"

	"gbpolar/internal/geom"
	"gbpolar/internal/mathx"
	"gbpolar/internal/sched"
)

// The compiled interaction-list path (ilist.go + kernels.go) must
// reproduce the recursive reference traversals to floating-point noise:
// the lists record exactly the far/near decomposition the recursion
// takes, and the batch kernels mirror its arithmetic term-for-term.
// Single-threaded runs keep the summation order fixed, so the 1e-12
// relative tolerance is far above the only real difference (the exact
// kernels' x·(1/√f) reassociation).
func TestCompiledMatchesRecursive(t *testing.T) {
	// EpsBorn/EpsEpol = 0 is expressed as 1e-12 (withDefaults treats 0 as
	// unset); epolFarFactor makes any eps ≤ tiny effectively "never far",
	// which is the ε=0 semantics the recursion has.
	for _, kern := range []BornKernel{R6, R4} {
		for _, strict := range []bool{false, true} {
			for _, eps := range []float64{1e-12, 0.5, 0.9} {
				name := fmt.Sprintf("%v/strict=%v/eps=%g", kern, strict, eps)
				t.Run(name, func(t *testing.T) {
					params := Params{
						EpsBorn: eps, EpsEpol: eps, EpsSolv: 80,
						Kernel: kern, StrictBornMAC: strict,
					}
					sys, _, _ := testSystem(t, 260, 91, params)
					compareCompiledRecursive(t, sys, 1e-12)
				})
			}
		}
	}
}

// Approximate math swaps both paths onto the same fast kernels; the
// compiled sweep must still agree.
func TestCompiledMatchesRecursiveApproxMath(t *testing.T) {
	params := DefaultParams()
	params.Math = mathx.Approximate
	sys, _, _ := testSystem(t, 260, 92, params)
	compareCompiledRecursive(t, sys, 1e-12)
}

func compareCompiledRecursive(t *testing.T, sys *System, tol float64) {
	t.Helper()
	rec, err := RunShared(sys, SharedOptions{Threads: 1, Recursive: true})
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := RunShared(sys, SharedOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(cmp.Epol, rec.Epol); e > tol {
		t.Errorf("Epol compiled %v vs recursive %v (rel %.3g)", cmp.Epol, rec.Epol, e)
	}
	for i := range rec.BornRadii {
		if e := relErr(cmp.BornRadii[i], rec.BornRadii[i]); e > tol {
			t.Fatalf("atom %d Born radius compiled %v vs recursive %v (rel %.3g)",
				i, cmp.BornRadii[i], rec.BornRadii[i], e)
		}
	}
}

// The rigid-transform reuse invariant: after Repose the cached lists are
// still exactly what a fresh compilation would produce, and evaluating
// through them matches a fresh recursive run of the moved system.
func TestCompiledListsSurviveRigidTransform(t *testing.T) {
	sys, _, _ := testSystem(t, 300, 93, DefaultParams())
	sys.Params.DebugCheckLists = true // every run re-verifies the lists

	before, err := RunShared(sys, SharedOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	lists := sys.Lists(nil)

	tr := geom.Translate(geom.V(17, -4, 9)).Compose(geom.RotateAxis(geom.V(1, 2, 3), 0.8))
	sys.ApplyRigidTransform(tr)
	if got := sys.Lists(nil); got != lists {
		t.Fatal("rigid transform invalidated the compiled lists")
	}
	if err := sys.RecheckLists(nil); err != nil {
		t.Fatalf("lists drifted after rigid transform: %v", err)
	}

	moved, err := RunShared(sys, SharedOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RunShared(sys, SharedOptions{Threads: 1, Recursive: true})
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(moved.Epol, rec.Epol); e > 1e-12 {
		t.Errorf("moved compiled %v vs moved recursive %v (rel %.3g)", moved.Epol, rec.Epol, e)
	}

	// Round trip back: the energy is invariant under rigid motion, so the
	// original value must return (up to the kernels' rotation sensitivity).
	sys.ApplyRigidTransform(tr.Inverse())
	after, err := RunShared(sys, SharedOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(after.Epol, before.Epol); e > 1e-9 {
		t.Errorf("round-trip energy %v vs original %v (rel %.3g)", after.Epol, before.Epol, e)
	}
}

// Non-rigid geometry changes and parameter changes must not be served by
// stale lists.
func TestCompiledListsInvalidation(t *testing.T) {
	sys, mol, _ := testSystem(t, 300, 94, DefaultParams())
	lists := sys.Lists(nil)

	// UpdateAtoms is non-rigid: the cache must drop.
	pos := mol.Positions()
	for i := range pos {
		pos[i].X += 0.25 * float64(i%5)
	}
	if _, err := sys.UpdateAtoms(pos); err != nil {
		t.Fatal(err)
	}
	if got := sys.Lists(nil); got == lists {
		t.Fatal("UpdateAtoms did not invalidate the compiled lists")
	}

	// A parameter change flips the opening criterion: the signature check
	// must trigger a recompile even without an explicit invalidation.
	lists = sys.Lists(nil)
	sys.Params.EpsEpol = 0.4
	if got := sys.Lists(nil); got == lists {
		t.Fatal("EpsEpol change did not recompile the lists")
	}
	if err := sys.RecheckLists(nil); err != nil {
		t.Fatal(err)
	}
}

// Multi-threaded compiled runs agree with the recursive path to the same
// tolerance the repo grants any two stealing schedules.
func TestCompiledMatchesRecursiveParallel(t *testing.T) {
	sys, _, _ := testSystem(t, 400, 95, DefaultParams())
	rec, err := RunShared(sys, SharedOptions{Threads: 4, Recursive: true})
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := RunShared(sys, SharedOptions{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(cmp.Epol, rec.Epol); e > 1e-9 {
		t.Errorf("Epol compiled %v vs recursive %v (rel %.3g)", cmp.Epol, rec.Epol, e)
	}
}

// Both worker accumulators occupy whole cache lines so adjacent workers
// never false-share their hot counters (born.go / epol.go reference this
// test by name).
func TestAccumulatorsCacheLineSized(t *testing.T) {
	if s := unsafe.Sizeof(epolAccum{}); s != 64 {
		t.Errorf("epolAccum is %d bytes, want exactly 64", s)
	}
	if s := unsafe.Sizeof(bornAccum{}); s != 128 {
		t.Errorf("bornAccum is %d bytes, want exactly 128 (two lines)", s)
	}
}

// A warm engine re-evaluating the same pose must not allocate per-pair or
// per-leaf state: lists are cached, scratch comes from pools, kernels are
// allocation-free. The budget covers per-call accumulators, the Result
// and scheduler bookkeeping — all O(workers + atoms), none O(pairs).
func TestComputeSharedWarmAllocs(t *testing.T) {
	sys, mol, _ := testSystem(t, 500, 96, DefaultParams())
	pool := sched.NewPool(2)
	defer pool.Close()
	opts := SharedOptions{Pool: pool}
	if _, err := RunShared(sys, opts); err != nil { // warm: compiles lists
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := RunShared(sys, opts); err != nil {
			t.Fatal(err)
		}
	})
	// The per-run slices (bornAccum node/atom vectors, slot radii, the
	// epol histograms) dominate; anything growing with interaction count
	// would blow far past this.
	budget := 200 + float64(mol.NumAtoms())/10
	if allocs > budget {
		t.Errorf("warm ComputeShared allocates %.0f objects per run (budget %.0f)", allocs, budget)
	}
}

// Compiled op accounting stays faithful to the evaluated work: tighter
// epsilon means more near-field pairs, so more ops — the property the
// plumbing tests rely on.
func TestCompiledOpsMonotoneInEps(t *testing.T) {
	var ops []float64
	for _, eps := range []float64{0.2, 0.9} {
		params := DefaultParams()
		params.EpsBorn, params.EpsEpol = eps, eps
		sys, _, _ := testSystem(t, 300, 97, params)
		res, err := RunShared(sys, SharedOptions{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, res.Ops)
	}
	if ops[0] <= ops[1] {
		t.Errorf("ops at eps 0.2 (%v) not above eps 0.9 (%v)", ops[0], ops[1])
	}
}
