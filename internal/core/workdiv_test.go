package core

import (
	"math"
	"testing"

	"gbpolar/internal/mathx"
)

func TestSchemeString(t *testing.T) {
	if NodeNode.String() != "node-node" || AtomNode.String() != "atom-node" ||
		AtomAtom.String() != "atom-atom" {
		t.Error("Scheme.String broken")
	}
	if Scheme(9).String() == "" {
		t.Error("unknown scheme should still print")
	}
}

func TestSchemesAgreeApproximately(t *testing.T) {
	sys, mol, surf := testSystem(t, 500, 91, DefaultParams())
	naiveE, _ := NaiveEnergy(mol, surf, 80, mathx.Exact)
	for _, sc := range []Scheme{NodeNode, AtomNode, AtomAtom} {
		res, err := RunDistributedScheme(sys, distCfg(4, 1, 4, 1), sc)
		if err != nil {
			t.Fatalf("%v: %v", sc, err)
		}
		if e := relErr(res.Epol, naiveE); e > 0.06 {
			t.Errorf("%v: energy error vs naive %.2f%%", sc, 100*e)
		}
	}
}

// Node-based division yields the same result for every P (modulo
// floating-point summation order); atom-based division's approximation
// structure genuinely changes with the boundaries.
func TestNodeDivisionErrorIndependentOfP(t *testing.T) {
	sys, _, _ := testSystem(t, 500, 92, DefaultParams())
	var energies []float64
	for _, p := range []int{1, 3, 5} {
		res, err := RunDistributedScheme(sys, distCfg(p, 1, p, 1), NodeNode)
		if err != nil {
			t.Fatal(err)
		}
		energies = append(energies, res.Epol)
	}
	for i := 1; i < len(energies); i++ {
		if relErr(energies[i], energies[0]) > 1e-9 {
			t.Errorf("node-node energy changed with P: %v vs %v", energies[i], energies[0])
		}
	}
}

func TestAtomDivisionErrorVariesWithP(t *testing.T) {
	// The P-dependence enters through the Born phase: boundary-split
	// nodes lose the far-field shortcut and recurse deeper. The r⁻⁶ MAC
	// factor at ε=0.9 is ≈18.7× (far pairs are rare on small proteins),
	// so use a larger ε_Born where the far field actually fires.
	params := Params{EpsBorn: 3.0, EpsEpol: 0.9, EpsSolv: 80}
	sys, _, _ := testSystem(t, 2000, 93, params)
	var energies []float64
	for _, p := range []int{1, 3, 5} {
		res, err := RunDistributedScheme(sys, distCfg(p, 1, p, 1), AtomAtom)
		if err != nil {
			t.Fatal(err)
		}
		energies = append(energies, res.Epol)
	}
	// With P=1 the range covers everything, so it matches node-node; with
	// P=3/5 the boundaries split nodes and the value must move by more
	// than floating-point noise.
	if relErr(energies[1], energies[0]) < 1e-12 && relErr(energies[2], energies[0]) < 1e-12 {
		t.Errorf("atom-based division suspiciously P-independent: %v", energies)
	}
}

// Atom-based Born division traverses every q-leaf on every rank: more
// traversal work than node-based ("atom-node work division takes
// slightly more time than the purely node based", Section IV.A).
func TestAtomDivisionCostsMoreOps(t *testing.T) {
	sys, _, _ := testSystem(t, 600, 94, DefaultParams())
	nn, err := RunDistributedScheme(sys, distCfg(6, 1, 6, 1), NodeNode)
	if err != nil {
		t.Fatal(err)
	}
	an, err := RunDistributedScheme(sys, distCfg(6, 1, 6, 1), AtomNode)
	if err != nil {
		t.Fatal(err)
	}
	if an.Ops <= nn.Ops {
		t.Errorf("atom-node ops %v not above node-node ops %v", an.Ops, nn.Ops)
	}
}

func TestAtomRangeBornMatchesFullWhenSingleRank(t *testing.T) {
	sys, _, _ := testSystem(t, 300, 95, DefaultParams())
	mac := sys.bornMAC()
	macs := sys.bornMACs()
	full := newBornAccum(sys)
	ranged := newBornAccum(sys)
	for _, q := range sys.QPts.Leaves() {
		ApproxIntegrals(sys, full, sys.Atoms.Root(), q, &macs)
		ApproxIntegralsAtomRange(sys, ranged, sys.Atoms.Root(), q, mac,
			0, int32(sys.Mol.NumAtoms()))
	}
	for i := range full.node {
		if full.node[i] != ranged.node[i] {
			t.Fatalf("node %d: %v vs %v", i, full.node[i], ranged.node[i])
		}
	}
	for i := range full.atom {
		if full.atom[i] != ranged.atom[i] {
			t.Fatalf("atom %d: %v vs %v", i, full.atom[i], ranged.atom[i])
		}
	}
}

func TestAtomRangePartitionSumsToFull(t *testing.T) {
	// Splitting the atom range across "ranks" and summing accumulators
	// must cover every atom's s_a exactly once (node fields may differ —
	// that is the scheme's approximation artifact — but leaf-exact atom
	// terms partition cleanly).
	sys, _, _ := testSystem(t, 300, 96, DefaultParams())
	mac := sys.bornMAC()
	n := sys.Mol.NumAtoms()
	parts := newBornAccum(sys)
	for r := 0; r < 3; r++ {
		lo, hi := segment(n, 3, r)
		acc := newBornAccum(sys)
		for _, q := range sys.QPts.Leaves() {
			ApproxIntegralsAtomRange(sys, acc, sys.Atoms.Root(), q, mac, int32(lo), int32(hi))
		}
		// Atoms outside the owned range must be untouched.
		for i := 0; i < n; i++ {
			if (i < lo || i >= hi) && acc.atom[i] != 0 {
				t.Fatalf("rank %d wrote atom %d outside [%d,%d)", r, i, lo, hi)
			}
		}
		parts.add(acc)
	}
	// The union of the per-rank accumulators must produce finite,
	// physical Born radii for every atom (contributions may arrive via
	// either the leaf-exact atom terms or ancestor node terms).
	radii := make([]float64, n)
	PushIntegralsToAtoms(sys, parts, 0, n, radii)
	for i, r := range radii {
		if r <= 0 || math.IsNaN(r) {
			t.Fatalf("atom %d has radius %v after partitioned accumulation", i, r)
		}
	}
}
