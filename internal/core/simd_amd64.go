//go:build amd64

package core

// Runtime dispatch for the AVX2+FMA near-block kernels (simd_amd64.s).
// The assembly serves only the non-exact precision tiers: the exact tier
// keeps the scalar float64 loops (its contract is "today's semantics,
// unchanged results"), and the portable lane code in kernels_lanes.go /
// kernels_f32.go remains the reference implementation — the tests force
// useAsmKernels off to pin the laned tier's bit-compatibility claim, and
// TestAsmKernelsMatchPortable bounds the asm path against the portable
// one far inside the tiers' 1e-4 accuracy class.

// cpuidex and xgetbv0 are the CPUID/XGETBV primitives behind feature
// detection (implemented in simd_amd64.s).
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

//go:noescape
func epolNearBlock4(ax, ay, az, ch, rad, irad, vx, vy, vz, cv, rv, irv []float64) float64

//go:noescape
func epolNearBlock8x32(ax, ay, az, ch, rad, vx, vy, vz, cv, rv []float32) float64

//go:noescape
func bornNearBlock4R6(ax, ay, az, out, qx, qy, qz, wx, wy, wz []float64)

//go:noescape
func bornNearBlock8R6x32(ax, ay, az []float32, out []float64, qx, qy, qz, wx, wy, wz []float32)

// detectAVX2FMA reports whether the host can run the YMM kernels: AVX2
// and FMA present, and the OS saving XMM+YMM state across context
// switches (OSXSAVE + XCR0).
func detectAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const osxsave, avx, fma = 1 << 27, 1 << 28, 1 << 12
	_, _, ecx1, _ := cpuidex(1, 0)
	if ecx1&osxsave == 0 || ecx1&avx == 0 || ecx1&fma == 0 {
		return false
	}
	if xlo, _ := xgetbv0(); xlo&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}

// useAsmKernels gates the assembly near-block kernels. Mutable only by
// tests (which single-thread their runs); everything else treats it as
// a constant resolved at startup.
var useAsmKernels = detectAVX2FMA()

// epolNearBlockLanesAsm sweeps one near block of the laned tier through
// the width-4 AVX2 kernel: the whole u-leaf × row-slice block in one
// call, sym weight applied to the returned block energy.
func epolNearBlockLanesAsm(ctx *EpolContext, sys *System, ul int32, vx, vy, vz, cv, rv, irv []float64, w float64, acc *epolAccum) {
	u := &sys.Atoms.Nodes[ul]
	lo, hi := u.Start, u.End
	e := epolNearBlock4(
		sys.AtomX[lo:hi], sys.AtomY[lo:hi], sys.AtomZ[lo:hi],
		sys.Charge[lo:hi], ctx.Radii[lo:hi], ctx.invRadii[lo:hi],
		vx, vy, vz, cv, rv, irv)
	acc.energy += w * e
}

// epolNearBlockF32Asm is the float32 width-8 variant for the f32 tier.
func epolNearBlockF32Asm(ctx *EpolContext, f *f32SoA, sys *System, ul int32, vx, vy, vz, cv, rv []float32, w float64, acc *epolAccum) {
	u := &sys.Atoms.Nodes[ul]
	lo, hi := u.Start, u.End
	e := epolNearBlock8x32(
		f.atomX[lo:hi], f.atomY[lo:hi], f.atomZ[lo:hi],
		f.charge[lo:hi], ctx.radii32[lo:hi],
		vx, vy, vz, cv, rv)
	acc.energy += w * e
}

// bornNearBlockAsmR6 sweeps one Born near entry (atom leaf lo:hi against
// the row's q-point slices) through the width-4 R6 kernel, accumulating
// into out (the absolute per-atom integral array).
func bornNearBlockAsmR6(sys *System, lo, hi int32, out []float64, qx, qy, qz, wx, wy, wz []float64) {
	bornNearBlock4R6(
		sys.AtomX[lo:hi], sys.AtomY[lo:hi], sys.AtomZ[lo:hi], out[lo:hi],
		qx, qy, qz, wx, wy, wz)
}

// bornNearBlockAsmR6x32 is the float32 width-8 Born variant.
func bornNearBlockAsmR6x32(f *f32SoA, lo, hi int32, out []float64, qx, qy, qz, wx, wy, wz []float32) {
	bornNearBlock8R6x32(
		f.atomX[lo:hi], f.atomY[lo:hi], f.atomZ[lo:hi], out[lo:hi],
		qx, qy, qz, wx, wy, wz)
}
