package core

import (
	"runtime"
	"testing"

	"gbpolar/internal/geom"
	"gbpolar/internal/sched"
)

// benchWarmPoseFarOrder times the warm pose-scan (compiled lists reused
// across rigid poses) at a given far order — the workload the pareto
// bench experiment reports per (ε, FarOrder) cell. Run with -cpuprofile
// to see where the moment-correction time goes.
func benchWarmPoseFarOrder(b *testing.B, ord int, eps float64) {
	b.Helper()
	params := DefaultParams()
	params.EpsBorn, params.EpsEpol = eps, eps
	params.FarOrder = ord
	sys, _, _ := testSystem(b, 8000, 42, params)
	pool := sched.NewPool(runtime.GOMAXPROCS(0))
	defer pool.Close()
	opts := SharedOptions{Pool: pool}
	if _, err := RunShared(sys, opts); err != nil {
		b.Fatal(err)
	}
	step := geom.Translate(geom.V(1.5, -0.7, 0.9)).Compose(geom.RotateAxis(geom.V(0, 0, 1), 0.05))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.ApplyRigidTransform(step)
		if _, err := RunShared(sys, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWarmPoseFarOrder0(b *testing.B) { benchWarmPoseFarOrder(b, 0, 0.3) }
func BenchmarkWarmPoseFarOrder1(b *testing.B) { benchWarmPoseFarOrder(b, 1, 0.3) }
func BenchmarkWarmPoseFarOrder2(b *testing.B) { benchWarmPoseFarOrder(b, 2, 0.3) }

// The equal-error pair of the pareto experiment: order 2 at the
// loosened ε=0.5 lands at or below the order-0 ε=0.3 error (the
// anchor above) and must win this benchmark.
func BenchmarkWarmPoseFarOrder2Loose(b *testing.B) { benchWarmPoseFarOrder(b, 2, 0.5) }
