package core

import (
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"
	"os"

	"gbpolar/internal/geom"
	"gbpolar/internal/mathx"
	"gbpolar/internal/molecule"
	"gbpolar/internal/octree"
	"gbpolar/internal/surface"
	"gbpolar/internal/wire"
)

// This file is the checkpoint format of the multi-process runner: a
// versioned, parameter-stamped binary snapshot of a System — molecule,
// surface, both octrees and (when compiled) the interaction lists — so a
// crashed-and-restarted coordinator resumes from the preprocessed state
// instead of rebuilding trees and recompiling lists. The format is
// deliberately hostile-input safe: every array length is validated
// against the bytes remaining before allocation (internal/wire), the
// whole payload is covered by a CRC-32C trailer, and every structural
// invariant the kernels rely on (CSR shape, index bounds, permutation
// and geometry consistency) is re-checked on load, so a truncated,
// bit-flipped or adversarial snapshot fails with a typed error and can
// never panic the kernels downstream.

// Typed snapshot failures, distinguishable with errors.Is.
var (
	// ErrSnapshotCorrupt reports a snapshot that is truncated, fails its
	// checksum, or violates a structural invariant.
	ErrSnapshotCorrupt = errors.New("core: snapshot corrupt")
	// ErrSnapshotVersion reports a snapshot written by an incompatible
	// format version.
	ErrSnapshotVersion = errors.New("core: snapshot version unsupported")
	// ErrSnapshotParams reports a well-formed snapshot whose parameter
	// stamp does not match the parameters the caller is running under.
	ErrSnapshotParams = errors.New("core: snapshot parameter mismatch")
)

const (
	snapshotMagic = "GBPSNAP1"
	// Version 2 added the far-order machinery: Params.FarOrder in the
	// parameter stamp, the octrees' moment registries, and the per-entry
	// admitted orders (FarOrd) plus the compiled farOrder in the list
	// block. Version-1 snapshots are refused with ErrSnapshotVersion —
	// their lists lack the orders the kernels now require.
	snapshotVersion = 2
)

var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// appendParams writes the canonical parameter encoding — the bytes the
// fingerprint hashes and the file stores. DebugCheckLists is excluded:
// it is a runtime verification knob that does not affect any computed
// state, so toggling it must not invalidate checkpoints.
func appendParams(w *wire.Writer, p Params) {
	w.F64(p.EpsBorn)
	w.F64(p.EpsEpol)
	w.F64(p.EpsSolv)
	w.U8(uint8(p.Math))
	w.U8(uint8(p.Kernel))
	w.U8(uint8(p.Precision))
	w.U8(uint8(p.Builder))
	w.Bool(p.StrictBornMAC)
	w.U32(uint32(p.LeafCap))
	w.U8(uint8(p.FarOrder))
}

// ParamsFingerprint hashes the result-determining parameters (after
// defaulting) to the 64-bit stamp embedded in snapshots: two runs agree
// on the fingerprint exactly when a snapshot from one is a valid
// checkpoint for the other.
func ParamsFingerprint(p Params) uint64 {
	var w wire.Writer
	appendParams(&w, p.withDefaults())
	h := fnv.New64a()
	h.Write(w.Bytes())
	return h.Sum64()
}

// EncodeSnapshot serializes the system. It refuses a system whose octree
// geometry has diverged from its molecule/surface (a re-posed System
// transforms the trees in place but not the input structures), since the
// loader re-derives payloads from the inputs and would silently restore
// pre-transform state.
func EncodeSnapshot(sys *System) ([]byte, error) {
	if err := checkGeometryConsistent(sys.Mol, sys.Surf, sys.Atoms, sys.QPts); err != nil {
		return nil, fmt.Errorf("core: snapshot of transformed system: %v", err)
	}
	var w wire.Writer
	w.Raw([]byte(snapshotMagic))
	w.U16(snapshotVersion)
	w.U64(ParamsFingerprint(sys.Params))
	appendParams(&w, sys.Params)

	w.Str(sys.Mol.Name)
	atoms := make([]float64, 0, 5*len(sys.Mol.Atoms))
	for _, a := range sys.Mol.Atoms {
		atoms = append(atoms, a.Pos.X, a.Pos.Y, a.Pos.Z, a.Charge, a.Radius)
	}
	w.F64s(atoms)

	w.I32(int32(sys.Surf.Level))
	w.I32(int32(sys.Surf.Degree))
	w.F64(sys.Surf.Area)
	pts := make([]float64, 0, 7*len(sys.Surf.Points))
	for _, p := range sys.Surf.Points {
		pts = append(pts, p.Pos.X, p.Pos.Y, p.Pos.Z, p.Normal.X, p.Normal.Y, p.Normal.Z, p.Weight)
	}
	w.F64s(pts)

	sys.Atoms.AppendTo(&w)
	sys.QPts.AppendTo(&w)

	sys.listsMu.Lock()
	lists := sys.lists
	sys.listsMu.Unlock()
	if lists.matches(sys) {
		w.Bool(true)
		w.F64(lists.bornMAC)
		w.F64(lists.epolFar)
		w.U8(uint8(lists.farOrder))
		appendIL(&w, lists.Born)
		appendIL(&w, lists.Epol)
		nodeC := make([]float64, 0, 3*len(lists.nodeC))
		for _, c := range lists.nodeC {
			nodeC = append(nodeC, c.X, c.Y, c.Z)
		}
		w.F64s(nodeC)
		w.F64s(lists.nodeR)
	} else {
		w.Bool(false)
	}

	w.U32(crc32.Checksum(w.Bytes(), snapshotCRC))
	return w.Bytes(), nil
}

// DecodeSnapshot reconstructs a System from EncodeSnapshot's output,
// restoring the stamped parameters. Check order: magic/size and CRC
// (ErrSnapshotCorrupt), version (ErrSnapshotVersion), parameter-stamp
// self-consistency (ErrSnapshotParams), then structure. The octrees are
// NOT rebuilt and the interaction lists (when present) NOT recompiled —
// that is the point of checkpointing.
func DecodeSnapshot(data []byte) (*System, error) {
	if len(data) < len(snapshotMagic)+2+4 || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	body := data[:len(data)-4]
	r := wire.NewReader(data[len(snapshotMagic) : len(data)-4])
	if v := r.U16(); v != snapshotVersion {
		return nil, fmt.Errorf("%w: version %d, this build reads %d", ErrSnapshotVersion, v, snapshotVersion)
	}
	// CRC after the version gate: a future-version snapshot should report
	// "too new", not "corrupt", even though its layout is unknown here.
	stored := uint32(data[len(data)-4]) | uint32(data[len(data)-3])<<8 |
		uint32(data[len(data)-2])<<16 | uint32(data[len(data)-1])<<24
	if crc32.Checksum(body, snapshotCRC) != stored {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrSnapshotCorrupt)
	}

	stamp := r.U64()
	params, err := decodeParams(r)
	if err != nil {
		return nil, err
	}
	if got := ParamsFingerprint(params); got != stamp {
		return nil, fmt.Errorf("%w: stamp %016x does not cover stored parameters (%016x)",
			ErrSnapshotParams, stamp, got)
	}

	mol, err := decodeMolecule(r)
	if err != nil {
		return nil, err
	}
	surf, err := decodeSurface(r)
	if err != nil {
		return nil, err
	}

	ta, err := octree.DecodeTree(r)
	if err != nil {
		return nil, fmt.Errorf("%w: atoms octree: %v", ErrSnapshotCorrupt, err)
	}
	tq, err := octree.DecodeTree(r)
	if err != nil {
		return nil, fmt.Errorf("%w: q-points octree: %v", ErrSnapshotCorrupt, err)
	}
	if err := checkGeometryConsistent(mol, surf, ta, tq); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}

	var lists *CompiledLists
	if r.Bool() {
		cl := &CompiledLists{bornMAC: r.F64(), epolFar: r.F64(), farOrder: int(r.U8())}
		cl.Born = decodeIL(r)
		cl.Epol = decodeIL(r)
		nodeC := r.F64s()
		cl.nodeR = r.F64s()
		if r.Err() != nil {
			return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, r.Err())
		}
		if len(nodeC) != 3*ta.NumNodes() || len(cl.nodeR) != ta.NumNodes() {
			return nil, fmt.Errorf("%w: node geometry arrays sized %d/%d for %d nodes",
				ErrSnapshotCorrupt, len(nodeC), len(cl.nodeR), ta.NumNodes())
		}
		cl.nodeC = make([]geom.Vec3, ta.NumNodes())
		for i := range cl.nodeC {
			cl.nodeC[i] = geom.Vec3{X: nodeC[3*i], Y: nodeC[3*i+1], Z: nodeC[3*i+2]}
		}
		if err := validateIL("born", cl.Born, tq, ta); err != nil {
			return nil, err
		}
		if err := validateIL("epol", cl.Epol, ta, ta); err != nil {
			return nil, err
		}
		lists = cl
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, r.Err())
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, r.Remaining())
	}

	sys := assembleSystem(mol, surf, ta, tq, params)
	if lists != nil {
		// A list block whose opening criteria disagree with the stamped
		// parameters can only be a crafted inconsistency: reject rather
		// than silently recompiling on first use.
		if !lists.matches(sys) {
			return nil, fmt.Errorf("%w: list block compiled under bornMAC=%g epolFar=%g farOrder=%d, parameters imply %g/%g/%d",
				ErrSnapshotCorrupt, lists.bornMAC, lists.epolFar, lists.farOrder,
				sys.bornMAC(), epolFarFactor(sys.Params.EpsEpol), sys.Params.FarOrder)
		}
		sys.lists = lists
	}
	return sys, nil
}

// decodeParams reads and range-checks the parameter section.
func decodeParams(r *wire.Reader) (Params, error) {
	var p Params
	p.EpsBorn = r.F64()
	p.EpsEpol = r.F64()
	p.EpsSolv = r.F64()
	p.Math = mathx.Mode(r.U8())
	p.Kernel = BornKernel(r.U8())
	p.Precision = Precision(r.U8())
	p.Builder = octree.Builder(r.U8())
	p.StrictBornMAC = r.Bool()
	p.LeafCap = int(r.U32())
	p.FarOrder = int(r.U8())
	if r.Err() != nil {
		return Params{}, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, r.Err())
	}
	if p.Math != mathx.Exact && p.Math != mathx.Approximate {
		return Params{}, fmt.Errorf("%w: math mode %d", ErrSnapshotCorrupt, p.Math)
	}
	if p.Kernel != R6 && p.Kernel != R4 {
		return Params{}, fmt.Errorf("%w: born kernel %d", ErrSnapshotCorrupt, p.Kernel)
	}
	if p.Precision < PrecisionExact || p.Precision > PrecisionF32 {
		return Params{}, fmt.Errorf("%w: precision tier %d", ErrSnapshotCorrupt, p.Precision)
	}
	if p.Builder != octree.BuilderRecursive && p.Builder != octree.BuilderMorton {
		return Params{}, fmt.Errorf("%w: octree builder %d", ErrSnapshotCorrupt, p.Builder)
	}
	if p.LeafCap <= 0 || p.LeafCap > 1<<20 {
		return Params{}, fmt.Errorf("%w: leaf cap %d", ErrSnapshotCorrupt, p.LeafCap)
	}
	if err := p.Validate(); err != nil {
		return Params{}, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	return p, nil
}

// decodeMolecule reads and validates the molecule section.
func decodeMolecule(r *wire.Reader) (*molecule.Molecule, error) {
	name := r.Str()
	flat := r.F64s()
	if r.Err() != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, r.Err())
	}
	if len(flat) == 0 || len(flat)%5 != 0 {
		return nil, fmt.Errorf("%w: molecule payload of %d values", ErrSnapshotCorrupt, len(flat))
	}
	mol := &molecule.Molecule{Name: name, Atoms: make([]molecule.Atom, len(flat)/5)}
	for i := range mol.Atoms {
		f := flat[5*i:]
		mol.Atoms[i] = molecule.Atom{
			Pos:    geom.Vec3{X: f[0], Y: f[1], Z: f[2]},
			Charge: f[3],
			Radius: f[4],
		}
	}
	if err := mol.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	return mol, nil
}

// decodeSurface reads and validates the surface section.
func decodeSurface(r *wire.Reader) (*surface.Surface, error) {
	s := &surface.Surface{
		Level:  int(r.I32()),
		Degree: int(r.I32()),
		Area:   r.F64(),
	}
	flat := r.F64s()
	if r.Err() != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, r.Err())
	}
	if len(flat) == 0 || len(flat)%7 != 0 {
		return nil, fmt.Errorf("%w: surface payload of %d values", ErrSnapshotCorrupt, len(flat))
	}
	if !finite(s.Area) {
		return nil, fmt.Errorf("%w: surface area %g", ErrSnapshotCorrupt, s.Area)
	}
	s.Points = make([]surface.Point, len(flat)/7)
	for i := range s.Points {
		f := flat[7*i:]
		p := surface.Point{
			Pos:    geom.Vec3{X: f[0], Y: f[1], Z: f[2]},
			Normal: geom.Vec3{X: f[3], Y: f[4], Z: f[5]},
			Weight: f[6],
		}
		if !p.Pos.IsFinite() || !p.Normal.IsFinite() || !finite(p.Weight) {
			return nil, fmt.Errorf("%w: q-point %d not finite", ErrSnapshotCorrupt, i)
		}
		s.Points[i] = p
	}
	return s, nil
}

// validateIL re-establishes every structural invariant the batch kernels
// rely on: rows are exactly the row tree's leaves in order, each CSR
// offset array brackets its entry array, entries index atoms-tree nodes,
// and every margin array has the length its entry array implies. A list
// that passes cannot make any kernel index out of bounds.
func validateIL(phase string, il *InteractionLists, rowTree, atomTree *octree.Tree) error {
	leaves := rowTree.Leaves()
	if len(il.Rows) != len(leaves) {
		return fmt.Errorf("%w: %s lists have %d rows for %d leaves",
			ErrSnapshotCorrupt, phase, len(il.Rows), len(leaves))
	}
	for i, row := range il.Rows {
		if row != leaves[i] {
			return fmt.Errorf("%w: %s list row %d is node %d, leaf order says %d",
				ErrSnapshotCorrupt, phase, i, row, leaves[i])
		}
	}
	nNodes := int32(atomTree.NumNodes())
	checkCSR := func(name string, off, entries []int32) error {
		if len(off) != len(il.Rows)+1 {
			return fmt.Errorf("%w: %s %s offsets sized %d for %d rows",
				ErrSnapshotCorrupt, phase, name, len(off), len(il.Rows))
		}
		if off[0] != 0 || int(off[len(off)-1]) != len(entries) {
			return fmt.Errorf("%w: %s %s offsets span [%d,%d] over %d entries",
				ErrSnapshotCorrupt, phase, name, off[0], off[len(off)-1], len(entries))
		}
		for i := 1; i < len(off); i++ {
			if off[i] < off[i-1] {
				return fmt.Errorf("%w: %s %s offsets decrease at row %d",
					ErrSnapshotCorrupt, phase, name, i-1)
			}
		}
		for k, e := range entries {
			if e < 0 || e >= nNodes {
				return fmt.Errorf("%w: %s %s entry %d references node %d of %d",
					ErrSnapshotCorrupt, phase, name, k, e, nNodes)
			}
		}
		return nil
	}
	if err := checkCSR("far", il.FarOff, il.Far); err != nil {
		return err
	}
	if err := checkCSR("near", il.NearOff, il.Near); err != nil {
		return err
	}
	if err := checkCSR("sym", il.SymOff, il.Sym); err != nil {
		return err
	}
	if err := checkCSR("cede", il.CedeOff, il.Cede); err != nil {
		return err
	}
	for _, m := range []struct {
		name     string
		got      int
		want     int
		optional bool
	}{
		{"far margins", len(il.FarMargin), len(il.Far), false},
		{"far paths", len(il.FarPath), len(il.Far), false},
		{"far orders", len(il.FarOrd), len(il.Far), true},
		{"near margins", len(il.NearMargin), len(il.Near), true},
		{"near paths", len(il.NearPath), len(il.Near), false},
		{"sym paths", len(il.SymPath), len(il.Sym), false},
		{"cede paths", len(il.CedePath), len(il.Cede), false},
	} {
		if m.got != m.want && !(m.optional && m.got == 0) {
			return fmt.Errorf("%w: %s %s sized %d for %d entries",
				ErrSnapshotCorrupt, phase, m.name, m.got, m.want)
		}
	}
	// The kernels and RecordMetrics index by admitted order, so a
	// corrupted order byte must be rejected here, not panic there.
	for k, fo := range il.FarOrd {
		if fo > maxFarOrder {
			return fmt.Errorf("%w: %s far order %d is %d, max %d",
				ErrSnapshotCorrupt, phase, k, fo, maxFarOrder)
		}
	}
	return nil
}

// decodeIL reads one interaction-list structure.
func decodeIL(r *wire.Reader) *InteractionLists {
	return &InteractionLists{
		Rows:       r.I32s(),
		FarOff:     r.I32s(),
		Far:        r.I32s(),
		NearOff:    r.I32s(),
		Near:       r.I32s(),
		SymOff:     r.I32s(),
		Sym:        r.I32s(),
		CedeOff:    r.I32s(),
		Cede:       r.I32s(),
		FarMargin:  r.F64s(),
		FarPath:    r.F64s(),
		NearMargin: r.F64s(),
		NearPath:   r.F64s(),
		SymPath:    r.F64s(),
		CedePath:   r.F64s(),
		FarOrd:     r.U8s(),
	}
}

// appendIL writes one interaction-list structure.
func appendIL(w *wire.Writer, il *InteractionLists) {
	w.I32s(il.Rows)
	w.I32s(il.FarOff)
	w.I32s(il.Far)
	w.I32s(il.NearOff)
	w.I32s(il.Near)
	w.I32s(il.SymOff)
	w.I32s(il.Sym)
	w.I32s(il.CedeOff)
	w.I32s(il.Cede)
	w.F64s(il.FarMargin)
	w.F64s(il.FarPath)
	w.F64s(il.NearMargin)
	w.F64s(il.NearPath)
	w.F64s(il.SymPath)
	w.F64s(il.CedePath)
	w.U8s(il.FarOrd)
}

// checkGeometryConsistent verifies the trees index exactly the
// molecule/surface geometry (slot s holds input point Index[s]).
func checkGeometryConsistent(mol *molecule.Molecule, surf *surface.Surface, ta, tq *octree.Tree) error {
	if ta.NumPoints() != mol.NumAtoms() {
		return fmt.Errorf("atoms tree has %d points for %d atoms", ta.NumPoints(), mol.NumAtoms())
	}
	if tq.NumPoints() != surf.NumPoints() {
		return fmt.Errorf("q-points tree has %d points for %d q-points", tq.NumPoints(), surf.NumPoints())
	}
	for slot, orig := range ta.Index {
		if ta.Pts[slot] != mol.Atoms[orig].Pos {
			return fmt.Errorf("atoms tree slot %d diverged from atom %d", slot, orig)
		}
	}
	for slot, orig := range tq.Index {
		if tq.Pts[slot] != surf.Points[orig].Pos {
			return fmt.Errorf("q-points tree slot %d diverged from q-point %d", slot, orig)
		}
	}
	return nil
}

// SaveSnapshot writes the system's snapshot to path atomically (tmp file
// + rename), so a coordinator killed mid-checkpoint never leaves a
// half-written file where the restart logic looks.
func SaveSnapshot(path string, sys *System) error {
	data, err := EncodeSnapshot(sys)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadSnapshot reads path and decodes it, verifying the stamp against
// the parameters the caller is running under (ErrSnapshotParams on
// mismatch — a checkpoint from a differently-configured run must not be
// silently resumed).
func LoadSnapshot(path string, want Params) (*System, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sys, err := DecodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	if ParamsFingerprint(sys.Params) != ParamsFingerprint(want) {
		return nil, fmt.Errorf("%w: snapshot stamped %016x, run wants %016x",
			ErrSnapshotParams, ParamsFingerprint(sys.Params), ParamsFingerprint(want))
	}
	return sys, nil
}

// LoadSnapshotAnyParams reads path and decodes it under whatever
// parameters it was stamped with — for restore paths (worker processes,
// engine reload) where the snapshot itself is the parameter source. The
// stamp's self-consistency is still verified by DecodeSnapshot.
func LoadSnapshotAnyParams(path string) (*System, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeSnapshot(data)
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
