package core

import (
	"fmt"

	"gbpolar/internal/mathx"
)

// Precision selects the arithmetic tier of the compiled-list batch
// kernels (kernels.go / kernels_lanes.go) — the paper's approximate-math
// lever (Section V.E's 1.42×) generalized into three selectable tiers.
// It restructures the COMPILED warm path; selecting a non-exact tier
// additionally switches the scalar kernels (Params.mathMode) to the
// approximate family so the Born-radius inversion and the recursive
// traversals sit in the same accuracy class. With the default
// PrecisionExact nothing changes anywhere.
type Precision int

const (
	// PrecisionExact is the default float64 path with stdlib math —
	// today's semantics, unchanged results: the compiled kernels keep
	// pinning the recursive reference at 1e-12 relative.
	PrecisionExact Precision = iota
	// PrecisionLanes evaluates the E_pol transcendentals through the
	// width-4 mathx batch kernels (ExpLanes4/RSqrtLanes4) in float64,
	// accumulating in scalar order. Per-term arithmetic and summation
	// order are IDENTICAL to the scalar approximate-math compiled path
	// (Params.Math = Approximate), so single-threaded results are
	// bit-for-bit equal to it — the paper's approximate-math accuracy
	// class (~1e-4), laned for speed.
	PrecisionLanes
	// PrecisionF32 evaluates pair kernels in float32 (positions, charges
	// and Born radii mirrored to padded float32 SoA arrays, float32
	// Exp32/RSqrt32) with float64 row-level reduction: block sums stay in
	// float32, every per-atom / per-row accumulator is float64. Its
	// measured error budget — ≤1e-4 relative on total E_pol and per-atom
	// Born radii versus the exact tier — is asserted by
	// TestF32TierErrorBudget.
	PrecisionF32
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	switch p {
	case PrecisionLanes:
		return "lanes"
	case PrecisionF32:
		return "f32"
	default:
		return "exact"
	}
}

// ParsePrecision parses a -precision flag value ("" and "exact" mean the
// default exact tier).
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "exact":
		return PrecisionExact, nil
	case "lanes", "approx-lanes":
		return PrecisionLanes, nil
	case "f32":
		return PrecisionF32, nil
	}
	return 0, fmt.Errorf("core: unknown precision %q (want exact|lanes|f32)", s)
}

// KernelISA reports the instruction set the non-exact precision tiers'
// near-block kernels execute on: "avx2+fma" when the runtime-detected
// assembly kernels (simd_amd64.s) are active, "portable" otherwise.
func KernelISA() string {
	if useAsmKernels {
		return "avx2+fma"
	}
	return "portable"
}

// kernelTier is the resolved arithmetic of one compiled kernel sweep:
// Params.Precision overrides Params.Math on the compiled path (the two
// non-exact tiers are both in the approximate-math accuracy class), while
// PrecisionExact preserves the historical Math toggle.
type kernelTier int

const (
	tierExact kernelTier = iota
	tierApprox
	tierLanes
	tierF32
)

// tier resolves the compiled-kernel arithmetic from the parameters.
func (p Params) tier() kernelTier {
	switch p.Precision {
	case PrecisionLanes:
		return tierLanes
	case PrecisionF32:
		return tierF32
	}
	if p.Math == mathx.Approximate {
		return tierApprox
	}
	return tierExact
}

// mathMode is the scalar-kernel mode consistent with the tier: the
// non-exact precision tiers belong to the approximate-math class, so the
// Born-radius inversion (k.Cbrt in PushIntegralsToAtoms) and any scalar
// remainder work use the fast kernels with them.
func (p Params) mathMode() mathx.Mode {
	if p.Precision != PrecisionExact {
		return mathx.Approximate
	}
	return p.Math
}
