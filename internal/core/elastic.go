package core

import (
	"fmt"

	"gbpolar/internal/cluster"
	"gbpolar/internal/obs"
	"gbpolar/internal/sched"
)

// This file extends the self-healing runner (recover.go) to ELASTIC
// membership: the row-span partition is a pure function of an ordered
// membership event log (deaths and rejoins) instead of a dead list, and
// the per-rank body is written against cluster.Transport so the same
// protocol runs over the modeled in-process transport and over the real
// TCP transport (internal/cluster/net), where a crashed worker process
// can be respawned and re-admitted mid-run.
//
// The consistency argument the elastic protocol leans on: transports
// admit joins ONLY at a successful collective — which is also the only
// point a phase completes — so within one phase's detect–heal–retry loop
// the event log can grow by deaths alone, preserving the monotone-growth
// property RedivideSpans' recovery depends on. A joiner therefore always
// starts at a phase boundary, seeded with the last completed phase's
// reduction result, and the survivors' assignments shrink only BETWEEN
// phases, never inside one.

// testPhaseDrag, when non-nil, runs inside a rank's phase computation
// just before the phase span ends — the watchdog acceptance tests'
// synthetic-slowdown hook (it sleeps, so the span's wall duration and
// the open-span age gauge both carry the drag). Set once before any run
// starts and cleared after; never mutated while ranks are computing.
var testPhaseDrag func(rank int, phase string)

// ElasticSpans computes each rank's owned row spans after replaying the
// ordered membership event log. Rank r starts with segment(n, P, r); a
// death splits every span of the dead rank evenly among the ranks live
// at that point (exactly RedivideSpans); a (re)join makes every other
// live rank cede the trailing 1/k of its rows (k = live count including
// the joiner) to the joiner. The result is a pure function of
// (n, P, events) and always partitions [0, n), so every rank that agreed
// on the log computes the identical assignment.
func ElasticSpans(n, P int, events []cluster.MemberEvent) [][]Span {
	asgn := make([][]Span, P)
	for r := 0; r < P; r++ {
		lo, hi := segment(n, P, r)
		if hi > lo {
			asgn[r] = []Span{{lo, hi}}
		}
	}
	dead := make([]bool, P)
	for _, ev := range events {
		r := ev.Rank
		if r < 0 || r >= P {
			continue
		}
		if !ev.Join {
			if dead[r] {
				continue
			}
			dead[r] = true
			var live []int
			for q := 0; q < P; q++ {
				if !dead[q] {
					live = append(live, q)
				}
			}
			if len(live) == 0 {
				asgn[r] = nil
				continue
			}
			for _, sp := range asgn[r] {
				for i, q := range live {
					l, h := segment(sp.Len(), len(live), i)
					if h > l {
						asgn[q] = append(asgn[q], Span{sp.Lo + l, sp.Lo + h})
					}
				}
			}
			asgn[r] = nil
		} else {
			if !dead[r] {
				continue
			}
			dead[r] = false
			k := 0
			for q := 0; q < P; q++ {
				if !dead[q] {
					k++
				}
			}
			for q := 0; q < P; q++ {
				if dead[q] || q == r {
					continue
				}
				total := 0
				for _, sp := range asgn[q] {
					total += sp.Len()
				}
				cede := total / k
				if cede == 0 {
					continue
				}
				var carved []Span
				asgn[q], carved = carveTail(asgn[q], cede)
				asgn[r] = append(asgn[r], carved...)
			}
		}
	}
	return asgn
}

// carveTail removes k rows from the tail of spans (last spans first) and
// returns the kept prefix and the carved spans in ascending row order.
func carveTail(spans []Span, k int) (kept, carved []Span) {
	for k > 0 && len(spans) > 0 {
		last := spans[len(spans)-1]
		if last.Len() <= k {
			carved = append(carved, last)
			k -= last.Len()
			spans = spans[:len(spans)-1]
		} else {
			carved = append(carved, Span{last.Hi - k, last.Hi})
			spans[len(spans)-1].Hi -= k
			k = 0
		}
	}
	for i, j := 0, len(carved)-1; i < j; i, j = i+1, j-1 {
		carved[i], carved[j] = carved[j], carved[i]
	}
	return spans, carved
}

// ElasticOut carries one rank's outputs from RunElasticRank.
type ElasticOut struct {
	// Epol is the reduced polarization energy (identical on every rank
	// that completed the protocol).
	Epol float64
	// Radii holds the Born radii in tree-slot order.
	Radii []float64
	// Ops counts kernel evaluations this rank performed.
	Ops float64
	// Completed reports whether the rank ran the protocol to the end;
	// false for a joiner admitted after the final collective, which had
	// nothing left to compute.
	Completed bool
}

// RunElasticRank executes the self-healing rank body over any Transport.
// startPhase is 1 + the number of collectives already completed globally
// when this rank joined (founding ranks pass 1); a late joiner passes the
// last completed reduction's result as seed so it resumes mid-protocol:
// after phase 1 the merged integral vector (bornAccum.vecLen values:
// nNodes+nAtoms scalars, plus the per-node receiver-expansion grad/hess
// components when Params.FarOrder > 0), after phase 2 the full
// Born-radii vector (nAtoms values).
func RunElasticRank(sys *System, c cluster.Transport, startPhase int, seed []float64) (*ElasticOut, error) {
	var out rankOut
	if err := elasticRank(sys, c, &out, startPhase, seed); err != nil {
		return nil, err
	}
	return &ElasticOut{Epol: out.epol, Radii: out.radii, Ops: out.ops, Completed: out.ok}, nil
}

// elasticRank is the per-rank body of the self-healing runner, shared by
// RunDistributedResilient (startPhase 1 over the in-process transport —
// behaviour-identical to the pre-elastic resilient runner, since that
// transport's event log contains deaths only) and the net runner's
// workers (any startPhase, elastic log).
func elasticRank(sys *System, c cluster.Transport, out *rankOut, startPhase int, seed []float64) error {
	P, rank := c.Size(), c.Rank()
	p := c.Threads()
	pool := sched.NewPool(p)
	defer pool.Close()
	c.TrackMemory(sys.MemoryBytes())

	o := c.Obs()
	bsp := o.Begin(rank, "phase", "build", c.Clock())
	lists := sys.Lists(pool)
	bsp.End(c.Clock())
	if rank == 0 {
		lists.RecordMetrics(o)
	}
	qLeaves := sys.QPts.Leaves()
	aLeaves := sys.Atoms.Leaves()
	nAtoms := sys.Mol.NumAtoms()
	rate := c.OpsPerSecond()
	if startPhase < 1 {
		startPhase = 1
	}

	// allreduce runs one collective of the retry protocol: build
	// re-assembles this rank's contribution (it must reflect all work done
	// so far, since a failed round discards every deposit), and heal
	// redoes the newly-inherited work after a death. Fewer than 2
	// survivors aborts the protocol with ErrDegraded.
	allreduce := func(build func() []float64, heal func(events []cluster.MemberEvent) error) ([]float64, error) {
		for {
			res, err := c.Allreduce(build(), cluster.Sum)
			if err == nil {
				return res, nil
			}
			if _, ok := cluster.AsRankDead(err); !ok {
				return nil, err
			}
			events := c.MemberEvents()
			if live := cluster.LiveCountFromEvents(P, events); live < 2 {
				return nil, fmt.Errorf("core: %d of %d ranks survive: %w", live, P, ErrDegraded)
			}
			if rerr := heal(events); rerr != nil {
				return nil, rerr
			}
		}
	}

	// Phase 1 (Figure 4 step 2): Born integrals over owned q-point leaf
	// rows. bornDone records which compiled Born rows this rank has
	// evaluated into merged. A joiner with startPhase ≥ 2 skips the phase
	// entirely: the reduction it would participate in already completed
	// globally, and its result arrived as the seed.
	merged := newBornAccum(sys)
	if startPhase >= 2 {
		if want := merged.vecLen(); startPhase == 2 && len(seed) != want {
			return fmt.Errorf("core: phase-2 join seed has %d values, want %d", len(seed), want)
		}
	} else {
		bornDone := make([]bool, len(qLeaves))
		computeBorn := func(events []cluster.MemberEvent) {
			rows, inherited := ownedRows(len(qLeaves), P, rank, events, bornDone)
			if len(rows) == 0 {
				return
			}
			// Each pass gets its own span, so post-crash re-executions show
			// up as extra born/push/epol intervals on the timeline.
			sp := o.Begin(rank, "phase", "born", c.Clock())
			accs := make([]*bornAccum, p)
			for i := range accs {
				accs[i] = newBornAccum(sys)
			}
			sched.ParallelFor(pool, len(rows), rowGrain(len(rows), p), func(l, h, w int) {
				for k := l; k < h; k++ {
					before := accs[w].ops
					bornRow(sys, lists.Born, rows[k], accs[w])
					if d := accs[w].ops - before; d > accs[w].maxTask {
						accs[w].maxTask = d
					}
				}
			})
			var total float64
			for _, a := range accs {
				merged.add(a)
				total += a.ops
			}
			out.ops += total
			charged := modelPhaseOps(total, maxOps(accs), merged.maxTask, p)
			c.ChargeOps(charged)
			sp.End(c.Clock(), obs.F("rows", float64(len(rows))), obs.F("inherited", float64(inherited)))
			o.Counter("kernel.born.batches").Add(int64(len(rows)))
			if inherited > 0 {
				// Recovery metering: the share of this pass spent on rows
				// inherited from dead ranks (row-proportional attribution).
				c.NoteRecovery(inherited, charged/rate*float64(inherited)/float64(len(rows)))
			}
		}
		computeBorn(c.MemberEvents())
		// The reduced vector carries the full receiver expansion (node/
		// atom scalars plus grad/hess under FarOrder > 0 — see
		// bornAccum.vecLen), so the push phase sees every rank's moment
		// corrections, not just locally-owned rows'.
		sum, err := allreduce(func() []float64 {
			return merged.appendVec(make([]float64, 0, merged.vecLen()))
		}, func(events []cluster.MemberEvent) error {
			computeBorn(events)
			return nil
		})
		if err != nil {
			return err
		}
		seed = sum
	}
	if startPhase <= 2 {
		merged.readVec(seed)
	}

	// Phase 2 (steps 4–5): Born radii for owned atom slots, shared via an
	// Allreduce of a zero-padded full vector. Each slot is written by
	// exactly one live rank (ElasticSpans partitions the slots), so the
	// sum reproduces each value exactly — and, unlike Allgatherv, it
	// tolerates the non-contiguous ownership recovery creates.
	slotRadii := make([]float64, nAtoms)
	if startPhase >= 3 {
		if startPhase == 3 && len(seed) != nAtoms {
			return fmt.Errorf("core: phase-3 join seed has %d values, want %d", len(seed), nAtoms)
		}
	} else {
		slotDone := make([]bool, nAtoms)
		computePush := func(events []cluster.MemberEvent) {
			slots, inherited := ownedRows(nAtoms, P, rank, events, slotDone)
			if len(slots) == 0 {
				return
			}
			sp := o.Begin(rank, "phase", "push", c.Clock())
			var ops float64
			// PushIntegralsToAtoms takes [lo,hi) ranges; sweep maximal runs.
			for i := 0; i < len(slots); {
				j := i + 1
				for j < len(slots) && slots[j] == slots[j-1]+1 {
					j++
				}
				ops += PushIntegralsToAtoms(sys, merged, slots[i], slots[j-1]+1, slotRadii)
				i = j
			}
			out.ops += ops
			c.ChargeOps(ops / float64(p))
			sp.End(c.Clock(), obs.F("rows", float64(len(slots))), obs.F("inherited", float64(inherited)))
			if inherited > 0 {
				c.NoteRecovery(inherited, ops/float64(p)/rate*float64(inherited)/float64(len(slots)))
			}
		}
		computePush(c.MemberEvents())
		radii, err := allreduce(func() []float64 {
			vec := make([]float64, nAtoms)
			for i, done := range slotDone {
				if done {
					vec[i] = slotRadii[i]
				}
			}
			return vec
		}, func(events []cluster.MemberEvent) error {
			computePush(events)
			return nil
		})
		if err != nil {
			return err
		}
		seed = radii
	}
	if startPhase >= 4 {
		// Admitted after the final reduction: nothing left to compute.
		return nil
	}
	copy(slotRadii, seed)

	// Phase 3 (step 6): E_pol over owned atom-leaf rows.
	ctx := NewEpolContext(sys, slotRadii)
	conv := newConvScratch(ctx, p)
	epolDone := make([]bool, len(aLeaves))
	var raw float64
	computeEpol := func(events []cluster.MemberEvent) {
		rows, inherited := ownedRows(len(aLeaves), P, rank, events, epolDone)
		if len(rows) == 0 {
			return
		}
		sp := o.Begin(rank, "phase", "epol", c.Clock())
		eaccs := make([]epolAccum, p)
		sched.ParallelFor(pool, len(rows), rowGrain(len(rows), p), func(l, h, w int) {
			for k := l; k < h; k++ {
				before := eaccs[w].ops
				epolRow(ctx, lists.Epol, rows[k], conv[w], &eaccs[w])
				if d := eaccs[w].ops - before; d > eaccs[w].maxTask {
					eaccs[w].maxTask = d
				}
			}
		})
		var total, maxW, maxTask float64
		for i := range eaccs {
			raw += eaccs[i].energy
			total += eaccs[i].ops
			if eaccs[i].ops > maxW {
				maxW = eaccs[i].ops
			}
			if eaccs[i].maxTask > maxTask {
				maxTask = eaccs[i].maxTask
			}
		}
		out.ops += total
		charged := modelPhaseOps(total, maxW, maxTask, p)
		c.ChargeOps(charged)
		if testPhaseDrag != nil {
			testPhaseDrag(rank, "epol")
		}
		sp.End(c.Clock(), obs.F("rows", float64(len(rows))), obs.F("inherited", float64(inherited)))
		o.Counter("kernel.epol.batches").Add(int64(len(rows)))
		if inherited > 0 {
			c.NoteRecovery(inherited, charged/rate*float64(inherited)/float64(len(rows)))
		}
	}
	computeEpol(c.MemberEvents())
	total, err := allreduce(func() []float64 { return []float64{raw} },
		func(events []cluster.MemberEvent) error {
			computeEpol(events)
			return nil
		})
	if err != nil {
		return err
	}
	out.epol = ctx.Finish(total[0])
	out.radii = slotRadii
	out.ok = true
	o.Counter("sched.steals").Add(pool.Steals())
	return nil
}
