package core

import (
	"math"
	"testing"

	"gbpolar/internal/geom"
	"gbpolar/internal/mathx"
	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

// fdGradient computes the central finite difference of the rigid-cavity
// energy for atom i, component axis.
func fdGradient(mol *molecule.Molecule, surf *surface.Surface, i, axis int, h float64) float64 {
	bump := func(sign float64) float64 {
		m2 := mol.Clone()
		switch axis {
		case 0:
			m2.Atoms[i].Pos.X += sign * h
		case 1:
			m2.Atoms[i].Pos.Y += sign * h
		default:
			m2.Atoms[i].Pos.Z += sign * h
		}
		return EpolAtFixedSurface(m2, surf, 80)
	}
	return (bump(1) - bump(-1)) / (2 * h)
}

func TestNaiveGradientMatchesFiniteDifference(t *testing.T) {
	mol := molecule.GenProtein("grad", 60, 171)
	surf, err := surface.ForMolecule(mol, surface.Options{SubdivisionLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := NaiveGradient(mol, surf, 80, mathx.Exact)

	// Energy at the evaluation point must match the plain pipeline.
	if e := EpolAtFixedSurface(mol, surf, 80); relErr(res.Epol, e) > 1e-12 {
		t.Fatalf("gradient-path energy %v != pipeline energy %v", res.Epol, e)
	}

	const h = 1e-5
	checked := 0
	for i := 0; i < mol.NumAtoms(); i += 7 {
		if res.Clamped[i] {
			continue // dR/ds is zero on clamps; FD would see the kink
		}
		for axis := 0; axis < 3; axis++ {
			fd := fdGradient(mol, surf, i, axis, h)
			var got float64
			switch axis {
			case 0:
				got = res.Grad[i].X
			case 1:
				got = res.Grad[i].Y
			default:
				got = res.Grad[i].Z
			}
			tol := 1e-5 + 1e-4*math.Abs(fd)
			if math.Abs(got-fd) > tol {
				t.Errorf("atom %d axis %d: analytic %v, FD %v", i, axis, got, fd)
			}
			checked++
		}
	}
	if checked < 9 {
		t.Fatalf("only %d components checked — too many clamped atoms", checked)
	}
}

func TestGradientTranslationInvariance(t *testing.T) {
	// The direct pair terms must sum to zero (Newton's third law); only
	// the radius-chain terms couple to the fixed surface, so the total
	// is the net force the rigid cavity exerts — finite but equal to the
	// negative of the force on the cavity. Verify the pair part by
	// zeroing the chain: use a molecule where all radii are clamped.
	mol := molecule.GenLigand("ti", 25, 172)
	surf, err := surface.SphereSurface(geom.V(0, 0, 0), 500, 2, 1) // far away: everything near max clamp
	if err != nil {
		t.Fatal(err)
	}
	res := NaiveGradient(mol, surf, 80, mathx.Exact)
	var net geom.Vec3
	allClamped := true
	for i, g := range res.Grad {
		net = net.Add(g)
		if !res.Clamped[i] {
			allClamped = false
		}
	}
	if !allClamped {
		t.Skip("surface too close; atoms not clamped")
	}
	if net.Norm() > 1e-8 {
		t.Errorf("net internal force %v, want ~0 (Newton's third law)", net)
	}
}

func TestGradientPointsDownhill(t *testing.T) {
	// A small steepest-descent step along −grad must not increase the
	// rigid-cavity energy.
	mol := molecule.GenProtein("down", 80, 173)
	surf, err := surface.ForMolecule(mol, surface.Options{SubdivisionLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := NaiveGradient(mol, surf, 80, mathx.Exact)
	var gnorm2 float64
	for _, g := range res.Grad {
		gnorm2 += g.Norm2()
	}
	if gnorm2 == 0 {
		t.Fatal("zero gradient")
	}
	step := 1e-6 / math.Sqrt(gnorm2)
	m2 := mol.Clone()
	for i := range m2.Atoms {
		m2.Atoms[i].Pos = m2.Atoms[i].Pos.Sub(res.Grad[i].Scale(step * 1e3))
	}
	e2 := EpolAtFixedSurface(m2, surf, 80)
	if e2 > res.Epol+1e-9 {
		t.Errorf("descent step raised energy: %v -> %v", res.Epol, e2)
	}
}

func TestGradientFiniteEverywhere(t *testing.T) {
	mol := molecule.GenProtein("fin", 150, 174)
	surf, err := surface.ForMolecule(mol, surface.Options{SubdivisionLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := NaiveGradient(mol, surf, 80, mathx.Exact)
	for i, g := range res.Grad {
		if !g.IsFinite() {
			t.Fatalf("atom %d gradient %v not finite", i, g)
		}
	}
	if math.IsNaN(res.Epol) {
		t.Fatal("energy NaN")
	}
}
