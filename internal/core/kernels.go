package core

import (
	"math"

	"gbpolar/internal/mathx"
)

// This file holds the batched SoA kernels that evaluate compiled
// interaction lists (ilist.go). They reproduce the arithmetic of
// ApproxIntegrals / ApproxEpol pair-for-pair — same pairs, same kernel
// expressions — but sweep the System's flat component arrays instead of
// chasing Node structs and Vec3 payloads, and they dispatch the math
// mode (and Born kernel power) once per row instead of once per pair:
// the exact-mode loops call math.Sqrt/math.Exp directly, which the
// compiler can intrinsify, where the recursive path pays an indirect
// call through mathx.Kernels on every pair.
//
// The exact-mode E_pol loops additionally apply three algebraic
// rewrites the recursion does not: the f_GB exponent is formed by
// multiplying precomputed reciprocals (EpolContext.invRadii / inv4rr)
// instead of dividing, mutual near blocks are swept once with weight 2,
// and the far-field histogram product is folded through a convolution
// over the bin sum (farField). Each rewrite perturbs individual terms
// by at most a few ulp (or reassociates a sum); the cross-check tests
// in ilist_test.go pin the compiled path to the recursive one at 1e-12
// relative, far above the observed deviation. The approximate-math
// branches take none of these shortcuts — they must call mathx.Exp /
// mathx.RSqrt with the recursion's operands to stay identical to it.
//
// Op accounting: the compiled path charges 1 op per list entry plus the
// same per-pair counts as the recursive path (|A|·|Q| for near blocks,
// one per populated histogram-bin pair for the far field); mutual near
// blocks swept once with double weight are charged for both ordered
// blocks they represent, so Ops stays the decomposition's pair-term count
// and remains comparable across paths and across ε. The compiled path
// does NOT charge the interior-node visits the recursion performs —
// eliminating them is the point of the compilation.

// bornRow evaluates one compiled Born-phase row (a q-point leaf) into
// acc: far entries contribute the pseudo-q-point term to the node field
// s_A, near entries get exact per-atom/per-q-point sums (Figure 2).
func bornRow(sys *System, il *InteractionLists, row int, acc *bornAccum) {
	tier := sys.Params.tier()
	if tier == tierF32 {
		bornRowF32(sys, il, row, acc)
		return
	}
	// The exact and approximate tiers share this float64 row: the Born
	// kernel is pure divide/multiply (no transcendentals), so keeping one
	// row preserves the portable laned tier's bit-compatibility with the
	// scalar path for free. The laned tier's near entries dispatch to the
	// width-4 divide kernel on AVX2 hosts (R6 only — the default).
	leaf := il.Rows[row]
	q := &sys.QPts.Nodes[leaf]
	wn := sys.QNodeWN[leaf]
	qc := q.Center
	r4 := sys.Params.Kernel == R4

	far := il.Far[il.FarOff[row]:il.FarOff[row+1]]
	if il.FarOrd == nil {
		for _, a := range far {
			dx := qc.X - sys.ANodeX[a]
			dy := qc.Y - sys.ANodeY[a]
			dz := qc.Z - sys.ANodeZ[a]
			d2 := dx*dx + dy*dy + dz*dz
			den := d2 * d2
			if !r4 {
				den *= d2
			}
			acc.node[a] += (wn.X*dx + wn.Y*dy + wn.Z*dz) / den
		}
	} else if sys.Params.FarOrder < 2 {
		// Ladder-compiled lists, dipole order: same order-0 term per
		// entry, plus the run order's moment correction into the node's
		// receiver expansion (farorder.go; translated to atoms by
		// PushIntegralsToAtoms). Every far entry is corrected through
		// Params.FarOrder — the per-entry admitted rung (FarOrd) governs
		// admission and repair margins only; correcting a rung-0 entry
		// through the full order is strictly MORE accurate, and keeping
		// the order uniform keeps this loop branch-free. The dipole arm
		// of bornFarCorrection is hand-expanded here (ds = a0·tr(M1) −
		// 2a1·dᵀM1d, dg = 2a1(M0·d)·d − a0·M0): at ~30 flops the call
		// and its 10-float return dominated the math, and the order-1
		// Hessian piece is identically zero so the per-entry hess
		// read-modify-write is skipped entirely. The recursive path
		// keeps calling the shared kernel; TestFarOrderCompiledMatches-
		// Recursive pins the two expansions to 1e-12.
		fm := bornRowMoments(sys.QPts.MomentsOf(momentSetWN), leaf)
		kap := 3.0
		if r4 {
			kap = 2
		}
		trM1 := fm.d[0].X + fm.d[1].Y + fm.d[2].Z
		for _, a := range far {
			dx := qc.X - sys.ANodeX[a]
			dy := qc.Y - sys.ANodeY[a]
			dz := qc.Z - sys.ANodeZ[a]
			d2 := dx*dx + dy*dy + dz*dz
			den := d2 * d2
			if !r4 {
				den *= d2
			}
			a0 := 1 / den
			a1 := kap * a0 / d2
			m1dx := fm.d[0].X*dx + fm.d[0].Y*dy + fm.d[0].Z*dz
			m1dy := fm.d[1].X*dx + fm.d[1].Y*dy + fm.d[1].Z*dz
			m1dz := fm.d[2].X*dx + fm.d[2].Y*dy + fm.d[2].Z*dz
			dM1d := dx*m1dx + dy*m1dy + dz*m1dz
			m0d := fm.m0.X*dx + fm.m0.Y*dy + fm.m0.Z*dz
			acc.node[a] += (wn.X*dx+wn.Y*dy+wn.Z*dz)/den + a0*trM1 - 2*a1*dM1d
			g := &acc.grad[a]
			s := 2 * a1 * m0d
			g.X += s*dx - a0*fm.m0.X
			g.Y += s*dy - a0*fm.m0.Y
			g.Z += s*dz - a0*fm.m0.Z
		}
	} else {
		// Quadrupole order: the full order-2 arm of bornFarCorrection,
		// hand-expanded for the same reason as the dipole loop above —
		// the shared kernel's call, its 10-float value return and the
		// Sym3 method-chain copies cost as much as the ~110 flops of
		// actual contraction. The recursive path keeps calling the
		// shared kernel; TestFarOrderCompiledMatchesRecursive pins the
		// two expansions to 1e-12.
		fm := bornRowMoments(sys.QPts.MomentsOf(momentSetWN), leaf)
		kap := 3.0
		if r4 {
			kap = 2
		}
		m0x, m0y, m0z := fm.m0.X, fm.m0.Y, fm.m0.Z
		d0, d1, d2r := fm.d[0], fm.d[1], fm.d[2]
		q0, q1, q2 := &fm.q[0], &fm.q[1], &fm.q[2]
		trM1 := d0.X + d1.Y + d2r.Z
		trQ0, trQ1, trQ2 := q0.Trace(), q1.Trace(), q2.Trace()
		for _, a := range far {
			dx := qc.X - sys.ANodeX[a]
			dy := qc.Y - sys.ANodeY[a]
			dz := qc.Z - sys.ANodeZ[a]
			d2 := dx*dx + dy*dy + dz*dz
			den := d2 * d2
			if !r4 {
				den *= d2
			}
			a0 := 1 / den
			a1 := kap * a0 / d2
			a2 := (kap + 1) * a1 / d2

			m1dx := d0.X*dx + d0.Y*dy + d0.Z*dz // M1·d (rows = channels)
			m1dy := d1.X*dx + d1.Y*dy + d1.Z*dz
			m1dz := d2r.X*dx + d2r.Y*dy + d2r.Z*dz
			dM1d := dx*m1dx + dy*m1dy + dz*m1dz
			m0d := m0x*dx + m0y*dy + m0z*dz
			m1tdx := d0.X*dx + d1.X*dy + d2r.X*dz // M1ᵀ·d
			m1tdy := d0.Y*dx + d1.Y*dy + d2r.Y*dz
			m1tdz := d0.Z*dx + d1.Z*dy + d2r.Z*dz

			q0dx := q0.XX*dx + q0.XY*dy + q0.XZ*dz // M2γ·d per channel γ
			q0dy := q0.XY*dx + q0.YY*dy + q0.YZ*dz
			q0dz := q0.XZ*dx + q0.YZ*dy + q0.ZZ*dz
			q1dx := q1.XX*dx + q1.XY*dy + q1.XZ*dz
			q1dy := q1.XY*dx + q1.YY*dy + q1.YZ*dz
			q1dz := q1.XZ*dx + q1.YZ*dy + q1.ZZ*dz
			q2dx := q2.XX*dx + q2.XY*dy + q2.XZ*dz
			q2dy := q2.XY*dx + q2.YY*dy + q2.YZ*dz
			q2dz := q2.XZ*dx + q2.YZ*dy + q2.ZZ*dz
			diagQd := q0dx + q1dy + q2dz
			trQd := dx*trQ0 + dy*trQ1 + dz*trQ2
			quadQd := dx*(dx*q0dx+dy*q0dy+dz*q0dz) +
				dy*(dx*q1dx+dy*q1dy+dz*q1dz) +
				dz*(dx*q2dx+dy*q2dy+dz*q2dz)

			acc.node[a] += (wn.X*dx+wn.Y*dy+wn.Z*dz)/den +
				a0*trM1 - 2*a1*dM1d - a1*(2*diagQd+trQd) + 2*a2*quadQd

			g := &acc.grad[a]
			gs := 2 * a1 * m0d
			g.X += gs*dx - a0*m0x + 2*a1*(m1dx+m1tdx+trM1*dx) - 4*a2*dM1d*dx
			g.Y += gs*dy - a0*m0y + 2*a1*(m1dy+m1tdy+trM1*dy) - 4*a2*dM1d*dy
			g.Z += gs*dz - a0*m0z + 2*a1*(m1dz+m1tdz+trM1*dz) - 4*a2*dM1d*dz

			h := &acc.hess[a]
			hc := 2 * a2 * m0d
			hd := a1 * m0d
			h.XX += hc*dx*dx - 2*a1*m0x*dx - hd
			h.YY += hc*dy*dy - 2*a1*m0y*dy - hd
			h.ZZ += hc*dz*dz - 2*a1*m0z*dz - hd
			h.XY += hc*dx*dy - a1*(m0x*dy+m0y*dx)
			h.XZ += hc*dx*dz - a1*(m0x*dz+m0z*dx)
			h.YZ += hc*dy*dz - a1*(m0y*dz+m0z*dy)
		}
	}
	acc.ops += float64(len(far))

	qlo, qhi := q.Start, q.End
	qx, qy, qz := sys.QX[qlo:qhi], sys.QY[qlo:qhi], sys.QZ[qlo:qhi]
	wx, wy, wz := sys.WNX[qlo:qhi], sys.WNY[qlo:qhi], sys.WNZ[qlo:qhi]
	// Equal-length hints so the inner loops run bounds-check free.
	qy, qz = qy[:len(qx)], qz[:len(qx)]
	wx, wy, wz = wx[:len(qx)], wy[:len(qx)], wz[:len(qx)]
	near := il.Near[il.NearOff[row]:il.NearOff[row+1]]
	asmR6 := useAsmKernels && !r4 && tier == tierLanes
	for _, al := range near {
		an := &sys.Atoms.Nodes[al]
		if asmR6 {
			bornNearBlockAsmR6(sys, an.Start, an.End, acc.atom, qx, qy, qz, wx, wy, wz)
			acc.ops += float64(an.Count()*q.Count()) + 1
			continue
		}
		for ai := an.Start; ai < an.End; ai++ {
			pax, pay, paz := sys.AtomX[ai], sys.AtomY[ai], sys.AtomZ[ai]
			var s float64
			if r4 {
				for j := range qx {
					dx, dy, dz := qx[j]-pax, qy[j]-pay, qz[j]-paz
					r2 := dx*dx + dy*dy + dz*dz
					if r2 == 0 {
						continue
					}
					s += (wx[j]*dx + wy[j]*dy + wz[j]*dz) / (r2 * r2)
				}
			} else {
				for j := range qx {
					dx, dy, dz := qx[j]-pax, qy[j]-pay, qz[j]-paz
					r2 := dx*dx + dy*dy + dz*dz
					if r2 == 0 {
						continue
					}
					s += (wx[j]*dx + wy[j]*dy + wz[j]*dz) / (r2 * r2 * r2)
				}
			}
			acc.atom[ai] += s
		}
		acc.ops += float64(an.Count()*q.Count()) + 1
	}
}

// expSkip is the f_GB shortcut threshold: when r² ≥ 160·R_uR_v the
// smoothing term R_uR_v·exp(−r²/4R_uR_v) is below e⁻⁴⁰/160 ≈ 2.7·10⁻²⁰
// of r² — far under half an ulp — so f² rounds to r² BITWISE and the exp
// call can be skipped without changing a single bit of the result. The
// far field almost always clears the threshold (that is what being far
// means); near pairs clear it occasionally. Only valid for exact math:
// the approximate-math mode must keep calling mathx.Exp so the compiled
// path stays identical to the recursive one.
const expSkip = 160.0

// epolRow evaluates one compiled E_pol row (an atom leaf V) into acc:
// near entries are exact ordered pairs (including the diagonal when
// U == V), far entries interact the nonzero-compacted charge histograms
// bin-by-bin (Figure 3). conv is worker-private scratch of len(ctx.rr)
// for the far-field convolution; it must start zeroed and is returned
// zeroed.
func epolRow(ctx *EpolContext, il *InteractionLists, row int, conv []float64, acc *epolAccum) {
	switch ctx.tier {
	case tierLanes:
		epolRowLanes(ctx, il, row, conv, acc)
		return
	case tierF32:
		epolRowF32(ctx, il, row, conv, acc)
		return
	}
	sys := ctx.sys
	t := sys.Atoms
	leaf := il.Rows[row]
	v := &t.Nodes[leaf]
	exact := ctx.tier == tierExact

	vlo, vhi := v.Start, v.End
	vx, vy, vz := sys.AtomX[vlo:vhi], sys.AtomY[vlo:vhi], sys.AtomZ[vlo:vhi]
	cv := sys.Charge[vlo:vhi]
	rv := ctx.Radii[vlo:vhi]
	irv := ctx.invRadii[vlo:vhi]

	near := il.Near[il.NearOff[row]:il.NearOff[row+1]]
	for _, ul := range near {
		epolNearBlock(ctx, sys, ul, vx, vy, vz, cv, rv, irv, exact, 1, acc)
		acc.ops += float64(t.Nodes[ul].Count()*v.Count()) + 1
	}
	// Mutual pairs were compiled once (ilist.go): the per-pair GB terms
	// are bitwise symmetric, so one block sweep with weight 2 reproduces
	// both ordered blocks of the recursion (×2 is exact in binary FP).
	sym := il.Sym[il.SymOff[row]:il.SymOff[row+1]]
	for _, ul := range sym {
		epolNearBlock(ctx, sys, ul, vx, vy, vz, cv, rv, irv, exact, 2, acc)
		// Charged for BOTH ordered blocks the sweep represents: Ops counts
		// the pair terms of the near–far decomposition (the quantity the
		// time model and the eps-tradeoff accounting are calibrated on),
		// and the represented work is what stays comparable across paths.
		acc.ops += float64(2*t.Nodes[ul].Count()*v.Count()) + 1
	}

	far := il.Far[il.FarOff[row]:il.FarOff[row+1]]
	if len(far) == 0 {
		return
	}
	farField(ctx, sys, leaf, far, farOrdRow(il, row), exact, conv, acc)
}

// farOrdRow returns row's slice of per-entry admitted orders, nil when
// the lists were compiled without a ladder (FarOrder = 0).
func farOrdRow(il *InteractionLists, row int) []uint8 {
	if il.FarOrd == nil {
		return nil
	}
	return il.FarOrd[il.FarOff[row]:il.FarOff[row+1]]
}

// epolNearBlock sweeps one exact near block: every atom of leaf ul
// against the row leaf's SoA slices, weighted w (1 for one-directional
// blocks and the diagonal, 2 for mutual pairs compiled once).
func epolNearBlock(ctx *EpolContext, sys *System, ul int32, vx, vy, vz, cv, rv, irv []float64, exact bool, w float64, acc *epolAccum) {
	// Equal-length hints so the inner loops run bounds-check free.
	vy, vz = vy[:len(vx)], vz[:len(vx)]
	cv, rv, irv = cv[:len(vx)], rv[:len(vx)], irv[:len(vx)]
	u := &sys.Atoms.Nodes[ul]
	for ui := u.Start; ui < u.End; ui++ {
		pux, puy, puz := sys.AtomX[ui], sys.AtomY[ui], sys.AtomZ[ui]
		qu := w * sys.Charge[ui]
		ru := ctx.Radii[ui]
		var s float64
		if exact {
			inv4ru := 0.25 * ctx.invRadii[ui]
			for j := range vx {
				dx, dy, dz := pux-vx[j], puy-vy[j], puz-vz[j]
				r2 := dx*dx + dy*dy + dz*dz
				rr := ru * rv[j]
				f2 := r2
				if r2 < expSkip*rr {
					f2 = r2 + rr*math.Exp(-r2*inv4ru*irv[j])
				}
				s += cv[j] / math.Sqrt(f2)
			}
		} else {
			for j := range vx {
				dx, dy, dz := pux-vx[j], puy-vy[j], puz-vz[j]
				r2 := dx*dx + dy*dy + dz*dz
				rr := ru * rv[j]
				f2 := r2 + rr*mathx.Exp(-r2/(4*rr))
				s += cv[j] * mathx.RSqrt(f2)
			}
		}
		acc.energy += qu * s
	}
}

// farField interacts the row leaf's nonzero-compacted charge histogram
// with each far node's (Figure 3's far branch). The f_GB surrogate
// R_min²(1+ε)^{i+j} depends on the bins only through the SUM i+j, so the
// charge products are first folded into conv[k] = Σ_{i+j=k} q_i·q_j (a
// small convolution of the two nonzero-bin lists) and the transcendental
// kernel runs once per occupied k instead of once per bin pair. With the
// expSkip shortcut the kernel for most far pairs degenerates to a single
// 1/√d² per k. fo is the row's admitted-order slice (nil at
// FarOrder = 0); when present EVERY entry adds the run order's moment
// correction of farorder.go to its pair sum — the identical scalar
// float64 expression at the identical position in every tier. The
// per-entry rung is admission/repair metadata, not an evaluation order:
// correcting rung-0 entries through the full order is strictly more
// accurate and keeps the loop branch-free.
func farField(ctx *EpolContext, sys *System, leaf int32, far []int32, fo []uint8, exact bool, conv []float64, acc *epolAccum) {
	vcx, vcy, vcz := sys.ANodeX[leaf], sys.ANodeY[leaf], sys.ANodeZ[leaf]
	vb := ctx.nzBin[ctx.nzOff[leaf]:ctx.nzOff[leaf+1]]
	vq := ctx.nzQ[ctx.nzOff[leaf]:ctx.nzOff[leaf+1]]
	if len(vb) == 0 {
		// No populated bins (charges can cancel bin-wise) — but the moment
		// corrections do not go through the histogram, so the recursion
		// still emits them and the compiled path must too.
		farFieldMomentsOnly(ctx, sys, leaf, far, fo, acc)
		acc.ops += float64(len(far))
		return
	}
	ord := 0
	if fo != nil {
		ord = ctx.farOrd
	}
	for _, un := range far {
		dx := sys.ANodeX[un] - vcx
		dy := sys.ANodeY[un] - vcy
		dz := sys.ANodeZ[un] - vcz
		d2 := dx*dx + dy*dy + dz*dz
		if ord > 0 {
			acc.energy += ctx.epolFarCorrection(un, leaf, dx, dy, dz, d2, ord)
		}
		ub := ctx.nzBin[ctx.nzOff[un]:ctx.nzOff[un+1]]
		uq := ctx.nzQ[ctx.nzOff[un]:ctx.nzOff[un+1]]
		if len(ub) == 0 {
			acc.ops++
			continue
		}
		// Bins are stored in ascending order, so the occupied sums span
		// [ub[0]+vb[0], ub[last]+vb[last]] — a handful of entries.
		klo := ub[0] + vb[0]
		khi := ub[len(ub)-1] + vb[len(vb)-1]
		for i := range ub {
			qi, bi := uq[i], ub[i]
			for j := range vb {
				conv[bi+vb[j]] += qi * vq[j]
			}
		}
		var s float64
		if exact {
			for k := klo; k <= khi; k++ {
				w := conv[k]
				if w == 0 {
					continue
				}
				rr := ctx.rr[k]
				f2 := d2
				if d2 < expSkip*rr {
					f2 = d2 + rr*math.Exp(-d2*ctx.inv4rr[k])
				}
				s += w / math.Sqrt(f2)
			}
		} else {
			for k := klo; k <= khi; k++ {
				w := conv[k]
				if w == 0 {
					continue
				}
				rr := ctx.rr[k]
				f2 := d2 + rr*mathx.Exp(-d2/(4*rr))
				s += w * mathx.RSqrt(f2)
			}
		}
		for k := klo; k <= khi; k++ {
			conv[k] = 0
		}
		acc.energy += s
		acc.ops += float64(len(ub)*len(vb)) + 1
	}
}

// farFieldMomentsOnly emits the moment corrections for a far run whose
// histogram product vanished identically (an empty nonzero-bin list on
// either side): the corrections read the charge moments, not the bins,
// so they survive bin-wise cancellation — exactly as in the recursion.
func farFieldMomentsOnly(ctx *EpolContext, sys *System, leaf int32, far []int32, fo []uint8, acc *epolAccum) {
	if fo == nil {
		return
	}
	ord := ctx.farOrd
	vcx, vcy, vcz := sys.ANodeX[leaf], sys.ANodeY[leaf], sys.ANodeZ[leaf]
	for _, un := range far {
		dx := sys.ANodeX[un] - vcx
		dy := sys.ANodeY[un] - vcy
		dz := sys.ANodeZ[un] - vcz
		d2 := dx*dx + dy*dy + dz*dz
		acc.energy += ctx.epolFarCorrection(un, leaf, dx, dy, dz, d2, ord)
	}
}
