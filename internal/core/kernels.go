package core

import (
	"math"

	"gbpolar/internal/mathx"
)

// This file holds the batched SoA kernels that evaluate compiled
// interaction lists (ilist.go). They reproduce the arithmetic of
// ApproxIntegrals / ApproxEpol pair-for-pair — same pairs, same kernel
// expressions — but sweep the System's flat component arrays instead of
// chasing Node structs and Vec3 payloads, and they dispatch the math
// mode (and Born kernel power) once per row instead of once per pair:
// the exact-mode loops call math.Sqrt/math.Exp directly, which the
// compiler can intrinsify, where the recursive path pays an indirect
// call through mathx.Kernels on every pair.
//
// The exact-mode E_pol loops additionally apply three algebraic
// rewrites the recursion does not: the f_GB exponent is formed by
// multiplying precomputed reciprocals (EpolContext.invRadii / inv4rr)
// instead of dividing, mutual near blocks are swept once with weight 2,
// and the far-field histogram product is folded through a convolution
// over the bin sum (farField). Each rewrite perturbs individual terms
// by at most a few ulp (or reassociates a sum); the cross-check tests
// in ilist_test.go pin the compiled path to the recursive one at 1e-12
// relative, far above the observed deviation. The approximate-math
// branches take none of these shortcuts — they must call mathx.Exp /
// mathx.RSqrt with the recursion's operands to stay identical to it.
//
// Op accounting: the compiled path charges 1 op per list entry plus the
// same per-pair counts as the recursive path (|A|·|Q| for near blocks,
// one per populated histogram-bin pair for the far field); mutual near
// blocks swept once with double weight are charged for both ordered
// blocks they represent, so Ops stays the decomposition's pair-term count
// and remains comparable across paths and across ε. The compiled path
// does NOT charge the interior-node visits the recursion performs —
// eliminating them is the point of the compilation.

// bornRow evaluates one compiled Born-phase row (a q-point leaf) into
// acc: far entries contribute the pseudo-q-point term to the node field
// s_A, near entries get exact per-atom/per-q-point sums (Figure 2).
func bornRow(sys *System, il *InteractionLists, row int, acc *bornAccum) {
	tier := sys.Params.tier()
	if tier == tierF32 {
		bornRowF32(sys, il, row, acc)
		return
	}
	// The exact and approximate tiers share this float64 row: the Born
	// kernel is pure divide/multiply (no transcendentals), so keeping one
	// row preserves the portable laned tier's bit-compatibility with the
	// scalar path for free. The laned tier's near entries dispatch to the
	// width-4 divide kernel on AVX2 hosts (R6 only — the default).
	leaf := il.Rows[row]
	q := &sys.QPts.Nodes[leaf]
	wn := sys.QNodeWN[leaf]
	qc := q.Center
	r4 := sys.Params.Kernel == R4

	far := il.Far[il.FarOff[row]:il.FarOff[row+1]]
	for _, a := range far {
		dx := qc.X - sys.ANodeX[a]
		dy := qc.Y - sys.ANodeY[a]
		dz := qc.Z - sys.ANodeZ[a]
		d2 := dx*dx + dy*dy + dz*dz
		den := d2 * d2
		if !r4 {
			den *= d2
		}
		acc.node[a] += (wn.X*dx + wn.Y*dy + wn.Z*dz) / den
	}
	acc.ops += float64(len(far))

	qlo, qhi := q.Start, q.End
	qx, qy, qz := sys.QX[qlo:qhi], sys.QY[qlo:qhi], sys.QZ[qlo:qhi]
	wx, wy, wz := sys.WNX[qlo:qhi], sys.WNY[qlo:qhi], sys.WNZ[qlo:qhi]
	// Equal-length hints so the inner loops run bounds-check free.
	qy, qz = qy[:len(qx)], qz[:len(qx)]
	wx, wy, wz = wx[:len(qx)], wy[:len(qx)], wz[:len(qx)]
	near := il.Near[il.NearOff[row]:il.NearOff[row+1]]
	asmR6 := useAsmKernels && !r4 && tier == tierLanes
	for _, al := range near {
		an := &sys.Atoms.Nodes[al]
		if asmR6 {
			bornNearBlockAsmR6(sys, an.Start, an.End, acc.atom, qx, qy, qz, wx, wy, wz)
			acc.ops += float64(an.Count()*q.Count()) + 1
			continue
		}
		for ai := an.Start; ai < an.End; ai++ {
			pax, pay, paz := sys.AtomX[ai], sys.AtomY[ai], sys.AtomZ[ai]
			var s float64
			if r4 {
				for j := range qx {
					dx, dy, dz := qx[j]-pax, qy[j]-pay, qz[j]-paz
					r2 := dx*dx + dy*dy + dz*dz
					if r2 == 0 {
						continue
					}
					s += (wx[j]*dx + wy[j]*dy + wz[j]*dz) / (r2 * r2)
				}
			} else {
				for j := range qx {
					dx, dy, dz := qx[j]-pax, qy[j]-pay, qz[j]-paz
					r2 := dx*dx + dy*dy + dz*dz
					if r2 == 0 {
						continue
					}
					s += (wx[j]*dx + wy[j]*dy + wz[j]*dz) / (r2 * r2 * r2)
				}
			}
			acc.atom[ai] += s
		}
		acc.ops += float64(an.Count()*q.Count()) + 1
	}
}

// expSkip is the f_GB shortcut threshold: when r² ≥ 160·R_uR_v the
// smoothing term R_uR_v·exp(−r²/4R_uR_v) is below e⁻⁴⁰/160 ≈ 2.7·10⁻²⁰
// of r² — far under half an ulp — so f² rounds to r² BITWISE and the exp
// call can be skipped without changing a single bit of the result. The
// far field almost always clears the threshold (that is what being far
// means); near pairs clear it occasionally. Only valid for exact math:
// the approximate-math mode must keep calling mathx.Exp so the compiled
// path stays identical to the recursive one.
const expSkip = 160.0

// epolRow evaluates one compiled E_pol row (an atom leaf V) into acc:
// near entries are exact ordered pairs (including the diagonal when
// U == V), far entries interact the nonzero-compacted charge histograms
// bin-by-bin (Figure 3). conv is worker-private scratch of len(ctx.rr)
// for the far-field convolution; it must start zeroed and is returned
// zeroed.
func epolRow(ctx *EpolContext, il *InteractionLists, row int, conv []float64, acc *epolAccum) {
	switch ctx.tier {
	case tierLanes:
		epolRowLanes(ctx, il, row, conv, acc)
		return
	case tierF32:
		epolRowF32(ctx, il, row, conv, acc)
		return
	}
	sys := ctx.sys
	t := sys.Atoms
	leaf := il.Rows[row]
	v := &t.Nodes[leaf]
	exact := ctx.tier == tierExact

	vlo, vhi := v.Start, v.End
	vx, vy, vz := sys.AtomX[vlo:vhi], sys.AtomY[vlo:vhi], sys.AtomZ[vlo:vhi]
	cv := sys.Charge[vlo:vhi]
	rv := ctx.Radii[vlo:vhi]
	irv := ctx.invRadii[vlo:vhi]

	near := il.Near[il.NearOff[row]:il.NearOff[row+1]]
	for _, ul := range near {
		epolNearBlock(ctx, sys, ul, vx, vy, vz, cv, rv, irv, exact, 1, acc)
		acc.ops += float64(t.Nodes[ul].Count()*v.Count()) + 1
	}
	// Mutual pairs were compiled once (ilist.go): the per-pair GB terms
	// are bitwise symmetric, so one block sweep with weight 2 reproduces
	// both ordered blocks of the recursion (×2 is exact in binary FP).
	sym := il.Sym[il.SymOff[row]:il.SymOff[row+1]]
	for _, ul := range sym {
		epolNearBlock(ctx, sys, ul, vx, vy, vz, cv, rv, irv, exact, 2, acc)
		// Charged for BOTH ordered blocks the sweep represents: Ops counts
		// the pair terms of the near–far decomposition (the quantity the
		// time model and the eps-tradeoff accounting are calibrated on),
		// and the represented work is what stays comparable across paths.
		acc.ops += float64(2*t.Nodes[ul].Count()*v.Count()) + 1
	}

	far := il.Far[il.FarOff[row]:il.FarOff[row+1]]
	if len(far) == 0 {
		return
	}
	farField(ctx, sys, leaf, far, exact, conv, acc)
}

// epolNearBlock sweeps one exact near block: every atom of leaf ul
// against the row leaf's SoA slices, weighted w (1 for one-directional
// blocks and the diagonal, 2 for mutual pairs compiled once).
func epolNearBlock(ctx *EpolContext, sys *System, ul int32, vx, vy, vz, cv, rv, irv []float64, exact bool, w float64, acc *epolAccum) {
	// Equal-length hints so the inner loops run bounds-check free.
	vy, vz = vy[:len(vx)], vz[:len(vx)]
	cv, rv, irv = cv[:len(vx)], rv[:len(vx)], irv[:len(vx)]
	u := &sys.Atoms.Nodes[ul]
	for ui := u.Start; ui < u.End; ui++ {
		pux, puy, puz := sys.AtomX[ui], sys.AtomY[ui], sys.AtomZ[ui]
		qu := w * sys.Charge[ui]
		ru := ctx.Radii[ui]
		var s float64
		if exact {
			inv4ru := 0.25 * ctx.invRadii[ui]
			for j := range vx {
				dx, dy, dz := pux-vx[j], puy-vy[j], puz-vz[j]
				r2 := dx*dx + dy*dy + dz*dz
				rr := ru * rv[j]
				f2 := r2
				if r2 < expSkip*rr {
					f2 = r2 + rr*math.Exp(-r2*inv4ru*irv[j])
				}
				s += cv[j] / math.Sqrt(f2)
			}
		} else {
			for j := range vx {
				dx, dy, dz := pux-vx[j], puy-vy[j], puz-vz[j]
				r2 := dx*dx + dy*dy + dz*dz
				rr := ru * rv[j]
				f2 := r2 + rr*mathx.Exp(-r2/(4*rr))
				s += cv[j] * mathx.RSqrt(f2)
			}
		}
		acc.energy += qu * s
	}
}

// farField interacts the row leaf's nonzero-compacted charge histogram
// with each far node's (Figure 3's far branch). The f_GB surrogate
// R_min²(1+ε)^{i+j} depends on the bins only through the SUM i+j, so the
// charge products are first folded into conv[k] = Σ_{i+j=k} q_i·q_j (a
// small convolution of the two nonzero-bin lists) and the transcendental
// kernel runs once per occupied k instead of once per bin pair. With the
// expSkip shortcut the kernel for most far pairs degenerates to a single
// 1/√d² per k.
func farField(ctx *EpolContext, sys *System, leaf int32, far []int32, exact bool, conv []float64, acc *epolAccum) {
	vcx, vcy, vcz := sys.ANodeX[leaf], sys.ANodeY[leaf], sys.ANodeZ[leaf]
	vb := ctx.nzBin[ctx.nzOff[leaf]:ctx.nzOff[leaf+1]]
	vq := ctx.nzQ[ctx.nzOff[leaf]:ctx.nzOff[leaf+1]]
	if len(vb) == 0 {
		acc.ops += float64(len(far))
		return
	}
	for _, un := range far {
		dx := sys.ANodeX[un] - vcx
		dy := sys.ANodeY[un] - vcy
		dz := sys.ANodeZ[un] - vcz
		d2 := dx*dx + dy*dy + dz*dz
		ub := ctx.nzBin[ctx.nzOff[un]:ctx.nzOff[un+1]]
		uq := ctx.nzQ[ctx.nzOff[un]:ctx.nzOff[un+1]]
		if len(ub) == 0 {
			acc.ops++
			continue
		}
		// Bins are stored in ascending order, so the occupied sums span
		// [ub[0]+vb[0], ub[last]+vb[last]] — a handful of entries.
		klo := ub[0] + vb[0]
		khi := ub[len(ub)-1] + vb[len(vb)-1]
		for i := range ub {
			qi, bi := uq[i], ub[i]
			for j := range vb {
				conv[bi+vb[j]] += qi * vq[j]
			}
		}
		var s float64
		if exact {
			for k := klo; k <= khi; k++ {
				w := conv[k]
				if w == 0 {
					continue
				}
				rr := ctx.rr[k]
				f2 := d2
				if d2 < expSkip*rr {
					f2 = d2 + rr*math.Exp(-d2*ctx.inv4rr[k])
				}
				s += w / math.Sqrt(f2)
			}
		} else {
			for k := klo; k <= khi; k++ {
				w := conv[k]
				if w == 0 {
					continue
				}
				rr := ctx.rr[k]
				f2 := d2 + rr*mathx.Exp(-d2/(4*rr))
				s += w * mathx.RSqrt(f2)
			}
		}
		for k := klo; k <= khi; k++ {
			conv[k] = 0
		}
		acc.energy += s
		acc.ops += float64(len(ub)*len(vb)) + 1
	}
}
