package core

import (
	"testing"
)

func TestMeasureDataDistribution(t *testing.T) {
	sys, mol, _ := testSystem(t, 2000, 211, DefaultParams())
	rep, err := MeasureDataDistribution(sys, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerRank) != 8 {
		t.Fatalf("%d rank entries", len(rep.PerRank))
	}
	totalOwnedAtoms, totalOwnedQ := 0, 0
	for _, rd := range rep.PerRank {
		totalOwnedAtoms += rd.OwnedAtoms
		totalOwnedQ += rd.OwnedQPoints
		if rd.LETBytes <= 0 {
			t.Errorf("rank %d: LET bytes %d", rd.Rank, rd.LETBytes)
		}
		// Each rank's LET must be smaller than full replication (the
		// whole point of distributing the data).
		if rd.LETBytes >= rep.ReplicatedBytes {
			t.Errorf("rank %d: LET %d ≥ replicated %d", rd.Rank, rd.LETBytes, rep.ReplicatedBytes)
		}
	}
	// Partitions cover everything exactly once.
	if totalOwnedAtoms != mol.NumAtoms() {
		t.Errorf("owned atoms sum to %d, want %d", totalOwnedAtoms, mol.NumAtoms())
	}
	if totalOwnedQ != sys.Surf.NumPoints() {
		t.Errorf("owned q-points sum to %d, want %d", totalOwnedQ, sys.Surf.NumPoints())
	}
	if rep.Savings() <= 1 {
		t.Errorf("savings %.2f, want > 1", rep.Savings())
	}
}

func TestDataDistributionSavingsGrowWithP(t *testing.T) {
	sys, _, _ := testSystem(t, 3000, 212, DefaultParams())
	r2, err := MeasureDataDistribution(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	r12, err := MeasureDataDistribution(sys, 12)
	if err != nil {
		t.Fatal(err)
	}
	if r12.Savings() <= r2.Savings() {
		t.Errorf("savings did not grow with P: %.2fx at P=2, %.2fx at P=12",
			r2.Savings(), r12.Savings())
	}
}

func TestDataDistributionErrors(t *testing.T) {
	sys, _, _ := testSystem(t, 200, 213, DefaultParams())
	if _, err := MeasureDataDistribution(sys, 0); err == nil {
		t.Error("P=0 accepted")
	}
}

func TestMeasureRecoveryRedivision(t *testing.T) {
	sys, _, _ := testSystem(t, 200, 213, DefaultParams())
	qLeaves := len(sys.QPts.Leaves())
	aLeaves := len(sys.Atoms.Leaves())
	nAtoms := sys.Mol.NumAtoms()

	rep, err := MeasureRecoveryRedivision(sys, 4, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	// The survivors' inherited totals are exactly the dead rank's
	// original segments.
	wantBorn := seglen(qLeaves, 4, 2)
	wantEpol := seglen(aLeaves, 4, 2)
	wantSlots := seglen(nAtoms, 4, 2)
	if rep.TotalBornRows != wantBorn || rep.TotalEpolRows != wantEpol || rep.TotalAtomSlots != wantSlots {
		t.Errorf("totals = %d/%d/%d rows, want %d/%d/%d",
			rep.TotalBornRows, rep.TotalEpolRows, rep.TotalAtomSlots, wantBorn, wantEpol, wantSlots)
	}
	// The dead rank inherits nothing; every survivor recomputes data.
	if l := rep.PerRank[2]; l.BornRows != 0 || l.EpolRows != 0 || l.AtomSlots != 0 || l.RecomputeBytes != 0 {
		t.Errorf("dead rank has recovery load %+v", l)
	}
	for _, r := range []int{0, 1, 3} {
		if rep.PerRank[r].RecomputeBytes <= 0 {
			t.Errorf("survivor %d recomputes no data", r)
		}
	}

	// Two ordered deaths: totals cover both victims' segments.
	rep2, err := MeasureRecoveryRedivision(sys, 4, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.TotalAtomSlots != seglen(nAtoms, 4, 2)+seglen(nAtoms, 4, 0) {
		t.Errorf("two-death atom slots = %d", rep2.TotalAtomSlots)
	}

	if _, err := MeasureRecoveryRedivision(sys, 0, nil); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := MeasureRecoveryRedivision(sys, 4, []int{9}); err == nil {
		t.Error("out-of-range dead rank accepted")
	}
}

func seglen(n, P, r int) int {
	lo, hi := segment(n, P, r)
	return hi - lo
}
