package core

import (
	"testing"
)

func TestMeasureDataDistribution(t *testing.T) {
	sys, mol, _ := testSystem(t, 2000, 211, DefaultParams())
	rep, err := MeasureDataDistribution(sys, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerRank) != 8 {
		t.Fatalf("%d rank entries", len(rep.PerRank))
	}
	totalOwnedAtoms, totalOwnedQ := 0, 0
	for _, rd := range rep.PerRank {
		totalOwnedAtoms += rd.OwnedAtoms
		totalOwnedQ += rd.OwnedQPoints
		if rd.LETBytes <= 0 {
			t.Errorf("rank %d: LET bytes %d", rd.Rank, rd.LETBytes)
		}
		// Each rank's LET must be smaller than full replication (the
		// whole point of distributing the data).
		if rd.LETBytes >= rep.ReplicatedBytes {
			t.Errorf("rank %d: LET %d ≥ replicated %d", rd.Rank, rd.LETBytes, rep.ReplicatedBytes)
		}
	}
	// Partitions cover everything exactly once.
	if totalOwnedAtoms != mol.NumAtoms() {
		t.Errorf("owned atoms sum to %d, want %d", totalOwnedAtoms, mol.NumAtoms())
	}
	if totalOwnedQ != sys.Surf.NumPoints() {
		t.Errorf("owned q-points sum to %d, want %d", totalOwnedQ, sys.Surf.NumPoints())
	}
	if rep.Savings() <= 1 {
		t.Errorf("savings %.2f, want > 1", rep.Savings())
	}
}

func TestDataDistributionSavingsGrowWithP(t *testing.T) {
	sys, _, _ := testSystem(t, 3000, 212, DefaultParams())
	r2, err := MeasureDataDistribution(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	r12, err := MeasureDataDistribution(sys, 12)
	if err != nil {
		t.Fatal(err)
	}
	if r12.Savings() <= r2.Savings() {
		t.Errorf("savings did not grow with P: %.2fx at P=2, %.2fx at P=12",
			r2.Savings(), r12.Savings())
	}
}

func TestDataDistributionErrors(t *testing.T) {
	sys, _, _ := testSystem(t, 200, 213, DefaultParams())
	if _, err := MeasureDataDistribution(sys, 0); err == nil {
		t.Error("P=0 accepted")
	}
}
