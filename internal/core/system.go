// Package core implements the paper's primary contribution: octree-based
// Greengard–Rokhlin-style near–far approximation of surface-r⁶
// Generalized Born radii (Figure 2: APPROX-INTEGRALS and
// PUSH-INTEGRALS-TO-ATOMS) and of the GB polarization energy (Figure 3:
// APPROX-EPOL with per-node Born-radius-binned charge histograms), plus
// the three execution models of Table II — OCT_CILK (shared memory),
// OCT_MPI (distributed) and OCT_MPI+CILK (hybrid, Figure 4) — and the
// naïve exact reference implementations of Equations 2 and 4.
package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"gbpolar/internal/geom"
	"gbpolar/internal/mathx"
	"gbpolar/internal/molecule"
	"gbpolar/internal/octree"
	"gbpolar/internal/surface"
)

// BornKernel selects the surface integral of the Born-radius phase.
type BornKernel int

const (
	// R6 is the surface-based r⁶ approximation of Eq. 4 (Grycuk) — the
	// paper's method, more accurate for near-spherical solutes.
	R6 BornKernel = iota
	// R4 is the Coulomb-field r⁴ approximation of Eq. 3, kept for the
	// accuracy comparison the paper cites from Grycuk 2003.
	R4
)

// String implements fmt.Stringer.
func (k BornKernel) String() string {
	if k == R4 {
		return "r4"
	}
	return "r6"
}

// Params are the tunable knobs of the octree algorithms.
type Params struct {
	// EpsBorn is the Born-radius approximation parameter ε (the paper's
	// experiments fix it at 0.9). Larger ε → faster, less accurate.
	EpsBorn float64
	// EpsEpol is the E_pol approximation parameter ε (swept 0.1–0.9 in
	// the paper's Figure 10).
	EpsEpol float64
	// EpsSolv is the solvent dielectric (default 80, water).
	EpsSolv float64
	// Math toggles the paper's "approximate math" fast kernels.
	Math mathx.Mode
	// Kernel selects the Born-radius surface integral (default R6).
	Kernel BornKernel
	// StrictBornMAC switches the Born-phase opening criterion to the
	// worst-case (1+ε)^{1/6} bound of Section II instead of the loose
	// (1+2/ε) criterion the paper's measurements imply (see DESIGN.md
	// §1). Strict is near-exact but forfeits the Born-phase speedup
	// below ~10⁵ atoms.
	StrictBornMAC bool
	// LeafCap is the octree leaf capacity (default 8).
	LeafCap int
	// Builder selects the octree construction algorithm for both trees
	// (default the recursive reference builder; octree.BuilderMorton is
	// the sorted cold-path builder). Both produce the same decomposition
	// on realistic inputs; Morton is faster and keys the atoms tree for
	// incremental updates.
	Builder octree.Builder
	// DebugCheckLists makes every compiled-list evaluation recompile the
	// interaction lists from the current geometry and assert they match
	// the cached ones — the paranoid mode backing the rigid-transform
	// reuse invariant (DESIGN.md §6). It also re-verifies the SoA lane
	// padding invariants. Expensive; for tests and debugging.
	DebugCheckLists bool
	// Precision selects the arithmetic tier of the compiled batch kernels
	// (precision.go): exact float64 (default), laned approximate-math
	// float64, or float32 lanes with float64 row reduction. It does not
	// affect the interaction lists or the recursive reference paths.
	Precision Precision
	// FarOrder is the multipole order of the far-field approximation
	// (farorder.go, DESIGN.md §15): 0 keeps the paper's zeroth-order
	// pseudo-particle and is bit-identical to the pre-moment code; 1 adds
	// dipole corrections, 2 adds traceless-quadrupole corrections. Each
	// order loosens the opening criterion analytically (the first
	// neglected moment order keeps the same error budget), so higher
	// orders admit far interactions at shorter separations — fewer,
	// larger far entries at equal error.
	FarOrder int
}

// DefaultParams returns the configuration of the paper's headline runs:
// ε = 0.9 for both phases, water solvent, exact math.
func DefaultParams() Params {
	return Params{EpsBorn: 0.9, EpsEpol: 0.9, EpsSolv: 80, Math: mathx.Exact, LeafCap: 8}
}

func (p Params) withDefaults() Params {
	if p.EpsBorn <= 0 {
		p.EpsBorn = 0.9
	}
	if p.EpsEpol <= 0 {
		p.EpsEpol = 0.9
	}
	if p.EpsSolv <= 1 {
		p.EpsSolv = 80
	}
	if p.LeafCap <= 0 {
		p.LeafCap = 8
	}
	return p
}

// Validate reports parameter problems.
func (p Params) Validate() error {
	if math.IsNaN(p.EpsBorn) || p.EpsBorn < 0 {
		return fmt.Errorf("core: EpsBorn %g invalid", p.EpsBorn)
	}
	if math.IsNaN(p.EpsEpol) || p.EpsEpol < 0 {
		return fmt.Errorf("core: EpsEpol %g invalid", p.EpsEpol)
	}
	if p.EpsSolv <= 1 {
		return fmt.Errorf("core: EpsSolv %g must exceed 1", p.EpsSolv)
	}
	if p.FarOrder < 0 || p.FarOrder > 2 {
		return fmt.Errorf("core: FarOrder %d out of range [0,2]", p.FarOrder)
	}
	return nil
}

// System bundles a molecule, its sampled surface and the two octrees
// (T_A over atoms, T_Q over q-points) with the per-slot payloads
// re-ordered to match each tree's cache-friendly layout.
type System struct {
	Mol  *molecule.Molecule
	Surf *surface.Surface
	// Atoms is T_A; slot i corresponds to atom Atoms.Index[i].
	Atoms *octree.Tree
	// QPts is T_Q; slot i corresponds to q-point QPts.Index[i].
	QPts *octree.Tree

	// Charge and Radius are atom payloads in T_A slot order.
	Charge, Radius []float64
	// WN is the weight-premultiplied surface normal w_q·n_q per q-point
	// in T_Q slot order.
	WN []geom.Vec3
	// QNodeWN is Σ w_q·n_q over the q-points under each T_Q node — the
	// ñ_Q aggregate of the paper's APPROX-INTEGRALS.
	QNodeWN []geom.Vec3

	// SoA mirrors for the batched kernels (kernels.go), all in tree-slot
	// order: atom positions, q-point positions, the weight-premultiplied
	// surface normals, and the atoms-octree node centers. The flat
	// component arrays let the inner loops run without Vec3 struct loads
	// or Node pointer chasing; they are refreshed whenever the underlying
	// geometry moves (UpdateAtoms, ApplyRigidTransform). Each array is
	// allocated with its capacity rounded up to mathx.LaneWidth and the
	// pad slots kept at zero (checkSoAPadding asserts this under
	// DebugCheckLists), so lane-blocked sweeps and the float32 mirror
	// conversion can run whole blocks with no bounds-check tail.
	AtomX, AtomY, AtomZ    []float64
	QX, QY, QZ             []float64
	WNX, WNY, WNZ          []float64
	ANodeX, ANodeY, ANodeZ []float64

	Params Params

	// soaGen counts SoA refreshes; f32view caches the lazily converted
	// float32 mirror of the component arrays for the f32 precision tier,
	// tagged with the generation it was built from (system32.go).
	soaGen  atomic.Uint64
	f32view atomic.Pointer[f32SoA]
	f32mu   sync.Mutex

	// lists caches the compiled interaction lists (ilist.go), reused
	// across Compute* calls and rigid re-poses; listsMu guards lazy
	// compilation when distributed ranks share the System.
	listsMu sync.Mutex
	lists   *CompiledLists

	// nodeScratch pools NumNodes-sized float64 buffers (the downward
	// inheritance vector of PushIntegralsToAtoms) across calls and ranks.
	nodeScratch sync.Pool
}

// NewSystem builds the octrees and aggregates for a molecule/surface
// pair. It is the preprocessing step the paper's timing excludes
// ("we can consider the octree construction cost as a pre-processing
// cost", Section IV.C); Runner implementations time the energy phases
// only, like the paper.
func NewSystem(mol *molecule.Molecule, surf *surface.Surface, params Params) (*System, error) {
	params = params.withDefaults()
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if mol.NumAtoms() == 0 {
		return nil, fmt.Errorf("core: molecule %q has no atoms", mol.Name)
	}
	if surf.NumPoints() == 0 {
		return nil, fmt.Errorf("core: surface has no quadrature points")
	}

	ta, err := octree.Build(mol.Positions(), octree.Options{LeafCap: params.LeafCap, Builder: params.Builder})
	if err != nil {
		return nil, fmt.Errorf("core: atoms octree: %w", err)
	}
	qpos := make([]geom.Vec3, surf.NumPoints())
	for i, p := range surf.Points {
		qpos[i] = p.Pos
	}
	tq, err := octree.Build(qpos, octree.Options{LeafCap: params.LeafCap, Builder: params.Builder})
	if err != nil {
		return nil, fmt.Errorf("core: q-points octree: %w", err)
	}
	return assembleSystem(mol, surf, ta, tq, params), nil
}

// assembleSystem derives the slot-ordered payloads, node aggregates and
// SoA mirrors for ALREADY-BUILT octrees — the tail of NewSystem, split
// out so the snapshot loader (snapshot.go) can reconstruct a System from
// serialized trees without rebuilding them. params must already be
// defaulted and validated, and the trees must index mol/surf (ta over
// the atom positions, tq over the q-point positions).
func assembleSystem(mol *molecule.Molecule, surf *surface.Surface, ta, tq *octree.Tree, params Params) *System {
	s := &System{
		Mol: mol, Surf: surf,
		Atoms: ta, QPts: tq,
		Charge: make([]float64, mol.NumAtoms(), padLanes(mol.NumAtoms())),
		Radius: make([]float64, mol.NumAtoms(), padLanes(mol.NumAtoms())),
		WN:     make([]geom.Vec3, surf.NumPoints()),
		Params: params,
	}
	for slot, orig := range ta.Index {
		s.Charge[slot] = mol.Atoms[orig].Charge
		s.Radius[slot] = mol.Atoms[orig].Radius
	}
	for slot, orig := range tq.Index {
		p := surf.Points[orig]
		s.WN[slot] = p.Normal.Scale(p.Weight)
	}
	s.QNodeWN = qNodeAggregates(tq, s.WN)
	s.attachMoments()
	s.refreshAtomSoA()
	s.refreshQPointSoA()
	return s
}

// Names of the moment sets the higher-order far kernels read
// (farorder.go): the atom charge density on T_A and the
// weight-premultiplied surface-normal vector density on T_Q.
const (
	momentSetCharge = "charge"
	momentSetWN     = "wn"
)

// attachMoments registers the two moment sets the higher-order far
// kernels read (farorder.go). Both are cheap O(N) aggregates, so they
// are always attached — Params.FarOrder may be raised after NewSystem
// and the moments are already there. Snapshot-restored trees arrive with
// their moment sets decoded; those are kept verbatim (re-attaching would
// also work, but keeping them is what makes a truncated moment block in
// the snapshot detectable).
func (s *System) attachMoments() {
	if s.Atoms.MomentsOf(momentSetCharge) == nil {
		q := make([]float64, s.Mol.NumAtoms())
		for i, a := range s.Mol.Atoms {
			q[i] = a.Charge
		}
		if err := s.Atoms.AttachMoments(momentSetCharge, [][]float64{q}, false); err != nil {
			panic(err) // lengths are derived from the molecule; cannot fail
		}
	}
	if s.QPts.MomentsOf(momentSetWN) == nil {
		n := s.Surf.NumPoints()
		wn := [][]float64{make([]float64, n), make([]float64, n), make([]float64, n)}
		for i, p := range s.Surf.Points {
			v := p.Normal.Scale(p.Weight)
			wn[0][i], wn[1][i], wn[2][i] = v.X, v.Y, v.Z
		}
		if err := s.QPts.AttachMoments(momentSetWN, wn, true); err != nil {
			panic(err)
		}
	}
}

// refreshAtomSoA rebuilds the flat atom-position and node-center arrays
// from the atoms octree (after construction, update or rigid motion).
func (s *System) refreshAtomSoA() {
	s.AtomX, s.AtomY, s.AtomZ = splitVecs(s.Atoms.Pts, s.AtomX, s.AtomY, s.AtomZ)
	n := s.Atoms.NumNodes()
	p := padLanes(n)
	if cap(s.ANodeX) < p {
		s.ANodeX = make([]float64, p)
		s.ANodeY = make([]float64, p)
		s.ANodeZ = make([]float64, p)
	}
	s.ANodeX, s.ANodeY, s.ANodeZ = s.ANodeX[:n], s.ANodeY[:n], s.ANodeZ[:n]
	zeroPad(s.ANodeX, s.ANodeY, s.ANodeZ)
	for i := range s.Atoms.Nodes {
		c := s.Atoms.Nodes[i].Center
		s.ANodeX[i], s.ANodeY[i], s.ANodeZ[i] = c.X, c.Y, c.Z
	}
	s.soaGen.Add(1)
}

// refreshQPointSoA rebuilds the flat q-point position and weighted-normal
// arrays from the q-points octree and WN.
func (s *System) refreshQPointSoA() {
	s.QX, s.QY, s.QZ = splitVecs(s.QPts.Pts, s.QX, s.QY, s.QZ)
	s.WNX, s.WNY, s.WNZ = splitVecs(s.WN, s.WNX, s.WNY, s.WNZ)
	s.soaGen.Add(1)
}

// padLanes rounds a SoA length up to the next lane-width multiple — the
// padded capacity every component array is allocated with.
func padLanes(n int) int {
	return (n + mathx.LaneWidth - 1) &^ (mathx.LaneWidth - 1)
}

// zeroPad clears the pad slots between len and the padded capacity of
// equally-sized component arrays, keeping the padding invariant across
// capacity reuse (a shrinking node count would otherwise leave stale
// values in the pad).
func zeroPad(arrs ...[]float64) {
	for _, a := range arrs {
		for i, p := len(a), padLanes(len(a)); i < p; i++ {
			a[:p][i] = 0
		}
	}
}

// splitVecs scatters an AoS Vec3 slice into three component arrays,
// reusing the destination capacity when possible. Arrays are allocated
// with lane-padded capacity and zeroed pad slots (see padLanes).
func splitVecs(src []geom.Vec3, x, y, z []float64) (ox, oy, oz []float64) {
	p := padLanes(len(src))
	if cap(x) < p {
		x = make([]float64, p)
		y = make([]float64, p)
		z = make([]float64, p)
	}
	x, y, z = x[:len(src)], y[:len(src)], z[:len(src)]
	zeroPad(x, y, z)
	for i, v := range src {
		x[i], y[i], z[i] = v.X, v.Y, v.Z
	}
	return x, y, z
}

// checkSoAPadding asserts the lane-padding invariant of every SoA
// component array: capacity rounded up to mathx.LaneWidth with zeroed
// pad slots. Run by RecheckLists, i.e. under Params.DebugCheckLists.
func (s *System) checkSoAPadding() error {
	check := func(name string, a []float64) error {
		p := padLanes(len(a))
		if cap(a) < p {
			return fmt.Errorf("core: SoA array %s has cap %d < padded len %d (lane width %d)",
				name, cap(a), p, mathx.LaneWidth)
		}
		for i := len(a); i < p; i++ {
			if a[:p][i] != 0 {
				return fmt.Errorf("core: SoA array %s pad slot %d is %g, want 0", name, i, a[:p][i])
			}
		}
		return nil
	}
	for _, c := range []struct {
		name string
		a    []float64
	}{
		{"Charge", s.Charge}, {"Radius", s.Radius},
		{"AtomX", s.AtomX}, {"AtomY", s.AtomY}, {"AtomZ", s.AtomZ},
		{"QX", s.QX}, {"QY", s.QY}, {"QZ", s.QZ},
		{"WNX", s.WNX}, {"WNY", s.WNY}, {"WNZ", s.WNZ},
		{"ANodeX", s.ANodeX}, {"ANodeY", s.ANodeY}, {"ANodeZ", s.ANodeZ},
	} {
		if err := check(c.name, c.a); err != nil {
			return err
		}
	}
	return nil
}

// ApplyRigidTransform rigidly moves the whole system — both octrees, the
// weighted normals and the SoA mirrors — without rebuilding anything.
// Rigid motion preserves every pairwise distance and every node radius,
// so the near/far classification of the compiled interaction lists stays
// valid and the lists are deliberately NOT invalidated (the reuse
// invariant of DESIGN.md §6; Params.DebugCheckLists re-verifies it at
// every evaluation).
func (s *System) ApplyRigidTransform(t geom.Transform) {
	s.Atoms.ApplyTransform(t)
	s.QPts.ApplyTransform(t)
	for i := range s.WN {
		s.WN[i] = t.ApplyVector(s.WN[i])
	}
	for i := range s.QNodeWN {
		s.QNodeWN[i] = t.ApplyVector(s.QNodeWN[i])
	}
	s.refreshAtomSoA()
	s.refreshQPointSoA()
}

// InvalidateLists drops the cached interaction lists; the next Compute*
// recompiles them. Called whenever a non-rigid geometry change (or a
// parameter change) breaks the near/far classification.
func (s *System) InvalidateLists() {
	s.listsMu.Lock()
	s.lists = nil
	s.listsMu.Unlock()
}

// grabNodeScratch returns a zeroed NumNodes-sized scratch buffer from
// the pool (concurrent ranks each get their own).
func (s *System) grabNodeScratch() []float64 {
	n := s.Atoms.NumNodes()
	if v := s.nodeScratch.Get(); v != nil {
		if buf := *v.(*[]float64); cap(buf) >= n {
			buf = buf[:n]
			for i := range buf {
				buf[i] = 0
			}
			return buf
		}
	}
	return make([]float64, n)
}

func (s *System) releaseNodeScratch(buf []float64) {
	s.nodeScratch.Put(&buf)
}

// qNodeAggregates computes Σ w·n per node from a prefix sum over the
// contiguous slot ranges.
func qNodeAggregates(t *octree.Tree, wn []geom.Vec3) []geom.Vec3 {
	prefix := make([]geom.Vec3, len(wn)+1)
	for i, v := range wn {
		prefix[i+1] = prefix[i].Add(v)
	}
	out := make([]geom.Vec3, t.NumNodes())
	for i := range t.Nodes {
		n := &t.Nodes[i]
		out[i] = prefix[n.End].Sub(prefix[n.Start])
	}
	return out
}

// MemoryBytes estimates the per-rank resident footprint of the system —
// the quantity the paper's Section V.B memory comparison replicates per
// MPI rank.
func (s *System) MemoryBytes() int64 {
	return s.Mol.MemoryBytes() + s.Surf.MemoryBytes() +
		s.Atoms.MemoryBytes() + s.QPts.MemoryBytes() +
		int64(len(s.Charge)+len(s.Radius))*8 +
		int64(len(s.WN)+len(s.QNodeWN))*24
}

// kern returns the scalar kernels for the system's effective math mode
// (Params.mathMode — the non-exact precision tiers imply approximate
// scalar kernels so the whole pipeline stays in one accuracy class).
func (s *System) kern() mathx.Kernels { return mathx.ForMode(s.Params.mathMode()) }

// UpdateAtoms moves the atoms to new positions (original atom order) and
// incrementally repairs the atoms octree (octree.Tree.Update — the
// dynamic-octree machinery of the paper's reference [8]), re-deriving the
// slot-ordered payloads. The surface and its octree are left untouched:
// this is the rigid-cavity setting of flexible-molecule steps between
// boundary rebuilds. It returns the number of atoms that changed leaf.
func (s *System) UpdateAtoms(newPositions []geom.Vec3) (moved int, err error) {
	if len(newPositions) != s.Mol.NumAtoms() {
		return 0, fmt.Errorf("core: UpdateAtoms with %d positions for %d atoms",
			len(newPositions), s.Mol.NumAtoms())
	}
	moved, err = s.Atoms.Update(newPositions)
	if err != nil {
		return moved, err
	}
	s.commitAtomPositions(newPositions)
	// Non-rigid motion: the compiled near/far classification is stale.
	// (UpdateAtomsRepair is the variant that repairs it instead.)
	s.InvalidateLists()
	return moved, nil
}

// BornRadiiToOriginalOrder maps tree-slot-ordered Born radii back to the
// molecule's original atom order.
func (s *System) BornRadiiToOriginalOrder(slotRadii []float64) []float64 {
	out := make([]float64, len(slotRadii))
	for slot, orig := range s.Atoms.Index {
		out[orig] = slotRadii[slot]
	}
	return out
}
