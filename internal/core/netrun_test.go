package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"gbpolar/internal/obs"
)

// netPaths returns fresh membership/checkpoint paths for one run.
func netPaths(t *testing.T) (membership, checkpoint string) {
	dir := t.TempDir()
	return filepath.Join(dir, "cluster.json"), filepath.Join(dir, "sys.ckpt")
}

// netWorkerGoroutines hosts ranks 1..procs-1 as goroutines running the
// REAL worker entry point (membership file, checkpoint decode, TCP dial)
// — everything a worker process does except the process boundary.
func netWorkerGoroutines(membership string, procs int) (outs []*ElasticOut, errs []error, wait func()) {
	outs = make([]*ElasticOut, procs)
	errs = make([]error, procs)
	var wg sync.WaitGroup
	for r := 1; r < procs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			outs[r], errs[r] = RunNetWorker(membership, r, NetWorkerOptions{
				StallTimeout: 60 * time.Second,
				JoinBudget:   60 * time.Second,
			})
		}(r)
	}
	return outs, errs, wg.Wait
}

// The acceptance parity run: a 4-rank TCP cluster on the 5k-atom
// workload matches the in-process resilient runner to 1e-12 relative —
// same algorithm, real sockets, workers restored from the checkpoint.
func TestNetRunMatchesResilient5k(t *testing.T) {
	atoms := 5000
	if testing.Short() {
		atoms = 800
	}
	sys, _, _ := testSystem(t, atoms, 21, DefaultParams())
	want := runResilient(t, sys, resilientCfg(nil))

	membership, checkpoint := netPaths(t)
	outs, errs, wait := netWorkerGoroutines(membership, 4)
	res, err := RunNetCoordinator(context.Background(), sys, NetOptions{
		Procs:          4,
		MembershipPath: membership,
		CheckpointPath: checkpoint,
		StallTimeout:   60 * time.Second,
	})
	wait()
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 4; r++ {
		if errs[r] != nil {
			t.Fatalf("worker rank %d: %v", r, errs[r])
		}
	}
	if res.Report == nil || res.Report.Faults == nil || res.Report.Faults.Degraded {
		t.Fatalf("clean net run degraded: %+v", res.Report)
	}
	if e := relErr(res.Epol, want.Epol); e > 1e-12 {
		t.Fatalf("net E_pol %.17g vs resilient %.17g (rel %g)", res.Epol, want.Epol, e)
	}
	for i := range want.BornRadii {
		if e := relErr(res.BornRadii[i], want.BornRadii[i]); e > 1e-12 {
			t.Fatalf("Born radius %d: net %.17g vs resilient %.17g", i, res.BornRadii[i], want.BornRadii[i])
		}
	}
	// Every worker that completed the protocol agreed on the energy — the
	// reduction is a consensus value, identical on all ranks.
	for r := 1; r < 4; r++ {
		if !outs[r].Completed {
			t.Fatalf("worker rank %d did not complete", r)
		}
		if outs[r].Epol != res.Epol {
			t.Fatalf("rank %d E_pol %.17g differs from rank 0's %.17g", r, outs[r].Epol, res.Epol)
		}
	}
}

// TestNetWorkerHelper is the re-exec entry point for the chaos test: it
// becomes a real worker process when the environment says so (and is
// skipped as a no-op in a normal test run).
func TestNetWorkerHelper(t *testing.T) {
	if os.Getenv("GBPOL_NET_HELPER") != "1" {
		t.Skip("helper process entry point; driven by TestNetChaosSIGKILL")
	}
	rank, _ := strconv.Atoi(os.Getenv("GBPOL_NET_RANK"))
	kill, _ := strconv.Atoi(os.Getenv("GBPOL_NET_KILL"))
	var wo *obs.Obs
	if os.Getenv("GBPOL_NET_TELEMETRY") == "1" {
		// An observing worker ships telemetry; the chaos driver asserts
		// the SIGKILLed rank's spans survive in the merged trace.
		wo = obs.New()
	}
	_, err := RunNetWorker(os.Getenv("GBPOL_NET_MEMBERSHIP"), rank, NetWorkerOptions{
		StallTimeout:     60 * time.Second,
		JoinBudget:       30 * time.Second,
		KillAtCollective: kill,
		Obs:              wo,
	})
	if err != nil {
		// A respawned-too-late worker (run already over) exits non-zero;
		// the driving test only asserts on the coordinator's result.
		fmt.Fprintf(os.Stderr, "helper rank %d: %v\n", rank, err)
		os.Exit(1)
	}
}

// The chaos acceptance run: REAL worker processes, one SIGKILLed at a
// seeded random collective boundary, respawned and re-admitted — and the
// energy still matches the shared-memory reference to 1e-12 (or the run
// reports degradation, never a wrong answer).
func TestNetChaosSIGKILL(t *testing.T) {
	atoms := 1500
	if testing.Short() {
		atoms = 500
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	victim := 1 + rng.Intn(3)   // ranks 1..3 (0 is the coordinator)
	killColl := 2 + rng.Intn(2) // collective 2 or 3: the victim completes
	// at least one collective first, so the merged trace must hold its
	// boundary-flushed spans from before the SIGKILL.
	t.Logf("chaos: SIGKILL rank %d entering collective %d", victim, killColl)

	sys, _, _ := testSystem(t, atoms, 33, DefaultParams())
	want, err := RunShared(sys, SharedOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}

	membership, checkpoint := netPaths(t)
	var mu sync.Mutex
	killArmed := true
	var procs []*exec.Cmd
	spawn := func(rank int) error {
		cmd := exec.Command(exe, "-test.run", "^TestNetWorkerHelper$")
		env := append(os.Environ(),
			"GBPOL_NET_HELPER=1",
			"GBPOL_NET_RANK="+strconv.Itoa(rank),
			"GBPOL_NET_MEMBERSHIP="+membership,
			"GBPOL_NET_TELEMETRY=1",
		)
		mu.Lock()
		if killArmed && rank == victim {
			killArmed = false // the respawned incarnation must survive
			env = append(env, "GBPOL_NET_KILL="+strconv.Itoa(killColl))
		}
		mu.Unlock()
		cmd.Env = env
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return err
		}
		mu.Lock()
		procs = append(procs, cmd)
		mu.Unlock()
		go cmd.Wait()
		return nil
	}
	t.Cleanup(func() {
		mu.Lock()
		defer mu.Unlock()
		for _, cmd := range procs {
			if cmd.Process != nil {
				cmd.Process.Kill()
			}
		}
	})

	coObs := obs.New()
	flightDir := filepath.Join(t.TempDir(), "flight")
	res, err := RunNetCoordinator(context.Background(), sys, NetOptions{
		Procs:             4,
		MembershipPath:    membership,
		CheckpointPath:    checkpoint,
		Spawn:             spawn,
		RespawnDead:       true,
		StallTimeout:      60 * time.Second,
		HeartbeatInterval: 50 * time.Millisecond,
		Obs:               coObs,
		FlightDir:         flightDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	fr := res.Report.Faults
	if fr == nil {
		t.Fatal("chaos run carries no fault report")
	}
	if fr.Degraded {
		// Acceptable outcome: the run reported degradation instead of a
		// wrong answer — but the energy must still be correct (it came
		// from the shared fallback).
		t.Logf("degraded: %s", fr.DegradedReason)
	} else if fr.Crashes < 1 {
		t.Fatalf("SIGKILL was never detected: %+v", fr)
	}
	if e := relErr(res.Epol, want.Epol); e > 1e-12 {
		t.Fatalf("chaos E_pol %.17g vs shared %.17g (rel %g)", res.Epol, want.Epol, e)
	}

	// The observability plane under chaos: the death (or degradation)
	// dumped the coordinator's flight ring.
	dumps, err := filepath.Glob(filepath.Join(flightDir, "flight-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) == 0 {
		t.Fatalf("no flight-recorder dump in %s after a detected crash", flightDir)
	}
	// And the victim's boundary-flushed telemetry survived the SIGKILL:
	// every phase completed before collective killColl was shipped, so
	// the merged trace holds at least killColl-1 of the victim's phase
	// spans (the respawned incarnation adds the rest on a clean heal).
	if !fr.Degraded && killColl > 1 {
		victimPhases := 0
		for _, ev := range coObs.Trace.Events() {
			if ev.Rank == victim && ev.Cat == "phase" {
				victimPhases++
			}
		}
		if victimPhases < killColl-1 {
			t.Fatalf("merged trace holds %d phase spans for killed rank %d, want >= %d",
				victimPhases, victim, killColl-1)
		}
	}
}

// A restarted coordinator resumes from its checkpoint: the snapshot
// restores the compiled lists (no recompilation) and a rerun over fresh
// workers reproduces the energy exactly.
func TestNetCoordinatorRestartFromCheckpoint(t *testing.T) {
	sys, _, _ := testSystem(t, 400, 9, DefaultParams())
	membership, checkpoint := netPaths(t)
	_, errs, wait := netWorkerGoroutines(membership, 2)
	res1, err := RunNetCoordinator(context.Background(), sys, NetOptions{
		Procs:          2,
		MembershipPath: membership,
		CheckpointPath: checkpoint,
		StallTimeout:   60 * time.Second,
	})
	wait()
	if err != nil {
		t.Fatal(err)
	}
	if errs[1] != nil {
		t.Fatal(errs[1])
	}

	// "Coordinator restart": a fresh process would load the checkpoint
	// instead of rebuilding. The decoded system must already carry the
	// compiled lists — resuming pays zero traversal/compilation cost.
	sys2, err := LoadSnapshot(checkpoint, sys.Params)
	if err != nil {
		t.Fatal(err)
	}
	if sys2.lists == nil {
		t.Fatal("checkpoint restored without compiled lists — restart would recompile")
	}
	membership2 := filepath.Join(t.TempDir(), "cluster2.json")
	_, errs2, wait2 := netWorkerGoroutines(membership2, 2)
	res2, err := RunNetCoordinator(context.Background(), sys2, NetOptions{
		Procs:          2,
		MembershipPath: membership2,
		CheckpointPath: checkpoint,
		StallTimeout:   60 * time.Second,
	})
	wait2()
	if err != nil {
		t.Fatal(err)
	}
	if errs2[1] != nil {
		t.Fatal(errs2[1])
	}
	if res2.Epol != res1.Epol {
		t.Fatalf("restarted run E_pol %.17g differs from original %.17g", res2.Epol, res1.Epol)
	}
}

// Cancelling the context aborts a net run that would otherwise wait for
// missing workers, and tears down every goroutine the run started.
func TestNetRunContextCancel(t *testing.T) {
	sys, _, _ := testSystem(t, 150, 5, DefaultParams())
	membership, checkpoint := netPaths(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	// Procs=2 with no worker ever joining: rank 0 blocks at its first
	// collective until the cancel rips the cluster down.
	_, err := RunNetCoordinator(ctx, sys, NetOptions{
		Procs:          2,
		MembershipPath: membership,
		CheckpointPath: checkpoint,
		StallTimeout:   60 * time.Second,
		JoinDeadline:   60 * time.Second,
	})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in the error chain, got %v", err)
	}
}

// A joiner admitted after the final collective has nothing to compute
// and reports Completed=false instead of wrong numbers.
func TestNetWorkerLateJoin(t *testing.T) {
	sys, _, _ := testSystem(t, 150, 6, DefaultParams())
	membership, checkpoint := netPaths(t)
	outs, errs, wait := netWorkerGoroutines(membership, 2)
	res, err := RunNetCoordinator(context.Background(), sys, NetOptions{
		Procs:          2,
		MembershipPath: membership,
		CheckpointPath: checkpoint,
		StallTimeout:   60 * time.Second,
	})
	wait()
	if err != nil || errs[1] != nil {
		t.Fatal(err, errs[1])
	}
	if !outs[1].Completed || outs[1].Epol != res.Epol {
		t.Fatalf("founding worker: %+v vs %.17g", outs[1], res.Epol)
	}
}
