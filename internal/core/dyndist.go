package core

import (
	"fmt"
	"math/rand"

	"gbpolar/internal/cluster"
	"gbpolar/internal/obs"
	"gbpolar/internal/sched"
)

// This file implements the paper's Section VI future work: "we are
// planning to incorporate explicit dynamic load balancing techniques such
// as work-stealing" ACROSS compute nodes (the cilk++ scheduler already
// steals inside a node). The energy phase — the dominant and least
// balanced phase — runs under a peer-to-peer range-stealing protocol on
// top of the cluster substrate's point-to-point messages:
//
//   - every rank starts with its static segment of atom leaves;
//   - between batches it answers pending steal requests by giving away
//     the BACK half of its remaining range (steal-half, the standard
//     policy);
//   - an idle rank picks random victims and blocks for their replies,
//     answering other thieves' requests with "empty" while it waits (so
//     thief/thief cycles cannot deadlock);
//   - a rank that has failed to steal from P−1 consecutive victims
//     reports done to rank 0, then serves empty replies until rank 0 —
//     after every rank (including itself) is done — broadcasts
//     termination. Done ranks never re-acquire work, so no work is lost.
//
// The protocol exchanges only leaf-range indices: stolen work is
// processed against the same replicated octree, so communication volume
// is O(#steals), independent of M.

// Message tags of the stealing protocol.
const (
	tagStealReq = 100 + iota
	tagStealRep
	tagDone
	tagFinish
)

// DynStats reports the stealing behaviour of one run (summed over ranks).
type DynStats struct {
	// Steals counts successful inter-rank steals.
	Steals int
	// FailedSteals counts empty replies received by thieves.
	FailedSteals int
	// LeavesMigrated counts leaves processed by a rank other than their
	// static owner.
	LeavesMigrated int
}

// RunDistributedDynamic is RunDistributed with inter-rank work stealing
// in the energy phase. The Born phase keeps the static node-based
// division (it is cheap and well balanced after far-field pruning).
func RunDistributedDynamic(sys *System, cfg cluster.Config) (*Result, *DynStats, error) {
	if cfg.OpsPerSecond <= 0 {
		cfg.OpsPerSecond = CalibratedOpsPerSecond()
	}
	// The stealing protocol's behaviour depends on virtual timing, so
	// real execution must follow the virtual clocks (see cluster/pace.go).
	cfg.Paced = true
	outs := make([]rankOut, cfg.Procs)
	stats := make([]DynStats, cfg.Procs)
	rep, err := cluster.Run(cfg, func(c *Comm) error {
		return dynRank(sys, c, &outs[c.Rank()], &stats[c.Rank()])
	})
	if err != nil {
		// The stealing protocol is not self-healing — a fault-typed
		// failure (dead peer mid-steal, dead link, stall) degrades to the
		// shared runner instead of failing the computation.
		if !degradable(err, rep) {
			return nil, nil, err
		}
		shared, serr := RunShared(sys, SharedOptions{
			Threads:      cfg.ThreadsPerProc,
			OpsPerSecond: cfg.OpsPerSecond,
			Obs:          cfg.Obs,
		})
		if serr != nil {
			return nil, nil, serr
		}
		if rep != nil {
			if rep.Faults == nil {
				rep.Faults = &cluster.FaultReport{}
			}
			rep.Faults.Degraded = true
			rep.Faults.DegradedReason = err.Error()
			shared.Report = rep
		}
		return shared, &DynStats{}, nil
	}
	res := &Result{
		Epol:         outs[0].epol,
		BornRadii:    sys.BornRadiiToOriginalOrder(outs[0].radii),
		WallSeconds:  rep.WallSeconds,
		ModelSeconds: rep.VirtualSeconds,
		Report:       rep,
	}
	total := &DynStats{}
	for i := range outs {
		res.Ops += outs[i].ops
		total.Steals += stats[i].Steals
		total.FailedSteals += stats[i].FailedSteals
		total.LeavesMigrated += stats[i].LeavesMigrated
	}
	return res, total, nil
}

// bornPhase runs Figure 4's steps 1–5 (shared by the static and dynamic
// runners) and returns the gathered Born radii in slot order.
func bornPhase(sys *System, c *Comm, pool *sched.Pool, out *rankOut) ([]float64, error) {
	P, rank := c.Size(), c.Rank()
	p := pool.NumWorkers()
	qLeaves := sys.QPts.Leaves()
	nAtoms := sys.Mol.NumAtoms()

	// Ranks share the System's compiled lists (first caller compiles,
	// the rest reuse); Born row i is qLeaves[i], so this rank's segment
	// maps directly onto rows [lo,hi).
	o := c.Obs()
	bsp := o.Begin(rank, "phase", "build", c.Clock())
	lists := sys.Lists(pool)
	bsp.End(c.Clock())
	if rank == 0 {
		// Static list structure is identical across ranks — record once.
		lists.RecordMetrics(o)
	}
	il := lists.Born
	lo, hi := segment(len(qLeaves), P, rank)
	sp := o.Begin(rank, "phase", "born", c.Clock())
	accs := make([]*bornAccum, p)
	for i := range accs {
		accs[i] = newBornAccum(sys)
	}
	sched.ParallelFor(pool, hi-lo, rowGrain(hi-lo, p), func(l, h, w int) {
		for i := l; i < h; i++ {
			before := accs[w].ops
			bornRow(sys, il, lo+i, accs[w])
			if d := accs[w].ops - before; d > accs[w].maxTask {
				accs[w].maxTask = d
			}
		}
	})
	merged := accs[0]
	for _, a := range accs[1:] {
		merged.add(a)
	}
	c.ChargeOps(modelPhaseOps(merged.ops, maxOps(accs), merged.maxTask, p))
	out.ops += merged.ops
	sp.End(c.Clock(), obs.F("rows", float64(hi-lo)), obs.F("ops", merged.ops))
	o.Counter("kernel.born.batches").Add(int64(hi - lo))

	// The reduced vector carries the full receiver expansion (node/atom
	// scalars plus grad/hess under FarOrder > 0 — see bornAccum.vecLen);
	// each rank then pushes globally-summed corrections to its atoms.
	sum, err := c.Allreduce(merged.appendVec(make([]float64, 0, merged.vecLen())), cluster.Sum)
	if err != nil {
		return nil, err
	}
	merged.readVec(sum)

	aLo, aHi := segment(nAtoms, P, rank)
	sp = o.Begin(rank, "phase", "push", c.Clock())
	slotRadii := make([]float64, nAtoms)
	pushOps := PushIntegralsToAtoms(sys, merged, aLo, aHi, slotRadii)
	c.ChargeOps(pushOps / float64(p))
	out.ops += pushOps
	sp.End(c.Clock(), obs.F("ops", pushOps))

	counts := make([]int, P)
	for r := 0; r < P; r++ {
		l, h := segment(nAtoms, P, r)
		counts[r] = h - l
	}
	gathered, err := c.Allgatherv(slotRadii[aLo:aHi], counts)
	if err != nil {
		return nil, err
	}
	copy(slotRadii, gathered)
	return slotRadii, nil
}

// dynEpol is the per-rank state of the stealing protocol.
type dynEpol struct {
	sys   *System
	c     *Comm
	pool  *sched.Pool
	ctx   *EpolContext
	il    *InteractionLists // compiled E_pol lists; row i is leaves[i]
	conv  [][]float64       // per-worker far-field convolution scratch
	st    *DynStats
	out   *rankOut
	eaccs []epolAccum

	leaves      []int32
	front, back int // remaining locally-owned range
	batch       int
	chargedOps  float64
	chargedSecs float64
	leavesDone  int
	doneCount   int // rank 0 only: done reports received (excl. self)
}

// dynRank follows distRank through step 5, then runs the stealing
// protocol for the energy phase.
func dynRank(sys *System, c *Comm, out *rankOut, st *DynStats) error {
	P, rank := c.Size(), c.Rank()
	pool := sched.NewPool(c.Threads())
	defer pool.Close()
	c.TrackMemory(sys.MemoryBytes())

	slotRadii, err := bornPhase(sys, c, pool, out)
	if err != nil {
		return err
	}

	d := &dynEpol{
		sys: sys, c: c, pool: pool, st: st, out: out,
		ctx:    NewEpolContext(sys, slotRadii),
		il:     sys.Lists(pool).Epol,
		eaccs:  make([]epolAccum, pool.NumWorkers()),
		leaves: sys.Atoms.Leaves(),
	}
	d.conv = newConvScratch(d.ctx, pool.NumWorkers())
	d.front, d.back = segment(len(d.leaves), P, rank)
	d.batch = (d.back - d.front) / 64
	if d.batch < 1 {
		d.batch = 1
	}

	// Phase A: drain the local range, answering thieves between batches.
	// Pace() keeps the real execution order aligned with the virtual
	// clocks so steal availability matches the modeled machine.
	o := c.Obs()
	sp := o.Begin(rank, "phase", "epol", c.Clock())
	for d.front < d.back {
		c.Pace()
		h := d.front + d.batch
		if h > d.back {
			h = d.back
		}
		d.processRange(d.front, h)
		d.front = h
		if err := d.answerPendingRequests(true); err != nil {
			return err
		}
	}

	// Phase B: steal until termination.
	if P > 1 {
		if err := d.stealLoop(); err != nil {
			return err
		}
	}
	sp.End(c.Clock(), obs.F("rows", float64(d.leavesDone)))
	o.Counter("kernel.epol.batches").Add(int64(d.leavesDone))
	o.Counter("dyn.steals").Add(int64(st.Steals))
	o.Counter("dyn.leaves_migrated").Add(int64(st.LeavesMigrated))
	o.Counter("sched.steals").Add(pool.Steals())
	return d.finish(slotRadii)
}

// processRange evaluates leaves [l,h) on the rank's pool and charges the
// batch's modeled time (work/p; batches are small, so the span term is
// folded into the batch granularity).
func (d *dynEpol) processRange(l, h int) {
	sched.ParallelFor(d.pool, h-l, 1, func(pl, ph, w int) {
		for i := pl; i < ph; i++ {
			epolRow(d.ctx, d.il, l+i, d.conv[w], &d.eaccs[w])
		}
	})
	var tot float64
	for i := range d.eaccs {
		tot += d.eaccs[i].ops
	}
	delta := (tot - d.chargedOps) / float64(d.pool.NumWorkers())
	d.c.ChargeOps(delta)
	d.chargedOps = tot
	d.chargedSecs += delta / d.c.OpsPerSecond()
	d.leavesDone += h - l
}

// answerPendingRequests serves queued steal requests. When giveWork is
// true and enough local range remains, the thief receives the back half;
// otherwise an empty reply.
func (d *dynEpol) answerPendingRequests(giveWork bool) error {
	for {
		req, err := d.c.RecvMsg(cluster.AnySource, tagStealReq, false)
		if err != nil {
			return err
		}
		if req == nil {
			return nil
		}
		if err := d.reply(req, giveWork); err != nil {
			return err
		}
	}
}

// perLeaf returns this rank's measured per-leaf cost in seconds (0 when
// nothing has been processed yet).
func (d *dynEpol) perLeaf() float64 {
	if d.leavesDone == 0 {
		return 0
	}
	return d.chargedSecs / float64(d.leavesDone)
}

// reply answers one steal request. Replies are stamped at the request's
// virtual arrival time (see cluster.ReplyStamped) so the thief's clock
// reflects the modeled machine, not this process's goroutine schedule.
//
// The grant is a BALANCING split, not blind steal-half: using the
// victim's measured per-leaf cost and the thief's advertised one, the
// victim hands over exactly the amount that equalizes the two projected
// completion times. A thief whose virtual clock (or modeled node speed)
// means it could not finish anything sooner than the victim gets an
// empty reply — otherwise whichever goroutine the host happened to
// schedule first would vacuum up work regardless of the modeled machine.
func (d *dynEpol) reply(req *cluster.Message, giveWork bool) error {
	remaining := d.back - d.front
	if give := d.balancedGive(req, remaining); giveWork && give > 0 {
		nlo, nhi := d.back-give, d.back
		d.back = nlo
		return d.c.ReplyStamped(req, tagStealRep, []float64{float64(nlo), float64(nhi)})
	}
	return d.c.ReplyStamped(req, tagStealRep, nil)
}

// balancedGive solves victimClock + victimPer·(rem−g) = thiefClock +
// thiefPer·g for g, clamps it to keep at least one batch locally, and
// returns 0 when the thief would not help (or no estimate exists yet).
func (d *dynEpol) balancedGive(req *cluster.Message, remaining int) int {
	victimPer := d.perLeaf()
	if victimPer == 0 || remaining <= d.batch {
		return 0
	}
	thiefPer := victimPer
	if len(req.Data) == 1 && req.Data[0] > 0 {
		thiefPer = req.Data[0]
	}
	g := (d.c.Clock() - req.SentAt + victimPer*float64(remaining)) / (victimPer + thiefPer)
	give := int(g)
	// Cap each grant: per-leaf costs vary spatially, so large grants
	// priced off historical averages can overload the thief past the
	// victim's own finish time. Bounded grants limit that error; an idle
	// thief simply steals again (round trips are microseconds on the
	// virtual clock).
	if cap := max(2*d.batch, remaining/4); give > cap {
		give = cap
	}
	if give > remaining-d.batch {
		give = remaining - d.batch
	}
	if give < d.batch {
		return 0 // not worth a message round trip
	}
	return give
}

// stealLoop runs until rank 0 broadcasts termination. Victims are
// visited round-robin (randomized start) so the one overloaded rank is
// found within P−1 attempts even on wide communicators; the failure
// budget spans several full cycles because a busy victim may refuse
// early requests that it would grant later (its queued work becomes
// visible as the virtual clocks advance).
func (d *dynEpol) stealLoop() error {
	c := d.c
	P, rank := c.Size(), c.Rank()
	rng := rand.New(rand.NewSource(int64(rank)*7919 + 13))
	next := rng.Intn(P)
	failures := 0
	for {
		next++
		victim := next % P
		if victim == rank {
			continue
		}
		// Advertise our per-leaf cost so the victim can judge whether we
		// would actually finish the stolen work sooner (a slow rank must
		// not steal back work it would only delay).
		if err := c.Send(victim, tagStealReq, []float64{d.perLeaf()}); err != nil {
			return err
		}
		work, terminated, err := d.awaitReply(victim)
		if err != nil {
			return err
		}
		if terminated {
			return nil
		}
		if len(work) == 2 {
			failures = 0
			d.st.Steals++
			wlo, whi := int(work[0]), int(work[1])
			d.st.LeavesMigrated += whi - wlo
			// Adopt the stolen range as the new local range so further
			// thieves can re-steal from it.
			d.front, d.back = wlo, whi
			for d.front < d.back {
				d.c.Pace()
				h := d.front + d.batch
				if h > d.back {
					h = d.back
				}
				d.processRange(d.front, h)
				d.front = h
				if err := d.answerPendingRequests(true); err != nil {
					return err
				}
			}
			continue
		}
		d.st.FailedSteals++
		failures++
		if failures >= 4*(P-1) {
			return d.idleUntilFinish()
		}
	}
}

// awaitReply blocks for the victim's reply while serving other thieves
// and (on rank 0) counting done reports. terminated is true if the run
// finished while waiting (possible only on rank 0, defensively handled
// everywhere).
func (d *dynEpol) awaitReply(victim int) (work []float64, terminated bool, err error) {
	c := d.c
	for {
		msg, err := c.RecvMsg(cluster.AnySource, cluster.AnyTag, true)
		if err != nil {
			return nil, false, err
		}
		switch msg.Tag {
		case tagStealRep:
			if msg.Src != victim {
				return nil, false, fmt.Errorf("core: reply from %d while waiting on %d", msg.Src, victim)
			}
			return msg.Data, false, nil
		case tagStealReq:
			// We are idle ourselves: nothing to give.
			if err := c.ReplyStamped(msg, tagStealRep, nil); err != nil {
				return nil, false, err
			}
		case tagDone:
			if c.Rank() != 0 {
				return nil, false, fmt.Errorf("core: rank %d received tagDone", c.Rank())
			}
			d.doneCount++
		case tagFinish:
			return nil, true, nil
		default:
			return nil, false, fmt.Errorf("core: unexpected tag %d while awaiting reply", msg.Tag)
		}
	}
}

// idleUntilFinish reports this rank done and serves empty replies until
// rank 0 broadcasts termination. Rank 0 additionally counts done reports
// and performs the broadcast.
func (d *dynEpol) idleUntilFinish() error {
	c := d.c
	P, rank := c.Size(), c.Rank()
	if rank != 0 {
		if err := c.Send(0, tagDone, nil); err != nil {
			return err
		}
		for {
			msg, err := c.RecvMsg(cluster.AnySource, cluster.AnyTag, true)
			if err != nil {
				return err
			}
			switch msg.Tag {
			case tagStealReq:
				if err := c.ReplyStamped(msg, tagStealRep, nil); err != nil {
					return err
				}
			case tagFinish:
				return nil
			case tagStealRep:
				// A straggler reply from a request answered after we went
				// idle cannot happen: every request got exactly one reply,
				// consumed in awaitReply. Defensively ignore.
			default:
				return fmt.Errorf("core: rank %d unexpected tag %d while idle", rank, msg.Tag)
			}
		}
	}
	// Rank 0: wait for everyone (some done reports may already be
	// counted from awaitReply).
	for d.doneCount < P-1 {
		msg, err := c.RecvMsg(cluster.AnySource, cluster.AnyTag, true)
		if err != nil {
			return err
		}
		switch msg.Tag {
		case tagDone:
			d.doneCount++
		case tagStealReq:
			if err := c.ReplyStamped(msg, tagStealRep, nil); err != nil {
				return err
			}
		default:
			return fmt.Errorf("core: rank 0 unexpected tag %d while draining", msg.Tag)
		}
	}
	for r := 1; r < P; r++ {
		if err := c.Send(r, tagFinish, nil); err != nil {
			return err
		}
	}
	return nil
}

// finish reduces the partial energies (every rank participates).
func (d *dynEpol) finish(slotRadii []float64) error {
	var raw float64
	for i := range d.eaccs {
		raw += d.eaccs[i].energy
		d.out.ops += d.eaccs[i].ops
	}
	total, err := d.c.Allreduce([]float64{raw}, cluster.Sum)
	if err != nil {
		return err
	}
	d.out.epol = d.ctx.Finish(total[0])
	d.out.radii = slotRadii
	return nil
}
