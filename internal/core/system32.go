package core

// The float32 SoA mirror backing the f32 precision tier (precision.go):
// a lazily maintained copy of the System's component arrays narrowed to
// float32, in the same tree-slot order, with every array's LENGTH (not
// just capacity) rounded up to mathx.LaneWidth and the pad slots zero —
// lane loops over whole mirrors never need a remainder.
//
// The mirror is cache-invalidated by generation counting rather than
// eagerly rebuilt: refreshAtomSoA/refreshQPointSoA bump System.soaGen,
// and f32() reconverts only when the cached view's generation is stale.
// Exact-tier workloads therefore never pay for the mirror, and a warm
// f32 pose scan pays one conversion sweep per pose (a fraction of one
// kernel sweep). Concurrent ranks share one view: the atomic pointer
// publish/load pairs give the necessary happens-before, and the mirror
// only mutates while no kernels run (geometry refreshes already require
// that).

// f32SoA is the float32 mirror of the System SoA arrays.
type f32SoA struct {
	gen                    uint64
	atomX, atomY, atomZ    []float32
	qX, qY, qZ             []float32
	wnX, wnY, wnZ          []float32
	aNodeX, aNodeY, aNodeZ []float32
	charge                 []float32
}

// f32 returns the current float32 mirror, reconverting if the SoA
// generation moved. Safe for concurrent use by ranks sharing the System.
func (s *System) f32() *f32SoA {
	gen := s.soaGen.Load()
	if v := s.f32view.Load(); v != nil && v.gen == gen {
		return v
	}
	s.f32mu.Lock()
	defer s.f32mu.Unlock()
	v := s.f32view.Load()
	if v != nil && v.gen == gen {
		return v
	}
	if v == nil {
		v = &f32SoA{}
	}
	v.gen = gen
	v.atomX = narrow(v.atomX, s.AtomX)
	v.atomY = narrow(v.atomY, s.AtomY)
	v.atomZ = narrow(v.atomZ, s.AtomZ)
	v.qX = narrow(v.qX, s.QX)
	v.qY = narrow(v.qY, s.QY)
	v.qZ = narrow(v.qZ, s.QZ)
	v.wnX = narrow(v.wnX, s.WNX)
	v.wnY = narrow(v.wnY, s.WNY)
	v.wnZ = narrow(v.wnZ, s.WNZ)
	v.aNodeX = narrow(v.aNodeX, s.ANodeX)
	v.aNodeY = narrow(v.aNodeY, s.ANodeY)
	v.aNodeZ = narrow(v.aNodeZ, s.ANodeZ)
	v.charge = narrow(v.charge, s.Charge)
	s.f32view.Store(v)
	return v
}

// narrow converts src to float32 into dst (reusing capacity), returning
// a slice of lane-padded length with zeroed pad slots.
func narrow(dst []float32, src []float64) []float32 {
	p := padLanes(len(src))
	if cap(dst) < p {
		dst = make([]float32, p)
	}
	dst = dst[:p]
	for i := len(src); i < p; i++ {
		dst[i] = 0
	}
	for i, v := range src {
		dst[i] = float32(v)
	}
	return dst
}
