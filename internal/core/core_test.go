package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gbpolar/internal/geom"
	"gbpolar/internal/mathx"
	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

// testSystem builds a molecule+surface+system for n atoms.
func testSystem(t testing.TB, n int, seed int64, params Params) (*System, *molecule.Molecule, *surface.Surface) {
	t.Helper()
	mol := molecule.GenProtein("core-test", n, seed)
	surf, err := surface.ForMolecule(mol, surface.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(mol, surf, params)
	if err != nil {
		t.Fatal(err)
	}
	return sys, mol, surf
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// A point charge at the center of a spherical solute of radius a has
// Born radius exactly a — the analytic anchor for the whole r⁶ pipeline.
func TestNaiveBornRadiusSphereAnalytic(t *testing.T) {
	for _, a := range []float64{2.0, 5.0, 17.0} {
		surf, err := surface.SphereSurface(geom.Vec3{}, a, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		mol := &molecule.Molecule{Atoms: []molecule.Atom{{Charge: 1, Radius: 1.0}}}
		r := NaiveBornRadii(mol, surf, mathx.Exact)
		// The icosphere underestimates the sphere slightly; level 4 is
		// within a fraction of a percent.
		if relErr(r[0], a) > 0.01 {
			t.Errorf("sphere radius %v: Born radius %v (rel err %.4f)", a, r[0], relErr(r[0], a))
		}
	}
}

// Off-center charges must have smaller Born radii (closer to the
// surface ⇒ stronger solvent interaction), monotonically in the offset.
func TestNaiveBornRadiusSphereOffCenterMonotone(t *testing.T) {
	a := 10.0
	surf, err := surface.SphereSurface(geom.Vec3{}, a, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, off := range []float64{0, 2, 4, 6, 8} {
		mol := &molecule.Molecule{Atoms: []molecule.Atom{
			{Pos: geom.V(off, 0, 0), Charge: 1, Radius: 1.0},
		}}
		r := NaiveBornRadii(mol, surf, mathx.Exact)[0]
		if r >= prev {
			t.Fatalf("Born radius not decreasing with offset: %.3f at offset %v (prev %.3f)", r, off, prev)
		}
		prev = r
	}
}

// A single atom's GB self-energy is the Born formula −τ/2·q²/R.
func TestNaiveEpolSingleAtomBornFormula(t *testing.T) {
	mol := &molecule.Molecule{Atoms: []molecule.Atom{{Charge: -1, Radius: 2}}}
	e := NaiveEpol(mol, []float64{3.0}, 80, mathx.Exact)
	want := -0.5 * 332.0636 * (1 - 1.0/80) / 3.0
	if relErr(e, want) > 1e-12 {
		t.Errorf("self energy %v want %v", e, want)
	}
}

// The Section II far-field condition guarantees the r⁻⁶ kernel is
// approximated within relative error ε: if d > (rA+rQ)·macFactor(ε),
// then ((d+s)/(d−s))⁶ ≤ 1+ε.
func TestMacFactorErrorBound(t *testing.T) {
	f := func(epsRaw, sRaw, slackRaw float64) bool {
		eps := math.Mod(math.Abs(epsRaw), 2.0)
		if eps == 0 || math.IsNaN(eps) {
			return true
		}
		s := math.Mod(math.Abs(sRaw), 100) + 1e-6
		slack := 1 + math.Mod(math.Abs(slackRaw), 10) // d strictly beyond the bound
		d := s * strictMACFactor(eps) * slack
		ratio := (d + s) / (d - s)
		return math.Pow(ratio, 6) <= 1+eps+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMacFactorEdge(t *testing.T) {
	for _, f := range []func(float64) float64{strictMACFactor, looseMACFactor} {
		if !math.IsInf(f(0), 1) {
			t.Error("MAC factor at ε=0 should be +Inf (never approximate)")
		}
		if f(0.9) < 1 {
			t.Errorf("factor(0.9) = %v", f(0.9))
		}
		// Smaller ε ⇒ stricter (larger) factor.
		if f(0.1) <= f(0.9) {
			t.Error("MAC factor not decreasing in ε")
		}
	}
	// The strict bound is always at least as conservative as the loose one.
	for _, eps := range []float64{0.1, 0.5, 0.9, 2.0} {
		if strictMACFactor(eps) < looseMACFactor(eps) {
			t.Errorf("strict factor below loose at ε=%v", eps)
		}
	}
}

// ε = 0 disables all approximation: the octree traversal must reproduce
// the naïve results up to floating-point summation order.
func TestEpsZeroMatchesNaive(t *testing.T) {
	params := Params{EpsBorn: 1e-12, EpsEpol: 1e-12, EpsSolv: 80, LeafCap: 8}
	sys, mol, surf := testSystem(t, 250, 71, params)
	res, err := RunShared(sys, SharedOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	naiveR := NaiveBornRadii(mol, surf, mathx.Exact)
	for i := range naiveR {
		if relErr(res.BornRadii[i], naiveR[i]) > 1e-9 {
			t.Fatalf("atom %d: octree radius %v, naive %v", i, res.BornRadii[i], naiveR[i])
		}
	}
	naiveE := NaiveEpol(mol, naiveR, 80, mathx.Exact)
	if relErr(res.Epol, naiveE) > 1e-9 {
		t.Fatalf("octree E=%v naive E=%v", res.Epol, naiveE)
	}
}

// At the paper's headline setting ε = 0.9/0.9 the energy error vs naive
// must stay in the paper's observed band (|error| well below 5%; the
// paper reports <1% for CMV and a few % across ZDock).
func TestEnergyErrorSmallAtHeadlineEps(t *testing.T) {
	sys, mol, surf := testSystem(t, 600, 72, DefaultParams())
	res, err := RunShared(sys, SharedOptions{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	naiveE, naiveR := NaiveEnergy(mol, surf, 80, mathx.Exact)
	if naiveE >= 0 {
		t.Fatalf("naive E_pol %v not negative", naiveE)
	}
	if e := relErr(res.Epol, naiveE); e > 0.05 {
		t.Errorf("energy error %.2f%% at eps 0.9 exceeds 5%%", 100*e)
	}
	// Born radii individually within the kernel bound (1+ε)^{1/3} ≈ 1.24.
	for i := range naiveR {
		if relErr(res.BornRadii[i], naiveR[i]) > 0.30 {
			t.Fatalf("atom %d Born radius error %.1f%%", i, 100*relErr(res.BornRadii[i], naiveR[i]))
		}
	}
}

// Error decreases as ε shrinks (the paper's Figure 10 trend), and ops
// increase.
func TestErrorAndWorkTrendWithEps(t *testing.T) {
	mol := molecule.GenProtein("trend", 500, 73)
	surf, err := surface.ForMolecule(mol, surface.Options{})
	if err != nil {
		t.Fatal(err)
	}
	naiveE, _ := NaiveEnergy(mol, surf, 80, mathx.Exact)
	var errs, ops []float64
	for _, eps := range []float64{0.1, 0.5, 0.9} {
		sys, err := NewSystem(mol, surf, Params{EpsBorn: 0.9, EpsEpol: eps, EpsSolv: 80})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunShared(sys, SharedOptions{Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, relErr(res.Epol, naiveE))
		ops = append(ops, res.Ops)
	}
	if ops[0] <= ops[2] {
		t.Errorf("ops at eps 0.1 (%v) not larger than at 0.9 (%v)", ops[0], ops[2])
	}
	if errs[0] > 0.05 {
		t.Errorf("error at eps 0.1 = %.2f%%, too large", errs[0]*100)
	}
}

func TestHistogramsConserveCharge(t *testing.T) {
	sys, mol, _ := testSystem(t, 400, 74, DefaultParams())
	radii := make([]float64, mol.NumAtoms())
	for i := range radii {
		radii[i] = 1.5 + 0.1*float64(i%20)
	}
	ctx := NewEpolContext(sys, radii)
	// Root histogram sums to total charge.
	var rootSum float64
	for _, q := range ctx.hist[sys.Atoms.Root()] {
		rootSum += q
	}
	if relErr(rootSum, mol.TotalCharge()) > 1e-9 {
		t.Errorf("root histogram sum %v, total charge %v", rootSum, mol.TotalCharge())
	}
	// Every node's histogram sums to the charge under it.
	for ni := range sys.Atoms.Nodes {
		n := &sys.Atoms.Nodes[ni]
		var want float64
		for s := n.Start; s < n.End; s++ {
			want += sys.Charge[s]
		}
		var got float64
		for _, q := range ctx.hist[ni] {
			got += q
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("node %d histogram sum %v, charge %v", ni, got, want)
		}
	}
}

func TestApproximateMathShiftsSlightly(t *testing.T) {
	mol := molecule.GenProtein("amath", 300, 75)
	surf, err := surface.ForMolecule(mol, surface.Options{})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewSystem(mol, surf, Params{EpsBorn: 0.9, EpsEpol: 0.9, EpsSolv: 80, Math: mathx.Exact})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := NewSystem(mol, surf, Params{EpsBorn: 0.9, EpsEpol: 0.9, EpsSolv: 80, Math: mathx.Approximate})
	if err != nil {
		t.Fatal(err)
	}
	re, err := RunShared(exact, SharedOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	ra, err := RunShared(approx, SharedOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if re.Epol == ra.Epol {
		t.Log("approximate math produced bit-identical energy (kernels very accurate) — acceptable")
	}
	if relErr(ra.Epol, re.Epol) > 0.01 {
		t.Errorf("approximate math changed energy by %.2f%% — too much", 100*relErr(ra.Epol, re.Epol))
	}
}

func TestNewSystemErrors(t *testing.T) {
	mol := molecule.GenProtein("err", 50, 76)
	surf, err := surface.ForMolecule(mol, surface.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem(&molecule.Molecule{}, surf, DefaultParams()); err == nil {
		t.Error("empty molecule accepted")
	}
	if _, err := NewSystem(mol, &surface.Surface{}, DefaultParams()); err == nil {
		t.Error("empty surface accepted")
	}
	if _, err := NewSystem(mol, surf, Params{EpsBorn: math.NaN(), EpsEpol: 1, EpsSolv: 80}); err == nil {
		t.Error("NaN eps accepted")
	}
}

func TestSegment(t *testing.T) {
	// Segments tile [0,n) without gaps or overlaps for any P.
	for _, n := range []int{0, 1, 7, 100, 101} {
		for _, p := range []int{1, 2, 3, 12} {
			at := 0
			for i := 0; i < p; i++ {
				lo, hi := segment(n, p, i)
				if lo != at {
					t.Fatalf("n=%d p=%d: segment %d starts at %d, want %d", n, p, i, lo, at)
				}
				at = hi
			}
			if at != n {
				t.Fatalf("n=%d p=%d: segments end at %d", n, p, at)
			}
		}
	}
}

func TestBornFromIntegralClamps(t *testing.T) {
	k := mathx.ForMode(mathx.Exact)
	if r := bornFromIntegral(-1, 1.5, k); r != 150 {
		t.Errorf("negative integral: %v, want clamp 150", r)
	}
	if r := bornFromIntegral(1e30, 1.5, k); r != 1.5 {
		t.Errorf("huge integral: %v, want vdW clamp 1.5", r)
	}
	// 1/R³ = s/4π with s = 4π/8 gives R = 2.
	if r := bornFromIntegral(4*math.Pi/8, 1.5, k); relErr(r, 2) > 1e-12 {
		t.Errorf("inversion: %v want 2", r)
	}
}

func TestDeterministicSharedRun(t *testing.T) {
	params := DefaultParams()
	sys, _, _ := testSystem(t, 300, 77, params)
	a, err := RunShared(sys, SharedOptions{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunShared(sys, SharedOptions{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Per-worker accumulation order varies with stealing, so allow tiny
	// floating-point differences but nothing more.
	if relErr(a.Epol, b.Epol) > 1e-9 {
		t.Errorf("two runs differ: %v vs %v", a.Epol, b.Epol)
	}
}

func TestRandomMoleculesOctreeVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 3; trial++ {
		n := 150 + rng.Intn(250)
		mol := molecule.GenProtein("rand", n, rng.Int63())
		surf, err := surface.ForMolecule(mol, surface.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sys, err := NewSystem(mol, surf, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunShared(sys, SharedOptions{Threads: 3})
		if err != nil {
			t.Fatal(err)
		}
		naiveE, _ := NaiveEnergy(mol, surf, 80, mathx.Exact)
		if e := relErr(res.Epol, naiveE); e > 0.06 {
			t.Errorf("trial %d (n=%d): energy error %.2f%%", trial, n, 100*e)
		}
	}
}
