package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"gbpolar/internal/cluster"
	"gbpolar/internal/obs"
	"gbpolar/internal/sched"
)

// TestSharedRunTraceAndMetrics checks the shared runner's timeline: one
// build/born/push/epol span each, phase spans on the virtual clock with
// the same decomposition ModelSeconds reports, and the static
// interaction-list metrics recorded once.
func TestSharedRunTraceAndMetrics(t *testing.T) {
	sys, _, _ := testSystem(t, 200, 7, Params{})
	o := obs.New()
	res, err := RunShared(sys, SharedOptions{Threads: 2, Obs: o})
	if err != nil {
		t.Fatal(err)
	}

	phases := map[string]obs.Event{}
	for _, ev := range o.Trace.Events() {
		if ev.Cat == "phase" && ev.Ph == "X" {
			if _, dup := phases[ev.Name]; dup {
				t.Errorf("phase %q recorded twice", ev.Name)
			}
			phases[ev.Name] = ev
		}
	}
	for _, want := range []string{"build", "born", "push", "epol"} {
		if _, ok := phases[want]; !ok {
			t.Fatalf("no %q phase span; have %v", want, phases)
		}
	}
	if phases["build"].HasVirt {
		t.Error("build span should be wall-only (preprocessing is untimed)")
	}
	// born ∪ push ∪ epol tile [0, ModelSeconds] on the virtual axis.
	virtSum := phases["born"].VirtDurUS + phases["push"].VirtDurUS + phases["epol"].VirtDurUS
	if e := relErr(virtSum/1e6, res.ModelSeconds); e > 1e-9 {
		t.Errorf("phase virtual durations sum to %g s, ModelSeconds %g", virtSum/1e6, res.ModelSeconds)
	}
	if phases["born"].VirtUS != 0 || !phases["epol"].HasVirt {
		t.Error("virtual phase clocks misattached")
	}

	rows := o.Metrics.Counter("ilist.born.rows").Value()
	if rows <= 0 {
		t.Fatal("no ilist.born.rows recorded")
	}
	if got := o.Metrics.Counter("kernel.born.batches").Value(); got != rows {
		t.Errorf("kernel.born.batches = %d, want %d (one batch per compiled row)", got, rows)
	}
	if o.Metrics.Counter("ilist.epol.near_pairs").Value() <= 0 {
		t.Error("no ilist.epol.near_pairs recorded")
	}
	if o.Metrics.Histogram("ilist.born.row_far").Count() != rows {
		t.Error("row_far histogram missing rows")
	}
}

// The far-entry counters split by admitted expansion order: the three
// .p* counters always tile the total, order 0 puts everything in .p0,
// and a loosened FarOrder=2 compile actually admits rung-2 entries —
// the list-size shift gbtrace report and the watchdog observe.
func TestFarEntriesMetricsSplitByOrder(t *testing.T) {
	for _, order := range []int{0, 2} {
		sys, _, _ := testSystem(t, 400, 7, farOrderParams(order, 0.5))
		o := obs.New()
		if _, err := RunShared(sys, SharedOptions{Threads: 2, Obs: o}); err != nil {
			t.Fatal(err)
		}
		for _, phase := range []string{"born", "epol"} {
			total := o.Metrics.Counter("ilist." + phase + ".far_entries").Value()
			var sum int64
			for p := 0; p <= 2; p++ {
				sum += o.Metrics.Counter(fmt.Sprintf("ilist.%s.far_entries.p%d", phase, p)).Value()
			}
			if total <= 0 || sum != total {
				t.Errorf("order %d %s: per-order counters sum to %d, far_entries %d", order, phase, sum, total)
			}
			if p0 := o.Metrics.Counter("ilist." + phase + ".far_entries.p0").Value(); order == 0 && p0 != total {
				t.Errorf("order 0 %s: .p0 = %d, want the full %d", phase, p0, total)
			}
		}
		if p2 := o.Metrics.Counter("ilist.born.far_entries.p2").Value(); order == 2 && p2 <= 0 {
			t.Error("order 2: no rung-2 Born far entries recorded — the loosened ladder admitted nothing")
		}
	}
}

// TestResilientTraceTimeline is the issue's acceptance run: a resilient
// 4-rank run with an injected crash must produce a timeline holding the
// per-rank phase spans, per-collective spans with byte counts, and the
// fault-detection + recovery events — exportable as both JSONL and a
// chrome://tracing file.
func TestResilientTraceTimeline(t *testing.T) {
	sys, _, _ := testSystem(t, 200, 7, Params{})
	o := obs.New()
	cfg := resilientCfg(&cluster.FaultPlan{Faults: []cluster.Fault{
		{Kind: cluster.CrashAtCollective, Rank: 1, Nth: 2},
	}})
	cfg.Obs = o
	res := runResilient(t, sys, cfg)
	if res.Report.Faults == nil || res.Report.Faults.Crashes != 1 {
		t.Fatalf("expected exactly one crash, report: %+v", res.Report.Faults)
	}

	events := o.Trace.Events()
	phasesByRank := map[int]map[string]bool{}
	instants := map[string]int{}
	collectives := 0
	var collectiveBytes float64
	for _, ev := range events {
		switch {
		case ev.Cat == "phase" && ev.Ph == "X":
			if phasesByRank[ev.Rank] == nil {
				phasesByRank[ev.Rank] = map[string]bool{}
			}
			phasesByRank[ev.Rank][ev.Name] = true
		case ev.Cat == "collective" && ev.Ph == "X":
			collectives++
			collectiveBytes += ev.Args["bytes"]
			if !ev.HasVirt {
				t.Errorf("collective span %q without virtual clock", ev.Name)
			}
		case ev.Ph == "i":
			instants[ev.Name]++
		}
	}
	for r := 0; r < cfg.Procs; r++ {
		if res.Report.PerRank[r].Died {
			continue
		}
		for _, want := range []string{"build", "born", "push", "epol"} {
			if !phasesByRank[r][want] {
				t.Errorf("surviving rank %d missing %q phase span; has %v", r, want, phasesByRank[r])
			}
		}
	}
	if collectives < cfg.Procs {
		t.Errorf("only %d collective spans for %d ranks", collectives, cfg.Procs)
	}
	if collectiveBytes <= 0 {
		t.Error("collective spans carry no byte counts")
	}
	for _, want := range []string{"rank.crash", "death.detect", "rows.recomputed"} {
		if instants[want] == 0 {
			t.Errorf("no %q instant in timeline; have %v", want, instants)
		}
	}

	// Events() is rank-major and time-ordered within a rank.
	for i := 1; i < len(events); i++ {
		a, b := events[i-1], events[i]
		if b.Rank < a.Rank {
			t.Fatal("events not rank-major")
		}
	}

	// Counters agree with the authoritative fault report.
	if got := o.Metrics.Counter("cluster.fault.crashes").Value(); got != 1 {
		t.Errorf("cluster.fault.crashes = %d, want 1", got)
	}
	if o.Metrics.Counter("cluster.fault.detections").Value() <= 0 {
		t.Error("no death detections counted")
	}
	if got := o.Metrics.Counter("cluster.recovered_rows").Value(); got != int64(res.Report.Faults.RecomputedRows) {
		t.Errorf("cluster.recovered_rows = %d, report says %d", got, res.Report.Faults.RecomputedRows)
	}
	if o.Metrics.Counter("cluster.collectives").Value() <= 0 {
		t.Error("no collectives counted")
	}

	// Both exports must round-trip: one JSON object per JSONL line, and a
	// well-formed Trace Event Format envelope.
	var buf bytes.Buffer
	if err := o.Trace.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != o.Trace.NumEvents() {
		t.Fatalf("JSONL has %d lines, trace %d events", len(lines), o.Trace.NumEvents())
	}
	for _, ln := range lines {
		var ev obs.Event
		if err := json.Unmarshal(ln, &ev); err != nil {
			t.Fatalf("bad JSONL line %s: %v", ln, err)
		}
	}
	buf.Reset()
	if err := o.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	if len(chrome.TraceEvents) < o.Trace.NumEvents() {
		t.Errorf("chrome trace has %d events, want >= %d", len(chrome.TraceEvents), o.Trace.NumEvents())
	}
}

// TestKernelHotLoopZeroAllocs pins the hot loops: the SoA batch kernels
// must not allocate, instrumented build or not — observability derives
// its pair counts from the compiled lists, never from inside these
// loops.
func TestKernelHotLoopZeroAllocs(t *testing.T) {
	sys, _, _ := testSystem(t, 300, 9, Params{})
	pool := sched.NewPool(1)
	defer pool.Close()
	lists := sys.Lists(pool)

	acc := newBornAccum(sys)
	row := 0
	if a := testing.AllocsPerRun(100, func() {
		bornRow(sys, lists.Born, row%len(lists.Born.Rows), acc)
		row++
	}); a != 0 {
		t.Errorf("bornRow allocates %.1f objects per call, want 0", a)
	}

	for i := range lists.Born.Rows {
		bornRow(sys, lists.Born, i, acc)
	}
	slotRadii := make([]float64, sys.Mol.NumAtoms())
	PushIntegralsToAtoms(sys, acc, 0, len(slotRadii), slotRadii)
	ctx := NewEpolContext(sys, slotRadii)
	conv := make([]float64, len(ctx.rr))
	var eacc epolAccum
	row = 0
	if a := testing.AllocsPerRun(100, func() {
		epolRow(ctx, lists.Epol, row%len(lists.Epol.Rows), conv, &eacc)
		row++
	}); a != 0 {
		t.Errorf("epolRow allocates %.1f objects per call, want 0", a)
	}
}

// TestDisabledObsOverhead is the issue's overhead guard: attaching the
// observability layer to the 5k-atom shared energy path must cost under
// 2% — and with Obs=nil the instrumented runner pays one pointer test
// per phase boundary, so the nil path can only be cheaper still.
// Interleaved min-of-N absorbs scheduler and thermal noise; a small
// absolute floor keeps sub-millisecond jitter from failing the ratio on
// fast machines.
func TestDisabledObsOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	sys, _, _ := testSystem(t, 5000, 11, Params{})

	run := func(o *obs.Obs) float64 {
		res, err := RunShared(sys, SharedOptions{Threads: 4, Obs: o})
		if err != nil {
			t.Fatal(err)
		}
		return res.WallSeconds
	}
	run(nil) // warm lists, pools, caches

	const (
		reps     = 3
		attempts = 3
		bound    = 0.02
		floorSec = 0.010 // absolute noise floor
	)
	var off, on float64
	for attempt := 0; attempt < attempts; attempt++ {
		off, on = time.Hour.Seconds(), time.Hour.Seconds()
		for rep := 0; rep < reps; rep++ {
			if w := run(nil); w < off {
				off = w
			}
			if w := run(obs.New()); w < on {
				on = w
			}
		}
		if on-off < floorSec || on/off-1 < bound {
			return
		}
	}
	t.Errorf("observability overhead %.2f%% (off %.4fs, on %.4fs), want < %.0f%%",
		100*(on/off-1), off, on, 100*bound)
}
