package core

import "gbpolar/internal/mathx"

// The laned-approximate precision tier (PrecisionLanes): the E_pol row
// sweeps restructured into fixed width-4 blocks that batch the
// transcendental work through mathx.ExpLanes4/RSqrtLanes4, with the
// sub-width remainder peeled through the scalar mathx kernels.
//
// The PORTABLE lane path in this file carries the tier's
// BIT-COMPATIBILITY invariant with the scalar approximate-math compiled
// path (Params.Math = Approximate, PrecisionExact): each lane performs
// exactly the scalar operation sequence (the mathx lane helpers pin this
// per element) and the block epilogue adds the four terms in scalar
// index order, so a single-threaded sweep produces the identical float64
// sum bit for bit (TestLanesTierBitCompatible, which forces this path).
// On hosts with AVX2+FMA the near blocks instead dispatch to the
// assembly kernels (simd_amd64.s), which use FMA contraction and
// pairwise lane reduction — not bit-identical, but pinned to the
// portable path at ~1e-12 relative by TestAsmKernelsMatchPortable, far
// inside the tier's approximate-math accuracy class. The speedup comes
// from four f_GB evaluations per instruction chain — data parallelism
// the one-term-at-a-time scalar loop cannot expose — plus the absence of
// any per-pair call.
//
// The Born phase on this tier: the portable path reuses bornRow's
// scalar float64 loops unchanged (the kernel is pure multiply/divide,
// so the tier's Born radii are bitwise those of the scalar approximate
// path by construction); the asm path sweeps near entries with the
// width-4 divide kernel.
//
// Op accounting matches epolRow/farField entry for entry.

// epolRowLanes is epolRow for the laned tier: same row scaffolding,
// lane-blocked near/sym/far kernels.
func epolRowLanes(ctx *EpolContext, il *InteractionLists, row int, conv []float64, acc *epolAccum) {
	sys := ctx.sys
	t := sys.Atoms
	leaf := il.Rows[row]
	v := &t.Nodes[leaf]

	vlo, vhi := v.Start, v.End
	vx, vy, vz := sys.AtomX[vlo:vhi], sys.AtomY[vlo:vhi], sys.AtomZ[vlo:vhi]
	cv := sys.Charge[vlo:vhi]
	rv := ctx.Radii[vlo:vhi]
	irv := ctx.invRadii[vlo:vhi]

	near := il.Near[il.NearOff[row]:il.NearOff[row+1]]
	for _, ul := range near {
		if useAsmKernels {
			epolNearBlockLanesAsm(ctx, sys, ul, vx, vy, vz, cv, rv, irv, 1, acc)
		} else {
			epolNearBlockLanes(ctx, sys, ul, vx, vy, vz, cv, rv, 1, acc)
		}
		acc.ops += float64(t.Nodes[ul].Count()*v.Count()) + 1
	}
	sym := il.Sym[il.SymOff[row]:il.SymOff[row+1]]
	for _, ul := range sym {
		if useAsmKernels {
			epolNearBlockLanesAsm(ctx, sys, ul, vx, vy, vz, cv, rv, irv, 2, acc)
		} else {
			epolNearBlockLanes(ctx, sys, ul, vx, vy, vz, cv, rv, 2, acc)
		}
		acc.ops += float64(2*t.Nodes[ul].Count()*v.Count()) + 1
	}

	far := il.Far[il.FarOff[row]:il.FarOff[row+1]]
	if len(far) == 0 {
		return
	}
	farFieldLanes(ctx, sys, leaf, far, farOrdRow(il, row), conv, acc)
}

// epolNearBlockLanes sweeps one near block in width-4 lanes: distances
// and f_GB exponents are gathered into lane buffers, the exponential and
// reciprocal square root run as four independent chains, and the four
// charge-weighted terms are added in scalar index order.
func epolNearBlockLanes(ctx *EpolContext, sys *System, ul int32, vx, vy, vz, cv, rv []float64, w float64, acc *epolAccum) {
	// Equal-length hints so the inner loops run bounds-check free.
	vy, vz = vy[:len(vx)], vz[:len(vx)]
	cv, rv = cv[:len(vx)], rv[:len(vx)]
	n := len(vx)
	nb := n &^ (mathx.LaneWidth - 1)
	u := &sys.Atoms.Nodes[ul]
	for ui := u.Start; ui < u.End; ui++ {
		pux, puy, puz := sys.AtomX[ui], sys.AtomY[ui], sys.AtomZ[ui]
		qu := w * sys.Charge[ui]
		ru := ctx.Radii[ui]
		var s float64
		var r2l, rrl, fl [mathx.LaneWidth]float64
		for j := 0; j < nb; j += mathx.LaneWidth {
			for l := 0; l < mathx.LaneWidth; l++ {
				dx, dy, dz := pux-vx[j+l], puy-vy[j+l], puz-vz[j+l]
				r2 := dx*dx + dy*dy + dz*dz
				rr := ru * rv[j+l]
				r2l[l], rrl[l] = r2, rr
				fl[l] = -r2 / (4 * rr)
			}
			mathx.ExpLanes4(&fl)
			for l := 0; l < mathx.LaneWidth; l++ {
				fl[l] = r2l[l] + rrl[l]*fl[l]
			}
			mathx.RSqrtLanes4(&fl)
			// Sequential adds in lane order keep the sum bit-identical to
			// the scalar sweep.
			s += cv[j] * fl[0]
			s += cv[j+1] * fl[1]
			s += cv[j+2] * fl[2]
			s += cv[j+3] * fl[3]
		}
		for j := nb; j < n; j++ {
			dx, dy, dz := pux-vx[j], puy-vy[j], puz-vz[j]
			r2 := dx*dx + dy*dy + dz*dz
			rr := ru * rv[j]
			f2 := r2 + rr*mathx.Exp(-r2/(4*rr))
			s += cv[j] * mathx.RSqrt(f2)
		}
		acc.energy += qu * s
	}
}

// farFieldLanes is the far-field convolution with the per-occupied-k
// kernel evaluations streamed through width-4 lane buffers (ascending k,
// scalar-order epilogue — the same bit-compatibility argument as the
// near blocks). The occupied-k runs are short (a handful of bins), so
// most of the work lands in the scalar peel; the lanes matter for wide
// Born-radius spectra where M_ε grows. The moment corrections (fo,
// farorder.go) are the identical scalar float64 expression added at the
// identical position as in farField, so the tier's bit-compatibility
// with the scalar path is preserved at every FarOrder.
func farFieldLanes(ctx *EpolContext, sys *System, leaf int32, far []int32, fo []uint8, conv []float64, acc *epolAccum) {
	vcx, vcy, vcz := sys.ANodeX[leaf], sys.ANodeY[leaf], sys.ANodeZ[leaf]
	vb := ctx.nzBin[ctx.nzOff[leaf]:ctx.nzOff[leaf+1]]
	vq := ctx.nzQ[ctx.nzOff[leaf]:ctx.nzOff[leaf+1]]
	if len(vb) == 0 {
		farFieldMomentsOnly(ctx, sys, leaf, far, fo, acc)
		acc.ops += float64(len(far))
		return
	}
	ord := 0
	if fo != nil {
		ord = ctx.farOrd
	}
	for _, un := range far {
		dx := sys.ANodeX[un] - vcx
		dy := sys.ANodeY[un] - vcy
		dz := sys.ANodeZ[un] - vcz
		d2 := dx*dx + dy*dy + dz*dz
		if ord > 0 {
			acc.energy += ctx.epolFarCorrection(un, leaf, dx, dy, dz, d2, ord)
		}
		ub := ctx.nzBin[ctx.nzOff[un]:ctx.nzOff[un+1]]
		uq := ctx.nzQ[ctx.nzOff[un]:ctx.nzOff[un+1]]
		if len(ub) == 0 {
			acc.ops++
			continue
		}
		klo := ub[0] + vb[0]
		khi := ub[len(ub)-1] + vb[len(vb)-1]
		for i := range ub {
			qi, bi := uq[i], ub[i]
			for j := range vb {
				conv[bi+vb[j]] += qi * vq[j]
			}
		}
		var s float64
		var wl, rrl, fl [mathx.LaneWidth]float64
		nl := 0
		for k := klo; k <= khi; k++ {
			w := conv[k]
			if w == 0 {
				continue
			}
			rr := ctx.rr[k]
			wl[nl], rrl[nl] = w, rr
			fl[nl] = -d2 / (4 * rr)
			nl++
			if nl < mathx.LaneWidth {
				continue
			}
			nl = 0
			mathx.ExpLanes4(&fl)
			for l := 0; l < mathx.LaneWidth; l++ {
				fl[l] = d2 + rrl[l]*fl[l]
			}
			mathx.RSqrtLanes4(&fl)
			s += wl[0] * fl[0]
			s += wl[1] * fl[1]
			s += wl[2] * fl[2]
			s += wl[3] * fl[3]
		}
		for l := 0; l < nl; l++ {
			f2 := d2 + rrl[l]*mathx.Exp(fl[l])
			s += wl[l] * mathx.RSqrt(f2)
		}
		for k := klo; k <= khi; k++ {
			conv[k] = 0
		}
		acc.energy += s
		acc.ops += float64(len(ub)*len(vb)) + 1
	}
}
