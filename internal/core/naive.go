package core

import (
	"math"

	"gbpolar/internal/gbmodels"
	"gbpolar/internal/mathx"
	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

// maxBornFactor clamps Born radii of (numerically) fully-buried atoms to
// maxBornFactor × the intrinsic radius, keeping f_GB finite.
const maxBornFactor = 100.0

// bornFromIntegral inverts the accumulated surface integral s into an
// effective Born radius: R = (s/4π)^{-1/3}, clamped below by the vdW
// radius (Figure 2's PUSH-INTEGRALS-TO-ATOMS) and above by
// maxBornFactor·r for non-positive or vanishing integrals.
func bornFromIntegral(s, vdw float64, k mathx.Kernels) float64 {
	return bornFromIntegralKernel(s, vdw, k, R6)
}

// bornFromIntegralKernel inverts per the selected kernel:
// r⁶ (Eq. 4): 1/R³ = s/4π ⇒ R = (s/4π)^{-1/3};
// r⁴ (Eq. 3): 1/R  = s/4π ⇒ R = 4π/s.
func bornFromIntegralKernel(s, vdw float64, k mathx.Kernels, kern BornKernel) float64 {
	maxR := maxBornFactor * vdw
	if s <= 0 {
		return maxR
	}
	var r float64
	if kern == R4 {
		r = 4 * math.Pi / s
	} else {
		r = 1 / k.Cbrt(s/(4*math.Pi))
	}
	if r < vdw {
		return vdw
	}
	if r > maxR {
		return maxR
	}
	return r
}

// NaiveBornRadii evaluates Eq. 4 exactly: for every atom, the full sum
// over all N quadrature points — Θ(M·N) work. This is the reference the
// paper's "% of difference with Naïve" columns are measured against.
func NaiveBornRadii(mol *molecule.Molecule, surf *surface.Surface, mode mathx.Mode) []float64 {
	return NaiveBornRadiiKernel(mol, surf, mode, R6)
}

// NaiveBornRadiiKernel is NaiveBornRadii with an explicit choice between
// the r⁶ (Eq. 4) and Coulomb-field r⁴ (Eq. 3) surface integrals.
func NaiveBornRadiiKernel(mol *molecule.Molecule, surf *surface.Surface, mode mathx.Mode, kern BornKernel) []float64 {
	k := mathx.ForMode(mode)
	out := make([]float64, mol.NumAtoms())
	for i, a := range mol.Atoms {
		var s float64
		for _, q := range surf.Points {
			d := q.Pos.Sub(a.Pos)
			r2 := d.Norm2()
			if r2 == 0 {
				continue
			}
			s += q.Weight * q.Normal.Dot(d) / bornDenom(r2, kern)
		}
		out[i] = bornFromIntegralKernel(s, a.Radius, k, kern)
	}
	return out
}

// NaiveEpol evaluates Eq. 2 exactly: the full Θ(M²) double sum over
// ordered atom pairs (diagonal included, where f_GB(i,i) = R_i) with the
// Still kernel. Energies are in kcal/mol.
func NaiveEpol(mol *molecule.Molecule, radii []float64, epsSolv float64, mode mathx.Mode) float64 {
	k := mathx.ForMode(mode)
	tau := gbmodels.Tau(epsSolv)
	var e float64
	for i := range mol.Atoms {
		qi := mol.Atoms[i].Charge
		// Diagonal term: f_GB(i,i) = R_i.
		e += qi * qi / radii[i]
		for j := i + 1; j < len(mol.Atoms); j++ {
			r2 := mol.Atoms[i].Pos.Dist2(mol.Atoms[j].Pos)
			rr := radii[i] * radii[j]
			f2 := r2 + rr*k.Exp(-r2/(4*rr))
			e += 2 * qi * mol.Atoms[j].Charge * k.RSqrt(f2)
		}
	}
	return -0.5 * tau * e
}

// NaiveEnergy runs the full naïve pipeline (Born radii then E_pol) and
// returns both.
func NaiveEnergy(mol *molecule.Molecule, surf *surface.Surface, epsSolv float64, mode mathx.Mode) (epol float64, radii []float64) {
	radii = NaiveBornRadii(mol, surf, mode)
	return NaiveEpol(mol, radii, epsSolv, mode), radii
}
