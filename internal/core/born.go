package core

import (
	"math"

	"gbpolar/internal/geom"
	"gbpolar/internal/octree"
)

// strictMACFactor converts the paper's Section II far-field condition
//
//	r_AQ > (r_A+r_Q) · ((1+ε)^{1/6}+1)/((1+ε)^{1/6}−1)
//
// into a single multiplier: nodes are far enough when
// dist > (r_A+r_Q)·strictMACFactor(ε). This is the worst-case bound that
// keeps the per-pair 1/r⁶ kernel within relative error ε; at ε = 0.9 it
// is ≈18.7 — so strict far-field pairs are rare below ~10⁵ atoms.
// ε = 0 yields +Inf: nothing is ever far and the traversal is exact.
func strictMACFactor(eps float64) float64 {
	return strictMACFactorKernel(eps, R6)
}

// strictMACFactorKernel generalizes the worst-case opening bound to the
// kernel's decay power (1/6 for r⁶, 1/4 for r⁴).
func strictMACFactorKernel(eps float64, k BornKernel) float64 {
	if eps <= 0 {
		return math.Inf(1)
	}
	power := 1.0 / 6
	if k == R4 {
		power = 1.0 / 4
	}
	beta := math.Pow(1+eps, power)
	return (beta + 1) / (beta - 1)
}

// looseMACFactor is the opening criterion consistent with the paper's
// measured behaviour (and with Figure 3's E_pol test, whose (1 + 2/ε)
// threshold is exactly (β+1)/(β−1) with β = 1+ε): far when
// dist > (r_A+r_Q)·(1 + 2/ε). Because the pseudo-q-point sits at the
// centroid, the leading error term cancels and the observed energy error
// stays below 1% at ε = 0.9 while the Born phase drops from Θ(M·N) to
// O(M log M) — the paper's reported regime. See DESIGN.md §1 for the
// measured comparison of both criteria.
func looseMACFactor(eps float64) float64 {
	if eps <= 0 {
		return math.Inf(1)
	}
	return 1 + 2/eps
}

// bornMAC returns the system's Born-phase opening multiplier.
func (s *System) bornMAC() float64 {
	if s.Params.StrictBornMAC {
		return strictMACFactorKernel(s.Params.EpsBorn, s.Params.Kernel)
	}
	return looseMACFactor(s.Params.EpsBorn)
}

// farSeparated is THE far-field opening test, shared by every recursive
// traversal (ApproxIntegrals, DualTreeIntegrals, ApproxEpol, expandPairs)
// and by the interaction-list compiler (ilist.go), so the compiled lists
// cannot drift from the recursive reference paths. Two clusters with
// centers ca/cb and enclosing radii ra/rb are far enough to interact
// through their aggregates when dist(ca,cb) > (ra+rb)·mac. The center
// offset cb−ca and its squared norm are returned because the far-field
// kernels reuse both. Sqrt-free, like the traversals.
func farSeparated(ca, cb geom.Vec3, ra, rb, mac float64) (d geom.Vec3, d2 float64, far bool) {
	d = cb.Sub(ca)
	d2 = d.Norm2()
	s := (ra + rb) * mac
	return d, d2, d2 > s*s
}

// bornDenom returns the kernel denominator |r|⁶ or |r|⁴ from |r|².
func bornDenom(r2 float64, k BornKernel) float64 {
	if k == R4 {
		return r2 * r2
	}
	return r2 * r2 * r2
}

// bornAccum is one worker's private set of s-fields: s_A per atoms-octree
// node and s_a per atom slot (Figure 2). Workers accumulate privately and
// the runner merges, so the parallel traversal needs no atomics.
//
// The struct is kept at exactly 64 bytes (two slice headers + two
// floats) so that each heap-allocated accumulator lands in the 64-byte
// size class and occupies a cache line alone: the hot ops/maxTask
// updates of adjacent workers then never false-share
// (TestAccumulatorsCacheLineSized pins the size).
type bornAccum struct {
	node []float64
	atom []float64
	ops  float64
	// maxTask is the largest single-leaf op count seen — the span term
	// of the Brent-bound time model (see modelPhaseOps).
	maxTask float64
}

func newBornAccum(sys *System) *bornAccum {
	return &bornAccum{
		node: make([]float64, sys.Atoms.NumNodes()),
		atom: make([]float64, sys.Mol.NumAtoms()),
	}
}

func (b *bornAccum) add(o *bornAccum) {
	for i, v := range o.node {
		b.node[i] += v
	}
	for i, v := range o.atom {
		b.atom[i] += v
	}
	b.ops += o.ops
	if o.maxTask > b.maxTask {
		b.maxTask = o.maxTask
	}
}

// ApproxIntegrals runs Figure 2's APPROX-INTEGRALS for one leaf Q of the
// q-points octree against the subtree of T_A rooted at aNode,
// accumulating into acc. mac is macFactor(EpsBorn).
//
// Far pairs contribute the pseudo-q-point term ñ_Q·(c_Q−c_A)/r_AQ⁶ to the
// node field s_A; near leaf pairs get the exact per-atom/per-q-point sums;
// everything else recurses. The kernel is sqrt-free: both the openness
// test and the r⁻⁶ weights use squared distances only. mac is
// System.bornMAC().
func ApproxIntegrals(sys *System, acc *bornAccum, aNode, qLeaf int32, mac float64) {
	a := &sys.Atoms.Nodes[aNode]
	q := &sys.QPts.Nodes[qLeaf]
	d, d2, far := farSeparated(a.Center, q.Center, a.Radius, q.Radius, mac)
	acc.ops++ // node-pair visit

	kern := sys.Params.Kernel
	if far {
		// Far enough: treat Q as a single pseudo-q-point at its center.
		acc.node[aNode] += sys.QNodeWN[qLeaf].Dot(d) / bornDenom(d2, kern)
		return
	}
	if a.IsLeaf {
		// Too close to approximate: exact contributions.
		for ai := a.Start; ai < a.End; ai++ {
			pa := sys.Atoms.Pts[ai]
			var s float64
			for qi := q.Start; qi < q.End; qi++ {
				dv := sys.QPts.Pts[qi].Sub(pa)
				r2 := dv.Norm2()
				if r2 == 0 {
					continue
				}
				s += sys.WN[qi].Dot(dv) / bornDenom(r2, kern)
			}
			acc.atom[ai] += s
		}
		acc.ops += float64(a.Count() * q.Count())
		return
	}
	for _, child := range a.Children {
		if child != octree.NoChild {
			ApproxIntegrals(sys, acc, child, qLeaf, mac)
		}
	}
}

// PushIntegralsToAtoms implements Figure 2's downward pass: every atom's
// total integral is its own s_a plus the s_A of all ancestors; the Born
// radius follows from the r⁻³ inversion. Only slots in [loSlot, hiSlot)
// are written into out — the paper's atom-segment work division
// (s_id/e_id in Figure 2).
//
// Because the linearized tree stores parents before children, the
// ancestor prefix is a single forward sweep, not a recursion.
func PushIntegralsToAtoms(sys *System, acc *bornAccum, loSlot, hiSlot int, out []float64) float64 {
	t := sys.Atoms
	k := sys.kern()
	// The downward-inheritance vector is pure scratch: borrow it from the
	// System pool instead of allocating NumNodes floats on every call
	// (once per rank per run, and once per pose in warm-engine scans).
	inherit := sys.grabNodeScratch()
	defer sys.releaseNodeScratch(inherit)
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.IsLeaf {
			continue
		}
		down := inherit[i] + acc.node[i]
		for _, c := range n.Children {
			if c != octree.NoChild {
				inherit[c] = down
			}
		}
	}
	ops := float64(t.NumNodes())
	for _, li := range t.Leaves() {
		n := &t.Nodes[li]
		lo, hi := int(n.Start), int(n.End)
		if hi <= loSlot || lo >= hiSlot {
			continue
		}
		if lo < loSlot {
			lo = loSlot
		}
		if hi > hiSlot {
			hi = hiSlot
		}
		total := inherit[li] + acc.node[li]
		for s := lo; s < hi; s++ {
			out[s] = bornFromIntegralKernel(acc.atom[s]+total, sys.Radius[s], k, sys.Params.Kernel)
		}
		ops += float64(hi - lo)
	}
	return ops
}
