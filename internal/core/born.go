package core

import (
	"math"

	"gbpolar/internal/geom"
	"gbpolar/internal/octree"
)

// strictMACFactor converts the paper's Section II far-field condition
//
//	r_AQ > (r_A+r_Q) · ((1+ε)^{1/6}+1)/((1+ε)^{1/6}−1)
//
// into a single multiplier: nodes are far enough when
// dist > (r_A+r_Q)·strictMACFactor(ε). This is the worst-case bound that
// keeps the per-pair 1/r⁶ kernel within relative error ε; at ε = 0.9 it
// is ≈18.7 — so strict far-field pairs are rare below ~10⁵ atoms.
// ε = 0 yields +Inf: nothing is ever far and the traversal is exact.
func strictMACFactor(eps float64) float64 {
	return strictMACFactorKernel(eps, R6)
}

// strictMACFactorKernel generalizes the worst-case opening bound to the
// kernel's decay power (1/6 for r⁶, 1/4 for r⁴).
func strictMACFactorKernel(eps float64, k BornKernel) float64 {
	if eps <= 0 {
		return math.Inf(1)
	}
	power := 1.0 / 6
	if k == R4 {
		power = 1.0 / 4
	}
	beta := math.Pow(1+eps, power)
	return (beta + 1) / (beta - 1)
}

// looseMACFactor is the opening criterion consistent with the paper's
// measured behaviour (and with Figure 3's E_pol test, whose (1 + 2/ε)
// threshold is exactly (β+1)/(β−1) with β = 1+ε): far when
// dist > (r_A+r_Q)·(1 + 2/ε). Because the pseudo-q-point sits at the
// centroid, the leading error term cancels and the observed energy error
// stays below 1% at ε = 0.9 while the Born phase drops from Θ(M·N) to
// O(M log M) — the paper's reported regime. See DESIGN.md §1 for the
// measured comparison of both criteria.
func looseMACFactor(eps float64) float64 {
	if eps <= 0 {
		return math.Inf(1)
	}
	return 1 + 2/eps
}

// bornMAC returns the system's Born-phase opening multiplier.
func (s *System) bornMAC() float64 {
	if s.Params.StrictBornMAC {
		return strictMACFactorKernel(s.Params.EpsBorn, s.Params.Kernel)
	}
	return looseMACFactor(s.Params.EpsBorn)
}

// bornMACs returns the Born-phase opening-multiplier ladder: slot 0 is
// bornMAC() exactly, slots 1..FarOrder the equal-error loosened
// multipliers of the higher-order expansions (farorder.go).
func (s *System) bornMACs() [maxFarOrder + 1]float64 {
	return macLadder(s.bornMAC(), s.Params.FarOrder, bornLadderDeg(s.Params.Kernel))
}

// farSeparated is THE far-field opening test, shared by every recursive
// traversal (ApproxIntegrals, DualTreeIntegrals, ApproxEpol, expandPairs)
// and by the interaction-list compiler (ilist.go), so the compiled lists
// cannot drift from the recursive reference paths. Two clusters with
// centers ca/cb and enclosing radii ra/rb are far enough to interact
// through their aggregates when dist(ca,cb) > (ra+rb)·mac. The center
// offset cb−ca and its squared norm are returned because the far-field
// kernels reuse both. Sqrt-free, like the traversals.
func farSeparated(ca, cb geom.Vec3, ra, rb, mac float64) (d geom.Vec3, d2 float64, far bool) {
	d = cb.Sub(ca)
	d2 = d.Norm2()
	s := (ra + rb) * mac
	return d, d2, d2 > s*s
}

// bornDenom returns the kernel denominator |r|⁶ or |r|⁴ from |r|².
func bornDenom(r2 float64, k BornKernel) float64 {
	if k == R4 {
		return r2 * r2
	}
	return r2 * r2 * r2
}

// bornAccum is one worker's private set of s-fields: s_A per atoms-octree
// node and s_a per atom slot (Figure 2). Workers accumulate privately and
// the runner merges, so the parallel traversal needs no atomics.
//
// The struct is kept at exactly 128 bytes (four slice headers + two
// floats + pad) so that each heap-allocated accumulator lands in the
// 128-byte size class and spans exactly two cache lines alone: the hot
// ops/maxTask updates of adjacent workers then never false-share
// (TestAccumulatorsCacheLineSized pins the size).
type bornAccum struct {
	node []float64
	atom []float64
	// grad/hess extend each node's far-field contribution to a receiver
	// expansion value(ξ) = s + g·ξ + ξᵀhξ in the offset ξ from the node
	// center, fed by the order-1/2 moment corrections (farorder.go) and
	// translated to the atoms by PushIntegralsToAtoms. Both are nil at
	// FarOrder = 0, where the downward pass reduces to the plain
	// ancestor-prefix sum, bit for bit.
	grad []geom.Vec3
	hess []geom.Sym3
	ops  float64
	// maxTask is the largest single-leaf op count seen — the span term
	// of the Brent-bound time model (see modelPhaseOps).
	maxTask float64
	_       [2]float64
}

func newBornAccum(sys *System) *bornAccum {
	b := &bornAccum{
		node: make([]float64, sys.Atoms.NumNodes()),
		atom: make([]float64, sys.Mol.NumAtoms()),
	}
	// Checked per call, not cached: FarOrder may be set after NewSystem
	// (engine options mutate Params before the first run).
	if sys.Params.FarOrder > 0 {
		b.grad = make([]geom.Vec3, sys.Atoms.NumNodes())
		b.hess = make([]geom.Sym3, sys.Atoms.NumNodes())
	}
	return b
}

func (b *bornAccum) add(o *bornAccum) {
	for i, v := range o.node {
		b.node[i] += v
	}
	for i, v := range o.atom {
		b.atom[i] += v
	}
	for i, v := range o.grad {
		b.grad[i] = b.grad[i].Add(v)
	}
	for i, v := range o.hess {
		b.hess[i] = b.hess[i].Add(v)
	}
	b.ops += o.ops
	if o.maxTask > b.maxTask {
		b.maxTask = o.maxTask
	}
}

// vecLen is the length of the accumulator's cross-rank reduction vector:
// the node and atom scalars, plus — only when the far-order ladder is
// active (grad/hess allocated) — the per-node receiver-expansion gradient
// and Hessian components. Every field of value(ξ) = s + g·ξ + ξᵀhξ must
// cross ranks before PushIntegralsToAtoms, or each rank's push would see
// only its own rows' moment corrections. At FarOrder = 0 the layout (and
// so every collective's byte count) is exactly the pre-ladder nNodes+
// nAtoms.
func (b *bornAccum) vecLen() int {
	n := len(b.node) + len(b.atom)
	if b.grad != nil {
		n += 9 * len(b.grad)
	}
	return n
}

// appendVec flattens the reducible fields into vec (layout: node, atom,
// then per-node grad X/Y/Z and hess XX/YY/ZZ/XY/XZ/YZ when present).
func (b *bornAccum) appendVec(vec []float64) []float64 {
	vec = append(vec, b.node...)
	vec = append(vec, b.atom...)
	for _, g := range b.grad {
		vec = append(vec, g.X, g.Y, g.Z)
	}
	for _, h := range b.hess {
		vec = append(vec, h.XX, h.YY, h.ZZ, h.XY, h.XZ, h.YZ)
	}
	return vec
}

// readVec is the inverse of appendVec: it overwrites the reducible
// fields from a reduced vector (which must have length vecLen).
func (b *bornAccum) readVec(vec []float64) {
	nNodes := copy(b.node, vec)
	nAtoms := copy(b.atom, vec[nNodes:])
	rest := vec[nNodes+nAtoms:]
	for i := range b.grad {
		b.grad[i] = geom.V(rest[3*i], rest[3*i+1], rest[3*i+2])
	}
	rest = rest[3*len(b.grad):]
	for i := range b.hess {
		b.hess[i] = geom.Sym3{
			XX: rest[6*i], YY: rest[6*i+1], ZZ: rest[6*i+2],
			XY: rest[6*i+3], XZ: rest[6*i+4], YZ: rest[6*i+5],
		}
	}
}

// ApproxIntegrals runs Figure 2's APPROX-INTEGRALS for one leaf Q of the
// q-points octree against the subtree of T_A rooted at aNode,
// accumulating into acc. macs is System.bornMACs() — the opening
// multiplier ladder; with FarOrder = 0 it degenerates to the single
// bornMAC() multiplier and this reproduces the paper's traversal bit for
// bit.
//
// Far pairs contribute the pseudo-q-point term ñ_Q·(c_Q−c_A)/r_AQ⁶ to the
// node field s_A — plus, at admitted order ≥ 1, the moment corrections of
// farorder.go into the node's receiver expansion; near leaf pairs get the
// exact per-atom/per-q-point sums; everything else recurses. The order-0
// kernel is sqrt-free: both the openness test and the r⁻⁶ weights use
// squared distances only.
func ApproxIntegrals(sys *System, acc *bornAccum, aNode, qLeaf int32, macs *[maxFarOrder + 1]float64) {
	pmax := sys.Params.FarOrder
	var fm bornFarMoments
	if pmax > 0 {
		// The q-leaf's source moments, gathered once per row: the per-node
		// arrays may be reallocated by octree updates, so views never
		// outlive the call.
		fm = bornRowMoments(sys.QPts.MomentsOf(momentSetWN), qLeaf)
	}
	approxIntegralsRec(sys, acc, aNode, qLeaf, macs, pmax, &fm)
}

func approxIntegralsRec(sys *System, acc *bornAccum, aNode, qLeaf int32, macs *[maxFarOrder + 1]float64, pmax int, fm *bornFarMoments) {
	a := &sys.Atoms.Nodes[aNode]
	q := &sys.QPts.Nodes[qLeaf]
	d := q.Center.Sub(a.Center)
	d2 := d.Norm2()
	// Loosened rungs admit internal nodes only (see classify): a leaf
	// classifies by the base multiplier, keeping leaf-level near blocks
	// exact instead of migrating them into the far list.
	p := pmax
	if a.IsLeaf {
		p = 0
	}
	_, far := farOrderOf(d2, a.Radius, q.Radius, macs, p)
	acc.ops++ // node-pair visit

	kern := sys.Params.Kernel
	if far {
		// Far enough: treat Q as a single pseudo-q-point at its center.
		// Every far admission is corrected through the RUN order pmax —
		// the admitted rung decides admission only (farField's comment).
		acc.node[aNode] += sys.QNodeWN[qLeaf].Dot(d) / bornDenom(d2, kern)
		if pmax > 0 {
			ds, dg, dh := bornFarCorrection(fm, d.X, d.Y, d.Z, d2, kern == R4, pmax)
			acc.node[aNode] += ds
			acc.grad[aNode] = acc.grad[aNode].Add(dg)
			acc.hess[aNode] = acc.hess[aNode].Add(dh)
		}
		return
	}
	if a.IsLeaf {
		// Too close to approximate: exact contributions.
		for ai := a.Start; ai < a.End; ai++ {
			pa := sys.Atoms.Pts[ai]
			var s float64
			for qi := q.Start; qi < q.End; qi++ {
				dv := sys.QPts.Pts[qi].Sub(pa)
				r2 := dv.Norm2()
				if r2 == 0 {
					continue
				}
				s += sys.WN[qi].Dot(dv) / bornDenom(r2, kern)
			}
			acc.atom[ai] += s
		}
		acc.ops += float64(a.Count() * q.Count())
		return
	}
	for _, child := range a.Children {
		if child != octree.NoChild {
			approxIntegralsRec(sys, acc, child, qLeaf, macs, pmax, fm)
		}
	}
}

// PushIntegralsToAtoms implements Figure 2's downward pass: every atom's
// total integral is its own s_a plus the s_A of all ancestors; the Born
// radius follows from the r⁻³ inversion. Only slots in [loSlot, hiSlot)
// are written into out — the paper's atom-segment work division
// (s_id/e_id in Figure 2).
//
// Because the linearized tree stores parents before children, the
// ancestor prefix is a single forward sweep, not a recursion. When the
// accumulator carries receiver expansions (FarOrder > 0), the sweep is
// the L2L translation of the expansion value(ξ) = s + g·ξ + ξᵀhξ to each
// child center (Δ = c_child − c_parent):
//
//	s' = s + g·Δ + ΔᵀhΔ,  g' = g + 2hΔ,  h' = h
//
// and each atom finally evaluates the leaf expansion at its own offset.
// With nil grad/hess (FarOrder = 0) the pass is the plain prefix sum,
// bit for bit.
func PushIntegralsToAtoms(sys *System, acc *bornAccum, loSlot, hiSlot int, out []float64) float64 {
	t := sys.Atoms
	k := sys.kern()
	// The downward-inheritance vector is pure scratch: borrow it from the
	// System pool instead of allocating NumNodes floats on every call
	// (once per rank per run, and once per pose in warm-engine scans).
	inherit := sys.grabNodeScratch()
	defer sys.releaseNodeScratch(inherit)
	var gin []geom.Vec3
	var hin []geom.Sym3
	if acc.grad != nil {
		gin = make([]geom.Vec3, t.NumNodes())
		hin = make([]geom.Sym3, t.NumNodes())
	}
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.IsLeaf {
			continue
		}
		down := inherit[i] + acc.node[i]
		if gin == nil {
			for _, c := range n.Children {
				if c != octree.NoChild {
					inherit[c] = down
				}
			}
			continue
		}
		g := gin[i].Add(acc.grad[i])
		h := hin[i].Add(acc.hess[i])
		for _, c := range n.Children {
			if c == octree.NoChild {
				continue
			}
			dl := t.Nodes[c].Center.Sub(n.Center)
			inherit[c] = down + g.Dot(dl) + h.Quad(dl)
			gin[c] = g.Add(h.MulVec(dl).Scale(2))
			hin[c] = h
		}
	}
	ops := float64(t.NumNodes())
	for _, li := range t.Leaves() {
		n := &t.Nodes[li]
		lo, hi := int(n.Start), int(n.End)
		if hi <= loSlot || lo >= hiSlot {
			continue
		}
		if lo < loSlot {
			lo = loSlot
		}
		if hi > hiSlot {
			hi = hiSlot
		}
		total := inherit[li] + acc.node[li]
		if gin == nil {
			for s := lo; s < hi; s++ {
				out[s] = bornFromIntegralKernel(acc.atom[s]+total, sys.Radius[s], k, sys.Params.Kernel)
			}
		} else {
			// Far entries can be leaves (the Born classification tests
			// openness before leafness), so the leaf's own expansion terms
			// join the inherited ones before the per-atom evaluation.
			g := gin[li].Add(acc.grad[li])
			h := hin[li].Add(acc.hess[li])
			for s := lo; s < hi; s++ {
				dl := t.Pts[s].Sub(n.Center)
				v := total + g.Dot(dl) + h.Quad(dl)
				out[s] = bornFromIntegralKernel(acc.atom[s]+v, sys.Radius[s], k, sys.Params.Kernel)
			}
		}
		ops += float64(hi - lo)
	}
	return ops
}
