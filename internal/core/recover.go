package core

import (
	"errors"
	"fmt"
	"time"

	"gbpolar/internal/cluster"
	"gbpolar/internal/obs"
	"gbpolar/internal/sched"
)

// This file is the self-healing distributed runner: RunDistributed's
// Figure-4 algorithm restructured so that every collective sits in a
// detect–re-divide–recompute–retry loop. A rank crash surfaces as
// *cluster.RankDeadError from the next communication call (the substrate
// guarantees a successful collective is a consensus on the dead set, see
// cluster.rendezvous); the survivors then deterministically re-divide the
// dead rank's row spans among themselves, redo ONLY its partial work by
// re-filtering the compiled interaction lists (no re-traversal), and
// retry the collective. When fewer than 2 ranks survive, the run degrades
// to the single-rank shared runner instead.

// ErrDegraded reports that the distributed run could not continue on the
// surviving ranks and fell back to the shared-memory runner.
var ErrDegraded = errors.New("core: degraded to shared runner")

// Span is a half-open [Lo, Hi) interval of work rows (interaction-list
// rows or atom slots).
type Span struct{ Lo, Hi int }

// Len returns Hi − Lo.
func (s Span) Len() int { return s.Hi - s.Lo }

// RedivideSpans computes each rank's owned row spans after the given
// ordered sequence of deaths. Rank r starts with segment(n, P, r); each
// death, processed strictly in deadOrder, splits every span of the dead
// rank evenly among the ranks still live at that point. The result is a
// pure function of (n, P, deadOrder), so every survivor — having agreed
// on the ordered dead list through the failed collective — computes the
// identical partition; spans only ever move from dead ranks to live
// ones, so a survivor's assignment grows monotonically.
func RedivideSpans(n, P int, deadOrder []int) [][]Span {
	asgn := make([][]Span, P)
	for r := 0; r < P; r++ {
		lo, hi := segment(n, P, r)
		if hi > lo {
			asgn[r] = []Span{{lo, hi}}
		}
	}
	dead := make([]bool, P)
	for _, d := range deadOrder {
		if d < 0 || d >= P || dead[d] {
			continue
		}
		dead[d] = true
		var live []int
		for r := 0; r < P; r++ {
			if !dead[r] {
				live = append(live, r)
			}
		}
		if len(live) == 0 {
			asgn[d] = nil
			break
		}
		for _, sp := range asgn[d] {
			for i, r := range live {
				l, h := segment(sp.Len(), len(live), i)
				if h > l {
					asgn[r] = append(asgn[r], Span{sp.Lo + l, sp.Lo + h})
				}
			}
		}
		asgn[d] = nil
	}
	return asgn
}

// ownedRows expands rank's assignment after deaths into the row indices
// not yet marked done, marking them done, and counts how many of them
// are inherited — outside the rank's original fault-free segment, i.e.
// recovered work from dead ranks. The monotone-growth property of
// RedivideSpans makes "newly owned = owned minus done" exactly the dead
// ranks' lost work.
func ownedRows(n, P, rank int, deadOrder []int, done []bool) (rows []int, inherited int) {
	origLo, origHi := segment(n, P, rank)
	for _, sp := range RedivideSpans(n, P, deadOrder)[rank] {
		for i := sp.Lo; i < sp.Hi; i++ {
			if !done[i] {
				rows = append(rows, i)
				done[i] = true
				if i < origLo || i >= origHi {
					inherited++
				}
			}
		}
	}
	return rows, inherited
}

// resilientRank is the per-rank body of the self-healing runner.
func resilientRank(sys *System, c *Comm, out *rankOut) error {
	P, rank := c.Size(), c.Rank()
	p := c.Threads()
	pool := sched.NewPool(p)
	defer pool.Close()
	c.TrackMemory(sys.MemoryBytes())

	o := c.Obs()
	bsp := o.Begin(rank, "phase", "build", c.Clock())
	lists := sys.Lists(pool)
	bsp.End(c.Clock())
	if rank == 0 {
		lists.RecordMetrics(o)
	}
	qLeaves := sys.QPts.Leaves()
	aLeaves := sys.Atoms.Leaves()
	nNodes := sys.Atoms.NumNodes()
	nAtoms := sys.Mol.NumAtoms()
	rate := c.OpsPerSecond()

	// allreduce runs one collective of the retry protocol: build
	// re-assembles this rank's contribution (it must reflect all work done
	// so far, since a failed round discards every deposit), and heal
	// redoes the newly-inherited work after a death. Fewer than 2
	// survivors aborts the protocol with ErrDegraded.
	allreduce := func(build func() []float64, heal func(dead []int) error) ([]float64, error) {
		for {
			res, err := c.Allreduce(build(), cluster.Sum)
			if err == nil {
				return res, nil
			}
			if _, ok := cluster.AsRankDead(err); !ok {
				return nil, err
			}
			dead := c.DeadRanks()
			if P-len(dead) < 2 {
				return nil, fmt.Errorf("core: %d of %d ranks survive: %w", P-len(dead), P, ErrDegraded)
			}
			if rerr := heal(dead); rerr != nil {
				return nil, rerr
			}
		}
	}

	// Phase 1 (Figure 4 step 2): Born integrals over owned q-point leaf
	// rows. bornDone records which compiled Born rows this rank has
	// evaluated into merged.
	merged := newBornAccum(sys)
	bornDone := make([]bool, len(qLeaves))
	computeBorn := func(dead []int) {
		rows, inherited := ownedRows(len(qLeaves), P, rank, dead, bornDone)
		if len(rows) == 0 {
			return
		}
		// Each pass gets its own span, so post-crash re-executions show
		// up as extra born/push/epol intervals on the timeline.
		sp := o.Begin(rank, "phase", "born", c.Clock())
		accs := make([]*bornAccum, p)
		for i := range accs {
			accs[i] = newBornAccum(sys)
		}
		sched.ParallelFor(pool, len(rows), rowGrain(len(rows), p), func(l, h, w int) {
			for k := l; k < h; k++ {
				before := accs[w].ops
				bornRow(sys, lists.Born, rows[k], accs[w])
				if d := accs[w].ops - before; d > accs[w].maxTask {
					accs[w].maxTask = d
				}
			}
		})
		var total float64
		for _, a := range accs {
			merged.add(a)
			total += a.ops
		}
		out.ops += total
		charged := modelPhaseOps(total, maxOps(accs), merged.maxTask, p)
		c.ChargeOps(charged)
		sp.End(c.Clock(), obs.F("rows", float64(len(rows))), obs.F("inherited", float64(inherited)))
		o.Counter("kernel.born.batches").Add(int64(len(rows)))
		if inherited > 0 {
			// Recovery metering: the share of this pass spent on rows
			// inherited from dead ranks (row-proportional attribution).
			c.NoteRecovery(inherited, charged/rate*float64(inherited)/float64(len(rows)))
		}
	}
	computeBorn(c.DeadRanks())
	sum, err := allreduce(func() []float64 {
		vec := make([]float64, nNodes+nAtoms)
		copy(vec, merged.node)
		copy(vec[nNodes:], merged.atom)
		return vec
	}, func(dead []int) error {
		computeBorn(dead)
		return nil
	})
	if err != nil {
		return err
	}
	copy(merged.node, sum[:nNodes])
	copy(merged.atom, sum[nNodes:])

	// Phase 2 (steps 4–5): Born radii for owned atom slots, shared via an
	// Allreduce of a zero-padded full vector. Each slot is written by
	// exactly one live rank (RedivideSpans partitions the slots), so the
	// sum reproduces each value exactly — and, unlike Allgatherv, it
	// tolerates the non-contiguous ownership recovery creates.
	slotRadii := make([]float64, nAtoms)
	slotDone := make([]bool, nAtoms)
	computePush := func(dead []int) {
		slots, inherited := ownedRows(nAtoms, P, rank, dead, slotDone)
		if len(slots) == 0 {
			return
		}
		sp := o.Begin(rank, "phase", "push", c.Clock())
		var ops float64
		// PushIntegralsToAtoms takes [lo,hi) ranges; sweep maximal runs.
		for i := 0; i < len(slots); {
			j := i + 1
			for j < len(slots) && slots[j] == slots[j-1]+1 {
				j++
			}
			ops += PushIntegralsToAtoms(sys, merged, slots[i], slots[j-1]+1, slotRadii)
			i = j
		}
		out.ops += ops
		c.ChargeOps(ops / float64(p))
		sp.End(c.Clock(), obs.F("rows", float64(len(slots))), obs.F("inherited", float64(inherited)))
		if inherited > 0 {
			c.NoteRecovery(inherited, ops/float64(p)/rate*float64(inherited)/float64(len(slots)))
		}
	}
	computePush(c.DeadRanks())
	radii, err := allreduce(func() []float64 {
		vec := make([]float64, nAtoms)
		for i, done := range slotDone {
			if done {
				vec[i] = slotRadii[i]
			}
		}
		return vec
	}, func(dead []int) error {
		computePush(dead)
		return nil
	})
	if err != nil {
		return err
	}
	copy(slotRadii, radii)

	// Phase 3 (step 6): E_pol over owned atom-leaf rows.
	ctx := NewEpolContext(sys, slotRadii)
	conv := newConvScratch(ctx, p)
	epolDone := make([]bool, len(aLeaves))
	var raw float64
	computeEpol := func(dead []int) {
		rows, inherited := ownedRows(len(aLeaves), P, rank, dead, epolDone)
		if len(rows) == 0 {
			return
		}
		sp := o.Begin(rank, "phase", "epol", c.Clock())
		eaccs := make([]epolAccum, p)
		sched.ParallelFor(pool, len(rows), rowGrain(len(rows), p), func(l, h, w int) {
			for k := l; k < h; k++ {
				before := eaccs[w].ops
				epolRow(ctx, lists.Epol, rows[k], conv[w], &eaccs[w])
				if d := eaccs[w].ops - before; d > eaccs[w].maxTask {
					eaccs[w].maxTask = d
				}
			}
		})
		var total, maxW, maxTask float64
		for i := range eaccs {
			raw += eaccs[i].energy
			total += eaccs[i].ops
			if eaccs[i].ops > maxW {
				maxW = eaccs[i].ops
			}
			if eaccs[i].maxTask > maxTask {
				maxTask = eaccs[i].maxTask
			}
		}
		out.ops += total
		charged := modelPhaseOps(total, maxW, maxTask, p)
		c.ChargeOps(charged)
		sp.End(c.Clock(), obs.F("rows", float64(len(rows))), obs.F("inherited", float64(inherited)))
		o.Counter("kernel.epol.batches").Add(int64(len(rows)))
		if inherited > 0 {
			c.NoteRecovery(inherited, charged/rate*float64(inherited)/float64(len(rows)))
		}
	}
	computeEpol(c.DeadRanks())
	total, err := allreduce(func() []float64 { return []float64{raw} },
		func(dead []int) error {
			computeEpol(dead)
			return nil
		})
	if err != nil {
		return err
	}
	out.epol = ctx.Finish(total[0])
	out.radii = slotRadii
	out.ok = true
	o.Counter("sched.steals").Add(pool.Steals())
	return nil
}

// RunDistributedResilient is RunDistributed hardened against the fault
// plan in cfg.Faults: any subset of rank crashes leaves the survivors
// computing the exact same E_pol (to floating-point regrouping, ≤1e-12
// relative), with the recovery cost metered on the virtual clock and
// reported in Report.Faults. When the distributed run cannot complete —
// fewer than 2 survivors, a dead link (ErrTimeout), or a stalled
// protocol — it degrades to the single-rank shared runner and records
// the reason in FaultReport.Degraded/DegradedReason.
func RunDistributedResilient(sys *System, cfg cluster.Config) (*Result, error) {
	if cfg.OpsPerSecond <= 0 {
		cfg.OpsPerSecond = CalibratedOpsPerSecond()
	}
	outs := make([]rankOut, cfg.Procs)
	start := time.Now()
	rep, err := cluster.Run(cfg, func(c *Comm) error {
		return resilientRank(sys, c, &outs[c.Rank()])
	})
	if err == nil {
		for i := range outs {
			if outs[i].ok {
				res := &Result{
					Epol:         outs[i].epol,
					BornRadii:    sys.BornRadiiToOriginalOrder(outs[i].radii),
					WallSeconds:  time.Since(start).Seconds(),
					ModelSeconds: rep.VirtualSeconds,
					Report:       rep,
				}
				for j := range outs {
					res.Ops += outs[j].ops
				}
				return res, nil
			}
		}
		// No rank produced a result: every rank crashed.
		err = fmt.Errorf("core: no rank survived: %w", ErrDegraded)
	}
	if !degradable(err, rep) {
		return nil, err
	}
	shared, serr := RunShared(sys, SharedOptions{
		Threads:      cfg.ThreadsPerProc,
		OpsPerSecond: cfg.OpsPerSecond,
		Obs:          cfg.Obs,
	})
	if serr != nil {
		return nil, serr
	}
	if rep != nil {
		if rep.Faults == nil {
			rep.Faults = &cluster.FaultReport{}
		}
		rep.Faults.Degraded = true
		rep.Faults.DegradedReason = err.Error()
		shared.Report = rep
	}
	shared.WallSeconds = time.Since(start).Seconds()
	return shared, nil
}

// degradable decides whether a failed distributed run may fall back to
// the shared runner: fault-typed failures (too few survivors, dead
// links, stalls, unrecovered deaths) degrade; everything else — config
// errors, programming bugs on a fault-free run — propagates. ErrAborted
// is fault-typed only when the run actually injected faults, since a
// faulted peer's abort reaches innocent ranks as ErrAborted.
func degradable(err error, rep *cluster.Report) bool {
	if errors.Is(err, ErrDegraded) || errors.Is(err, cluster.ErrRankDead) ||
		errors.Is(err, cluster.ErrTimeout) {
		return true
	}
	return errors.Is(err, cluster.ErrAborted) && rep != nil && rep.Faults != nil
}
