package core

import (
	"errors"
	"fmt"
	"time"

	"gbpolar/internal/cluster"
)

// This file is the self-healing distributed runner: RunDistributed's
// Figure-4 algorithm restructured so that every collective sits in a
// detect–re-divide–recompute–retry loop. A rank crash surfaces as
// *cluster.RankDeadError from the next communication call (the substrate
// guarantees a successful collective is a consensus on the dead set, see
// cluster.rendezvous); the survivors then deterministically re-divide the
// dead rank's row spans among themselves, redo ONLY its partial work by
// re-filtering the compiled interaction lists (no re-traversal), and
// retry the collective. When fewer than 2 ranks survive, the run degrades
// to the single-rank shared runner instead.

// ErrDegraded reports that the distributed run could not continue on the
// surviving ranks and fell back to the shared-memory runner.
var ErrDegraded = errors.New("core: degraded to shared runner")

// Span is a half-open [Lo, Hi) interval of work rows (interaction-list
// rows or atom slots).
type Span struct{ Lo, Hi int }

// Len returns Hi − Lo.
func (s Span) Len() int { return s.Hi - s.Lo }

// RedivideSpans computes each rank's owned row spans after the given
// ordered sequence of deaths. Rank r starts with segment(n, P, r); each
// death, processed strictly in deadOrder, splits every span of the dead
// rank evenly among the ranks still live at that point. The result is a
// pure function of (n, P, deadOrder), so every survivor — having agreed
// on the ordered dead list through the failed collective — computes the
// identical partition; spans only ever move from dead ranks to live
// ones, so a survivor's assignment grows monotonically.
//
// It is the death-only special case of ElasticSpans (elastic.go), which
// additionally replays rejoin events for the elastic transports.
func RedivideSpans(n, P int, deadOrder []int) [][]Span {
	events := make([]cluster.MemberEvent, len(deadOrder))
	for i, d := range deadOrder {
		events[i] = cluster.MemberEvent{Rank: d}
	}
	return ElasticSpans(n, P, events)
}

// ownedRows expands rank's assignment after the membership event log
// into the row indices not yet marked done, marking them done, and
// counts how many of them are inherited — outside the rank's original
// fault-free segment, i.e. recovered work from dead ranks. Within one
// phase the log grows by deaths alone (joins are admitted only at
// successful collectives), so ElasticSpans' monotone-growth property
// makes "newly owned = owned minus done" exactly the dead ranks' lost
// work.
func ownedRows(n, P, rank int, events []cluster.MemberEvent, done []bool) (rows []int, inherited int) {
	origLo, origHi := segment(n, P, rank)
	for _, sp := range ElasticSpans(n, P, events)[rank] {
		for i := sp.Lo; i < sp.Hi; i++ {
			if !done[i] {
				rows = append(rows, i)
				done[i] = true
				if i < origLo || i >= origHi {
					inherited++
				}
			}
		}
	}
	return rows, inherited
}

// resilientRank is the per-rank body of the self-healing runner: the
// elastic rank body (elastic.go) started from phase 1. Over the
// in-process transport the membership event log contains deaths only, so
// this computes exactly what the pre-elastic resilient runner did.
func resilientRank(sys *System, c *Comm, out *rankOut) error {
	return elasticRank(sys, c, out, 1, nil)
}

// RunDistributedResilient is RunDistributed hardened against the fault
// plan in cfg.Faults: any subset of rank crashes leaves the survivors
// computing the exact same E_pol (to floating-point regrouping, ≤1e-12
// relative), with the recovery cost metered on the virtual clock and
// reported in Report.Faults. When the distributed run cannot complete —
// fewer than 2 survivors, a dead link (ErrTimeout), or a stalled
// protocol — it degrades to the single-rank shared runner and records
// the reason in FaultReport.Degraded/DegradedReason.
func RunDistributedResilient(sys *System, cfg cluster.Config) (*Result, error) {
	if cfg.OpsPerSecond <= 0 {
		cfg.OpsPerSecond = CalibratedOpsPerSecond()
	}
	outs := make([]rankOut, cfg.Procs)
	start := time.Now()
	rep, err := cluster.Run(cfg, func(c *Comm) error {
		return resilientRank(sys, c, &outs[c.Rank()])
	})
	if err == nil {
		for i := range outs {
			if outs[i].ok {
				res := &Result{
					Epol:         outs[i].epol,
					BornRadii:    sys.BornRadiiToOriginalOrder(outs[i].radii),
					WallSeconds:  time.Since(start).Seconds(),
					ModelSeconds: rep.VirtualSeconds,
					Report:       rep,
				}
				for j := range outs {
					res.Ops += outs[j].ops
				}
				return res, nil
			}
		}
		// No rank produced a result: every rank crashed.
		err = fmt.Errorf("core: no rank survived: %w", ErrDegraded)
	}
	if !degradable(err, rep) {
		return nil, err
	}
	shared, serr := RunShared(sys, SharedOptions{
		Threads:      cfg.ThreadsPerProc,
		OpsPerSecond: cfg.OpsPerSecond,
		Obs:          cfg.Obs,
	})
	if serr != nil {
		return nil, serr
	}
	if rep != nil {
		if rep.Faults == nil {
			rep.Faults = &cluster.FaultReport{}
		}
		rep.Faults.Degraded = true
		rep.Faults.DegradedReason = err.Error()
		shared.Report = rep
	}
	shared.WallSeconds = time.Since(start).Seconds()
	return shared, nil
}

// degradable decides whether a failed distributed run may fall back to
// the shared runner: fault-typed failures (too few survivors, dead
// links, stalls, unrecovered deaths) degrade; everything else — config
// errors, programming bugs on a fault-free run — propagates. ErrAborted
// is fault-typed only when the run actually injected faults, since a
// faulted peer's abort reaches innocent ranks as ErrAborted.
func degradable(err error, rep *cluster.Report) bool {
	if errors.Is(err, ErrDegraded) || errors.Is(err, cluster.ErrRankDead) ||
		errors.Is(err, cluster.ErrTimeout) {
		return true
	}
	return errors.Is(err, cluster.ErrAborted) && rep != nil && rep.Faults != nil
}
