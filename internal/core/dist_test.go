package core

import (
	"math"
	"testing"

	"gbpolar/internal/cluster"
)

func distCfg(procs, threads, perNode, nodes int) cluster.Config {
	return cluster.Config{
		Procs:          procs,
		ThreadsPerProc: threads,
		RanksPerNode:   perNode,
		Topology:       cluster.Lonestar4(nodes),
	}
}

func TestDistributedMatchesShared(t *testing.T) {
	sys, _, _ := testSystem(t, 400, 81, DefaultParams())
	shared, err := RunShared(sys, SharedOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		procs   int
		threads int
	}{
		{"P1", 1, 1},
		{"OCT_MPI-P4", 4, 1},
		{"OCT_MPI+CILK-P2p2", 2, 2},
		{"OCT_MPI-P7", 7, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := RunDistributed(sys, distCfg(tc.procs, tc.threads, tc.procs, 1))
			if err != nil {
				t.Fatal(err)
			}
			if relErr(res.Epol, shared.Epol) > 1e-9 {
				t.Errorf("distributed E=%v shared E=%v", res.Epol, shared.Epol)
			}
			for i := range res.BornRadii {
				if relErr(res.BornRadii[i], shared.BornRadii[i]) > 1e-9 {
					t.Fatalf("atom %d radius mismatch: %v vs %v",
						i, res.BornRadii[i], shared.BornRadii[i])
				}
			}
		})
	}
}

// Under the loosened ladder the cross-rank Born reduction must carry the
// receiver-expansion grad/hess alongside the node/atom scalars — each
// rank evaluates only its own rows, so a scalar-only reduce would hand
// PushIntegralsToAtoms just that rank's moment corrections (a bug the
// cross-runner verify actually caught: mpi/net diverged from shared by
// 0.4% at FarOrder=2). Both distributed paths — the modeled mpi runner
// and the elastic rank body the resilient/net runners share — must
// reproduce the shared runner to reduction round-off.
func TestDistributedFarOrderMatchesShared(t *testing.T) {
	sys, _, _ := testSystem(t, 400, 81, farOrderParams(2, 0.5))
	shared, err := RunShared(sys, SharedOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	check := func(t *testing.T, res *Result) {
		t.Helper()
		if relErr(res.Epol, shared.Epol) > 1e-9 {
			t.Errorf("distributed E=%v shared E=%v", res.Epol, shared.Epol)
		}
		for i := range res.BornRadii {
			if relErr(res.BornRadii[i], shared.BornRadii[i]) > 1e-9 {
				t.Fatalf("atom %d radius mismatch: %v vs %v",
					i, res.BornRadii[i], shared.BornRadii[i])
			}
		}
	}
	t.Run("mpi", func(t *testing.T) {
		res, err := RunDistributed(sys, distCfg(4, 1, 4, 1))
		if err != nil {
			t.Fatal(err)
		}
		check(t, res)
	})
	t.Run("elastic", func(t *testing.T) {
		res, err := RunDistributedResilient(sys, distCfg(4, 1, 4, 1))
		if err != nil {
			t.Fatal(err)
		}
		check(t, res)
	})
}

func TestDistributedReportPresent(t *testing.T) {
	sys, _, _ := testSystem(t, 200, 82, DefaultParams())
	res, err := RunDistributed(sys, distCfg(4, 1, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil {
		t.Fatal("no cluster report")
	}
	if res.Report.VirtualSeconds <= 0 {
		t.Error("virtual time not positive")
	}
	if res.Ops <= 0 {
		t.Error("no ops counted")
	}
}

// The paper's Section V.B memory observation: 12 single-threaded ranks
// replicate the data 12×; 2 ranks × 6 threads replicate it only 2× —
// a 6× (paper: 5.86×) ratio.
func TestMemoryReplicationRatio(t *testing.T) {
	sys, _, _ := testSystem(t, 300, 83, DefaultParams())
	pure, err := RunDistributed(sys, distCfg(12, 1, 12, 1))
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := RunDistributed(sys, distCfg(2, 6, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(pure.Report.TotalMemoryBytes) / float64(hybrid.Report.TotalMemoryBytes)
	if math.Abs(ratio-6) > 1e-9 {
		t.Errorf("memory ratio %v, want 6", ratio)
	}
}

// Modeled time must shrink as cores grow (the paper's Figures 5/6), and
// the hybrid configuration must beat pure MPI at large core counts
// (fewer ranks ⇒ less collective traffic).
func TestModeledScalability(t *testing.T) {
	sys, _, _ := testSystem(t, 1500, 84, DefaultParams())
	timeFor := func(procs, threads, perNode, nodes int) float64 {
		res, err := RunDistributed(sys, distCfg(procs, threads, perNode, nodes))
		if err != nil {
			t.Fatal(err)
		}
		return res.ModelSeconds
	}
	t12 := timeFor(12, 1, 12, 1)    // one node, pure MPI
	t48 := timeFor(48, 1, 12, 4)    // four nodes, pure MPI
	t144 := timeFor(144, 1, 12, 12) // twelve nodes, pure MPI
	if !(t48 < t12) {
		t.Errorf("48 cores (%v) not faster than 12 (%v)", t48, t12)
	}
	if !(t144 < t48) {
		t.Errorf("144 cores (%v) not faster than 48 (%v)", t144, t48)
	}
}

func TestHybridLessCommThanPureMPI(t *testing.T) {
	sys, _, _ := testSystem(t, 800, 85, DefaultParams())
	pure, err := RunDistributed(sys, distCfg(144, 1, 12, 12))
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := RunDistributed(sys, distCfg(24, 6, 2, 12))
	if err != nil {
		t.Fatal(err)
	}
	// Six times the ranks ⇒ six times the collective traffic (every rank
	// contributes the full s-field vector to the Allreduce). CommSeconds
	// is not compared directly because it includes straggler wait, which
	// depends on intra-rank load balance.
	bytesOf := func(r *Result) int64 {
		var b int64
		for _, rs := range r.Report.PerRank {
			b += rs.BytesSent
		}
		return b
	}
	if bp, bh := bytesOf(pure), bytesOf(hybrid); bp < 5*bh {
		t.Errorf("pure-MPI traffic %d not ≫ hybrid traffic %d", bp, bh)
	}
	// And the per-collective latency budget: pure MPI pays log₂(144)≈8
	// startup terms vs the hybrid's log₂(24)≈5.
	if !(hybrid.Report.VirtualSeconds > 0 && pure.Report.VirtualSeconds > 0) {
		t.Error("virtual clocks missing")
	}
}

func TestDistributedDeterministicModeledTime(t *testing.T) {
	sys, _, _ := testSystem(t, 300, 86, DefaultParams())
	cfg := distCfg(4, 1, 4, 1)
	a, err := RunDistributed(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDistributed(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Compute charges are deterministic without noise; only the energy
	// value (work stealing order) may differ in the last bits.
	if relErr(a.Epol, b.Epol) > 1e-9 {
		t.Errorf("energies differ: %v vs %v", a.Epol, b.Epol)
	}
}

func TestDistributedInvalidConfig(t *testing.T) {
	sys, _, _ := testSystem(t, 100, 87, DefaultParams())
	if _, err := RunDistributed(sys, distCfg(0, 1, 1, 1)); err == nil {
		t.Error("zero procs accepted")
	}
	// 24 ranks on one 12-core node.
	if _, err := RunDistributed(sys, distCfg(24, 1, 24, 1)); err == nil {
		t.Error("oversubscribed config accepted")
	}
}
