package core

import (
	"testing"

	"gbpolar/internal/mathx"
	"gbpolar/internal/sched"
)

func TestDualTreeMatchesSingleTreeExactly(t *testing.T) {
	// With ε→0 neither traversal approximates: both must equal naive.
	params := Params{EpsBorn: 1e-12, EpsEpol: 0.9, EpsSolv: 80}
	sys, mol, surf := testSystem(t, 250, 151, params)
	pool := sched.NewPool(2)
	defer pool.Close()
	radii, _ := DualTreeBornRadii(sys, pool)
	orig := sys.BornRadiiToOriginalOrder(radii)
	naive := NaiveBornRadii(mol, surf, mathx.Exact)
	for i := range naive {
		if relErr(orig[i], naive[i]) > 1e-9 {
			t.Fatalf("atom %d: dual-tree %v, naive %v", i, orig[i], naive[i])
		}
	}
}

func TestDualTreeAccuracyAtHeadlineEps(t *testing.T) {
	sys, mol, surf := testSystem(t, 800, 152, DefaultParams())
	pool := sched.NewPool(2)
	defer pool.Close()
	radii, _ := DualTreeBornRadii(sys, pool)
	orig := sys.BornRadiiToOriginalOrder(radii)
	naive := NaiveBornRadii(mol, surf, mathx.Exact)
	// Same error class as the single-tree loose MAC (a few percent mean).
	var worst float64
	for i := range naive {
		if e := relErr(orig[i], naive[i]); e > worst {
			worst = e
		}
	}
	if worst > 0.5 {
		t.Errorf("worst dual-tree Born radius error %.1f%%", 100*worst)
	}
	// Energy with these radii stays near naive.
	naiveE := NaiveEpol(mol, naive, 80, mathx.Exact)
	e := NaiveEpol(mol, orig, 80, mathx.Exact)
	if relErr(e, naiveE) > 0.03 {
		t.Errorf("dual-tree-radii energy error %.2f%%", 100*relErr(e, naiveE))
	}
}

func TestDualTreeFewerOpsOnLargeMolecules(t *testing.T) {
	// The [6]-style dual traversal approximates whole T_Q subtrees, so it
	// must do no more kernel work than the single-tree variant, and
	// strictly less once the far field fires.
	sys, _, _ := testSystem(t, 4000, 153, DefaultParams())
	pool := sched.NewPool(2)
	defer pool.Close()
	_, dualOps := DualTreeBornRadii(sys, pool)

	acc := newBornAccum(sys)
	macs := sys.bornMACs()
	for _, q := range sys.QPts.Leaves() {
		ApproxIntegrals(sys, acc, sys.Atoms.Root(), q, &macs)
	}
	singleOps := acc.ops
	if dualOps >= singleOps {
		t.Errorf("dual-tree ops %.3g not below single-tree ops %.3g", dualOps, singleOps)
	}
}

func TestExpandPairsPartitionsTraversal(t *testing.T) {
	// Running the traversal from the expanded frontier must give exactly
	// the same accumulators as from (root, root).
	sys, _, _ := testSystem(t, 500, 154, DefaultParams())
	mac := sys.bornMAC()
	whole := newBornAccum(sys)
	DualTreeIntegrals(sys, whole, sys.Atoms.Root(), sys.QPts.Root(), mac)

	parts := newBornAccum(sys)
	for _, pr := range expandPairs(sys, mac, 64) {
		DualTreeIntegrals(sys, parts, pr.a, pr.q, mac)
	}
	for i := range whole.atom {
		if whole.atom[i] != parts.atom[i] {
			t.Fatalf("atom %d: %v vs %v", i, whole.atom[i], parts.atom[i])
		}
	}
	for i := range whole.node {
		if whole.node[i] != parts.node[i] {
			t.Fatalf("node %d: %v vs %v", i, whole.node[i], parts.node[i])
		}
	}
}
