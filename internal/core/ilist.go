package core

import (
	"fmt"
	"math"
	"slices"

	"gbpolar/internal/geom"
	"gbpolar/internal/obs"
	"gbpolar/internal/octree"
	"gbpolar/internal/sched"
)

// This file implements the interaction-list compilation layer: a one-time
// traversal that records, per leaf, exactly which far-field aggregates
// and which near-field leaf pairs the recursive algorithms of Figures 2
// and 3 would evaluate. Production FMM codes (DASHMM, arXiv:1710.06316;
// Multibody Multipole Methods, arXiv:1105.2769) separate list
// construction from kernel evaluation for the same reason this repo does:
// the near–far decomposition depends only on geometry and the opening
// criterion, so it can be built once and swept repeatedly by flat,
// cache-friendly batch kernels (kernels.go) — with zero recursion,
// pointer chasing or opening tests in the steady state.
//
// The lists survive rigid motion: Engine.Repose applies one rigid
// transform to every point and node center, which preserves all pairwise
// distances while node radii are invariant, so every farSeparated verdict
// is unchanged. Docking pose scans therefore pay the traversal cost once
// per complex, not once per pose. Non-rigid changes (UpdateAtoms) and
// parameter changes invalidate the cache (System.InvalidateLists and the
// signature check in Lists).

// InteractionLists is a compiled traversal over the atoms octree for one
// phase, in CSR form. Row i describes the leaf Rows[i] (in tree Leaves()
// order): Far[FarOff[i]:FarOff[i+1]] holds the atoms-octree nodes whose
// far-field aggregate the leaf interacts with, and
// Near[NearOff[i]:NearOff[i+1]] the atom leaves needing exact pairwise
// evaluation.
type InteractionLists struct {
	Rows    []int32
	FarOff  []int32
	Far     []int32
	NearOff []int32
	Near    []int32
	// Sym holds MUTUAL near leaf pairs, stored once on the lower-indexed
	// row and evaluated with double weight: the per-pair GB terms are
	// bitwise symmetric (r², R_u·R_v and f_GB are commutative in u,v), so
	// one swept block stands for both ordered blocks of the recursion.
	// This halves the dominant near-field work. Pairs the classification
	// reaches in only one direction (the epol ordering can be asymmetric:
	// a leaf U is always exact for row V, while row U may see V's
	// ancestors as far) stay in Near with single weight, as does the
	// diagonal U == V, whose ordered double-count is inherent in the
	// block sweep. Born lists never populate Sym (q-leaf rows against the
	// atoms tree have no transpose).
	SymOff []int32
	Sym    []int32
	// Cede holds the mutual near pairs this row's classification DID
	// reach but symmetrization handed to a lower-indexed row's Sym list.
	// The entries contribute nothing to evaluation (the partner sweeps
	// the pair with double weight); they are recorded so the incremental
	// repair (ilist_repair.go) can reconstruct the row's full
	// pre-symmetrization near list — and certify its verdicts — without
	// scanning every other row's Sym.
	CedeOff []int32
	Cede    []int32
	// Margins record each opening test's distance to reclassification,
	// |dist(centers) − (r_a+r_b)·mac| — the slack the incremental repair
	// certifies cached verdicts against. FarMargin[k] is the slack of
	// the test that classified Far[k]; NearMargin[k] likewise for
	// Near[k] (nil for E_pol lists, whose leaf-first ordering reaches
	// near leaves without testing them). The *Path arrays carry, per
	// entry, the minimum slack over the INTERNAL tests on the entry's
	// root path — the nodes the classification descended through to
	// reach it, which appear in no list (+Inf for root-level entries).
	// As long as the geometry drifts less than a test's slack, that
	// verdict cannot flip; all certificates are per ENTRY because drift
	// is wildly non-uniform (a two-atom leaf losing an atom jumps ~1 Å
	// while every other node barely moves), so any row-level coupling —
	// one min slack against one max drift — taints every row that can
	// see a moved leaf somewhere in its lists.
	FarMargin  []float64
	FarPath    []float64
	NearMargin []float64
	NearPath   []float64
	SymPath    []float64
	CedePath   []float64
	// FarOrd[k] is the expansion order the ladder admitted Far[k] at
	// (farorder.go): the batch kernels dispatch the moment corrections on
	// it without re-testing geometry. nil when compiled at FarOrder = 0,
	// where every far entry is order 0 — the margin semantics are then
	// exactly the pre-ladder ones. Under a ladder the margins change
	// meaning slightly: an entry's FarMargin is its distance to the
	// nearest ORDER boundary (drifting across one reclassifies the entry
	// even if it stays far), and near/path margins measure to the loosest
	// rung, macs[FarOrder].
	FarOrd []uint8
}

// NumFar returns the total far-field entry count.
func (il *InteractionLists) NumFar() int { return len(il.Far) }

// NumNear returns the total near leaf-pair count.
func (il *InteractionLists) NumNear() int { return len(il.Near) }

// MemoryBytes reports the list footprint.
func (il *InteractionLists) MemoryBytes() int64 {
	return int64(len(il.Rows)+len(il.FarOff)+len(il.Far)+
		len(il.NearOff)+len(il.Near)+len(il.SymOff)+len(il.Sym)+
		len(il.CedeOff)+len(il.Cede))*4 +
		int64(len(il.FarMargin)+len(il.FarPath)+len(il.NearMargin)+
			len(il.NearPath)+len(il.SymPath)+len(il.CedePath))*8 +
		int64(len(il.FarOrd))
}

// CompiledLists bundles the per-phase lists with the opening-criterion
// signature they were compiled under, so parameter changes trigger a
// recompile instead of silently evaluating stale classifications.
type CompiledLists struct {
	// bornMAC and epolFar are the base opening multipliers at compile
	// time; farOrder is the Params.FarOrder the ladder was derived from.
	bornMAC, epolFar float64
	farOrder         int
	// Born rows are q-point leaves (Figure 2); Epol rows are atom leaves
	// (Figure 3).
	Born, Epol *InteractionLists
	// nodeC/nodeR snapshot the atoms-octree node centers and radii the
	// lists were certified against (at compile or at the last repair).
	// The incremental repair compares them to the post-update geometry to
	// measure each node's ACTUAL drift — far tighter than any a-priori
	// displacement bound, since an opening test's operands move with a
	// node's centroid and radius, not with the fastest atom.
	nodeC []geom.Vec3
	nodeR []float64
}

// matches reports whether the cached lists were compiled under the
// system's current opening criteria.
func (cl *CompiledLists) matches(sys *System) bool {
	return cl != nil && cl.bornMAC == sys.bornMAC() && cl.epolFar == epolFarFactor(sys.Params.EpsEpol) &&
		cl.farOrder == sys.Params.FarOrder
}

// MemoryBytes reports the total compiled-list footprint.
func (cl *CompiledLists) MemoryBytes() int64 {
	return cl.Born.MemoryBytes() + cl.Epol.MemoryBytes()
}

// rowLists is one row's lists during compilation.
type rowLists struct {
	far, near, sym, cede []int32
	// farM/nearM are the per-entry opening-test slacks; farP/nearP the
	// per-entry path minima over internal tests (see the margin block in
	// InteractionLists). nearM stays nil for leaf-first (E_pol) rows;
	// symP/cedeP are carved out of nearP by symmetrizeNear.
	farM, farP, nearM, nearP, symP, cedeP []float64
	// farO is the per-entry admitted order; nil when compiled at
	// FarOrder = 0.
	farO []uint8
}

// classify descends the atoms octree from node n against a row cluster
// (center, radius), splitting the subtree into far nodes and near
// leaves. It mirrors the recursive kernels exactly — including their one
// structural difference: APPROX-EPOL tests u.IsLeaf BEFORE the opening
// test (a leaf U is always evaluated exactly), while APPROX-INTEGRALS
// tests openness first (a far leaf uses the pseudo-q-point shortcut).
// leafFirst selects between the two orderings. macs/pmax are the opening
// multiplier ladder (farorder.go); pmax = 0 degenerates to the original
// single-multiplier classification, margins included, bit for bit. pmin
// is the minimum internal-test slack accumulated on the root path so far
// (math.Inf(1) at the root): every emitted entry records it, so the
// repair can check each entry's path against the drift on THAT path
// alone.
func classify(t *octree.Tree, n int32, center geom.Vec3, radius float64, macs *[maxFarOrder + 1]float64, pmax int, leafFirst bool, pmin float64, out *rowLists) {
	node := &t.Nodes[n]
	if leafFirst && node.IsLeaf {
		out.near = append(out.near, n)
		out.nearP = append(out.nearP, pmin)
		return
	}
	d2 := center.Sub(node.Center).Norm2()
	// Loosened rungs admit INTERNAL nodes only: admitting a leaf pair
	// early has nothing to consolidate — it would trade an exact near
	// block for an approximate far entry, spending error budget while
	// GROWING the far list. A leaf therefore classifies by the base
	// multiplier alone (identical to pre-ladder), and rungs ≥ 1 fire
	// exactly where they pay: a rung admission at an internal node
	// replaces its subtree's whole far/near expansion with one entry.
	p := pmax
	if node.IsLeaf {
		p = 0
	}
	ord, far := farOrderOf(d2, node.Radius, radius, macs, p)
	dist := math.Sqrt(d2)
	if far {
		// The slack is the distance to the nearest boundary that would
		// RECLASSIFY the entry. For an order-0 entry that is the base
		// multiplier (one-sided under a ladder: drifting below macs[0]
		// demotes the entry to order 1 — or to near for a leaf — so the
		// absolute value matches the pre-ladder expression bitwise). An
		// order-k entry sits between rungs k and k−1 and can flip either
		// way.
		m := math.Abs(dist - (node.Radius+radius)*macs[0])
		if ord > 0 {
			m = dist - (node.Radius+radius)*macs[ord]
			if up := (node.Radius+radius)*macs[ord-1] - dist; up < m {
				m = up
			}
		}
		out.far = append(out.far, n)
		out.farM = append(out.farM, m)
		out.farP = append(out.farP, pmin)
		if pmax > 0 {
			out.farO = append(out.farO, uint8(ord))
		}
		return
	}
	// Not admitted at any order: the nearest boundary is the loosest
	// rung the node is ELIGIBLE for — macs[pmax] for internal nodes,
	// macs[0] for leaves (== pre-ladder, where math.Abs of the negated
	// difference yields the same bits).
	m := (node.Radius+radius)*macs[p] - dist
	if node.IsLeaf {
		out.near = append(out.near, n)
		out.nearM = append(out.nearM, m)
		out.nearP = append(out.nearP, pmin)
		return
	}
	// Descending: an internal test, owned by the row (the node appears
	// in no list) — it joins the path minimum of everything below.
	if m < pmin {
		pmin = m
	}
	for _, child := range node.Children {
		if child != octree.NoChild {
			classify(t, child, center, radius, macs, pmax, leafFirst, pmin, out)
		}
	}
}

// compileLists builds the CSR lists for all rows in parallel (serially
// when pool is nil). Rows are rowTree's leaves in Leaves() order, each
// classified against the atoms octree. symmetrize moves mutual near leaf
// pairs into the Sym list of the lower-indexed row (valid only when
// rowTree == atoms, i.e. the E_pol phase).
func compileLists(atoms *octree.Tree, rowTree *octree.Tree, mac float64, pmax, deg int, leafFirst bool, symmetrize bool, pool *sched.Pool) *InteractionLists {
	macs := macLadder(mac, pmax, deg)
	rows := rowTree.Leaves()
	per := make([]rowLists, len(rows))
	compileRow := func(i int) {
		rn := &rowTree.Nodes[rows[i]]
		classify(atoms, atoms.Root(), rn.Center, rn.Radius, &macs, pmax, leafFirst, math.Inf(1), &per[i])
	}
	if pool == nil {
		for i := range rows {
			compileRow(i)
		}
	} else {
		grain := len(rows)/(8*pool.NumWorkers()) + 1
		sched.ParallelFor(pool, len(rows), grain, func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				compileRow(i)
			}
		})
	}
	if symmetrize {
		symmetrizeNear(rowTree, rows, per)
	}
	return assembleLists(rows, per)
}

// assembleLists packs per-row compilation results into CSR form. Shared
// by the full compile and the incremental repair, so a repaired list is
// byte-for-byte the structure a fresh compile would produce.
func assembleLists(rows []int32, per []rowLists) *InteractionLists {
	il := &InteractionLists{
		// rows is typically the rowTree's live leaf slice, which a later
		// tracked update rewrites in place (rebuildLeafList) — the lists
		// must own their row ids or a cached compile silently renumbers.
		Rows:    append([]int32(nil), rows...),
		FarOff:  make([]int32, len(rows)+1),
		NearOff: make([]int32, len(rows)+1),
		SymOff:  make([]int32, len(rows)+1),
		CedeOff: make([]int32, len(rows)+1),
	}
	var nf, nn, ns, nc int32
	for i := range per {
		il.FarOff[i], il.NearOff[i], il.SymOff[i], il.CedeOff[i] = nf, nn, ns, nc
		nf += int32(len(per[i].far))
		nn += int32(len(per[i].near))
		ns += int32(len(per[i].sym))
		nc += int32(len(per[i].cede))
	}
	il.FarOff[len(rows)], il.NearOff[len(rows)], il.SymOff[len(rows)], il.CedeOff[len(rows)] = nf, nn, ns, nc
	il.Far = make([]int32, 0, nf)
	il.Near = make([]int32, 0, nn)
	il.Sym = make([]int32, 0, ns)
	il.Cede = make([]int32, 0, nc)
	il.FarMargin = make([]float64, 0, nf)
	il.FarPath = make([]float64, 0, nf)
	il.NearPath = make([]float64, 0, nn)
	il.SymPath = make([]float64, 0, ns)
	il.CedePath = make([]float64, 0, nc)
	withNearM, withFarO := false, false
	for i := range per {
		il.Far = append(il.Far, per[i].far...)
		il.Near = append(il.Near, per[i].near...)
		il.Sym = append(il.Sym, per[i].sym...)
		il.Cede = append(il.Cede, per[i].cede...)
		il.FarMargin = append(il.FarMargin, per[i].farM...)
		il.FarPath = append(il.FarPath, per[i].farP...)
		il.NearPath = append(il.NearPath, per[i].nearP...)
		il.SymPath = append(il.SymPath, per[i].symP...)
		il.CedePath = append(il.CedePath, per[i].cedeP...)
		if per[i].nearM != nil {
			withNearM = true
		}
		if per[i].farO != nil {
			withFarO = true
		}
	}
	if withNearM { // Born lists; E_pol's leaf-first rows carry no near tests
		il.NearMargin = make([]float64, 0, nn)
		for i := range per {
			il.NearMargin = append(il.NearMargin, per[i].nearM...)
		}
	}
	if withFarO { // ladder compiles; every far entry carries its order
		il.FarOrd = make([]uint8, 0, nf)
		for i := range per {
			il.FarOrd = append(il.FarOrd, per[i].farO...)
		}
	}
	return il
}

// symmetrizeNear splits each row's near list into mutual pairs (moved to
// the lower row's sym list, swept once with double weight) and
// one-directional entries (kept in near). Mutuality must be checked
// against the ORIGINAL near sets: the leaf-first ordering of APPROX-EPOL
// can classify U near V while row U resolves V's subtree through an
// ancestor's far aggregate, and such one-way blocks must keep their
// single-direction exact evaluation to match the recursion.
func symmetrizeNear(t *octree.Tree, rows []int32, per []rowLists) {
	rowOf := make([]int32, len(t.Nodes))
	for i := range rowOf {
		rowOf[i] = -1
	}
	for i, r := range rows {
		rowOf[r] = int32(i)
	}
	sorted := make([][]int32, len(per))
	for i := range per {
		c := append([]int32(nil), per[i].near...)
		slices.Sort(c)
		sorted[i] = c
	}
	for i := range per {
		kept := per[i].near[:0]
		keptP := per[i].nearP[:0]
		for x, u := range per[i].near {
			p := per[i].nearP[x]
			j := int(rowOf[u])
			switch {
			case j == i:
				kept = append(kept, u)
				keptP = append(keptP, p)
			case j > i:
				if _, ok := slices.BinarySearch(sorted[j], rows[i]); ok {
					per[i].sym = append(per[i].sym, u)
					per[i].symP = append(per[i].symP, p)
				} else {
					kept = append(kept, u)
					keptP = append(keptP, p)
				}
			default:
				// Row j already claimed the mutual pair; keep only if it
				// was one-directional, recording the cession (and this
				// row's path certificate for it) otherwise.
				if _, ok := slices.BinarySearch(sorted[j], rows[i]); !ok {
					kept = append(kept, u)
					keptP = append(keptP, p)
				} else {
					per[i].cede = append(per[i].cede, u)
					per[i].cedeP = append(per[i].cedeP, p)
				}
			}
		}
		per[i].near, per[i].nearP = kept, keptP
	}
}

// compile builds both phases' lists from the system's current geometry
// and parameters.
func (s *System) compile(pool *sched.Pool) *CompiledLists {
	cl := &CompiledLists{
		bornMAC:  s.bornMAC(),
		epolFar:  epolFarFactor(s.Params.EpsEpol),
		farOrder: s.Params.FarOrder,
	}
	cl.Born = compileLists(s.Atoms, s.QPts, cl.bornMAC, cl.farOrder, bornLadderDeg(s.Params.Kernel), false, false, pool)
	cl.Epol = compileLists(s.Atoms, s.Atoms, cl.epolFar, cl.farOrder, epolLadderDeg, true, true, pool)
	cl.nodeC, cl.nodeR = snapshotNodes(s.Atoms)
	return cl
}

// snapshotNodes copies the tree's node centers and radii (by node id) —
// the geometric state the repair certificates measure drift against.
func snapshotNodes(t *octree.Tree) ([]geom.Vec3, []float64) {
	c := make([]geom.Vec3, len(t.Nodes))
	r := make([]float64, len(t.Nodes))
	for i := range t.Nodes {
		c[i] = t.Nodes[i].Center
		r[i] = t.Nodes[i].Radius
	}
	return c, r
}

// RecordMetrics publishes the lists' static structure to the observer:
// total row/near/far/sym entry counts per phase plus per-row batch-size
// histograms (the sizes the SoA batch kernels sweep). Everything here is
// derivable from the compiled lists alone, so the hot loops in kernels.go
// carry no instrumentation at all — the counts are recorded once per
// run, off the critical path. No-op when o is nil.
func (cl *CompiledLists) RecordMetrics(o *obs.Obs) {
	if cl == nil || o == nil {
		return
	}
	rec := func(prefix string, il *InteractionLists) {
		o.Counter(prefix + ".rows").Add(int64(len(il.Rows)))
		o.Counter(prefix + ".far_entries").Add(int64(il.NumFar()))
		// Split by admitted expansion order: without a ladder every far
		// entry is order 0, so the .p0 counter always equals the total at
		// FarOrder = 0 and the three orders always sum to far_entries.
		var perOrd [maxFarOrder + 1]int64
		if il.FarOrd == nil {
			perOrd[0] = int64(il.NumFar())
		} else {
			for _, fo := range il.FarOrd {
				perOrd[fo]++
			}
		}
		for p, n := range perOrd {
			o.Counter(fmt.Sprintf("%s.far_entries.p%d", prefix, p)).Add(n)
		}
		o.Counter(prefix + ".near_pairs").Add(int64(il.NumNear()))
		o.Counter(prefix + ".sym_pairs").Add(int64(len(il.Sym)))
		rowFar := o.Histogram(prefix + ".row_far")
		rowNear := o.Histogram(prefix + ".row_near")
		for i := range il.Rows {
			rowFar.Observe(int64(il.FarOff[i+1] - il.FarOff[i]))
			near := il.NearOff[i+1] - il.NearOff[i]
			if il.SymOff != nil {
				near += il.SymOff[i+1] - il.SymOff[i]
			}
			rowNear.Observe(int64(near))
		}
	}
	rec("ilist.born", cl.Born)
	rec("ilist.epol", cl.Epol)
}

// Lists returns the system's compiled interaction lists, building them on
// first use (or after invalidation / parameter change) with the given
// pool (nil compiles serially). Safe for concurrent use: distributed
// ranks sharing the System compile once and reuse.
func (s *System) Lists(pool *sched.Pool) *CompiledLists {
	s.listsMu.Lock()
	defer s.listsMu.Unlock()
	if !s.lists.matches(s) {
		s.lists = s.compile(pool)
	}
	return s.lists
}

// RecheckLists recompiles the interaction lists from the current geometry
// and verifies the cached ones are identical — the debug recheck backing
// the rigid-transform reuse invariant. With no cached lists it is a
// no-op. It returns a descriptive error on the first divergence.
func (s *System) RecheckLists(pool *sched.Pool) error {
	// The lane-padding invariant of the SoA arrays is part of the same
	// "nothing drifted" contract the list recheck guards.
	if err := s.checkSoAPadding(); err != nil {
		return err
	}
	s.listsMu.Lock()
	cached := s.lists
	s.listsMu.Unlock()
	if cached == nil {
		return nil
	}
	if !cached.matches(s) {
		return fmt.Errorf("core: cached lists compiled under bornMAC=%g epolFar=%g farOrder=%d, system now wants %g/%g/%d",
			cached.bornMAC, cached.epolFar, cached.farOrder,
			s.bornMAC(), epolFarFactor(s.Params.EpsEpol), s.Params.FarOrder)
	}
	fresh := s.compile(pool)
	if err := diffLists("born", cached.Born, fresh.Born); err != nil {
		return err
	}
	return diffLists("epol", cached.Epol, fresh.Epol)
}

// diffLists reports the first divergence between two compiled lists.
func diffLists(phase string, a, b *InteractionLists) error {
	if len(a.Rows) != len(b.Rows) {
		return fmt.Errorf("core: %s lists row count drifted: %d -> %d", phase, len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			return fmt.Errorf("core: %s list row %d leaf drifted: %d -> %d", phase, i, a.Rows[i], b.Rows[i])
		}
		af, bf := a.Far[a.FarOff[i]:a.FarOff[i+1]], b.Far[b.FarOff[i]:b.FarOff[i+1]]
		an, bn := a.Near[a.NearOff[i]:a.NearOff[i+1]], b.Near[b.NearOff[i]:b.NearOff[i+1]]
		as, bs := a.Sym[a.SymOff[i]:a.SymOff[i+1]], b.Sym[b.SymOff[i]:b.SymOff[i+1]]
		if !equalInt32(af, bf) {
			return fmt.Errorf("core: %s list row %d (leaf %d) far set drifted: %d -> %d entries",
				phase, i, a.Rows[i], len(af), len(bf))
		}
		if !equalInt32(an, bn) {
			return fmt.Errorf("core: %s list row %d (leaf %d) near set drifted: %d -> %d entries",
				phase, i, a.Rows[i], len(an), len(bn))
		}
		if !equalInt32(as, bs) {
			return fmt.Errorf("core: %s list row %d (leaf %d) sym set drifted: %d -> %d entries",
				phase, i, a.Rows[i], len(as), len(bs))
		}
		if (a.FarOrd == nil) != (b.FarOrd == nil) {
			return fmt.Errorf("core: %s lists disagree on order annotations (%v -> %v)",
				phase, a.FarOrd != nil, b.FarOrd != nil)
		}
		if a.FarOrd != nil {
			ao := a.FarOrd[a.FarOff[i]:a.FarOff[i+1]]
			bo := b.FarOrd[b.FarOff[i]:b.FarOff[i+1]]
			for k := range ao {
				if ao[k] != bo[k] {
					return fmt.Errorf("core: %s list row %d (leaf %d) far entry %d admitted order drifted: %d -> %d",
						phase, i, a.Rows[i], k, ao[k], bo[k])
				}
			}
		}
	}
	return nil
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
