package core

import (
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gbpolar/internal/cluster/net"
	"gbpolar/internal/obs"
	"gbpolar/internal/obs/analyze"
	"gbpolar/internal/obs/watch"
)

// watchNetRun executes one fully observed 4-rank TCP run — in-process
// workers with their own observers, health samplers and fast telemetry,
// the coordinator optionally running the anomaly watchdog — and returns
// the coordinator's observer.
func watchNetRun(t *testing.T, membership, checkpoint string, sys *System,
	cfg *watch.Config, flightDir, obsAddr string) *obs.Obs {
	t.Helper()
	const procs = 4
	coObs := obs.New()
	werrs := make([]error, procs)
	var wg sync.WaitGroup
	for r := 1; r < procs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			_, werrs[r] = RunNetWorker(membership, r, NetWorkerOptions{
				StallTimeout:      60 * time.Second,
				JoinBudget:        60 * time.Second,
				Obs:               obs.New(),
				HealthInterval:    2 * time.Millisecond,
				TelemetryInterval: 10 * time.Millisecond,
			})
		}(r)
	}
	res, err := RunNetCoordinator(context.Background(), sys, NetOptions{
		Procs:             procs,
		MembershipPath:    membership,
		CheckpointPath:    checkpoint,
		StallTimeout:      60 * time.Second,
		HeartbeatInterval: 50 * time.Millisecond,
		Obs:               coObs,
		HealthInterval:    2 * time.Millisecond,
		Watch:             cfg,
		FlightDir:         flightDir,
		ObsAddr:           obsAddr,
	})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < procs; r++ {
		if werrs[r] != nil {
			t.Fatalf("worker rank %d: %v", r, werrs[r])
		}
	}
	if res.Report.Faults.Degraded {
		t.Fatalf("observed run degraded: %+v", res.Report.Faults)
	}
	return coObs
}

// The watchdog acceptance run (ISSUE 9): a nominal 4-rank TCP run seeds
// the baseline; a second nominal run of the same shape must produce zero
// verdicts; a third run with a sustained synthetic slowdown in rank 1's
// epol phase must be flagged with the correct phase and rank within
// Sustain windows, flip /healthz to "anomalous", and dump a flight
// recording tagged with the offending phase and rank.
func TestNetWatchdogAcceptance(t *testing.T) {
	sys, _, _ := testSystem(t, 600, 11, DefaultParams())

	// Run 1 — nominal, unwatched: derive the tolerance envelopes from the
	// merged timeline, exactly what an operator snapshots as baseline.
	m1, c1 := netPaths(t)
	co := watchNetRun(t, m1, c1, sys, nil, "", "")
	baseline := watch.BaselineFromSummary(analyze.FromTrace(co.Trace).Summary())
	// Watch only the dominant compute phase. The micro-phases (build,
	// born, push) on this small workload sit near MinPhaseWall where
	// their imbalance is scheduler noise — especially with four ranks
	// oversubscribed in one -race test process — and judging them here
	// would test the scheduler, not the watchdog.
	for k := range baseline.Stats {
		if k != "phase.epol.wall_imbalance" {
			delete(baseline.Stats, k)
		}
	}
	if len(baseline.Stats) == 0 {
		t.Fatal("nominal run yielded no epol imbalance stat to baseline")
	}

	// Run 2 — nominal, watched: same shape, same baseline, no verdicts.
	var mu sync.Mutex
	var verdicts []watch.Verdict
	collect := func(v watch.Verdict) {
		mu.Lock()
		verdicts = append(verdicts, v)
		mu.Unlock()
	}
	m2, c2 := netPaths(t)
	watchNetRun(t, m2, c2, sys, &watch.Config{
		Baseline:  baseline,
		Window:    15 * time.Millisecond,
		Sustain:   3,
		OnAnomaly: collect,
	}, "", "")
	mu.Lock()
	quiet := append([]watch.Verdict(nil), verdicts...)
	mu.Unlock()
	if len(quiet) != 0 {
		t.Fatalf("nominal watched run raised verdicts: %+v", quiet)
	}

	// Run 3 — rank 1 drags its epol phase by 500ms: a sustained 2×+
	// slowdown visible to the coordinator only through the shipped
	// open-span age gauge, since the span does not close until the drag
	// ends.
	testPhaseDrag = func(rank int, phase string) {
		if rank == 1 && phase == "epol" {
			time.Sleep(500 * time.Millisecond)
		}
	}
	defer func() { testPhaseDrag = nil }()

	verdicts = nil
	fired := make(chan watch.Verdict, 8)
	anomalous := make(chan string, 1)
	m3, c3 := netPaths(t)
	flightDir := t.TempDir()

	// Poll /healthz while the run is live: once the first verdict fires
	// the state must read "anomalous" (the cluster is structurally
	// healthy, so nothing else claims precedence).
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		v := <-fired
		collect(v)
		m, err := net.WaitMembership(m3, 30*time.Second)
		if err != nil || m.ObsAddr == "" {
			return
		}
		for i := 0; i < 200; i++ {
			resp, err := http.Get("http://" + m.ObsAddr + "/healthz")
			if err != nil {
				return // run ended, endpoint gone
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if strings.Contains(string(body), `"anomalous"`) {
				select {
				case anomalous <- string(body):
				default:
				}
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	watchNetRun(t, m3, c3, sys, &watch.Config{
		Baseline: baseline,
		Window:   15 * time.Millisecond,
		Sustain:  3,
		OnAnomaly: func(v watch.Verdict) {
			select {
			case fired <- v:
			default:
			}
		},
	}, flightDir, "127.0.0.1:0")
	pollWG.Wait()

	mu.Lock()
	got := append([]watch.Verdict(nil), verdicts...)
	mu.Unlock()
	if len(got) == 0 {
		t.Fatal("dragged run raised no verdict")
	}
	v := got[0]
	if v.Phase != "epol" || v.Rank != 1 {
		t.Fatalf("verdict localization = phase %q rank %d, want epol rank 1 (%+v)", v.Phase, v.Rank, v)
	}
	if v.Stat != "phase.epol.wall_imbalance" {
		t.Errorf("verdict stat = %q", v.Stat)
	}
	if v.Windows > 3 {
		t.Errorf("verdict took %d windows, want <= Sustain (3)", v.Windows)
	}

	// The tagged flight recording: dumped by the coordinator's OnAnomaly
	// wrapper before the test's own hook ran.
	dumps, err := filepath.Glob(filepath.Join(flightDir, "flight-anomaly-epol-rank1-*.jsonl"))
	if err != nil || len(dumps) == 0 {
		t.Fatalf("no tagged flight dump in %s (err %v)", flightDir, err)
	}
	// And the dump is a loadable trace.
	f, err := os.Open(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatalf("flight dump unreadable: %v", err)
	}
	if len(tr.Events()) == 0 {
		t.Fatal("flight dump is empty")
	}

	select {
	case <-anomalous:
	default:
		t.Error("/healthz never reported state \"anomalous\" while the verdict stood")
	}
}
