package core

import (
	"gbpolar/internal/octree"
	"gbpolar/internal/sched"
)

// This file implements the TWO-octree Born-radius traversal of the
// paper's predecessor work (Chowdhury & Bajaj, SPM 2010 — reference [6]):
// T_A and T_Q are descended simultaneously, so the far-field shortcut can
// fire with a pseudo-q-point standing for an arbitrarily large T_Q
// subtree, not just a leaf. The paper's Section IV states "the major
// difference of our approach from [6] is that we only traverse one octree
// instead of two"; keeping both lets the ablation benchmarks quantify
// that design choice (single-tree: simpler node-based work division and
// P-independent error; dual-tree: fewer kernel evaluations).

// DualTreeIntegrals accumulates Born-radius integrals for all atoms under
// aNode against all q-points under qNode, recursing on whichever side has
// the larger radius when the pair is too close to approximate.
//
// This ablation traversal stays order 0 regardless of Params.FarOrder:
// it classifies by the base multiplier alone (the strictest rung of the
// farorder.go ladder, so it is sound at every order) and adds no moment
// corrections — it exists to measure the [6]-style dual descent, not
// the multipole upgrade.
func DualTreeIntegrals(sys *System, acc *bornAccum, aNode, qNode int32, mac float64) {
	a := &sys.Atoms.Nodes[aNode]
	q := &sys.QPts.Nodes[qNode]
	d, d2, far := farSeparated(a.Center, q.Center, a.Radius, q.Radius, mac)
	acc.ops++

	kern := sys.Params.Kernel
	if far {
		acc.node[aNode] += sys.QNodeWN[qNode].Dot(d) / bornDenom(d2, kern)
		return
	}
	if a.IsLeaf && q.IsLeaf {
		for ai := a.Start; ai < a.End; ai++ {
			pa := sys.Atoms.Pts[ai]
			var s float64
			for qi := q.Start; qi < q.End; qi++ {
				dv := sys.QPts.Pts[qi].Sub(pa)
				r2 := dv.Norm2()
				if r2 == 0 {
					continue
				}
				s += sys.WN[qi].Dot(dv) / bornDenom(r2, kern)
			}
			acc.atom[ai] += s
		}
		acc.ops += float64(a.Count() * q.Count())
		return
	}
	// Split the side with the larger radius (leaves cannot split).
	splitA := !a.IsLeaf && (q.IsLeaf || a.Radius >= q.Radius)
	if splitA {
		for _, child := range a.Children {
			if child != octree.NoChild {
				DualTreeIntegrals(sys, acc, child, qNode, mac)
			}
		}
		return
	}
	for _, child := range q.Children {
		if child != octree.NoChild {
			DualTreeIntegrals(sys, acc, aNode, child, mac)
		}
	}
}

// treePair is one (A-node, Q-node) work unit of the parallel dual-tree
// traversal.
type treePair struct{ a, q int32 }

// expandPairs splits (root, root) breadth-first until at least minPairs
// independent near pairs exist (far pairs are emitted as-is; they are
// cheap). The result partitions the traversal exactly.
func expandPairs(sys *System, mac float64, minPairs int) []treePair {
	frontier := []treePair{{sys.Atoms.Root(), sys.QPts.Root()}}
	for len(frontier) < minPairs {
		var next []treePair
		split := false
		for _, pr := range frontier {
			a := &sys.Atoms.Nodes[pr.a]
			q := &sys.QPts.Nodes[pr.q]
			_, _, far := farSeparated(a.Center, q.Center, a.Radius, q.Radius, mac)
			if far || (a.IsLeaf && q.IsLeaf) {
				next = append(next, pr) // terminal: keep as one unit
				continue
			}
			split = true
			if !a.IsLeaf && (q.IsLeaf || a.Radius >= q.Radius) {
				for _, child := range a.Children {
					if child != octree.NoChild {
						next = append(next, treePair{child, pr.q})
					}
				}
			} else {
				for _, child := range q.Children {
					if child != octree.NoChild {
						next = append(next, treePair{pr.a, child})
					}
				}
			}
		}
		frontier = next
		if !split {
			break
		}
	}
	return frontier
}

// DualTreeBornRadii computes Born radii with the dual-tree traversal on
// a work-stealing pool, returning radii in tree-slot order plus the op
// count (for the ablation comparison with the single-tree phase).
func DualTreeBornRadii(sys *System, pool *sched.Pool) (radii []float64, ops float64) {
	p := pool.NumWorkers()
	mac := sys.bornMAC()
	accs := make([]*bornAccum, p)
	for i := range accs {
		accs[i] = newBornAccum(sys)
	}
	pairs := expandPairs(sys, mac, 8*p)
	sched.ParallelFor(pool, len(pairs), 1, func(lo, hi, w int) {
		for i := lo; i < hi; i++ {
			DualTreeIntegrals(sys, accs[w], pairs[i].a, pairs[i].q, mac)
		}
	})
	merged := accs[0]
	for _, a := range accs[1:] {
		merged.add(a)
	}
	radii = make([]float64, sys.Mol.NumAtoms())
	ops = merged.ops + PushIntegralsToAtoms(sys, merged, 0, len(radii), radii)
	return radii, ops
}
