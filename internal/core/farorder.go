package core

import (
	"math"

	"gbpolar/internal/geom"
	"gbpolar/internal/octree"
)

// This file implements the higher-order far-field machinery behind
// Params.FarOrder: a ladder of loosened opening multipliers derived from
// the first NEGLECTED moment order, the shared per-entry order-admission
// test, and the dipole/quadrupole correction kernels for the Born
// integral accumulation and the E_pol histogram convolution. The moments
// themselves live on the octrees (octree/moments.go) and are maintained
// through every update path; the kernels here only read them.
//
// The ladder derivation mirrors farSeparated's error analysis
// (DESIGN.md §15), with the kernel's steepness carried explicitly.
// Write t = (r_a+r_b)/dist for an admitted pair. For a kernel that
// falls off like |x|^−m the order-k multipole term is bounded by
// A_k·t^k with A_k = C_k^{m/2}(1) = binom(k+m−1, k) — the Gegenbauer
// coefficients of the generating expansion of |d+δ|^−m, which grow like
// k^{m−1} (for the Coulomb kernel m = 1 they are all 1 and this reduces
// to the familiar geometric bound t/(1−t)).
//
// The base multiplier mac₀ certifies every order-0 admission a
// worst-case truncation budget of the FULL neglected tail,
//
//	b = Σ_{k≥1} A_k t₀^k = (1−t₀)^−m − 1,  t₀ = 1/mac₀.
//
// An order-p run evaluates the moments through order p exactly on
// every far entry and neglects Σ_{k≥p+1} A_k t^k = (1−t)^−m − S_p(t)
// with S_p(t) = Σ_{k≤p} A_k t^k, so spending the SAME certified budget
// admits any pair with that tail ≤ b — i.e. t up to the root t_p of
//
//	F(t) = (1−t)^−m − S_p(t) − b = 0   on (t₀, 1).
//
// A loosened rung therefore never has a worse guaranteed error than
// the paper's own criterion promises at the same ε. F is strictly
// increasing and convex (its series has only positive coefficients,
// all of order > p), F(t₀) < 0 and F → +∞ at 1⁻, so the root is unique
// and plain bisection pins it to full float64 precision in ~70
// halvings — the ladder is computed once per compile, so robustness
// beats Newton's iteration count here.
//
// Rung 1 is the deliberate exception: macs[1] stays at mac₀. Node
// centers are the CENTROIDS of their points (octree.go), so the k = 1
// term of the order-0 expansion largely cancels — the very
// cancellation looseMACFactor's (1 + 2/ε) criterion is built on
// (born.go). A dipole-only rung corrects a term order 0 already gets
// mostly for free and cannot buy admission at equal MEASURED error;
// FarOrder = 1 is an accuracy tier (it corrects the residual dipole on
// every far entry), FarOrder = 2 is the consolidation tier. Order 0
// keeps the cancellation as pure bonus below its certified bound,
// which is why the equal-budget rung 2 holds equal measured error in
// practice (the equal-error acceptance test pins this).

// maxFarOrder is the highest supported expansion order (quadrupole).
const maxFarOrder = 2

// Ladder kernel degrees: the Born phase expands φ(v) = v/|v|^2κ, whose
// order-k Taylor coefficients grow exactly like those of |v|^−(2κ−1)
// (φ = −∇|v|^−(2κ−2)/(2κ−2); the derivative's (k+1)·binom(k+2κ−2, k+1)
// growth matches binom(k+2κ−2, k) term for term), so the Born ladder
// budgets for m = 2κ−1: 5 for R6, 3 for R4.
//
// The E_pol ladder does NOT loosen (deg 0 keeps every rung at the base
// multiplier): its moment corrections are derived in the COULOMB limit
// of f_GB, valid only where the smoothing term R_uR_v·exp(−d²/4R_uR_v)
// has died off. A Coulomb-budget rung (m = 1 loosens to mac ≈ 2 at
// ε = 0.3) would admit pairs where the smoothing is alive and the
// corrections model the wrong kernel — measured E_pol error blows up by
// an order of magnitude. The E_pol far field keeps order-0 admission
// and spends FarOrder purely on accuracy: the run order's corrections
// fire on every admitted entry.
const epolLadderDeg = 0

// bornLadderDeg is the |x|^−m steepness the Born ladder budgets for.
func bornLadderDeg(kern BornKernel) int {
	if kern == R4 {
		return 3
	}
	return 5
}

// macLadder returns the opening-multiplier ladder for a base multiplier
// mac0, admitted-order cap pmax and kernel degree deg: macs[0] = mac0
// EXACTLY (order 0 is bit-identical to the single-multiplier criterion)
// and macs[p] for p ≤ pmax is the equal-error loosened multiplier
// derived above. Slots above pmax keep mac0 and are never consulted.
// mac0 = +Inf (ε = 0, nothing is ever far) propagates to every order.
func macLadder(mac0 float64, pmax, deg int) [maxFarOrder + 1]float64 {
	var macs [maxFarOrder + 1]float64
	for p := range macs {
		macs[p] = mac0
	}
	if pmax <= 0 || deg <= 0 || math.IsInf(mac0, 1) {
		// deg 0 is the flat ladder: per-entry orders (and with them the
		// moment corrections) without any loosened admission.
		return macs
	}
	m := float64(deg)
	t0 := 1 / mac0
	b := math.Pow(1-t0, -m) - 1 // the base criterion's certified worst-case tail
	// A_k = binom(k+m−1, k) via the rising ratio; S_p(t) accumulated per
	// candidate t inside the bisection predicate.
	tail := func(t float64, p int) float64 {
		s, ak, tk := 1.0, 1.0, 1.0
		for k := 1; k <= p; k++ {
			ak *= (float64(k) + m - 1) / float64(k)
			tk *= t
			s += ak * tk
		}
		return math.Pow(1-t, -m) - s
	}
	for p := 2; p <= pmax && p <= maxFarOrder; p++ {
		lo, hi := t0, 1-1e-9
		for it := 0; it < 80; it++ {
			mid := 0.5 * (lo + hi)
			if tail(mid, p) > b {
				hi = mid
			} else {
				lo = mid
			}
		}
		macs[p] = 1 / lo
	}
	return macs
}

// farOrderOf is farSeparated's opening test extended to the multiplier
// ladder: it returns the lowest order whose (looser) criterion admits
// the pair, trying order 0 first with the EXACT arithmetic of
// farSeparated — s = (ra+rb)·macs[0], admitted iff d2 > s² — so a
// ladder with pmax = 0 reproduces the single-multiplier classification
// bit for bit. ok is false when every order refuses (descend/near).
func farOrderOf(d2, ra, rb float64, macs *[maxFarOrder + 1]float64, pmax int) (ord int, ok bool) {
	s := (ra + rb) * macs[0]
	if d2 > s*s {
		return 0, true
	}
	for k := 1; k <= pmax; k++ {
		s = (ra + rb) * macs[k]
		if d2 > s*s {
			return k, true
		}
	}
	return 0, false
}

// bornFarMoments is one Born row's source moments — the q-leaf's "wn"
// vector moment set (octree/moments.go) gathered into the layout the
// far-correction kernel consumes: m0 is the aggregate ñ_Q (≡ QNodeWN),
// d[γ]/q[γ] the first/second moments of weight component γ about the
// leaf center. Gathered once per row; the per-node arrays it points
// into may be reallocated by updates, so views are never kept across
// rows.
type bornFarMoments struct {
	m0 geom.Vec3
	d  [3]geom.Vec3
	q  [3]geom.Sym3
}

// bornRowMoments gathers the "wn" source moments of q-points leaf leaf.
func bornRowMoments(ms *octree.MomentSet, leaf int32) bornFarMoments {
	var fm bornFarMoments
	fm.m0 = geom.Vec3{X: ms.Ch[0].W[leaf], Y: ms.Ch[1].W[leaf], Z: ms.Ch[2].W[leaf]}
	for c := 0; c < 3; c++ {
		fm.d[c] = ms.Ch[c].D[leaf]
		fm.q[c] = ms.Ch[c].Q[leaf]
	}
	return fm
}

// bornFarCorrection evaluates the order-ord correction for one admitted
// Born far entry. The order-0 pseudo-q-point term M0·d/|d|^2κ (left in
// the caller, untouched) is the zeroth term of the double Taylor
// expansion of Σ_q wn_q·φ(d + δ_q − ξ) around the center offset
// d = c_Q − c_A, where φ(v) = v/|v|^2κ, δ_q is the q-point's offset in
// its leaf and ξ the receiving atom's offset in node A. With
//
//	a0 = 1/|d|^2κ, a1 = κ·a0/|d|², a2 = (κ+1)·a1/|d|²
//
// the derivatives of φ at d are ∂φ = a0·I − 2a1·d⊗d and
// ∂∂φ_γαβ = −2a1(δ_γβ d_α + δ_γα d_β + δ_αβ d_γ) + 4a2 d_γ d_α d_β.
// Contracting with the source moments M0/M1/M2 and collecting powers of
// ξ yields the returned pieces of the node's receiver expansion
// value(ξ) = s + g·ξ + ξᵀhξ, which PushIntegralsToAtoms translates down
// to the atoms (L2L):
//
//	ord ≥ 1: ds = a0·tr(M1) − 2a1·dᵀM1d,  dg = −a0·M0 + 2a1(M0·d)·d
//	ord ≥ 2: ds += −a1·(2·Σγ(M2γd)γ + Σγ dγ·tr(M2γ)) + 2a2·Σγ dγ·dᵀM2γd
//	         dg += 2a1·[M1d + M1ᵀd + tr(M1)·d] − 4a2·(dᵀM1d)·d
//	         dh  = −a1·(M0⊗d + d⊗M0) − a1(M0·d)·I + 2a2(M0·d)·d⊗d
func bornFarCorrection(fm *bornFarMoments, dx, dy, dz, d2 float64, r4 bool, ord int) (ds float64, dg geom.Vec3, dh geom.Sym3) {
	den := d2 * d2
	kap := 2.0
	if !r4 {
		den *= d2
		kap = 3
	}
	a0 := 1 / den
	a1 := kap * a0 / d2
	a2 := (kap + 1) * a1 / d2
	d := geom.Vec3{X: dx, Y: dy, Z: dz}

	m1d := geom.Vec3{X: fm.d[0].Dot(d), Y: fm.d[1].Dot(d), Z: fm.d[2].Dot(d)} // M1·d (rows = channels)
	trM1 := fm.d[0].X + fm.d[1].Y + fm.d[2].Z
	dM1d := d.Dot(m1d)
	m0d := fm.m0.Dot(d)

	ds = a0*trM1 - 2*a1*dM1d
	dg = d.Scale(2 * a1 * m0d).Sub(fm.m0.Scale(a0))
	if ord < 2 {
		return ds, dg, geom.Sym3{}
	}

	q0d, q1d, q2d := fm.q[0].MulVec(d), fm.q[1].MulVec(d), fm.q[2].MulVec(d)
	diagQd := q0d.X + q1d.Y + q2d.Z                                      // Σγ (M2γ·d)γ
	trQd := d.X*fm.q[0].Trace() + d.Y*fm.q[1].Trace() + d.Z*fm.q[2].Trace() // Σγ dγ·tr(M2γ)
	quadQd := d.X*fm.q[0].Quad(d) + d.Y*fm.q[1].Quad(d) + d.Z*fm.q[2].Quad(d)
	ds += -a1*(2*diagQd+trQd) + 2*a2*quadQd

	m1td := fm.d[0].Scale(d.X).Add(fm.d[1].Scale(d.Y)).Add(fm.d[2].Scale(d.Z)) // M1ᵀ·d
	dg = dg.Add(m1d.Add(m1td).Add(d.Scale(trM1)).Scale(2 * a1)).Sub(d.Scale(4 * a2 * dM1d))

	dh = geom.SymOuter(fm.m0, d).Scale(-a1)
	dh.XX -= a1 * m0d
	dh.YY -= a1 * m0d
	dh.ZZ -= a1 * m0d
	dh = dh.Add(geom.Outer(d).Scale(2 * a2 * m0d))
	return ds, dg, dh
}

// epolFarCorrection evaluates the order-ord moment correction for one
// E_pol far node pair: node U's charge moments (M_U, D_U, Θ_U) against
// row node V's, with d = c_U − c_V (the direction every far path
// computes). The histogram term approximates Σ q_u q_v/f_GB(d) — in the
// far regime f_GB is within half an ulp of plain |r| (the expSkip
// analysis in kernels.go), so the corrections expand the Coulomb limit
// Σ q_u q_v/|d + δ_u − δ_v|:
//
//	ord ≥ 1: −d·(M_V·D_U − M_U·D_V)/r³
//	ord ≥ 2: (3/2)·[M_V·dᵀΘ_U d + M_U·dᵀΘ_V d]/r⁵
//	         − [3(d·D_U)(d·D_V) − r²·(D_U·D_V)]/r⁵
//
// with Θ the detraced second moment (the r² cross terms fold into Θ
// because ∇²(1/r) = 0). The same scalar float64 expression is added by
// every tier — exact, approximate, lanes and f32 — at the same point of
// the row sum, preserving the lanes tier's bit-compatibility invariant.
//
// The Coulomb limit leaves the smoothing term R_uR_v·exp(−d²/4R_uR_v)
// uncorrected; at sane ε it is exponentially dead for admitted pairs
// (the expSkip analysis), while at very loose ε (≳ 3, base multiplier
// approaching 1) it — and the slow convergence of the expansion itself
// at t ≈ 0.6 — caps how much the corrections can recover. That regime
// carries ~10⁻² error at EVERY order; the pareto bench table reports
// it honestly.
func (ctx *EpolContext) epolFarCorrection(u, v int32, dx, dy, dz, d2 float64, ord int) float64 {
	d := geom.Vec3{X: dx, Y: dy, Z: dz}
	mU, mV := ctx.mW[u], ctx.mW[v]
	dU, dV := ctx.mD[u], ctx.mD[v]
	inv3 := 1 / (d2 * math.Sqrt(d2))
	s := -(mV*dU.Dot(d) - mU*dV.Dot(d)) * inv3
	if ord >= 2 {
		inv5 := inv3 / d2
		s += 1.5*(mV*ctx.mTh[u].Quad(d)+mU*ctx.mTh[v].Quad(d))*inv5 -
			(3*dU.Dot(d)*dV.Dot(d)-d2*dU.Dot(dV))*inv5
	}
	return s
}
