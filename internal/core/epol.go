package core

import (
	"math"

	"gbpolar/internal/gbmodels"
	"gbpolar/internal/geom"
	"gbpolar/internal/mathx"
	"gbpolar/internal/octree"
)

// EpolContext holds the precomputed state of Figure 3's APPROX-EPOL:
// Born radii per atom slot and, for every atoms-octree node U, the
// charge histogram q_U[k] binned by Born radius in logarithmic bins of
// ratio (1+ε) — q_U[k] = Σ q_u over atoms u under U whose Born radius
// falls in [R_min(1+ε)^k, R_min(1+ε)^{k+1}).
type EpolContext struct {
	sys *System
	// Radii holds Born radii in atom slot order.
	Radii []float64
	// MEps is the bin count M_ε = ⌈log_{1+ε}(R_max/R_min)⌉.
	MEps int
	// RMin and RMax are the Born-radius extremes over all atoms.
	RMin, RMax float64
	// hist[n] is q_U[·] for node n.
	hist [][]float64
	// nzOff/nzBin/nzQ are the histograms compacted to their nonzero bins
	// (CSR over nodes): node n's populated bins are nzBin[nzOff[n]:
	// nzOff[n+1]] with charges nzQ[...]. The compiled far-field kernel
	// (kernels.go) sweeps these instead of testing every bin for zero.
	nzOff []int32
	nzBin []int32
	nzQ   []float64
	// rr[k] = R_min²·(1+ε)^k for k < 2·MEps: the R_u·R_v surrogate of
	// the far-field kernel, indexed by i+j.
	rr []float64
	// invRadii[i] = 1/Radii[i] and inv4rr[k] = 1/(4·rr[k]): reciprocal
	// tables that let the exact-mode compiled kernels (kernels.go) form
	// the f_GB exponent by multiplication instead of a per-pair divide.
	invRadii []float64
	inv4rr   []float64
	// farFactor is (1 + 2/ε); nodes are far when dist > (r_U+r_V)·farFactor.
	farFactor float64
	// farMACs is the opening-multiplier ladder derived from farFactor
	// (farorder.go) and farOrd the admitted-order cap (Params.FarOrder);
	// farMACs[0] == farFactor always, so order 0 stays bit-identical.
	farMACs [maxFarOrder + 1]float64
	farOrd  int
	// mW/mD/mTh view the atoms tree's per-node charge moments (total
	// charge, dipole, DETRACED quadrupole) consumed by the far-field
	// moment corrections; nil at farOrd = 0. Built per context — the
	// octree's arrays can be reallocated by updates, and the detraced
	// tensors are derived state.
	mW     []float64
	mD     []geom.Vec3
	mTh    []geom.Sym3
	lnBase float64
	tau    float64
	// kern holds the scalar math kernels resolved ONCE at context build —
	// the recursive path hoists these function values into locals at row
	// start instead of re-resolving (and indirect-calling) per pair.
	kern mathx.Kernels
	// tier is the compiled-kernel arithmetic resolved from the system
	// parameters (precision.go); epolRow dispatches on it once per row.
	tier kernelTier
	// radii32/rr32 are float32 narrows of Radii and rr for the f32 tier
	// (radii32 lane-padded like the System mirrors); nil on other tiers.
	radii32 []float32
	rr32    []float32
}

// epolFarFactor is the E_pol opening multiplier (1 + 2/ε) of Figure 3's
// far-field test; ε = 0 disables the far field entirely. Shared by
// NewEpolContext and the interaction-list compiler so both classify
// identically.
func epolFarFactor(eps float64) float64 {
	if eps <= 0 {
		return math.Inf(1)
	}
	return 1 + 2/eps
}

// binOf returns the histogram bin of a Born radius.
func (ctx *EpolContext) binOf(r float64) int {
	if ctx.MEps == 1 || ctx.lnBase == 0 {
		return 0
	}
	k := int(math.Log(r/ctx.RMin) / ctx.lnBase)
	if k < 0 {
		k = 0
	}
	if k >= ctx.MEps {
		k = ctx.MEps - 1
	}
	return k
}

// NewEpolContext builds the histograms (bottom-up over the linearized
// tree: leaves sum their atoms, internal nodes sum their children) and
// the bin-product table.
func NewEpolContext(sys *System, slotRadii []float64) *EpolContext {
	eps := sys.Params.EpsEpol
	ctx := &EpolContext{
		sys:   sys,
		Radii: slotRadii,
		tau:   gbmodels.Tau(sys.Params.EpsSolv),
	}
	ctx.RMin, ctx.RMax = slotRadii[0], slotRadii[0]
	for _, r := range slotRadii {
		if r < ctx.RMin {
			ctx.RMin = r
		}
		if r > ctx.RMax {
			ctx.RMax = r
		}
	}
	ctx.farFactor = epolFarFactor(eps)
	ctx.farOrd = sys.Params.FarOrder
	ctx.farMACs = macLadder(ctx.farFactor, ctx.farOrd, epolLadderDeg)
	if ctx.farOrd > 0 {
		ch := &sys.Atoms.MomentsOf(momentSetCharge).Ch[0]
		ctx.mW, ctx.mD = ch.W, ch.D
		ctx.mTh = make([]geom.Sym3, len(ch.Q))
		for i := range ch.Q {
			ctx.mTh[i] = ch.Q[i].Detraced()
		}
	}
	if eps <= 0 {
		// ε = 0 disables the far field entirely (see macFactor); a single
		// bin keeps the structures well-formed.
		ctx.MEps = 1
	} else {
		ctx.MEps = int(math.Ceil(math.Log(ctx.RMax/ctx.RMin)/math.Log(1+eps))) + 1
		if ctx.MEps < 1 {
			ctx.MEps = 1
		}
		// Tiny ε would explode the bin count, but it also pushes the
		// far-field threshold (1+2/ε) so far out that the bins are never
		// consulted — cap them. (1+ε)^256 covers any physical R range
		// for every ε where the far field can actually fire.
		if ctx.MEps > 256 {
			ctx.MEps = 256
		}
	}

	ctx.lnBase = math.Log(1 + eps)

	t := sys.Atoms
	ctx.hist = make([][]float64, t.NumNodes())
	flat := make([]float64, t.NumNodes()*ctx.MEps)
	for i := range ctx.hist {
		ctx.hist[i] = flat[i*ctx.MEps : (i+1)*ctx.MEps]
	}
	for i := t.NumNodes() - 1; i >= 0; i-- {
		n := &t.Nodes[i]
		h := ctx.hist[i]
		if n.IsLeaf {
			for s := n.Start; s < n.End; s++ {
				h[ctx.binOf(slotRadii[s])] += sys.Charge[s]
			}
			continue
		}
		for _, c := range n.Children {
			if c == octree.NoChild {
				continue
			}
			for k, v := range ctx.hist[c] {
				h[k] += v
			}
		}
	}

	// Compact the histograms to their nonzero bins: proteins bin charges
	// into a handful of the M_ε bins per node, so the far-field double
	// loop over (i, j) wastes most iterations on the zero test. The CSR
	// form lets the compiled kernel touch populated bins only.
	ctx.nzOff = make([]int32, t.NumNodes()+1)
	nnz := 0
	for _, h := range ctx.hist {
		for _, q := range h {
			if q != 0 {
				nnz++
			}
		}
	}
	ctx.nzBin = make([]int32, nnz)
	ctx.nzQ = make([]float64, nnz)
	at := int32(0)
	for n, h := range ctx.hist {
		ctx.nzOff[n] = at
		for k, q := range h {
			if q != 0 {
				ctx.nzBin[at] = int32(k)
				ctx.nzQ[at] = q
				at++
			}
		}
	}
	ctx.nzOff[t.NumNodes()] = at

	ctx.rr = make([]float64, 2*ctx.MEps-1)
	ctx.inv4rr = make([]float64, len(ctx.rr))
	for k := range ctx.rr {
		ctx.rr[k] = ctx.RMin * ctx.RMin * math.Pow(1+eps, float64(k))
		ctx.inv4rr[k] = 1 / (4 * ctx.rr[k])
	}
	ctx.invRadii = make([]float64, len(slotRadii))
	for i, r := range slotRadii {
		ctx.invRadii[i] = 1 / r
	}
	ctx.kern = sys.kern()
	ctx.tier = sys.Params.tier()
	if ctx.tier == tierF32 {
		ctx.radii32 = narrow(nil, slotRadii)
		ctx.rr32 = narrow(nil, ctx.rr)
	}
	return ctx
}

// epolAccum is one worker's energy accumulator. The runners hold them in
// a contiguous `[]epolAccum`, with adjacent workers hammering energy/ops
// on every kernel evaluation — pad each accumulator to a full 64-byte
// cache line so neighbours never false-share
// (TestAccumulatorsCacheLineSized pins the size).
type epolAccum struct {
	energy  float64 // Σ q_u·q_v/f_GB over ordered pairs (prefactor applied later)
	ops     float64
	maxTask float64 // largest single-leaf op count (span term, see modelPhaseOps)
	_       [5]float64
}

// ApproxEpol runs Figure 3's APPROX-EPOL for the atoms-octree leaf V
// against the subtree rooted at U, accumulating the raw pair sum
// Σ q_u q_v / f_GB into acc (the −τ/2 prefactor is applied by the
// caller after reduction).
func ApproxEpol(ctx *EpolContext, uNode, vLeaf int32, acc *epolAccum) {
	sys := ctx.sys
	t := sys.Atoms
	u := &t.Nodes[uNode]
	v := &t.Nodes[vLeaf]
	acc.ops++

	if u.IsLeaf {
		// Exact value: every ordered pair (u-atom, v-atom), including the
		// diagonal when U == V (f_GB(a,a) = R_a). The kernel function
		// values are hoisted out of the pair loops: ctx.kern is resolved
		// once per context, and the locals let the approximate path spend
		// its per-pair cost on arithmetic, not interface dispatch.
		exp, rsqrt := ctx.kern.Exp, ctx.kern.RSqrt
		for ui := u.Start; ui < u.End; ui++ {
			pu := t.Pts[ui]
			qu := sys.Charge[ui]
			ru := ctx.Radii[ui]
			var s float64
			for vi := v.Start; vi < v.End; vi++ {
				r2 := pu.Dist2(t.Pts[vi])
				rr := ru * ctx.Radii[vi]
				f2 := r2 + rr*exp(-r2/(4*rr))
				s += sys.Charge[vi] * rsqrt(f2)
			}
			acc.energy += qu * s
		}
		acc.ops += float64(u.Count() * v.Count())
		return
	}

	// The opening test is farSeparated's, extended to the multiplier
	// ladder: farMACs[0] == farFactor, so farOrd = 0 reproduces the
	// original single-multiplier verdict bit for bit.
	d := u.Center.Sub(v.Center)
	d2 := d.Norm2()
	_, far := farOrderOf(d2, v.Radius, u.Radius, &ctx.farMACs, ctx.farOrd)
	if far {
		// Far enough: interact the charge histograms bin-by-bin, using
		// R_min²(1+ε)^{i+j} as the R_u·R_v surrogate.
		exp, rsqrt := ctx.kern.Exp, ctx.kern.RSqrt
		hu, hv := ctx.hist[uNode], ctx.hist[vLeaf]
		var s float64
		for i, qi := range hu {
			if qi == 0 {
				continue
			}
			for j, qj := range hv {
				if qj == 0 {
					continue
				}
				rr := ctx.rr[i+j]
				f2 := d2 + rr*exp(-d2/(4*rr))
				s += qi * qj * rsqrt(f2)
				acc.ops++
			}
		}
		// Every far admission is corrected through the RUN order — the
		// admitted rung decides admission only (see farField's comment).
		if ctx.farOrd > 0 {
			s += ctx.epolFarCorrection(uNode, vLeaf, d.X, d.Y, d.Z, d2, ctx.farOrd)
		}
		acc.energy += s
		return
	}
	for _, child := range u.Children {
		if child != octree.NoChild {
			ApproxEpol(ctx, child, vLeaf, acc)
		}
	}
}

// Finish converts the accumulated raw pair sum into E_pol in kcal/mol.
func (ctx *EpolContext) Finish(rawSum float64) float64 {
	return -0.5 * ctx.tau * rawSum
}
