package core

import (
	"math"
	"testing"

	"gbpolar/internal/geom"
	"gbpolar/internal/mathx"
)

// runTier computes the system single-threaded on the compiled path under
// the given precision tier (restoring the previous parameters), so tier
// comparisons see identical row order and merge order.
func runTier(t *testing.T, sys *System, p Precision, m mathx.Mode) *Result {
	t.Helper()
	saved := sys.Params
	sys.Params.Precision = p
	sys.Params.Math = m
	defer func() { sys.Params = saved }()
	res, err := RunShared(sys, SharedOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The f32 tier's acceptance contract (ISSUE satellite): total E_pol and
// EVERY per-atom Born radius within 1e-4 relative of the exact tier, on
// the 5k test molecule always and the 40k one unless -short.
func TestF32TierErrorBudget(t *testing.T) {
	sizes := []int{5000}
	if !testing.Short() {
		sizes = append(sizes, 40000)
	}
	for _, n := range sizes {
		sys, _, _ := testSystem(t, n, int64(500+n), DefaultParams())
		exact := runTier(t, sys, PrecisionExact, mathx.Exact)
		f32 := runTier(t, sys, PrecisionF32, mathx.Exact)

		if e := relErr(f32.Epol, exact.Epol); e > 1e-4 {
			t.Errorf("n=%d: f32-tier E_pol %.10g vs exact %.10g, rel err %.3g > 1e-4",
				n, f32.Epol, exact.Epol, e)
		}
		var worst float64
		for i := range exact.BornRadii {
			if e := relErr(f32.BornRadii[i], exact.BornRadii[i]); e > worst {
				worst = e
			}
		}
		if worst > 1e-4 {
			t.Errorf("n=%d: f32-tier worst Born-radius rel err %.3g > 1e-4", n, worst)
		}
		t.Logf("n=%d: f32 tier E_pol rel err %.3g, worst Born-radius rel err %.3g",
			n, relErr(f32.Epol, exact.Epol), worst)
	}
}

// The laned tier's PORTABLE path claims BIT-compatibility with the
// scalar approximate compiled path: same per-term arithmetic (the mathx
// lane helpers are per-element bit-identical to the scalars) and same
// summation order, so a single-threaded run must produce the identical
// float64s. The AVX2 assembly path makes no bitwise claim (it is pinned
// separately by TestAsmKernelsMatchPortable), so it is forced off here.
func TestLanesTierBitCompatible(t *testing.T) {
	defer func(v bool) { useAsmKernels = v }(useAsmKernels)
	useAsmKernels = false
	sys, _, _ := testSystem(t, 3000, 91, DefaultParams())
	scalar := runTier(t, sys, PrecisionExact, mathx.Approximate)
	laned := runTier(t, sys, PrecisionLanes, mathx.Exact)

	if math.Float64bits(scalar.Epol) != math.Float64bits(laned.Epol) {
		t.Errorf("laned tier E_pol %x not bit-identical to scalar approximate %x (values %.17g vs %.17g)",
			math.Float64bits(laned.Epol), math.Float64bits(scalar.Epol), laned.Epol, scalar.Epol)
	}
	for i := range scalar.BornRadii {
		if math.Float64bits(scalar.BornRadii[i]) != math.Float64bits(laned.BornRadii[i]) {
			t.Fatalf("Born radius %d: laned %x vs scalar approximate %x",
				i, math.Float64bits(laned.BornRadii[i]), math.Float64bits(scalar.BornRadii[i]))
		}
	}
}

// The AVX2 assembly near-block kernels must agree with the portable lane
// code they replace far inside the tiers' 1e-4 accuracy budget: the
// per-lane arithmetic differs only by FMA contraction, polynomial exp
// (vs the mathx scalars) and pairwise reduction, so the f64 tier is
// pinned at 1e-9 relative (measured ~2e-11) and the f32 tier at 1e-5
// (measured ~4e-6).
func TestAsmKernelsMatchPortable(t *testing.T) {
	if !useAsmKernels {
		t.Skip("no AVX2+FMA assembly kernels on this host")
	}
	sys, _, _ := testSystem(t, 4000, 95, DefaultParams())
	type run struct{ lanes, f32 *Result }
	measure := func() run {
		return run{
			lanes: runTier(t, sys, PrecisionLanes, mathx.Exact),
			f32:   runTier(t, sys, PrecisionF32, mathx.Exact),
		}
	}
	asm := measure()
	useAsmKernels = false
	defer func() { useAsmKernels = true }()
	portable := measure()

	check := func(tier string, a, p *Result, tol float64) {
		// !(e <= tol) rather than e > tol so a NaN energy cannot pass.
		if e := relErr(a.Epol, p.Epol); !(e <= tol) {
			t.Errorf("%s tier: asm E_pol %.12g vs portable %.12g, rel err %.3g > %.0e",
				tier, a.Epol, p.Epol, e, tol)
		}
		var worst float64
		for i := range p.BornRadii {
			if e := relErr(a.BornRadii[i], p.BornRadii[i]); e > worst {
				worst = e
			}
		}
		if worst > tol {
			t.Errorf("%s tier: asm worst Born-radius rel err %.3g > %.0e vs portable", tier, worst, tol)
		}
		t.Logf("%s tier: asm vs portable E_pol rel err %.3g, worst Born-radius rel err %.3g",
			tier, relErr(a.Epol, p.Epol), worst)
	}
	check("lanes", asm.lanes, portable.lanes, 1e-9)
	check("f32", asm.f32, portable.f32, 1e-5)
}

// The laned tier also stays within the approximate-math accuracy class
// of the exact tier (the paper's ~1e-4 comparison), and all three tiers
// survive the paranoid DebugCheckLists mode (which now also asserts the
// SoA lane-padding invariants).
func TestTiersUnderDebugCheckLists(t *testing.T) {
	params := DefaultParams()
	params.DebugCheckLists = true
	sys, _, _ := testSystem(t, 1500, 92, params)
	exact := runTier(t, sys, PrecisionExact, mathx.Exact)
	for _, p := range []Precision{PrecisionLanes, PrecisionF32} {
		res := runTier(t, sys, p, mathx.Exact)
		if e := relErr(res.Epol, exact.Epol); e > 1e-4 {
			t.Errorf("%v tier E_pol rel err %.3g > 1e-4 vs exact", p, e)
		}
	}
}

// The f32 tier must keep tracking geometry through warm re-poses: the
// float32 mirror is generation-cached, and a stale mirror would silently
// freeze the pose. Verified against the exact tier after each transform.
func TestF32MirrorTracksRigidTransforms(t *testing.T) {
	sys, _, _ := testSystem(t, 1200, 93, DefaultParams())
	for step := 0; step < 3; step++ {
		tr := geom.Translate(geom.V(float64(step)+1, -2, 0.5)).
			Compose(geom.RotateAxis(geom.V(1, 2, 3), 0.3*float64(step+1)))
		sys.ApplyRigidTransform(tr)
		exact := runTier(t, sys, PrecisionExact, mathx.Exact)
		f32 := runTier(t, sys, PrecisionF32, mathx.Exact)
		if e := relErr(f32.Epol, exact.Epol); e > 1e-4 {
			t.Fatalf("step %d: f32 tier E_pol rel err %.3g > 1e-4 — stale float32 mirror?", step, e)
		}
	}
}

func TestPrecisionParseAndString(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Precision
	}{
		{"", PrecisionExact}, {"exact", PrecisionExact},
		{"lanes", PrecisionLanes}, {"approx-lanes", PrecisionLanes},
		{"f32", PrecisionF32},
	} {
		got, err := ParsePrecision(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParsePrecision(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParsePrecision("float16"); err == nil {
		t.Error("ParsePrecision should reject unknown tiers")
	}
	if PrecisionExact.String() != "exact" || PrecisionLanes.String() != "lanes" || PrecisionF32.String() != "f32" {
		t.Error("Precision.String broken")
	}
}

// checkSoAPadding must catch a dirtied pad slot — the invariant the lane
// loops and the f32 mirror conversion rely on.
func TestSoAPaddingInvariantChecked(t *testing.T) {
	sys, _, _ := testSystem(t, 123, 94, DefaultParams())
	if err := sys.checkSoAPadding(); err != nil {
		t.Fatalf("fresh system fails padding check: %v", err)
	}
	n := len(sys.AtomX)
	p := padLanes(n)
	if p == n {
		// 123 atoms is not a lane multiple, so there must be pad slots.
		t.Fatalf("expected pad slots for %d atoms", n)
	}
	sys.AtomX[:p][n] = 42
	if err := sys.checkSoAPadding(); err == nil {
		t.Error("checkSoAPadding missed a dirtied pad slot")
	}
	sys.AtomX[:p][n] = 0
}
