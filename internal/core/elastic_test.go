package core

import (
	"math/rand"
	"testing"

	"gbpolar/internal/cluster"
)

// Property test: for ANY valid membership event log (deaths of live
// ranks, rejoins of dead ranks, in any order), ElasticSpans partitions
// [0, n) exactly — every row owned by exactly one live rank, dead ranks
// own nothing. This is the invariant that makes a collective's event-log
// consensus sufficient for correctness: ranks that agree on the log
// compute disjoint, exhaustive assignments independently.
func TestElasticSpansPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(2000)
		P := 1 + rng.Intn(12)
		dead := make([]bool, P)
		var events []cluster.MemberEvent
		for e := rng.Intn(16); e > 0; e-- {
			r := rng.Intn(P)
			if dead[r] {
				events = append(events, cluster.MemberEvent{Rank: r, Join: true})
				dead[r] = false
			} else {
				// Never kill the last live rank: the protocol cannot
				// reach that state (the survivor observing it is alive).
				live := 0
				for _, d := range dead {
					if !d {
						live++
					}
				}
				if live <= 1 {
					continue
				}
				events = append(events, cluster.MemberEvent{Rank: r, Join: false})
				dead[r] = true
			}
		}

		asgn := ElasticSpans(n, P, events)
		owner := make([]int, n)
		for i := range owner {
			owner[i] = -1
		}
		for r, spans := range asgn {
			if dead[r] && len(spans) > 0 {
				t.Fatalf("trial %d (n=%d P=%d events=%v): dead rank %d owns %v",
					trial, n, P, events, r, spans)
			}
			for _, sp := range spans {
				if sp.Lo < 0 || sp.Hi > n || sp.Lo >= sp.Hi {
					t.Fatalf("trial %d (n=%d P=%d events=%v): rank %d invalid span %+v",
						trial, n, P, events, r, sp)
				}
				for i := sp.Lo; i < sp.Hi; i++ {
					if owner[i] != -1 {
						t.Fatalf("trial %d (n=%d P=%d events=%v): row %d owned by both %d and %d",
							trial, n, P, events, i, owner[i], r)
					}
					owner[i] = r
				}
			}
		}
		for i, r := range owner {
			if r == -1 {
				t.Fatalf("trial %d (n=%d P=%d events=%v): row %d unowned", trial, n, P, events, i)
			}
		}
	}
}

// Determinism: two replays of the same log agree span for span — the
// consensus property the TCP transport's event log relies on.
func TestElasticSpansDeterministic(t *testing.T) {
	events := []cluster.MemberEvent{
		{Rank: 2, Join: false},
		{Rank: 1, Join: false},
		{Rank: 2, Join: true},
		{Rank: 3, Join: false},
		{Rank: 1, Join: true},
	}
	a := ElasticSpans(1234, 4, events)
	b := ElasticSpans(1234, 4, events)
	for r := range a {
		if len(a[r]) != len(b[r]) {
			t.Fatalf("rank %d span count differs", r)
		}
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatalf("rank %d span %d differs: %+v vs %+v", r, i, a[r][i], b[r][i])
			}
		}
	}
}
