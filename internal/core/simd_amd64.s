// AVX2+FMA lane kernels for the non-exact precision tiers (simd_amd64.go
// wraps and dispatches these; kernels_lanes.go / kernels_f32.go carry the
// portable fallbacks). One call sweeps one whole near block — the outer
// loop over the block's u-atoms (Born: the near leaf's atoms) runs inside
// the assembly, so the per-call setup amortizes over up to
// LeafCap×LeafCap pairs instead of a single row sweep.
//
// Arithmetic contract (documented in DESIGN.md §11): exp uses the same
// range reduction + degree-6 (f64) / degree-5 (f32) Horner polynomial as
// mathx.Exp/Exp32, evaluated with FMA contractions; 1/√x seeds from
// VRSQRTPS (|rel err| ≤ 1.5·2⁻¹²) and runs two (f64, → ~6e-14) or one
// (f32, → ~2e-7) Newton steps; lane partials reduce pairwise. None of
// this is bit-identical to the portable lane path — the tiers' accuracy
// class (≤1e-4 relative) absorbs the difference, and
// TestAsmKernelsMatchPortable pins it far tighter.
//
// The inner (v-row / q-point) length is runtime-sized: full lanes run
// the unmasked loop, the remainder runs one extra iteration with
// VMASKMOV loads whose mask comes from the lane-count tables below.
// Masked-off epol lanes load zero charges/radii, which would put
// 1/√0 · 0 = NaN in play if the u-atom sat exactly at the origin — a
// VBLENDVPD parks those lanes' f² at 1.0 instead. The Born kernel's own
// r² ≠ 0 compare already covers its masked lanes.

#include "textflag.h"

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// ---- constants, replicated across lanes ----

DATA f64x4NegQuarter<>+0(SB)/8, $-0.25
DATA f64x4NegQuarter<>+8(SB)/8, $-0.25
DATA f64x4NegQuarter<>+16(SB)/8, $-0.25
DATA f64x4NegQuarter<>+24(SB)/8, $-0.25
GLOBL f64x4NegQuarter<>(SB), RODATA|NOPTR, $32

DATA f64x4Clamp<>+0(SB)/8, $-700.0
DATA f64x4Clamp<>+8(SB)/8, $-700.0
DATA f64x4Clamp<>+16(SB)/8, $-700.0
DATA f64x4Clamp<>+24(SB)/8, $-700.0
GLOBL f64x4Clamp<>(SB), RODATA|NOPTR, $32

DATA f64x4InvLn2<>+0(SB)/8, $1.4426950408889634
DATA f64x4InvLn2<>+8(SB)/8, $1.4426950408889634
DATA f64x4InvLn2<>+16(SB)/8, $1.4426950408889634
DATA f64x4InvLn2<>+24(SB)/8, $1.4426950408889634
GLOBL f64x4InvLn2<>(SB), RODATA|NOPTR, $32

DATA f64x4Ln2<>+0(SB)/8, $0.6931471805599453
DATA f64x4Ln2<>+8(SB)/8, $0.6931471805599453
DATA f64x4Ln2<>+16(SB)/8, $0.6931471805599453
DATA f64x4Ln2<>+24(SB)/8, $0.6931471805599453
GLOBL f64x4Ln2<>(SB), RODATA|NOPTR, $32

DATA f64x4C6<>+0(SB)/8, $0.0013888888888888889
DATA f64x4C6<>+8(SB)/8, $0.0013888888888888889
DATA f64x4C6<>+16(SB)/8, $0.0013888888888888889
DATA f64x4C6<>+24(SB)/8, $0.0013888888888888889
GLOBL f64x4C6<>(SB), RODATA|NOPTR, $32

DATA f64x4C5<>+0(SB)/8, $0.008333333333333333
DATA f64x4C5<>+8(SB)/8, $0.008333333333333333
DATA f64x4C5<>+16(SB)/8, $0.008333333333333333
DATA f64x4C5<>+24(SB)/8, $0.008333333333333333
GLOBL f64x4C5<>(SB), RODATA|NOPTR, $32

DATA f64x4C4<>+0(SB)/8, $0.041666666666666664
DATA f64x4C4<>+8(SB)/8, $0.041666666666666664
DATA f64x4C4<>+16(SB)/8, $0.041666666666666664
DATA f64x4C4<>+24(SB)/8, $0.041666666666666664
GLOBL f64x4C4<>(SB), RODATA|NOPTR, $32

DATA f64x4C3<>+0(SB)/8, $0.16666666666666666
DATA f64x4C3<>+8(SB)/8, $0.16666666666666666
DATA f64x4C3<>+16(SB)/8, $0.16666666666666666
DATA f64x4C3<>+24(SB)/8, $0.16666666666666666
GLOBL f64x4C3<>(SB), RODATA|NOPTR, $32

DATA f64x4Half<>+0(SB)/8, $0.5
DATA f64x4Half<>+8(SB)/8, $0.5
DATA f64x4Half<>+16(SB)/8, $0.5
DATA f64x4Half<>+24(SB)/8, $0.5
GLOBL f64x4Half<>(SB), RODATA|NOPTR, $32

DATA f64x4One<>+0(SB)/8, $1.0
DATA f64x4One<>+8(SB)/8, $1.0
DATA f64x4One<>+16(SB)/8, $1.0
DATA f64x4One<>+24(SB)/8, $1.0
GLOBL f64x4One<>(SB), RODATA|NOPTR, $32

DATA f64x4OneHalf<>+0(SB)/8, $1.5
DATA f64x4OneHalf<>+8(SB)/8, $1.5
DATA f64x4OneHalf<>+16(SB)/8, $1.5
DATA f64x4OneHalf<>+24(SB)/8, $1.5
GLOBL f64x4OneHalf<>(SB), RODATA|NOPTR, $32

DATA f64x4Bias<>+0(SB)/8, $1023
DATA f64x4Bias<>+8(SB)/8, $1023
DATA f64x4Bias<>+16(SB)/8, $1023
DATA f64x4Bias<>+24(SB)/8, $1023
GLOBL f64x4Bias<>(SB), RODATA|NOPTR, $32

// mask4<>[r] enables the first r of 4 f64 lanes (rows 0..4, 32 B each).
DATA mask4<>+0(SB)/8, $0
DATA mask4<>+8(SB)/8, $0
DATA mask4<>+16(SB)/8, $0
DATA mask4<>+24(SB)/8, $0
DATA mask4<>+32(SB)/8, $-1
DATA mask4<>+40(SB)/8, $0
DATA mask4<>+48(SB)/8, $0
DATA mask4<>+56(SB)/8, $0
DATA mask4<>+64(SB)/8, $-1
DATA mask4<>+72(SB)/8, $-1
DATA mask4<>+80(SB)/8, $0
DATA mask4<>+88(SB)/8, $0
DATA mask4<>+96(SB)/8, $-1
DATA mask4<>+104(SB)/8, $-1
DATA mask4<>+112(SB)/8, $-1
DATA mask4<>+120(SB)/8, $0
DATA mask4<>+128(SB)/8, $-1
DATA mask4<>+136(SB)/8, $-1
DATA mask4<>+144(SB)/8, $-1
DATA mask4<>+152(SB)/8, $-1
GLOBL mask4<>(SB), RODATA|NOPTR, $160

DATA f32x8NegQuarter<>+0(SB)/4, $-0.25
DATA f32x8NegQuarter<>+4(SB)/4, $-0.25
DATA f32x8NegQuarter<>+8(SB)/4, $-0.25
DATA f32x8NegQuarter<>+12(SB)/4, $-0.25
DATA f32x8NegQuarter<>+16(SB)/4, $-0.25
DATA f32x8NegQuarter<>+20(SB)/4, $-0.25
DATA f32x8NegQuarter<>+24(SB)/4, $-0.25
DATA f32x8NegQuarter<>+28(SB)/4, $-0.25
GLOBL f32x8NegQuarter<>(SB), RODATA|NOPTR, $32

DATA f32x8Clamp<>+0(SB)/4, $-87.0
DATA f32x8Clamp<>+4(SB)/4, $-87.0
DATA f32x8Clamp<>+8(SB)/4, $-87.0
DATA f32x8Clamp<>+12(SB)/4, $-87.0
DATA f32x8Clamp<>+16(SB)/4, $-87.0
DATA f32x8Clamp<>+20(SB)/4, $-87.0
DATA f32x8Clamp<>+24(SB)/4, $-87.0
DATA f32x8Clamp<>+28(SB)/4, $-87.0
GLOBL f32x8Clamp<>(SB), RODATA|NOPTR, $32

DATA f32x8InvLn2<>+0(SB)/4, $1.44269504
DATA f32x8InvLn2<>+4(SB)/4, $1.44269504
DATA f32x8InvLn2<>+8(SB)/4, $1.44269504
DATA f32x8InvLn2<>+12(SB)/4, $1.44269504
DATA f32x8InvLn2<>+16(SB)/4, $1.44269504
DATA f32x8InvLn2<>+20(SB)/4, $1.44269504
DATA f32x8InvLn2<>+24(SB)/4, $1.44269504
DATA f32x8InvLn2<>+28(SB)/4, $1.44269504
GLOBL f32x8InvLn2<>(SB), RODATA|NOPTR, $32

DATA f32x8Ln2<>+0(SB)/4, $0.693147182
DATA f32x8Ln2<>+4(SB)/4, $0.693147182
DATA f32x8Ln2<>+8(SB)/4, $0.693147182
DATA f32x8Ln2<>+12(SB)/4, $0.693147182
DATA f32x8Ln2<>+16(SB)/4, $0.693147182
DATA f32x8Ln2<>+20(SB)/4, $0.693147182
DATA f32x8Ln2<>+24(SB)/4, $0.693147182
DATA f32x8Ln2<>+28(SB)/4, $0.693147182
GLOBL f32x8Ln2<>(SB), RODATA|NOPTR, $32

DATA f32x8C5<>+0(SB)/4, $0.00833333377
DATA f32x8C5<>+4(SB)/4, $0.00833333377
DATA f32x8C5<>+8(SB)/4, $0.00833333377
DATA f32x8C5<>+12(SB)/4, $0.00833333377
DATA f32x8C5<>+16(SB)/4, $0.00833333377
DATA f32x8C5<>+20(SB)/4, $0.00833333377
DATA f32x8C5<>+24(SB)/4, $0.00833333377
DATA f32x8C5<>+28(SB)/4, $0.00833333377
GLOBL f32x8C5<>(SB), RODATA|NOPTR, $32

DATA f32x8C4<>+0(SB)/4, $0.0416666679
DATA f32x8C4<>+4(SB)/4, $0.0416666679
DATA f32x8C4<>+8(SB)/4, $0.0416666679
DATA f32x8C4<>+12(SB)/4, $0.0416666679
DATA f32x8C4<>+16(SB)/4, $0.0416666679
DATA f32x8C4<>+20(SB)/4, $0.0416666679
DATA f32x8C4<>+24(SB)/4, $0.0416666679
DATA f32x8C4<>+28(SB)/4, $0.0416666679
GLOBL f32x8C4<>(SB), RODATA|NOPTR, $32

DATA f32x8C3<>+0(SB)/4, $0.166666672
DATA f32x8C3<>+4(SB)/4, $0.166666672
DATA f32x8C3<>+8(SB)/4, $0.166666672
DATA f32x8C3<>+12(SB)/4, $0.166666672
DATA f32x8C3<>+16(SB)/4, $0.166666672
DATA f32x8C3<>+20(SB)/4, $0.166666672
DATA f32x8C3<>+24(SB)/4, $0.166666672
DATA f32x8C3<>+28(SB)/4, $0.166666672
GLOBL f32x8C3<>(SB), RODATA|NOPTR, $32

DATA f32x8Half<>+0(SB)/4, $0.5
DATA f32x8Half<>+4(SB)/4, $0.5
DATA f32x8Half<>+8(SB)/4, $0.5
DATA f32x8Half<>+12(SB)/4, $0.5
DATA f32x8Half<>+16(SB)/4, $0.5
DATA f32x8Half<>+20(SB)/4, $0.5
DATA f32x8Half<>+24(SB)/4, $0.5
DATA f32x8Half<>+28(SB)/4, $0.5
GLOBL f32x8Half<>(SB), RODATA|NOPTR, $32

DATA f32x8One<>+0(SB)/4, $1.0
DATA f32x8One<>+4(SB)/4, $1.0
DATA f32x8One<>+8(SB)/4, $1.0
DATA f32x8One<>+12(SB)/4, $1.0
DATA f32x8One<>+16(SB)/4, $1.0
DATA f32x8One<>+20(SB)/4, $1.0
DATA f32x8One<>+24(SB)/4, $1.0
DATA f32x8One<>+28(SB)/4, $1.0
GLOBL f32x8One<>(SB), RODATA|NOPTR, $32

DATA f32x8OneHalf<>+0(SB)/4, $1.5
DATA f32x8OneHalf<>+4(SB)/4, $1.5
DATA f32x8OneHalf<>+8(SB)/4, $1.5
DATA f32x8OneHalf<>+12(SB)/4, $1.5
DATA f32x8OneHalf<>+16(SB)/4, $1.5
DATA f32x8OneHalf<>+20(SB)/4, $1.5
DATA f32x8OneHalf<>+24(SB)/4, $1.5
DATA f32x8OneHalf<>+28(SB)/4, $1.5
GLOBL f32x8OneHalf<>(SB), RODATA|NOPTR, $32

DATA f32x8Bias<>+0(SB)/4, $127
DATA f32x8Bias<>+4(SB)/4, $127
DATA f32x8Bias<>+8(SB)/4, $127
DATA f32x8Bias<>+12(SB)/4, $127
DATA f32x8Bias<>+16(SB)/4, $127
DATA f32x8Bias<>+20(SB)/4, $127
DATA f32x8Bias<>+24(SB)/4, $127
DATA f32x8Bias<>+28(SB)/4, $127
GLOBL f32x8Bias<>(SB), RODATA|NOPTR, $32

// mask8<>[r] enables the first r of 8 f32 lanes (rows 0..8, 32 B each).
DATA mask8<>+0(SB)/8, $0
DATA mask8<>+8(SB)/8, $0
DATA mask8<>+16(SB)/8, $0
DATA mask8<>+24(SB)/8, $0
DATA mask8<>+32(SB)/4, $-1
DATA mask8<>+36(SB)/4, $0
DATA mask8<>+40(SB)/8, $0
DATA mask8<>+48(SB)/8, $0
DATA mask8<>+56(SB)/8, $0
DATA mask8<>+64(SB)/8, $-1
DATA mask8<>+72(SB)/8, $0
DATA mask8<>+80(SB)/8, $0
DATA mask8<>+88(SB)/8, $0
DATA mask8<>+96(SB)/8, $-1
DATA mask8<>+104(SB)/4, $-1
DATA mask8<>+108(SB)/4, $0
DATA mask8<>+112(SB)/8, $0
DATA mask8<>+120(SB)/8, $0
DATA mask8<>+128(SB)/8, $-1
DATA mask8<>+136(SB)/8, $-1
DATA mask8<>+144(SB)/8, $0
DATA mask8<>+152(SB)/8, $0
DATA mask8<>+160(SB)/8, $-1
DATA mask8<>+168(SB)/8, $-1
DATA mask8<>+176(SB)/4, $-1
DATA mask8<>+180(SB)/4, $0
DATA mask8<>+184(SB)/8, $0
DATA mask8<>+192(SB)/8, $-1
DATA mask8<>+200(SB)/8, $-1
DATA mask8<>+208(SB)/8, $-1
DATA mask8<>+216(SB)/8, $0
DATA mask8<>+224(SB)/8, $-1
DATA mask8<>+232(SB)/8, $-1
DATA mask8<>+240(SB)/8, $-1
DATA mask8<>+248(SB)/4, $-1
DATA mask8<>+252(SB)/4, $0
DATA mask8<>+256(SB)/8, $-1
DATA mask8<>+264(SB)/8, $-1
DATA mask8<>+272(SB)/8, $-1
DATA mask8<>+280(SB)/8, $-1
GLOBL mask8<>(SB), RODATA|NOPTR, $288

// func epolNearBlock4(ax, ay, az, ch, rad, irad, vx, vy, vz, cv, rv, irv []float64) float64
//
// Returns Σ_u ch[u] · Σ_j cv[j]/f_GB(u,j) over the whole block (u over
// the first six slices, j over the last six), with f_GB² = r² +
// rr·exp(−r²/4rr), rr = rad[u]·rv[j], and the exponent formed as
// r²·(−0.25·irad[u])·irv[j]. The caller applies the sym weight.
//
// Registers — outer (u): R14=ax R15=ay AX=az BX=ch CX=rad DX=irad,
// R9 = remaining u count; inner (v): SI=vx DI=vy R10=vz R11=cv R12=rv
// R13=irv, R8 = j. Y12/Y13/Y14 = u position, Y11 = rad[u],
// Y10 = −0.25·irad[u], Y15 = lane partials, Y9 = tail mask (tail block
// only), Y0–Y8 temps. The running energy lives in energy-40(SP) — every
// XMM register aliases a YMM one the block body or tail mask clobbers.
TEXT ·epolNearBlock4(SB), NOSPLIT, $48-296
	// nfull = n &^ 3; tmask = mask4[n&3]
	MOVQ vx_len+152(FP), R8
	MOVQ R8, R9
	ANDQ $3, R9
	SUBQ R9, R8
	MOVQ R8, nfull-48(SP)
	SHLQ $5, R9
	LEAQ mask4<>(SB), R8
	VMOVUPD (R8)(R9*1), Y0
	VMOVUPD Y0, tmask-32(SP)

	MOVQ ax_base+0(FP), R14
	MOVQ ax_len+8(FP), R9
	MOVQ ay_base+24(FP), R15
	MOVQ az_base+48(FP), AX
	MOVQ ch_base+72(FP), BX
	MOVQ rad_base+96(FP), CX
	MOVQ irad_base+120(FP), DX
	MOVQ vx_base+144(FP), SI
	MOVQ vy_base+168(FP), DI
	MOVQ vz_base+192(FP), R10
	MOVQ cv_base+216(FP), R11
	MOVQ rv_base+240(FP), R12
	MOVQ irv_base+264(FP), R13

	VXORPD X0, X0, X0
	VMOVSD X0, energy-40(SP)
	TESTQ R9, R9
	JZ edone

eouter:
	VBROADCASTSD (R14), Y12
	VBROADCASTSD (R15), Y13
	VBROADCASTSD (AX), Y14
	VBROADCASTSD (CX), Y11
	VBROADCASTSD (DX), Y10
	VMULPD f64x4NegQuarter<>(SB), Y10, Y10
	VXORPD Y15, Y15, Y15
	XORQ R8, R8

einner:
	CMPQ R8, nfull-48(SP)
	JGE etail

	VMOVUPD (SI)(R8*8), Y0
	VSUBPD Y0, Y12, Y0                  // dx = pux - vx
	VMOVUPD (DI)(R8*8), Y1
	VSUBPD Y1, Y13, Y1
	VMOVUPD (R10)(R8*8), Y2
	VSUBPD Y2, Y14, Y2
	VMULPD Y0, Y0, Y3
	VFMADD231PD Y1, Y1, Y3
	VFMADD231PD Y2, Y2, Y3              // r²
	VMOVUPD (R12)(R8*8), Y4
	VMULPD Y4, Y11, Y4                  // rr = ru·rv
	VMOVUPD (R13)(R8*8), Y5
	VMULPD Y5, Y10, Y5
	VMULPD Y3, Y5, Y5                   // arg = −r²/4rr
	VMAXPD f64x4Clamp<>(SB), Y5, Y5
	VMULPD f64x4InvLn2<>(SB), Y5, Y6
	VROUNDPD $0, Y6, Y6                 // k
	VMOVAPD Y5, Y7
	VFNMADD231PD f64x4Ln2<>(SB), Y6, Y7 // red = arg − k·ln2
	VMOVUPD f64x4C6<>(SB), Y8
	VFMADD213PD f64x4C5<>(SB), Y7, Y8
	VFMADD213PD f64x4C4<>(SB), Y7, Y8
	VFMADD213PD f64x4C3<>(SB), Y7, Y8
	VFMADD213PD f64x4Half<>(SB), Y7, Y8
	VFMADD213PD f64x4One<>(SB), Y7, Y8
	VFMADD213PD f64x4One<>(SB), Y7, Y8  // p = poly(red)
	VCVTTPD2DQY Y6, X6
	VPMOVSXDQ X6, Y6
	VPADDQ f64x4Bias<>(SB), Y6, Y6
	VPSLLQ $52, Y6, Y6                  // 2^k bits
	VMULPD Y6, Y8, Y8                   // e = p·2^k
	VFMADD231PD Y8, Y4, Y3              // f² = r² + rr·e
	VCVTPD2PSY Y3, X5
	VRSQRTPS X5, X5
	VCVTPS2PD X5, Y5                    // y ≈ 1/√f²
	VMULPD f64x4Half<>(SB), Y3, Y6      // h = f²/2
	VMULPD Y5, Y5, Y7
	VMOVUPD f64x4OneHalf<>(SB), Y8
	VFNMADD231PD Y7, Y6, Y8
	VMULPD Y8, Y5, Y5                   // Newton 1
	VMULPD Y5, Y5, Y7
	VMOVUPD f64x4OneHalf<>(SB), Y8
	VFNMADD231PD Y7, Y6, Y8
	VMULPD Y8, Y5, Y5                   // Newton 2
	VMOVUPD (R11)(R8*8), Y7
	VFMADD231PD Y5, Y7, Y15             // s += cv·y

	ADDQ $4, R8
	JMP einner

etail:
	CMPQ R8, vx_len+152(FP)
	JGE eusum
	VMOVUPD tmask-32(SP), Y9

	VMASKMOVPD (SI)(R8*8), Y9, Y0
	VSUBPD Y0, Y12, Y0
	VMASKMOVPD (DI)(R8*8), Y9, Y1
	VSUBPD Y1, Y13, Y1
	VMASKMOVPD (R10)(R8*8), Y9, Y2
	VSUBPD Y2, Y14, Y2
	VMULPD Y0, Y0, Y3
	VFMADD231PD Y1, Y1, Y3
	VFMADD231PD Y2, Y2, Y3
	VMASKMOVPD (R12)(R8*8), Y9, Y4
	VMULPD Y4, Y11, Y4
	VMASKMOVPD (R13)(R8*8), Y9, Y5
	VMULPD Y5, Y10, Y5
	VMULPD Y3, Y5, Y5
	VMAXPD f64x4Clamp<>(SB), Y5, Y5
	VMULPD f64x4InvLn2<>(SB), Y5, Y6
	VROUNDPD $0, Y6, Y6
	VMOVAPD Y5, Y7
	VFNMADD231PD f64x4Ln2<>(SB), Y6, Y7
	VMOVUPD f64x4C6<>(SB), Y8
	VFMADD213PD f64x4C5<>(SB), Y7, Y8
	VFMADD213PD f64x4C4<>(SB), Y7, Y8
	VFMADD213PD f64x4C3<>(SB), Y7, Y8
	VFMADD213PD f64x4Half<>(SB), Y7, Y8
	VFMADD213PD f64x4One<>(SB), Y7, Y8
	VFMADD213PD f64x4One<>(SB), Y7, Y8
	VCVTTPD2DQY Y6, X6
	VPMOVSXDQ X6, Y6
	VPADDQ f64x4Bias<>(SB), Y6, Y6
	VPSLLQ $52, Y6, Y6
	VMULPD Y6, Y8, Y8
	VFMADD231PD Y8, Y4, Y3
	VMOVUPD f64x4One<>(SB), Y8
	VBLENDVPD Y9, Y3, Y8, Y3            // masked-off lanes: f² := 1
	VCVTPD2PSY Y3, X5
	VRSQRTPS X5, X5
	VCVTPS2PD X5, Y5
	VMULPD f64x4Half<>(SB), Y3, Y6
	VMULPD Y5, Y5, Y7
	VMOVUPD f64x4OneHalf<>(SB), Y8
	VFNMADD231PD Y7, Y6, Y8
	VMULPD Y8, Y5, Y5
	VMULPD Y5, Y5, Y7
	VMOVUPD f64x4OneHalf<>(SB), Y8
	VFNMADD231PD Y7, Y6, Y8
	VMULPD Y8, Y5, Y5
	VMASKMOVPD (R11)(R8*8), Y9, Y7
	VFMADD231PD Y5, Y7, Y15

eusum:
	VEXTRACTF128 $1, Y15, X0
	VADDPD X0, X15, X0
	VHADDPD X0, X0, X0
	VMOVSD (BX), X1
	VMOVSD energy-40(SP), X2
	VFMADD231SD X1, X0, X2              // energy += ch[u]·s
	VMOVSD X2, energy-40(SP)

	ADDQ $8, R14
	ADDQ $8, R15
	ADDQ $8, AX
	ADDQ $8, BX
	ADDQ $8, CX
	ADDQ $8, DX
	DECQ R9
	JNZ eouter

edone:
	VMOVSD energy-40(SP), X0
	VMOVSD X0, ret+288(FP)
	VZEROUPPER
	RET

// func epolNearBlock8x32(ax, ay, az, ch, rad, vx, vy, vz, cv, rv []float32) float64
//
// Float32 epolNearBlock4 at width 8: the exponent divides (−r²/4)/rr
// outright (no reciprocal-radius table on the f32 mirror), 1/√ runs one
// Newton step, and each u-atom's lane sum converts to float64 before it
// joins the running energy — the tier's row-level f64 reduction.
//
// Registers — outer: R14=ax R15=ay AX=az BX=ch CX=rad, R9 = remaining
// u count; inner: SI=vx DI=vy R10=vz R11=cv R12=rv, R8 = j.
TEXT ·epolNearBlock8x32(SB), NOSPLIT, $48-248
	// nfull = n &^ 7; tmask = mask8[n&7]
	MOVQ vx_len+128(FP), R8
	MOVQ R8, R9
	ANDQ $7, R9
	SUBQ R9, R8
	MOVQ R8, nfull-48(SP)
	SHLQ $5, R9
	LEAQ mask8<>(SB), R8
	VMOVUPS (R8)(R9*1), Y0
	VMOVUPS Y0, tmask-32(SP)

	MOVQ ax_base+0(FP), R14
	MOVQ ax_len+8(FP), R9
	MOVQ ay_base+24(FP), R15
	MOVQ az_base+48(FP), AX
	MOVQ ch_base+72(FP), BX
	MOVQ rad_base+96(FP), CX
	MOVQ vx_base+120(FP), SI
	MOVQ vy_base+144(FP), DI
	MOVQ vz_base+168(FP), R10
	MOVQ cv_base+192(FP), R11
	MOVQ rv_base+216(FP), R12

	VXORPD X0, X0, X0
	VMOVSD X0, energy-40(SP)
	TESTQ R9, R9
	JZ fdone

fouter:
	VBROADCASTSS (R14), Y12
	VBROADCASTSS (R15), Y13
	VBROADCASTSS (AX), Y14
	VBROADCASTSS (CX), Y11
	VXORPS Y15, Y15, Y15
	XORQ R8, R8

finner:
	CMPQ R8, nfull-48(SP)
	JGE ftail

	VMOVUPS (SI)(R8*4), Y0
	VSUBPS Y0, Y12, Y0
	VMOVUPS (DI)(R8*4), Y1
	VSUBPS Y1, Y13, Y1
	VMOVUPS (R10)(R8*4), Y2
	VSUBPS Y2, Y14, Y2
	VMULPS Y0, Y0, Y3
	VFMADD231PS Y1, Y1, Y3
	VFMADD231PS Y2, Y2, Y3              // r²
	VMOVUPS (R12)(R8*4), Y4
	VMULPS Y4, Y11, Y4                  // rr
	VMULPS f32x8NegQuarter<>(SB), Y3, Y5
	VDIVPS Y4, Y5, Y5                   // arg = (−r²/4)/rr
	VMAXPS f32x8Clamp<>(SB), Y5, Y5
	VMULPS f32x8InvLn2<>(SB), Y5, Y6
	VROUNDPS $0, Y6, Y6
	VMOVAPS Y5, Y7
	VFNMADD231PS f32x8Ln2<>(SB), Y6, Y7
	VMOVUPS f32x8C5<>(SB), Y8
	VFMADD213PS f32x8C4<>(SB), Y7, Y8
	VFMADD213PS f32x8C3<>(SB), Y7, Y8
	VFMADD213PS f32x8Half<>(SB), Y7, Y8
	VFMADD213PS f32x8One<>(SB), Y7, Y8
	VFMADD213PS f32x8One<>(SB), Y7, Y8
	VCVTTPS2DQ Y6, Y6
	VPADDD f32x8Bias<>(SB), Y6, Y6
	VPSLLD $23, Y6, Y6
	VMULPS Y6, Y8, Y8                   // e
	VFMADD231PS Y8, Y4, Y3              // f²
	VRSQRTPS Y3, Y5
	VMULPS f32x8Half<>(SB), Y3, Y6
	VMULPS Y5, Y5, Y7
	VMOVUPS f32x8OneHalf<>(SB), Y8
	VFNMADD231PS Y7, Y6, Y8
	VMULPS Y8, Y5, Y5                   // Newton 1
	VMOVUPS (R11)(R8*4), Y7
	VFMADD231PS Y5, Y7, Y15

	ADDQ $8, R8
	JMP finner

ftail:
	CMPQ R8, vx_len+128(FP)
	JGE fusum
	VMOVUPS tmask-32(SP), Y9

	VMASKMOVPS (SI)(R8*4), Y9, Y0
	VSUBPS Y0, Y12, Y0
	VMASKMOVPS (DI)(R8*4), Y9, Y1
	VSUBPS Y1, Y13, Y1
	VMASKMOVPS (R10)(R8*4), Y9, Y2
	VSUBPS Y2, Y14, Y2
	VMULPS Y0, Y0, Y3
	VFMADD231PS Y1, Y1, Y3
	VFMADD231PS Y2, Y2, Y3
	VMASKMOVPS (R12)(R8*4), Y9, Y4
	VMULPS Y4, Y11, Y4
	VMULPS f32x8NegQuarter<>(SB), Y3, Y5
	VDIVPS Y4, Y5, Y5
	VMAXPS f32x8Clamp<>(SB), Y5, Y5
	VMULPS f32x8InvLn2<>(SB), Y5, Y6
	VROUNDPS $0, Y6, Y6
	VMOVAPS Y5, Y7
	VFNMADD231PS f32x8Ln2<>(SB), Y6, Y7
	VMOVUPS f32x8C5<>(SB), Y8
	VFMADD213PS f32x8C4<>(SB), Y7, Y8
	VFMADD213PS f32x8C3<>(SB), Y7, Y8
	VFMADD213PS f32x8Half<>(SB), Y7, Y8
	VFMADD213PS f32x8One<>(SB), Y7, Y8
	VFMADD213PS f32x8One<>(SB), Y7, Y8
	VCVTTPS2DQ Y6, Y6
	VPADDD f32x8Bias<>(SB), Y6, Y6
	VPSLLD $23, Y6, Y6
	VMULPS Y6, Y8, Y8
	VFMADD231PS Y8, Y4, Y3
	VMOVUPS f32x8One<>(SB), Y8
	VBLENDVPS Y9, Y3, Y8, Y3            // masked-off lanes: f² := 1
	VRSQRTPS Y3, Y5
	VMULPS f32x8Half<>(SB), Y3, Y6
	VMULPS Y5, Y5, Y7
	VMOVUPS f32x8OneHalf<>(SB), Y8
	VFNMADD231PS Y7, Y6, Y8
	VMULPS Y8, Y5, Y5
	VMASKMOVPS (R11)(R8*4), Y9, Y7
	VFMADD231PS Y5, Y7, Y15

fusum:
	VEXTRACTF128 $1, Y15, X0
	VADDPS X0, X15, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VCVTSS2SD X0, X0, X0
	VMOVSS (BX), X1
	VCVTSS2SD X1, X1, X1
	VMOVSD energy-40(SP), X2
	VFMADD231SD X1, X0, X2              // energy += f64(ch[u])·f64(s)
	VMOVSD X2, energy-40(SP)

	ADDQ $4, R14
	ADDQ $4, R15
	ADDQ $4, AX
	ADDQ $4, BX
	ADDQ $4, CX
	DECQ R9
	JNZ fouter

fdone:
	VMOVSD energy-40(SP), X0
	VMOVSD X0, ret+240(FP)
	VZEROUPPER
	RET

// func bornNearBlock4R6(ax, ay, az []float64, out []float64, qx, qy, qz, wx, wy, wz []float64)
//
// The R6 Born near sweep: for every atom a (first three slices),
// out[a] += Σ_j (w_j·d_j)/r²³ over the row's q-points, skipping r² = 0
// self terms via a compare mask. out aliases the caller's accumulator
// slice (one f64 read-modify-write per atom).
//
// Registers — outer: R14=ax R15=ay AX=az BX=out, R9 = remaining atom
// count; inner: SI=qx DI=qy R10=qz R11=wx R12=wy R13=wz, R8 = j.
// Y10 = 0 (compare operand), Y12/Y13/Y14 = atom position.
TEXT ·bornNearBlock4R6(SB), NOSPLIT, $48-240
	// nfull = n &^ 3; tmask = mask4[n&3]
	MOVQ qx_len+104(FP), R8
	MOVQ R8, R9
	ANDQ $3, R9
	SUBQ R9, R8
	MOVQ R8, nfull-48(SP)
	SHLQ $5, R9
	LEAQ mask4<>(SB), R8
	VMOVUPD (R8)(R9*1), Y0
	VMOVUPD Y0, tmask-32(SP)

	MOVQ ax_base+0(FP), R14
	MOVQ ax_len+8(FP), R9
	MOVQ ay_base+24(FP), R15
	MOVQ az_base+48(FP), AX
	MOVQ out_base+72(FP), BX
	MOVQ qx_base+96(FP), SI
	MOVQ qy_base+120(FP), DI
	MOVQ qz_base+144(FP), R10
	MOVQ wx_base+168(FP), R11
	MOVQ wy_base+192(FP), R12
	MOVQ wz_base+216(FP), R13

	VXORPD Y10, Y10, Y10
	TESTQ R9, R9
	JZ bdone

bouter:
	VBROADCASTSD (R14), Y12
	VBROADCASTSD (R15), Y13
	VBROADCASTSD (AX), Y14
	VXORPD Y15, Y15, Y15
	XORQ R8, R8

binner:
	CMPQ R8, nfull-48(SP)
	JGE btail

	VMOVUPD (SI)(R8*8), Y0
	VSUBPD Y12, Y0, Y0                  // dx = qx − pax
	VMOVUPD (DI)(R8*8), Y1
	VSUBPD Y13, Y1, Y1
	VMOVUPD (R10)(R8*8), Y2
	VSUBPD Y14, Y2, Y2
	VMULPD Y0, Y0, Y3
	VFMADD231PD Y1, Y1, Y3
	VFMADD231PD Y2, Y2, Y3              // r²
	VMOVUPD (R11)(R8*8), Y4
	VMULPD Y0, Y4, Y4
	VMOVUPD (R12)(R8*8), Y5
	VFMADD231PD Y1, Y5, Y4
	VMOVUPD (R13)(R8*8), Y5
	VFMADD231PD Y2, Y5, Y4              // w·d
	VMULPD Y3, Y3, Y5
	VMULPD Y3, Y5, Y5                   // r²³
	VDIVPD Y5, Y4, Y6                   // t = w·d / r²³
	VCMPPD $4, Y10, Y3, Y7              // r² ≠ 0
	VANDPD Y7, Y6, Y6
	VADDPD Y6, Y15, Y15

	ADDQ $4, R8
	JMP binner

btail:
	CMPQ R8, qx_len+104(FP)
	JGE busum
	VMOVUPD tmask-32(SP), Y9

	VMASKMOVPD (SI)(R8*8), Y9, Y0
	VSUBPD Y12, Y0, Y0
	VMASKMOVPD (DI)(R8*8), Y9, Y1
	VSUBPD Y13, Y1, Y1
	VMASKMOVPD (R10)(R8*8), Y9, Y2
	VSUBPD Y14, Y2, Y2
	VMULPD Y0, Y0, Y3
	VFMADD231PD Y1, Y1, Y3
	VFMADD231PD Y2, Y2, Y3
	VMASKMOVPD (R11)(R8*8), Y9, Y4
	VMULPD Y0, Y4, Y4
	VMASKMOVPD (R12)(R8*8), Y9, Y5
	VFMADD231PD Y1, Y5, Y4
	VMASKMOVPD (R13)(R8*8), Y9, Y5
	VFMADD231PD Y2, Y5, Y4
	VMULPD Y3, Y3, Y5
	VMULPD Y3, Y5, Y5
	VDIVPD Y5, Y4, Y6
	VCMPPD $4, Y10, Y3, Y7
	VANDPD Y9, Y7, Y7                   // drop masked-off lanes too
	VANDPD Y7, Y6, Y6
	VADDPD Y6, Y15, Y15

busum:
	VEXTRACTF128 $1, Y15, X0
	VADDPD X0, X15, X0
	VHADDPD X0, X0, X0
	VMOVSD (BX), X1
	VADDSD X0, X1, X1
	VMOVSD X1, (BX)

	ADDQ $8, R14
	ADDQ $8, R15
	ADDQ $8, AX
	ADDQ $8, BX
	DECQ R9
	JNZ bouter

bdone:
	VZEROUPPER
	RET

// func bornNearBlock8R6x32(ax, ay, az []float32, out []float64, qx, qy, qz, wx, wy, wz []float32)
//
// Float32 bornNearBlock4R6 at width 8. out stays float64 — each atom's
// f32 lane sum converts before accumulating (the tier's row reduction).
TEXT ·bornNearBlock8R6x32(SB), NOSPLIT, $48-240
	// nfull = n &^ 7; tmask = mask8[n&7]
	MOVQ qx_len+104(FP), R8
	MOVQ R8, R9
	ANDQ $7, R9
	SUBQ R9, R8
	MOVQ R8, nfull-48(SP)
	SHLQ $5, R9
	LEAQ mask8<>(SB), R8
	VMOVUPS (R8)(R9*1), Y0
	VMOVUPS Y0, tmask-32(SP)

	MOVQ ax_base+0(FP), R14
	MOVQ ax_len+8(FP), R9
	MOVQ ay_base+24(FP), R15
	MOVQ az_base+48(FP), AX
	MOVQ out_base+72(FP), BX
	MOVQ qx_base+96(FP), SI
	MOVQ qy_base+120(FP), DI
	MOVQ qz_base+144(FP), R10
	MOVQ wx_base+168(FP), R11
	MOVQ wy_base+192(FP), R12
	MOVQ wz_base+216(FP), R13

	VXORPS Y10, Y10, Y10
	TESTQ R9, R9
	JZ gdone

gouter:
	VBROADCASTSS (R14), Y12
	VBROADCASTSS (R15), Y13
	VBROADCASTSS (AX), Y14
	VXORPS Y15, Y15, Y15
	XORQ R8, R8

ginner:
	CMPQ R8, nfull-48(SP)
	JGE gtail

	VMOVUPS (SI)(R8*4), Y0
	VSUBPS Y12, Y0, Y0
	VMOVUPS (DI)(R8*4), Y1
	VSUBPS Y13, Y1, Y1
	VMOVUPS (R10)(R8*4), Y2
	VSUBPS Y14, Y2, Y2
	VMULPS Y0, Y0, Y3
	VFMADD231PS Y1, Y1, Y3
	VFMADD231PS Y2, Y2, Y3
	VMOVUPS (R11)(R8*4), Y4
	VMULPS Y0, Y4, Y4
	VMOVUPS (R12)(R8*4), Y5
	VFMADD231PS Y1, Y5, Y4
	VMOVUPS (R13)(R8*4), Y5
	VFMADD231PS Y2, Y5, Y4
	VMULPS Y3, Y3, Y5
	VMULPS Y3, Y5, Y5
	VDIVPS Y5, Y4, Y6
	VCMPPS $4, Y10, Y3, Y7
	VANDPS Y7, Y6, Y6
	VADDPS Y6, Y15, Y15

	ADDQ $8, R8
	JMP ginner

gtail:
	CMPQ R8, qx_len+104(FP)
	JGE gusum
	VMOVUPS tmask-32(SP), Y9

	VMASKMOVPS (SI)(R8*4), Y9, Y0
	VSUBPS Y12, Y0, Y0
	VMASKMOVPS (DI)(R8*4), Y9, Y1
	VSUBPS Y13, Y1, Y1
	VMASKMOVPS (R10)(R8*4), Y9, Y2
	VSUBPS Y14, Y2, Y2
	VMULPS Y0, Y0, Y3
	VFMADD231PS Y1, Y1, Y3
	VFMADD231PS Y2, Y2, Y3
	VMASKMOVPS (R11)(R8*4), Y9, Y4
	VMULPS Y0, Y4, Y4
	VMASKMOVPS (R12)(R8*4), Y9, Y5
	VFMADD231PS Y1, Y5, Y4
	VMASKMOVPS (R13)(R8*4), Y9, Y5
	VFMADD231PS Y2, Y5, Y4
	VMULPS Y3, Y3, Y5
	VMULPS Y3, Y5, Y5
	VDIVPS Y5, Y4, Y6
	VCMPPS $4, Y10, Y3, Y7
	VANDPS Y9, Y7, Y7
	VANDPS Y7, Y6, Y6
	VADDPS Y6, Y15, Y15

gusum:
	VEXTRACTF128 $1, Y15, X0
	VADDPS X0, X15, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VCVTSS2SD X0, X0, X0
	VMOVSD (BX), X1
	VADDSD X0, X1, X1
	VMOVSD X1, (BX)

	ADDQ $4, R14
	ADDQ $4, R15
	ADDQ $4, AX
	ADDQ $8, BX
	DECQ R9
	JNZ gouter

gdone:
	VZEROUPPER
	RET
