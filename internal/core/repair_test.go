package core

import (
	"math"
	"math/rand"
	"testing"

	"gbpolar/internal/geom"
	"gbpolar/internal/obs"
	"gbpolar/internal/octree"
)

func mortonParams() Params {
	p := DefaultParams()
	p.Builder = octree.BuilderMorton
	return p
}

func jigglePositions(rng *rand.Rand, pos []geom.Vec3, sigma float64) []geom.Vec3 {
	out := make([]geom.Vec3, len(pos))
	for i, p := range pos {
		out[i] = p.Add(geom.V(
			rng.NormFloat64()*sigma, rng.NormFloat64()*sigma, rng.NormFloat64()*sigma))
	}
	return out
}

// TestUpdateAtomsRepairExact: after a repair, the cached lists must be
// byte-for-byte what a fresh compile over the moved geometry produces
// (RecheckLists diffs every row's far/near/sym entries in order), and
// the repaired system's energy must match a from-scratch system on the
// same positions to full approximation accuracy.
func TestUpdateAtomsRepairExact(t *testing.T) {
	sys, mol, surf := testSystem(t, 500, 211, mortonParams())
	sys.Lists(nil) // compile the cache the repair will patch
	rng := rand.New(rand.NewSource(212))
	newPos := jigglePositions(rng, mol.Positions(), 0.05)

	o := obs.New()
	stats, err := sys.UpdateAtomsRepair(newPos, nil, o)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rebuilt {
		t.Fatal("small jiggle triggered a rebuild")
	}
	if !stats.Repaired {
		t.Fatal("small jiggle did not repair the lists")
	}
	if stats.RowsRepaired > stats.RowsTotal {
		t.Fatalf("repaired %d of %d rows", stats.RowsRepaired, stats.RowsTotal)
	}
	if o.Counter("ilist.rows.repaired").Value() != int64(stats.RowsRepaired) {
		t.Error("ilist.rows.repaired counter disagrees with stats")
	}
	if o.Counter("octree.keys.moved").Value() != int64(stats.Moved) {
		t.Error("octree.keys.moved counter disagrees with stats")
	}
	if err := sys.Atoms.Validate(); err != nil {
		t.Fatal(err)
	}
	// The hard guarantee: repaired lists == fresh compile, exactly.
	if err := sys.RecheckLists(nil); err != nil {
		t.Fatalf("repaired lists diverge from a fresh compile: %v", err)
	}

	got, err := RunShared(sys, SharedOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Same tree, recompiled-from-scratch lists: identical lists ⇒
	// identical arithmetic, so the energy must match to summation-order
	// noise.
	sys.InvalidateLists()
	recompiled, err := RunShared(sys, SharedOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if relErr(got.Epol, recompiled.Epol) > 1e-12 {
		t.Errorf("repaired energy %v vs recompiled %v", got.Epol, recompiled.Epol)
	}
	// A from-scratch SYSTEM partitions cells differently (the update
	// preserves old leaf boundaries), so both are ε-valid answers that
	// agree only to well within the approximation band.
	movedMol := mol.Clone()
	for i := range movedMol.Atoms {
		movedMol.Atoms[i].Pos = newPos[i]
	}
	fresh, err := NewSystem(movedMol, surf, mortonParams())
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunShared(fresh, SharedOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if relErr(got.Epol, want.Epol) > 0.02 {
		t.Errorf("repaired energy %v vs fresh-system %v", got.Epol, want.Epol)
	}
}

// TestUpdateAtomsRepairRepeated walks a trajectory of repairs and
// rechecks exactness at every step — in particular this exercises the
// margin-decay path, where a row stays clean across several steps on a
// decayed (lower-bound) margin before finally recomputing.
func TestUpdateAtomsRepairRepeated(t *testing.T) {
	sys, mol, _ := testSystem(t, 400, 213, mortonParams())
	sys.Lists(nil)
	rng := rand.New(rand.NewSource(214))
	pos := mol.Positions()
	repairs := 0
	for step := 0; step < 8; step++ {
		pos = jigglePositions(rng, pos, 0.02)
		stats, err := sys.UpdateAtomsRepair(pos, nil, nil)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if stats.Repaired {
			repairs++
			if err := sys.RecheckLists(nil); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
		res, err := RunShared(sys, SharedOptions{Threads: 2})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if res.Epol >= 0 || math.IsNaN(res.Epol) {
			t.Fatalf("step %d: energy %v", step, res.Epol)
		}
	}
	if repairs == 0 {
		t.Fatal("no step repaired the lists; test exercised nothing")
	}
}

// TestUpdateAtomsRepairSavesWork: for a small jiggle most rows must ride
// on their certificates — if the repair recomputes nearly everything the
// margins or the dirtiness propagation are broken (too conservative).
func TestUpdateAtomsRepairSavesWork(t *testing.T) {
	sys, mol, _ := testSystem(t, 600, 215, mortonParams())
	sys.Lists(nil)
	rng := rand.New(rand.NewSource(216))
	stats, err := sys.UpdateAtomsRepair(jigglePositions(rng, mol.Positions(), 0.01), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Repaired {
		t.Fatal("not repaired")
	}
	if stats.RowsRepaired*2 > stats.RowsTotal {
		t.Errorf("repair recomputed %d of %d rows for a 0.01 sigma jiggle",
			stats.RowsRepaired, stats.RowsTotal)
	}
}

// TestUpdateAtomsRepairFallbacks: the repair degrades to plain
// UpdateAtoms semantics whenever its preconditions fail — recursive
// (keyless) trees, no cached lists, or structural leaf changes — and
// meters the fallback.
func TestUpdateAtomsRepairFallbacks(t *testing.T) {
	// Recursive builder: no keys, tracked update rebuilds.
	sys, mol, _ := testSystem(t, 200, 217, DefaultParams())
	sys.Lists(nil)
	rng := rand.New(rand.NewSource(218))
	o := obs.New()
	stats, err := sys.UpdateAtomsRepair(jigglePositions(rng, mol.Positions(), 0.05), nil, o)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Rebuilt || stats.Repaired {
		t.Errorf("recursive tree: Rebuilt=%v Repaired=%v, want rebuild fallback", stats.Rebuilt, stats.Repaired)
	}
	if o.Counter("ilist.repair.fallbacks").Value() != 1 {
		t.Error("fallback not metered")
	}
	if res, err := RunShared(sys, SharedOptions{Threads: 2}); err != nil || res.Epol >= 0 {
		t.Fatalf("post-fallback run: %v %v", res.Epol, err)
	}

	// No cached lists: nothing to repair, but the update itself works.
	sys2, mol2, _ := testSystem(t, 200, 219, mortonParams())
	stats, err = sys2.UpdateAtomsRepair(jigglePositions(rng, mol2.Positions(), 0.05), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Repaired {
		t.Error("repair claimed with no cached lists")
	}

	// A violent move changes the leaf set (or escapes the cube): lists
	// must be invalidated, and the next evaluation still agrees with a
	// fresh system.
	sys3, mol3, _ := testSystem(t, 200, 221, mortonParams())
	sys3.Lists(nil)
	big := jigglePositions(rng, mol3.Positions(), 5.0)
	stats, err = sys3.UpdateAtomsRepair(big, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Repaired {
		if err := sys3.RecheckLists(nil); err != nil {
			t.Fatalf("big-move repair diverged: %v", err)
		}
	}
	if err := sys3.Atoms.Validate(); err != nil {
		t.Fatal(err)
	}

	// Length mismatch is rejected before anything mutates.
	if _, err := sys3.UpdateAtomsRepair(make([]geom.Vec3, 3), nil, nil); err == nil {
		t.Error("length mismatch accepted")
	}
}
