package core

import "gbpolar/internal/mathx"

// The float32 precision tier (PrecisionF32): pair kernels evaluated in
// float32 over the lane-padded f32SoA mirror (system32.go), with
// float64 row-level reduction — lane/block partial sums stay float32,
// every per-atom, per-node and per-row accumulator is float64, so the
// float32 rounding of one block never contaminates another row.
//
// Unlike the laned tier this one makes no bitwise claims; its contract
// is the measured error budget (≤1e-4 relative on total E_pol and on
// every Born radius versus the exact tier, TestF32TierErrorBudget).
// That freedom buys the block sums four independent accumulators (the
// add chains of a strict-order sum would serialize) and the cheaper f32
// operations themselves: RSqrt32 converges in two Newton steps instead
// of three, Exp32's polynomial is a degree shorter, and f32 divides
// retire in roughly half the cycles of f64 ones.
//
// Op accounting matches the float64 rows entry for entry.

// bornRowF32 is bornRow with float32 arithmetic: far pseudo-q-point
// terms and near per-atom sums both evaluate in f32 and land in the
// float64 accumulator fields.
func bornRowF32(sys *System, il *InteractionLists, row int, acc *bornAccum) {
	f := sys.f32()
	leaf := il.Rows[row]
	q := &sys.QPts.Nodes[leaf]
	wn := sys.QNodeWN[leaf]
	qcx := float32(q.Center.X)
	qcy := float32(q.Center.Y)
	qcz := float32(q.Center.Z)
	wnx, wny, wnz := float32(wn.X), float32(wn.Y), float32(wn.Z)
	r4 := sys.Params.Kernel == R4

	far := il.Far[il.FarOff[row]:il.FarOff[row+1]]
	if il.FarOrd == nil {
		for _, a := range far {
			dx := qcx - f.aNodeX[a]
			dy := qcy - f.aNodeY[a]
			dz := qcz - f.aNodeZ[a]
			d2 := dx*dx + dy*dy + dz*dz
			den := d2 * d2
			if !r4 {
				den *= d2
			}
			acc.node[a] += float64((wnx*dx + wny*dy + wnz*dz) / den)
		}
	} else {
		// The f32 pseudo-q-point term stays in float32; the moment
		// corrections are evaluated in float64 from the widened f32 center
		// offsets (their magnitude is a small fraction of the order-0 term,
		// so f32 rounding of d costs nothing against the tier's 1e-4
		// budget, while the f64 tensor algebra avoids a second kernel).
		ord := sys.Params.FarOrder
		fm := bornRowMoments(sys.QPts.MomentsOf(momentSetWN), leaf)
		for _, a := range far {
			dx := qcx - f.aNodeX[a]
			dy := qcy - f.aNodeY[a]
			dz := qcz - f.aNodeZ[a]
			d2 := dx*dx + dy*dy + dz*dz
			den := d2 * d2
			if !r4 {
				den *= d2
			}
			acc.node[a] += float64((wnx*dx + wny*dy + wnz*dz) / den)
			ds, dg, dh := bornFarCorrection(&fm, float64(dx), float64(dy), float64(dz), float64(d2), r4, ord)
			acc.node[a] += ds
			acc.grad[a] = acc.grad[a].Add(dg)
			acc.hess[a] = acc.hess[a].Add(dh)
		}
	}
	acc.ops += float64(len(far))

	qlo, qhi := q.Start, q.End
	qx, qy, qz := f.qX[qlo:qhi], f.qY[qlo:qhi], f.qZ[qlo:qhi]
	wx, wy, wz := f.wnX[qlo:qhi], f.wnY[qlo:qhi], f.wnZ[qlo:qhi]
	// Equal-length hints so the inner loops run bounds-check free.
	qy, qz = qy[:len(qx)], qz[:len(qx)]
	wx, wy, wz = wx[:len(qx)], wy[:len(qx)], wz[:len(qx)]
	n := len(qx)
	nb := n &^ (mathx.LaneWidth - 1)
	near := il.Near[il.NearOff[row]:il.NearOff[row+1]]
	asmR6 := useAsmKernels && !r4
	for _, al := range near {
		an := &sys.Atoms.Nodes[al]
		if asmR6 {
			bornNearBlockAsmR6x32(f, an.Start, an.End, acc.atom, qx, qy, qz, wx, wy, wz)
			acc.ops += float64(an.Count()*q.Count()) + 1
			continue
		}
		for ai := an.Start; ai < an.End; ai++ {
			pax, pay, paz := f.atomX[ai], f.atomY[ai], f.atomZ[ai]
			var sl [mathx.LaneWidth]float32
			if r4 {
				for j := 0; j < nb; j += mathx.LaneWidth {
					for l := 0; l < mathx.LaneWidth; l++ {
						dx, dy, dz := qx[j+l]-pax, qy[j+l]-pay, qz[j+l]-paz
						r2 := dx*dx + dy*dy + dz*dz
						if r2 == 0 {
							continue
						}
						sl[l] += (wx[j+l]*dx + wy[j+l]*dy + wz[j+l]*dz) / (r2 * r2)
					}
				}
				for j := nb; j < n; j++ {
					dx, dy, dz := qx[j]-pax, qy[j]-pay, qz[j]-paz
					r2 := dx*dx + dy*dy + dz*dz
					if r2 == 0 {
						continue
					}
					sl[0] += (wx[j]*dx + wy[j]*dy + wz[j]*dz) / (r2 * r2)
				}
			} else {
				for j := 0; j < nb; j += mathx.LaneWidth {
					for l := 0; l < mathx.LaneWidth; l++ {
						dx, dy, dz := qx[j+l]-pax, qy[j+l]-pay, qz[j+l]-paz
						r2 := dx*dx + dy*dy + dz*dz
						if r2 == 0 {
							continue
						}
						sl[l] += (wx[j+l]*dx + wy[j+l]*dy + wz[j+l]*dz) / (r2 * r2 * r2)
					}
				}
				for j := nb; j < n; j++ {
					dx, dy, dz := qx[j]-pax, qy[j]-pay, qz[j]-paz
					r2 := dx*dx + dy*dy + dz*dz
					if r2 == 0 {
						continue
					}
					sl[0] += (wx[j]*dx + wy[j]*dy + wz[j]*dz) / (r2 * r2 * r2)
				}
			}
			acc.atom[ai] += float64((sl[0] + sl[1]) + (sl[2] + sl[3]))
		}
		acc.ops += float64(an.Count()*q.Count()) + 1
	}
}

// epolRowF32 is epolRow for the f32 tier.
func epolRowF32(ctx *EpolContext, il *InteractionLists, row int, conv []float64, acc *epolAccum) {
	sys := ctx.sys
	f := sys.f32()
	t := sys.Atoms
	leaf := il.Rows[row]
	v := &t.Nodes[leaf]

	vlo, vhi := v.Start, v.End
	vx, vy, vz := f.atomX[vlo:vhi], f.atomY[vlo:vhi], f.atomZ[vlo:vhi]
	cv := f.charge[vlo:vhi]
	rv := ctx.radii32[vlo:vhi]

	near := il.Near[il.NearOff[row]:il.NearOff[row+1]]
	for _, ul := range near {
		if useAsmKernels {
			epolNearBlockF32Asm(ctx, f, sys, ul, vx, vy, vz, cv, rv, 1, acc)
		} else {
			epolNearBlockF32(ctx, f, sys, ul, vx, vy, vz, cv, rv, 1, acc)
		}
		acc.ops += float64(t.Nodes[ul].Count()*v.Count()) + 1
	}
	sym := il.Sym[il.SymOff[row]:il.SymOff[row+1]]
	for _, ul := range sym {
		if useAsmKernels {
			epolNearBlockF32Asm(ctx, f, sys, ul, vx, vy, vz, cv, rv, 2, acc)
		} else {
			epolNearBlockF32(ctx, f, sys, ul, vx, vy, vz, cv, rv, 2, acc)
		}
		acc.ops += float64(2*t.Nodes[ul].Count()*v.Count()) + 1
	}

	far := il.Far[il.FarOff[row]:il.FarOff[row+1]]
	if len(far) == 0 {
		return
	}
	farFieldF32(ctx, f, leaf, far, farOrdRow(il, row), conv, acc)
}

// epolNearBlockF32 sweeps one near block in float32 width-4 lanes with
// four independent partial sums per u-atom, reduced to float64 once per
// u-atom (the row-level reduction of the tier's contract).
func epolNearBlockF32(ctx *EpolContext, f *f32SoA, sys *System, ul int32, vx, vy, vz, cv, rv []float32, w float64, acc *epolAccum) {
	// Equal-length hints so the inner loops run bounds-check free.
	vy, vz = vy[:len(vx)], vz[:len(vx)]
	cv, rv = cv[:len(vx)], rv[:len(vx)]
	n := len(vx)
	nb := n &^ (mathx.LaneWidth - 1)
	u := &sys.Atoms.Nodes[ul]
	for ui := u.Start; ui < u.End; ui++ {
		pux, puy, puz := f.atomX[ui], f.atomY[ui], f.atomZ[ui]
		qu := w * float64(f.charge[ui])
		ru := ctx.radii32[ui]
		var s0, s1, s2, s3 float32
		var r2l, rrl, fl [mathx.LaneWidth]float32
		for j := 0; j < nb; j += mathx.LaneWidth {
			for l := 0; l < mathx.LaneWidth; l++ {
				dx, dy, dz := pux-vx[j+l], puy-vy[j+l], puz-vz[j+l]
				r2 := dx*dx + dy*dy + dz*dz
				rr := ru * rv[j+l]
				r2l[l], rrl[l] = r2, rr
				fl[l] = -r2 / (4 * rr)
			}
			mathx.ExpLanes4x32(&fl)
			for l := 0; l < mathx.LaneWidth; l++ {
				fl[l] = r2l[l] + rrl[l]*fl[l]
			}
			mathx.RSqrtLanes4x32(&fl)
			s0 += cv[j] * fl[0]
			s1 += cv[j+1] * fl[1]
			s2 += cv[j+2] * fl[2]
			s3 += cv[j+3] * fl[3]
		}
		s := (s0 + s1) + (s2 + s3)
		for j := nb; j < n; j++ {
			dx, dy, dz := pux-vx[j], puy-vy[j], puz-vz[j]
			r2 := dx*dx + dy*dy + dz*dz
			rr := ru * rv[j]
			f2 := r2 + rr*mathx.Exp32(-r2/(4*rr))
			s += cv[j] * mathx.RSqrt32(f2)
		}
		acc.energy += qu * float64(s)
	}
}

// farFieldF32 keeps the histogram convolution in float64 (the charges
// and conv scratch are shared with the other tiers) and evaluates the
// per-occupied-k transcendental kernel in float32, streamed through
// width-4 lanes like farFieldLanes. The moment corrections (fo,
// farorder.go) evaluate in float64 from the widened f32 center offsets —
// well inside the tier's 1e-4 budget.
func farFieldF32(ctx *EpolContext, f *f32SoA, leaf int32, far []int32, fo []uint8, conv []float64, acc *epolAccum) {
	vcx, vcy, vcz := f.aNodeX[leaf], f.aNodeY[leaf], f.aNodeZ[leaf]
	vb := ctx.nzBin[ctx.nzOff[leaf]:ctx.nzOff[leaf+1]]
	vq := ctx.nzQ[ctx.nzOff[leaf]:ctx.nzOff[leaf+1]]
	if len(vb) == 0 {
		farFieldMomentsOnly(ctx, ctx.sys, leaf, far, fo, acc)
		acc.ops += float64(len(far))
		return
	}
	ord := 0
	if fo != nil {
		ord = ctx.farOrd
	}
	for _, un := range far {
		dx := f.aNodeX[un] - vcx
		dy := f.aNodeY[un] - vcy
		dz := f.aNodeZ[un] - vcz
		d2 := dx*dx + dy*dy + dz*dz
		if ord > 0 {
			acc.energy += ctx.epolFarCorrection(un, leaf, float64(dx), float64(dy), float64(dz), float64(d2), ord)
		}
		ub := ctx.nzBin[ctx.nzOff[un]:ctx.nzOff[un+1]]
		uq := ctx.nzQ[ctx.nzOff[un]:ctx.nzOff[un+1]]
		if len(ub) == 0 {
			acc.ops++
			continue
		}
		klo := ub[0] + vb[0]
		khi := ub[len(ub)-1] + vb[len(vb)-1]
		for i := range ub {
			qi, bi := uq[i], ub[i]
			for j := range vb {
				conv[bi+vb[j]] += qi * vq[j]
			}
		}
		var s float64
		var wl [mathx.LaneWidth]float64
		var rrl, fl [mathx.LaneWidth]float32
		nl := 0
		for k := klo; k <= khi; k++ {
			w := conv[k]
			if w == 0 {
				continue
			}
			rr := ctx.rr32[k]
			wl[nl], rrl[nl] = w, rr
			fl[nl] = -d2 / (4 * rr)
			nl++
			if nl < mathx.LaneWidth {
				continue
			}
			nl = 0
			mathx.ExpLanes4x32(&fl)
			for l := 0; l < mathx.LaneWidth; l++ {
				fl[l] = d2 + rrl[l]*fl[l]
			}
			mathx.RSqrtLanes4x32(&fl)
			s += wl[0] * float64(fl[0])
			s += wl[1] * float64(fl[1])
			s += wl[2] * float64(fl[2])
			s += wl[3] * float64(fl[3])
		}
		for l := 0; l < nl; l++ {
			f2 := d2 + rrl[l]*mathx.Exp32(fl[l])
			s += wl[l] * float64(mathx.RSqrt32(f2))
		}
		for k := klo; k <= khi; k++ {
			conv[k] = 0
		}
		acc.energy += s
		acc.ops += float64(len(ub)*len(vb)) + 1
	}
}
