package core

import (
	"fmt"
	"time"

	"gbpolar/internal/cluster"
	"gbpolar/internal/obs"
	"gbpolar/internal/sched"
)

// Result is the outcome of one energy computation.
type Result struct {
	// Epol is the polarization energy in kcal/mol.
	Epol float64
	// BornRadii holds effective Born radii in the molecule's original
	// atom order.
	BornRadii []float64
	// WallSeconds is the measured wall-clock time of the energy phases
	// (octree construction excluded, as in the paper).
	WallSeconds float64
	// ModelSeconds is the modeled parallel time: per-phase critical-path
	// work at the calibrated kernel rate, plus (for distributed runs)
	// the communication cost model. See cluster.Mode.
	ModelSeconds float64
	// Ops is the total kernel-operation count across all ranks/workers.
	Ops float64
	// Report carries the cluster accounting for distributed runs (nil
	// for shared-memory runs).
	Report *cluster.Report
}

// Seconds returns the authoritative runtime: modeled time when available
// (it is comparable across configurations regardless of the host),
// otherwise wall time.
func (r *Result) Seconds() float64 {
	if r.ModelSeconds > 0 {
		return r.ModelSeconds
	}
	return r.WallSeconds
}

// SharedOptions configures the OCT_CILK runner.
type SharedOptions struct {
	// Threads is the worker count (p); 0 = GOMAXPROCS.
	Threads int
	// OpsPerSecond calibrates ModelSeconds; 0 uses the package-level
	// calibration.
	OpsPerSecond float64
	// Pool optionally reuses an existing pool (must have Threads
	// workers); the runner then does not close it.
	Pool *sched.Pool
	// Recursive forces the reference recursive traversals instead of the
	// compiled interaction lists + SoA batch kernels (ilist.go,
	// kernels.go). The recursive path re-runs the near–far decomposition
	// from the root on every call; it is kept as the cross-check
	// reference and for the ablation benchmarks.
	Recursive bool
	// Obs, when non-nil, receives per-phase spans (build, born, push,
	// epol — virtual timestamps follow the modeled clock), interaction-
	// list metrics and the pool's steal count. The hot SoA loops carry no
	// instrumentation either way; nil costs one branch per phase.
	Obs *obs.Obs
}

// RunShared computes Born radii and E_pol with pure shared-memory
// parallelism — the paper's OCT_CILK configuration: work-stealing over
// q-point leaves (Born phase) and atom leaves (energy phase).
func RunShared(sys *System, opts SharedOptions) (*Result, error) {
	pool := opts.Pool
	if pool == nil {
		pool = sched.NewPool(opts.Threads)
		defer pool.Close()
	}
	rate := opts.OpsPerSecond
	if rate <= 0 {
		rate = CalibratedOpsPerSecond()
	}
	p := pool.NumWorkers()
	o := opts.Obs
	steals0 := pool.Steals()
	var lists *CompiledLists
	if !opts.Recursive {
		bsp := o.Begin(0, "phase", "build", obs.NoVirtual)
		lists = sys.Lists(pool)
		bsp.End(obs.NoVirtual)
		lists.RecordMetrics(o)
		if sys.Params.DebugCheckLists {
			if err := sys.RecheckLists(pool); err != nil {
				return nil, err
			}
		}
	}
	start := time.Now()

	// Phase 1 (Figure 4 step 2): APPROX-INTEGRALS over all q-point
	// leaves, per-worker private accumulators. The compiled path sweeps
	// the precomputed lists with the SoA batch kernel; the reference path
	// re-runs the recursive traversal. Phase spans use the running
	// modeled time as their virtual clock so the timeline's virtual axis
	// matches ModelSeconds.
	sp := o.Begin(0, "phase", "born", 0)
	accs := make([]*bornAccum, p)
	for i := range accs {
		accs[i] = newBornAccum(sys)
	}
	macs := sys.bornMACs()
	qLeaves := sys.QPts.Leaves()
	if lists != nil {
		il := lists.Born
		sched.ParallelFor(pool, len(il.Rows), rowGrain(len(il.Rows), p), func(lo, hi, w int) {
			for i := lo; i < hi; i++ {
				before := accs[w].ops
				bornRow(sys, il, i, accs[w])
				if d := accs[w].ops - before; d > accs[w].maxTask {
					accs[w].maxTask = d
				}
			}
		})
	} else {
		sched.ParallelFor(pool, len(qLeaves), 1, func(lo, hi, w int) {
			for i := lo; i < hi; i++ {
				before := accs[w].ops
				ApproxIntegrals(sys, accs[w], sys.Atoms.Root(), qLeaves[i], &macs)
				if d := accs[w].ops - before; d > accs[w].maxTask {
					accs[w].maxTask = d
				}
			}
		})
	}
	merged := accs[0]
	for _, a := range accs[1:] {
		merged.add(a)
	}
	model := modelPhaseOps(merged.ops, maxOps(accs), merged.maxTask, p) / rate
	sp.End(model, obs.F("ops", merged.ops))
	if lists != nil {
		o.Counter("kernel.born.batches").Add(int64(len(lists.Born.Rows)))
	}

	// Phase 2 (step 4): push integrals down and invert to Born radii.
	sp = o.Begin(0, "phase", "push", model)
	slotRadii := make([]float64, sys.Mol.NumAtoms())
	pushOps := PushIntegralsToAtoms(sys, merged, 0, len(slotRadii), slotRadii)
	model += pushOps / (rate * float64(p))
	sp.End(model, obs.F("ops", pushOps))

	// Phase 3 (step 6): APPROX-EPOL over all atom leaves.
	sp = o.Begin(0, "phase", "epol", model)
	ctx := NewEpolContext(sys, slotRadii)
	eaccs := make([]epolAccum, p)
	aLeaves := sys.Atoms.Leaves()
	if lists != nil {
		il := lists.Epol
		conv := newConvScratch(ctx, p)
		sched.ParallelFor(pool, len(il.Rows), rowGrain(len(il.Rows), p), func(lo, hi, w int) {
			for i := lo; i < hi; i++ {
				before := eaccs[w].ops
				epolRow(ctx, il, i, conv[w], &eaccs[w])
				if d := eaccs[w].ops - before; d > eaccs[w].maxTask {
					eaccs[w].maxTask = d
				}
			}
		})
	} else {
		sched.ParallelFor(pool, len(aLeaves), 1, func(lo, hi, w int) {
			for i := lo; i < hi; i++ {
				before := eaccs[w].ops
				ApproxEpol(ctx, sys.Atoms.Root(), aLeaves[i], &eaccs[w])
				if d := eaccs[w].ops - before; d > eaccs[w].maxTask {
					eaccs[w].maxTask = d
				}
			}
		})
	}
	var raw, maxE, maxTask, totalOps float64
	for i := range eaccs {
		raw += eaccs[i].energy
		if eaccs[i].ops > maxE {
			maxE = eaccs[i].ops
		}
		if eaccs[i].maxTask > maxTask {
			maxTask = eaccs[i].maxTask
		}
		totalOps += eaccs[i].ops
	}
	model += modelPhaseOps(totalOps, maxE, maxTask, p) / rate
	sp.End(model, obs.F("ops", totalOps))
	if lists != nil {
		o.Counter("kernel.epol.batches").Add(int64(len(lists.Epol.Rows)))
	}
	o.Counter("sched.steals").Add(pool.Steals() - steals0)
	totalOps += merged.ops + pushOps

	return &Result{
		Epol:         ctx.Finish(raw),
		BornRadii:    sys.BornRadiiToOriginalOrder(slotRadii),
		WallSeconds:  time.Since(start).Seconds(),
		ModelSeconds: model,
		Ops:          totalOps,
	}, nil
}

// newConvScratch allocates each worker's far-field convolution buffer
// (see farField): one flat backing array, len(ctx.rr) per worker.
func newConvScratch(ctx *EpolContext, p int) [][]float64 {
	n := len(ctx.rr)
	flat := make([]float64, n*p)
	conv := make([][]float64, p)
	for w := range conv {
		conv[w] = flat[w*n : (w+1)*n]
	}
	return conv
}

// rowGrain chunks compiled-list rows for ParallelFor: post-compilation
// rows are cheap, so scheduling them one-by-one (the grain the recursive
// traversal needs for its skewed per-leaf costs) would spend more time
// spawning tasks than evaluating kernels. ~16 chunks per worker keeps
// stealing effective while bounding scheduler overhead and allocations.
func rowGrain(rows, p int) int {
	return rows/(16*p) + 1
}

func maxOps(accs []*bornAccum) float64 {
	var m float64
	for _, a := range accs {
		if a.ops > m {
			m = a.ops
		}
	}
	return m
}

// modelPhaseOps returns the modeled critical-path op count of one phase
// executed by p work-stealing workers: the smaller of the observed
// per-worker maximum (a faithful trace when the host truly ran the
// workers in parallel) and the Brent bound W/p + span (faithful when the
// host undersubscribes the workers — e.g. replaying a 144-core
// configuration on a small machine, where the scheduler can pile the
// whole deque onto one worker). The cilk++ work-stealing guarantee is
// T_p ≤ W/p + O(span), so the bound is the right model for the runtime
// the paper uses.
func modelPhaseOps(total, maxWorker, maxTask float64, p int) float64 {
	brent := total/float64(p) + maxTask
	if maxWorker < brent {
		return maxWorker
	}
	return brent
}

// segment returns the half-open [lo,hi) range of the i-th of p equal
// segments of n items — the paper's EXPLICIT STATIC LOAD BALANCING.
func segment(n, p, i int) (int, int) {
	lo := n * i / p
	hi := n * (i + 1) / p
	return lo, hi
}

// RunDistributed executes Figure 4's distributed/distributed-shared
// algorithm: node-based static division of q-point leaves (step 2),
// MPI_Allreduce of partial integrals (step 3), atom-segment Born radii
// (step 4), Allgatherv of radii (step 5), node-based division of atom
// leaves for energy (step 6) and a final reduction (step 7).
//
// cfg.Procs is P; cfg.ThreadsPerProc is p. p = 1 is the paper's OCT_MPI,
// p > 1 is OCT_MPI+CILK. The System is shared read-only across ranks
// in-process, but each rank TRACKS the full replicated footprint, so the
// report reproduces the paper's Section V.B memory accounting.
func RunDistributed(sys *System, cfg cluster.Config) (*Result, error) {
	if cfg.OpsPerSecond <= 0 {
		cfg.OpsPerSecond = CalibratedOpsPerSecond()
	}
	outs := make([]rankOut, cfg.Procs)
	start := time.Now()
	rep, err := cluster.Run(cfg, func(c *Comm) error {
		return distRank(sys, c, &outs[c.Rank()])
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Epol:         outs[0].epol,
		BornRadii:    sys.BornRadiiToOriginalOrder(outs[0].radii),
		WallSeconds:  time.Since(start).Seconds(),
		ModelSeconds: rep.VirtualSeconds,
		Report:       rep,
	}
	for i := range outs {
		res.Ops += outs[i].ops
	}
	// Sanity: every rank must agree on the reduced energy.
	for r := 1; r < len(outs); r++ {
		if outs[r].epol != outs[0].epol {
			return nil, fmt.Errorf("core: rank %d energy %v disagrees with rank 0's %v",
				r, outs[r].epol, outs[0].epol)
		}
	}
	return res, nil
}

// rankOut carries one rank's results back from the SPMD body. ok marks
// outputs from ranks that finished the whole protocol — the resilient
// runner takes its result from the first such rank, since a fault plan
// may have killed rank 0.
type rankOut struct {
	epol  float64
	radii []float64
	ops   float64
	ok    bool
}

// Comm aliases cluster.Comm for the rank function signature.
type Comm = cluster.Comm

// distRank is the per-rank body of Figure 4.
func distRank(sys *System, c *Comm, out *rankOut) error {
	P, rank := c.Size(), c.Rank()
	p := c.Threads()
	pool := sched.NewPool(p)
	defer pool.Close()

	// Step 1: every rank holds the full octrees (replicated data).
	c.TrackMemory(sys.MemoryBytes())

	// Steps 2-5 (shared with the dynamic runner).
	slotRadii, err := bornPhase(sys, c, pool, out)
	if err != nil {
		return err
	}

	// Step 6: APPROX-EPOL for this rank's segment of atom leaves
	// (node-node work division). Ranks share the System's compiled lists
	// (the first rank compiles, the rest reuse): row i is aLeaves[i].
	o := c.Obs()
	ctx := NewEpolContext(sys, slotRadii)
	il := sys.Lists(pool).Epol
	aLeaves := sys.Atoms.Leaves()
	eLo, eHi := segment(len(aLeaves), P, rank)
	sp := o.Begin(rank, "phase", "epol", c.Clock())
	eaccs := make([]epolAccum, p)
	conv := newConvScratch(ctx, p)
	sched.ParallelFor(pool, eHi-eLo, rowGrain(eHi-eLo, p), func(l, h, w int) {
		for i := l; i < h; i++ {
			before := eaccs[w].ops
			epolRow(ctx, il, eLo+i, conv[w], &eaccs[w])
			if d := eaccs[w].ops - before; d > eaccs[w].maxTask {
				eaccs[w].maxTask = d
			}
		}
	})
	var raw, maxE, maxTask, rankOps float64
	for i := range eaccs {
		raw += eaccs[i].energy
		if eaccs[i].ops > maxE {
			maxE = eaccs[i].ops
		}
		if eaccs[i].maxTask > maxTask {
			maxTask = eaccs[i].maxTask
		}
		rankOps += eaccs[i].ops
		out.ops += eaccs[i].ops
	}
	c.ChargeOps(modelPhaseOps(rankOps, maxE, maxTask, p))
	sp.End(c.Clock(), obs.F("rows", float64(eHi-eLo)), obs.F("ops", rankOps))
	o.Counter("kernel.epol.batches").Add(int64(eHi - eLo))
	o.Counter("sched.steals").Add(pool.Steals())

	// Step 7: reduce partial energies (Allreduce so every rank returns
	// the final value, like MPI_Allreduce in the paper's step 3 wording).
	total, err := c.Allreduce([]float64{raw}, cluster.Sum)
	if err != nil {
		return err
	}
	out.epol = ctx.Finish(total[0])
	out.radii = slotRadii
	return nil
}
