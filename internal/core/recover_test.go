package core

import (
	"fmt"
	"testing"
	"time"

	"gbpolar/internal/cluster"
)

// faultTolerance is the acceptance bound: a recovered run regroups
// floating-point sums (a survivor's accumulator absorbs the dead rank's
// rows), so bitwise equality is not expected — 1e-12 relative is.
const faultTolerance = 1e-12

func TestRedivideSpans(t *testing.T) {
	check := func(n, P int, dead []int) {
		t.Helper()
		asgn := RedivideSpans(n, P, dead)
		covered := make([]int, n)
		isDead := make(map[int]bool)
		for _, d := range dead {
			isDead[d] = true
		}
		for r, spans := range asgn {
			if isDead[r] && len(spans) > 0 {
				t.Errorf("n=%d P=%d dead=%v: dead rank %d still owns %v", n, P, dead, r, spans)
			}
			for _, sp := range spans {
				if sp.Lo < 0 || sp.Hi > n || sp.Lo >= sp.Hi {
					t.Errorf("bad span %+v", sp)
				}
				for i := sp.Lo; i < sp.Hi; i++ {
					covered[i]++
				}
			}
		}
		if len(dead) < P {
			for i, cnt := range covered {
				if cnt != 1 {
					t.Fatalf("n=%d P=%d dead=%v: row %d covered %d times", n, P, dead, i, cnt)
				}
			}
		}
	}
	check(100, 4, nil)
	check(100, 4, []int{2})
	check(100, 4, []int{2, 0})
	check(100, 4, []int{3, 1, 0})
	check(7, 3, []int{1})
	check(5, 8, []int{0, 7, 3}) // more ranks than rows
	check(1, 2, []int{0})

	// Pure function: identical inputs, identical partition.
	a := RedivideSpans(100, 4, []int{2, 0})
	b := RedivideSpans(100, 4, []int{2, 0})
	for r := range a {
		if len(a[r]) != len(b[r]) {
			t.Fatal("redivision not deterministic")
		}
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatal("redivision not deterministic")
			}
		}
	}

	// Death order matters for WHO gets what, but coverage always holds;
	// a survivor's assignment only ever grows.
	before := RedivideSpans(100, 4, []int{2})
	after := RedivideSpans(100, 4, []int{2, 0})
	for _, sp := range before[1] {
		found := false
		for _, sp2 := range after[1] {
			if sp2 == sp {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("rank 1 lost span %+v after a second death", sp)
		}
	}
}

// resilientCfg builds the standard 4-rank config used by the fault
// tests; the short stall timeout bounds every blocking call in real
// time, so no test here can hang.
func resilientCfg(plan *cluster.FaultPlan) cluster.Config {
	cfg := distCfg(4, 1, 4, 1)
	cfg.Faults = plan
	cfg.StallTimeout = 30 * time.Second
	return cfg
}

// runResilient runs RunDistributedResilient under a real-time watchdog —
// the "never hangs" assertion made executable.
func runResilient(t *testing.T, sys *System, cfg cluster.Config) *Result {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := RunDistributedResilient(sys, cfg)
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatal(o.err)
		}
		return o.res
	case <-time.After(2 * time.Minute):
		t.Fatal("resilient run exceeded the per-test deadline")
		return nil
	}
}

func TestResilientMatchesStaticFaultFree(t *testing.T) {
	sys, _, _ := testSystem(t, 200, 7, Params{})
	ref, err := RunDistributed(sys, distCfg(4, 1, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	res := runResilient(t, sys, resilientCfg(nil))
	if e := relErr(res.Epol, ref.Epol); e > faultTolerance {
		t.Errorf("fault-free resilient E_pol %g vs static %g (rel %g)", res.Epol, ref.Epol, e)
	}
	if res.Report.Faults != nil {
		t.Errorf("fault-free run reported faults: %+v", res.Report.Faults)
	}
}

// TestCrashAtEveryPhaseBoundary is the issue's acceptance criterion: a
// single rank crash at ANY phase boundary (each of the three collectives,
// plus mid-compute before the first) must leave the distributed runner
// completing with E_pol within 1e-12 relative of the fault-free value,
// with recovery metered on the virtual clock.
func TestCrashAtEveryPhaseBoundary(t *testing.T) {
	sys, _, _ := testSystem(t, 200, 7, Params{})
	ref := runResilient(t, sys, resilientCfg(nil))

	type trigger struct {
		name  string
		fault func(victim int) cluster.Fault
	}
	var triggers []trigger
	// Collective boundaries 1..3: Born integrals, radii, energy.
	for nth := 1; nth <= 3; nth++ {
		nth := nth
		triggers = append(triggers, trigger{
			name: fmt.Sprintf("collective-%d", nth),
			fault: func(int) cluster.Fault {
				return cluster.Fault{Kind: cluster.CrashAtCollective, Nth: nth}
			},
		})
	}
	// Mid-compute crashes: virtual-clock triggers as fractions of the
	// VICTIM's own fault-free compute time. Its clock at the last crash
	// checkpoint (entry to the final collective) is at least its total
	// compute charge, so any fraction < 1 is guaranteed to fire.
	for _, frac := range []float64{0.0, 0.3, 0.7} {
		frac := frac
		triggers = append(triggers, trigger{
			name: fmt.Sprintf("clock-%.0f%%", frac*100),
			fault: func(victim int) cluster.Fault {
				vCompute := ref.Report.PerRank[victim].ComputeSeconds
				return cluster.Fault{Kind: cluster.CrashAtClock, Clock: frac * vCompute}
			},
		})
	}

	for _, victim := range []int{0, 2, 3} {
		for _, tr := range triggers {
			t.Run(fmt.Sprintf("rank%d/%s", victim, tr.name), func(t *testing.T) {
				f := tr.fault(victim)
				f.Rank = victim
				res := runResilient(t, sys, resilientCfg(&cluster.FaultPlan{Faults: []cluster.Fault{f}}))
				fr := res.Report.Faults
				if fr == nil {
					t.Fatal("no FaultReport")
				}
				if fr.Degraded {
					t.Fatalf("degraded on a 1-of-4 crash: %s", fr.DegradedReason)
				}
				if e := relErr(res.Epol, ref.Epol); e > faultTolerance {
					t.Errorf("E_pol %g vs fault-free %g (rel %g)", res.Epol, ref.Epol, e)
				}
				if fr.Crashes != 1 {
					t.Errorf("Crashes = %d, want 1", fr.Crashes)
				}
				if len(fr.Detections) == 0 {
					t.Error("no detections recorded")
				}
				if fr.RecomputedRows <= 0 {
					t.Error("no recomputed rows metered")
				}
				if fr.RecoverySeconds <= 0 {
					t.Error("no recovery time metered on the virtual clock")
				}
				if !res.Report.PerRank[victim].Died {
					t.Errorf("victim rank %d not marked Died", victim)
				}
			})
		}
	}
}

func TestTwoCrashesStillRecover(t *testing.T) {
	sys, _, _ := testSystem(t, 200, 7, Params{})
	ref := runResilient(t, sys, resilientCfg(nil))
	plan := &cluster.FaultPlan{Faults: []cluster.Fault{
		{Kind: cluster.CrashAtCollective, Rank: 1, Nth: 1},
		{Kind: cluster.CrashAtCollective, Rank: 3, Nth: 2},
	}}
	res := runResilient(t, sys, resilientCfg(plan))
	fr := res.Report.Faults
	if fr.Degraded {
		t.Fatalf("degraded on 2-of-4 crashes: %s", fr.DegradedReason)
	}
	if e := relErr(res.Epol, ref.Epol); e > faultTolerance {
		t.Errorf("E_pol %g vs fault-free %g (rel %g)", res.Epol, ref.Epol, e)
	}
	if fr.Crashes != 2 {
		t.Errorf("Crashes = %d, want 2", fr.Crashes)
	}
}

// TestDegradesToSharedRunner: with P=2, one crash leaves a lone survivor
// — below the 2-rank floor — so the run must fall back to the shared
// runner and say why.
func TestDegradesToSharedRunner(t *testing.T) {
	sys, _, _ := testSystem(t, 200, 7, Params{})
	shared, err := RunShared(sys, SharedOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := distCfg(2, 1, 2, 1)
	cfg.Faults = &cluster.FaultPlan{Faults: []cluster.Fault{
		{Kind: cluster.CrashAtCollective, Rank: 0, Nth: 2},
	}}
	cfg.StallTimeout = 30 * time.Second
	res := runResilient(t, sys, cfg)
	fr := res.Report.Faults
	if fr == nil || !fr.Degraded {
		t.Fatal("lone survivor did not degrade to the shared runner")
	}
	if fr.DegradedReason == "" {
		t.Error("degradation has no reason")
	}
	if e := relErr(res.Epol, shared.Epol); e > faultTolerance {
		t.Errorf("degraded E_pol %g vs shared %g (rel %g)", res.Epol, shared.Epol, e)
	}
}

// TestFaultMatrix is the `make faults` target: {crash, drop, delay} ×
// {Born phase, E_pol phase, collective boundary}. Crashes exercise the
// self-healing static runner (its only communication is collectives);
// drops and delays exercise the work-stealing runner's point-to-point
// protocol, where the modeled reliable transport must absorb them.
func TestFaultMatrix(t *testing.T) {
	sys, _, _ := testSystem(t, 200, 7, Params{})
	ref := runResilient(t, sys, resilientCfg(nil))
	dynRef, _, err := RunDistributedDynamic(sys, distCfg(4, 1, 4, 1))
	if err != nil {
		t.Fatal(err)
	}

	phases := []struct {
		name string
		mk   func(kind cluster.FaultKind) cluster.Fault
	}{
		{"born", func(kind cluster.FaultKind) cluster.Fault {
			return cluster.Fault{Kind: kind, Rank: 2, Clock: 0.2 * ref.ModelSeconds, Nth: 1, Count: 3,
				Peer: -1, Tag: cluster.AnyTag, Delay: 2 * time.Millisecond}
		}},
		{"epol", func(kind cluster.FaultKind) cluster.Fault {
			return cluster.Fault{Kind: kind, Rank: 2, Clock: 0.8 * ref.ModelSeconds, Nth: 3, Count: 3,
				Peer: -1, Tag: cluster.AnyTag, Delay: 2 * time.Millisecond}
		}},
		{"collective", func(kind cluster.FaultKind) cluster.Fault {
			return cluster.Fault{Kind: kind, Rank: 2, Clock: 0.5 * ref.ModelSeconds, Nth: 2, Count: 3,
				Peer: -1, Tag: cluster.AnyTag, Delay: 2 * time.Millisecond}
		}},
	}

	for _, ph := range phases {
		// Crash: the boundary variant uses CrashAtCollective, the phase
		// variants CrashAtClock.
		kind := cluster.CrashAtClock
		if ph.name == "collective" {
			kind = cluster.CrashAtCollective
		}
		t.Run("crash/"+ph.name, func(t *testing.T) {
			plan := &cluster.FaultPlan{Faults: []cluster.Fault{ph.mk(kind)}}
			res := runResilient(t, sys, resilientCfg(plan))
			if res.Report.Faults.Degraded {
				t.Fatalf("degraded: %s", res.Report.Faults.DegradedReason)
			}
			if e := relErr(res.Epol, ref.Epol); e > faultTolerance {
				t.Errorf("E_pol rel err %g", e)
			}
		})

		for _, kind := range []cluster.FaultKind{cluster.DropMessages, cluster.DelayMessages} {
			kind := kind
			t.Run(kind.String()+"/"+ph.name, func(t *testing.T) {
				cfg := distCfg(4, 1, 4, 1)
				cfg.Faults = &cluster.FaultPlan{Faults: []cluster.Fault{ph.mk(kind)}}
				cfg.StallTimeout = 30 * time.Second
				res, _, err := RunDistributedDynamic(sys, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Report != nil && res.Report.Faults != nil && res.Report.Faults.Degraded {
					if res.Report.Faults.DegradedReason == "" {
						t.Error("degraded without a reason")
					}
					t.Logf("degraded cleanly: %s", res.Report.Faults.DegradedReason)
				}
				if e := relErr(res.Epol, dynRef.Epol); e > faultTolerance {
					t.Errorf("E_pol %g vs dynamic ref %g (rel %g)", res.Epol, dynRef.Epol, e)
				}
			})
		}
	}
}

// TestChaosDeterministic runs 50 evaluations under a fixed-seed random
// fault schedule. Every run must either complete with E_pol within 1e-12
// of the fault-free reference or degrade cleanly with a reported reason —
// and never hang (per-evaluation watchdog).
func TestChaosDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep skipped in -short")
	}
	sys, _, _ := testSystem(t, 150, 11, Params{})
	ref := runResilient(t, sys, resilientCfg(nil))

	const evals = 50
	recovered, degraded := 0, 0
	for i := 0; i < evals; i++ {
		plan := cluster.RandomFaultPlan(1000+int64(i), 4, 2, ref.ModelSeconds)
		cfg := resilientCfg(plan)
		cfg.StallTimeout = 15 * time.Second
		res := runResilient(t, sys, cfg)
		fr := res.Report.Faults
		if fr == nil {
			t.Fatalf("eval %d: no fault report", i)
		}
		if fr.Degraded {
			degraded++
			if fr.DegradedReason == "" {
				t.Errorf("eval %d: degraded without a reason", i)
			}
			continue
		}
		recovered++
		if e := relErr(res.Epol, ref.Epol); e > faultTolerance {
			t.Errorf("eval %d: E_pol %g vs %g (rel %g), plan %+v", i, res.Epol, ref.Epol, e, plan.Faults)
		}
	}
	t.Logf("chaos: %d recovered, %d degraded cleanly", recovered, degraded)
	if recovered == 0 {
		t.Error("no evaluation recovered — the schedule is not exercising recovery")
	}

	// Determinism: replaying one seed reproduces the energy bitwise.
	plan := cluster.RandomFaultPlan(1003, 4, 2, ref.ModelSeconds)
	a := runResilient(t, sys, resilientCfg(plan))
	b := runResilient(t, sys, resilientCfg(cluster.RandomFaultPlan(1003, 4, 2, ref.ModelSeconds)))
	if a.Epol != b.Epol {
		t.Errorf("same fault seed, different energies: %g vs %g", a.Epol, b.Epol)
	}
}
