package core

import (
	"bytes"
	"context"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"gbpolar/internal/cluster/net"
	"gbpolar/internal/obs"
	"gbpolar/internal/obs/analyze"
)

// The distributed observability acceptance run: a 4-process cluster with
// per-worker observers shipping telemetry, the coordinator folding it
// into one stream — and the merged gbtrace model reconciling per-rank
// phase totals with each worker's local trace to 1e-9.
func TestNetTelemetryMergedTrace(t *testing.T) {
	const procs = 4
	sys, _, _ := testSystem(t, 600, 11, DefaultParams())
	membership, checkpoint := netPaths(t)

	coObs := obs.New()
	workerObs := make([]*obs.Obs, procs)
	werrs := make([]error, procs)
	var wg sync.WaitGroup
	for r := 1; r < procs; r++ {
		workerObs[r] = obs.New()
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			_, werrs[r] = RunNetWorker(membership, r, NetWorkerOptions{
				StallTimeout: 60 * time.Second,
				JoinBudget:   60 * time.Second,
				Obs:          workerObs[r],
			})
		}(r)
	}
	res, err := RunNetCoordinator(context.Background(), sys, NetOptions{
		Procs:             procs,
		MembershipPath:    membership,
		CheckpointPath:    checkpoint,
		StallTimeout:      60 * time.Second,
		HeartbeatInterval: 50 * time.Millisecond,
		Obs:               coObs,
	})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < procs; r++ {
		if werrs[r] != nil {
			t.Fatalf("worker rank %d: %v", r, werrs[r])
		}
	}
	if res.Report.Faults.Degraded {
		t.Fatalf("clean observed run degraded: %+v", res.Report.Faults)
	}

	// The merged stream survives the JSONL round trip (what gbtrace
	// report consumes) and models every rank.
	var buf bytes.Buffer
	if err := coObs.Trace.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	merged := analyze.FromTrace(tr)
	mergedRank := map[int]analyze.RankStat{}
	for _, rs := range merged.Ranks {
		mergedRank[rs.Rank] = rs
	}
	if len(mergedRank) != procs {
		t.Fatalf("merged analysis models %d ranks, want %d", len(mergedRank), procs)
	}

	// Per-rank reconciliation: the workers' spans crossed the wire and
	// the JSONL round trip; their phase wall totals must match what each
	// worker holds locally to 1e-9 microseconds.
	for r := 1; r < procs; r++ {
		local := analyze.Analyze(workerObs[r].Trace.Events())
		var want analyze.RankStat
		for _, rs := range local.Ranks {
			if rs.Rank == r {
				want = rs
			}
		}
		got := mergedRank[r]
		if want.PhaseWallUS == 0 {
			t.Fatalf("rank %d recorded no local phase time", r)
		}
		if d := math.Abs(got.PhaseWallUS - want.PhaseWallUS); d > 1e-9 {
			t.Fatalf("rank %d: merged phase wall %gus vs local %gus (|Δ| = %g)",
				r, got.PhaseWallUS, want.PhaseWallUS, d)
		}
	}

	// The wire metrics folded additively across processes. Rank 0 dials
	// with the coordinator's own observer (no shipping), so its sends
	// are on top of the folded worker deltas.
	var wantSent int64
	for r := 1; r < procs; r++ {
		wantSent += workerObs[r].Metrics.Counter("net.frames.sent").Value()
	}
	got := coObs.Metrics.Counter("net.frames.sent").Value()
	if got < wantSent {
		t.Fatalf("folded net.frames.sent = %d, want >= %d", got, wantSent)
	}
	// (Heartbeat RTT sampling is asserted in the net package's
	// TestNetTelemetryMergedStream, which paces the run across several
	// heartbeat intervals; this workload can finish before the first
	// ping.)
}

// The live endpoint wired through NetOptions: the bound address is
// published in the membership file, /readyz follows founding membership,
// and /metrics serves mid-run.
func TestNetObsEndpoint(t *testing.T) {
	sys, _, _ := testSystem(t, 200, 7, DefaultParams())
	membership, checkpoint := netPaths(t)
	coObs := obs.New()

	done := make(chan error, 1)
	go func() {
		_, err := RunNetCoordinator(context.Background(), sys, NetOptions{
			Procs:          2,
			MembershipPath: membership,
			CheckpointPath: checkpoint,
			StallTimeout:   60 * time.Second,
			JoinDeadline:   60 * time.Second,
			Obs:            coObs,
			ObsAddr:        "127.0.0.1:0",
		})
		done <- err
	}()

	m, err := net.WaitMembership(membership, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.ObsAddr == "" {
		t.Fatal("membership file carries no obs endpoint address")
	}
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + m.ObsAddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	// The worker has not joined yet: alive, not ready, starting.
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"starting"`) {
		t.Fatalf("/healthz while waiting = %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while waiting = %d, want 503", code)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "gbpol_up 1") {
		t.Fatalf("/metrics = %d %q", code, body)
	}

	// Let the worker join; the run completes and the endpoint goes away
	// with the coordinator.
	_, errs, wait := netWorkerGoroutines(membership, 2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	wait()
	if errs[1] != nil {
		t.Fatal(errs[1])
	}
	if _, err := http.Get("http://" + m.ObsAddr + "/healthz"); err == nil {
		t.Fatal("endpoint still serving after the run ended")
	}
}
