package core

import (
	"math"
	"testing"

	"gbpolar/internal/geom"
	"gbpolar/internal/mathx"
	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

// For a point charge at the CENTER of a sphere of radius a, both kernels
// are exact: 1/R = (1/4π)∮(r·n)/r⁴ = 1/a and 1/R³ = (1/4π)∮(r·n)/r⁶ = 1/a³.
func TestBothKernelsExactAtSphereCenter(t *testing.T) {
	a := 8.0
	surf, err := surface.SphereSurface(geom.Vec3{}, a, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	mol := &molecule.Molecule{Atoms: []molecule.Atom{{Charge: 1, Radius: 1}}}
	for _, kern := range []BornKernel{R4, R6} {
		r := NaiveBornRadiiKernel(mol, surf, mathx.Exact, kern)[0]
		if relErr(r, a) > 0.01 {
			t.Errorf("%v: center Born radius %v, want %v", kern, r, a)
		}
	}
}

// Off-center, the exact ("perfect") Born radius of a spherical solute is
// the Kirkwood value R_perf = (a² − d²)/a. Grycuk (reference [14]) showed
// the r⁶ integral reproduces it exactly while the Coulomb-field r⁴ form
// overestimates — the reason the paper adopts the r⁶ approximation
// ("better accuracy for spherical solutes", Section II). This test
// verifies both facts numerically.
func TestR6MoreAccurateThanR4OffCenter(t *testing.T) {
	a := 10.0
	surf, err := surface.SphereSurface(geom.Vec3{}, a, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []float64{2, 4, 6} {
		mol := &molecule.Molecule{Atoms: []molecule.Atom{
			{Pos: geom.V(d, 0, 0), Charge: 1, Radius: 1},
		}}
		perfect := (a*a - d*d) / a
		r6 := NaiveBornRadiiKernel(mol, surf, mathx.Exact, R6)[0]
		r4 := NaiveBornRadiiKernel(mol, surf, mathx.Exact, R4)[0]
		e6 := math.Abs(r6 - perfect)
		e4 := math.Abs(r4 - perfect)
		if relErr(r6, perfect) > 0.02 {
			t.Errorf("d=%v: r⁶ radius %v, Kirkwood perfect %v (err %.3f)", d, r6, perfect, e6)
		}
		if e4 <= e6 {
			t.Errorf("d=%v: r⁴ (err %.4f) not worse than r⁶ (err %.4f) — contradicts Grycuk", d, e4, e6)
		}
	}
}

func TestOctreeR4MatchesNaiveR4(t *testing.T) {
	params := DefaultParams()
	params.Kernel = R4
	sys, mol, surf := testSystem(t, 400, 161, params)
	res, err := RunShared(sys, SharedOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	naive := NaiveBornRadiiKernel(mol, surf, mathx.Exact, R4)
	var worst float64
	for i := range naive {
		if e := relErr(res.BornRadii[i], naive[i]); e > worst {
			worst = e
		}
	}
	// Same loose-MAC error class as the r⁶ tests.
	if worst > 0.5 {
		t.Errorf("worst octree-r⁴ Born radius error %.1f%%", 100*worst)
	}
}

func TestKernelStrings(t *testing.T) {
	if R6.String() != "r6" || R4.String() != "r4" {
		t.Error("BornKernel.String broken")
	}
}

func TestStrictMACKernelDependence(t *testing.T) {
	// The r⁴ kernel decays more slowly, so its worst-case opening bound
	// is less strict than r⁶'s.
	if strictMACFactorKernel(0.9, R4) >= strictMACFactorKernel(0.9, R6) {
		t.Error("r⁴ strict MAC should be looser than r⁶'s")
	}
}

func TestR4R6RadiiDifferOnProteins(t *testing.T) {
	mol := molecule.GenProtein("kern", 300, 162)
	surf, err := surface.ForMolecule(mol, surface.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r4 := NaiveBornRadiiKernel(mol, surf, mathx.Exact, R4)
	r6 := NaiveBornRadiiKernel(mol, surf, mathx.Exact, R6)
	diff := 0
	for i := range r4 {
		if relErr(r4[i], r6[i]) > 1e-3 {
			diff++
		}
	}
	if diff < len(r4)/4 {
		t.Errorf("r⁴ and r⁶ agree on %d/%d atoms — suspicious", len(r4)-diff, len(r4))
	}
}
