package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"time"

	"gbpolar/internal/cluster"
	"gbpolar/internal/cluster/net"
	"gbpolar/internal/obs"
	"gbpolar/internal/obs/serve"
	"gbpolar/internal/obs/watch"
)

// This file is the multi-process runner: the elastic rank body of
// elastic.go executed over the real TCP transport (internal/cluster/net)
// instead of goroutines. The coordinator process hosts the rendezvous
// point, publishes a membership file and a binary checkpoint of the
// compiled System, and itself computes as rank 0 over loopback (so every
// rank takes the same code path); worker processes load the checkpoint,
// dial in and run the identical self-healing protocol. A SIGKILLed
// worker is a real death — survivors re-divide its rows exactly as the
// modeled transport's recovery does — and a respawned worker is
// re-admitted at the next collective boundary, seeded with the last
// completed reduction.

// NetOptions configures RunNetCoordinator.
type NetOptions struct {
	// Procs is the rank count P (coordinator itself is rank 0, so
	// Procs-1 worker processes are expected).
	Procs int
	// Threads is the intra-rank worker count p (0 = 1).
	Threads int
	// ListenAddr is the coordinator bind address ("" = ephemeral
	// loopback port).
	ListenAddr string
	// MembershipPath is where the cluster bootstrap file is published.
	MembershipPath string
	// CheckpointPath is where the System snapshot is written; workers
	// load it instead of rebuilding, and a restarted coordinator resumes
	// from it without recompiling the interaction lists.
	CheckpointPath string
	// Spawn, when non-nil, launches the worker process for a rank
	// (ranks 1..Procs-1 at startup; dead ranks again when RespawnDead).
	Spawn func(rank int) error
	// RespawnDead relaunches each crashed worker rank once via Spawn, so
	// the elastic re-admission path heals real process kills.
	RespawnDead bool
	// StallTimeout bounds every collective round (0 = 2 minutes); see
	// net.Config.StallTimeout.
	StallTimeout time.Duration
	// HeartbeatInterval/HeartbeatTimeout/JoinDeadline tune liveness
	// detection (0 = net.Config defaults).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	JoinDeadline      time.Duration
	// Obs receives the coordinator-side trace and metrics.
	Obs *obs.Obs
	// ObsAddr, when non-empty, starts the live observability endpoint
	// (/metrics, /healthz, /readyz, /debug/pprof) on this address
	// (host:port; port 0 binds an ephemeral one). The bound address is
	// published in the membership file so scrapers can find it.
	ObsAddr string
	// FlightDir, when non-empty, attaches a crash flight recorder to Obs:
	// the last obs.DefaultFlightEvents trace events are kept in a ring and
	// dumped to a timestamped JSONL file in this directory on death
	// detection, degradation, or panic.
	FlightDir string
	// HealthInterval is the runtime health sampler cadence on the
	// coordinator (0 = obs.DefaultHealthInterval, < 0 = sampler off).
	HealthInterval time.Duration
	// Watch, when non-nil (and Obs is enabled), runs the anomaly watchdog
	// against the merged timeline: sustained per-phase imbalance outside
	// the baseline envelope raises a verdict, flips /healthz to
	// "anomalous", and dumps the flight recorder tagged with the
	// offending phase and rank.
	Watch *watch.Config
}

// RunNetCoordinator runs the full multi-process protocol from the
// coordinator side: checkpoint, publish, rendezvous, compute as rank 0,
// and degrade to the shared runner when too few ranks survive.
// Cancelling ctx aborts the run (every rank observes ErrAborted through
// its dying connection).
func RunNetCoordinator(ctx context.Context, sys *System, opts NetOptions) (*Result, error) {
	if opts.Procs < 1 {
		return nil, fmt.Errorf("core: net run needs Procs >= 1, got %d", opts.Procs)
	}
	if opts.MembershipPath == "" || opts.CheckpointPath == "" {
		return nil, fmt.Errorf("core: net run needs MembershipPath and CheckpointPath")
	}
	if opts.Threads <= 0 {
		opts.Threads = 1
	}
	start := time.Now()

	// Flight recorder: attach before any event is recorded so the ring
	// mirrors the whole run (unless the caller attached one already), and
	// dump it on a panic escaping the run — the postmortem an operator
	// reads first.
	if opts.FlightDir != "" && opts.Obs.Enabled() && opts.Obs.Flight() == nil {
		opts.Obs.AttachFlight(obs.NewFlightRecorder(obs.DefaultFlightEvents, opts.FlightDir))
	}
	if opts.Obs.Flight() != nil {
		defer func() {
			if r := recover(); r != nil {
				opts.Obs.DumpFlight("panic")
				panic(r)
			}
		}()
	}

	// Compile the lists once on the coordinator so the checkpoint ships
	// them: workers and a restarted coordinator deserialize instead of
	// recompiling (EncodeSnapshot embeds lists only when present).
	sys.Lists(nil)
	if err := SaveSnapshot(opts.CheckpointPath, sys); err != nil {
		return nil, fmt.Errorf("core: net checkpoint: %w", err)
	}

	co, err := net.Start(net.Config{
		Size:              opts.Procs,
		ListenAddr:        opts.ListenAddr,
		Threads:           opts.Threads,
		OpsPerSecond:      CalibratedOpsPerSecond(),
		StallTimeout:      opts.StallTimeout,
		HeartbeatInterval: opts.HeartbeatInterval,
		HeartbeatTimeout:  opts.HeartbeatTimeout,
		JoinDeadline:      opts.JoinDeadline,
		Obs:               opts.Obs,
	})
	if err != nil {
		return nil, err
	}
	defer co.Close()

	// Runtime health sampler: heap/GC/goroutine/scheduler gauges plus
	// open-span ages, into the same registry the endpoint serves.
	var sampler *obs.HealthSampler
	if opts.HealthInterval >= 0 {
		sampler = obs.StartHealthSampler(opts.Obs, opts.HealthInterval)
	}
	defer sampler.Stop()

	// Anomaly watchdog: every verdict dumps the flight ring tagged with
	// the offending phase and rank before the caller's own hook runs. The
	// deferred Stop performs one final evaluation, and — being registered
	// here — runs after the telemetry drain below, so a breach visible
	// only in the last workers' frames still lands.
	var dog *watch.Watchdog
	if opts.Watch != nil {
		cfg := *opts.Watch
		after := cfg.OnAnomaly
		cfg.OnAnomaly = func(v watch.Verdict) {
			opts.Obs.DumpFlight(fmt.Sprintf("anomaly-%s-rank%d", v.Phase, v.Rank))
			if after != nil {
				after(v)
			}
		}
		dog = watch.Start(opts.Obs, cfg)
		defer dog.Stop()
	}

	// Live endpoint: membership-backed health plus the metrics registry.
	// Started before the membership file is published so the bound
	// address (ObsAddr may ask for port 0) rides along in it.
	obsAddr := ""
	if opts.ObsAddr != "" {
		var verdicts func() any
		if dog != nil {
			verdicts = func() any { return dog.Verdicts() }
		}
		srv, serr := serve.StartWith(opts.ObsAddr, opts.Obs, func() serve.Health {
			s := co.State()
			h := serve.Health{
				Ready:        s.Ready(),
				Size:         s.Size,
				LiveRanks:    s.Live,
				Rounds:       s.Rounds,
				PendingJoins: s.Pending,
				Anomalies:    len(dog.Verdicts()),
			}
			switch {
			case s.Dead > 0:
				h.State = "degraded"
			case !h.Ready && s.Rounds == 0:
				h.State = "starting"
			case dog.Anomalous():
				h.State = "anomalous"
			default:
				h.State = "running"
			}
			return h
		}, verdicts)
		if serr != nil {
			return nil, serr
		}
		defer srv.Close()
		obsAddr = srv.Addr()
	}
	if err := net.WriteMembership(opts.MembershipPath, net.Membership{
		Addr:       co.Addr(),
		Size:       opts.Procs,
		Threads:    opts.Threads,
		Checkpoint: opts.CheckpointPath,
		ObsAddr:    obsAddr,
	}); err != nil {
		return nil, err
	}

	// Cancellation: closing the coordinator severs every connection, so
	// all ranks (including rank 0 below) unblock with ErrAborted.
	runDone := make(chan struct{})
	defer close(runDone)
	go func() {
		select {
		case <-ctx.Done():
			co.Close()
		case <-runDone:
		}
	}()

	if opts.Spawn != nil {
		for r := 1; r < opts.Procs; r++ {
			if err := opts.Spawn(r); err != nil {
				return nil, fmt.Errorf("core: spawn rank %d: %w", r, err)
			}
		}
	}
	if opts.RespawnDead && opts.Spawn != nil {
		go respawnLoop(co, opts, runDone)
	}

	// The coordinator computes as rank 0 over loopback: same transport,
	// same rank body, no privileged path. Rank 0 shares the coordinator's
	// Obs, so it must NOT ship telemetry — its events are already in the
	// merged trace, and shipping would duplicate every one of them.
	var out *ElasticOut
	c, err := net.Dial(co.Addr(), 0, net.Options{
		StallTimeout: opts.StallTimeout,
		DialTimeout:  opts.JoinDeadline,
		Obs:          opts.Obs,
	})
	if err == nil {
		out, err = RunElasticRank(sys, c, 1, nil)
		if err == nil {
			c.Bye()
		} else {
			c.Close()
		}
	}
	if err == nil && opts.Obs.Enabled() {
		// Telemetry drain: workers flush their final batch right before
		// their Bye, but those frames race the teardown below. Wait
		// (briefly, bounded) for the surviving ranks to leave so the
		// merged timeline is complete for clean runs. The poll is fine-
		// grained because this wait lands inside the measured wall time
		// of observed runs (gbbench -exp obs).
		deadline := time.Now().Add(2 * time.Second)
		for co.State().Live > 0 && time.Now().Before(deadline) {
			time.Sleep(500 * time.Microsecond)
		}
	}
	fr := co.FaultReport()
	if err == nil && out != nil && out.Completed {
		// Per-rank rows: wall time is the run's (processes ran
		// concurrently); ranks still dead at the end are marked.
		perRank := make([]cluster.RankStats, opts.Procs)
		dead := make(map[int]bool)
		for _, r := range cluster.DeadFromEvents(opts.Procs, co.Events()) {
			dead[r] = true
		}
		for r := range perRank {
			perRank[r] = cluster.RankStats{Rank: r, Died: dead[r]}
		}
		res := &Result{
			Epol:        out.Epol,
			BornRadii:   sys.BornRadiiToOriginalOrder(out.Radii),
			Ops:         out.Ops,
			WallSeconds: time.Since(start).Seconds(),
			Report: &cluster.Report{
				WallSeconds: time.Since(start).Seconds(),
				PerRank:     perRank,
				Mode:        cluster.Real,
				Faults:      &fr,
			},
		}
		return res, nil
	}
	if err == nil {
		err = fmt.Errorf("core: rank 0 joined after the final collective: %w", ErrDegraded)
	}
	if ctx.Err() != nil {
		return nil, fmt.Errorf("core: net run cancelled: %w", ctx.Err())
	}
	if !errors.Is(err, ErrDegraded) && !errors.Is(err, cluster.ErrRankDead) &&
		!errors.Is(err, cluster.ErrTimeout) {
		return nil, err
	}
	// Degradation: the distributed run cannot continue (too few live
	// ranks or a stalled protocol); fall back to the shared runner and
	// report why, exactly like RunDistributedResilient. Dump the flight
	// ring first — degradation is exactly the moment an operator wants
	// the recent-event record.
	opts.Obs.DumpFlight("degraded")
	shared, serr := RunShared(sys, SharedOptions{
		Threads:      opts.Threads,
		OpsPerSecond: CalibratedOpsPerSecond(),
		Obs:          opts.Obs,
	})
	if serr != nil {
		return nil, serr
	}
	fr.Degraded = true
	fr.DegradedReason = err.Error()
	shared.Report = &cluster.Report{
		WallSeconds: time.Since(start).Seconds(),
		Mode:        cluster.Real,
		Faults:      &fr,
	}
	shared.WallSeconds = time.Since(start).Seconds()
	return shared, nil
}

// respawnLoop relaunches each dead worker rank once, so the elastic
// transport's re-admission path converts a process kill into a rejoin.
func respawnLoop(co *net.Coordinator, opts NetOptions, done <-chan struct{}) {
	respawned := make([]bool, opts.Procs)
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
		}
		for _, r := range cluster.DeadFromEvents(opts.Procs, co.Events()) {
			if r == 0 || respawned[r] {
				continue
			}
			respawned[r] = true
			if err := opts.Spawn(r); err != nil {
				// A failed respawn means the run finishes short-handed:
				// always account it on the fault report and log it, not
				// only when an observer happens to be attached.
				co.NoteRespawnFailure(r)
				slog.Warn("net: respawn failed", "rank", r, "err", err)
			}
		}
	}
}

// NetWorkerOptions configures RunNetWorker.
type NetWorkerOptions struct {
	// StallTimeout bounds every collective (0 = 2 minutes).
	StallTimeout time.Duration
	// JoinBudget bounds waiting for the membership file plus dialing
	// (0 = 30s). A respawned worker spends most of it blocked on
	// admission at the survivors' next collective boundary.
	JoinBudget time.Duration
	// KillAtCollective is the chaos hook: SIGKILL this process entering
	// its Nth collective (0 = off). See net.Options.KillAtCollective.
	KillAtCollective int
	// Obs receives the worker-side trace and metrics. When set, the
	// worker ships telemetry batches (spans + metric deltas) to the
	// coordinator for the merged cross-process timeline.
	Obs *obs.Obs
	// ObsAddr, when non-empty, serves this worker's own live endpoint
	// (always-ready /readyz — a worker has no membership to wait for).
	ObsAddr string
	// FlightDir, when non-empty, attaches a crash flight recorder (see
	// NetOptions.FlightDir).
	FlightDir string
	// HealthInterval is the runtime health sampler cadence (0 =
	// obs.DefaultHealthInterval, < 0 = sampler off). The sampler's
	// open-span age gauges are what make this worker's in-flight phase
	// visible to the coordinator's watchdog before the phase closes.
	HealthInterval time.Duration
	// TelemetryInterval overrides the periodic telemetry flush cadence
	// (0 = net default, 1s). Tests and fine-grained watch runs lower it.
	TelemetryInterval time.Duration
}

// RunNetWorker is the worker-process entry point: it waits for the
// membership file, loads the checkpointed System (no surface resampling,
// no tree rebuild, no list recompilation), dials the coordinator as the
// given rank and runs the elastic rank body — from phase 1 as a founding
// member, or mid-protocol (seeded with the last completed reduction)
// when re-admitted after a crash.
func RunNetWorker(membershipPath string, rank int, opts NetWorkerOptions) (*ElasticOut, error) {
	if opts.JoinBudget <= 0 {
		opts.JoinBudget = 30 * time.Second
	}
	if opts.FlightDir != "" && opts.Obs.Enabled() && opts.Obs.Flight() == nil {
		opts.Obs.AttachFlight(obs.NewFlightRecorder(obs.DefaultFlightEvents, opts.FlightDir))
	}
	if opts.ObsAddr != "" {
		srv, serr := serve.Start(opts.ObsAddr, opts.Obs, func() serve.Health {
			return serve.Health{State: "worker", Ready: true}
		})
		if serr != nil {
			return nil, serr
		}
		defer srv.Close()
	}
	var sampler *obs.HealthSampler
	if opts.HealthInterval >= 0 {
		sampler = obs.StartHealthSampler(opts.Obs, opts.HealthInterval)
	}
	defer sampler.Stop() // idempotent; covers every error path below
	m, err := net.WaitMembership(membershipPath, opts.JoinBudget)
	if err != nil {
		return nil, err
	}
	if rank < 0 || rank >= m.Size {
		return nil, fmt.Errorf("core: worker rank %d outside [0,%d): %w", rank, m.Size, cluster.ErrInvalidRank)
	}
	if m.Checkpoint == "" {
		return nil, fmt.Errorf("core: membership %s carries no checkpoint path", membershipPath)
	}
	data, err := os.ReadFile(m.Checkpoint)
	if err != nil {
		return nil, fmt.Errorf("core: worker checkpoint: %w", err)
	}
	sys, err := DecodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("core: worker checkpoint: %w", err)
	}
	c, err := net.Dial(m.Addr, rank, net.Options{
		StallTimeout:      opts.StallTimeout,
		DialTimeout:       opts.JoinBudget,
		Obs:               opts.Obs,
		ShipTelemetry:     opts.Obs.Enabled(),
		TelemetryInterval: opts.TelemetryInterval,
		KillAtCollective:  opts.KillAtCollective,
	})
	if err != nil {
		return nil, err
	}
	var seed []float64
	if len(c.JoinSeed()) > 0 {
		seed = c.JoinSeed()
	}
	out, err := RunElasticRank(sys, c, c.CompletedRounds()+1, seed)
	if err != nil {
		opts.Obs.DumpFlight("worker-error")
		c.Close()
		return nil, err
	}
	// Stop the sampler before the goodbye: its final tick zeroes the
	// open-span age gauges, and Bye's telemetry flush is the last frame
	// this worker ships — without this ordering the coordinator would be
	// left overlaying a stale positive age forever.
	sampler.Stop()
	c.Bye()
	return out, nil
}
