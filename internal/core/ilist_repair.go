package core

import (
	"fmt"
	"math"
	"slices"

	"gbpolar/internal/geom"
	"gbpolar/internal/obs"
	"gbpolar/internal/octree"
	"gbpolar/internal/sched"
)

// This file is the incremental interaction-list repair — the warm-path
// companion to the tracked octree update (octree/tracked.go). A compiled
// list row is a pure function of the opening tests its classification
// evaluated, and each row carries the minimum slack those tests had
// (Margin). After an update the repair measures, per node, how far the
// center and radius ACTUALLY moved relative to the snapshot the lists
// were certified against; a row whose margin dominates the worst drift
// along every path it descended — and whose paths saw no structural
// change (child materialized, child pruned, leaf split) — provably
// classifies identically against the moved geometry, so its cached
// entries ARE what a fresh compile would produce. Only the remaining
// rows are recomputed, and the result is structurally byte-for-byte a
// full recompile (RecheckLists verifies exactly that) at O(dirty rows)
// cost. Measuring drift per node rather than bounding it by the fastest
// atom is what makes the certificate bite: an opening test's operands
// move with a node's centroid, which for an n-point node drifts ~1/n of
// the per-atom displacement.

// repairSlop absorbs floating-point evaluation noise in the margin/drift
// comparison: the drift bound is exact over the reals, and the opening
// test's FP rounding is ~1e-13 at molecular coordinate scales, so a
// conservative absolute guard keeps the certificate sound without
// recomputing measurably more rows.
const repairSlop = 1e-9

// UpdateStats reports what an UpdateAtomsRepair call did.
type UpdateStats struct {
	// Moved is the number of atoms that changed octree leaf.
	Moved int
	// Rebuilt is set when the octree fell back to a full reconstruction
	// (atom escaped the root cube, or the tree had no Morton keys).
	Rebuilt bool
	// Repaired is set when the cached interaction lists were repaired in
	// place; when false they were invalidated and the next evaluation
	// recompiles from scratch.
	Repaired bool
	// RowsRepaired and RowsTotal count recompiled vs total list rows
	// across both phases (valid only when Repaired).
	RowsRepaired, RowsTotal int
}

// UpdateAtomsRepair moves the atoms to new positions (original atom
// order) like UpdateAtoms, but uses the tracked octree update and its
// structural-change report to repair the compiled interaction lists in
// place instead of discarding them. When repair is impossible — the
// octree rebuilt, or there were no cached lists — it degrades to
// UpdateAtoms semantics (lists invalidated). The pool parallelizes row
// reclassification; o (may be nil) receives the "octree.keys.moved",
// "ilist.rows.repaired" and "ilist.repair.fallbacks" counters.
func (s *System) UpdateAtomsRepair(newPositions []geom.Vec3, pool *sched.Pool, o *obs.Obs) (UpdateStats, error) {
	if len(newPositions) != s.Mol.NumAtoms() {
		return UpdateStats{}, fmt.Errorf("core: UpdateAtomsRepair with %d positions for %d atoms",
			len(newPositions), s.Mol.NumAtoms())
	}
	res, err := s.Atoms.UpdateTracked(newPositions)
	if err != nil {
		return UpdateStats{Moved: res.Moved, Rebuilt: res.Rebuilt}, err
	}
	s.commitAtomPositions(newPositions)
	if o != nil {
		o.Counter("octree.keys.moved").Add(int64(res.Moved))
	}

	stats := UpdateStats{Moved: res.Moved, Rebuilt: res.Rebuilt}
	s.listsMu.Lock()
	defer s.listsMu.Unlock()
	cl := s.lists
	if cl == nil || !cl.matches(s) || res.Rebuilt {
		// Node ids are not stable across a rebuild (or there is nothing
		// to repair): full recompile on next use.
		s.lists = nil
		if o != nil && cl != nil {
			o.Counter("ilist.repair.fallbacks").Add(1)
		}
		return stats, nil
	}
	cert := buildRepairCert(s.Atoms, cl.nodeC, cl.nodeR, res.Struct)
	born, nb := repairPhase(s.Atoms, s.QPts, cl.Born, cert, cl.bornMAC, cl.farOrder, bornLadderDeg(s.Params.Kernel), false, false, pool)
	epol, ne := repairPhase(s.Atoms, s.Atoms, cl.Epol, cert, cl.epolFar, cl.farOrder, epolLadderDeg, true, true, pool)
	nc, nr := snapshotNodes(s.Atoms)
	s.lists = &CompiledLists{
		bornMAC: cl.bornMAC, epolFar: cl.epolFar, farOrder: cl.farOrder,
		Born: born, Epol: epol,
		nodeC: nc, nodeR: nr,
	}
	stats.Repaired = true
	stats.RowsRepaired = nb + ne
	stats.RowsTotal = len(born.Rows) + len(epol.Rows)
	if o != nil {
		o.Counter("ilist.rows.repaired").Add(int64(stats.RowsRepaired))
	}
	return stats, nil
}

// commitAtomPositions applies already-tree-updated atom positions to the
// molecule record, the slot-ordered payloads and the SoA mirrors —
// everything UpdateAtoms does after the octree call except list
// invalidation, which the callers decide.
func (s *System) commitAtomPositions(newPositions []geom.Vec3) {
	for i := range s.Mol.Atoms {
		s.Mol.Atoms[i].Pos = newPositions[i]
	}
	for slot, orig := range s.Atoms.Index {
		s.Charge[slot] = s.Mol.Atoms[orig].Charge
		s.Radius[slot] = s.Mol.Atoms[orig].Radius
	}
	s.refreshAtomSoA()
}

// repairCert holds the per-node certification state one tracked update
// induces on the atoms tree, shared by both phases' repairs.
type repairCert struct {
	// reached marks ids reachable from the root; entries referencing
	// pruned nodes fail their row's certificate through it.
	reached []bool
	// pathBad[id] is true iff any node on root→id (inclusive) changed
	// structure: a classification descending that path cannot be trusted
	// to revisit the same children.
	pathBad []bool
	// dc/dr are the node's own center/radius drift vs the snapshot;
	// upDc/upDr are the maxima over the STRICT ancestors root→parent(id)
	// — the nodes a classification descended through (and tested) on its
	// way to id. Keeping the entry's own drift out of the path maximum is
	// the point: the node a moved atom left or joined can jump by its
	// whole cell size, and only the rows for which THAT node's own test
	// was tight need recomputing, not every row that descended past it.
	dc, dr, upDc, upDr []float64
	// dfsIdx numbers nodes in classification visit order (pre-order,
	// children in octant order) — node IDS stop being in visit order once
	// tracked updates materialize leaves, so reassembling a row's
	// pre-symmetrization near list must sort by this, not by id.
	dfsIdx []int32
}

// buildRepairCert measures every reachable node's drift against the
// snapshot and folds in the tracked update's structural-change report
// (nil strct means no structural change).
func buildRepairCert(atoms *octree.Tree, snapC []geom.Vec3, snapR []float64, strct []bool) *repairCert {
	nn := len(atoms.Nodes)
	c := &repairCert{
		reached: make([]bool, nn),
		pathBad: make([]bool, nn),
		dc:      make([]float64, nn),
		dr:      make([]float64, nn),
		upDc:    make([]float64, nn),
		upDr:    make([]float64, nn),
		dfsIdx:  make([]int32, nn),
	}
	var next int32
	var walk func(id int32, bad bool, mdc, mdr float64)
	walk = func(id int32, bad bool, mdc, mdr float64) {
		nd := &atoms.Nodes[id]
		dc, dr := math.Inf(1), math.Inf(1)
		if int(id) < len(snapC) {
			dc = nd.Center.Dist(snapC[id])
			dr = math.Abs(nd.Radius - snapR[id])
		} else {
			bad = true // new node: no snapshot to certify against
		}
		if strct != nil && int(id) < len(strct) && strct[id] {
			bad = true
		}
		c.reached[id] = true
		c.pathBad[id] = bad
		c.dc[id], c.dr[id] = dc, dr
		c.upDc[id], c.upDr[id] = mdc, mdr
		c.dfsIdx[id] = next
		next++
		if nd.IsLeaf {
			return
		}
		// The recursion's running maxima include this node: it is a
		// strict ancestor of (and an internal test for) everything below.
		if dc > mdc {
			mdc = dc
		}
		if dr > mdr {
			mdr = dr
		}
		for _, ch := range nd.Children {
			if ch != octree.NoChild {
				walk(ch, bad, mdc, mdr)
			}
		}
	}
	walk(atoms.Root(), false, 0, 0)
	return c
}

// repairPhase repairs one phase's lists against the updated atoms tree.
// Rows follow the rowTree's CURRENT leaves: rows whose leaf survived
// reuse their certificate, rows for new leaves (materializations,
// splits) classify fresh, rows for dead leaves drop. A surviving row is
// certified clean iff every cached entry is still reachable, no visited
// path changed structure, and every opening test's recorded slack
// dominates the drift of ITS operands: for the test that admitted entry
// e, the entry's own dc[e] + mac·dr[e]; for the internal tests on e's
// root path, the path minimum slack (FarPath/NearPath/…) against the
// ancestor drift maxima upDc[e] + mac·upDr[e] — each plus the row
// cluster's own drift when the rows are atom leaves (E_pol; Born rows
// are static q-point leaves). Keeping the internal certificate per entry
// matters as much as the per-entry own-test margins: one hot node (a
// leaf that lost an atom drifts by its cell size) sits on only a few
// entries' paths, and only those entries' rows need recomputing. It
// returns the repaired lists and the number of rows recomputed.
//
// Under an opening-multiplier ladder (pmax > 0) the certificate is
// unchanged: all drift scaling keeps the BASE multiplier mac = macs[0],
// the largest rung, which upper-bounds how much any rung's test operand
// (r_a+r_b)·macs[k] can move — conservative for k ≥ 1 — while the
// margins themselves were recorded against the nearest reclassification
// boundary of each entry's admitted order (classify), so a certified
// row's FarOrd annotations are exactly what a fresh classification would
// emit.
func repairPhase(atoms, rowTree *octree.Tree, il *InteractionLists, cert *repairCert, mac float64, pmax, deg int, leafFirst, symmetrize bool, pool *sched.Pool) (*InteractionLists, int) {
	macs := macLadder(mac, pmax, deg)
	oldIdx := make([]int32, len(rowTree.Nodes))
	for i := range oldIdx {
		oldIdx[i] = -1
	}
	for i, r := range il.Rows {
		oldIdx[r] = int32(i)
	}

	rows := rowTree.Leaves()
	per := make([]rowLists, len(rows))
	var dirtyRows []int32
	repaired := 0
	for k, r := range rows {
		i := int32(-1)
		if int(r) < len(oldIdx) {
			i = oldIdx[r]
		}
		redo := i < 0 // new leaf: no cached row
		var drow float64
		if !redo && leafFirst {
			drow = cert.dc[r] + mac*cert.dr[r]
		}
		// Reconstruct the row's pre-symmetrization near list — the cached
		// near entries plus the mutual pairs symmetrization moved to Sym
		// or ceded to a partner row — merged back into classification
		// visit order, each with its stored path certificate. (Surviving
		// nodes keep their relative pre-order under materializations,
		// prunes and splits, and any structural change on a visited path
		// forces a redo, so dfs order reproduces the compile emission
		// order exactly.)
		var pn []int32
		var pnP []float64
		if !redo {
			near := il.Near[il.NearOff[i]:il.NearOff[i+1]]
			if !symmetrize {
				pn, pnP = near, il.NearPath[il.NearOff[i]:il.NearOff[i+1]]
			} else {
				sym := il.Sym[il.SymOff[i]:il.SymOff[i+1]]
				cede := il.Cede[il.CedeOff[i]:il.CedeOff[i+1]]
				pn = make([]int32, 0, len(near)+len(sym)+len(cede))
				pnP = make([]float64, 0, cap(pn))
				pn = append(append(append(pn, near...), sym...), cede...)
				pnP = append(pnP, il.NearPath[il.NearOff[i]:il.NearOff[i+1]]...)
				pnP = append(pnP, il.SymPath[il.SymOff[i]:il.SymOff[i+1]]...)
				pnP = append(pnP, il.CedePath[il.CedeOff[i]:il.CedeOff[i+1]]...)
				ord := make([]int32, len(pn))
				for x := range ord {
					ord[x] = int32(x)
				}
				slices.SortFunc(ord, func(a, b int32) int {
					return int(cert.dfsIdx[pn[a]]) - int(cert.dfsIdx[pn[b]])
				})
				spn := make([]int32, len(pn))
				spnP := make([]float64, len(pn))
				for x, o := range ord {
					spn[x], spnP[x] = pn[o], pnP[o]
				}
				pn, pnP = spn, spnP
			}
		}
		if !redo {
			for fi := il.FarOff[i]; fi < il.FarOff[i+1]; fi++ {
				e := il.Far[fi]
				if !cert.reached[e] || cert.pathBad[e] ||
					il.FarMargin[fi] <= drow+cert.dc[e]+mac*cert.dr[e]+repairSlop ||
					il.FarPath[fi] <= drow+cert.upDc[e]+mac*cert.upDr[e]+repairSlop {
					redo = true
					break
				}
			}
		}
		if !redo {
			for x, e := range pn {
				if !cert.reached[e] || cert.pathBad[e] ||
					pnP[x] <= drow+cert.upDc[e]+mac*cert.upDr[e]+repairSlop {
					redo = true
					break
				}
				// Born near leaves were admitted by a failed far test of
				// their own; E_pol's leaf-first near entries were never
				// tested (NearMargin nil) and need only the path checks.
				if il.NearMargin != nil &&
					il.NearMargin[il.NearOff[i]+int32(x)] <= drow+cert.dc[e]+mac*cert.dr[e]+repairSlop {
					redo = true
					break
				}
			}
		}
		if redo {
			dirtyRows = append(dirtyRows, int32(k))
			repaired++
			continue
		}
		// Certified clean: the cached entries are exactly what a fresh
		// classification would produce. Every margin decays by the drift
		// bound its test was certified under — a lower bound on the true
		// slack from here on; once one dips under the next drift the row
		// recomputes and refreshes them all.
		farM := make([]float64, il.FarOff[i+1]-il.FarOff[i])
		farP := make([]float64, len(farM))
		for x := range farM {
			fi := il.FarOff[i] + int32(x)
			e := il.Far[fi]
			farM[x] = il.FarMargin[fi] - (drow + cert.dc[e] + mac*cert.dr[e])
			farP[x] = il.FarPath[fi] - (drow + cert.upDc[e] + mac*cert.upDr[e])
		}
		nearP := make([]float64, len(pn))
		for x, e := range pn {
			nearP[x] = pnP[x] - (drow + cert.upDc[e] + mac*cert.upDr[e])
		}
		var nearM []float64
		if il.NearMargin != nil {
			nearM = make([]float64, len(pn))
			for x, e := range pn {
				nearM[x] = il.NearMargin[il.NearOff[i]+int32(x)] - (drow + cert.dc[e] + mac*cert.dr[e])
			}
		}
		var farO []uint8
		if il.FarOrd != nil {
			farO = il.FarOrd[il.FarOff[i]:il.FarOff[i+1]]
		}
		per[k] = rowLists{
			far:   il.Far[il.FarOff[i]:il.FarOff[i+1]],
			near:  pn,
			farM:  farM,
			farP:  farP,
			nearM: nearM,
			nearP: nearP,
			farO:  farO,
		}
	}
	recompute := func(j int) {
		k := dirtyRows[j]
		per[k] = rowLists{}
		rn := &rowTree.Nodes[rows[k]]
		classify(atoms, atoms.Root(), rn.Center, rn.Radius, &macs, pmax, leafFirst, math.Inf(1), &per[k])
	}
	if pool == nil || len(dirtyRows) < 16 {
		for j := range dirtyRows {
			recompute(j)
		}
	} else {
		grain := len(dirtyRows)/(8*pool.NumWorkers()) + 1
		sched.ParallelFor(pool, len(dirtyRows), grain, func(lo, hi, _ int) {
			for j := lo; j < hi; j++ {
				recompute(j)
			}
		})
	}
	if symmetrize {
		symmetrizeNear(rowTree, rows, per)
	}
	return assembleLists(rows, per), repaired
}
