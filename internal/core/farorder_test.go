package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"gbpolar/internal/obs"
)

// The opening-criterion ladder: slot 0 must be the base multiplier
// EXACTLY (the FarOrder=0 bit-identity hinges on it), slot 1 stays
// pinned at the base (the centroid already cancels the dipole, so a
// dipole-only rung buys accuracy, not admission), and slot 2 must
// loosen while spending exactly the base criterion's certified
// worst-case tail.
func TestMACLadder(t *testing.T) {
	// binom(k+m−1, k): the Gegenbauer coefficient bound for an |x|^−m
	// kernel, recomputed independently of macLadder's recurrence.
	coeff := func(k, m int) float64 {
		a := 1.0
		for i := 1; i <= k; i++ {
			a *= float64(i+m-1) / float64(i)
		}
		return a
	}
	tailSum := func(tv float64, p, m int) float64 {
		s := math.Pow(1-tv, -float64(m))
		for k := 0; k <= p; k++ {
			s -= coeff(k, m) * math.Pow(tv, float64(k))
		}
		return s
	}
	for _, m := range []int{1, 4, 6} {
		for _, mac0 := range []float64{1.05, 1.5, 2.0, 5.0, 20.0} {
			macs := macLadder(mac0, maxFarOrder, m)
			if macs[0] != mac0 {
				t.Fatalf("m=%d mac0=%g: slot 0 is %g, must be the base multiplier exactly", m, mac0, macs[0])
			}
			if macs[1] != mac0 {
				t.Errorf("m=%d mac0=%g: slot 1 is %g, must stay pinned at the base", m, mac0, macs[1])
			}
			t0 := 1 / mac0
			b := tailSum(t0, 0, m)
			if macs[2] >= mac0 {
				t.Errorf("m=%d mac0=%g: rung 2 (%g) does not loosen the base (%g)", m, mac0, macs[2], mac0)
			}
			if macs[2] <= 1 {
				t.Errorf("m=%d mac0=%g: rung 2 is %g, must stay above 1", m, mac0, macs[2])
			}
			// The rung solves "neglected tail at order 2 == the base
			// criterion's certified tail" to bisection precision.
			if g := tailSum(1/macs[2], 2, m) - b; math.Abs(g) > 1e-9*(1+b) {
				t.Errorf("m=%d mac0=%g rung 2: residual %g", m, mac0, g)
			}
		}
	}
	// A steeper kernel must loosen LESS at the same base (its neglected
	// coefficients grow faster).
	c1, c6 := macLadder(2, maxFarOrder, 1), macLadder(2, maxFarOrder, 6)
	if c6[2] <= c1[2] {
		t.Errorf("rung 2: degree-6 multiplier %g not above degree-1's %g", c6[2], c1[2])
	}
	// ε→0 is expressed as an infinite multiplier ("never far"); the
	// ladder must propagate it rather than divide by it.
	inf := macLadder(math.Inf(1), maxFarOrder, 6)
	for p, m := range inf {
		if !math.IsInf(m, 1) {
			t.Errorf("infinite base: rung %d is %g", p, m)
		}
	}
	// pmax=0 keeps every slot at the base, and so does degree 0 — the
	// flat ladder of the E_pol phase, whose Coulomb-limit corrections
	// must not buy admission (farorder.go).
	for _, flat := range [][maxFarOrder + 1]float64{macLadder(1.3, 0, 6), macLadder(1.3, maxFarOrder, 0)} {
		for p, m := range flat {
			if m != 1.3 {
				t.Errorf("flat ladder: slot %d is %g, want base", p, m)
			}
		}
	}
}

func farOrderParams(order int, eps float64) Params {
	p := DefaultParams()
	p.FarOrder = order
	if eps > 0 {
		p.EpsBorn, p.EpsEpol = eps, eps
	}
	return p
}

// At FarOrder 1 and 2 the compiled batch kernels must still reproduce
// the recursive reference traversals (both paths admit by the same
// ladder and add the same moment corrections, so they agree to
// summation-order noise like the order-0 suite).
func TestFarOrderCompiledMatchesRecursive(t *testing.T) {
	for _, order := range []int{1, 2} {
		for _, kern := range []BornKernel{R6, R4} {
			for _, eps := range []float64{0.5, 1.5} {
				t.Run(fmt.Sprintf("p%d/%v/eps=%g", order, kern, eps), func(t *testing.T) {
					p := farOrderParams(order, eps)
					p.Kernel = kern
					sys, _, _ := testSystem(t, 260, 97, p)
					compareCompiledRecursive(t, sys, 1e-12)
				})
			}
		}
	}
}

// FarOrder=0 must not grow any per-entry order metadata: the admitted
// orders array stays nil so the hot loops take the moment-free path.
func TestFarOrderZeroCompilesNoOrders(t *testing.T) {
	sys, _, _ := testSystem(t, 200, 98, DefaultParams())
	lists := sys.Lists(nil)
	if lists.Born.FarOrd != nil || lists.Epol.FarOrd != nil {
		t.Fatal("FarOrder=0 compiled non-nil FarOrd")
	}
	sys2, _, _ := testSystem(t, 200, 98, farOrderParams(2, 0))
	lists2 := sys2.Lists(nil)
	if lists2.Born.FarOrd == nil || lists2.Epol.FarOrd == nil {
		t.Fatal("FarOrder=2 compiled nil FarOrd")
	}
	if len(lists2.Born.FarOrd) != len(lists2.Born.Far) || len(lists2.Epol.FarOrd) != len(lists2.Epol.Far) {
		t.Fatal("FarOrd not parallel to Far")
	}
}

// The point of the ladder: at equal ε, FarOrder=2 must consolidate the
// far field — admit interactions higher in the tree, for MATERIALLY
// fewer far entries — while the moment corrections keep the measured
// energy error at or below the order-0 level (the rung spends the base
// criterion's certified worst-case budget, and order 0 additionally
// enjoys the centroid's dipole cancellation, which the corrections
// capture exactly). The reference is a quasi-exact run (ε=1e-12 never
// fires the far field).
func TestFarOrderEqualErrorFewerEntries(t *testing.T) {
	if testing.Short() {
		t.Skip("needs the quasi-exact reference run")
	}
	const eps = 0.5
	ref, _, _ := testSystem(t, 600, 99, farOrderParams(0, 1e-12))
	exact, err := RunShared(ref, SharedOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	var errs [2]float64
	var far [2]int
	for i, order := range []int{0, 2} {
		sys, _, _ := testSystem(t, 600, 99, farOrderParams(order, eps))
		res, err := RunShared(sys, SharedOptions{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		errs[i] = relErr(res.Epol, exact.Epol)
		lists := sys.Lists(nil)
		far[i] = lists.Born.NumFar() + lists.Epol.NumFar()
	}
	if far[1] > far[0]*3/4 {
		t.Errorf("FarOrder=2 far entries %d not ≥25%% below order-0's %d", far[1], far[0])
	}
	if errs[1] > errs[0] {
		t.Errorf("FarOrder=2 error %.3g vs order-0 %.3g — corrections not holding equal error", errs[1], errs[0])
	}
}

// Every precision tier must stay inside its accuracy class with the
// moment corrections active (both fast tiers sit in the paper's
// approximate-math ~1e-4 class relative to the exact tier).
func TestFarOrderPrecisionTiers(t *testing.T) {
	base := farOrderParams(2, 0.5)
	sysE, _, _ := testSystem(t, 400, 101, base)
	want, err := RunShared(sysE, SharedOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		tier Precision
		tol  float64
	}{
		{PrecisionLanes, 1e-4},
		{PrecisionF32, 1e-4},
	} {
		p := base
		p.Precision = tc.tier
		sys, _, _ := testSystem(t, 400, 101, p)
		res, err := RunShared(sys, SharedOptions{Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(res.Epol, want.Epol); e > tc.tol {
			t.Errorf("%v: Epol %v vs exact tier %v (rel %.3g > %.3g)", tc.tier, res.Epol, want.Epol, e, tc.tol)
		}
	}
}

// Repair under FarOrder=2: after a jiggle the patched lists — admitted
// orders included — must be byte-for-byte what a fresh compile over the
// moved geometry produces. This is the certificate-soundness pin for
// the ladder (drift margins are measured against the nearest ORDER
// boundary, so a stale order byte would be caught here).
func TestFarOrderRepairByteIdentical(t *testing.T) {
	p := mortonParams()
	p.FarOrder = 2
	sys, mol, _ := testSystem(t, 500, 103, p)
	sys.Lists(nil)
	rng := rand.New(rand.NewSource(104))
	pos := mol.Positions()
	repairs := 0
	for step := 0; step < 6; step++ {
		pos = jigglePositions(rng, pos, 0.03)
		stats, err := sys.UpdateAtomsRepair(pos, nil, obs.New())
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if stats.Repaired {
			repairs++
		}
		if err := sys.RecheckLists(nil); err != nil {
			t.Fatalf("step %d: repaired lists diverge from fresh compile: %v", step, err)
		}
	}
	if repairs == 0 {
		t.Fatal("no step repaired the lists; test exercised nothing")
	}
}

// A FarOrder=2 snapshot round-trips with its admitted orders intact.
func TestFarOrderSnapshotRoundTrip(t *testing.T) {
	sys, _, _ := testSystem(t, 200, 105, farOrderParams(2, 0.5))
	sys.Lists(nil)
	data, err := EncodeSnapshot(sys)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Params.FarOrder != 2 {
		t.Fatalf("FarOrder restored as %d", got.Params.FarOrder)
	}
	if err := got.RecheckLists(nil); err != nil {
		t.Fatalf("decoded lists differ from a fresh compile: %v", err)
	}
	want, err := RunShared(sys, SharedOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunShared(got, SharedOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epol != want.Epol {
		t.Fatalf("E_pol drifted through the snapshot: %.17g vs %.17g", res.Epol, want.Epol)
	}
}
