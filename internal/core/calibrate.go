package core

import (
	"math"
	"sync"
	"time"
)

// CalibratedOpsPerSecond measures (once per process) how many f_GB-style
// kernel evaluations one core of the host sustains. The modeled virtual
// clock divides per-rank work counts by this rate, so modeled times are
// in host-calibrated seconds.
func CalibratedOpsPerSecond() float64 {
	calibrateOnce.Do(func() {
		const n = 2_000_000
		r2, ri, rj := 9.0, 1.7, 2.1
		var sink float64
		start := time.Now()
		for i := 0; i < n; i++ {
			rr := ri * rj
			sink += 1 / math.Sqrt(r2+rr*math.Exp(-r2/(4*rr)))
			r2 += 1e-7
		}
		elapsed := time.Since(start).Seconds()
		if sink == 0 || elapsed <= 0 { // keep the loop alive
			calibratedRate = 100e6
			return
		}
		calibratedRate = n / elapsed
	})
	return calibratedRate
}

var (
	calibrateOnce  sync.Once
	calibratedRate float64
)
