package core

import (
	"math"

	"gbpolar/internal/gbmodels"
	"gbpolar/internal/geom"
	"gbpolar/internal/mathx"
	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

// This file adds polarization forces — the gradient ∂E_pol/∂x_i — under
// the RIGID-CAVITY approximation: the sampled molecular surface (and
// hence the dielectric boundary) is held fixed while atoms move. That is
// the quantity needed for the paper's stated future work ("high
// performance MD simulations", Section VI) in the common setting where
// the boundary is rebuilt every few steps: between rebuilds, forces come
// from exactly this gradient. The gradient is exact for the energy
// function E(x; S) with S fixed — the finite-difference tests verify it
// to machine-ish precision — but it omits the surface-motion term
// ∂E/∂S·∂S/∂x.
//
// Two coupling paths contribute:
//
//  1. the direct pair term of Eq. 2 at fixed Born radii,
//     ∂/∂x_i [ −τ q_i q_j / f_GB(r_ij) ];
//  2. the Born-radius chain: R_i depends on x_i through the surface
//     integral s_i of Eq. 4; ∂E/∂R_i · dR_i/ds_i · ∂s_i/∂x_i.

// GradientResult bundles the naive-gradient outputs.
type GradientResult struct {
	// Epol is the energy at the evaluation point.
	Epol float64
	// Grad is ∂E_pol/∂x per atom (kcal/mol/Å), original atom order.
	Grad []geom.Vec3
	// BornRadii are the effective radii used.
	BornRadii []float64
	// Clamped marks atoms whose Born radius sat on a clamp (vdW floor or
	// burial ceiling), where dR/ds is zero and the gradient ignores the
	// radius chain.
	Clamped []bool
}

// NaiveGradient evaluates E_pol and its exact rigid-cavity gradient by
// direct summation — Θ(M·N + M²), the reference for octree-accelerated
// force evaluation and for MD/minimization use at small sizes.
func NaiveGradient(mol *molecule.Molecule, surf *surface.Surface, epsSolv float64, mode mathx.Mode) *GradientResult {
	k := mathx.ForMode(mode)
	M := mol.NumAtoms()
	tau := gbmodels.Tau(epsSolv)

	// Surface integrals s_i and their position derivatives ∂s_i/∂x_i.
	s := make([]float64, M)
	dsdx := make([]geom.Vec3, M)
	for i, a := range mol.Atoms {
		var si float64
		var di geom.Vec3
		for _, q := range surf.Points {
			d := q.Pos.Sub(a.Pos) // d = p_q − x_i
			r2 := d.Norm2()
			if r2 == 0 {
				continue
			}
			r6 := r2 * r2 * r2
			wn := q.Normal.Scale(q.Weight)
			si += wn.Dot(d) / r6
			// ∂/∂x_i [ wn·(p−x)/|p−x|⁶ ] = −wn/r⁶ + 6 (wn·d)·d/r⁸.
			di = di.Add(wn.Scale(-1 / r6)).Add(d.Scale(6 * wn.Dot(d) / (r6 * r2)))
		}
		s[i] = si
		dsdx[i] = di
	}

	// Born radii with clamp bookkeeping, plus dR/ds on the smooth branch:
	// R = (s/4π)^{-1/3} ⇒ dR/ds = −R/(3s).
	radii := make([]float64, M)
	clamped := make([]bool, M)
	dRds := make([]float64, M)
	for i := range radii {
		radii[i] = bornFromIntegral(s[i], mol.Atoms[i].Radius, k)
		vdw := mol.Atoms[i].Radius
		if s[i] <= 0 || radii[i] <= vdw || radii[i] >= maxBornFactor*vdw {
			clamped[i] = true
			continue
		}
		dRds[i] = -radii[i] / (3 * s[i])
	}

	// Pair sums: energy, direct force, and ∂E/∂R_i accumulators.
	grad := make([]geom.Vec3, M)
	dEdR := make([]float64, M)
	var eSum float64
	for i := 0; i < M; i++ {
		qi := mol.Atoms[i].Charge
		// Self term: E_ii = −τ/2·q²/R_i ⇒ ∂E_ii/∂R_i = +τ/2·q²/R².
		eSum += qi * qi / radii[i]
		dEdR[i] += 0.5 * tau * qi * qi / (radii[i] * radii[i])
		for j := i + 1; j < M; j++ {
			d := mol.Atoms[i].Pos.Sub(mol.Atoms[j].Pos)
			r2 := d.Norm2()
			rr := radii[i] * radii[j]
			ex := math.Exp(-r2 / (4 * rr))
			f2 := r2 + rr*ex
			f := math.Sqrt(f2)
			qq := qi * mol.Atoms[j].Charge
			eSum += 2 * qq / f

			// E_ij(total, both orders) = −τ·qq/f.
			// ∂f²/∂r² = 1 − ex/4; ∂E/∂r² = τ·qq/(2f³)·∂f²/∂r².
			dEdr2 := tau * qq / (2 * f2 * f) * (1 - ex/4)
			g := d.Scale(2 * dEdr2) // ∂r²/∂x_i = 2d
			grad[i] = grad[i].Add(g)
			grad[j] = grad[j].Sub(g)

			// ∂f²/∂R_i = ex·(R_j + r²/(4R_i)).
			dEdR[i] += tau * qq / (2 * f2 * f) * ex * (radii[j] + r2/(4*radii[i]))
			dEdR[j] += tau * qq / (2 * f2 * f) * ex * (radii[i] + r2/(4*radii[j]))
		}
	}

	// Radius chain: ∂E/∂x_i += ∂E/∂R_i · dR_i/ds_i · ∂s_i/∂x_i.
	for i := range grad {
		if clamped[i] {
			continue
		}
		grad[i] = grad[i].Add(dsdx[i].Scale(dEdR[i] * dRds[i]))
	}

	return &GradientResult{
		Epol:      -0.5 * tau * eSum,
		Grad:      grad,
		BornRadii: radii,
		Clamped:   clamped,
	}
}

// EpolAtFixedSurface recomputes the rigid-cavity energy for displaced
// positions (Born radii re-derived from the fixed surface) — the exact
// function NaiveGradient differentiates. Used by the finite-difference
// tests and by minimizers.
func EpolAtFixedSurface(mol *molecule.Molecule, surf *surface.Surface, epsSolv float64) float64 {
	radii := NaiveBornRadii(mol, surf, mathx.Exact)
	return NaiveEpol(mol, radii, epsSolv, mathx.Exact)
}
