package core

import (
	"fmt"
	"slices"
	"testing"
)

// rowEntries collects one row's far/near/sym entry sets, sorted so the
// comparison is insensitive to entry order within a row.
type rowEntries struct {
	far, near, sym []int32
}

// listRowSets indexes an InteractionLists by row id. Row ORDER between
// two builds is irrelevant to evaluation (each row is independent), so
// equivalence is asserted on the id→entries mapping, not on row layout.
func listRowSets(t *testing.T, il *InteractionLists) map[int32]rowEntries {
	t.Helper()
	out := make(map[int32]rowEntries, len(il.Rows))
	for i, row := range il.Rows {
		if _, dup := out[row]; dup {
			t.Fatalf("row %d appears twice", row)
		}
		re := rowEntries{
			far:  slices.Clone(il.Far[il.FarOff[i]:il.FarOff[i+1]]),
			near: slices.Clone(il.Near[il.NearOff[i]:il.NearOff[i+1]]),
		}
		if il.SymOff != nil {
			re.sym = slices.Clone(il.Sym[il.SymOff[i]:il.SymOff[i+1]])
		}
		slices.Sort(re.far)
		slices.Sort(re.near)
		slices.Sort(re.sym)
		out[row] = re
	}
	return out
}

// diffRowSets asserts two builds compiled the same decomposition: the
// same row set, and per row the same far set and the same evaluated
// near set. Near entries may migrate between Near and Sym when row
// iteration order differs (symmetrizeNear credits the mutual pair to
// whichever row comes first), so near and sym are compared as a union.
func diffRowSets(phase string, a, b map[int32]rowEntries) error {
	if len(a) != len(b) {
		return fmt.Errorf("%s: %d rows vs %d rows", phase, len(a), len(b))
	}
	for row, ra := range a {
		rb, ok := b[row]
		if !ok {
			return fmt.Errorf("%s: row %d missing from second build", phase, row)
		}
		if !slices.Equal(ra.far, rb.far) {
			return fmt.Errorf("%s row %d: far sets differ: %v vs %v", phase, row, ra.far, rb.far)
		}
		na := append(slices.Clone(ra.near), ra.sym...)
		nb := append(slices.Clone(rb.near), rb.sym...)
		slices.Sort(na)
		slices.Sort(nb)
		if !slices.Equal(na, nb) {
			return fmt.Errorf("%s row %d: near sets differ: %v vs %v", phase, row, na, nb)
		}
	}
	return nil
}

// TestBuilderEquivalence is the end-to-end half of the Morton/recursive
// equivalence property (the structural half lives in internal/octree):
// over the full pipeline, both builders must compile equivalent
// interaction lists — identical row sets with identical per-row far and
// near classifications — and produce energies that agree to summation
// noise, with every evaluation re-verified against a fresh compile
// (DebugCheckLists).
func TestBuilderEquivalence(t *testing.T) {
	for _, n := range []int{60, 500} {
		seed := int64(230 + n)
		rec, mol, surf := testSystem(t, n, seed, DefaultParams())
		mor, err := NewSystem(mol, surf, mortonParams())
		if err != nil {
			t.Fatal(err)
		}
		rec.Params.DebugCheckLists = true
		mor.Params.DebugCheckLists = true

		rl, ml := rec.Lists(nil), mor.Lists(nil)
		if err := diffRowSets("born", listRowSets(t, rl.Born), listRowSets(t, ml.Born)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := diffRowSets("epol", listRowSets(t, rl.Epol), listRowSets(t, ml.Epol)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}

		er, err := RunShared(rec, SharedOptions{Threads: 2})
		if err != nil {
			t.Fatalf("n=%d recursive: %v", n, err)
		}
		em, err := RunShared(mor, SharedOptions{Threads: 2})
		if err != nil {
			t.Fatalf("n=%d morton: %v", n, err)
		}
		if relErr(em.Epol, er.Epol) > 1e-12 {
			t.Errorf("n=%d: morton energy %v vs recursive %v (rel err %g)",
				n, em.Epol, er.Epol, relErr(em.Epol, er.Epol))
		}
		if err := mor.RecheckLists(nil); err != nil {
			t.Errorf("n=%d: morton lists diverge from fresh compile: %v", n, err)
		}
	}
}
