package core

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"gbpolar/internal/geom"
	"gbpolar/internal/mathx"
)

// restamp recomputes the CRC trailer after a deliberate patch, so table
// tests can reach the checks BEHIND the checksum.
func restamp(b []byte) []byte {
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.Checksum(b[:len(b)-4], crc32.MakeTable(crc32.Castagnoli)))
	return b
}

func snapshotFixture(t testing.TB, withLists bool) (*System, []byte) {
	t.Helper()
	sys, _, _ := testSystem(t, 150, 7, DefaultParams())
	if withLists {
		sys.Lists(nil)
	}
	data, err := EncodeSnapshot(sys)
	if err != nil {
		t.Fatal(err)
	}
	return sys, data
}

// A snapshot round-trips to a System that computes the bit-identical
// energy — and when lists were compiled, they come back verbatim (pinned
// by RecheckLists, which recompiles from geometry and diffs).
func TestSnapshotRoundTrip(t *testing.T) {
	sys, data := snapshotFixture(t, true)
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.lists == nil {
		t.Fatal("decoded snapshot lost the compiled lists")
	}
	if err := got.RecheckLists(nil); err != nil {
		t.Fatalf("decoded lists differ from a fresh compile: %v", err)
	}
	want, err := RunShared(sys, SharedOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunShared(got, SharedOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epol != want.Epol {
		t.Fatalf("E_pol drifted through the snapshot: %.17g vs %.17g", res.Epol, want.Epol)
	}
	for i := range want.BornRadii {
		if res.BornRadii[i] != want.BornRadii[i] {
			t.Fatalf("Born radius %d drifted: %.17g vs %.17g", i, res.BornRadii[i], want.BornRadii[i])
		}
	}
}

// Without compiled lists the snapshot still restores the trees and
// payloads; the first Compute call recompiles lists as usual.
func TestSnapshotRoundTripNoLists(t *testing.T) {
	sys, data := snapshotFixture(t, false)
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.lists != nil {
		t.Fatal("snapshot without lists decoded with lists")
	}
	if got.Atoms.NumPoints() != sys.Atoms.NumPoints() || got.QPts.NumPoints() != sys.QPts.NumPoints() {
		t.Fatalf("tree sizes drifted: %d/%d vs %d/%d",
			got.Atoms.NumPoints(), got.QPts.NumPoints(), sys.Atoms.NumPoints(), sys.QPts.NumPoints())
	}
}

// A snapshot of a re-posed system is refused: the trees no longer match
// the stored molecule, so a restore would silently revert the pose.
func TestSnapshotRefusesTransformedSystem(t *testing.T) {
	sys, _, _ := testSystem(t, 80, 3, DefaultParams())
	sys.ApplyRigidTransform(geom.Translate(geom.Vec3{X: 1, Y: 2, Z: 3}))
	if _, err := EncodeSnapshot(sys); err == nil {
		t.Fatal("EncodeSnapshot accepted a re-posed system")
	}
}

// Every malformed input fails with the right sentinel and never panics.
func TestSnapshotCorruptions(t *testing.T) {
	_, data := snapshotFixture(t, true)
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrSnapshotCorrupt},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrSnapshotCorrupt},
		{"truncated header", func(b []byte) []byte { return b[:10] }, ErrSnapshotCorrupt},
		{"truncated half", func(b []byte) []byte { return b[:len(b)/2] }, ErrSnapshotCorrupt},
		{"truncated tail", func(b []byte) []byte { return b[:len(b)-5] }, ErrSnapshotCorrupt},
		{"bit flip", func(b []byte) []byte { b[len(b)/3] ^= 0x10; return b }, ErrSnapshotCorrupt},
		{"crc flip", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, ErrSnapshotCorrupt},
		{"future version", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[8:10], 99)
			return restamp(b)
		}, ErrSnapshotVersion},
		// No restamp on purpose: the version gate must fire before the
		// CRC check, so a genuine version-1 file (whose layout this build
		// cannot parse) reports "unsupported", not "corrupt".
		{"old version", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[8:10], 1)
			return b
		}, ErrSnapshotVersion},
		{"stamp mismatch", func(b []byte) []byte {
			b[10] ^= 0xff // first byte of the u64 parameter stamp
			return restamp(b)
		}, ErrSnapshotParams},
		{"param out of range", func(b []byte) []byte {
			// Math mode byte (after magic+version+stamp+3 float64 params).
			b[8+2+8+24] = 7
			return restamp(b)
		}, ErrSnapshotCorrupt},
		{"trailing garbage", func(b []byte) []byte {
			b = append(b[:len(b)-4], 0xde, 0xad, 0xbe, 0xef)
			b = append(b, 0, 0, 0, 0)
			return restamp(b)
		}, ErrSnapshotCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := append([]byte(nil), data...)
			_, err := DecodeSnapshot(tc.mut(buf))
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// Corruptions specific to the far-order additions: a truncated moment
// array inside an octree block, and an out-of-range admitted order in a
// list block. Both must fail with ErrSnapshotCorrupt, never panic the
// kernels or RecordMetrics downstream.
func TestSnapshotFarFieldCorruptions(t *testing.T) {
	t.Run("truncated moments", func(t *testing.T) {
		// Without a list block the stream ends ...qptsTree Bool(false) CRC.
		// The q-points tree's moment registry is the tail of its block, and
		// the very last array is qFlat of channel 2 of the "wn" set
		// (6*nNodes float64s behind a u32 count). Shrink the count: the
		// codec's length validation must reject the set.
		sys, data := snapshotFixture(t, false)
		nq := sys.QPts.NumNodes()
		cnt := len(data) - 4 - 1 - 6*nq*8 - 4
		if got := binary.LittleEndian.Uint32(data[cnt:]); got != uint32(6*nq) {
			t.Fatalf("expected qFlat count %d at offset %d, found %d (layout drifted?)", 6*nq, cnt, got)
		}
		binary.LittleEndian.PutUint32(data[cnt:], uint32(6*nq-6))
		if _, err := DecodeSnapshot(restamp(data)); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("got %v, want ErrSnapshotCorrupt", err)
		}
	})
	t.Run("far order out of range", func(t *testing.T) {
		p := DefaultParams()
		p.FarOrder = 2
		sys, _, _ := testSystem(t, 150, 7, p)
		lists := sys.Lists(nil)
		if len(lists.Epol.FarOrd) == 0 {
			t.Fatal("fixture compiled no far orders")
		}
		data, err := EncodeSnapshot(sys)
		if err != nil {
			t.Fatal(err)
		}
		// The epol list's FarOrd bytes sit right before the nodeC/nodeR
		// geometry arrays at the end of the list block.
		na := sys.Atoms.NumNodes()
		last := len(data) - 4 - (4 + na*8) - (4 + 3*na*8) - 1
		if got := data[last]; got > maxFarOrder {
			t.Fatalf("expected a FarOrd byte at offset %d, found %d (layout drifted?)", last, got)
		}
		data[last] = maxFarOrder + 7
		if _, err := DecodeSnapshot(restamp(data)); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("got %v, want ErrSnapshotCorrupt", err)
		}
	})
}

// Save/Load round-trips through a file; loading under different
// parameters is refused with ErrSnapshotParams.
func TestSnapshotSaveLoadParams(t *testing.T) {
	sys, _, _ := testSystem(t, 100, 11, DefaultParams())
	path := filepath.Join(t.TempDir(), "ckpt.gbpsnap")
	if err := SaveSnapshot(path, sys); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path, sys.Params); err != nil {
		t.Fatalf("load with matching params: %v", err)
	}
	other := DefaultParams()
	other.EpsBorn = 0.5
	if _, err := LoadSnapshot(path, other); !errors.Is(err, ErrSnapshotParams) {
		t.Fatalf("load with different params: got %v, want ErrSnapshotParams", err)
	}
	// Parameters that default to the same values are the same run config.
	if _, err := LoadSnapshot(path, Params{}); err != nil {
		t.Fatalf("load with zero (defaulted) params: %v", err)
	}
	// A partial tmp file left by a killed writer is not the checkpoint.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind: %v", err)
	}
	// The worker/reload path takes the snapshot's own parameters verbatim
	// (the stamp still guards integrity; only the caller-side match is
	// skipped).
	got, err := LoadSnapshotAnyParams(path)
	if err != nil {
		t.Fatalf("LoadSnapshotAnyParams: %v", err)
	}
	if ParamsFingerprint(got.Params) != ParamsFingerprint(sys.Params) {
		t.Fatal("LoadSnapshotAnyParams restored different parameters")
	}
}

// The parameter fingerprint covers every result-determining knob and
// ignores the debug recheck toggle.
func TestParamsFingerprint(t *testing.T) {
	base := DefaultParams()
	if ParamsFingerprint(base) != ParamsFingerprint(Params{}) {
		t.Fatal("defaulted params fingerprint differently from explicit defaults")
	}
	dbg := base
	dbg.DebugCheckLists = true
	if ParamsFingerprint(dbg) != ParamsFingerprint(base) {
		t.Fatal("DebugCheckLists must not change the fingerprint")
	}
	muts := []func(*Params){
		func(p *Params) { p.EpsBorn = 0.5 },
		func(p *Params) { p.EpsEpol = 0.3 },
		func(p *Params) { p.EpsSolv = 40 },
		func(p *Params) { p.Math = mathx.Approximate },
		func(p *Params) { p.Kernel = R4 },
		func(p *Params) { p.StrictBornMAC = true },
		func(p *Params) { p.LeafCap = 16 },
		func(p *Params) { p.Precision = PrecisionLanes },
		func(p *Params) { p.FarOrder = 1 },
	}
	for i, mut := range muts {
		p := base
		mut(&p)
		if ParamsFingerprint(p) == ParamsFingerprint(base) {
			t.Fatalf("mutation %d not covered by the fingerprint", i)
		}
	}
}

// FuzzDecodeSnapshot pins the no-panic, no-overallocation property on
// arbitrary input. Run with `go test -fuzz=FuzzDecodeSnapshot` to
// explore; the seeds alone cover the interesting prefixes in CI.
func FuzzDecodeSnapshot(f *testing.F) {
	_, data := snapshotFixture(f, true)
	f.Add([]byte{})
	f.Add([]byte(snapshotMagic))
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add(data[:len(data)-4])
	trunc := append([]byte(nil), data[:40]...)
	f.Add(restamp(append(trunc, make([]byte, 4)...)))
	f.Fuzz(func(t *testing.T, b []byte) {
		sys, err := DecodeSnapshot(b)
		if err != nil {
			if sys != nil {
				t.Fatal("non-nil system alongside error")
			}
			return
		}
		if sys.Mol.NumAtoms() == 0 || sys.Surf.NumPoints() == 0 {
			t.Fatal("decoded system with empty inputs")
		}
	})
}
