package core

import (
	"testing"

	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

func TestDynamicMatchesStatic(t *testing.T) {
	sys, _, _ := testSystem(t, 500, 181, DefaultParams())
	static, err := RunDistributed(sys, distCfg(4, 1, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 2, 5, 8} {
		dyn, stats, err := RunDistributedDynamic(sys, distCfg(procs, 1, procs, 1))
		if err != nil {
			t.Fatalf("P=%d: %v", procs, err)
		}
		if relErr(dyn.Epol, static.Epol) > 1e-9 {
			t.Errorf("P=%d: dynamic E=%v static E=%v", procs, dyn.Epol, static.Epol)
		}
		if procs == 1 && stats.Steals != 0 {
			t.Errorf("P=1 stole %d times", stats.Steals)
		}
	}
}

func TestDynamicHybridRanks(t *testing.T) {
	sys, _, _ := testSystem(t, 400, 182, DefaultParams())
	static, err := RunDistributed(sys, distCfg(2, 2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	dyn, _, err := RunDistributedDynamic(sys, distCfg(2, 2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if relErr(dyn.Epol, static.Epol) > 1e-9 {
		t.Errorf("hybrid dynamic E=%v static E=%v", dyn.Epol, static.Epol)
	}
}

// imbalancedSystem builds a molecule whose leaf costs differ wildly
// between the first and second half of the leaf ordering: a dense ball
// next to a sparse cloud — static segments then load one rank far more
// than the others.
func imbalancedSystem(t *testing.T) *System {
	t.Helper()
	dense := molecule.GenProtein("dense", 2400, 183)
	sparse := molecule.GenCapsid("halo", 400, 60, 90, 184)
	mol := molecule.Merge("imbalanced", dense, sparse)
	surf, err := surface.ForMolecule(mol, surface.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(mol, surf, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestDynamicStealsOnImbalance(t *testing.T) {
	sys := imbalancedSystem(t)
	_, stats, err := RunDistributedDynamic(sys, distCfg(6, 1, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steals == 0 {
		t.Error("no inter-rank steals on an imbalanced workload")
	}
	if stats.LeavesMigrated == 0 {
		t.Error("no leaves migrated")
	}
}

func TestDynamicImprovesStragglerTime(t *testing.T) {
	// The scenario inter-node stealing targets: per-rank compute noise
	// (OS jitter, heterogeneous nodes). Static pays the slowest rank's
	// full segment; dynamic migrates the straggler's work.
	sys, _, _ := testSystem(t, 2500, 187, DefaultParams())
	var statSum, dynSum float64
	totalSteals := 0
	var eStatic, eDyn float64
	for _, seed := range []int64{42, 43, 44, 45, 46} {
		cfg := distCfg(6, 1, 6, 1)
		// Persistent per-rank slowdown: the heterogeneous-node straggler
		// scenario dynamic balancing targets. Deterministic per seed.
		cfg.HeteroSigma = 2.0
		cfg.Seed = seed
		static, err := RunDistributed(sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		dyn, stats, err := RunDistributedDynamic(sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		statSum += static.ModelSeconds
		dynSum += dyn.ModelSeconds
		totalSteals += stats.Steals
		eStatic, eDyn = static.Epol, dyn.Epol
	}
	if relErr(eDyn, eStatic) > 1e-9 {
		t.Fatalf("energy mismatch: %v vs %v", eDyn, eStatic)
	}
	if totalSteals == 0 {
		t.Fatal("no steals under heavy noise")
	}
	// Averaged over seeds, work stealing must absorb the stragglers.
	// (The Born phase stays static in both runners, so the total
	// improvement is bounded; observed ratios are ≈0.80–0.87.)
	if dynSum > 0.92*statSum {
		t.Errorf("dynamic mean %.5fs not clearly better than static mean %.5fs (steals=%d)",
			dynSum/5, statSum/5, totalSteals)
	}
}

func TestDynamicOverheadBoundedWhenBalanced(t *testing.T) {
	// On an already-balanced noiseless workload, the protocol must not
	// blow up the makespan (some shuffling overhead is acceptable).
	sys := imbalancedSystem(t)
	static, err := RunDistributed(sys, distCfg(6, 1, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	dyn, _, err := RunDistributedDynamic(sys, distCfg(6, 1, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if relErr(dyn.Epol, static.Epol) > 1e-9 {
		t.Fatalf("energy mismatch: %v vs %v", dyn.Epol, static.Epol)
	}
	if dyn.ModelSeconds > 1.4*static.ModelSeconds {
		t.Errorf("dynamic overhead too high: %.5fs vs static %.5fs",
			dyn.ModelSeconds, static.ModelSeconds)
	}
}

func TestDynamicDeterministicEnergy(t *testing.T) {
	sys, _, _ := testSystem(t, 300, 185, DefaultParams())
	a, _, err := RunDistributedDynamic(sys, distCfg(3, 1, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunDistributedDynamic(sys, distCfg(3, 1, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Steal interleavings vary, but every leaf is processed exactly once,
	// so the energy can differ only by floating-point summation order.
	if relErr(a.Epol, b.Epol) > 1e-9 {
		t.Errorf("energies differ across runs: %v vs %v", a.Epol, b.Epol)
	}
}

func TestDynamicManyRanksStress(t *testing.T) {
	// Termination-protocol stress: many ranks, tiny work.
	sys, _, _ := testSystem(t, 150, 186, DefaultParams())
	for round := 0; round < 3; round++ {
		res, _, err := RunDistributedDynamic(sys, distCfg(12, 1, 12, 1))
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.Epol >= 0 {
			t.Fatalf("round %d: energy %v", round, res.Epol)
		}
	}
}
