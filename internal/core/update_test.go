package core

import (
	"math/rand"
	"testing"

	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

func TestUpdateAtomsMatchesFreshSystem(t *testing.T) {
	mol := molecule.GenProtein("upd", 600, 191)
	surf, err := surface.ForMolecule(mol, surface.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(mol, surf, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}

	// Perturb positions like an MD step.
	rng := rand.New(rand.NewSource(192))
	newPos := mol.Positions()
	for i := range newPos {
		newPos[i] = newPos[i].Add(geom.V(
			rng.NormFloat64()*0.3, rng.NormFloat64()*0.3, rng.NormFloat64()*0.3))
	}
	if _, err := sys.UpdateAtoms(newPos); err != nil {
		t.Fatal(err)
	}
	if err := sys.Atoms.Validate(); err != nil {
		t.Fatal(err)
	}

	updated, err := RunShared(sys, SharedOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Reference: a fresh system over the moved molecule (same surface).
	movedMol := mol.Clone()
	for i := range movedMol.Atoms {
		movedMol.Atoms[i].Pos = newPos[i]
	}
	fresh, err := NewSystem(movedMol, surf, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunShared(fresh, SharedOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Cell partitions may differ (update preserves old boundaries), so
	// the ε-approximations differ slightly — but both are valid ε-bounded
	// answers and must agree to well within the approximation band.
	if relErr(updated.Epol, ref.Epol) > 0.02 {
		t.Errorf("updated-system energy %v vs fresh-system %v", updated.Epol, ref.Epol)
	}
}

func TestUpdateAtomsRepeated(t *testing.T) {
	mol := molecule.GenProtein("updr", 300, 193)
	surf, err := surface.ForMolecule(mol, surface.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(mol, surf, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(194))
	pos := mol.Positions()
	for step := 0; step < 10; step++ {
		for i := range pos {
			pos[i] = pos[i].Add(geom.V(
				rng.NormFloat64()*0.1, rng.NormFloat64()*0.1, rng.NormFloat64()*0.1))
		}
		if _, err := sys.UpdateAtoms(pos); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		res, err := RunShared(sys, SharedOptions{Threads: 2})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if res.Epol >= 0 {
			t.Fatalf("step %d: energy %v", step, res.Epol)
		}
	}
}

func TestUpdateAtomsBadLength(t *testing.T) {
	sys, _, _ := testSystem(t, 100, 195, DefaultParams())
	if _, err := sys.UpdateAtoms(make([]geom.Vec3, 50)); err == nil {
		t.Error("length mismatch accepted")
	}
}
