package core

import (
	"fmt"

	"gbpolar/internal/octree"
)

// This file addresses the paper's second Section VI future-work item:
// "Distributing data as well as computation is also an interesting
// approach to explore." Rather than rewrite the runners around
// partitioned octrees, it MEASURES what data distribution would cost and
// save: for the paper's node–node work division, each rank's traversals
// are replayed to record exactly which remote data they touch — the
// rank's Local Essential Tree (LET):
//
//   - owned atom leaves (its energy-phase segment) and owned q-point
//     leaves (its Born-phase segment);
//   - ghost atom leaves: remote leaves its near-field energy
//     interactions read atom-by-atom;
//   - ghost q-point leaves: remote q-leaves whose near-field the rank's
//     Born traversal evaluates exactly;
//   - node aggregates (far-field histograms / pseudo-q-points), which
//     are tiny and summarized by count.
//
// The resulting report gives the per-rank memory of a data-distributed
// implementation versus the full replication the paper (and this
// repository's runners) use — the quantitative answer to how much the
// future-work approach would save, and what ghost-exchange communication
// it would add.

// RankData is one rank's LET measurement.
type RankData struct {
	Rank int
	// OwnedAtoms and OwnedQPoints are the rank's partition sizes.
	OwnedAtoms, OwnedQPoints int
	// GhostAtoms counts remote atoms the rank's near-field energy
	// traversal reads; GhostQPoints likewise for the Born phase's
	// exact interactions with remote atom leaves' q-points... (q-ghosts
	// are q-points in the rank's Born segment interacting with REMOTE
	// atom leaves, which the owner of those atoms must receive).
	GhostAtoms int
	// Aggregates counts distinct far-field node summaries consumed
	// (each is O(M_ε) floats — negligible next to atom data).
	Aggregates int
	// LETBytes is the modeled per-rank resident size under data
	// distribution: owned + ghost atoms, owned q-points, aggregates and
	// the shared top of the tree.
	LETBytes int64
}

// DataDistReport compares data distribution against full replication.
type DataDistReport struct {
	Procs int
	// ReplicatedBytes is today's per-rank footprint (every rank holds
	// everything).
	ReplicatedBytes int64
	PerRank         []RankData
}

// MaxLETBytes returns the largest per-rank LET footprint.
func (r *DataDistReport) MaxLETBytes() int64 {
	var m int64
	for _, rd := range r.PerRank {
		if rd.LETBytes > m {
			m = rd.LETBytes
		}
	}
	return m
}

// Savings returns ReplicatedBytes / MaxLETBytes — how much less memory
// the most-loaded rank would need under data distribution.
func (r *DataDistReport) Savings() float64 {
	m := r.MaxLETBytes()
	if m == 0 {
		return 0
	}
	return float64(r.ReplicatedBytes) / float64(m)
}

// String implements fmt.Stringer.
func (r *DataDistReport) String() string {
	return fmt.Sprintf("data distribution over %d ranks: replicated %.1f MB/rank -> LET max %.1f MB/rank (%.1fx saving)",
		r.Procs, float64(r.ReplicatedBytes)/(1<<20), float64(r.MaxLETBytes())/(1<<20), r.Savings())
}

const (
	atomBytes   = 5 * 8 // position + charge + radius
	qpointBytes = 7 * 8 // position + weighted normal
	aggBytes    = 32 * 8
)

// MeasureDataDistribution replays the node–node work division for P
// ranks and records each rank's Local Essential Tree. slotRadii may be
// nil (a shared-memory run computes them).
func MeasureDataDistribution(sys *System, P int) (*DataDistReport, error) {
	if P <= 0 {
		return nil, fmt.Errorf("core: MeasureDataDistribution with P=%d", P)
	}
	// Born radii for the E_pol context (aggregates need them).
	res, err := RunShared(sys, SharedOptions{Threads: 1})
	if err != nil {
		return nil, err
	}
	slotRadii := make([]float64, sys.Mol.NumAtoms())
	for slot, orig := range sys.Atoms.Index {
		slotRadii[slot] = res.BornRadii[orig]
	}
	ctx := NewEpolContext(sys, slotRadii)

	aLeaves := sys.Atoms.Leaves()
	qLeaves := sys.QPts.Leaves()

	// Leaf owner maps (by slot segments, like the runners).
	atomOwner := ownerBySlot(sys.Atoms, aLeaves, sys.Mol.NumAtoms(), P)
	_ = atomOwner

	rep := &DataDistReport{Procs: P, ReplicatedBytes: sys.MemoryBytes()}
	topNodes := countTopNodes(sys.Atoms, 3) + countTopNodes(sys.QPts, 3)

	for rank := 0; rank < P; rank++ {
		rd := RankData{Rank: rank}

		// Energy phase: rank owns a segment of atom leaves (the V side).
		eLo, eHi := segment(len(aLeaves), P, rank)
		ownedLeaf := map[int32]bool{}
		for _, li := range aLeaves[eLo:eHi] {
			ownedLeaf[li] = true
			rd.OwnedAtoms += sys.Atoms.Nodes[li].Count()
		}
		ghost := map[int32]bool{}
		aggs := map[int32]bool{}
		for _, v := range aLeaves[eLo:eHi] {
			collectLET(sys, ctx, sys.Atoms.Root(), v, ownedLeaf, ghost, aggs)
		}
		for li := range ghost {
			rd.GhostAtoms += sys.Atoms.Nodes[li].Count()
		}
		rd.Aggregates = len(aggs)

		// Born phase: rank owns a segment of q-point leaves.
		qLo, qHi := segment(len(qLeaves), P, rank)
		for _, qi := range qLeaves[qLo:qHi] {
			rd.OwnedQPoints += sys.QPts.Nodes[qi].Count()
		}

		rd.LETBytes = int64(rd.OwnedAtoms+rd.GhostAtoms)*atomBytes +
			int64(rd.OwnedQPoints)*qpointBytes +
			int64(rd.Aggregates)*aggBytes +
			int64(topNodes)*64
		rep.PerRank = append(rep.PerRank, rd)
	}
	return rep, nil
}

// collectLET mirrors APPROX-EPOL's traversal shape, recording which
// remote leaves the near field reads and which node aggregates the far
// field consumes.
func collectLET(sys *System, ctx *EpolContext, uNode, vLeaf int32, owned, ghost, aggs map[int32]bool) {
	u := &sys.Atoms.Nodes[uNode]
	v := &sys.Atoms.Nodes[vLeaf]
	if u.IsLeaf {
		if !owned[uNode] {
			ghost[uNode] = true
		}
		return
	}
	if _, _, far := farSeparated(v.Center, u.Center, v.Radius, u.Radius, ctx.farFactor); far {
		aggs[uNode] = true
		return
	}
	for _, child := range u.Children {
		if child != octree.NoChild {
			collectLET(sys, ctx, child, vLeaf, owned, ghost, aggs)
		}
	}
}

// ownerBySlot maps each leaf to the rank owning its slot segment.
func ownerBySlot(t *octree.Tree, leaves []int32, n, P int) map[int32]int {
	out := make(map[int32]int, len(leaves))
	for _, li := range leaves {
		mid := int(t.Nodes[li].Start)
		r := mid * P / n
		if r >= P {
			r = P - 1
		}
		out[li] = r
	}
	return out
}

// countTopNodes counts nodes with depth ≤ maxDepth (the shared coarse
// tree every rank keeps).
func countTopNodes(t *octree.Tree, maxDepth int) int {
	n := 0
	for i := range t.Nodes {
		if int(t.Nodes[i].Depth) <= maxDepth {
			n++
		}
	}
	return n
}

// RecoveryLoad is one survivor's share of a dead rank's work after the
// deterministic re-division (see RedivideSpans): the interaction-list
// rows and atom slots it inherits, and the data those rows touch.
type RecoveryLoad struct {
	Rank int
	// BornRows / EpolRows are inherited compiled-list rows (q-point
	// leaves and atom leaves respectively); AtomSlots are inherited
	// radii-push slots.
	BornRows, EpolRows, AtomSlots int
	// RecomputeBytes models the data volume the inherited rows cover:
	// q-points of inherited Born rows plus atoms of inherited E_pol rows.
	RecomputeBytes int64
}

// RecoveryReport summarizes who recomputes what after the given ordered
// deaths.
type RecoveryReport struct {
	Procs   int
	Dead    []int
	PerRank []RecoveryLoad
	// Totals across survivors — exactly the dead ranks' original work.
	TotalBornRows, TotalEpolRows, TotalAtomSlots int
}

// String implements fmt.Stringer.
func (r *RecoveryReport) String() string {
	return fmt.Sprintf("recovery after deaths %v of %d ranks: %d Born rows, %d E_pol rows, %d atom slots redistributed",
		r.Dead, r.Procs, r.TotalBornRows, r.TotalEpolRows, r.TotalAtomSlots)
}

// MeasureRecoveryRedivision computes, without running anything, how much
// work the self-healing runner's survivors would redo when the given
// ranks die in the given order — the planning counterpart of
// RunDistributedResilient's recovery, using the same RedivideSpans
// partition, so the numbers match the runner's FaultReport metering.
func MeasureRecoveryRedivision(sys *System, P int, deadOrder []int) (*RecoveryReport, error) {
	if P <= 0 {
		return nil, fmt.Errorf("core: MeasureRecoveryRedivision with P=%d", P)
	}
	dead := make(map[int]bool, len(deadOrder))
	for _, d := range deadOrder {
		if d < 0 || d >= P {
			return nil, fmt.Errorf("core: dead rank %d out of range [0,%d)", d, P)
		}
		dead[d] = true
	}
	aLeaves := sys.Atoms.Leaves()
	qLeaves := sys.QPts.Leaves()
	nAtoms := sys.Mol.NumAtoms()

	bornAsgn := RedivideSpans(len(qLeaves), P, deadOrder)
	epolAsgn := RedivideSpans(len(aLeaves), P, deadOrder)
	slotAsgn := RedivideSpans(nAtoms, P, deadOrder)

	rep := &RecoveryReport{Procs: P, Dead: append([]int(nil), deadOrder...)}
	for rank := 0; rank < P; rank++ {
		rl := RecoveryLoad{Rank: rank}
		if !dead[rank] {
			bLo, bHi := segment(len(qLeaves), P, rank)
			for _, sp := range bornAsgn[rank] {
				for i := sp.Lo; i < sp.Hi; i++ {
					if i < bLo || i >= bHi {
						rl.BornRows++
						rl.RecomputeBytes += int64(sys.QPts.Nodes[qLeaves[i]].Count()) * qpointBytes
					}
				}
			}
			eLo, eHi := segment(len(aLeaves), P, rank)
			for _, sp := range epolAsgn[rank] {
				for i := sp.Lo; i < sp.Hi; i++ {
					if i < eLo || i >= eHi {
						rl.EpolRows++
						rl.RecomputeBytes += int64(sys.Atoms.Nodes[aLeaves[i]].Count()) * atomBytes
					}
				}
			}
			sLo, sHi := segment(nAtoms, P, rank)
			for _, sp := range slotAsgn[rank] {
				if sp.Lo < sLo {
					rl.AtomSlots += min(sp.Hi, sLo) - sp.Lo
				}
				if sp.Hi > sHi {
					rl.AtomSlots += sp.Hi - max(sp.Lo, sHi)
				}
			}
		}
		rep.TotalBornRows += rl.BornRows
		rep.TotalEpolRows += rl.EpolRows
		rep.TotalAtomSlots += rl.AtomSlots
		rep.PerRank = append(rep.PerRank, rl)
	}
	return rep, nil
}
