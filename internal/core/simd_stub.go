//go:build !amd64

package core

// Non-amd64 builds have no assembly kernels: useAsmKernels stays false,
// so the portable lane code in kernels_lanes.go / kernels_f32.go handles
// every block and the stubs below are unreachable.

var useAsmKernels = false

func epolNearBlockLanesAsm(ctx *EpolContext, sys *System, ul int32, vx, vy, vz, cv, rv, irv []float64, w float64, acc *epolAccum) {
	panic("core: asm kernels unavailable on this architecture")
}

func epolNearBlockF32Asm(ctx *EpolContext, f *f32SoA, sys *System, ul int32, vx, vy, vz, cv, rv []float32, w float64, acc *epolAccum) {
	panic("core: asm kernels unavailable on this architecture")
}

func bornNearBlockAsmR6(sys *System, lo, hi int32, out []float64, qx, qy, qz, wx, wy, wz []float64) {
	panic("core: asm kernels unavailable on this architecture")
}

func bornNearBlockAsmR6x32(f *f32SoA, lo, hi int32, out []float64, qx, qy, qz, wx, wy, wz []float32) {
	panic("core: asm kernels unavailable on this architecture")
}
