package core

import (
	"fmt"

	"gbpolar/internal/cluster"
	"gbpolar/internal/octree"
	"gbpolar/internal/sched"
)

// Scheme selects how Figure 4's steps 2 and 6 divide work across ranks
// (Section IV.A, "Different Work Distribution Approaches").
//
// The atom-range traversals in this file stay order 0 regardless of
// Params.FarOrder: they classify by the base multiplier alone (the
// strictest rung of the farorder.go ladder, so they remain sound at
// every order — they just forgo the consolidation speedup) and add no
// moment corrections, keeping the P-dependence ablation measuring only
// the work-division axis it was built for.
type Scheme int

const (
	// NodeNode divides q-point leaves for the Born phase and atom leaves
	// for the energy phase — the paper's default and best performer. Its
	// error is independent of P because every rank always handles whole
	// tree nodes.
	NodeNode Scheme = iota
	// AtomNode divides atoms for the Born phase (each rank traverses
	// both octrees but only computes for its atom range) and leaves for
	// the energy phase. Division boundaries can split tree nodes, so the
	// error varies with P — the artifact the paper observes (and also
	// sees in Gromacs).
	AtomNode
	// AtomAtom divides atoms in both phases.
	AtomAtom
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case NodeNode:
		return "node-node"
	case AtomNode:
		return "atom-node"
	case AtomAtom:
		return "atom-atom"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// ApproxIntegralsAtomRange is the atom-based variant of APPROX-INTEGRALS:
// only atoms with slot index in [lo, hi) receive contributions. The
// far-field shortcut applies only to nodes FULLY inside the range — a
// partially-owned node must recurse so the un-owned part is not
// contaminated, which is both the extra traversal cost and the
// P-dependent approximation error of atom-based division.
func ApproxIntegralsAtomRange(sys *System, acc *bornAccum, aNode, qLeaf int32, mac float64, lo, hi int32) {
	a := &sys.Atoms.Nodes[aNode]
	if a.End <= lo || a.Start >= hi {
		return
	}
	q := &sys.QPts.Nodes[qLeaf]
	d, d2, far := farSeparated(a.Center, q.Center, a.Radius, q.Radius, mac)
	acc.ops++

	kern := sys.Params.Kernel
	owned := a.Start >= lo && a.End <= hi
	if owned && far {
		acc.node[aNode] += sys.QNodeWN[qLeaf].Dot(d) / bornDenom(d2, kern)
		return
	}
	if a.IsLeaf {
		alo, ahi := a.Start, a.End
		if alo < lo {
			alo = lo
		}
		if ahi > hi {
			ahi = hi
		}
		for ai := alo; ai < ahi; ai++ {
			pa := sys.Atoms.Pts[ai]
			var s float64
			for qi := q.Start; qi < q.End; qi++ {
				dv := sys.QPts.Pts[qi].Sub(pa)
				r2 := dv.Norm2()
				if r2 == 0 {
					continue
				}
				s += sys.WN[qi].Dot(dv) / bornDenom(r2, kern)
			}
			acc.atom[ai] += s
		}
		acc.ops += float64(int(ahi-alo) * q.Count())
		return
	}
	for _, child := range a.Children {
		if child != octree.NoChild {
			ApproxIntegralsAtomRange(sys, acc, child, qLeaf, mac, lo, hi)
		}
	}
}

// ApproxEpolAtomRange is the atom-based variant of APPROX-EPOL: the rank
// owns atoms [lo, hi) on the V side. Exact loops restrict v to owned
// atoms; far-field interactions use a histogram of only the owned part
// of V, built on the fly (V is a leaf, so this is cheap).
func ApproxEpolAtomRange(ctx *EpolContext, uNode, vLeaf int32, acc *epolAccum, lo, hi int32) {
	sys := ctx.sys
	t := sys.Atoms
	v := &t.Nodes[vLeaf]
	vlo, vhi := v.Start, v.End
	if vlo < lo {
		vlo = lo
	}
	if vhi > hi {
		vhi = hi
	}
	if vlo >= vhi {
		return
	}
	ctx.epolAtomRange(uNode, vLeaf, vlo, vhi, acc)
}

func (ctx *EpolContext) epolAtomRange(uNode, vLeaf, vlo, vhi int32, acc *epolAccum) {
	sys := ctx.sys
	t := sys.Atoms
	u := &t.Nodes[uNode]
	v := &t.Nodes[vLeaf]
	k := sys.kern()
	acc.ops++

	if u.IsLeaf {
		for ui := u.Start; ui < u.End; ui++ {
			pu := t.Pts[ui]
			qu := sys.Charge[ui]
			ru := ctx.Radii[ui]
			var s float64
			for vi := vlo; vi < vhi; vi++ {
				r2 := pu.Dist2(t.Pts[vi])
				rr := ru * ctx.Radii[vi]
				f2 := r2 + rr*k.Exp(-r2/(4*rr))
				s += sys.Charge[vi] * k.RSqrt(f2)
			}
			acc.energy += qu * s
		}
		acc.ops += float64(u.Count() * int(vhi-vlo))
		return
	}

	_, d2, far := farSeparated(v.Center, u.Center, v.Radius, u.Radius, ctx.farFactor)
	if far {
		// Histogram of the owned V sub-range, built on the fly.
		hv := make([]float64, ctx.MEps)
		for vi := vlo; vi < vhi; vi++ {
			hv[ctx.binOf(ctx.Radii[vi])] += sys.Charge[vi]
		}
		hu := ctx.hist[uNode]
		var s float64
		for i, qi := range hu {
			if qi == 0 {
				continue
			}
			for j, qj := range hv {
				if qj == 0 {
					continue
				}
				rr := ctx.rr[i+j]
				f2 := d2 + rr*k.Exp(-d2/(4*rr))
				s += qi * qj * k.RSqrt(f2)
				acc.ops++
			}
		}
		acc.energy += s
		return
	}
	for _, child := range u.Children {
		if child != octree.NoChild {
			ctx.epolAtomRange(child, vLeaf, vlo, vhi, acc)
		}
	}
}

// RunDistributedScheme is RunDistributed with an explicit work-division
// scheme (RunDistributed uses NodeNode).
func RunDistributedScheme(sys *System, cfg cluster.Config, scheme Scheme) (*Result, error) {
	if scheme == NodeNode {
		return RunDistributed(sys, cfg)
	}
	if cfg.OpsPerSecond <= 0 {
		cfg.OpsPerSecond = CalibratedOpsPerSecond()
	}
	outs := make([]rankOut, cfg.Procs)
	rep, err := cluster.Run(cfg, func(c *Comm) error {
		return distRankScheme(sys, c, scheme, &outs[c.Rank()])
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Epol:         outs[0].epol,
		BornRadii:    sys.BornRadiiToOriginalOrder(outs[0].radii),
		WallSeconds:  rep.WallSeconds,
		ModelSeconds: rep.VirtualSeconds,
		Report:       rep,
	}
	for i := range outs {
		res.Ops += outs[i].ops
	}
	return res, nil
}

// distRankScheme mirrors distRank with atom-based divisions.
func distRankScheme(sys *System, c *Comm, scheme Scheme, out *rankOut) error {
	P, rank := c.Size(), c.Rank()
	p := c.Threads()
	pool := sched.NewPool(p)
	defer pool.Close()
	c.TrackMemory(sys.MemoryBytes())

	mac := sys.bornMAC()
	qLeaves := sys.QPts.Leaves()
	nNodes := sys.Atoms.NumNodes()
	nAtoms := sys.Mol.NumAtoms()

	// Step 2, atom-based: this rank owns atom slots [aLo, aHi) and
	// traverses every q-point leaf.
	aLo, aHi := segment(nAtoms, P, rank)
	accs := make([]*bornAccum, p)
	for i := range accs {
		accs[i] = newBornAccum(sys)
	}
	sched.ParallelFor(pool, len(qLeaves), 1, func(l, h, w int) {
		for i := l; i < h; i++ {
			before := accs[w].ops
			ApproxIntegralsAtomRange(sys, accs[w], sys.Atoms.Root(), qLeaves[i], mac,
				int32(aLo), int32(aHi))
			if d := accs[w].ops - before; d > accs[w].maxTask {
				accs[w].maxTask = d
			}
		}
	})
	merged := accs[0]
	for _, a := range accs[1:] {
		merged.add(a)
	}
	c.ChargeOps(modelPhaseOps(merged.ops, maxOps(accs), merged.maxTask, p))
	out.ops += merged.ops

	// Step 3: combine partial s-fields.
	vec := make([]float64, nNodes+nAtoms)
	copy(vec, merged.node)
	copy(vec[nNodes:], merged.atom)
	sum, err := c.Allreduce(vec, cluster.Sum)
	if err != nil {
		return err
	}
	copy(merged.node, sum[:nNodes])
	copy(merged.atom, sum[nNodes:])

	// Steps 4–5: unchanged (atom segments are the only sensible split).
	slotRadii := make([]float64, nAtoms)
	pushOps := PushIntegralsToAtoms(sys, merged, aLo, aHi, slotRadii)
	c.ChargeOps(pushOps / float64(p))
	out.ops += pushOps
	counts := make([]int, P)
	for r := 0; r < P; r++ {
		l, h := segment(nAtoms, P, r)
		counts[r] = h - l
	}
	gathered, err := c.Allgatherv(slotRadii[aLo:aHi], counts)
	if err != nil {
		return err
	}
	copy(slotRadii, gathered)

	// Step 6: energy with the selected division.
	ctx := NewEpolContext(sys, slotRadii)
	aLeaves := sys.Atoms.Leaves()
	eaccs := make([]epolAccum, p)
	track := func(w int, fn func()) {
		before := eaccs[w].ops
		fn()
		if d := eaccs[w].ops - before; d > eaccs[w].maxTask {
			eaccs[w].maxTask = d
		}
	}
	switch scheme {
	case AtomNode:
		eLo, eHi := segment(len(aLeaves), P, rank)
		sched.ParallelFor(pool, eHi-eLo, 1, func(l, h, w int) {
			for i := l; i < h; i++ {
				i := i
				track(w, func() { ApproxEpol(ctx, sys.Atoms.Root(), aLeaves[eLo+i], &eaccs[w]) })
			}
		})
	case AtomAtom:
		sched.ParallelFor(pool, len(aLeaves), 1, func(l, h, w int) {
			for i := l; i < h; i++ {
				i := i
				track(w, func() { ApproxEpolAtomRange(ctx, sys.Atoms.Root(), aLeaves[i], &eaccs[w], int32(aLo), int32(aHi)) })
			}
		})
	default:
		return fmt.Errorf("core: unsupported scheme %v", scheme)
	}
	var raw, maxE, maxTask, rankOps float64
	for i := range eaccs {
		raw += eaccs[i].energy
		if eaccs[i].ops > maxE {
			maxE = eaccs[i].ops
		}
		if eaccs[i].maxTask > maxTask {
			maxTask = eaccs[i].maxTask
		}
		rankOps += eaccs[i].ops
		out.ops += eaccs[i].ops
	}
	c.ChargeOps(modelPhaseOps(rankOps, maxE, maxTask, p))

	total, err := c.Allreduce([]float64{raw}, cluster.Sum)
	if err != nil {
		return err
	}
	out.epol = ctx.Finish(total[0])
	out.radii = slotRadii
	return nil
}
