package octree

import (
	"math"
	"math/rand"
	"testing"

	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
)

// jiggle displaces every point by a uniform offset in [-d, d]³.
func jiggle(rng *rand.Rand, pts []geom.Vec3, d float64) []geom.Vec3 {
	out := make([]geom.Vec3, len(pts))
	for i, p := range pts {
		out[i] = p.Add(geom.V(
			(rng.Float64()*2-1)*d,
			(rng.Float64()*2-1)*d,
			(rng.Float64()*2-1)*d,
		))
	}
	return out
}

func TestUpdateSmallJiggleKeepsStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	pts := randPts(rng, 2000, 80)
	tr, err := Build(pts, Options{LeafCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	nodesBefore := tr.NumNodes()
	// Tiny displacements: a fraction of the leaf cell size.
	moved, err := tr.Update(jiggle(rng, pts, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if moved > len(pts)/20 {
		t.Errorf("%d/%d points escaped on a tiny jiggle", moved, len(pts))
	}
	if tr.NumNodes() > nodesBefore+nodesBefore/10 {
		t.Errorf("node array grew from %d to %d on a tiny jiggle", nodesBefore, tr.NumNodes())
	}
}

func TestUpdateMatchesFreshBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	pts := randPts(rng, 1500, 60)
	tr, err := Build(pts, Options{LeafCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		pts = jiggle(rng, pts, 3.0) // large enough to force migrations
		if _, err := tr.Update(pts); err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Every original point must be present exactly once with its new
		// position.
		seen := make([]bool, len(pts))
		for slot, orig := range tr.Index {
			if seen[orig] {
				t.Fatalf("round %d: point %d duplicated", round, orig)
			}
			seen[orig] = true
			if tr.Pts[slot] != pts[orig] {
				t.Fatalf("round %d: point %d has stale position", round, orig)
			}
		}
		// Leaves cover all slots exactly once, in order.
		at := int32(0)
		for _, li := range tr.Leaves() {
			n := tr.Nodes[li]
			if n.Start != at {
				t.Fatalf("round %d: leaf ranges not contiguous", round)
			}
			at = n.End
		}
		if at != int32(len(pts)) {
			t.Fatalf("round %d: leaves end at %d", round, at)
		}
	}
}

func TestUpdateOutOfDomainRebuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	pts := randPts(rng, 500, 40)
	tr, err := Build(pts, Options{LeafCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Shift everything far outside the root cube.
	shifted := make([]geom.Vec3, len(pts))
	for i, p := range pts {
		shifted[i] = p.Add(geom.V(1000, 0, 0))
	}
	moved, err := tr.Update(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if moved != len(pts) {
		t.Errorf("full rebuild should report all %d points moved, got %d", len(pts), moved)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	pts := randPts(rng, 100, 10)
	tr, err := Build(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Update(pts[:50]); err == nil {
		t.Error("length mismatch accepted")
	}
	bad := append([]geom.Vec3(nil), pts...)
	bad[3].X = math.Inf(1)
	if _, err := tr.Update(bad); err == nil {
		t.Error("non-finite point accepted")
	}
}

func TestCompactNodesReclaimsOrphans(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	pts := randPts(rng, 1000, 50)
	tr, err := Build(pts, Options{LeafCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		pts = jiggle(rng, pts, 4.0)
		if _, err := tr.Update(pts); err != nil {
			t.Fatal(err)
		}
	}
	reachable := tr.NumReachableNodes()
	if tr.NumNodes() <= reachable {
		t.Skip("no orphans created (updates were all local)")
	}
	tr.CompactNodes()
	if tr.NumNodes() != reachable {
		t.Errorf("after compaction %d nodes, want %d", tr.NumNodes(), reachable)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateCheaperThanRebuildForSmallMoves(t *testing.T) {
	// The reference-[8] claim: updates after small motion touch far less
	// structure than a rebuild. Measure structural work by node-array
	// growth: a small jiggle must not rebuild subtrees wholesale.
	m := molecule.GenProtein("dyn", 4000, 206)
	pts := m.Positions()
	tr, err := Build(pts, Options{LeafCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	before := tr.NumNodes()
	rng := rand.New(rand.NewSource(207))
	moved, err := tr.Update(jiggle(rng, pts, 0.05)) // typical MD step ≈ 0.05 Å
	if err != nil {
		t.Fatal(err)
	}
	// A few boundary-straddling points relocate; structure churn must
	// stay marginal (points entering previously-empty octants create a
	// handful of cells).
	if moved > len(pts)/20 {
		t.Errorf("%d/%d points relocated on an MD-step jiggle", moved, len(pts))
	}
	if grown := tr.NumNodes() - before; grown > before/50 {
		t.Errorf("MD-step jiggle grew node count %d -> %d", before, tr.NumNodes())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUpdateVsRebuild(b *testing.B) {
	m := molecule.GenProtein("dynb", 20000, 208)
	pts := m.Positions()
	tr, err := Build(pts, Options{LeafCap: 8})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(209))
	b.Run("Update0.05A", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tr.Update(jiggle(rng, pts, 0.05)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Build(pts, Options{LeafCap: 8}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
