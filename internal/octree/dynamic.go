package octree

import (
	"fmt"
	"math"
	"slices"

	"gbpolar/internal/geom"
)

// This file adds incremental updates for moving points — the capability
// of the paper's companion work on dynamic octrees for flexible
// molecules (reference [8], "Space-efficient maintenance of nonbonded
// lists for flexible molecules using dynamic octrees") that underpins the
// Section II claim that octrees are "update-efficient" compared to
// nonbonded lists.
//
// Update keeps the existing cell structure and RELOCATES points:
//
//  1. every point is routed down the existing tree to its target leaf
//     (creating a leaf when it moves into an empty octant);
//  2. points are permuted into the new leaf order in one linear pass and
//     all node ranges are recomputed;
//  3. leaves that now exceed the capacity split in place; emptied cells
//     are pruned;
//  4. centers and radii are refreshed.
//
// Structural churn is therefore proportional to actual cell-occupancy
// changes, not to how high in the tree a crossed boundary sits. For an
// MD-step-sized jiggle nothing splits and the cost is one O(M log M)
// routing pass. If any point leaves the (slightly inflated) root cube,
// Update degrades to a full rebuild — it never fails.

// Update moves the tree's points to newPts (given in the ORIGINAL point
// order, like Build's input) and repairs the structure, returning the
// number of points that changed leaf.
func (t *Tree) Update(newPts []geom.Vec3) (moved int, err error) {
	if len(newPts) != len(t.Pts) {
		return 0, fmt.Errorf("octree: Update with %d points, tree has %d", len(newPts), len(t.Pts))
	}
	for i, p := range newPts {
		if !p.IsFinite() {
			return 0, fmt.Errorf("octree: point %d is not finite: %v", i, p)
		}
	}
	// The untracked path does not maintain Morton keys; drop them so a
	// later tracked update recomputes rather than trusting stale keys.
	t.keys = nil
	for slot, orig := range t.Index {
		t.Pts[slot] = newPts[orig]
	}
	for _, p := range t.Pts {
		if !t.rootBox.Contains(p) {
			return t.NumPoints(), t.rebuildAll()
		}
	}

	// --- 1. route every point to its target leaf ---------------------
	// oldLeaf[slot] from the current ranges, target[slot] by descending
	// the structure (materializing leaves for newly-occupied octants).
	// All bookkeeping is slice-indexed by node id — no maps in the hot
	// path.
	n := len(t.Pts)
	oldLeaf := make([]int32, n)
	for _, li := range t.leaves {
		nd := &t.Nodes[li]
		for s := nd.Start; s < nd.End; s++ {
			oldLeaf[s] = li
		}
	}
	boxes := make([]geom.AABB, len(t.Nodes), len(t.Nodes)+len(t.leaves))
	boxes[0] = t.rootBox
	target := make([]int32, n)
	for s := 0; s < n; s++ {
		leaf, bs := t.route(t.Pts[s], boxes)
		boxes = bs
		target[s] = leaf
		if leaf != oldLeaf[s] {
			moved++
		}
	}
	if moved == 0 {
		// Fast path: only geometry changed.
		t.refreshGeometryAll()
		return 0, nil
	}

	// --- 2. permute points into the new leaf order --------------------
	counts := make([]int32, len(t.Nodes))
	for _, li := range target {
		counts[li]++
	}
	t.pruneEmpty(0, counts, nil)

	// Structural leaf order (children visited in octant order) defines
	// the new slot layout.
	newLeaves := newLeaves(t)
	starts := make([]int32, len(t.Nodes))
	at := int32(0)
	for _, li := range newLeaves {
		starts[li] = at
		at += counts[li]
	}
	if at != int32(n) {
		return moved, fmt.Errorf("octree: internal error: relocation lost points (%d != %d)", at, n)
	}
	fill := make([]int32, len(t.Nodes))
	newPtsArr := make([]geom.Vec3, n)
	newIdx := make([]int32, n)
	for s := 0; s < n; s++ {
		li := target[s]
		pos := starts[li] + fill[li]
		fill[li]++
		newPtsArr[pos] = t.Pts[s]
		newIdx[pos] = t.Index[s]
	}
	t.Pts = newPtsArr
	t.Index = newIdx
	for _, li := range newLeaves {
		nd := &t.Nodes[li]
		nd.Start = starts[li]
		nd.End = starts[li] + counts[li]
	}
	t.recomputeInternalRanges(0)

	// --- 3. split overfull leaves -------------------------------------
	opts := Options{LeafCap: t.leafCap, MaxDepth: 32}
	for _, li := range newLeaves {
		nd := t.Nodes[li]
		if nd.Count() > t.leafCap && int(nd.Depth) < opts.MaxDepth {
			t.buildRange(boxes[li], nd.Start, nd.End, int(nd.Depth), opts, li)
		}
	}

	// --- 4. refresh ----------------------------------------------------
	t.refreshGeometryAll()
	t.rebuildLeafList()
	return moved, nil
}

// route descends the existing structure to the leaf cell containing p,
// creating a leaf when p enters an octant with no child. boxes records
// visited node boxes (slice indexed by node id, grown for created
// leaves) and is returned because appends may reallocate it.
func (t *Tree) route(p geom.Vec3, boxes []geom.AABB) (int32, []geom.AABB) {
	node := int32(0)
	box := t.rootBox
	for {
		nd := &t.Nodes[node]
		if nd.IsLeaf {
			boxes[node] = box
			return node, boxes
		}
		o := box.OctantIndex(p)
		child := nd.Children[o]
		if child == NoChild {
			// Materialize an empty leaf for the newly occupied octant.
			child = int32(len(t.Nodes))
			t.Nodes = append(t.Nodes, Node{Depth: nd.Depth + 1, IsLeaf: true})
			for i := range t.Nodes[child].Children {
				t.Nodes[child].Children[i] = NoChild
			}
			t.Nodes[node].Children[o] = child
			boxes = append(boxes, geom.AABB{})
		}
		node = child
		box = box.Octant(o)
		boxes[node] = box
	}
}

// pruneEmpty removes children whose subtree holds no points anymore.
// It returns the subtree's total count. When strct is non-nil, nodes
// whose child set or leaf-ness changes are flagged (the tracked update's
// structural-change report).
func (t *Tree) pruneEmpty(node int32, counts []int32, strct []bool) int32 {
	nd := &t.Nodes[node]
	if nd.IsLeaf {
		return counts[node]
	}
	var total int32
	live := 0
	var lastLive int32 = NoChild
	for o := 0; o < 8; o++ {
		c := nd.Children[o]
		if c == NoChild {
			continue
		}
		sub := t.pruneEmpty(c, counts, strct)
		if sub == 0 {
			nd.Children[o] = NoChild
			if strct != nil {
				strct[node] = true
			}
			continue
		}
		total += sub
		live++
		lastLive = c
	}
	// An internal node with a single live child could be collapsed; keep
	// it (harmless, preserves depths) unless it has none — then it
	// becomes an empty leaf that the PARENT prunes (total == 0).
	_ = lastLive
	if live == 0 {
		nd.IsLeaf = true
		if strct != nil {
			strct[node] = true
		}
	}
	return total
}

// newLeaves lists leaves in structural (octant) order.
func newLeaves(t *Tree) []int32 {
	var out []int32
	t.walkReachable(func(id int32) {
		if t.Nodes[id].IsLeaf {
			out = append(out, id)
		}
	})
	return out
}

// recomputeInternalRanges sets internal node ranges from their children
// (post-order) and returns the node's range.
func (t *Tree) recomputeInternalRanges(node int32) (int32, int32) {
	nd := &t.Nodes[node]
	if nd.IsLeaf {
		return nd.Start, nd.End
	}
	first := true
	var lo, hi int32
	for o := 0; o < 8; o++ {
		c := nd.Children[o]
		if c == NoChild {
			continue
		}
		clo, chi := t.recomputeInternalRanges(c)
		if first {
			lo, hi = clo, chi
			first = false
			continue
		}
		if clo < lo {
			lo = clo
		}
		if chi > hi {
			hi = chi
		}
	}
	nd.Start, nd.End = lo, hi
	return lo, hi
}

// buildRange mirrors build but can reuse an existing node index for the
// subtree root (reuse ≥ 0).
func (t *Tree) buildRange(box geom.AABB, start, end int32, depth int, opts Options, reuse int32) int32 {
	id := reuse
	if id < 0 {
		id = int32(len(t.Nodes))
		t.Nodes = append(t.Nodes, Node{})
	}
	nd := Node{Start: start, End: end, Depth: int16(depth)}
	for i := range nd.Children {
		nd.Children[i] = NoChild
	}
	if int(end-start) <= opts.LeafCap || depth >= opts.MaxDepth {
		nd.IsLeaf = true
		t.Nodes[id] = nd
		return id
	}
	var counts [8]int32
	for i := start; i < end; i++ {
		counts[box.OctantIndex(t.Pts[i])]++
	}
	var offsets, next [8]int32
	off := start
	for o := 0; o < 8; o++ {
		offsets[o] = off
		next[o] = off
		off += counts[o]
	}
	for o := 0; o < 8; o++ {
		for next[o] < offsets[o]+counts[o] {
			i := next[o]
			oct := box.OctantIndex(t.Pts[i])
			if oct == o {
				next[o]++
				continue
			}
			j := next[oct]
			next[oct]++
			t.Pts[i], t.Pts[j] = t.Pts[j], t.Pts[i]
			t.Index[i], t.Index[j] = t.Index[j], t.Index[i]
		}
	}
	for o := 0; o < 8; o++ {
		if counts[o] == 0 {
			continue
		}
		nd.Children[o] = t.buildRange(box.Octant(o), offsets[o], offsets[o]+counts[o], depth+1, opts, -1)
	}
	t.Nodes[id] = nd
	return id
}

// refreshNodeGeometry recomputes one node's center and radius.
func (t *Tree) refreshNodeGeometry(n *Node) {
	var c geom.Vec3
	for j := n.Start; j < n.End; j++ {
		c = c.Add(t.Pts[j])
	}
	n.Center = c.Scale(1 / float64(n.Count()))
	r2 := 0.0
	for j := n.Start; j < n.End; j++ {
		if d2 := n.Center.Dist2(t.Pts[j]); d2 > r2 {
			r2 = d2
		}
	}
	n.Radius = math.Sqrt(r2)
}

// refreshGeometryAll refreshes every reachable node, then the moments
// that depend on the refreshed centers. Every update path (Update,
// UpdateTracked, both fast paths) funnels through here, so the attached
// moment sets are always consistent with node geometry.
func (t *Tree) refreshGeometryAll() {
	t.walkReachable(func(id int32) {
		t.refreshNodeGeometry(&t.Nodes[id])
	})
	t.recomputeMoments()
}

// walkReachable visits nodes reachable from the root in structural
// order (updates can orphan old entries in Nodes).
func (t *Tree) walkReachable(fn func(id int32)) {
	var rec func(id int32)
	rec = func(id int32) {
		fn(id)
		n := &t.Nodes[id]
		if n.IsLeaf {
			return
		}
		for _, c := range n.Children {
			if c != NoChild {
				rec(c)
			}
		}
	}
	rec(0)
}

// rebuildLeafList regenerates the leaf list in slot order.
func (t *Tree) rebuildLeafList() {
	t.leaves = t.leaves[:0]
	t.walkReachable(func(id int32) {
		if t.Nodes[id].IsLeaf {
			t.leaves = append(t.leaves, id)
		}
	})
	slices.SortFunc(t.leaves, func(a, b int32) int {
		return int(t.Nodes[a].Start) - int(t.Nodes[b].Start)
	})
}

// rebuildAll reconstructs the tree from the current (already updated)
// points.
func (t *Tree) rebuildAll() error {
	pts := make([]geom.Vec3, len(t.Pts))
	for slot, orig := range t.Index {
		pts[orig] = t.Pts[slot]
	}
	fresh, err := Build(pts, Options{LeafCap: t.leafCap, MaxDepth: 32, Builder: t.builder, Pool: t.pool})
	if err != nil {
		return err
	}
	// The fresh tree has no moment sets; carry them over (the weights are
	// in original point order, so they survive the rebuild's new slot
	// permutation) and recompute on the new structure.
	moments := t.moments
	*t = *fresh
	t.moments = moments
	t.recomputeMoments()
	return nil
}

// NumReachableNodes counts nodes reachable from the root.
func (t *Tree) NumReachableNodes() int {
	n := 0
	t.walkReachable(func(int32) { n++ })
	return n
}

// CompactNodes drops unreachable node entries left behind by updates,
// re-indexing children. Call it after many updates to reclaim memory.
func (t *Tree) CompactNodes() {
	remap := make([]int32, len(t.Nodes))
	order := make([]int32, 0, len(t.Nodes))
	t.walkReachable(func(id int32) {
		remap[id] = int32(len(order))
		order = append(order, id)
	})
	fresh := make([]Node, len(order))
	for newID, oldID := range order {
		n := t.Nodes[oldID]
		for i, c := range n.Children {
			if c != NoChild {
				n.Children[i] = remap[c]
			}
		}
		fresh[newID] = n
	}
	t.Nodes = fresh
	t.remapMoments(order)
	t.rebuildLeafList()
}
