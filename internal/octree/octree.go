// Package octree implements the adaptive, linearized octree the paper
// builds over atoms and surface quadrature points (Section II,
// "Octrees vs. Nblists").
//
// The tree is stored as a flat node array, and the point set is
// re-ordered so that every subtree owns one contiguous range — the
// cache-friendly layout the paper credits for part of its speedup. Space
// is linear in the number of points and independent of any approximation
// parameter, unlike the nonbonded lists used by the baseline MD packages
// (internal/nblist).
package octree

import (
	"fmt"
	"math"

	"gbpolar/internal/geom"
	"gbpolar/internal/sched"
)

// NoChild marks an absent child slot.
const NoChild int32 = -1

// Node is one octree node. Points under a node occupy the contiguous
// range Index[Start:End] (and the parallel Pts slice).
type Node struct {
	// Center is the geometric center (centroid) of the points under the
	// node — where the paper places the pseudo-atom / pseudo-q-point of
	// the far-field approximation.
	Center geom.Vec3
	// Radius is the radius of the smallest ball centered at Center that
	// encloses every point under the node (r_A / r_Q in the paper).
	Radius float64
	// Children holds node indices of the (up to 8) non-empty octants;
	// absent slots are NoChild.
	Children [8]int32
	// Start and End delimit the node's range in Tree.Index / Tree.Pts.
	Start, End int32
	// Depth is the node's depth (root = 0).
	Depth int16
	// IsLeaf reports whether the node has no children.
	IsLeaf bool
}

// Count returns the number of points under the node.
func (n *Node) Count() int { return int(n.End - n.Start) }

// Tree is a linearized octree over a fixed point set.
type Tree struct {
	// Nodes is the flat node array; Nodes[0] is the root.
	Nodes []Node
	// Index maps tree order to the caller's original point order:
	// tree slot i holds original point Index[i].
	Index []int32
	// Pts holds the point positions in tree order (Pts[i] is the
	// position of original point Index[i]). Kernels iterate leaf ranges
	// of Pts directly for locality.
	Pts []geom.Vec3

	leaves  []int32
	leafCap int
	rootBox geom.AABB

	// keys holds the Morton key of each slot for Morton-built trees
	// (nil otherwise); UpdateTracked keeps it current, the untracked
	// Update invalidates it. builder/pool let incremental rebuilds
	// reconstruct with the same algorithm and parallelism as Build.
	keys    []uint64
	builder Builder
	pool    *sched.Pool

	// moments holds the attached per-node multipole moment sets (see
	// moments.go), kept current across updates and transforms.
	moments []*MomentSet
}

// Options configures construction.
type Options struct {
	// LeafCap is the maximum number of points in a leaf (default 8).
	LeafCap int
	// MaxDepth bounds the recursion for degenerate (coincident) inputs
	// (default 32). BuilderMorton caps it at geom.MortonBits, the key
	// lattice resolution.
	MaxDepth int
	// Builder selects the construction algorithm (default
	// BuilderRecursive, the reference implementation).
	Builder Builder
	// Pool, when non-nil, parallelizes BuilderMorton's key computation,
	// radix sort and permutation. A nil Pool runs serially. The
	// recursive builder ignores it.
	Pool *sched.Pool
}

func (o Options) withDefaults() Options {
	if o.LeafCap <= 0 {
		o.LeafCap = 8
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 32
	}
	return o
}

// Build constructs the octree over the given points. The input slice is
// not modified. Build is deterministic.
func Build(pts []geom.Vec3, opts Options) (*Tree, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("octree: empty point set")
	}
	opts = opts.withDefaults()
	t := &Tree{
		Index:   make([]int32, len(pts)),
		Pts:     make([]geom.Vec3, len(pts)),
		leafCap: opts.LeafCap,
	}
	for i := range t.Index {
		t.Index[i] = int32(i)
		t.Pts[i] = pts[i]
		if !pts[i].IsFinite() {
			return nil, fmt.Errorf("octree: point %d is not finite: %v", i, pts[i])
		}
	}
	// Nodes ≈ 2·len/leafCap is a reasonable first guess; append grows it.
	t.Nodes = make([]Node, 0, 2+2*len(pts)/opts.LeafCap)
	// The root cube is inflated a little beyond the points so that
	// incremental Update calls (dynamic.go) have headroom: without the
	// margin, any outward motion of a hull point would force a full
	// rebuild.
	root := inflate(geom.Bound(pts).Cube(), 1.25)
	t.rootBox = root
	t.builder = opts.Builder
	t.pool = opts.Pool
	if opts.Builder == BuilderMorton {
		t.buildMorton(root, opts)
	} else {
		t.build(root, 0, int32(len(pts)), 0, opts)
	}
	t.finalize()
	return t, nil
}

// build recursively partitions the range [start,end) of t.Index/t.Pts
// that lies inside box, appending the created node (and its subtree) to
// t.Nodes and returning its index.
func (t *Tree) build(box geom.AABB, start, end int32, depth int, opts Options) int32 {
	id := int32(len(t.Nodes))
	t.Nodes = append(t.Nodes, Node{Start: start, End: end, Depth: int16(depth)})
	for i := range t.Nodes[id].Children {
		t.Nodes[id].Children[i] = NoChild
	}
	if int(end-start) <= opts.LeafCap || depth >= opts.MaxDepth {
		t.Nodes[id].IsLeaf = true
		return id
	}
	// Partition the range into the eight octants with a counting sort
	// (stable enough for our purposes; determinism only needs a fixed
	// rule, not stability).
	var counts [8]int32
	for i := start; i < end; i++ {
		counts[box.OctantIndex(t.Pts[i])]++
	}
	var offsets, next [8]int32
	off := start
	for o := 0; o < 8; o++ {
		offsets[o] = off
		next[o] = off
		off += counts[o]
	}
	// In-place cycle sort into octant buckets.
	for o := 0; o < 8; o++ {
		for next[o] < offsets[o]+counts[o] {
			i := next[o]
			oct := box.OctantIndex(t.Pts[i])
			if oct == o {
				next[o]++
				continue
			}
			j := next[oct]
			next[oct]++
			t.Pts[i], t.Pts[j] = t.Pts[j], t.Pts[i]
			t.Index[i], t.Index[j] = t.Index[j], t.Index[i]
		}
	}
	// All points in one octant and depth budget left: still recurse —
	// the octant box is smaller, so coincident-ish clusters terminate
	// via MaxDepth.
	for o := 0; o < 8; o++ {
		if counts[o] == 0 {
			continue
		}
		child := t.build(box.Octant(o), offsets[o], offsets[o]+counts[o], depth+1, opts)
		t.Nodes[id].Children[o] = child
	}
	return id
}

// finalize computes centers, radii and the leaf list. Children appear
// after their parent in t.Nodes, so one reverse pass aggregates bottom-up
// — except centers need point sums; we do a direct pass per node over its
// range for radii (O(n log n) total work since each point is scanned once
// per level).
func (t *Tree) finalize() {
	for i := len(t.Nodes) - 1; i >= 0; i-- {
		n := &t.Nodes[i]
		var c geom.Vec3
		for j := n.Start; j < n.End; j++ {
			c = c.Add(t.Pts[j])
		}
		n.Center = c.Scale(1 / float64(n.Count()))
		r2 := 0.0
		for j := n.Start; j < n.End; j++ {
			if d2 := n.Center.Dist2(t.Pts[j]); d2 > r2 {
				r2 = d2
			}
		}
		n.Radius = math.Sqrt(r2)
		if n.IsLeaf {
			t.leaves = append(t.leaves, int32(i))
		}
	}
	// leaves were collected in reverse; restore ascending node order so
	// leaf segments follow the tree-order (spatial) layout.
	for l, r := 0, len(t.leaves)-1; l < r; l, r = l+1, r-1 {
		t.leaves[l], t.leaves[r] = t.leaves[r], t.leaves[l]
	}
	t.recomputeMoments()
}

// inflate scales a box about its center.
func inflate(b geom.AABB, f float64) geom.AABB {
	c := b.Center()
	h := b.Size().Scale(f / 2)
	return geom.AABB{Min: c.Sub(h), Max: c.Add(h)}
}

// Root returns the root node index (always 0).
func (t *Tree) Root() int32 { return 0 }

// NumPoints returns the number of points in the tree.
func (t *Tree) NumPoints() int { return len(t.Pts) }

// NumNodes returns the number of nodes.
func (t *Tree) NumNodes() int { return len(t.Nodes) }

// Leaves returns the leaf node indices in tree (spatial) order. The
// returned slice is shared; callers must not modify it.
func (t *Tree) Leaves() []int32 { return t.leaves }

// LeafCap returns the leaf capacity the tree was built with.
func (t *Tree) LeafCap() int { return t.leafCap }

// Depth returns the maximum node depth.
func (t *Tree) Depth() int {
	d := 0
	for i := range t.Nodes {
		if int(t.Nodes[i].Depth) > d {
			d = int(t.Nodes[i].Depth)
		}
	}
	return d
}

// MemoryBytes estimates the resident size of the tree (nodes + index +
// points), used by the cluster runtime's per-rank memory accounting.
func (t *Tree) MemoryBytes() int64 {
	const nodeBytes = 8*8 + 4*8 + 4*2 + 8 // center+radius, children, range+depth, flags/padding
	return int64(len(t.Nodes))*nodeBytes + int64(len(t.Index))*4 + int64(len(t.Pts))*24
}

// ApplyTransform rigidly re-poses the whole tree: every stored point and
// every node center moves; radii are invariant under rigid motion, so no
// rebuild is needed. This is the paper's "move the same octree to
// different positions or rotate it ... by multiplying with proper
// transformation matrices" (Section IV.C, Step 1).
func (t *Tree) ApplyTransform(tr geom.Transform) {
	for i := range t.Pts {
		t.Pts[i] = tr.Apply(t.Pts[i])
	}
	for i := range t.Nodes {
		t.Nodes[i].Center = tr.Apply(t.Nodes[i].Center)
	}
	t.rotateMoments(tr)
}

// Validate checks the structural invariants: the index is a permutation,
// children exactly partition their parent's range, each node's ball
// contains its points, and leaves respect the capacity (unless the depth
// cap forced a larger leaf). It is used by tests and available to callers
// that construct trees from untrusted inputs.
func (t *Tree) Validate() error {
	seen := make([]bool, len(t.Index))
	for _, idx := range t.Index {
		if idx < 0 || int(idx) >= len(seen) || seen[idx] {
			return fmt.Errorf("octree: index is not a permutation (at %d)", idx)
		}
		seen[idx] = true
	}
	// Only nodes reachable from the root are checked: incremental
	// updates (see dynamic.go) can orphan old entries until CompactNodes
	// runs.
	var vErr error
	t.walkReachable(func(id int32) {
		if vErr != nil {
			return
		}
		i := int(id)
		n := &t.Nodes[i]
		if n.Start > n.End || n.End > int32(len(t.Pts)) {
			vErr = fmt.Errorf("octree: node %d has bad range [%d,%d)", i, n.Start, n.End)
			return
		}
		if n.Count() == 0 {
			vErr = fmt.Errorf("octree: node %d is empty", i)
			return
		}
		const slack = 1 + 1e-9
		for j := n.Start; j < n.End; j++ {
			if d := n.Center.Dist(t.Pts[j]); d > n.Radius*slack+1e-12 {
				vErr = fmt.Errorf("octree: node %d point %d outside ball (%g > %g)", i, j, d, n.Radius)
				return
			}
		}
		if n.IsLeaf {
			return
		}
		// Children must exactly tile [Start, End) in order.
		at := n.Start
		for _, c := range n.Children {
			if c == NoChild {
				continue
			}
			child := &t.Nodes[c]
			if child.Start != at {
				vErr = fmt.Errorf("octree: node %d children do not tile range (gap at %d)", i, at)
				return
			}
			at = child.End
		}
		if at != n.End {
			vErr = fmt.Errorf("octree: node %d children end at %d, want %d", i, at, n.End)
		}
	})
	return vErr
}
