package octree

import (
	"fmt"

	"gbpolar/internal/geom"
	"gbpolar/internal/wire"
)

// This file serializes a Tree for the checkpoint/snapshot format
// (internal/core snapshot codec). The encoding captures everything Build
// produced — nodes, the slot permutation, the reordered points, the root
// box, the leaf capacity, the builder kind and (for Morton trees) the
// per-slot keys — so a decoded tree is node-for-node identical to the
// original and immediately usable by the kernels and the incremental
// update machinery, with no rebuild. The scheduling pool is runtime
// state and is not serialized.

// AppendTo encodes the tree onto w.
func (t *Tree) AppendTo(w *wire.Writer) {
	w.U32(uint32(len(t.Nodes)))
	for i := range t.Nodes {
		n := &t.Nodes[i]
		w.F64(n.Center.X)
		w.F64(n.Center.Y)
		w.F64(n.Center.Z)
		w.F64(n.Radius)
		for _, c := range n.Children {
			w.I32(c)
		}
		w.I32(n.Start)
		w.I32(n.End)
		w.I32(int32(n.Depth))
		w.Bool(n.IsLeaf)
	}
	w.I32s(t.Index)
	w.U32(uint32(len(t.Pts)))
	for _, p := range t.Pts {
		w.F64(p.X)
		w.F64(p.Y)
		w.F64(p.Z)
	}
	w.U32(uint32(t.leafCap))
	for _, v := range []float64{t.rootBox.Min.X, t.rootBox.Min.Y, t.rootBox.Min.Z,
		t.rootBox.Max.X, t.rootBox.Max.Y, t.rootBox.Max.Z} {
		w.F64(v)
	}
	w.U8(uint8(t.builder))
	w.U64s(t.keys)
	w.U32(uint32(len(t.moments)))
	for _, ms := range t.moments {
		w.Str(ms.Name)
		w.Bool(ms.Vec)
		w.U32(uint32(len(ms.Ch)))
		for c := range ms.Ch {
			ch := &ms.Ch[c]
			w.F64s(ch.w)
			w.F64s(ch.W)
			dFlat := make([]float64, 0, 3*len(ch.D))
			for _, d := range ch.D {
				dFlat = append(dFlat, d.X, d.Y, d.Z)
			}
			w.F64s(dFlat)
			qFlat := make([]float64, 0, 6*len(ch.Q))
			for _, q := range ch.Q {
				qFlat = append(qFlat, q.XX, q.YY, q.ZZ, q.XY, q.XZ, q.YZ)
			}
			w.F64s(qFlat)
		}
	}
}

// encodedNodeBytes is the fixed per-node size of the encoding above,
// used to validate the node count against the remaining input before
// allocating.
const encodedNodeBytes = 3*8 + 8 + 8*4 + 4 + 4 + 4 + 1

// DecodeTree reads a tree encoded by AppendTo and re-validates every
// structural invariant, so a corrupted input yields an error rather than
// a tree that panics inside a kernel sweep. The leaf list is recomputed
// (ascending node order, as finalize produces it) instead of trusted.
func DecodeTree(r *wire.Reader) (*Tree, error) {
	nNodes := int(r.U32())
	if r.Err() != nil || nNodes <= 0 || nNodes > r.Remaining()/encodedNodeBytes {
		return nil, fmt.Errorf("octree: decode: bad node count %d", nNodes)
	}
	t := &Tree{Nodes: make([]Node, nNodes)}
	for i := range t.Nodes {
		n := &t.Nodes[i]
		n.Center = geom.Vec3{X: r.F64(), Y: r.F64(), Z: r.F64()}
		n.Radius = r.F64()
		for j := range n.Children {
			n.Children[j] = r.I32()
		}
		n.Start = r.I32()
		n.End = r.I32()
		n.Depth = int16(r.I32())
		n.IsLeaf = r.Bool()
	}
	t.Index = r.I32s()
	nPts := int(r.U32())
	if r.Err() != nil || nPts <= 0 || nPts > r.Remaining()/24 {
		return nil, fmt.Errorf("octree: decode: bad point count %d", nPts)
	}
	t.Pts = make([]geom.Vec3, nPts)
	for i := range t.Pts {
		t.Pts[i] = geom.Vec3{X: r.F64(), Y: r.F64(), Z: r.F64()}
	}
	t.leafCap = int(r.U32())
	t.rootBox.Min = geom.Vec3{X: r.F64(), Y: r.F64(), Z: r.F64()}
	t.rootBox.Max = geom.Vec3{X: r.F64(), Y: r.F64(), Z: r.F64()}
	b := Builder(r.U8())
	t.keys = r.U64s()
	// Moment sets: decoded verbatim (a snapshot restores moments without
	// recomputation), every array length validated against the node and
	// point counts so a truncated or corrupted moment block fails here
	// rather than inside a far-kernel sweep.
	nSets := int(r.U32())
	if r.Err() != nil || nSets < 0 || nSets > 16 {
		return nil, fmt.Errorf("octree: decode: bad moment-set count %d", nSets)
	}
	for s := 0; s < nSets; s++ {
		ms := &MomentSet{Name: r.Str(), Vec: r.Bool()}
		nCh := int(r.U32())
		if r.Err() != nil || nCh <= 0 || nCh > 8 || (ms.Vec && nCh != 3) {
			return nil, fmt.Errorf("octree: decode: moment set %q has bad channel count %d", ms.Name, nCh)
		}
		ms.Ch = make([]MomentChannel, nCh)
		for c := 0; c < nCh; c++ {
			ch := &ms.Ch[c]
			ch.w = r.F64s()
			ch.W = r.F64s()
			dFlat := r.F64s()
			qFlat := r.F64s()
			if r.Err() != nil {
				break
			}
			if len(ch.w) != nPts || len(ch.W) != nNodes ||
				len(dFlat) != 3*nNodes || len(qFlat) != 6*nNodes {
				return nil, fmt.Errorf("octree: decode: moment set %q channel %d arrays truncated (%d/%d/%d/%d for %d nodes, %d points)",
					ms.Name, c, len(ch.w), len(ch.W), len(dFlat), len(qFlat), nNodes, nPts)
			}
			ch.D = make([]geom.Vec3, nNodes)
			ch.Q = make([]geom.Sym3, nNodes)
			for i := 0; i < nNodes; i++ {
				ch.D[i] = geom.Vec3{X: dFlat[3*i], Y: dFlat[3*i+1], Z: dFlat[3*i+2]}
				ch.Q[i] = geom.Sym3{XX: qFlat[6*i], YY: qFlat[6*i+1], ZZ: qFlat[6*i+2],
					XY: qFlat[6*i+3], XZ: qFlat[6*i+4], YZ: qFlat[6*i+5]}
			}
		}
		t.moments = append(t.moments, ms)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("octree: decode: %w", err)
	}
	if b != BuilderRecursive && b != BuilderMorton {
		return nil, fmt.Errorf("octree: decode: unknown builder %d", int(b))
	}
	t.builder = b
	if len(t.Index) != nPts {
		return nil, fmt.Errorf("octree: decode: %d index entries for %d points", len(t.Index), nPts)
	}
	if t.leafCap <= 0 {
		return nil, fmt.Errorf("octree: decode: leaf capacity %d", t.leafCap)
	}
	if t.keys != nil && len(t.keys) != nPts {
		return nil, fmt.Errorf("octree: decode: %d keys for %d points", len(t.keys), nPts)
	}
	// Children must point strictly forward (Build appends children after
	// their parent): this bounds every child index AND makes the node
	// graph acyclic before Validate walks it.
	for i := range t.Nodes {
		for _, c := range t.Nodes[i].Children {
			if c == NoChild {
				continue
			}
			if c <= int32(i) || int(c) >= nNodes {
				return nil, fmt.Errorf("octree: decode: node %d has invalid child %d", i, c)
			}
		}
		if t.Nodes[i].Start < 0 || t.Nodes[i].End > int32(nPts) {
			return nil, fmt.Errorf("octree: decode: node %d range [%d,%d) out of bounds",
				i, t.Nodes[i].Start, t.Nodes[i].End)
		}
	}
	for i := range t.Nodes {
		if t.Nodes[i].IsLeaf {
			t.leaves = append(t.leaves, int32(i))
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
