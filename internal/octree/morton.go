package octree

import (
	"fmt"
	"sort"

	"gbpolar/internal/geom"
	"gbpolar/internal/sched"
)

// This file is the Morton (sorted) cold-path builder. Instead of the
// reference top-down recursion — which shuffles every point once per
// tree level with a per-node counting/cycle sort — it computes one
// 63-bit Morton key per point, sorts (key, original index) pairs with a
// chunk-parallel LSD radix sort, permutes the point store once, and then
// derives the node hierarchy from the sorted key array: a node's octant
// boundaries are binary searches on the 3-bit key digit at its depth, so
// hierarchy construction touches keys, never points. This is the
// classic space-filling-curve tree build (DASHMM, arXiv:1710.06316;
// Multibody Multipole Methods, arXiv:1105.2769): one sort buys both the
// construction speedup and the traversal-friendly memory layout, since
// Index/Pts come out in depth-first spatial order.
//
// Because geom.MortonKey replays the recursive descent's own
// floating-point comparisons (see geom/morton.go), the derived hierarchy
// is node-for-node identical to the recursive builder's down to
// geom.MortonBits levels; only point order WITHIN a leaf may differ
// (key order vs cycle-sort order), which perturbs nothing but the
// summation order of leaf centroids. Inputs that need deeper splits than
// the key lattice resolves (sub-lattice clusters of coincident points)
// terminate in an oversized leaf at depth MortonBits instead of
// recursing to MaxDepth; Validate accepts both shapes.

// Builder selects the tree construction algorithm.
type Builder int

const (
	// BuilderRecursive is the reference top-down builder (octree.go).
	// It is the zero value, so existing callers keep their behavior.
	BuilderRecursive Builder = iota
	// BuilderMorton sorts points by 63-bit Morton key (parallel LSD
	// radix sort) and derives the hierarchy from the sorted keys.
	BuilderMorton
)

// String returns the flag-friendly name of the builder.
func (b Builder) String() string {
	switch b {
	case BuilderRecursive:
		return "recursive"
	case BuilderMorton:
		return "morton"
	}
	return fmt.Sprintf("Builder(%d)", int(b))
}

// ParseBuilder parses a -builder flag value.
func ParseBuilder(s string) (Builder, error) {
	switch s {
	case "recursive":
		return BuilderRecursive, nil
	case "morton":
		return BuilderMorton, nil
	}
	return 0, fmt.Errorf("octree: unknown builder %q (want recursive|morton)", s)
}

// BuilderKind returns the builder the tree was constructed with.
func (t *Tree) BuilderKind() Builder { return t.builder }

// Keys returns the Morton keys in tree-slot order, or nil for trees
// whose keys are unavailable (recursive builds, or after an untracked
// Update moved points). The slice is shared; callers must not modify it.
func (t *Tree) Keys() []uint64 { return t.keys }

// buildMorton constructs the hierarchy for the point set already staged
// in t.Pts/t.Index (input order) inside the given root cube.
func (t *Tree) buildMorton(root geom.AABB, opts Options) {
	n := len(t.Pts)
	keys := make([]uint64, n)
	parallelRange(opts.Pool, n, 2048, func(lo, hi int) {
		geom.MortonKeys(root, t.Pts[lo:hi], keys[lo:hi])
	})
	radixSortKeys(keys, t.Index, opts.Pool)
	// One gather permutes the point store into key order; after this the
	// hierarchy derivation never touches coordinates again.
	src := make([]geom.Vec3, n)
	copy(src, t.Pts)
	parallelRange(opts.Pool, n, 2048, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t.Pts[i] = src[t.Index[i]]
		}
	})
	t.keys = keys
	maxDepth := opts.MaxDepth
	if maxDepth > geom.MortonBits {
		maxDepth = geom.MortonBits
	}
	t.buildFromKeys(NoChild, 0, int32(n), 0, maxDepth, opts.LeafCap)
}

// buildFromKeys writes the node covering key range [start,end) at the
// given depth — appended when reuse is NoChild, in place otherwise (the
// tracked update re-splitting an overfull leaf) — and recurses into its
// octants, mirroring build()'s pre-order node layout exactly. Within a
// node all keys share the prefix above depth, so the 3-bit digit AT
// depth is non-decreasing and each octant is one contiguous run found
// by binary search.
func (t *Tree) buildFromKeys(reuse, start, end int32, depth, maxDepth, leafCap int) int32 {
	id := reuse
	if id == NoChild {
		id = int32(len(t.Nodes))
		t.Nodes = append(t.Nodes, Node{})
	}
	t.Nodes[id] = Node{Start: start, End: end, Depth: int16(depth)}
	for i := range t.Nodes[id].Children {
		t.Nodes[id].Children[i] = NoChild
	}
	if int(end-start) <= leafCap || depth >= maxDepth {
		t.Nodes[id].IsLeaf = true
		return id
	}
	cur := start
	for o := 0; o < 8 && cur < end; o++ {
		hi := cur + int32(sort.Search(int(end-cur), func(i int) bool {
			return geom.MortonOctant(t.keys[cur+int32(i)], depth) > o
		}))
		if hi == cur {
			continue
		}
		child := t.buildFromKeys(NoChild, cur, hi, depth+1, maxDepth, leafCap)
		t.Nodes[id].Children[o] = child
		cur = hi
	}
	return id
}

const (
	radixBits    = 8
	radixBuckets = 1 << radixBits
	// radixPasses covers the full 63-bit key (8 × 8 = 64 bits); passes
	// whose digit is constant across all keys are skipped, so shallow
	// key distributions pay only for the digits they populate.
	radixPasses = 8
	// radixMinChunk keeps per-chunk histogram work worth the spawn: a
	// smaller input collapses to fewer (or one) chunks.
	radixMinChunk = 4096
)

// radixSortKeys stably sorts keys ascending, permuting idx alongside.
// Each pass counts 8-bit digits into per-chunk histograms in parallel,
// takes a serial digit-major prefix sum, and scatters chunks to their
// precomputed disjoint destinations — chunk boundaries depend only on
// (len, chunk count), not on worker scheduling, so the result is
// deterministic for any pool size.
func radixSortKeys(keys []uint64, idx []int32, pool *sched.Pool) {
	n := len(keys)
	if n < 2 {
		return
	}
	nchunks := 1
	if pool != nil {
		nchunks = pool.NumWorkers()
	}
	if m := (n + radixMinChunk - 1) / radixMinChunk; nchunks > m {
		nchunks = m
	}
	if nchunks < 1 {
		nchunks = 1
	}
	tmpK := make([]uint64, n)
	tmpI := make([]int32, n)
	hist := make([]int32, nchunks*radixBuckets)
	src, dst, srcI, dstI := keys, tmpK, idx, tmpI
	for pass := 0; pass < radixPasses; pass++ {
		shift := uint(pass * radixBits)
		for i := range hist {
			hist[i] = 0
		}
		parallelChunks(pool, nchunks, n, func(c, lo, hi int) {
			h := hist[c*radixBuckets : (c+1)*radixBuckets]
			for i := lo; i < hi; i++ {
				h[(src[i]>>shift)&(radixBuckets-1)]++
			}
		})
		// Skip passes where every key shares the digit: no key can move.
		constant := false
		for d := 0; d < radixBuckets; d++ {
			var tot int32
			for c := 0; c < nchunks; c++ {
				tot += hist[c*radixBuckets+d]
			}
			if tot == 0 {
				continue
			}
			constant = tot == int32(n)
			break
		}
		if constant {
			continue
		}
		// Digit-major prefix sum turns counts into starting offsets: all
		// of digit d's slots (chunk 0..k) precede digit d+1's, and within
		// a digit chunks stay in order — that ordering is the stability.
		var pos int32
		for d := 0; d < radixBuckets; d++ {
			for c := 0; c < nchunks; c++ {
				v := hist[c*radixBuckets+d]
				hist[c*radixBuckets+d] = pos
				pos += v
			}
		}
		parallelChunks(pool, nchunks, n, func(c, lo, hi int) {
			cur := hist[c*radixBuckets : (c+1)*radixBuckets]
			for i := lo; i < hi; i++ {
				d := (src[i] >> shift) & (radixBuckets - 1)
				p := cur[d]
				cur[d] = p + 1
				dst[p] = src[i]
				dstI[p] = srcI[i]
			}
		})
		src, dst = dst, src
		srcI, dstI = dstI, srcI
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
		copy(idx, srcI)
	}
}

// parallelChunks runs fn over nchunks fixed slices of [0,n). Boundaries
// are a pure function of (nchunks, n) so concurrent histogram/scatter
// positions are deterministic; with a nil pool it degrades to a serial
// loop.
func parallelChunks(pool *sched.Pool, nchunks, n int, fn func(chunk, lo, hi int)) {
	if pool == nil || nchunks == 1 {
		for c := 0; c < nchunks; c++ {
			fn(c, c*n/nchunks, (c+1)*n/nchunks)
		}
		return
	}
	sched.ParallelFor(pool, nchunks, 1, func(clo, chi, _ int) {
		for c := clo; c < chi; c++ {
			fn(c, c*n/nchunks, (c+1)*n/nchunks)
		}
	})
}

// parallelRange applies fn over [0,n) in grain-sized parallel chunks,
// or serially with a nil pool.
func parallelRange(pool *sched.Pool, n, grain int, fn func(lo, hi int)) {
	if pool == nil {
		fn(0, n)
		return
	}
	sched.ParallelFor(pool, n, grain, func(lo, hi, _ int) { fn(lo, hi) })
}
