package octree

import (
	"fmt"

	"gbpolar/internal/geom"
)

// This file adds per-node multipole moments to the tree: the total
// weight, the first moment (dipole) and the raw second moment
// (quadrupole) of one or more caller-supplied weight channels, all taken
// about each node's center. The far-field kernels in internal/core use
// them to correct the paper's zeroth-order pseudo-particle approximation
// so the opening criterion can loosen (Params.FarOrder, DESIGN.md §15).
//
// Moments are attached once (AttachMoments) with weights given in the
// ORIGINAL point order — the same order Build's input used — so they
// survive every slot permutation the incremental updates perform. They
// are recomputed bottom-up in one pass whenever node geometry refreshes
// (build finalize, Update, UpdateTracked, rebuildAll) and rotated in
// place under ApplyTransform, so they are always consistent with the
// node centers the kernels read.

// MomentChannel holds one weight channel's per-node moments. All three
// arrays are indexed by node id and sized len(Tree.Nodes); entries for
// orphaned (unreachable) nodes are stale but in-bounds.
type MomentChannel struct {
	// W is the total weight under each node: Σ w.
	W []float64
	// D is the first moment about the node center: Σ w·(p − Center).
	D []geom.Vec3
	// Q is the raw (NOT detraced) second moment about the node center:
	// Σ w·(p − Center) ⊗ (p − Center).
	Q []geom.Sym3

	// w holds the per-point weights in original point order.
	w []float64
}

// MomentSet is one named collection of channels attached to a tree.
type MomentSet struct {
	Name string
	// Vec marks the three channels as the components of one vector
	// density (e.g. area-weighted surface normals): under ApplyTransform
	// the per-point weight vectors rotate, which mixes the channels, in
	// addition to each channel's D/Q rotating as tensors.
	Vec bool
	Ch  []MomentChannel
}

// AttachMoments registers (or replaces) a named moment set. weights holds
// one slice per channel, each in the ORIGINAL point order and of length
// NumPoints. vec requires exactly three channels (the x/y/z components
// of a vector density). The moments are computed immediately and kept
// current by every subsequent update of the tree.
func (t *Tree) AttachMoments(name string, weights [][]float64, vec bool) error {
	if len(weights) == 0 {
		return fmt.Errorf("octree: AttachMoments(%q): no channels", name)
	}
	if vec && len(weights) != 3 {
		return fmt.Errorf("octree: AttachMoments(%q): vector set needs 3 channels, got %d", name, len(weights))
	}
	ms := &MomentSet{Name: name, Vec: vec, Ch: make([]MomentChannel, len(weights))}
	for c, w := range weights {
		if len(w) != t.NumPoints() {
			return fmt.Errorf("octree: AttachMoments(%q): channel %d has %d weights, tree has %d points",
				name, c, len(w), t.NumPoints())
		}
		ms.Ch[c].w = append([]float64(nil), w...)
	}
	for i, old := range t.moments {
		if old.Name == name {
			t.moments[i] = ms
			t.recomputeMomentSet(ms)
			return nil
		}
	}
	t.moments = append(t.moments, ms)
	t.recomputeMomentSet(ms)
	return nil
}

// MomentsOf returns the named moment set, or nil.
func (t *Tree) MomentsOf(name string) *MomentSet {
	for _, ms := range t.moments {
		if ms.Name == name {
			return ms
		}
	}
	return nil
}

// recomputeMoments refreshes every attached moment set. Called after any
// operation that changes node geometry or point placement.
func (t *Tree) recomputeMoments() {
	for _, ms := range t.moments {
		t.recomputeMomentSet(ms)
	}
}

// recomputeMomentSet recomputes one set bottom-up: leaves directly from
// their point ranges, internals by translating children's moments to the
// parent center (M2M). Children always carry a larger node id than their
// parent (Build appends children after the parent and every incremental
// path preserves that — the snapshot codec rejects trees violating it),
// so one descending-id pass visits children before parents, the same
// trick NewEpolContext's histogram aggregation uses. Orphaned nodes get
// values from stale geometry; they are never read.
func (t *Tree) recomputeMomentSet(ms *MomentSet) {
	nn := len(t.Nodes)
	for c := range ms.Ch {
		ch := &ms.Ch[c]
		if len(ch.W) != nn {
			ch.W = make([]float64, nn)
			ch.D = make([]geom.Vec3, nn)
			ch.Q = make([]geom.Sym3, nn)
		}
		for i := nn - 1; i >= 0; i-- {
			nd := &t.Nodes[i]
			var w float64
			var d geom.Vec3
			var q geom.Sym3
			if nd.IsLeaf {
				for s := nd.Start; s < nd.End; s++ {
					wt := ch.w[t.Index[s]]
					dl := t.Pts[s].Sub(nd.Center)
					w += wt
					d = d.Add(dl.Scale(wt))
					q = q.Add(geom.Outer(dl).Scale(wt))
				}
			} else {
				for _, cc := range nd.Children {
					if cc == NoChild {
						continue
					}
					sh := t.Nodes[cc].Center.Sub(nd.Center)
					cw, cd, cq := ch.W[cc], ch.D[cc], ch.Q[cc]
					w += cw
					d = d.Add(cd).Add(sh.Scale(cw))
					q = q.Add(cq).Add(geom.SymOuter(cd, sh)).Add(geom.Outer(sh).Scale(cw))
				}
			}
			ch.W[i], ch.D[i], ch.Q[i] = w, d, q
		}
	}
}

// rotateMoments applies a rigid transform to every attached set in place:
// each channel's D rotates as a vector and Q as a rank-2 tensor; vector
// sets additionally mix their channels (and rotate the stored per-point
// weight vectors), since the weight components themselves rotate.
func (t *Tree) rotateMoments(tr geom.Transform) {
	r := tr.R
	rot := func(v geom.Vec3) geom.Vec3 {
		return geom.Vec3{
			X: r[0][0]*v.X + r[0][1]*v.Y + r[0][2]*v.Z,
			Y: r[1][0]*v.X + r[1][1]*v.Y + r[1][2]*v.Z,
			Z: r[2][0]*v.X + r[2][1]*v.Y + r[2][2]*v.Z,
		}
	}
	for _, ms := range t.moments {
		// Tensor rotation of every channel's moments.
		for c := range ms.Ch {
			ch := &ms.Ch[c]
			for i := range ch.D {
				ch.D[i] = rot(ch.D[i])
				ch.Q[i] = ch.Q[i].Rotated(r)
			}
		}
		if !ms.Vec {
			continue
		}
		// Channel mixing: the new component a is Σ_b R[a][b] · channel b,
		// applied to the per-node moments and to the per-point weights.
		chans := [3]*MomentChannel{&ms.Ch[0], &ms.Ch[1], &ms.Ch[2]}
		x, y, z := chans[0], chans[1], chans[2]
		for i := range x.W {
			w := [3]float64{x.W[i], y.W[i], z.W[i]}
			d := [3]geom.Vec3{x.D[i], y.D[i], z.D[i]}
			q := [3]geom.Sym3{x.Q[i], y.Q[i], z.Q[i]}
			for a, ch := range chans {
				ch.W[i] = r[a][0]*w[0] + r[a][1]*w[1] + r[a][2]*w[2]
				ch.D[i] = d[0].Scale(r[a][0]).Add(d[1].Scale(r[a][1])).Add(d[2].Scale(r[a][2]))
				ch.Q[i] = q[0].Scale(r[a][0]).Add(q[1].Scale(r[a][1])).Add(q[2].Scale(r[a][2]))
			}
		}
		for p := range x.w {
			w := [3]float64{x.w[p], y.w[p], z.w[p]}
			for a, ch := range chans {
				ch.w[p] = r[a][0]*w[0] + r[a][1]*w[1] + r[a][2]*w[2]
			}
		}
	}
}

// remapMoments rewrites per-node moment arrays after CompactNodes: order
// lists the surviving old node ids in their new order.
func (t *Tree) remapMoments(order []int32) {
	for _, ms := range t.moments {
		for c := range ms.Ch {
			ch := &ms.Ch[c]
			w := make([]float64, len(order))
			d := make([]geom.Vec3, len(order))
			q := make([]geom.Sym3, len(order))
			for newID, oldID := range order {
				w[newID], d[newID], q[newID] = ch.W[oldID], ch.D[oldID], ch.Q[oldID]
			}
			ch.W, ch.D, ch.Q = w, d, q
		}
	}
}
