package octree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
)

func randPts(rng *rand.Rand, n int, scale float64) []geom.Vec3 {
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.V(
			(rng.Float64()-0.5)*scale,
			(rng.Float64()-0.5)*scale,
			(rng.Float64()-0.5)*scale,
		)
	}
	return pts
}

func TestBuildEmpty(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Error("empty point set should error")
	}
}

func TestBuildNonFinite(t *testing.T) {
	pts := []geom.Vec3{{X: 1}, {X: math.NaN()}}
	if _, err := Build(pts, Options{}); err == nil {
		t.Error("NaN point should error")
	}
}

func TestBuildSinglePoint(t *testing.T) {
	tr, err := Build([]geom.Vec3{geom.V(1, 2, 3)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 1 || !tr.Nodes[0].IsLeaf {
		t.Errorf("single point should give one leaf, got %d nodes", tr.NumNodes())
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
	if tr.Nodes[0].Radius != 0 {
		t.Errorf("radius = %v", tr.Nodes[0].Radius)
	}
}

func TestBuildValidateRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(3000)
		cap := 1 + rng.Intn(32)
		tr, err := Build(randPts(rng, n, 50), Options{LeafCap: cap})
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d (n=%d cap=%d): %v", trial, n, cap, err)
		}
		if tr.NumPoints() != n {
			t.Fatalf("NumPoints = %d want %d", tr.NumPoints(), n)
		}
	}
}

func TestLeafCapRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	tr, err := Build(randPts(rng, 2000, 100), Options{LeafCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, li := range tr.Leaves() {
		n := &tr.Nodes[li]
		if n.Count() > 8 && int(n.Depth) < 32 {
			t.Fatalf("leaf %d has %d points at depth %d", li, n.Count(), n.Depth)
		}
	}
}

func TestLeavesCoverAllPointsOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tr, err := Build(randPts(rng, 1234, 80), Options{LeafCap: 5})
	if err != nil {
		t.Fatal(err)
	}
	covered := make([]bool, tr.NumPoints())
	prevEnd := int32(0)
	for _, li := range tr.Leaves() {
		n := &tr.Nodes[li]
		if n.Start != prevEnd {
			t.Fatalf("leaf ranges not contiguous in tree order: start %d after end %d", n.Start, prevEnd)
		}
		prevEnd = n.End
		for j := n.Start; j < n.End; j++ {
			if covered[j] {
				t.Fatalf("slot %d covered twice", j)
			}
			covered[j] = true
		}
	}
	if prevEnd != int32(tr.NumPoints()) {
		t.Fatalf("leaves end at %d, want %d", prevEnd, tr.NumPoints())
	}
}

func TestCoincidentPointsTerminate(t *testing.T) {
	pts := make([]geom.Vec3, 100)
	for i := range pts {
		pts[i] = geom.V(1, 1, 1)
	}
	tr, err := Build(pts, Options{LeafCap: 4, MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
	if tr.Depth() > 10 {
		t.Errorf("depth %d exceeds cap", tr.Depth())
	}
}

func TestDeterministicBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	pts := randPts(rng, 500, 60)
	a, err := Build(pts, Options{LeafCap: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(pts, Options{LeafCap: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() {
		t.Fatal("node counts differ")
	}
	for i := range a.Index {
		if a.Index[i] != b.Index[i] {
			t.Fatal("index permutations differ")
		}
	}
}

func TestIndexMapsToOriginalPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	pts := randPts(rng, 777, 30)
	tr, err := Build(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, orig := range tr.Index {
		if tr.Pts[i] != pts[orig] {
			t.Fatalf("slot %d: Pts=%v, original[%d]=%v", i, tr.Pts[i], orig, pts[orig])
		}
	}
}

func TestCenterIsCentroid(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	pts := randPts(rng, 300, 40)
	tr, err := Build(pts, Options{LeafCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Nodes[tr.Root()]
	want := geom.Centroid(pts)
	if root.Center.Dist(want) > 1e-9 {
		t.Errorf("root center %v, centroid %v", root.Center, want)
	}
}

func TestDepthGrowsLogarithmically(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	tr, err := Build(randPts(rng, 10000, 100), Options{LeafCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform points: depth ≈ log8(n/cap) + O(1); allow generous slack.
	if d := tr.Depth(); d > 12 {
		t.Errorf("depth %d too large for uniform points", d)
	}
}

func TestApplyTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	pts := randPts(rng, 400, 50)
	tr, err := Build(pts, Options{LeafCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	radiiBefore := make([]float64, tr.NumNodes())
	for i := range tr.Nodes {
		radiiBefore[i] = tr.Nodes[i].Radius
	}
	m := geom.Translate(geom.V(5, -3, 2)).Compose(geom.RotateAxis(geom.V(1, 1, 0), 0.7))
	tr.ApplyTransform(m)
	for i := range tr.Nodes {
		if tr.Nodes[i].Radius != radiiBefore[i] {
			t.Fatal("transform changed a radius")
		}
	}
	// Containment still holds (Validate checks center/radius/points).
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Points match the transformed originals.
	for i, orig := range tr.Index {
		want := m.Apply(pts[orig])
		if tr.Pts[i].Dist(want) > 1e-9 {
			t.Fatalf("slot %d not transformed correctly", i)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	tr, err := Build(randPts(rng, 100, 20), Options{LeafCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr.Index[0] = tr.Index[1] // break permutation
	if tr.Validate() == nil {
		t.Error("corrupted index not caught")
	}
	tr2, _ := Build(randPts(rng, 100, 20), Options{LeafCap: 4})
	tr2.Nodes[0].Radius = 0.001
	if tr2.Validate() == nil {
		t.Error("corrupted radius not caught")
	}
}

func TestQuickPermutationProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 3 {
			return true
		}
		pts := make([]geom.Vec3, 0, len(raw)/3)
		for i := 0; i+2 < len(raw); i += 3 {
			v := geom.V(math.Mod(raw[i], 1e6), math.Mod(raw[i+1], 1e6), math.Mod(raw[i+2], 1e6))
			if !v.IsFinite() {
				return true
			}
			pts = append(pts, v)
		}
		tr, err := Build(pts, Options{LeafCap: 3})
		if err != nil {
			return false
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMoleculeTree(t *testing.T) {
	m := molecule.GenProtein("oct", 3000, 40)
	tr, err := Build(m.Positions(), Options{LeafCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Linear space: node count bounded by ~4× points/leafCap for packed
	// molecules (the paper's "space linear in the number of atoms").
	maxNodes := 4 * (m.NumAtoms()/tr.LeafCap() + 1) * 2
	if tr.NumNodes() > maxNodes {
		t.Errorf("tree has %d nodes for %d atoms — not linear-ish", tr.NumNodes(), m.NumAtoms())
	}
}

func TestMemoryBytesPositiveAndLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	small, _ := Build(randPts(rng, 100, 10), Options{})
	big, _ := Build(randPts(rng, 10000, 10), Options{})
	if small.MemoryBytes() <= 0 {
		t.Error("non-positive memory estimate")
	}
	ratio := float64(big.MemoryBytes()) / float64(small.MemoryBytes())
	if ratio < 20 || ratio > 500 {
		t.Errorf("memory scaling ratio %v for 100x points", ratio)
	}
}

func BenchmarkBuild10k(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	pts := randPts(rng, 10000, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(pts, Options{LeafCap: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
