package octree

import (
	"math"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"gbpolar/internal/geom"
	"gbpolar/internal/sched"
)

func TestRadixSortKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := sched.NewPool(4)
	defer pool.Close()
	for _, n := range []int{0, 1, 2, 3, 100, 4095, 4096, 50000} {
		keys := make([]uint64, n)
		for i := range keys {
			switch rng.Intn(3) {
			case 0:
				keys[i] = rng.Uint64() >> 1 // full-range 63-bit
			case 1:
				keys[i] = uint64(rng.Intn(16)) // heavy duplicates
			default:
				keys[i] = rng.Uint64() & 0xffff // constant high digits
			}
		}
		want := slices.Clone(keys)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for _, p := range []*sched.Pool{nil, pool} {
			got := slices.Clone(keys)
			idx := make([]int32, n)
			for i := range idx {
				idx[i] = int32(i)
			}
			radixSortKeys(got, idx, p)
			if !slices.Equal(got, want) {
				t.Fatalf("n=%d pool=%v: keys not sorted", n, p != nil)
			}
			// idx must be the permutation that produced the sorted keys,
			// and stable: equal keys keep ascending original positions.
			for i := range got {
				if keys[idx[i]] != got[i] {
					t.Fatalf("n=%d: idx[%d]=%d is not the origin of key %#x", n, i, idx[i], got[i])
				}
				if i > 0 && got[i] == got[i-1] && idx[i] < idx[i-1] {
					t.Fatalf("n=%d: sort not stable at %d (idx %d after %d)", n, i, idx[i], idx[i-1])
				}
			}
		}
	}
}

// TestMortonBuildMatchesRecursive is the structural half of the
// equivalence property: on realistic inputs the Morton build must
// produce the recursive builder's node hierarchy node for node — same
// pre-order layout, ranges, depths, leaf flags and child wiring. Only
// point order WITHIN a leaf may differ, so per-leaf index SETS are
// compared, and centers/radii (whose summation order follows slot
// order) to a tight tolerance.
func TestMortonBuildMatchesRecursive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pool := sched.NewPool(4)
	defer pool.Close()
	for _, n := range []int{1, 7, 8, 9, 100, 3000} {
		pts := randPts(rng, n, 40)
		ref, err := Build(pts, Options{})
		if err != nil {
			t.Fatal(err)
		}
		mor, err := Build(pts, Options{Builder: BuilderMorton, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		if err := mor.Validate(); err != nil {
			t.Fatalf("n=%d: morton tree invalid: %v", n, err)
		}
		if mor.NumNodes() != ref.NumNodes() {
			t.Fatalf("n=%d: %d nodes, recursive has %d", n, mor.NumNodes(), ref.NumNodes())
		}
		for i := range ref.Nodes {
			a, b := &ref.Nodes[i], &mor.Nodes[i]
			if a.Start != b.Start || a.End != b.End || a.Depth != b.Depth ||
				a.IsLeaf != b.IsLeaf || a.Children != b.Children {
				t.Fatalf("n=%d node %d: recursive %+v vs morton %+v", n, i, a, b)
			}
			if a.Center.Dist(b.Center) > 1e-12*(1+a.Radius) ||
				math.Abs(a.Radius-b.Radius) > 1e-12*(1+a.Radius) {
				t.Fatalf("n=%d node %d: geometry drifted: %v/%g vs %v/%g",
					n, i, a.Center, a.Radius, b.Center, b.Radius)
			}
		}
		if !slices.Equal(ref.Leaves(), mor.Leaves()) {
			t.Fatalf("n=%d: leaf lists differ", n)
		}
		for _, li := range ref.Leaves() {
			nd := &ref.Nodes[li]
			sa := slices.Clone(ref.Index[nd.Start:nd.End])
			sb := slices.Clone(mor.Index[nd.Start:nd.End])
			slices.Sort(sa)
			slices.Sort(sb)
			if !slices.Equal(sa, sb) {
				t.Fatalf("n=%d leaf %d: index sets differ: %v vs %v", n, li, sa, sb)
			}
		}
	}
}

// TestMortonBuildDeterministic: the chunk-parallel sort and build must
// give bit-identical trees for any pool size, including none.
func TestMortonBuildDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := randPts(rng, 20000, 25)
	var ref *Tree
	for _, workers := range []int{0, 1, 3, 8} {
		var pool *sched.Pool
		if workers > 0 {
			pool = sched.NewPool(workers)
		}
		tr, err := Build(pts, Options{Builder: BuilderMorton, Pool: pool})
		if pool != nil {
			pool.Close()
		}
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = tr
			continue
		}
		if !slices.Equal(tr.Index, ref.Index) || !slices.Equal(tr.Keys(), ref.Keys()) {
			t.Fatalf("workers=%d: index/keys differ from serial build", workers)
		}
		if !slices.Equal(tr.Nodes, ref.Nodes) {
			t.Fatalf("workers=%d: nodes differ from serial build", workers)
		}
	}
}

// TestMortonDegenerateInputs: coincident clusters, duplicates, planar
// and collinear sets, and a single point. The recursive reference can
// split sub-lattice clusters past the key resolution, so these assert
// the Morton tree's own invariants (Validate, slot ordering by key)
// rather than structural equality.
func TestMortonDegenerateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cases := map[string][]geom.Vec3{
		"single":     {geom.V(3, -2, 5)},
		"coincident": make([]geom.Vec3, 50),
		"planar":     make([]geom.Vec3, 300),
		"collinear":  make([]geom.Vec3, 300),
		"duplicates": make([]geom.Vec3, 400),
	}
	for i := range cases["coincident"] {
		cases["coincident"][i] = geom.V(1, 2, 3)
	}
	for i := range cases["planar"] {
		cases["planar"][i] = geom.V(rng.Float64()*10, rng.Float64()*10, 4.5)
	}
	for i := range cases["collinear"] {
		x := rng.Float64() * 20
		cases["collinear"][i] = geom.V(x, 2*x+1, -x)
	}
	for i := range cases["duplicates"] {
		p := geom.V(float64(rng.Intn(5)), float64(rng.Intn(5)), float64(rng.Intn(5)))
		cases["duplicates"][i] = p
	}
	for name, pts := range cases {
		tr, err := Build(pts, Options{Builder: BuilderMorton})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.NumPoints() != len(pts) {
			t.Fatalf("%s: %d points, want %d", name, tr.NumPoints(), len(pts))
		}
		keys := tr.Keys()
		if len(keys) != len(pts) {
			t.Fatalf("%s: %d keys, want %d", name, len(keys), len(pts))
		}
		for i := 1; i < len(keys); i++ {
			if keys[i] < keys[i-1] {
				t.Fatalf("%s: slot keys not ascending at %d", name, i)
			}
		}
		if d := tr.Depth(); d > geom.MortonBits {
			t.Fatalf("%s: depth %d exceeds key resolution %d", name, d, geom.MortonBits)
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	pool := sched.NewPool(0)
	defer b.StopTimer()
	defer pool.Close()
	for _, n := range []int{1000, 10000, 100000} {
		rng := rand.New(rand.NewSource(int64(n)))
		pts := randPts(rng, n, 60)
		for _, bc := range []struct {
			name string
			opts Options
		}{
			{"recursive", Options{}},
			{"morton-serial", Options{Builder: BuilderMorton}},
			{"morton-parallel", Options{Builder: BuilderMorton, Pool: pool}},
		} {
			b.Run(bc.name+"/"+itoa(n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := Build(pts, bc.opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func itoa(n int) string {
	switch n {
	case 1000:
		return "1k"
	case 10000:
		return "10k"
	case 100000:
		return "100k"
	}
	return "n"
}
