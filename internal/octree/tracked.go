package octree

import (
	"fmt"
	"math/bits"
	"slices"

	"gbpolar/internal/geom"
)

// This file is the tracked (Morton-keyed) incremental update — the warm
// path the cold-path builder (morton.go) pays for once. Where the
// untracked Update routes every point down the tree with ~depth
// floating-point octant tests, the tracked update recomputes the 63-bit
// keys in one vectorizable sweep and detects a leaf change with a single
// integer prefix compare per point: a point left its leaf iff its key
// changed in the leading 3·depth bits. For an MD-step-sized jiggle
// almost nothing moves, so the structural work collapses to a windowed
// relocation over the few affected leaf ranges, and the update reports
// exactly WHICH nodes gained or lost points — the dirtiness the
// interaction-list repair (core/ilist_repair.go) consumes to avoid
// recompiling rows whose classification provably cannot have changed.

// TrackedUpdate reports what an UpdateTracked call did.
type TrackedUpdate struct {
	// Moved is the number of points that changed leaf (for the rebuild
	// paths, the total point count).
	Moved int
	// Rebuilt is set when the call fell back to a full reconstruction
	// (point outside the root cube, or no keys to track): node ids are
	// NOT stable across the call and Dirty is nil.
	Rebuilt bool
	// LeavesChanged is set when the leaf SET changed (a leaf was
	// created, emptied or split). Node ids of surviving nodes are still
	// stable, but consumers keyed to the leaf list must rebuild.
	LeavesChanged bool
	// Dirty[id] is true iff node id's point MEMBERSHIP changed: it
	// gained or lost at least one point. Ancestors above the
	// source/destination LCA of a move are unaffected and stay clean.
	// nil when Moved == 0 or Rebuilt.
	Dirty []bool
	// Struct[id] is true iff node id's STRUCTURE changed: it gained or
	// lost a child, its leaf-ness flipped, or the node is new. A consumer
	// that cached a traversal can keep any path whose nodes are all
	// Struct-clean (the descent revisits the same children) and re-derive
	// the rest. nil when Moved == 0 or Rebuilt.
	Struct []bool
}

// UpdateTracked moves the tree's points to newPts (original point
// order, like Build) and repairs the structure using the Morton keys
// maintained by the sorted builder. Trees without keys (recursive
// builds, or after an untracked Update) fall back to Update; points
// escaping the root cube trigger a full rebuild, like Update.
func (t *Tree) UpdateTracked(newPts []geom.Vec3) (TrackedUpdate, error) {
	if t.keys == nil {
		moved, err := t.Update(newPts)
		return TrackedUpdate{Moved: moved, Rebuilt: true}, err
	}
	if len(newPts) != len(t.Pts) {
		return TrackedUpdate{}, fmt.Errorf("octree: UpdateTracked with %d points, tree has %d", len(newPts), len(t.Pts))
	}
	for i, p := range newPts {
		if !p.IsFinite() {
			return TrackedUpdate{}, fmt.Errorf("octree: point %d is not finite: %v", i, p)
		}
	}
	n := len(t.Pts)
	for slot, orig := range t.Index {
		t.Pts[slot] = newPts[orig]
	}
	for _, p := range t.Pts {
		if !t.rootBox.Contains(p) {
			return TrackedUpdate{Moved: n, Rebuilt: true}, t.rebuildAll()
		}
	}

	// --- 1. rekey and detect leaf changes by prefix compare -----------
	newKeys := make([]uint64, n)
	parallelRange(t.pool, n, 2048, func(lo, hi int) {
		geom.MortonKeys(t.rootBox, t.Pts[lo:hi], newKeys[lo:hi])
	})
	var movedSlots []int32
	for _, li := range t.leaves {
		nd := &t.Nodes[li]
		shift := uint(3 * (geom.MortonBits - int(nd.Depth)))
		for s := nd.Start; s < nd.End; s++ {
			if newKeys[s]>>shift != t.keys[s]>>shift {
				movedSlots = append(movedSlots, s)
			}
		}
	}
	if len(movedSlots) == 0 {
		t.keys = newKeys
		t.refreshGeometryAll()
		return TrackedUpdate{}, nil
	}

	// --- 2. route moved points by key digits, mark dirty nodes --------
	oldNumNodes := int32(len(t.Nodes))
	parent := make([]int32, len(t.Nodes), len(t.Nodes)+len(movedSlots))
	oldLeafOf := make([]int32, n)
	parent[0] = NoChild
	t.walkReachable(func(id int32) {
		nd := &t.Nodes[id]
		if nd.IsLeaf {
			for s := nd.Start; s < nd.End; s++ {
				oldLeafOf[s] = id
			}
			return
		}
		for _, c := range nd.Children {
			if c != NoChild {
				parent[c] = id
			}
		}
	})
	dirty := make([]bool, len(t.Nodes), len(t.Nodes)+len(movedSlots))
	strct := make([]bool, len(t.Nodes), len(t.Nodes)+len(movedSlots))
	leavesChanged := false
	// Window bounds over every leaf that loses or gains a point (plus
	// the parent range of any materialized leaf, whose siblings shift to
	// make room).
	winLo, winHi := int32(n), int32(0)
	widen := func(lo, hi int32) {
		if lo < winLo {
			winLo = lo
		}
		if hi > winHi {
			winHi = hi
		}
	}
	targetOf := make([]int32, n)
	for i := range targetOf {
		targetOf[i] = NoChild
	}
	markUp := func(leaf int32, lcaDepth int) {
		for id := leaf; id != NoChild && int(t.Nodes[id].Depth) > lcaDepth; id = parent[id] {
			dirty[id] = true
		}
	}
	for _, s := range movedSlots {
		src := oldLeafOf[s]
		// Descend by key digits; materialize a leaf when the key enters
		// an octant with no child.
		dst := int32(0)
		for !t.Nodes[dst].IsLeaf {
			o := geom.MortonOctant(newKeys[s], int(t.Nodes[dst].Depth))
			child := t.Nodes[dst].Children[o]
			if child == NoChild {
				child = int32(len(t.Nodes))
				t.Nodes = append(t.Nodes, Node{Depth: t.Nodes[dst].Depth + 1, IsLeaf: true})
				for i := range t.Nodes[child].Children {
					t.Nodes[child].Children[i] = NoChild
				}
				t.Nodes[dst].Children[o] = child
				parent = append(parent, dst)
				dirty = append(dirty, false)
				strct[dst] = true
				strct = append(strct, true)
				leavesChanged = true
				widen(t.Nodes[dst].Start, t.Nodes[dst].End)
			}
			dst = child
		}
		targetOf[s] = dst
		// Ancestors above the source/destination LCA keep their
		// membership; the LCA depth is the common key prefix length.
		lcaDepth := (63 - bits.Len64(t.keys[s]^newKeys[s])) / 3
		markUp(src, lcaDepth)
		markUp(dst, lcaDepth)
		widen(t.Nodes[src].Start, t.Nodes[src].End)
		if t.Nodes[dst].End > t.Nodes[dst].Start {
			widen(t.Nodes[dst].Start, t.Nodes[dst].End)
		}
	}
	t.keys = newKeys

	// --- 3. windowed relocation ---------------------------------------
	counts := make([]int32, len(t.Nodes))
	for _, li := range t.leaves {
		nd := &t.Nodes[li]
		counts[li] = nd.End - nd.Start
	}
	for _, s := range movedSlots {
		counts[oldLeafOf[s]]--
		counts[targetOf[s]]++
	}
	for _, li := range t.leaves {
		if counts[li] == 0 {
			leavesChanged = true // emptied: pruned below
		}
	}
	t.pruneEmpty(0, counts, strct)
	// Structural (octant-order) walk of the window's surviving and new
	// leaves assigns the post-move slot layout; leaves outside the
	// window keep their slots because the window's total count is
	// conserved.
	starts := make([]int32, len(t.Nodes))
	at := winLo
	var winLeaves []int32
	t.walkReachable(func(id int32) {
		if !t.Nodes[id].IsLeaf {
			return
		}
		nd := &t.Nodes[id]
		if id >= oldNumNodes || (nd.Start >= winLo && nd.End <= winHi) {
			winLeaves = append(winLeaves, id)
			starts[id] = at
			at += counts[id]
		}
	})
	if at != winHi {
		return TrackedUpdate{}, fmt.Errorf("octree: internal error: tracked relocation lost points (%d != %d)", at, winHi)
	}
	w := int(winHi - winLo)
	tmpP := make([]geom.Vec3, w)
	tmpI := make([]int32, w)
	tmpK := make([]uint64, w)
	copy(tmpP, t.Pts[winLo:winHi])
	copy(tmpI, t.Index[winLo:winHi])
	copy(tmpK, t.keys[winLo:winHi])
	fill := make([]int32, len(t.Nodes))
	for i := 0; i < w; i++ {
		s := winLo + int32(i)
		li := targetOf[s]
		if li == NoChild {
			li = oldLeafOf[s]
		}
		pos := starts[li] + fill[li]
		fill[li]++
		t.Pts[pos] = tmpP[i]
		t.Index[pos] = tmpI[i]
		t.keys[pos] = tmpK[i]
	}
	for _, li := range winLeaves {
		t.Nodes[li].Start = starts[li]
		t.Nodes[li].End = starts[li] + counts[li]
	}
	t.recomputeInternalRanges(0)

	// --- 4. split overfull leaves by their (re-sorted) keys -----------
	for _, li := range winLeaves {
		nd := t.Nodes[li]
		if nd.Count() > t.leafCap && int(nd.Depth) < geom.MortonBits {
			t.sortRangeByKey(nd.Start, nd.End)
			t.buildFromKeys(li, nd.Start, nd.End, int(nd.Depth), geom.MortonBits, t.leafCap)
			strct[li] = true // leaf became internal
			leavesChanged = true
		}
	}

	// --- 5. refresh ----------------------------------------------------
	t.refreshGeometryAll()
	t.rebuildLeafList()
	if len(dirty) < len(t.Nodes) {
		grown := make([]bool, len(t.Nodes)) // leaf splits appended nodes
		copy(grown, dirty)
		dirty = grown
	}
	for len(strct) < len(t.Nodes) {
		strct = append(strct, true) // split children are new nodes
	}
	return TrackedUpdate{Moved: len(movedSlots), LeavesChanged: leavesChanged, Dirty: dirty, Struct: strct}, nil
}

// sortRangeByKey sorts slots [lo,hi) ascending by key, permuting the
// point and index stores alongside — leaves stay unsorted internally
// after a tracked update (membership is a prefix property), so a leaf
// about to be split restores the order buildFromKeys needs.
func (t *Tree) sortRangeByKey(lo, hi int32) {
	type slot struct {
		key uint64
		idx int32
		pt  geom.Vec3
	}
	tmp := make([]slot, hi-lo)
	for i := range tmp {
		s := lo + int32(i)
		tmp[i] = slot{key: t.keys[s], idx: t.Index[s], pt: t.Pts[s]}
	}
	slices.SortStableFunc(tmp, func(a, b slot) int {
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		}
		return 0
	})
	for i, v := range tmp {
		s := lo + int32(i)
		t.keys[s], t.Index[s], t.Pts[s] = v.key, v.idx, v.pt
	}
}
