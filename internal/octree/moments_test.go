package octree

import (
	"math"
	"math/rand"
	"testing"

	"gbpolar/internal/geom"
	"gbpolar/internal/wire"
)

// attachTestMoments attaches one scalar channel and one 3-channel vector
// set with deterministic pseudo-random weights.
func attachTestMoments(t *testing.T, tr *Tree, rng *rand.Rand) {
	t.Helper()
	n := tr.NumPoints()
	scalar := make([]float64, n)
	vec := [][]float64{make([]float64, n), make([]float64, n), make([]float64, n)}
	for i := 0; i < n; i++ {
		scalar[i] = rng.Float64()*2 - 1
		for c := 0; c < 3; c++ {
			vec[c][i] = rng.Float64()*2 - 1
		}
	}
	if err := tr.AttachMoments("charge", [][]float64{scalar}, false); err != nil {
		t.Fatal(err)
	}
	if err := tr.AttachMoments("wn", vec, true); err != nil {
		t.Fatal(err)
	}
}

// checkMomentsBruteForce recomputes every reachable node's moments
// directly over its point range and compares against the bottom-up pass.
func checkMomentsBruteForce(t *testing.T, tr *Tree, label string) {
	t.Helper()
	for _, ms := range tr.moments {
		for c := range ms.Ch {
			ch := &ms.Ch[c]
			tr.walkReachable(func(id int32) {
				nd := &tr.Nodes[id]
				var w float64
				var d geom.Vec3
				var q geom.Sym3
				for s := nd.Start; s < nd.End; s++ {
					wt := ch.w[tr.Index[s]]
					dl := tr.Pts[s].Sub(nd.Center)
					w += wt
					d = d.Add(dl.Scale(wt))
					q = q.Add(geom.Outer(dl).Scale(wt))
				}
				// Scale-aware 1e-12 agreement: the M2M recurrence must match
				// the direct sum to relative rounding, at any depth.
				near := func(a, b, scale float64) bool {
					return math.Abs(a-b) <= 1e-12*(1+scale)
				}
				wScale := math.Abs(w) + math.Abs(ch.W[id])
				qScale := 0.0
				for s := nd.Start; s < nd.End; s++ {
					dl := tr.Pts[s].Sub(nd.Center)
					qScale += math.Abs(ch.w[tr.Index[s]]) * dl.Norm2()
				}
				dScale := math.Sqrt(qScale) * math.Sqrt(wScale+1)
				ok := near(w, ch.W[id], wScale) &&
					near(d.X, ch.D[id].X, dScale) && near(d.Y, ch.D[id].Y, dScale) && near(d.Z, ch.D[id].Z, dScale) &&
					near(q.XX, ch.Q[id].XX, qScale) && near(q.YY, ch.Q[id].YY, qScale) && near(q.ZZ, ch.Q[id].ZZ, qScale) &&
					near(q.XY, ch.Q[id].XY, qScale) && near(q.XZ, ch.Q[id].XZ, qScale) && near(q.YZ, ch.Q[id].YZ, qScale)
				if !ok {
					t.Fatalf("%s: set %q ch %d node %d: bottom-up W=%v D=%v Q=%v, brute force W=%v D=%v Q=%v",
						label, ms.Name, c, id, ch.W[id], ch.D[id], ch.Q[id], w, d, q)
				}
			})
		}
	}
}

func TestMomentsMatchBruteForce(t *testing.T) {
	for _, b := range []struct {
		name    string
		builder Builder
	}{{"recursive", BuilderRecursive}, {"morton", BuilderMorton}} {
		t.Run(b.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(271))
			pts := randPts(rng, 3000, 70)
			tr, err := Build(pts, Options{LeafCap: 8, Builder: b.builder})
			if err != nil {
				t.Fatal(err)
			}
			attachTestMoments(t, tr, rng)
			checkMomentsBruteForce(t, tr, "fresh build")
		})
	}
}

func TestMomentsSurviveTrackedUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(277))
	pts := randPts(rng, 2500, 60)
	tr, err := Build(pts, Options{LeafCap: 8, Builder: BuilderMorton})
	if err != nil {
		t.Fatal(err)
	}
	attachTestMoments(t, tr, rng)
	for round := 0; round < 4; round++ {
		pts = jiggle(rng, pts, 2.5) // large enough to relocate points
		upd, err := tr.UpdateTracked(pts)
		if err != nil {
			t.Fatal(err)
		}
		if round == 0 && upd.Moved == 0 {
			t.Fatal("jiggle relocated no points; the test exercises nothing")
		}
		checkMomentsBruteForce(t, tr, "after UpdateTracked")
	}
	// The untracked Update path funnels through the same refresh hook.
	pts = jiggle(rng, pts, 4.0)
	if _, err := tr.Update(pts); err != nil {
		t.Fatal(err)
	}
	checkMomentsBruteForce(t, tr, "after Update")
}

func TestMomentsRotateWithTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(281))
	pts := randPts(rng, 1200, 50)
	tr, err := Build(pts, Options{LeafCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	attachTestMoments(t, tr, rng)
	// Keep an independent copy of the vector weights to rotate by hand.
	wn := tr.MomentsOf("wn")
	origW := make([][]float64, 3)
	for c := 0; c < 3; c++ {
		origW[c] = append([]float64(nil), wn.Ch[c].w...)
	}
	rot := geom.RotateAxis(geom.V(1, 2, -1), 0.7).Compose(geom.Translate(geom.V(4, -3, 9)))
	tr.ApplyTransform(rot)
	// In-place rotated per-point weight vectors must equal hand-rotated
	// ones; then the brute-force check (which uses the stored weights and
	// the transformed points) validates the per-node tensor rotation.
	for p := 0; p < tr.NumPoints(); p++ {
		v := rot.ApplyVector(geom.V(origW[0][p], origW[1][p], origW[2][p]))
		got := geom.V(wn.Ch[0].w[p], wn.Ch[1].w[p], wn.Ch[2].w[p])
		if got.Sub(v).Norm2() > 1e-24*(1+v.Norm2()) {
			t.Fatalf("point %d weight vector: got %v, want %v", p, got, v)
		}
	}
	checkMomentsBruteForce(t, tr, "after rigid transform")
}

func TestMomentsCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(283))
	pts := randPts(rng, 800, 40)
	tr, err := Build(pts, Options{LeafCap: 8, Builder: BuilderMorton})
	if err != nil {
		t.Fatal(err)
	}
	attachTestMoments(t, tr, rng)
	var w wire.Writer
	tr.AppendTo(&w)
	got, err := DecodeTree(wire.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.moments) != 2 {
		t.Fatalf("decoded %d moment sets, want 2", len(got.moments))
	}
	for si, ms := range tr.moments {
		dec := got.moments[si]
		if dec.Name != ms.Name || dec.Vec != ms.Vec || len(dec.Ch) != len(ms.Ch) {
			t.Fatalf("set %d header mismatch: %+v vs %+v", si, dec, ms)
		}
		for c := range ms.Ch {
			for i := range ms.Ch[c].W {
				if ms.Ch[c].W[i] != dec.Ch[c].W[i] || ms.Ch[c].D[i] != dec.Ch[c].D[i] || ms.Ch[c].Q[i] != dec.Ch[c].Q[i] {
					t.Fatalf("set %q ch %d node %d not bit-identical after round trip", ms.Name, c, i)
				}
			}
			for p := range ms.Ch[c].w {
				if ms.Ch[c].w[p] != dec.Ch[c].w[p] {
					t.Fatalf("set %q ch %d point weight %d not bit-identical", ms.Name, c, p)
				}
			}
		}
	}
	// CompactNodes must remap the per-node arrays consistently.
	tr.CompactNodes()
	checkMomentsBruteForce(t, tr, "after CompactNodes")
}
