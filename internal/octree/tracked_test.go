package octree

import (
	"math/rand"
	"slices"
	"testing"

	"gbpolar/internal/geom"
)

// checkKeyConsistency asserts the tracked-update invariants: every
// slot's stored key is the key of its point, and the key's octant path
// leads from the root to the leaf that owns the slot.
func checkKeyConsistency(t *testing.T, tr *Tree) {
	t.Helper()
	keys := tr.Keys()
	if keys == nil {
		t.Fatal("tree has no keys")
	}
	fresh := make([]uint64, len(tr.Pts))
	geom.MortonKeys(tr.rootBox, tr.Pts, fresh)
	for s := range keys {
		if keys[s] != fresh[s] {
			t.Fatalf("slot %d: stored key %#x, recomputed %#x", s, keys[s], fresh[s])
		}
	}
	for _, li := range tr.Leaves() {
		nd := &tr.Nodes[li]
		for s := nd.Start; s < nd.End; s++ {
			id := int32(0)
			for !tr.Nodes[id].IsLeaf {
				o := geom.MortonOctant(keys[s], int(tr.Nodes[id].Depth))
				id = tr.Nodes[id].Children[o]
				if id == NoChild {
					t.Fatalf("slot %d key %#x routes into a missing child", s, keys[s])
				}
			}
			if id != li {
				t.Fatalf("slot %d key %#x routes to leaf %d, owned by %d", s, keys[s], id, li)
			}
		}
	}
}

// memberSets returns, per node id, the sorted original point ids under
// the node's range (only reachable nodes).
func memberSets(tr *Tree) map[int32][]int32 {
	out := make(map[int32][]int32)
	tr.walkReachable(func(id int32) {
		nd := &tr.Nodes[id]
		set := slices.Clone(tr.Index[nd.Start:nd.End])
		slices.Sort(set)
		out[id] = set
	})
	return out
}

// TestUpdateTrackedMatchesUntracked: the tracked (key-prefix) update and
// the untracked (routing) update must agree on which points moved and on
// the resulting leaf decomposition — the key path replays the same
// verdicts through integer compares.
func TestUpdateTrackedMatchesUntracked(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, sigma := range []float64{0.05, 0.5, 3.0} {
		pts := randPts(rng, 2500, 30)
		moved := jiggle(rng, pts, sigma)

		trk, err := Build(pts, Options{Builder: BuilderMorton})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Build(pts, Options{Builder: BuilderMorton})
		if err != nil {
			t.Fatal(err)
		}
		res, err := trk.UpdateTracked(moved)
		if err != nil {
			t.Fatal(err)
		}
		refMoved, err := ref.Update(moved)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rebuilt != (refMoved == ref.NumPoints() && sigma >= 3) && res.Rebuilt {
			// Rebuild only when a point escaped the root cube; the
			// untracked path rebuilds under the same condition, so both
			// agree — checked implicitly by the comparisons below.
			t.Logf("sigma=%g: rebuilt", sigma)
		}
		if err := trk.Validate(); err != nil {
			t.Fatalf("sigma=%g: %v", sigma, err)
		}
		if !res.Rebuilt {
			if res.Moved != refMoved {
				t.Fatalf("sigma=%g: tracked moved %d, untracked %d", sigma, res.Moved, refMoved)
			}
			checkKeyConsistency(t, trk)
		}
		// Same leaf decomposition: leaf ranges (by start) and per-leaf
		// original-id sets.
		type leafKey struct{ start, end int32 }
		collect := func(tr *Tree) map[leafKey][]int32 {
			m := make(map[leafKey][]int32)
			for _, li := range tr.Leaves() {
				nd := &tr.Nodes[li]
				set := slices.Clone(tr.Index[nd.Start:nd.End])
				slices.Sort(set)
				m[leafKey{nd.Start, nd.End}] = set
			}
			return m
		}
		a, b := collect(trk), collect(ref)
		if len(a) != len(b) {
			t.Fatalf("sigma=%g: %d leaves tracked, %d untracked", sigma, len(a), len(b))
		}
		for k, av := range a {
			if !slices.Equal(av, b[k]) {
				t.Fatalf("sigma=%g: leaf [%d,%d) differs", sigma, k.start, k.end)
			}
		}
	}
}

// TestUpdateTrackedDirtyExact: Dirty must be exactly the set of
// surviving nodes whose point membership changed — no false negatives
// (soundness for the list repair) and no false positives above the LCA
// (the efficiency claim).
func TestUpdateTrackedDirtyExact(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	pts := randPts(rng, 3000, 30)
	tr, err := Build(pts, Options{Builder: BuilderMorton})
	if err != nil {
		t.Fatal(err)
	}
	before := memberSets(tr)
	oldNodes := int32(tr.NumNodes())
	res, err := tr.UpdateTracked(jiggle(rng, pts, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebuilt {
		t.Fatal("unexpected rebuild")
	}
	if res.Moved == 0 {
		t.Fatal("jiggle moved nothing; test needs movement")
	}
	after := memberSets(tr)
	checked := 0
	for id, pre := range before {
		if id >= oldNodes {
			continue
		}
		post, alive := after[id]
		changed := !alive || !slices.Equal(pre, post)
		if changed != res.Dirty[id] {
			t.Errorf("node %d: membership changed=%v but Dirty=%v", id, changed, res.Dirty[id])
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no nodes checked")
	}
	// The root must stay clean: points moved within the cube, so its
	// membership is the full set.
	if res.Dirty[0] {
		t.Error("root marked dirty by interior moves")
	}
}

// TestUpdateTrackedRepeated: invariants hold across a trajectory of
// tracked updates, including splits and prunes.
func TestUpdateTrackedRepeated(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := randPts(rng, 1200, 20)
	tr, err := Build(pts, Options{Builder: BuilderMorton})
	if err != nil {
		t.Fatal(err)
	}
	cur := pts
	for step := 0; step < 12; step++ {
		cur = jiggle(rng, cur, 0.3)
		res, err := tr.UpdateTracked(cur)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if !res.Rebuilt {
			checkKeyConsistency(t, tr)
		}
	}
}

// TestUpdateTrackedFallbacks: trees without keys (recursive builds,
// post-untracked-update) degrade to the untracked path, and escapes
// from the root cube rebuild — with keys regenerated for Morton trees.
func TestUpdateTrackedFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	pts := randPts(rng, 500, 15)

	rec, err := Build(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rec.UpdateTracked(jiggle(rng, pts, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rebuilt {
		t.Error("recursive tree should report the untracked fallback")
	}

	mor, err := Build(pts, Options{Builder: BuilderMorton})
	if err != nil {
		t.Fatal(err)
	}
	far := slices.Clone(pts)
	far[7] = far[7].Add(geom.V(1e4, 0, 0)) // escapes the root cube
	res, err = mor.UpdateTracked(far)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rebuilt {
		t.Error("escape should rebuild")
	}
	if mor.Keys() == nil {
		t.Error("rebuild of a Morton tree should regenerate keys")
	}
	if err := mor.Validate(); err != nil {
		t.Fatal(err)
	}
	checkKeyConsistency(t, mor)

	// An untracked Update invalidates keys; the next tracked call falls
	// back rather than trusting stale keys.
	mor2, err := Build(pts, Options{Builder: BuilderMorton})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mor2.Update(jiggle(rng, pts, 0.1)); err != nil {
		t.Fatal(err)
	}
	if mor2.Keys() != nil {
		t.Fatal("untracked update should drop keys")
	}
	res, err = mor2.UpdateTracked(jiggle(rng, pts, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rebuilt {
		t.Error("stale-key tree should fall back")
	}
}
