// Package stats provides the small statistics helpers the benchmark
// harness needs: running summaries (the paper reports min/max over 20 runs
// for Figure 6 and avg ± std for Figure 10), percentage-error helpers and
// simple timing accumulation.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary accumulates a stream of float64 observations.
// The zero value is ready to use.
type Summary struct {
	n          int
	mean, m2   float64 // Welford running mean and sum of squared deviations
	min, max   float64
	sum        float64
	hasExtrema bool
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	s.sum += x
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if !s.hasExtrema {
		s.min, s.max = x, x
		s.hasExtrema = true
		return
	}
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Sum returns the sum of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean (0 for no observations).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the population variance.
func (s *Summary) Var() float64 {
	if s.n == 0 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// Std returns the population standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 for none).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for none).
func (s *Summary) Max() float64 { return s.max }

// String implements fmt.Stringer.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g std=%.3g min=%.6g max=%.6g",
		s.n, s.Mean(), s.Std(), s.min, s.max)
}

// Summarize builds a Summary from a slice.
func Summarize(xs []float64) *Summary {
	var s Summary
	for _, x := range xs {
		s.Add(x)
	}
	return &s
}

// Median returns the median of xs (0 for empty input). xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// PercentError returns 100·(got−want)/want, the paper's "% of difference
// with Naïve". It returns 0 when want is 0 and got is 0, and ±Inf when
// only want is 0.
func PercentError(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(sign(got))
	}
	return 100 * (got - want) / want
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// Speedup returns base/t — how many times faster t is than base.
// It returns +Inf for t == 0.
func Speedup(base, t time.Duration) float64 {
	if t == 0 {
		return math.Inf(1)
	}
	return float64(base) / float64(t)
}

// Repeat runs fn `runs` times and returns a Summary of the wall-clock
// seconds per run. The paper runs each configuration 20 times and plots
// min and max (Figure 6), or averages 10 runs (Figure 8).
func Repeat(runs int, fn func()) *Summary {
	var s Summary
	for i := 0; i < runs; i++ {
		t0 := time.Now()
		fn()
		s.Add(time.Since(t0).Seconds())
	}
	return &s
}
