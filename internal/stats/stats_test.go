package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N() != 4 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 2.5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 4 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Sum() != 10 {
		t.Errorf("Sum = %v", s.Sum())
	}
	wantVar := (1.5*1.5 + 0.5*0.5 + 0.5*0.5 + 1.5*1.5) / 4
	if math.Abs(s.Var()-wantVar) > 1e-12 {
		t.Errorf("Var = %v want %v", s.Var(), wantVar)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("zero Summary not all-zero")
	}
}

func TestSummaryMatchesDirectComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 1000)
	var sum float64
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		sum += xs[i]
	}
	mean := sum / float64(len(xs))
	var m2 float64
	mn, mx := xs[0], xs[0]
	for _, x := range xs {
		m2 += (x - mean) * (x - mean)
		mn = math.Min(mn, x)
		mx = math.Max(mx, x)
	}
	s := Summarize(xs)
	if math.Abs(s.Mean()-mean) > 1e-9 {
		t.Errorf("mean %v vs %v", s.Mean(), mean)
	}
	if math.Abs(s.Var()-m2/float64(len(xs))) > 1e-9 {
		t.Errorf("var %v vs %v", s.Var(), m2/float64(len(xs)))
	}
	if s.Min() != mn || s.Max() != mx {
		t.Errorf("extrema %v/%v vs %v/%v", s.Min(), s.Max(), mn, mx)
	}
}

func TestSummaryMinLEMeanLEMax(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min() <= s.Mean()+1e-9*math.Abs(s.Mean()) &&
			s.Mean() <= s.Max()+1e-9*math.Abs(s.Max())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("Median(nil) != 0")
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median even = %v", got)
	}
	// Median must not modify its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median reordered input slice")
	}
}

func TestPercentError(t *testing.T) {
	if got := PercentError(-1.47, -1.47); got != 0 {
		t.Errorf("PercentError equal = %v", got)
	}
	if got := PercentError(110, 100); math.Abs(got-10) > 1e-12 {
		t.Errorf("PercentError = %v", got)
	}
	if got := PercentError(0, 0); got != 0 {
		t.Errorf("PercentError(0,0) = %v", got)
	}
	if !math.IsInf(PercentError(1, 0), 1) {
		t.Error("PercentError(1,0) should be +Inf")
	}
	if !math.IsInf(PercentError(-1, 0), -1) {
		t.Error("PercentError(-1,0) should be -Inf")
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(40*time.Second, 10*time.Second); got != 4 {
		t.Errorf("Speedup = %v", got)
	}
	if !math.IsInf(Speedup(time.Second, 0), 1) {
		t.Error("Speedup with zero time should be +Inf")
	}
}

func TestRepeat(t *testing.T) {
	calls := 0
	s := Repeat(5, func() { calls++ })
	if calls != 5 || s.N() != 5 {
		t.Errorf("Repeat ran %d times, summary n=%d", calls, s.N())
	}
	if s.Min() < 0 {
		t.Error("negative duration")
	}
}
