package cluster

import (
	"fmt"
	"math"
	"time"

	"gbpolar/internal/obs"
)

// Op is a reduction operator.
type Op int

const (
	// Sum adds element-wise.
	Sum Op = iota
	// Min takes the element-wise minimum.
	Min
	// Max takes the element-wise maximum.
	Max
)

func (o Op) apply(dst, src []float64) {
	switch o {
	case Sum:
		for i := range dst {
			dst[i] += src[i]
		}
	case Min:
		for i := range dst {
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	case Max:
		for i := range dst {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	}
}

// rendezvous runs one collective round: every live rank deposits its
// contribution, the arrival that completes the round combines them (in
// rank order, so floating-point results are deterministic), the
// completion time max(entry clocks)+cost is applied to every rank, and
// the combined result is handed back.
//
// Liveness: a round completes only when every LIVE rank has deposited
// AND no death happened after any deposit (the stale-deposit guard). A
// death therefore fails the in-progress round for everyone: waiting
// depositors withdraw and return *RankDeadError, late arrivals observe
// the death before depositing — so a successful collective doubles as a
// consensus on the dead set, which the recovery protocol relies on. With
// Config.StallTimeout set, a rank that waits longer than that in real
// time withdraws with ErrTimeout instead of hanging.
func (c *Comm) rendezvous(kind string, contrib []float64,
	combine func(contribs [][]float64, present []bool) []float64,
	costFn func(result []float64) float64) (res []float64, err error) {
	w := c.w
	c.enterCollective()
	entry := c.clock

	// Wait/transfer split of the collective's virtual time, for the
	// analyzer's blocked-vs-computing attribution: waitSecs is the time
	// this rank idled in the rendezvous for the last arrival (zero for
	// the rank that completes the round — the straggler), xferSecs the
	// cost-model charge for the data movement itself.
	var waitSecs, xferSecs float64
	if o := w.cfg.Obs; o != nil {
		// The span closes at the rank's post-collective clock; the
		// deferred close runs after w.mu is released (defers are LIFO and
		// the unlock is registered later), so the trace lock stays a leaf.
		sp := o.Begin(c.rank, "collective", kind, entry)
		nbytes := int64(len(contrib)) * 8
		defer func() {
			if err != nil {
				sp.End(c.clock, obs.F("bytes", float64(nbytes)), obs.F("error", 1))
				return
			}
			sp.End(c.clock, obs.F("bytes", float64(nbytes)),
				obs.F("wait_us", waitSecs*1e6), obs.F("xfer_us", xferSecs*1e6))
			o.Counter("cluster.collectives").Inc()
			o.Counter("cluster.collective.bytes").Add(nbytes)
			o.Histogram("cluster.collective.virt_us").Observe(int64((c.clock - entry) * 1e6))
			o.Histogram("cluster.collective.wait_us").Observe(int64(waitSecs * 1e6))
		}()
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.aborted {
		return nil, ErrAborted
	}
	if err := c.observeDeathsLocked(len(contrib)); err != nil {
		return nil, err
	}
	if w.arrived == 0 {
		w.kind = kind
		w.contribs = make([][]float64, len(w.ranks))
		w.present = make([]bool, len(w.ranks))
		w.depEpoch = make([]uint64, len(w.ranks))
		w.curMaxClock = entry
	} else if w.kind != kind {
		err := fmt.Errorf("cluster: collective mismatch: rank %d called %s while round is %s: %w",
			c.rank, kind, w.kind, ErrProtocol)
		w.aborted = true
		w.cond.Broadcast()
		return nil, err
	}
	if entry > w.curMaxClock {
		w.curMaxClock = entry
	}
	w.contribs[c.rank] = contrib
	w.present[c.rank] = true
	w.depEpoch[c.rank] = w.deadEpoch
	w.arrived++
	myGen := w.gen

	if w.roundCompleteLocked() {
		// Publish the completed round: a fast rank may immediately start
		// the next round and reset the in-progress fields, so slow ranks
		// read only the done* snapshot.
		w.result = combine(w.contribs, w.present)
		w.doneMaxClock = w.curMaxClock
		w.arrived = 0
		w.gen++
		w.cond.Broadcast()
	} else {
		stall := w.cfg.StallTimeout
		var deadline time.Time
		var timer *time.Timer
		if stall > 0 {
			deadline = time.Now().Add(stall)
			timer = armStall(w.cond, stall)
			defer stopStall(timer)
		}
		w.pacer.block(c.rank, c.clock)
		for w.gen == myGen && !w.aborted && c.seenEpoch == w.deadEpoch {
			if stall > 0 && time.Now().After(deadline) {
				w.withdrawLocked(c.rank)
				w.pacer.resume(c.rank, c.clock)
				return nil, fmt.Errorf("cluster: rank %d: %s stalled %v: %w", c.rank, kind, stall, ErrTimeout)
			}
			w.cond.Wait()
		}
		w.pacer.resume(c.rank, c.clock)
		if w.gen == myGen {
			// The round did not complete: we left the wait because of an
			// abort or a death. Withdraw so the retry round reassembles
			// from scratch.
			if w.aborted {
				return nil, ErrAborted
			}
			w.withdrawLocked(c.rank)
			return nil, c.observeDeathsLocked(len(contrib))
		}
	}
	done := w.doneMaxClock + costFn(w.result)
	waitSecs = w.doneMaxClock - entry
	xferSecs = done - w.doneMaxClock
	c.commSecs += done - entry
	c.clock = done
	c.bytesSent += int64(len(contrib)) * 8
	return w.result, nil
}

// roundCompleteLocked reports whether the assembling round can complete:
// every live rank has a deposit and no deposit predates the newest
// death. w.mu must be held.
func (w *world) roundCompleteLocked() bool {
	if w.arrived != w.liveCountLocked() {
		return false
	}
	for r := range w.present {
		if w.present[r] && w.depEpoch[r] != w.deadEpoch {
			return false
		}
	}
	return true
}

// withdrawLocked removes rank r's deposit from the assembling round.
// w.mu must be held.
func (w *world) withdrawLocked(r int) {
	if w.present[r] {
		w.present[r] = false
		w.contribs[r] = nil
		w.arrived--
	}
}

func log2ceil(p int) float64 {
	if p <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(p)))
}

// treeCost is the (t_s + t_w·m)·⌈log₂P⌉ cost of tree-structured
// collectives (Bcast, Reduce, Allreduce) from the Grama et al. tables the
// paper cites.
func (w *world) treeCost(words int) float64 {
	t := w.tier
	return log2ceil(len(w.ranks)) * (t.Latency.Seconds() + t.SecPerWord*float64(words))
}

// gatherCost is t_s·⌈log₂P⌉ + t_w·m·(P−1): the Allgather cost the paper
// quotes for its Steps 3 & 5 (Section IV.C).
func (w *world) gatherCost(wordsPerRank int) float64 {
	t := w.tier
	p := len(w.ranks)
	return log2ceil(p)*t.Latency.Seconds() + t.SecPerWord*float64(wordsPerRank)*float64(p-1)
}

// Barrier blocks until every live rank arrives.
func (c *Comm) Barrier() error {
	_, err := c.rendezvous("barrier", nil,
		func([][]float64, []bool) []float64 { return nil },
		func([]float64) float64 { return c.w.treeCost(0) })
	return err
}

// Allreduce combines data element-wise across ranks with op and returns
// the combined vector to every rank. All live ranks must pass equal
// lengths; dead ranks simply contribute nothing.
func (c *Comm) Allreduce(data []float64, op Op) ([]float64, error) {
	res, err := c.rendezvous("allreduce", data, func(contribs [][]float64, present []bool) []float64 {
		var out []float64
		first := true
		for r := range contribs {
			if !present[r] {
				continue
			}
			if first {
				out = append([]float64(nil), contribs[r]...)
				first = false
				continue
			}
			if len(contribs[r]) != len(out) {
				panic(fmt.Sprintf("cluster: allreduce length mismatch: %d vs rank %d's %d",
					len(out), r, len(contribs[r])))
			}
			op.apply(out, contribs[r])
		}
		return out
	}, func(res []float64) float64 { return c.w.treeCost(len(res)) })
	if err != nil {
		return nil, err
	}
	// Each rank gets its own copy so callers can mutate freely.
	return append([]float64(nil), res...), nil
}

// Reduce combines data across ranks with op; only root receives the
// result (others get nil). A dead root yields ErrRankDead.
func (c *Comm) Reduce(root int, data []float64, op Op) ([]float64, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("cluster: reduce root %d: %w", root, ErrInvalidRank)
	}
	if err := c.requireAlive(root); err != nil {
		return nil, err
	}
	res, err := c.rendezvous("reduce", data, func(contribs [][]float64, present []bool) []float64 {
		var out []float64
		first := true
		for r := range contribs {
			if !present[r] {
				continue
			}
			if first {
				out = append([]float64(nil), contribs[r]...)
				first = false
				continue
			}
			op.apply(out, contribs[r])
		}
		return out
	}, func(res []float64) float64 { return c.w.treeCost(len(res)) })
	if err != nil {
		return nil, err
	}
	if c.rank != root {
		return nil, nil
	}
	return append([]float64(nil), res...), nil
}

// Bcast distributes root's data to every rank (returned; the argument is
// only read on root). A dead root yields ErrRankDead.
func (c *Comm) Bcast(root int, data []float64) ([]float64, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("cluster: bcast root %d: %w", root, ErrInvalidRank)
	}
	if err := c.requireAlive(root); err != nil {
		return nil, err
	}
	var contrib []float64
	if c.rank == root {
		contrib = data
	}
	res, err := c.rendezvous("bcast", contrib, func(contribs [][]float64, present []bool) []float64 {
		return contribs[root]
	}, func(res []float64) float64 { return c.w.treeCost(len(res)) })
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), res...), nil
}

// Allgatherv concatenates every rank's contribution in rank order and
// returns the whole vector to every rank. counts[r] must equal the
// length rank r contributes; a dead rank with a nonzero count yields
// ErrRankDead (its segment cannot be gathered — re-divide and use
// Allreduce-style recovery instead).
func (c *Comm) Allgatherv(contrib []float64, counts []int) ([]float64, error) {
	if len(counts) != c.Size() {
		return nil, fmt.Errorf("cluster: allgatherv needs %d counts, got %d: %w",
			c.Size(), len(counts), ErrProtocol)
	}
	if len(contrib) != counts[c.rank] {
		return nil, fmt.Errorf("cluster: rank %d contributes %d values, counts says %d: %w",
			c.rank, len(contrib), counts[c.rank], ErrProtocol)
	}
	for r, n := range counts {
		if n > 0 {
			if err := c.requireAlive(r); err != nil {
				return nil, err
			}
		}
	}
	maxCount := 0
	for _, n := range counts {
		if n > maxCount {
			maxCount = n
		}
	}
	res, err := c.rendezvous("allgatherv", contrib, func(contribs [][]float64, present []bool) []float64 {
		var out []float64
		for r, part := range contribs {
			if !present[r] {
				continue
			}
			if len(part) != counts[r] {
				panic(fmt.Sprintf("cluster: allgatherv count mismatch at rank %d", r))
			}
			out = append(out, part...)
		}
		return out
	}, func([]float64) float64 { return c.w.gatherCost(maxCount) })
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), res...), nil
}

// requireAlive returns a *RankDeadError when rank r is dead. Unlike the
// epoch observation this does not consume the death notification — it
// guards collectives that structurally cannot proceed without r.
func (c *Comm) requireAlive(r int) error {
	w := c.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead[r] {
		return &RankDeadError{Dead: append([]int(nil), w.deadOrder...)}
	}
	return nil
}
