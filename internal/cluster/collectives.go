package cluster

import (
	"fmt"
	"math"
)

// Op is a reduction operator.
type Op int

const (
	// Sum adds element-wise.
	Sum Op = iota
	// Min takes the element-wise minimum.
	Min
	// Max takes the element-wise maximum.
	Max
)

func (o Op) apply(dst, src []float64) {
	switch o {
	case Sum:
		for i := range dst {
			dst[i] += src[i]
		}
	case Min:
		for i := range dst {
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	case Max:
		for i := range dst {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	}
}

// rendezvous runs one collective round: every rank deposits its
// contribution, the last arrival combines them (in rank order, so
// floating-point results are deterministic), the completion time
// max(entry clocks)+cost is applied to every rank, and the combined
// result is handed back.
func (c *Comm) rendezvous(kind string, contrib []float64,
	combine func(contribs [][]float64) []float64, costFn func(result []float64) float64) ([]float64, error) {
	w := c.w
	entry := c.clock

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.aborted {
		return nil, ErrAborted
	}
	if w.arrived == 0 {
		w.kind = kind
		w.contribs = make([][]float64, len(w.ranks))
		w.curMaxClock = entry
	} else if w.kind != kind {
		err := fmt.Errorf("cluster: collective mismatch: rank %d called %s while round is %s",
			c.rank, kind, w.kind)
		w.aborted = true
		w.cond.Broadcast()
		return nil, err
	}
	if entry > w.curMaxClock {
		w.curMaxClock = entry
	}
	w.contribs[c.rank] = contrib
	w.arrived++
	myGen := w.gen

	if w.arrived == len(w.ranks) {
		// Publish the completed round: a fast rank may immediately start
		// the next round and reset the in-progress fields, so slow ranks
		// read only the done* snapshot.
		w.result = combine(w.contribs)
		w.doneMaxClock = w.curMaxClock
		w.arrived = 0
		w.gen++
		w.cond.Broadcast()
	} else {
		w.pacer.block(c.rank, c.clock)
		for w.gen == myGen && !w.aborted {
			w.cond.Wait()
		}
		w.pacer.resume(c.rank, c.clock)
		if w.aborted {
			return nil, ErrAborted
		}
	}
	done := w.doneMaxClock + costFn(w.result)
	c.commSecs += done - entry
	c.clock = done
	c.bytesSent += int64(len(contrib)) * 8
	return w.result, nil
}

func log2ceil(p int) float64 {
	if p <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(p)))
}

// treeCost is the (t_s + t_w·m)·⌈log₂P⌉ cost of tree-structured
// collectives (Bcast, Reduce, Allreduce) from the Grama et al. tables the
// paper cites.
func (w *world) treeCost(words int) float64 {
	t := w.tier
	return log2ceil(len(w.ranks)) * (t.Latency.Seconds() + t.SecPerWord*float64(words))
}

// gatherCost is t_s·⌈log₂P⌉ + t_w·m·(P−1): the Allgather cost the paper
// quotes for its Steps 3 & 5 (Section IV.C).
func (w *world) gatherCost(wordsPerRank int) float64 {
	t := w.tier
	p := len(w.ranks)
	return log2ceil(p)*t.Latency.Seconds() + t.SecPerWord*float64(wordsPerRank)*float64(p-1)
}

// Barrier blocks until every rank arrives.
func (c *Comm) Barrier() error {
	_, err := c.rendezvous("barrier", nil,
		func([][]float64) []float64 { return nil },
		func([]float64) float64 { return c.w.treeCost(0) })
	return err
}

// Allreduce combines data element-wise across ranks with op and returns
// the combined vector to every rank. All ranks must pass equal lengths.
func (c *Comm) Allreduce(data []float64, op Op) ([]float64, error) {
	res, err := c.rendezvous("allreduce", data, func(contribs [][]float64) []float64 {
		out := append([]float64(nil), contribs[0]...)
		for r := 1; r < len(contribs); r++ {
			if len(contribs[r]) != len(out) {
				panic(fmt.Sprintf("cluster: allreduce length mismatch: rank 0 has %d, rank %d has %d",
					len(out), r, len(contribs[r])))
			}
			op.apply(out, contribs[r])
		}
		return out
	}, func(res []float64) float64 { return c.w.treeCost(len(res)) })
	if err != nil {
		return nil, err
	}
	// Each rank gets its own copy so callers can mutate freely.
	return append([]float64(nil), res...), nil
}

// Reduce combines data across ranks with op; only root receives the
// result (others get nil).
func (c *Comm) Reduce(root int, data []float64, op Op) ([]float64, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("cluster: reduce root %d out of range", root)
	}
	res, err := c.rendezvous("reduce", data, func(contribs [][]float64) []float64 {
		out := append([]float64(nil), contribs[0]...)
		for r := 1; r < len(contribs); r++ {
			op.apply(out, contribs[r])
		}
		return out
	}, func(res []float64) float64 { return c.w.treeCost(len(res)) })
	if err != nil {
		return nil, err
	}
	if c.rank != root {
		return nil, nil
	}
	return append([]float64(nil), res...), nil
}

// Bcast distributes root's data to every rank (returned; the argument is
// only read on root).
func (c *Comm) Bcast(root int, data []float64) ([]float64, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("cluster: bcast root %d out of range", root)
	}
	var contrib []float64
	if c.rank == root {
		contrib = data
	}
	res, err := c.rendezvous("bcast", contrib, func(contribs [][]float64) []float64 {
		return contribs[root]
	}, func(res []float64) float64 { return c.w.treeCost(len(res)) })
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), res...), nil
}

// Allgatherv concatenates every rank's contribution in rank order and
// returns the whole vector to every rank. counts[r] must equal the
// length rank r contributes.
func (c *Comm) Allgatherv(contrib []float64, counts []int) ([]float64, error) {
	if len(counts) != c.Size() {
		return nil, fmt.Errorf("cluster: allgatherv needs %d counts, got %d", c.Size(), len(counts))
	}
	if len(contrib) != counts[c.rank] {
		return nil, fmt.Errorf("cluster: rank %d contributes %d values, counts says %d",
			c.rank, len(contrib), counts[c.rank])
	}
	maxCount := 0
	for _, n := range counts {
		if n > maxCount {
			maxCount = n
		}
	}
	res, err := c.rendezvous("allgatherv", contrib, func(contribs [][]float64) []float64 {
		var out []float64
		for r, part := range contribs {
			if len(part) != counts[r] {
				panic(fmt.Sprintf("cluster: allgatherv count mismatch at rank %d", r))
			}
			out = append(out, part...)
		}
		return out
	}, func([]float64) float64 { return c.w.gatherCost(maxCount) })
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), res...), nil
}
