package cluster

import (
	"encoding/json"
	"fmt"
	"io"
)

// RankStats summarizes one rank's accounting.
type RankStats struct {
	Rank           int
	ComputeSeconds float64
	CommSeconds    float64
	ClockSeconds   float64
	BytesSent      int64
	MemoryBytes    int64
	Node, Socket   int
	// Died reports that the fault plan crashed this rank; its clock
	// stops at the death time.
	Died bool
}

// Report summarizes a Run.
type Report struct {
	// WallSeconds is the real elapsed time of the whole Run.
	WallSeconds float64
	// VirtualSeconds is the modeled parallel time: the maximum final
	// virtual clock over ranks.
	VirtualSeconds float64
	// PerRank holds per-rank accounting.
	PerRank []RankStats
	// TotalMemoryBytes sums the tracked memory over all ranks — the
	// replication cost of pure distributed-memory execution the paper
	// measures in Section V.B (8.2 GB for 12 MPI ranks vs 1.4 GB for
	// 2×6-thread hybrid ranks).
	TotalMemoryBytes int64
	// MaxNodeMemoryBytes is the largest per-node sum of rank memory.
	MaxNodeMemoryBytes int64
	// Mode records which clock is authoritative.
	Mode Mode
	// Faults carries the fault layer's accounting; nil when the run had
	// no fault plan.
	Faults *FaultReport
}

// Seconds returns the authoritative runtime for the report's mode.
func (r *Report) Seconds() float64 {
	if r.Mode == Real {
		return r.WallSeconds
	}
	return r.VirtualSeconds
}

// DiedRanks returns how many ranks the fault plan crashed.
func (r *Report) DiedRanks() int {
	n := 0
	for _, rs := range r.PerRank {
		if rs.Died {
			n++
		}
	}
	return n
}

// String implements fmt.Stringer.
func (r *Report) String() string {
	s := fmt.Sprintf("cluster run: %d ranks, %s time %.6gs, memory %.1f MB (max node %.1f MB)",
		len(r.PerRank), r.Mode, r.Seconds(),
		float64(r.TotalMemoryBytes)/(1<<20), float64(r.MaxNodeMemoryBytes)/(1<<20))
	if r.Faults != nil {
		s += fmt.Sprintf("; %d ranks died, %d rows recovered", r.DiedRanks(), r.Faults.RecomputedRows)
	}
	return s
}

// WriteJSON emits the report as indented JSON, so benchmark harnesses can
// persist cluster accounting next to their own result files.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func (w *world) report(wallSeconds float64) *Report {
	rep := &Report{WallSeconds: wallSeconds, Mode: w.cfg.Mode}
	if w.cfg.Faults != nil {
		f := w.fstats
		rep.Faults = &f
	}
	nodeMem := map[int]int64{}
	for _, c := range w.ranks {
		rep.PerRank = append(rep.PerRank, RankStats{
			Rank:           c.rank,
			ComputeSeconds: c.computeSecs,
			CommSeconds:    c.commSecs,
			ClockSeconds:   c.clock,
			BytesSent:      c.bytesSent,
			MemoryBytes:    c.memoryBytes,
			Node:           w.node(c.rank),
			Socket:         w.socket(c.rank),
			Died:           w.dead[c.rank],
		})
		if c.clock > rep.VirtualSeconds {
			rep.VirtualSeconds = c.clock
		}
		rep.TotalMemoryBytes += c.memoryBytes
		nodeMem[w.node(c.rank)] += c.memoryBytes
	}
	for _, m := range nodeMem {
		if m > rep.MaxNodeMemoryBytes {
			rep.MaxNodeMemoryBytes = m
		}
	}
	return rep
}
