package cluster

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// faultCfg is smallCfg plus a fault plan.
func faultCfg(procs int, plan *FaultPlan) Config {
	cfg := smallCfg(procs)
	cfg.Faults = plan
	cfg.StallTimeout = 20 * time.Second // tests must never hang
	return cfg
}

// retryCollective keeps re-entering a barrier until the live set is
// stable — the minimal survivor protocol the core runner implements for
// real (re-dividing work between retries).
func retryBarrier(t *testing.T, c *Comm) error {
	t.Helper()
	for i := 0; i < 10; i++ {
		err := c.Barrier()
		if err == nil {
			return nil
		}
		if _, ok := AsRankDead(err); ok {
			continue
		}
		return err
	}
	return errors.New("barrier retry budget exhausted")
}

func TestCrashAtClockDetected(t *testing.T) {
	plan := &FaultPlan{Faults: []Fault{{Kind: CrashAtClock, Rank: 1, Clock: 0.5}}}
	rep, err := Run(faultCfg(4, plan), func(c *Comm) error {
		c.ChargeCompute(1.0) // rank 1 dies crossing 0.5
		return retryBarrier(t, c)
	})
	if err != nil {
		t.Fatal(err)
	}
	f := rep.Faults
	if f == nil {
		t.Fatal("no FaultReport on faulted run")
	}
	if f.Crashes != 1 {
		t.Errorf("Crashes = %d, want 1", f.Crashes)
	}
	if len(f.Injected) != 1 || f.Injected[0].Kind != CrashAtClock || f.Injected[0].Rank != 1 {
		t.Errorf("Injected = %+v, want one crash@clock on rank 1", f.Injected)
	}
	if f.Injected[0].Clock < 0.5 {
		t.Errorf("crash fired at clock %g, trigger was 0.5", f.Injected[0].Clock)
	}
	// All 3 survivors must have observed the death, each charged a
	// positive detection latency.
	if len(f.Detections) != 3 {
		t.Fatalf("Detections = %d, want 3", len(f.Detections))
	}
	for _, d := range f.Detections {
		if d.DeadRank != 1 || d.ByRank == 1 || d.Latency <= 0 {
			t.Errorf("bad detection %+v", d)
		}
	}
	if f.RecoverySeconds <= 0 {
		t.Errorf("RecoverySeconds = %g, want > 0", f.RecoverySeconds)
	}
	if !rep.PerRank[1].Died {
		t.Error("rank 1 not marked Died")
	}
	if rep.PerRank[0].Died {
		t.Error("rank 0 wrongly marked Died")
	}
}

func TestCrashAtCollectiveBoundary(t *testing.T) {
	plan := &FaultPlan{Faults: []Fault{{Kind: CrashAtCollective, Rank: 2, Nth: 2}}}
	var liveAfter []int
	rep, err := Run(faultCfg(4, plan), func(c *Comm) error {
		if err := c.Barrier(); err != nil { // collective #1: everyone alive
			return err
		}
		if err := retryBarrier(t, c); err != nil { // #2: rank 2 dies entering
			return err
		}
		if c.Rank() == 0 {
			liveAfter = c.LiveRanks()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults.Crashes != 1 || rep.Faults.Injected[0].Kind != CrashAtCollective {
		t.Errorf("want one crash@collective, got %+v", rep.Faults.Injected)
	}
	if want := []int{0, 1, 3}; !reflect.DeepEqual(liveAfter, want) {
		t.Errorf("LiveRanks = %v, want %v", liveAfter, want)
	}
}

func TestCrashWithTwoRanksLeavesLoneSurvivor(t *testing.T) {
	plan := &FaultPlan{Faults: []Fault{{Kind: CrashAtClock, Rank: 0, Clock: 0}}}
	_, err := Run(faultCfg(2, plan), func(c *Comm) error {
		c.ChargeCompute(1e-3)
		if err := retryBarrier(t, c); err != nil {
			return err
		}
		if c.Rank() == 1 {
			if got := c.DeadRanks(); !reflect.DeepEqual(got, []int{0}) {
				return fmt.Errorf("DeadRanks = %v", got)
			}
			// Collectives still work for the lone survivor.
			res, err := c.Allreduce([]float64{2}, Sum)
			if err != nil {
				return err
			}
			if res[0] != 2 {
				return fmt.Errorf("lone allreduce = %v", res)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSurvivesCrash(t *testing.T) {
	// Rank 3 dies mid-compute; the surviving ranks' retried Allreduce must
	// contain exactly the survivors' contributions.
	plan := &FaultPlan{Faults: []Fault{{Kind: CrashAtClock, Rank: 3, Clock: 0.1}}}
	_, err := Run(faultCfg(4, plan), func(c *Comm) error {
		c.ChargeCompute(0.2)
		contrib := []float64{float64(int(1) << c.Rank())}
		for {
			res, err := c.Allreduce(contrib, Sum)
			if err == nil {
				if want := float64(1 + 2 + 4); res[0] != want {
					return fmt.Errorf("rank %d: sum = %g, want %g", c.Rank(), res[0], want)
				}
				return nil
			}
			if _, ok := AsRankDead(err); !ok {
				return err
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDropRetriesThenDelivers(t *testing.T) {
	plan := &FaultPlan{Faults: []Fault{{Kind: DropMessages, Rank: 0, Peer: 1, Tag: AnyTag, Count: 2}}}
	rep, err := Run(faultCfg(2, plan), func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []float64{42})
		}
		data, from, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if from != 0 || len(data) != 1 || data[0] != 42 {
			return fmt.Errorf("got %v from %d", data, from)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	f := rep.Faults
	if f.Drops != 2 || f.Retries != 2 {
		t.Errorf("Drops/Retries = %d/%d, want 2/2", f.Drops, f.Retries)
	}
	// Retransmission backoff must be charged to the sender's clock:
	// latency·(1 + 2¹ + 2²) at minimum (intra-socket is the cheapest tier
	// ranks 0 and 1 can share).
	minClock := 7 * DefaultCostModel().IntraSocket.Latency.Seconds()
	if rep.PerRank[0].ClockSeconds < minClock {
		t.Errorf("sender clock %g < backoff floor %g", rep.PerRank[0].ClockSeconds, minClock)
	}
}

func TestDropExhaustsRetryBudget(t *testing.T) {
	plan := &FaultPlan{
		Faults:     []Fault{{Kind: DropMessages, Rank: 0, Peer: -1, Tag: AnyTag, Count: 100}},
		MaxRetries: 3,
	}
	rep, err := Run(faultCfg(2, plan), func(c *Comm) error {
		if c.Rank() == 0 {
			err := c.Send(1, 0, []float64{1})
			if !errors.Is(err, ErrTimeout) {
				return fmt.Errorf("send over dead link: %v, want ErrTimeout", err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults.Drops != 4 { // initial + 3 retries, each dropped
		t.Errorf("Drops = %d, want 4", rep.Faults.Drops)
	}
	if rep.Faults.Retries != 3 {
		t.Errorf("Retries = %d, want 3", rep.Faults.Retries)
	}
}

func TestDelayShiftsArrival(t *testing.T) {
	const lag = 1.5
	plan := &FaultPlan{Faults: []Fault{{
		Kind: DelayMessages, Rank: 0, Peer: 1, Tag: AnyTag, Count: 1,
		Delay: time.Duration(lag * float64(time.Second)),
	}}}
	rep, err := Run(faultCfg(2, plan), func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, []float64{1})
		}
		_, _, err := c.Recv(0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults.Delays != 1 {
		t.Errorf("Delays = %d, want 1", rep.Faults.Delays)
	}
	if got := rep.PerRank[1].ClockSeconds; got < lag {
		t.Errorf("receiver clock %g, want ≥ %g (delayed flight)", got, lag)
	}
	if got := rep.PerRank[0].ClockSeconds; got > lag {
		t.Errorf("sender clock %g should not include the flight delay", got)
	}
}

func TestRecvFromDeadRankFails(t *testing.T) {
	plan := &FaultPlan{Faults: []Fault{{Kind: CrashAtClock, Rank: 0, Clock: 0}}}
	_, err := Run(faultCfg(2, plan), func(c *Comm) error {
		c.ChargeCompute(1e-6)
		if c.Rank() == 1 {
			_, _, err := c.Recv(0, 0)
			if !errors.Is(err, ErrRankDead) {
				return fmt.Errorf("recv from dead rank: %v, want ErrRankDead", err)
			}
			rd, ok := AsRankDead(err)
			if !ok || !reflect.DeepEqual(rd.Dead, []int{0}) {
				return fmt.Errorf("dead list = %+v", rd)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendToDeadRankFails(t *testing.T) {
	plan := &FaultPlan{Faults: []Fault{{Kind: CrashAtClock, Rank: 1, Clock: 0}}}
	_, err := Run(faultCfg(3, plan), func(c *Comm) error {
		c.ChargeCompute(1e-6)
		if err := retryBarrier(t, c); err != nil { // consensus: rank 1 is dead
			return err
		}
		if c.Rank() == 0 {
			if err := c.Send(1, 0, []float64{1}); !errors.Is(err, ErrRankDead) {
				return fmt.Errorf("send to dead rank: %v, want ErrRankDead", err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvStallTimeout(t *testing.T) {
	cfg := smallCfg(2)
	cfg.StallTimeout = 50 * time.Millisecond
	start := time.Now()
	_, err := Run(cfg, func(c *Comm) error {
		if c.Rank() == 0 {
			_, _, err := c.Recv(1, 0) // never sent
			if !errors.Is(err, ErrTimeout) {
				return fmt.Errorf("stalled recv: %v, want ErrTimeout", err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e > 10*time.Second {
		t.Errorf("stall backstop took %v", e)
	}
}

func TestCollectiveStallTimeout(t *testing.T) {
	cfg := smallCfg(2)
	cfg.StallTimeout = 50 * time.Millisecond
	_, err := Run(cfg, func(c *Comm) error {
		if c.Rank() == 1 {
			return nil // never joins the barrier
		}
		if err := c.Barrier(); !errors.Is(err, ErrTimeout) {
			return fmt.Errorf("stalled barrier: %v, want ErrTimeout", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastAndReduceDeadRoot(t *testing.T) {
	plan := &FaultPlan{Faults: []Fault{{Kind: CrashAtClock, Rank: 0, Clock: 0}}}
	_, err := Run(faultCfg(3, plan), func(c *Comm) error {
		c.ChargeCompute(1e-6)
		if err := retryBarrier(t, c); err != nil {
			return err
		}
		if _, err := c.Bcast(0, []float64{1}); !errors.Is(err, ErrRankDead) {
			return fmt.Errorf("bcast from dead root: %v", err)
		}
		if _, err := c.Reduce(0, []float64{1}, Sum); !errors.Is(err, ErrRankDead) {
			return fmt.Errorf("reduce to dead root: %v", err)
		}
		// A live root still works.
		res, err := c.Bcast(1, []float64{float64(c.Rank())})
		if err != nil {
			return err
		}
		if res[0] != 1 {
			return fmt.Errorf("bcast got %v", res)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTypedSentinels(t *testing.T) {
	_, err := Run(smallCfg(2), func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if err := c.Send(5, 0, nil); !errors.Is(err, ErrInvalidRank) {
			return fmt.Errorf("send to rank 5: %v, want ErrInvalidRank", err)
		}
		if err := c.Send(-1, 0, nil); !errors.Is(err, ErrInvalidRank) {
			return fmt.Errorf("send to rank -1: %v, want ErrInvalidRank", err)
		}
		if err := c.Send(0, 0, nil); !errors.Is(err, ErrSelfSend) {
			return fmt.Errorf("self send: %v, want ErrSelfSend", err)
		}
		if _, err := c.Reduce(9, nil, Sum); !errors.Is(err, ErrInvalidRank) {
			return fmt.Errorf("reduce root 9: %v, want ErrInvalidRank", err)
		}
		if _, err := c.Bcast(-2, nil); !errors.Is(err, ErrInvalidRank) {
			return fmt.Errorf("bcast root -2: %v, want ErrInvalidRank", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFaultPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan FaultPlan
	}{
		{"bad rank", FaultPlan{Faults: []Fault{{Kind: CrashAtClock, Rank: 9}}}},
		{"negative clock", FaultPlan{Faults: []Fault{{Kind: CrashAtClock, Rank: 0, Clock: -1}}}},
		{"zero collective index", FaultPlan{Faults: []Fault{{Kind: CrashAtCollective, Rank: 0}}}},
		{"bad peer", FaultPlan{Faults: []Fault{{Kind: DropMessages, Rank: 0, Peer: 42}}}},
		{"unknown kind", FaultPlan{Faults: []Fault{{Kind: FaultKind(99), Rank: 0}}}},
	}
	for _, tc := range cases {
		cfg := smallCfg(4)
		cfg.Faults = &tc.plan
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.plan)
		}
	}
	if err := (*FaultPlan)(nil).Validate(4); err != nil {
		t.Errorf("nil plan: %v", err)
	}
}

func TestRandomFaultPlanDeterministic(t *testing.T) {
	a := RandomFaultPlan(42, 4, 8, 1.0)
	b := RandomFaultPlan(42, 4, 8, 1.0)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different plans")
	}
	c := RandomFaultPlan(43, 4, 8, 1.0)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical plans")
	}
	for i, f := range a.Faults {
		if f.Rank < 0 || f.Rank >= 4 {
			t.Errorf("fault %d: rank %d out of range", i, f.Rank)
		}
	}
	cfg := smallCfg(4)
	cfg.Faults = a
	if err := cfg.Validate(); err != nil {
		t.Errorf("random plan invalid: %v", err)
	}
}

// TestCollectiveEdgeCases covers the degenerate shapes the fault-recovery
// paths produce: zero-length buffers, a single-rank communicator, and
// Allgatherv segments of length zero.
func TestCollectiveEdgeCases(t *testing.T) {
	t.Run("zero-length buffers", func(t *testing.T) {
		_, err := Run(smallCfg(4), func(c *Comm) error {
			if res, err := c.Allreduce(nil, Sum); err != nil || len(res) != 0 {
				return fmt.Errorf("empty allreduce: %v %v", res, err)
			}
			if res, err := c.Bcast(0, []float64{}); err != nil || len(res) != 0 {
				return fmt.Errorf("empty bcast: %v %v", res, err)
			}
			if _, err := c.Reduce(1, nil, Max); err != nil {
				return fmt.Errorf("empty reduce: %v", err)
			}
			if res, err := c.Allgatherv(nil, []int{0, 0, 0, 0}); err != nil || len(res) != 0 {
				return fmt.Errorf("all-empty allgatherv: %v %v", res, err)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("single-rank communicator", func(t *testing.T) {
		_, err := Run(smallCfg(1), func(c *Comm) error {
			if err := c.Barrier(); err != nil {
				return err
			}
			res, err := c.Allreduce([]float64{3, 4}, Sum)
			if err != nil || res[0] != 3 || res[1] != 4 {
				return fmt.Errorf("single-rank allreduce: %v %v", res, err)
			}
			if res, err = c.Bcast(0, []float64{5}); err != nil || res[0] != 5 {
				return fmt.Errorf("single-rank bcast: %v %v", res, err)
			}
			if res, err = c.Reduce(0, []float64{6}, Min); err != nil || res[0] != 6 {
				return fmt.Errorf("single-rank reduce: %v %v", res, err)
			}
			if res, err = c.Allgatherv([]float64{7, 8}, []int{2}); err != nil ||
				!reflect.DeepEqual(res, []float64{7, 8}) {
				return fmt.Errorf("single-rank allgatherv: %v %v", res, err)
			}
			if err := c.Send(0, 0, nil); !errors.Is(err, ErrSelfSend) {
				return fmt.Errorf("single-rank self send: %v", err)
			}
			if _, _, ok, err := c.TryRecv(AnySource, AnyTag); err != nil || ok {
				return fmt.Errorf("single-rank tryrecv: ok=%v err=%v", ok, err)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})

	t.Run("allgatherv empty segments", func(t *testing.T) {
		counts := []int{3, 0, 2, 0}
		_, err := Run(smallCfg(4), func(c *Comm) error {
			contrib := make([]float64, counts[c.Rank()])
			for i := range contrib {
				contrib[i] = float64(10*c.Rank() + i)
			}
			res, err := c.Allgatherv(contrib, counts)
			if err != nil {
				return err
			}
			want := []float64{0, 1, 2, 20, 21}
			if !reflect.DeepEqual(res, want) {
				return fmt.Errorf("gathered %v, want %v", res, want)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestFaultFreeRunHasNoFaultReport pins the zero-cost property: without a
// plan, Report.Faults is nil and nothing is charged.
func TestFaultFreeRunHasNoFaultReport(t *testing.T) {
	rep, err := Run(smallCfg(2), func(c *Comm) error { return c.Barrier() })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults != nil {
		t.Errorf("fault-free run reported faults: %+v", rep.Faults)
	}
}
