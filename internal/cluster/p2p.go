package cluster

import "fmt"

// AnySource matches any sender in Recv.
const AnySource = -1

// AnyTag matches any tag in RecvAny.
const AnyTag = -1

// Send delivers data to rank dst with the given tag. Sends are eager
// (buffered): the call charges the sender's clock with the startup cost
// and returns immediately, like an MPI eager-protocol send.
func (c *Comm) Send(dst, tag int, data []float64) error {
	if dst < 0 || dst >= c.Size() {
		return fmt.Errorf("cluster: send to invalid rank %d", dst)
	}
	if dst == c.rank {
		return fmt.Errorf("cluster: rank %d sending to itself", c.rank)
	}
	tier := c.w.linkTier(c.rank, dst)
	c.clock += tier.Latency.Seconds()
	c.commSecs += tier.Latency.Seconds()
	c.bytesSent += int64(len(data)) * 8

	msg := p2pMsg{
		src:       c.rank,
		tag:       tag,
		data:      append([]float64(nil), data...),
		sendClock: c.clock,
	}
	peer := c.w.ranks[dst]
	peer.inbox.mu.Lock()
	peer.inbox.msgs = append(peer.inbox.msgs, msg)
	peer.inbox.cond.Broadcast()
	peer.inbox.mu.Unlock()
	return nil
}

// Recv blocks until a message with matching source (or AnySource) and
// tag arrives, returning its payload and actual source. The receiver's
// clock advances to max(own clock, sender clock + transfer time).
func (c *Comm) Recv(src, tag int) ([]float64, int, error) {
	data, from, _, err := c.recv(src, tag, true)
	return data, from, err
}

// RecvAny blocks for the next message from src (or AnySource) with ANY
// tag, returning payload, source and tag — the primitive a server-style
// loop needs (e.g. the inter-rank work-stealing protocol, which must
// answer steal requests while waiting for its own replies).
func (c *Comm) RecvAny(src int) ([]float64, int, int, error) {
	return c.recv(src, AnyTag, true)
}

// TryRecv is the non-blocking variant of Recv: ok reports whether a
// matching message was consumed.
func (c *Comm) TryRecv(src, tag int) (data []float64, from int, ok bool, err error) {
	data, from, _, err = c.recv(src, tag, false)
	if err != nil {
		return nil, 0, false, err
	}
	return data, from, from >= 0, nil
}

// Message is a received point-to-point message with its virtual
// timestamp, for protocols that need to reason about when the sender
// acted (e.g. the work-stealing reply stamping below).
type Message struct {
	Data     []float64
	Src, Tag int
	// SentAt is the sender's virtual clock when the message was sent.
	SentAt float64
}

// RecvMsg is Recv returning full message metadata. With block=false it
// returns (nil, nil) when nothing matches.
func (c *Comm) RecvMsg(src, tag int, block bool) (*Message, error) {
	c.inbox.mu.Lock()
	defer c.inbox.mu.Unlock()
	for {
		if c.w.isAborted() {
			return nil, ErrAborted
		}
		for i, m := range c.inbox.msgs {
			if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
				tier := c.w.linkTier(m.src, c.rank)
				arrive := m.sendClock + tier.SecPerWord*float64(len(m.data))
				// A non-blocking probe must not see messages that have
				// not virtually arrived yet — the in-process transport
				// can deliver them early, but on the modeled machine
				// they are still in flight. (A blocking receive WAITS
				// for them, so there the clock jump is the semantics.)
				if !block && arrive > c.clock {
					continue
				}
				c.inbox.msgs = append(c.inbox.msgs[:i], c.inbox.msgs[i+1:]...)
				entry := c.clock
				if arrive > c.clock {
					c.clock = arrive
				}
				c.commSecs += c.clock - entry
				return &Message{Data: m.data, Src: m.src, Tag: m.tag, SentAt: m.sendClock}, nil
			}
		}
		if !block {
			return nil, nil
		}
		c.w.pacer.block(c.rank, c.clock)
		c.inbox.cond.Wait()
		c.w.pacer.resume(c.rank, c.clock)
	}
}

// ReplyStamped answers req with a message whose virtual timestamp is the
// request's arrival time plus one handling latency — the behaviour of an
// asynchronous communication engine (MPI progress thread) that serves
// requests as they arrive, independent of where the rank's main
// computation currently stands. Without this, in-process execution order
// leaks into the virtual clock: a victim whose goroutine happened to run
// ahead would stamp replies with its (much later) compute clock,
// penalizing the requester for scheduling noise the modeled machine
// would not have. The sender is charged one startup latency.
func (c *Comm) ReplyStamped(req *Message, tag int, data []float64) error {
	if req == nil {
		return fmt.Errorf("cluster: ReplyStamped with nil request")
	}
	tier := c.w.linkTier(req.Src, c.rank)
	stamp := req.SentAt + 2*tier.Latency.Seconds()
	c.clock += tier.Latency.Seconds()
	c.commSecs += tier.Latency.Seconds()
	c.bytesSent += int64(len(data)) * 8

	msg := p2pMsg{
		src:       c.rank,
		tag:       tag,
		data:      append([]float64(nil), data...),
		sendClock: stamp,
	}
	peer := c.w.ranks[req.Src]
	peer.inbox.mu.Lock()
	peer.inbox.msgs = append(peer.inbox.msgs, msg)
	peer.inbox.cond.Broadcast()
	peer.inbox.mu.Unlock()
	return nil
}

// recv implements the matching loop. When block is false it returns
// (nil, -1, -1, nil) if nothing matches.
func (c *Comm) recv(src, tag int, block bool) ([]float64, int, int, error) {
	c.inbox.mu.Lock()
	defer c.inbox.mu.Unlock()
	for {
		if c.w.isAborted() {
			return nil, -1, -1, ErrAborted
		}
		for i, m := range c.inbox.msgs {
			if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
				tier := c.w.linkTier(m.src, c.rank)
				arrive := m.sendClock + tier.SecPerWord*float64(len(m.data))
				// See RecvMsg: non-blocking probes skip messages still
				// in flight on the modeled machine.
				if !block && arrive > c.clock {
					continue
				}
				c.inbox.msgs = append(c.inbox.msgs[:i], c.inbox.msgs[i+1:]...)
				entry := c.clock
				if arrive > c.clock {
					c.clock = arrive
				}
				c.commSecs += c.clock - entry
				return m.data, m.src, m.tag, nil
			}
		}
		if !block {
			return nil, -1, -1, nil
		}
		c.w.pacer.block(c.rank, c.clock)
		c.inbox.cond.Wait()
		c.w.pacer.resume(c.rank, c.clock)
	}
}

func (w *world) isAborted() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.aborted
}
