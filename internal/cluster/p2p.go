package cluster

import (
	"fmt"
	"time"
)

// AnySource matches any sender in Recv.
const AnySource = -1

// AnyTag matches any tag in RecvAny.
const AnyTag = -1

// Send delivers data to rank dst with the given tag. Sends are eager
// (buffered): the call charges the sender's clock with the startup cost
// and returns immediately, like an MPI eager-protocol send.
//
// Under a fault plan, Send models a RELIABLE transport over a lossy
// link: each injected drop costs one retransmission with exponential
// backoff (latency·2^attempt) on the sender's clock; when the retry
// budget (FaultPlan.MaxRetries) is exhausted the link is declared down
// and Send fails with ErrTimeout. Sending to a dead rank fails fast
// with ErrRankDead.
func (c *Comm) Send(dst, tag int, data []float64) error {
	c.checkClockCrash()
	if dst < 0 || dst >= c.Size() {
		return fmt.Errorf("cluster: send to rank %d: %w", dst, ErrInvalidRank)
	}
	if dst == c.rank {
		return fmt.Errorf("cluster: rank %d: %w", c.rank, ErrSelfSend)
	}
	if err := c.requireAlive(dst); err != nil {
		return fmt.Errorf("cluster: send to rank %d: %w", dst, err)
	}
	tier := c.w.linkTier(c.rank, dst)
	c.clock += tier.Latency.Seconds()
	c.commSecs += tier.Latency.Seconds()
	c.bytesSent += int64(len(data)) * 8
	if o := c.w.cfg.Obs; o != nil {
		o.Counter("cluster.p2p.msgs").Inc()
		o.Counter("cluster.p2p.bytes").Add(int64(len(data)) * 8)
	}

	if c.flt != nil {
		attempt := 0
		for c.flt.takeDrop(dst, tag) {
			c.w.noteDrop(c.rank, c.clock)
			attempt++
			if attempt > c.w.plan.MaxRetries {
				return fmt.Errorf("cluster: rank %d send to %d: %d retransmissions lost: %w",
					c.rank, dst, attempt, ErrTimeout)
			}
			backoff := tier.Latency.Seconds() * float64(int(1)<<attempt)
			c.clock += backoff
			c.commSecs += backoff
			c.w.noteRetry()
			c.checkClockCrash()
		}
	}

	msg := p2pMsg{
		src:       c.rank,
		tag:       tag,
		data:      append([]float64(nil), data...),
		sendClock: c.clock,
	}
	if c.flt != nil {
		if d := c.flt.takeDelay(dst, tag); d > 0 {
			msg.sendClock += d
			c.w.noteDelay(c.rank, c.clock)
		}
	}
	peer := c.w.ranks[dst]
	peer.inbox.mu.Lock()
	peer.inbox.msgs = append(peer.inbox.msgs, msg)
	peer.inbox.cond.Broadcast()
	peer.inbox.mu.Unlock()
	return nil
}

// Recv blocks until a message with matching source (or AnySource) and
// tag arrives, returning its payload and actual source. The receiver's
// clock advances to max(own clock, sender clock + transfer time).
func (c *Comm) Recv(src, tag int) ([]float64, int, error) {
	data, from, _, err := c.recv(src, tag, true)
	return data, from, err
}

// RecvAny blocks for the next message from src (or AnySource) with ANY
// tag, returning payload, source and tag — the primitive a server-style
// loop needs (e.g. the inter-rank work-stealing protocol, which must
// answer steal requests while waiting for its own replies).
func (c *Comm) RecvAny(src int) ([]float64, int, int, error) {
	return c.recv(src, AnyTag, true)
}

// TryRecv is the non-blocking variant of Recv: ok reports whether a
// matching message was consumed.
func (c *Comm) TryRecv(src, tag int) (data []float64, from int, ok bool, err error) {
	data, from, _, err = c.recv(src, tag, false)
	if err != nil {
		return nil, 0, false, err
	}
	return data, from, from >= 0, nil
}

// Message is a received point-to-point message with its virtual
// timestamp, for protocols that need to reason about when the sender
// acted (e.g. the work-stealing reply stamping below).
type Message struct {
	Data     []float64
	Src, Tag int
	// SentAt is the sender's virtual clock when the message was sent.
	SentAt float64
}

// RecvMsg is Recv returning full message metadata. With block=false it
// returns (nil, nil) when nothing matches.
func (c *Comm) RecvMsg(src, tag int, block bool) (*Message, error) {
	if block {
		c.checkClockCrash()
	}
	c.inbox.mu.Lock()
	defer c.inbox.mu.Unlock()
	stall, deadline, timer := c.armRecvStall(block)
	defer stopStall(timer)
	for {
		if c.w.isAborted() {
			return nil, ErrAborted
		}
		for i, m := range c.inbox.msgs {
			if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
				tier := c.w.linkTier(m.src, c.rank)
				arrive := m.sendClock + tier.SecPerWord*float64(len(m.data))
				// A non-blocking probe must not see messages that have
				// not virtually arrived yet — the in-process transport
				// can deliver them early, but on the modeled machine
				// they are still in flight. (A blocking receive WAITS
				// for them, so there the clock jump is the semantics.)
				if !block && arrive > c.clock {
					continue
				}
				c.inbox.msgs = append(c.inbox.msgs[:i], c.inbox.msgs[i+1:]...)
				entry := c.clock
				if arrive > c.clock {
					c.clock = arrive
				}
				c.commSecs += c.clock - entry
				return &Message{Data: m.data, Src: m.src, Tag: m.tag, SentAt: m.sendClock}, nil
			}
		}
		if !block {
			return nil, nil
		}
		if err := c.recvLiveness(src, 0); err != nil {
			return nil, err
		}
		if stall > 0 && time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: rank %d recv stalled %v: %w", c.rank, stall, ErrTimeout)
		}
		c.w.pacer.block(c.rank, c.clock)
		c.inbox.cond.Wait()
		c.w.pacer.resume(c.rank, c.clock)
	}
}

// ReplyStamped answers req with a message whose virtual timestamp is the
// request's arrival time plus one handling latency — the behaviour of an
// asynchronous communication engine (MPI progress thread) that serves
// requests as they arrive, independent of where the rank's main
// computation currently stands. Without this, in-process execution order
// leaks into the virtual clock: a victim whose goroutine happened to run
// ahead would stamp replies with its (much later) compute clock,
// penalizing the requester for scheduling noise the modeled machine
// would not have. The sender is charged one startup latency.
func (c *Comm) ReplyStamped(req *Message, tag int, data []float64) error {
	if req == nil {
		return fmt.Errorf("cluster: ReplyStamped with nil request: %w", ErrProtocol)
	}
	if err := c.requireAlive(req.Src); err != nil {
		return fmt.Errorf("cluster: reply to rank %d: %w", req.Src, err)
	}
	tier := c.w.linkTier(req.Src, c.rank)
	stamp := req.SentAt + 2*tier.Latency.Seconds()
	c.clock += tier.Latency.Seconds()
	c.commSecs += tier.Latency.Seconds()
	c.bytesSent += int64(len(data)) * 8

	msg := p2pMsg{
		src:       c.rank,
		tag:       tag,
		data:      append([]float64(nil), data...),
		sendClock: stamp,
	}
	peer := c.w.ranks[req.Src]
	peer.inbox.mu.Lock()
	peer.inbox.msgs = append(peer.inbox.msgs, msg)
	peer.inbox.cond.Broadcast()
	peer.inbox.mu.Unlock()
	return nil
}

// recv implements the matching loop. When block is false it returns
// (nil, -1, -1, nil) if nothing matches.
func (c *Comm) recv(src, tag int, block bool) ([]float64, int, int, error) {
	if block {
		c.checkClockCrash()
	}
	c.inbox.mu.Lock()
	defer c.inbox.mu.Unlock()
	stall, deadline, timer := c.armRecvStall(block)
	defer stopStall(timer)
	for {
		if c.w.isAborted() {
			return nil, -1, -1, ErrAborted
		}
		for i, m := range c.inbox.msgs {
			if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
				tier := c.w.linkTier(m.src, c.rank)
				arrive := m.sendClock + tier.SecPerWord*float64(len(m.data))
				// See RecvMsg: non-blocking probes skip messages still
				// in flight on the modeled machine.
				if !block && arrive > c.clock {
					continue
				}
				c.inbox.msgs = append(c.inbox.msgs[:i], c.inbox.msgs[i+1:]...)
				entry := c.clock
				if arrive > c.clock {
					c.clock = arrive
				}
				c.commSecs += c.clock - entry
				return m.data, m.src, m.tag, nil
			}
		}
		if !block {
			return nil, -1, -1, nil
		}
		if err := c.recvLiveness(src, 0); err != nil {
			return nil, -1, -1, err
		}
		if stall > 0 && time.Now().After(deadline) {
			return nil, -1, -1, fmt.Errorf("cluster: rank %d recv stalled %v: %w", c.rank, stall, ErrTimeout)
		}
		c.w.pacer.block(c.rank, c.clock)
		c.inbox.cond.Wait()
		c.w.pacer.resume(c.rank, c.clock)
	}
}

// armRecvStall sets up the real-time backstop for a blocking receive.
// Returns (0, zero, nil) when the backstop is disabled or the call is
// non-blocking.
func (c *Comm) armRecvStall(block bool) (stall time.Duration, deadline time.Time, timer *time.Timer) {
	if !block {
		return 0, time.Time{}, nil
	}
	stall = c.w.cfg.StallTimeout
	if stall <= 0 {
		return 0, time.Time{}, nil
	}
	return stall, time.Now().Add(stall), armStall(c.inbox.cond, stall)
}

// recvLiveness decides whether a blocking receive can still be
// satisfied: an unobserved death surfaces as *RankDeadError (the
// heartbeat analogue — charged with the detection latency), and waiting
// on a specific dead source, or on AnySource with no other live rank
// left, fails likewise. Called with inbox.mu held (lock order
// inbox.mu → w.mu is safe: nothing acquires them in reverse).
func (c *Comm) recvLiveness(src, words int) error {
	w := c.w
	if w.cfg.Faults == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := c.observeDeathsLocked(words); err != nil {
		return err
	}
	if src != AnySource && w.dead[src] {
		return fmt.Errorf("cluster: recv from rank %d: %w",
			src, &RankDeadError{Dead: append([]int(nil), w.deadOrder...)})
	}
	if src == AnySource && w.liveCountLocked() <= 1 {
		return fmt.Errorf("cluster: recv: no live peers: %w",
			&RankDeadError{Dead: append([]int(nil), w.deadOrder...)})
	}
	return nil
}

func (w *world) isAborted() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.aborted
}
