package net

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"gbpolar/internal/cluster"
	"gbpolar/internal/obs"
	"gbpolar/internal/obs/serve"
)

// waitState polls the coordinator until pred holds (the telemetry plane
// is asynchronous only across processes; frames from one worker are
// processed in order, so once its Bye is visible its final batch is in).
func waitState(t *testing.T, co *Coordinator, pred func(ClusterState) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !pred(co.State()) {
		if time.Now().After(deadline) {
			t.Fatalf("cluster state never converged: %+v", co.State())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The merged stream: every shipping rank's collective spans land in the
// coordinator's trace tagged with the source rank, wall durations survive
// the wire bit-for-bit, and worker counters fold additively.
func TestNetTelemetryMergedStream(t *testing.T) {
	const size = 3
	coObs := obs.New()
	co := testCoordinator(t, size, func(cfg *Config) { cfg.Obs = coObs })

	workerObs := make([]*obs.Obs, size)
	for r := range workerObs {
		workerObs[r] = obs.New()
	}
	errs := runRanks(t, co, size, func(rank int) Options {
		return Options{
			StallTimeout:  20 * time.Second,
			Obs:           workerObs[rank],
			ShipTelemetry: true,
		}
	}, func(c *Comm) error {
		r := float64(c.Rank())
		for i := 0; i < 3; i++ {
			if _, err := c.Allreduce([]float64{r + 1}, cluster.Sum); err != nil {
				return err
			}
			// Give the heartbeat loop (50 ms interval) room to exchange
			// timestamped pongs, so the RTT/offset path runs too.
			time.Sleep(60 * time.Millisecond)
		}
		return c.Barrier()
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	waitState(t, co, func(s ClusterState) bool { return s.Left == size })

	// Per-rank reconciliation: the merged collective spans must carry
	// exactly the durations the worker recorded locally.
	type agg struct{ n int; durUS float64 }
	merged := map[int]*agg{}
	for _, ev := range coObs.Trace.Events() {
		if ev.Cat != "collective" {
			continue
		}
		a := merged[ev.Rank]
		if a == nil {
			a = &agg{}
			merged[ev.Rank] = a
		}
		a.n++
		a.durUS += ev.WallDurUS
	}
	for r := 0; r < size; r++ {
		var local agg
		for _, ev := range workerObs[r].Trace.Events() {
			if ev.Cat == "collective" {
				local.n++
				local.durUS += ev.WallDurUS
			}
		}
		if local.n != 4 {
			t.Fatalf("rank %d recorded %d collective spans locally, want 4", r, local.n)
		}
		m := merged[r]
		if m == nil || m.n != local.n {
			t.Fatalf("rank %d: merged stream has %+v collective spans, local has %d", r, m, local.n)
		}
		if math.Abs(m.durUS-local.durUS) > 1e-9 {
			t.Fatalf("rank %d: merged wall %gus vs local %gus", r, m.durUS, local.durUS)
		}
	}

	// Counters fold additively: the coordinator's net.frames.sent can
	// only come from shipped worker deltas, and must equal the sum of
	// the worker-local values.
	var wantSent int64
	for r := 0; r < size; r++ {
		wantSent += workerObs[r].Metrics.Counter("net.frames.sent").Value()
	}
	if got := coObs.Metrics.Counter("net.frames.sent").Value(); got != wantSent {
		t.Fatalf("folded net.frames.sent = %d, want %d", got, wantSent)
	}
	if coObs.Metrics.Counter("net.telemetry.frames").Value() < int64(size) {
		t.Fatalf("coordinator absorbed %d telemetry frames, want >= %d",
			coObs.Metrics.Counter("net.telemetry.frames").Value(), size)
	}
	// Heartbeats ran, so the RTT histogram has samples and at least one
	// span name matches the modeled transport's rendezvous vocabulary.
	if coObs.Metrics.Histogram("net.heartbeat.rtt_us").Count() == 0 {
		t.Fatal("no heartbeat RTT samples recorded")
	}
	names := map[string]bool{}
	for _, ev := range coObs.Trace.Events() {
		names[ev.Name] = true
	}
	if !names["allreduce"] || !names["barrier"] {
		t.Fatalf("merged stream missing collective span names: %v", names)
	}
}

// A malformed telemetry frame is counted and dropped — never a protocol
// failure for the rank that sent it.
func TestNetTelemetryDecodeErrorTolerated(t *testing.T) {
	coObs := obs.New()
	co := testCoordinator(t, 1, func(cfg *Config) { cfg.Obs = coObs })
	errs := runRanks(t, co, 1, nil, func(c *Comm) error {
		if err := c.fc.writeFrame(mTelemetry, []byte{0xFF, 0x01, 0x02}); err != nil {
			return err
		}
		_, err := c.Allreduce([]float64{1}, cluster.Sum)
		return err
	})
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	waitState(t, co, func(s ClusterState) bool { return s.Left == 1 })
	if got := coObs.Metrics.Counter("net.telemetry.decode_errors").Value(); got != 1 {
		t.Fatalf("decode_errors = %d, want 1", got)
	}
}

// The live endpoint over a real cluster: /metrics exposes the wire
// counters the round just produced, /readyz follows membership.
func TestNetObsEndpointSmoke(t *testing.T) {
	coObs := obs.New()
	co := testCoordinator(t, 1, func(cfg *Config) { cfg.Obs = coObs })
	srv, err := serve.Start("127.0.0.1:0", coObs, func() serve.Health {
		s := co.State()
		return serve.Health{State: "running", Ready: s.Ready(), Size: s.Size,
			LiveRanks: s.Live, Rounds: s.Rounds}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Before any rank joins: alive but not ready.
	resp, err := http.Get("http://" + srv.Addr() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before join = %d, want 503", resp.StatusCode)
	}

	errs := runRanks(t, co, 1, func(int) Options {
		return Options{StallTimeout: 20 * time.Second, Obs: coObs}
	}, func(c *Comm) error {
		_, err := c.Allreduce([]float64{2}, cluster.Sum)
		return err
	})
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	waitState(t, co, func(s ClusterState) bool { return s.Rounds >= 1 })

	resp, err = http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gbpol_up 1", "gbpol_net_frames_recv", "gbpol_cluster_collectives 1"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}
