package net

import (
	"fmt"
	gonet "net"
	"sync"
	"time"

	"gbpolar/internal/cluster"
	"gbpolar/internal/obs"
	"gbpolar/internal/wire"
)

// Config configures a Coordinator.
type Config struct {
	// Size is the number of ranks (P), fixed for the run; elastic
	// membership re-admits crashed ranks but never grows past Size.
	Size int
	// ListenAddr is the coordinator's listen address; empty binds an
	// ephemeral loopback port (Addr reports the bound address).
	ListenAddr string
	// Threads is the worker thread count reported to ranks.
	Threads int
	// OpsPerSecond is the calibrated kernel rate reported to ranks.
	OpsPerSecond float64
	// StallTimeout is the round backstop: an assembling collective that
	// has not completed this long after its first deposit fails with
	// codeTimeout (no death is declared — the caller decides whether to
	// degrade). Worker deposits can tighten it per round. 0 defaults to
	// 2 minutes.
	StallTimeout time.Duration
	// HeartbeatInterval/HeartbeatTimeout drive liveness probing of up
	// members. A SIGKILLed worker is usually detected faster through the
	// closed socket; heartbeats catch hung-but-connected processes.
	// Defaults: 500ms / 10s (generous — CI runs everything on one CPU
	// under the race detector).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// JoinDeadline bounds how long the run waits for founding members to
	// connect; a rank that never shows is declared dead so the others can
	// proceed (or degrade). 0 defaults to 30s.
	JoinDeadline time.Duration
	// Obs, when non-nil, receives membership instants and counters.
	Obs *obs.Obs
}

func (c Config) withDefaults() Config {
	if c.StallTimeout <= 0 {
		c.StallTimeout = 2 * time.Minute
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 10 * time.Second
	}
	if c.JoinDeadline <= 0 {
		c.JoinDeadline = 30 * time.Second
	}
	return c
}

type memberState int

const (
	// stExpected: a founding rank that has not connected yet. Blocks
	// round completion until it joins or the join deadline kills it.
	stExpected memberState = iota
	// stUp: connected and participating.
	stUp
	// stDead: declared dead (socket loss, heartbeat or join timeout).
	// May hold a pending rejoin connection awaiting admission.
	stDead
	// stLeft: sent mBye after finishing its rank body; excluded from
	// round completion without a death event.
	stLeft
)

type member struct {
	rank     int
	state    memberState
	fc       *frameConn // current connection (stUp)
	pending  *frameConn // rejoin connection awaiting admission (stDead)
	dep      *deposit   // in-flight contribution to the assembling round
	lastPong time.Time

	// Telemetry clock reconciliation: when the last heartbeat probe was
	// written (coordinator trace-clock µs) and the best — lowest-RTT —
	// estimate of the offset mapping this worker's trace clock onto the
	// coordinator's (offset = probe midpoint − worker clock in the pong).
	pingSentUS float64
	awaitPong  bool
	offsetUS   float64
	bestRTTUS  float64
	hasOffset  bool
}

// Coordinator is the rendezvous point of the TCP transport: it assembles
// collective rounds, serializes membership changes into the event log,
// relays point-to-point messages, and aggregates fault metering. The
// protocol invariant mirrored from the in-process transport: every
// deposit receives exactly one response (mRoundOK or mRoundFail), and a
// round completes only when every up member has deposited under the
// current event log — so a successful collective is a consensus on
// membership.
type Coordinator struct {
	cfg   Config
	ln    gonet.Listener
	start time.Time

	mu              sync.Mutex
	members         []*member
	events          []cluster.MemberEvent
	completedRounds int
	lastResult      []float64 // last completed Allreduce result (joiner seed)
	roundTimer      *time.Timer
	roundDeadline   time.Duration
	fstats          cluster.FaultReport
	closed          bool

	wg        sync.WaitGroup
	hbStop    chan struct{}
	joinTimer *time.Timer
}

// Start launches a coordinator listening for cfg.Size workers.
func Start(cfg Config) (*Coordinator, error) {
	if cfg.Size < 1 {
		return nil, fmt.Errorf("net: coordinator needs Size >= 1, got %d: %w", cfg.Size, cluster.ErrProtocol)
	}
	cfg = cfg.withDefaults()
	addr := cfg.ListenAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := gonet.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("net: coordinator listen: %w", err)
	}
	co := &Coordinator{cfg: cfg, ln: ln, start: time.Now(), hbStop: make(chan struct{})}
	co.members = make([]*member, cfg.Size)
	for r := range co.members {
		co.members[r] = &member{rank: r}
	}
	co.joinTimer = time.AfterFunc(cfg.JoinDeadline, co.expireFoundingMembers)
	co.wg.Add(2)
	go co.acceptLoop()
	go co.heartbeatLoop()
	return co, nil
}

// Addr returns the bound listen address (host:port).
func (co *Coordinator) Addr() string { return co.ln.Addr().String() }

// Events returns a copy of the membership event log.
func (co *Coordinator) Events() []cluster.MemberEvent {
	co.mu.Lock()
	defer co.mu.Unlock()
	return append([]cluster.MemberEvent(nil), co.events...)
}

// PendingJoins reports how many rejoin connections are queued awaiting
// admission at the next successful collective.
func (co *Coordinator) PendingJoins() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	n := 0
	for _, m := range co.members {
		if m.pending != nil {
			n++
		}
	}
	return n
}

// FaultReport returns a copy of the aggregated fault metering.
func (co *Coordinator) FaultReport() cluster.FaultReport {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.fstats
}

// NoteRespawnFailure meters a failed attempt to relaunch a dead worker
// into the aggregated fault report — the respawner could not bring the
// rank back, so the run continues permanently short-handed.
func (co *Coordinator) NoteRespawnFailure(rank int) {
	co.mu.Lock()
	co.fstats.RespawnFailures++
	co.mu.Unlock()
	if o := co.cfg.Obs; o != nil {
		o.Counter("net.respawn_failures").Inc()
		o.Instant(rank, "fault", "respawn failed", obs.NoVirtual)
	}
}

// ClusterState is a point-in-time membership summary — the health the
// /readyz endpoint reports.
type ClusterState struct {
	// Size is the configured rank count.
	Size int
	// Live/Left/Dead count members by state; Ready when Live+Left ==
	// Size (every founder joined, nobody currently dead).
	Live, Left, Dead int
	// Pending counts rejoin connections queued for the next boundary.
	Pending int
	// Rounds counts completed collectives.
	Rounds int
}

// Ready reports whether the cluster is fully assembled and healthy.
func (s ClusterState) Ready() bool { return s.Live+s.Left == s.Size }

// State returns the current membership summary.
func (co *Coordinator) State() ClusterState {
	co.mu.Lock()
	defer co.mu.Unlock()
	st := ClusterState{Size: co.cfg.Size, Rounds: co.completedRounds}
	for _, m := range co.members {
		switch m.state {
		case stUp:
			st.Live++
		case stLeft:
			st.Left++
		case stDead:
			st.Dead++
		}
		if m.pending != nil {
			st.Pending++
		}
	}
	return st
}

// nowUS is the coordinator's telemetry clock: its own trace's wall axis
// when observing, so worker offsets map absorbed events straight onto
// the merged timeline's axis.
func (co *Coordinator) nowUS() float64 {
	if o := co.cfg.Obs; o != nil && o.Trace != nil {
		return o.Trace.NowUS()
	}
	return float64(time.Since(co.start)) / float64(time.Microsecond)
}

// Close shuts the coordinator down: stops timers, closes the listener
// and every worker connection (surviving workers observe ErrAborted),
// and waits for the service goroutines.
func (co *Coordinator) Close() {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		co.wg.Wait()
		return
	}
	co.closed = true
	co.joinTimer.Stop()
	if co.roundTimer != nil {
		co.roundTimer.Stop()
	}
	conns := co.liveConnsLocked()
	co.mu.Unlock()
	close(co.hbStop)
	co.ln.Close()
	for _, fc := range conns {
		fc.close()
	}
	co.wg.Wait()
}

func (co *Coordinator) liveConnsLocked() []*frameConn {
	var conns []*frameConn
	for _, m := range co.members {
		if m.fc != nil {
			conns = append(conns, m.fc)
		}
		if m.pending != nil {
			conns = append(conns, m.pending)
		}
	}
	return conns
}

func (co *Coordinator) acceptLoop() {
	defer co.wg.Done()
	for {
		conn, err := co.ln.Accept()
		if err != nil {
			return // listener closed
		}
		co.wg.Add(1)
		go co.handleConn(newFrameConn(conn))
	}
}

// handleConn authenticates one worker connection (hello) and then serves
// its frames until the socket dies.
func (co *Coordinator) handleConn(fc *frameConn) {
	defer co.wg.Done()
	fc.conn.SetReadDeadline(time.Now().Add(co.cfg.JoinDeadline))
	typ, body, err := fc.readFrame()
	if err != nil || typ != mHello {
		fc.close()
		return
	}
	fc.conn.SetReadDeadline(time.Time{})
	r := wire.NewReader(body)
	rank := int(r.I32())
	if r.Err() != nil || rank < 0 || rank >= co.cfg.Size {
		fc.close()
		return
	}

	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		fc.close()
		return
	}
	m := co.members[rank]
	switch m.state {
	case stExpected:
		// Founding member: admitted immediately.
		m.state = stUp
		m.fc = fc
		m.lastPong = time.Now()
		co.sendWelcomeLocked(m, fc)
	case stUp:
		// A second connection for an up rank means the old process died
		// without the socket closing yet (or a worker restarted fast).
		// Declare the old incarnation dead, then queue the new one as a
		// rejoin.
		old := m.fc
		co.killLocked(m, "superseded connection")
		old.close()
		m.pending = fc
	case stDead:
		// Rejoin: queued until the next SUCCESSFUL collective. Admitting
		// any earlier — even while no round is assembling — would shrink
		// survivors' spans mid-phase after they already computed (and
		// will contribute) rows the joiner would recompute, double
		// counting them in the reduction. A successful collective is the
		// one point where every live rank's partial state is retired.
		if m.pending != nil {
			m.pending.close()
		}
		m.pending = fc
	case stLeft:
		co.mu.Unlock()
		fc.close()
		return
	}
	co.mu.Unlock()

	co.serve(m, fc)
}

// admitLocked turns a pending rejoin connection into an up member and
// appends its join event. The welcome is NOT sent here: the caller first
// admits every pending joiner of the boundary, then sends welcomes, so
// each welcome carries the complete boundary log (a joiner whose welcome
// missed a sibling join would start the next phase under a stale span
// division). Callers hold co.mu.
func (co *Coordinator) admitLocked(m *member) {
	m.state = stUp
	m.fc = m.pending
	m.pending = nil
	m.lastPong = time.Now()
	m.dep = nil
	co.events = append(co.events, cluster.MemberEvent{Rank: m.rank, Join: true})
	co.fstats.Rejoins++
	if o := co.cfg.Obs; o != nil {
		o.Counter("net.rejoins").Inc()
		o.Instant(m.rank, "membership", "rejoin", obs.NoVirtual,
			obs.F("round", float64(co.completedRounds)))
	}
}

// sendWelcomeLocked sends the admission frame: cluster shape, completed
// round count, the membership log, and the last Allreduce result as the
// mid-protocol seed.
func (co *Coordinator) sendWelcomeLocked(m *member, fc *frameConn) {
	var w wire.Writer
	w.I32(int32(co.cfg.Size))
	w.I32(int32(co.cfg.Threads))
	w.F64(co.cfg.OpsPerSecond)
	w.U32(uint32(co.completedRounds))
	appendEvents(&w, co.events)
	w.F64s(co.lastResult)
	if err := fc.writeFrame(mWelcome, w.Bytes()); err != nil {
		co.disconnectLocked(m, fc)
	}
}

// serve dispatches one connection's frames until it breaks.
func (co *Coordinator) serve(m *member, fc *frameConn) {
	for {
		typ, body, err := fc.readFrame()
		if err != nil {
			co.mu.Lock()
			co.disconnectLocked(m, fc)
			co.mu.Unlock()
			return
		}
		if o := co.cfg.Obs; o != nil {
			o.Counter("net.frames.recv").Inc()
			o.Histogram("net.frame.recv_bytes").Observe(int64(len(body)))
		}
		r := wire.NewReader(body)
		switch typ {
		case mPong:
			// The optional body is the worker's trace clock; RTT and the
			// midpoint offset estimate feed the merged-timeline clock
			// reconciliation (DESIGN.md §13).
			workerClock := r.F64()
			now := co.nowUS()
			co.mu.Lock()
			if m.fc == fc {
				m.lastPong = time.Now()
				if m.awaitPong {
					m.awaitPong = false
					rtt := now - m.pingSentUS
					if o := co.cfg.Obs; o != nil {
						o.Histogram("net.heartbeat.rtt_us").Observe(int64(rtt))
					}
					if r.Err() == nil && workerClock > 0 &&
						(!m.hasOffset || rtt <= m.bestRTTUS) {
						m.bestRTTUS = rtt
						m.offsetUS = m.pingSentUS + rtt/2 - workerClock
						m.hasOffset = true
					}
				}
			}
			co.mu.Unlock()
		case mTelemetry:
			o := co.cfg.Obs
			if o == nil {
				continue // plane disabled on the coordinator: drop
			}
			tl, terr := obs.DecodeTelemetry(body)
			if terr != nil {
				o.Counter("net.telemetry.decode_errors").Inc()
				continue
			}
			o.Counter("net.telemetry.frames").Inc()
			co.mu.Lock()
			var off float64
			if m.hasOffset {
				off = m.offsetUS
			}
			co.mu.Unlock()
			// Absorb outside co.mu: adopting events takes the trace
			// mutex, which must stay a leaf lock.
			o.Absorb(tl, m.rank, off)
		case mDeposit:
			dep, derr := decodeDeposit(r)
			co.mu.Lock()
			if m.fc != fc || m.state != stUp {
				co.mu.Unlock()
				continue // stale connection or not admitted: drop
			}
			if derr != nil {
				co.roundFailLocked(m, codeProtocol)
			} else {
				co.handleDepositLocked(m, dep)
			}
			co.mu.Unlock()
		case mRelay:
			seq := r.U64()
			dst := int(r.I32())
			tag := int(r.I32())
			data := r.F64s()
			co.mu.Lock()
			if r.Err() != nil {
				co.sendErrLocked(m, seq, codeProtocol)
			} else {
				co.handleRelayLocked(m, seq, dst, tag, data)
			}
			co.mu.Unlock()
		case mStats:
			rows := r.I64()
			secs := r.F64()
			co.mu.Lock()
			if r.Err() == nil {
				co.fstats.RecomputedRows += int(rows)
				co.fstats.RecoverySeconds += secs
			}
			co.mu.Unlock()
		case mBye:
			co.mu.Lock()
			if m.fc == fc && m.state == stUp {
				m.state = stLeft
				m.fc = nil
				m.dep = nil
				co.checkRoundLocked()
			}
			co.mu.Unlock()
			fc.close()
			return
		default:
			// Unknown frame: tolerate (forward compatibility), but a
			// malformed known frame already failed above.
		}
	}
}

// disconnectLocked reacts to a broken connection: an up member's current
// socket dying is a death; a pending rejoin socket dying just clears the
// pending slot.
func (co *Coordinator) disconnectLocked(m *member, fc *frameConn) {
	fc.close()
	if m.fc == fc && m.state == stUp && !co.closed {
		co.killLocked(m, "connection lost")
	}
	if m.pending == fc {
		m.pending = nil
	}
}

// killLocked declares m dead: appends the death event, meters it, fails
// the assembling round for every outstanding depositor (their deposits
// predate the death — the stale-deposit guard), and closes the socket.
func (co *Coordinator) killLocked(m *member, reason string) {
	if m.state != stUp && m.state != stExpected {
		return
	}
	m.state = stDead
	if m.fc != nil {
		m.fc.close()
		m.fc = nil
	}
	m.dep = nil
	co.events = append(co.events, cluster.MemberEvent{Rank: m.rank})
	co.fstats.Crashes++
	if o := co.cfg.Obs; o != nil {
		o.Counter("net.deaths").Inc()
		o.Instant(m.rank, "membership", "death: "+reason, obs.NoVirtual,
			obs.F("round", float64(co.completedRounds)))
		// Postmortem capture: a detected death dumps the flight ring —
		// the merged recent-event record including everything the victim
		// shipped before dying. Rare path, so the file IO under co.mu is
		// acceptable and keeps the dump ordered before round teardown.
		o.DumpFlight("death")
	}
	// Fail the round for everyone already deposited; late depositors are
	// caught by the seenEvents staleness check.
	for _, o := range co.members {
		if o.dep != nil {
			co.roundFailLocked(o, codeRankDead)
		}
	}
	co.stopRoundTimerLocked()
}

// handleDepositLocked runs the stale-deposit guard and files the
// contribution into the assembling round.
func (co *Coordinator) handleDepositLocked(m *member, dep *deposit) {
	if int(dep.seenEvents) > len(co.events) {
		co.roundFailDepositLocked(m, dep, codeProtocol)
		return
	}
	if int(dep.seenEvents) < len(co.events) {
		// Computed under a stale membership view: the depositor must
		// observe the new events and heal before retrying.
		co.roundFailDepositLocked(m, dep, codeRankDead)
		return
	}
	// Kind/op/root must agree with the round being assembled.
	for _, o := range co.members {
		if o.dep != nil && (o.dep.kind != dep.kind || o.dep.op != dep.op || o.dep.root != dep.root) {
			co.roundFailDepositLocked(m, dep, codeProtocol)
			return
		}
	}
	m.dep = dep
	co.armRoundTimerLocked(dep)
	co.checkRoundLocked()
}

// armRoundTimerLocked (re)arms the round stall backstop with the
// tightest deadline seen among this round's deposits.
func (co *Coordinator) armRoundTimerLocked(dep *deposit) {
	d := co.cfg.StallTimeout
	if dep.deadlineMS > 0 {
		if dd := time.Duration(dep.deadlineMS) * time.Millisecond; dd < d {
			d = dd
		}
	}
	if co.roundTimer == nil {
		co.roundDeadline = d
		co.roundTimer = time.AfterFunc(d, co.expireRound)
	} else if d < co.roundDeadline {
		co.roundDeadline = d
		co.roundTimer.Reset(d)
	}
}

func (co *Coordinator) stopRoundTimerLocked() {
	if co.roundTimer != nil {
		co.roundTimer.Stop()
		co.roundTimer = nil
	}
}

// expireRound fires when an assembling round stalls past its deadline:
// every outstanding depositor gets codeTimeout (no death is declared —
// distinguishing "somebody is slow" from "somebody is gone" is the
// caller's policy decision, typically degradation).
func (co *Coordinator) expireRound() {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.closed || co.roundTimer == nil {
		return
	}
	co.roundTimer = nil
	for _, m := range co.members {
		if m.dep != nil {
			co.roundFailLocked(m, codeTimeout)
		}
	}
}

// expireFoundingMembers fires at the join deadline: founding ranks that
// never connected are declared dead so the connected ones can proceed.
func (co *Coordinator) expireFoundingMembers() {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.closed {
		return
	}
	for _, m := range co.members {
		if m.state == stExpected {
			co.killLocked(m, "never joined")
		}
	}
	co.checkRoundLocked()
}

// roundFailLocked sends one member a round failure and clears its
// deposit (preserving the 1:1 deposit↔response invariant).
func (co *Coordinator) roundFailLocked(m *member, code uint8) {
	dep := m.dep
	m.dep = nil
	if dep == nil || m.fc == nil {
		return
	}
	co.roundFailDepositLocked(m, dep, code)
}

// roundFailDepositLocked responds to a specific deposit with a failure.
func (co *Coordinator) roundFailDepositLocked(m *member, dep *deposit, code uint8) {
	if m.fc == nil {
		return
	}
	var w wire.Writer
	w.U64(dep.seq)
	w.U8(code)
	appendEvents(&w, co.events)
	if err := m.fc.writeFrame(mRoundFail, w.Bytes()); err != nil {
		co.disconnectLocked(m, m.fc)
	}
}

// checkRoundLocked completes the assembling round if every up member has
// deposited and no founding member is still expected.
func (co *Coordinator) checkRoundLocked() {
	var deps []*member
	for _, m := range co.members {
		switch m.state {
		case stExpected:
			return // still waiting for a founder (or the join deadline)
		case stUp:
			if m.dep == nil {
				return
			}
			deps = append(deps, m)
		}
	}
	if len(deps) == 0 {
		return
	}
	co.completeRoundLocked(deps)
}

// completeRoundLocked combines the deposits in rank order, responds to
// every depositor, and admits pending rejoiners — the collective
// boundary where the event log may grow by joins.
func (co *Coordinator) completeRoundLocked(deps []*member) {
	kind := deps[0].dep.kind
	result, perRank, err := combine(kind, deps, co.cfg.Size)
	if err != nil {
		for _, m := range deps {
			co.roundFailLocked(m, codeProtocol)
		}
		co.stopRoundTimerLocked()
		return
	}
	co.completedRounds++
	if kind == kindAllreduce {
		co.lastResult = result
	}
	co.stopRoundTimerLocked()
	// Admit rejoiners BEFORE responding: the roundOK event log then
	// already contains the joins, so every survivor re-divides spans for
	// the next phase with the joiner included. All joins are appended
	// first, then welcomes sent, so each joiner also sees every sibling
	// join of this boundary.
	var admitted []*member
	for _, m := range co.members {
		if m.state == stDead && m.pending != nil {
			co.admitLocked(m)
			admitted = append(admitted, m)
		}
	}
	for _, m := range admitted {
		co.sendWelcomeLocked(m, m.fc)
	}
	for _, m := range deps {
		dep := m.dep
		m.dep = nil
		if m.fc == nil {
			continue
		}
		var w wire.Writer
		w.U64(dep.seq)
		appendEvents(&w, co.events)
		res := result
		if perRank != nil {
			res = perRank(m.rank)
		}
		w.F64s(res)
		if werr := m.fc.writeFrame(mRoundOK, w.Bytes()); werr != nil {
			co.disconnectLocked(m, m.fc)
		}
	}
	if o := co.cfg.Obs; o != nil {
		o.Counter("cluster.collectives").Inc()
	}
}

// combine folds the deposits of one round in rank order. perRank, when
// non-nil, selects each rank's share of the result (Reduce: root only).
func combine(kind uint8, deps []*member, size int) (result []float64, perRank func(rank int) []float64, err error) {
	switch kind {
	case kindBarrier:
		return nil, nil, nil
	case kindAllreduce, kindReduce:
		op := cluster.Op(deps[0].dep.op)
		if op != cluster.Sum && op != cluster.Min && op != cluster.Max {
			return nil, nil, fmt.Errorf("op %d: %w", op, cluster.ErrProtocol)
		}
		var out []float64
		for _, m := range deps {
			if out == nil {
				out = append([]float64(nil), m.dep.data...)
				continue
			}
			if len(m.dep.data) != len(out) {
				return nil, nil, fmt.Errorf("allreduce length mismatch: %w", cluster.ErrProtocol)
			}
			applyOp(op, out, m.dep.data)
		}
		if kind == kindReduce {
			root := int(deps[0].dep.root)
			return out, func(rank int) []float64 {
				if rank == root {
					return out
				}
				return nil
			}, nil
		}
		return out, nil, nil
	case kindBcast:
		root := deps[0].dep.root
		for _, m := range deps {
			if int32(m.rank) == root {
				return m.dep.data, nil, nil
			}
		}
		return nil, nil, fmt.Errorf("bcast root %d absent: %w", root, cluster.ErrProtocol)
	case kindAllgatherv:
		counts := deps[0].dep.counts
		if len(counts) != size {
			return nil, nil, fmt.Errorf("allgatherv counts: %w", cluster.ErrProtocol)
		}
		var out []float64
		present := make(map[int][]float64, len(deps))
		for _, m := range deps {
			if len(m.dep.data) != int(counts[m.rank]) {
				return nil, nil, fmt.Errorf("allgatherv count mismatch at rank %d: %w", m.rank, cluster.ErrProtocol)
			}
			present[m.rank] = m.dep.data
		}
		for r := 0; r < size; r++ {
			if data, ok := present[r]; ok {
				out = append(out, data...)
			} else if counts[r] != 0 {
				return nil, nil, fmt.Errorf("allgatherv rank %d absent with count %d: %w", r, counts[r], cluster.ErrProtocol)
			}
		}
		return out, nil, nil
	}
	return nil, nil, fmt.Errorf("kind %d: %w", kind, cluster.ErrProtocol)
}

func applyOp(op cluster.Op, dst, src []float64) {
	switch op {
	case cluster.Sum:
		for i := range dst {
			dst[i] += src[i]
		}
	case cluster.Min:
		for i := range dst {
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	case cluster.Max:
		for i := range dst {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	}
}

// handleRelayLocked forwards a point-to-point message to its
// destination, answering the sender with mSendOK / mSendErr.
func (co *Coordinator) handleRelayLocked(m *member, seq uint64, dst, tag int, data []float64) {
	if dst < 0 || dst >= co.cfg.Size || dst == m.rank {
		co.sendErrLocked(m, seq, codeProtocol)
		return
	}
	d := co.members[dst]
	if d.state != stUp || d.fc == nil {
		co.sendErrLocked(m, seq, codeRankDead)
		return
	}
	var w wire.Writer
	w.I32(int32(m.rank))
	w.I32(int32(tag))
	w.F64s(data)
	if err := d.fc.writeFrame(mRelayed, w.Bytes()); err != nil {
		co.disconnectLocked(d, d.fc)
		co.sendErrLocked(m, seq, codeRankDead)
		return
	}
	var ok wire.Writer
	ok.U64(seq)
	if err := m.fc.writeFrame(mSendOK, ok.Bytes()); err != nil {
		co.disconnectLocked(m, m.fc)
	}
}

func (co *Coordinator) sendErrLocked(m *member, seq uint64, code uint8) {
	if m.fc == nil {
		return
	}
	var w wire.Writer
	w.U64(seq)
	w.U8(code)
	appendEvents(&w, co.events)
	if err := m.fc.writeFrame(mSendErr, w.Bytes()); err != nil {
		co.disconnectLocked(m, m.fc)
	}
}

// heartbeatLoop pings up members and kills the unresponsive.
func (co *Coordinator) heartbeatLoop() {
	defer co.wg.Done()
	tick := time.NewTicker(co.cfg.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-co.hbStop:
			return
		case <-tick.C:
		}
		co.mu.Lock()
		now := time.Now()
		for _, m := range co.members {
			if m.state != stUp || m.fc == nil {
				continue
			}
			if now.Sub(m.lastPong) > co.cfg.HeartbeatTimeout {
				co.killLocked(m, "heartbeat timeout")
				continue
			}
			m.pingSentUS = co.nowUS()
			m.awaitPong = true
			if err := m.fc.writeFrame(mPing, nil); err != nil {
				co.disconnectLocked(m, m.fc)
			}
		}
		co.mu.Unlock()
	}
}
