package net

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"gbpolar/internal/cluster"
)

// Membership is the cluster bootstrap record the coordinator writes and
// workers read: where to connect and the fixed run shape. It lives in a
// small JSON file so operators (and the chaos tests) can launch workers
// out-of-band of the coordinator process.
type Membership struct {
	// Addr is the coordinator's host:port.
	Addr string `json:"addr"`
	// Size is the number of ranks (P).
	Size int `json:"size"`
	// Threads is the thread count per rank (p).
	Threads int `json:"threads"`
	// Checkpoint is the path of the coordinator's snapshot file — the
	// replicated System every worker loads instead of rebuilding (and
	// the state a restarted coordinator resumes from).
	Checkpoint string `json:"checkpoint,omitempty"`
	// ObsAddr is the coordinator's live observability endpoint
	// (host:port serving /metrics, /healthz, /readyz, /debug/pprof),
	// published here so operators and tests can find it when the
	// coordinator bound an ephemeral port.
	ObsAddr string `json:"obs_addr,omitempty"`
}

// WriteMembership atomically writes the membership file (temp + rename,
// so a worker polling for it never reads a partial record).
func WriteMembership(path string, m Membership) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("net: encode membership: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("net: write membership: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("net: publish membership: %w", err)
	}
	return nil
}

// ReadMembership reads and validates a membership file.
func ReadMembership(path string) (Membership, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Membership{}, fmt.Errorf("net: read membership: %w", err)
	}
	var m Membership
	if err := json.Unmarshal(data, &m); err != nil {
		return Membership{}, fmt.Errorf("net: parse membership %s: %w", path, err)
	}
	if m.Addr == "" || m.Size < 1 {
		return Membership{}, fmt.Errorf("net: membership %s missing addr or size: %w", path, cluster.ErrProtocol)
	}
	return m, nil
}

// WaitMembership polls for the membership file until it appears or the
// budget is spent — workers are typically launched concurrently with the
// coordinator and must ride out the window before it publishes.
func WaitMembership(path string, budget time.Duration) (Membership, error) {
	deadline := time.Now().Add(budget)
	for {
		m, err := ReadMembership(path)
		if err == nil {
			return m, nil
		}
		if time.Now().After(deadline) {
			return Membership{}, fmt.Errorf("net: membership %s never appeared (last: %v): %w",
				path, err, cluster.ErrTimeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
