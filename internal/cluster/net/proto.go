// Package net is the real multi-process cluster transport: ranks are OS
// processes exchanging length-prefixed binary frames over TCP through a
// coordinator (a star, matching the rendezvous semantics of the modeled
// in-process transport). Deaths are real — a closed socket, a heartbeat
// timeout, a join deadline — and membership is elastic: a crashed worker
// can be respawned and is re-admitted at the next successful collective.
// Every error a worker-side call returns wraps the same typed sentinels
// as the in-process transport (cluster.ErrRankDead, ErrTimeout,
// ErrAborted, ErrProtocol), so the self-healing rank bodies in
// internal/core run unchanged over goroutines and over sockets.
package net

import (
	"encoding/binary"
	"fmt"
	"io"
	gonet "net"
	"sync"
	"time"

	"gbpolar/internal/cluster"
	"gbpolar/internal/wire"
)

// protoVersion is bumped on any incompatible frame-layout change; both
// ends reject mismatches with cluster.ErrProtocol.
const protoVersion = 1

// maxFrameBytes bounds a frame body (64 MiB — a 5k-atom snapshot's
// reduction vectors are well under 1 MiB). readFrame rejects larger
// length prefixes before allocating, so a garbage prefix cannot force a
// huge allocation.
const maxFrameBytes = 64 << 20

// Frame types.
const (
	mHello   uint8 = iota + 1 // worker → coord: rank announces itself
	mWelcome                  // coord → worker: admission (size, events, seed)
	mDeposit                  // worker → coord: collective contribution
	mRoundOK                  // coord → worker: collective completed
	mRoundFail                // coord → worker: collective failed (code)
	mPing                     // coord → worker: heartbeat probe
	mPong                     // worker → coord: heartbeat reply
	mRelay                    // worker → coord: p2p send for forwarding
	mSendOK                   // coord → worker: relay forwarded
	mSendErr                  // coord → worker: relay refused (code)
	mRelayed                  // coord → worker: forwarded p2p message
	mStats                    // worker → coord: recovery metering
	mBye                      // worker → coord: graceful leave
	mTelemetry                // worker → coord: encoded obs.Telemetry batch (fire-and-forget)
)

// Failure codes carried by mRoundFail/mSendErr, mapped back to the
// cluster sentinels on the worker side.
const (
	codeRankDead uint8 = iota + 1
	codeTimeout
	codeAborted
	codeProtocol
)

// codeToError converts a wire failure code into the typed sentinel error
// the in-process transport would have returned, so errors.Is behaves
// identically across both transports. events is the post-failure
// membership log (used to populate RankDeadError's ordered dead list).
func codeToError(code uint8, size int, events []cluster.MemberEvent) error {
	switch code {
	case codeRankDead:
		return &cluster.RankDeadError{Dead: cluster.DeadFromEvents(size, events)}
	case codeTimeout:
		return cluster.ErrTimeout
	case codeAborted:
		return cluster.ErrAborted
	default:
		return cluster.ErrProtocol
	}
}

// Collective kinds inside a deposit.
const (
	kindBarrier uint8 = iota + 1
	kindAllreduce
	kindReduce
	kindBcast
	kindAllgatherv
)

// deposit is one rank's contribution to a collective round.
type deposit struct {
	seq  uint64
	kind uint8
	op   uint8
	root int32
	// seenEvents is the length of the membership log the depositor
	// computed under — the wire form of the in-process stale-deposit
	// guard: a deposit made before the newest event must be discarded.
	seenEvents uint32
	// deadlineMS is the depositor's stall budget for this round in
	// milliseconds (0 = none); the coordinator fails the round with
	// codeTimeout when the tightest budget expires.
	deadlineMS uint32
	counts     []int32
	data       []float64
}

func (d *deposit) append(w *wire.Writer) {
	w.U64(d.seq)
	w.U8(d.kind)
	w.U8(d.op)
	w.I32(d.root)
	w.U32(d.seenEvents)
	w.U32(d.deadlineMS)
	w.I32s(d.counts)
	w.F64s(d.data)
}

func decodeDeposit(r *wire.Reader) (*deposit, error) {
	d := &deposit{
		seq:        r.U64(),
		kind:       r.U8(),
		op:         r.U8(),
		root:       r.I32(),
		seenEvents: r.U32(),
		deadlineMS: r.U32(),
		counts:     r.I32s(),
		data:       r.F64s(),
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if d.kind < kindBarrier || d.kind > kindAllgatherv {
		return nil, fmt.Errorf("deposit kind %d: %w", d.kind, cluster.ErrProtocol)
	}
	return d, nil
}

// appendEvents / decodeEvents carry the membership log. Every coordinator
// response includes the full log: it is small (one entry per death or
// rejoin) and makes each response self-contained, so a worker can never
// hold a log the coordinator did not send it.
func appendEvents(w *wire.Writer, events []cluster.MemberEvent) {
	w.U32(uint32(len(events)))
	for _, ev := range events {
		w.I32(int32(ev.Rank))
		w.Bool(ev.Join)
	}
}

func decodeEvents(r *wire.Reader) []cluster.MemberEvent {
	n := int(r.U32())
	if n < 0 || n > r.Remaining()/5 {
		return nil
	}
	out := make([]cluster.MemberEvent, n)
	for i := range out {
		out[i] = cluster.MemberEvent{Rank: int(r.I32()), Join: r.Bool()}
	}
	return out
}

// frameConn wraps a TCP connection with framed, mutex-serialized writes
// (the coordinator's heartbeat, relay and round goroutines share one
// socket per peer) and framed reads (single reader per connection).
type frameConn struct {
	conn gonet.Conn
	wmu  sync.Mutex
	rbuf [6]byte
}

func newFrameConn(conn gonet.Conn) *frameConn {
	if tc, ok := conn.(*gonet.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &frameConn{conn: conn}
}

// writeTimeout bounds any single frame write: a peer that stopped
// draining its socket must surface as a connection error, not wedge the
// writer (the coordinator writes while holding its state mutex).
const writeTimeout = time.Minute

// writeFrame sends one frame: u32 big-endian body length (including the
// version and type bytes), protocol version, frame type, body.
func (fc *frameConn) writeFrame(typ uint8, body []byte) error {
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	fc.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	var hdr [6]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)+2))
	hdr[4] = protoVersion
	hdr[5] = typ
	if _, err := fc.conn.Write(hdr[:]); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := fc.conn.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame, validating version and size bounds.
func (fc *frameConn) readFrame() (typ uint8, body []byte, err error) {
	if _, err := io.ReadFull(fc.conn, fc.rbuf[:4]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(fc.rbuf[:4])
	if n < 2 || n > maxFrameBytes {
		return 0, nil, fmt.Errorf("frame length %d: %w", n, cluster.ErrProtocol)
	}
	if _, err := io.ReadFull(fc.conn, fc.rbuf[4:6]); err != nil {
		return 0, nil, err
	}
	if fc.rbuf[4] != protoVersion {
		return 0, nil, fmt.Errorf("frame version %d, want %d: %w", fc.rbuf[4], protoVersion, cluster.ErrProtocol)
	}
	typ = fc.rbuf[5]
	body = make([]byte, n-2)
	if _, err := io.ReadFull(fc.conn, body); err != nil {
		return 0, nil, err
	}
	return typ, body, nil
}

func (fc *frameConn) close() error { return fc.conn.Close() }

// backoff returns the exponential reconnect delay for attempt i with
// deterministic per-rank jitter, capped at 2 s: rejoining workers must
// not thundering-herd a restarting coordinator.
func backoff(attempt, rank int) time.Duration {
	d := 25 * time.Millisecond << uint(attempt)
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	// Deterministic jitter: spread ranks by golden-ratio hashing so
	// simultaneous rejoiners do not sync up (no global RNG — workers are
	// separate processes).
	j := time.Duration((uint64(rank+1)*0x9E3779B97F4A7C15)>>52) * time.Millisecond / 4
	return d + j
}
