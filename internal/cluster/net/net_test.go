package net

import (
	"errors"
	"fmt"
	gonet "net"
	"sync"
	"testing"
	"time"

	"gbpolar/internal/cluster"
	"gbpolar/internal/wire"
)

func testCoordinator(t *testing.T, size int, mut func(*Config)) *Coordinator {
	t.Helper()
	cfg := Config{
		Size:              size,
		Threads:           1,
		OpsPerSecond:      1e9,
		StallTimeout:      20 * time.Second,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  10 * time.Second,
		JoinDeadline:      20 * time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	co, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	return co
}

// runRanks hosts size worker goroutines over real loopback sockets, each
// running body, and returns their errors by rank.
func runRanks(t *testing.T, co *Coordinator, size int, opts func(rank int) Options, body func(c *Comm) error) []error {
	t.Helper()
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			o := Options{StallTimeout: 20 * time.Second}
			if opts != nil {
				o = opts(r)
			}
			c, err := Dial(co.Addr(), r, o)
			if err != nil {
				errs[r] = err
				return
			}
			errs[r] = body(c)
			if errs[r] == nil {
				c.Bye()
			} else {
				c.Close()
			}
		}(r)
	}
	wg.Wait()
	return errs
}

func expectSlice(what string, got, want []float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: got %v, want %v", what, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%s: got %v, want %v", what, got, want)
		}
	}
	return nil
}

// Every collective and the p2p relay produce the same results over
// sockets as the in-process transport's definitions.
func TestNetCollectivesParity(t *testing.T) {
	const P = 4
	co := testCoordinator(t, P, nil)
	errs := runRanks(t, co, P, nil, func(c *Comm) error {
		r := float64(c.Rank())
		sum, err := c.Allreduce([]float64{r + 1, 2 * r}, cluster.Sum)
		if err != nil {
			return err
		}
		if err := expectSlice("allreduce sum", sum, []float64{10, 12}); err != nil {
			return err
		}
		mn, err := c.Allreduce([]float64{r}, cluster.Min)
		if err != nil {
			return err
		}
		if err := expectSlice("allreduce min", mn, []float64{0}); err != nil {
			return err
		}
		mx, err := c.Allreduce([]float64{r}, cluster.Max)
		if err != nil {
			return err
		}
		if err := expectSlice("allreduce max", mx, []float64{3}); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		var bcData []float64
		if c.Rank() == 1 {
			bcData = []float64{42, 43}
		}
		bc, err := c.Bcast(1, bcData)
		if err != nil {
			return err
		}
		if err := expectSlice("bcast", bc, []float64{42, 43}); err != nil {
			return err
		}
		rd, err := c.Reduce(2, []float64{r + 1}, cluster.Sum)
		if err != nil {
			return err
		}
		if c.Rank() == 2 {
			if err := expectSlice("reduce root", rd, []float64{10}); err != nil {
				return err
			}
		} else if len(rd) != 0 {
			return fmt.Errorf("reduce non-root got %v", rd)
		}
		counts := []int{1, 2, 3, 4}
		contrib := make([]float64, c.Rank()+1)
		for i := range contrib {
			contrib[i] = r
		}
		all, err := c.Allgatherv(contrib, counts)
		if err != nil {
			return err
		}
		if err := expectSlice("allgatherv", all, []float64{0, 1, 1, 2, 2, 2, 3, 3, 3, 3}); err != nil {
			return err
		}
		// p2p ring through the relay.
		if err := c.Send((c.Rank()+1)%P, 7, []float64{r}); err != nil {
			return err
		}
		data, src, err := c.Recv((c.Rank()+P-1)%P, 7)
		if err != nil {
			return err
		}
		if src != (c.Rank()+P-1)%P {
			return fmt.Errorf("recv src %d", src)
		}
		if err := expectSlice("recv", data, []float64{float64(src)}); err != nil {
			return err
		}
		if len(c.MemberEvents()) != 0 {
			return fmt.Errorf("unexpected events %v", c.MemberEvents())
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	fr := co.FaultReport()
	if fr.Crashes != 0 || fr.Rejoins != 0 {
		t.Fatalf("clean run metered faults: %+v", fr)
	}
}

// A worker whose socket dies mid-collective is declared dead; survivors
// get ErrRankDead with the consensus dead list and heal by retrying.
func TestNetDeathDetectionAndHeal(t *testing.T) {
	const P = 3
	co := testCoordinator(t, P, nil)
	opts := func(rank int) Options {
		o := Options{StallTimeout: 20 * time.Second}
		if rank == 2 {
			o.CloseAtCollective = 2 // crash entering the second collective
		}
		return o
	}
	errs := runRanks(t, co, P, opts, func(c *Comm) error {
		r := float64(c.Rank())
		sum, err := c.Allreduce([]float64{r + 1}, cluster.Sum)
		if err != nil {
			return err
		}
		if err := expectSlice("round 1", sum, []float64{6}); err != nil {
			return err
		}
		sum, err = c.Allreduce([]float64{r + 1}, cluster.Sum)
		if errors.Is(err, cluster.ErrRankDead) {
			// Heal: the retry after observing the death must succeed.
			rd, ok := cluster.AsRankDead(err)
			if !ok || len(rd.Dead) != 1 || rd.Dead[0] != 2 {
				return fmt.Errorf("dead list %v", err)
			}
			sum, err = c.Allreduce([]float64{r + 1}, cluster.Sum)
		}
		if err != nil {
			return err
		}
		return expectSlice("healed round", sum, []float64{3})
	})
	for r, err := range errs[:2] {
		if err != nil {
			t.Fatalf("survivor rank %d: %v", r, err)
		}
	}
	if errs[2] == nil {
		t.Fatal("crashed rank reported success")
	}
	fr := co.FaultReport()
	if fr.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", fr.Crashes)
	}
	evs := co.Events()
	if len(evs) != 1 || evs[0].Rank != 2 || evs[0].Join {
		t.Fatalf("events = %v", evs)
	}
}

// A crashed worker that redials is queued and admitted exactly at the
// survivors' next successful collective: its welcome carries the
// completed-round count and the last reduction as seed, and the join
// event lands in every participant's log.
func TestNetRejoin(t *testing.T) {
	const P = 2
	co := testCoordinator(t, P, nil)
	done := make(chan error, 2)

	// Rank 1: crashes entering collective 2, then redials.
	go func() {
		c, err := Dial(co.Addr(), 1, Options{StallTimeout: 20 * time.Second, CloseAtCollective: 2})
		if err != nil {
			done <- err
			return
		}
		if _, err := c.Allreduce([]float64{2}, cluster.Sum); err != nil {
			done <- err
			return
		}
		c.Allreduce([]float64{2}, cluster.Sum) // dies here
		// Respawn: rejoin blocks until rank 0 completes its healed retry.
		c2, err := Dial(co.Addr(), 1, Options{StallTimeout: 20 * time.Second, DialTimeout: 20 * time.Second})
		if err != nil {
			done <- err
			return
		}
		if c2.CompletedRounds() != 2 {
			done <- fmt.Errorf("rejoin at round %d, want 2", c2.CompletedRounds())
			return
		}
		if err := expectSlice("join seed", c2.JoinSeed(), []float64{1}); err != nil {
			done <- err
			return
		}
		_, err = c2.Allreduce([]float64{20}, cluster.Sum)
		if err == nil {
			c2.Bye()
		}
		done <- err
	}()

	// Rank 0: observes the death, waits for the rejoin attempt to queue,
	// heals, then runs one more collective with the rejoined rank.
	go func() {
		c, err := Dial(co.Addr(), 0, Options{StallTimeout: 20 * time.Second})
		if err != nil {
			done <- err
			return
		}
		if _, err := c.Allreduce([]float64{1}, cluster.Sum); err != nil {
			done <- err
			return
		}
		_, err = c.Allreduce([]float64{1}, cluster.Sum)
		if !errors.Is(err, cluster.ErrRankDead) {
			done <- fmt.Errorf("expected rank-dead, got %v", err)
			return
		}
		// Hold the healed retry until the rejoiner is pending, so the
		// admission boundary is deterministic.
		deadline := time.Now().Add(10 * time.Second)
		for co.PendingJoins() == 0 {
			if time.Now().After(deadline) {
				done <- fmt.Errorf("rejoiner never queued")
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		res, err := c.Allreduce([]float64{1}, cluster.Sum) // healed: alone
		if err != nil {
			done <- err
			return
		}
		if err := expectSlice("healed", res, []float64{1}); err != nil {
			done <- err
			return
		}
		evs := c.MemberEvents()
		if len(evs) != 2 || evs[0].Rank != 1 || evs[0].Join || evs[1].Rank != 1 || !evs[1].Join {
			done <- fmt.Errorf("events after admission: %v", evs)
			return
		}
		res, err = c.Allreduce([]float64{10}, cluster.Sum) // with the joiner
		if err != nil {
			done <- err
			return
		}
		if err := expectSlice("post-rejoin", res, []float64{30}); err != nil {
			done <- err
			return
		}
		c.Bye()
		done <- nil
	}()

	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	fr := co.FaultReport()
	if fr.Crashes != 1 || fr.Rejoins != 1 {
		t.Fatalf("fault report: %+v", fr)
	}
}

// The coordinator's round stall backstop fires without declaring a
// death: a straggler is a timeout (the caller's degradation decision),
// not a crash.
func TestNetStallTimeout(t *testing.T) {
	const P = 2
	co := testCoordinator(t, P, nil)
	release := make(chan struct{})
	errs := runRanks(t, co, P,
		func(rank int) Options {
			o := Options{StallTimeout: 20 * time.Second}
			if rank == 1 {
				o.StallTimeout = 300 * time.Millisecond
			}
			return o
		},
		func(c *Comm) error {
			if c.Rank() == 0 {
				<-release // never deposits while rank 1 waits
				return nil
			}
			_, err := c.Allreduce([]float64{1}, cluster.Sum)
			close(release)
			if !errors.Is(err, cluster.ErrTimeout) {
				return fmt.Errorf("want ErrTimeout, got %v", err)
			}
			return nil
		})
	if errs[1] != nil {
		t.Fatalf("rank 1: %v", errs[1])
	}
	if got := co.FaultReport().Crashes; got != 0 {
		t.Fatalf("timeout was metered as %d crashes", got)
	}
}

// Founding members that never connect are declared dead at the join
// deadline so the connected ranks can proceed (or degrade).
func TestNetJoinDeadline(t *testing.T) {
	co := testCoordinator(t, 2, func(cfg *Config) {
		cfg.JoinDeadline = 250 * time.Millisecond
	})
	c, err := Dial(co.Addr(), 0, Options{StallTimeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Allreduce([]float64{1}, cluster.Sum)
	if !errors.Is(err, cluster.ErrRankDead) {
		t.Fatalf("want ErrRankDead for the no-show founder, got %v", err)
	}
	res, err := c.Allreduce([]float64{1}, cluster.Sum)
	if err != nil || len(res) != 1 || res[0] != 1 {
		t.Fatalf("healed collective: %v %v", res, err)
	}
	c.Bye()
	evs := co.Events()
	if len(evs) != 1 || evs[0].Rank != 1 || evs[0].Join {
		t.Fatalf("events = %v", evs)
	}
}

// A connected worker that stops answering heartbeats (hung process, not
// a closed socket) is killed by the heartbeat timeout.
func TestNetHeartbeatDeath(t *testing.T) {
	co := testCoordinator(t, 2, func(cfg *Config) {
		cfg.HeartbeatInterval = 25 * time.Millisecond
		cfg.HeartbeatTimeout = 250 * time.Millisecond
	})
	// Rank 1 is a raw connection that completes the handshake and then
	// goes silent — connected but never ponging.
	conn, err := gonet.Dial("tcp", co.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fc := newFrameConn(conn)
	var hello wire.Writer
	hello.I32(1)
	if err := fc.writeFrame(mHello, hello.Bytes()); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := fc.readFrame(); err != nil || typ != mWelcome {
		t.Fatalf("handshake: %d %v", typ, err)
	}

	c, err := Dial(co.Addr(), 0, Options{StallTimeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Allreduce([]float64{1}, cluster.Sum)
	if !errors.Is(err, cluster.ErrRankDead) {
		t.Fatalf("want ErrRankDead from the hung peer, got %v", err)
	}
	if _, err := c.Allreduce([]float64{1}, cluster.Sum); err != nil {
		t.Fatalf("healed collective: %v", err)
	}
	c.Bye()
}

// The typed sentinels behave identically through the in-process and the
// TCP transports: one table, both implementations.
func TestSentinelParityAcrossTransports(t *testing.T) {
	cases := []struct {
		name string
		body func(c cluster.Transport) error
		want error
	}{
		{"self send", func(c cluster.Transport) error {
			return c.Send(c.Rank(), 0, []float64{1})
		}, cluster.ErrSelfSend},
		{"send invalid rank", func(c cluster.Transport) error {
			return c.Send(c.Size(), 0, []float64{1})
		}, cluster.ErrInvalidRank},
		{"reduce invalid root", func(c cluster.Transport) error {
			_, err := c.Reduce(-1, []float64{1}, cluster.Sum)
			return err
		}, cluster.ErrInvalidRank},
		{"bcast invalid root", func(c cluster.Transport) error {
			_, err := c.Bcast(c.Size(), []float64{1})
			return err
		}, cluster.ErrInvalidRank},
		{"allgatherv bad counts length", func(c cluster.Transport) error {
			_, err := c.Allgatherv([]float64{1}, make([]int, c.Size()+2))
			return err
		}, cluster.ErrProtocol},
		{"allgatherv contrib mismatch", func(c cluster.Transport) error {
			counts := make([]int, c.Size())
			counts[c.Rank()] = 3
			_, err := c.Allgatherv([]float64{1}, counts)
			return err
		}, cluster.ErrProtocol},
	}
	check := func(t *testing.T, transport string, got, want error) {
		if !errors.Is(got, want) {
			t.Errorf("%s transport: got %v, want %v", transport, got, want)
		}
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// In-process modeled transport, single rank (all cases are
			// client-side validations, no communication needed).
			_, err := cluster.Run(cluster.Config{Procs: 1, ThreadsPerProc: 1}, func(c *cluster.Comm) error {
				check(t, "in-process", tc.body(c), tc.want)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			// TCP transport.
			co := testCoordinator(t, 1, nil)
			errs := runRanks(t, co, 1, nil, func(c *Comm) error {
				check(t, "tcp", tc.body(c), tc.want)
				return nil
			})
			if errs[0] != nil {
				t.Fatal(errs[0])
			}
		})
	}
}

// The membership file round-trips and is published atomically.
func TestMembershipFile(t *testing.T) {
	path := t.TempDir() + "/cluster.json"
	want := Membership{Addr: "127.0.0.1:9999", Size: 4, Threads: 2}
	if err := WriteMembership(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMembership(path)
	if err != nil || got != want {
		t.Fatalf("round trip: %+v %v", got, err)
	}
	if _, err := ReadMembership(path + ".missing"); err == nil {
		t.Fatal("read of missing file succeeded")
	}
	got, err = WaitMembership(path, time.Second)
	if err != nil || got != want {
		t.Fatalf("wait: %+v %v", got, err)
	}
}
