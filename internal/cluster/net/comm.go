package net

import (
	"fmt"
	gonet "net"
	"os"
	"sync"
	"syscall"
	"time"

	"gbpolar/internal/cluster"
	"gbpolar/internal/obs"
	"gbpolar/internal/wire"
)

// Options configures a worker-side connection.
type Options struct {
	// StallTimeout is the worker's per-collective stall budget; it is
	// shipped inside each deposit (the coordinator fails the round with
	// codeTimeout when the tightest budget expires) and backstopped by a
	// slightly looser local timer. 0 defaults to 2 minutes.
	StallTimeout time.Duration
	// DialTimeout bounds the whole connect-with-backoff loop (a rejoining
	// worker keeps retrying with exponential backoff until admitted or
	// this budget is spent). 0 defaults to 15s.
	DialTimeout time.Duration
	// Obs, when non-nil, receives this worker's counters and gauges.
	Obs *obs.Obs
	// ShipTelemetry streams this worker's observability state (trace
	// events plus metric deltas) to the coordinator as mTelemetry frames,
	// flushed at every collective boundary, on Bye, and on a periodic
	// ticker — so a SIGKILLed process has already shipped everything up
	// to its last completed collective. Requires Obs.
	ShipTelemetry bool
	// TelemetryInterval is the periodic flush period (0 = 1s).
	TelemetryInterval time.Duration

	// KillAtCollective is a chaos hook: when > 0, the process SIGKILLs
	// itself on entry to the Nth collective call (1-based) — a real,
	// unclean death for acceptance tests. Ignored in normal operation.
	KillAtCollective int
	// CloseAtCollective is the in-process variant for transport tests:
	// when > 0, the connection is abruptly closed on entry to the Nth
	// collective call, so a goroutine-hosted worker can simulate a crash
	// without taking the test process down.
	CloseAtCollective int
}

func (o Options) withDefaults() Options {
	if o.StallTimeout <= 0 {
		o.StallTimeout = 2 * time.Minute
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 15 * time.Second
	}
	return o
}

// Comm is the worker half of the TCP transport: it implements
// cluster.Transport so the rank bodies in internal/core run over sockets
// unchanged. A Comm is used by a single goroutine (the rank body), like
// every SPMD rank; only the background reader goroutine runs alongside.
type Comm struct {
	rank         int
	size         int
	threads      int
	opsPerSecond float64
	opts         Options
	fc           *frameConn
	start        time.Time
	// ship is the telemetry drainer (nil unless Options.ShipTelemetry).
	ship *obs.Shipper

	// Rejoin state from the welcome frame: how many collectives the run
	// had completed when this worker was admitted, and the last
	// Allreduce result (the seed a mid-protocol joiner resumes from).
	completedRounds int
	joinSeed        []float64

	mu          sync.Mutex
	events      []cluster.MemberEvent
	seq         uint64
	broken      error // sticky: set once the connection is unusable
	collectives int   // entries so far, for the chaos hooks

	roundCh    chan frame
	sendCh     chan frame
	inbox      chan relayed
	pending    []relayed // inbox messages not yet matched by Recv
	readerDone chan struct{}
}

var _ cluster.Transport = (*Comm)(nil)

type frame struct {
	typ  uint8
	body []byte
}

type relayed struct {
	src  int
	tag  int
	data []float64
}

// Dial connects rank to the coordinator at addr, retrying with
// exponential backoff and per-rank jitter until admitted or the dial
// budget is spent. For a founding member admission is immediate; for a
// rejoining worker it blocks until the survivors complete a collective
// (the admission boundary), so a successful Dial means the membership
// log already contains this rank's join event.
func Dial(addr string, rank int, opts Options) (*Comm, error) {
	opts = opts.withDefaults()
	deadline := time.Now().Add(opts.DialTimeout)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("net: rank %d: dial %s: budget spent (last: %v): %w",
				rank, addr, lastErr, cluster.ErrTimeout)
		}
		c, err := dialOnce(addr, rank, opts, deadline)
		if err == nil {
			return c, nil
		}
		lastErr = err
		time.Sleep(backoff(attempt, rank))
	}
}

func dialOnce(addr string, rank int, opts Options, deadline time.Time) (*Comm, error) {
	conn, err := gonet.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	fc := newFrameConn(conn)
	var hello wire.Writer
	hello.I32(int32(rank))
	if err := fc.writeFrame(mHello, hello.Bytes()); err != nil {
		fc.close()
		return nil, err
	}
	// Wait for the welcome. A rejoiner can wait a while (until the
	// survivors' next successful collective), so the read deadline is the
	// caller's whole dial budget, not a per-attempt constant.
	conn.SetReadDeadline(deadline)
	var typ uint8
	var body []byte
	for {
		typ, body, err = fc.readFrame()
		if err != nil {
			fc.close()
			return nil, err
		}
		if typ == mPing {
			if err := fc.writeFrame(mPong, pongBody(opts.Obs)); err != nil {
				fc.close()
				return nil, err
			}
			continue
		}
		break
	}
	conn.SetReadDeadline(time.Time{})
	if typ != mWelcome {
		fc.close()
		return nil, fmt.Errorf("net: rank %d: frame %d before welcome: %w", rank, typ, cluster.ErrProtocol)
	}
	r := wire.NewReader(body)
	size := int(r.I32())
	threads := int(r.I32())
	ops := r.F64()
	rounds := int(r.U32())
	events := decodeEvents(r)
	seed := r.F64s()
	if r.Err() != nil || size < 1 || rank >= size {
		fc.close()
		return nil, fmt.Errorf("net: rank %d: malformed welcome: %w", rank, cluster.ErrProtocol)
	}
	c := &Comm{
		rank:            rank,
		size:            size,
		threads:         threads,
		opsPerSecond:    ops,
		opts:            opts,
		fc:              fc,
		start:           time.Now(),
		completedRounds: rounds,
		joinSeed:        seed,
		events:          events,
		roundCh:         make(chan frame, 1),
		sendCh:          make(chan frame, 1),
		inbox:           make(chan relayed, 1024),
		readerDone:      make(chan struct{}),
	}
	if opts.ShipTelemetry && opts.Obs != nil {
		c.ship = opts.Obs.NewShipper()
	}
	go c.readLoop()
	if c.ship != nil {
		go c.telemetryLoop()
	}
	return c, nil
}

// pongBody carries the worker's trace clock (µs since its trace origin)
// so the coordinator can estimate the cross-process clock offset from
// the heartbeat RTT midpoint; empty — and ignored by the coordinator —
// when the worker runs without a trace.
func pongBody(o *obs.Obs) []byte {
	if o == nil || o.Trace == nil {
		return nil
	}
	var w wire.Writer
	w.F64(o.Trace.NowUS())
	return w.Bytes()
}

// telemetryLoop is the periodic telemetry flush: collective boundaries
// and Bye flush synchronously; the ticker covers a rank killed (or hung)
// mid-phase, bounding how much observability a hard death can lose.
func (c *Comm) telemetryLoop() {
	iv := c.opts.TelemetryInterval
	if iv <= 0 {
		iv = time.Second
	}
	tick := time.NewTicker(iv)
	defer tick.Stop()
	for {
		select {
		case <-c.readerDone:
			return
		case <-tick.C:
			c.flushTelemetry()
		}
	}
}

// flushTelemetry ships everything recorded since the previous flush.
// Best effort: a write error is already surfacing through the broken
// connection, and a frame lost with a dying socket only loses telemetry,
// never correctness.
func (c *Comm) flushTelemetry() {
	if c.ship == nil {
		return
	}
	payload := c.ship.Collect()
	if len(payload) == 0 {
		return
	}
	if o := c.opts.Obs; o != nil {
		// Named distinctly from the coordinator's net.telemetry.frames:
		// this very counter ships in the next batch and folds into the
		// coordinator's registry, so sender and receiver tallies must not
		// share a name.
		o.Counter("net.telemetry.flushes").Inc()
		o.Histogram("net.frame.telemetry_bytes").Observe(int64(len(payload)))
	}
	c.fc.writeFrame(mTelemetry, payload)
}

// CompletedRounds reports how many collectives the run had completed at
// admission: 0 for a founding member, >0 for a mid-protocol rejoiner
// (the rank body resumes at phase CompletedRounds+1).
func (c *Comm) CompletedRounds() int { return c.completedRounds }

// JoinSeed returns the last completed Allreduce result at admission —
// the state a mid-protocol rejoiner resumes from (nil for founders).
func (c *Comm) JoinSeed() []float64 { return c.joinSeed }

// readLoop is the connection's single reader: it answers heartbeats,
// routes round and send responses to their waiters, and queues relayed
// point-to-point messages. Any read error makes the Comm sticky-broken.
func (c *Comm) readLoop() {
	for {
		typ, body, err := c.fc.readFrame()
		if err != nil {
			c.markBroken(fmt.Errorf("net: rank %d: connection lost: %w", c.rank, cluster.ErrAborted))
			close(c.readerDone)
			return
		}
		switch typ {
		case mPing:
			if err := c.fc.writeFrame(mPong, pongBody(c.opts.Obs)); err != nil {
				c.markBroken(fmt.Errorf("net: rank %d: pong: %w", c.rank, cluster.ErrAborted))
				close(c.readerDone)
				return
			}
		case mRoundOK, mRoundFail:
			c.roundCh <- frame{typ, body}
		case mSendOK, mSendErr:
			c.sendCh <- frame{typ, body}
		case mRelayed:
			r := wire.NewReader(body)
			msg := relayed{src: int(r.I32()), tag: int(r.I32()), data: r.F64s()}
			if r.Err() == nil {
				c.inbox <- msg
			}
		default:
			// Tolerate unknown frame types for forward compatibility.
		}
	}
}

func (c *Comm) markBroken(err error) {
	c.mu.Lock()
	if c.broken == nil {
		c.broken = err
	}
	c.mu.Unlock()
}

func (c *Comm) brokenErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// Bye leaves gracefully: flushes any remaining telemetry, tells the
// coordinator this rank finished its body (so its absence from later
// rounds is not a death) and closes. Frames are delivered in order, so
// the final telemetry batch is absorbed before the mBye is processed.
func (c *Comm) Bye() {
	c.flushTelemetry()
	c.fc.writeFrame(mBye, nil)
	c.fc.close()
}

// Close drops the connection without a goodbye; the coordinator will
// observe it as a death if the run is still in progress.
func (c *Comm) Close() { c.fc.close() }

// ---- Transport identity and accounting ----

func (c *Comm) Rank() int    { return c.rank }
func (c *Comm) Size() int    { return c.size }
func (c *Comm) Threads() int { return c.threads }

// Clock returns obs.NoVirtual: the real transport has no virtual clock —
// time passes by itself — so spans opened with it are wall-only, and the
// merged cross-process timeline aligns every rank on the coordinator's
// wall axis via the heartbeat offset estimates instead of per-process
// since-admission pseudo-clocks.
func (c *Comm) Clock() float64 { return obs.NoVirtual }

func (c *Comm) OpsPerSecond() float64 { return c.opsPerSecond }
func (c *Comm) Obs() *obs.Obs         { return c.opts.Obs }

// ChargeCompute/ChargeOps are accounting no-ops on the real transport —
// time passes by itself — but feed the worker's observer when present.
func (c *Comm) ChargeCompute(seconds float64) {}
func (c *Comm) ChargeOps(ops float64) {
	if o := c.opts.Obs; o != nil {
		o.Counter("net.kernel_ops").Add(int64(ops))
	}
}

func (c *Comm) TrackMemory(bytes int64) {
	if o := c.opts.Obs; o != nil {
		o.Gauge("net.rank_bytes").Set(float64(bytes))
	}
}

// NoteRecovery meters recovery work locally and forwards it to the
// coordinator's aggregated FaultReport (best effort — a lost stats frame
// only under-reports metering, never correctness).
func (c *Comm) NoteRecovery(rows int, seconds float64) {
	if o := c.opts.Obs; o != nil {
		o.Counter("cluster.recovered_rows").Add(int64(rows))
	}
	var w wire.Writer
	w.I64(int64(rows))
	w.F64(seconds)
	c.fc.writeFrame(mStats, w.Bytes())
}

// ---- Membership ----

func (c *Comm) MemberEvents() []cluster.MemberEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]cluster.MemberEvent(nil), c.events...)
}

func (c *Comm) DeadRanks() []int {
	return cluster.DeadFromEvents(c.size, c.MemberEvents())
}

// adoptEvents replaces the local membership view with the coordinator's
// authoritative log carried on a response.
func (c *Comm) adoptEvents(events []cluster.MemberEvent) {
	c.mu.Lock()
	c.events = events
	c.mu.Unlock()
}

// ---- Collectives ----

// hookCollective runs the chaos hooks on collective entry.
func (c *Comm) hookCollective() {
	c.mu.Lock()
	c.collectives++
	n := c.collectives
	c.mu.Unlock()
	if c.opts.KillAtCollective > 0 && n == c.opts.KillAtCollective {
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // unreachable; SIGKILL cannot be caught
	}
	if c.opts.CloseAtCollective > 0 && n == c.opts.CloseAtCollective {
		c.fc.close()
	}
}

// kindName maps a wire collective kind onto the span names the modeled
// transport's rendezvous emits, so merged analytics attribute both
// transports' collectives identically.
func kindName(kind uint8) string {
	switch kind {
	case kindBarrier:
		return "barrier"
	case kindAllreduce:
		return "allreduce"
	case kindReduce:
		return "reduce"
	case kindBcast:
		return "bcast"
	case kindAllgatherv:
		return "allgatherv"
	}
	return "collective"
}

// collective runs one deposit/response exchange. On success it adopts
// the response's event log (which may have grown by joins admitted at
// this boundary) and returns the combined result; on failure it adopts
// the log (grown by deaths) and returns the mapped sentinel. Each
// exchange emits a collective span (bytes, wait-vs-transfer split) and,
// because the round boundary is where every rank's state is consistent,
// triggers a telemetry flush on the way out.
func (c *Comm) collective(kind, op uint8, root int32, counts []int32, data []float64) (res []float64, err error) {
	c.hookCollective()
	if berr := c.brokenErr(); berr != nil {
		return nil, berr
	}
	o := c.opts.Obs
	sp := o.Begin(c.rank, "collective", kindName(kind), obs.NoVirtual)
	var nbytes, waitUS, xferUS float64
	defer func() {
		args := []obs.KV{obs.F("bytes", nbytes),
			obs.F("wait_us", waitUS), obs.F("xfer_us", xferUS)}
		if err != nil {
			args = append(args, obs.F("error", 1))
		}
		sp.End(obs.NoVirtual, args...)
		// Boundary flush: everything up to and including this collective
		// ships before the next phase starts.
		c.flushTelemetry()
	}()
	c.mu.Lock()
	c.seq++
	dep := deposit{
		seq:        c.seq,
		kind:       kind,
		op:         op,
		root:       root,
		seenEvents: uint32(len(c.events)),
		deadlineMS: uint32(c.opts.StallTimeout.Milliseconds()),
		counts:     counts,
		data:       data,
	}
	c.mu.Unlock()
	var w wire.Writer
	dep.append(&w)
	nbytes = float64(len(w.Bytes()))
	t0 := time.Now()
	werr := c.fc.writeFrame(mDeposit, w.Bytes())
	xferUS = float64(time.Since(t0)) / float64(time.Microsecond)
	if o != nil {
		o.Counter("net.frames.sent").Inc()
		o.Counter("net.bytes.sent").Add(int64(len(w.Bytes())))
		o.Histogram("net.frame.deposit_bytes").Observe(int64(len(w.Bytes())))
	}
	if werr != nil {
		err = fmt.Errorf("net: rank %d: deposit: %w", c.rank, cluster.ErrAborted)
		c.markBroken(err)
		return nil, err
	}
	tWait := time.Now()
	resp, aerr := c.await(c.roundCh, dep.seq, "collective")
	waitUS = float64(time.Since(tWait)) / float64(time.Microsecond)
	if aerr != nil {
		return nil, aerr
	}
	r := wire.NewReader(resp.body)
	seq := r.U64()
	if resp.typ == mRoundFail {
		code := r.U8()
		events := decodeEvents(r)
		if r.Err() != nil || seq != dep.seq {
			return nil, c.protoBroken("round failure")
		}
		c.adoptEvents(events)
		return nil, fmt.Errorf("net: rank %d: collective failed: %w",
			c.rank, codeToError(code, c.size, events))
	}
	events := decodeEvents(r)
	result := r.F64s()
	if r.Err() != nil || seq != dep.seq {
		return nil, c.protoBroken("round result")
	}
	c.adoptEvents(events)
	return result, nil
}

// await blocks for the matching response, bounded by the local stall
// backstop (looser than the deadline shipped in the deposit, so the
// coordinator's verdict normally arrives first and stays authoritative).
func (c *Comm) await(ch chan frame, seq uint64, what string) (frame, error) {
	timer := time.NewTimer(c.opts.StallTimeout + 5*time.Second)
	defer timer.Stop()
	select {
	case resp := <-ch:
		return resp, nil
	case <-c.readerDone:
		return frame{}, c.brokenErr()
	case <-timer.C:
		err := fmt.Errorf("net: rank %d: %s stalled past %v: %w",
			c.rank, what, c.opts.StallTimeout, cluster.ErrTimeout)
		c.markBroken(err) // response stream is now ambiguous
		c.fc.close()
		return frame{}, err
	}
}

// protoBroken marks the connection unusable after a malformed response.
func (c *Comm) protoBroken(what string) error {
	err := fmt.Errorf("net: rank %d: malformed %s: %w", c.rank, what, cluster.ErrProtocol)
	c.markBroken(err)
	c.fc.close()
	return err
}

func (c *Comm) Barrier() error {
	_, err := c.collective(kindBarrier, 0, -1, nil, nil)
	return err
}

func (c *Comm) Allreduce(data []float64, op cluster.Op) ([]float64, error) {
	return c.collective(kindAllreduce, uint8(op), -1, nil, data)
}

func (c *Comm) Reduce(root int, data []float64, op cluster.Op) ([]float64, error) {
	if root < 0 || root >= c.size {
		return nil, fmt.Errorf("net: rank %d: reduce root %d: %w", c.rank, root, cluster.ErrInvalidRank)
	}
	return c.collective(kindReduce, uint8(op), int32(root), nil, data)
}

func (c *Comm) Bcast(root int, data []float64) ([]float64, error) {
	if root < 0 || root >= c.size {
		return nil, fmt.Errorf("net: rank %d: bcast root %d: %w", c.rank, root, cluster.ErrInvalidRank)
	}
	var payload []float64
	if c.rank == root {
		payload = data
	}
	return c.collective(kindBcast, 0, int32(root), nil, payload)
}

func (c *Comm) Allgatherv(contrib []float64, counts []int) ([]float64, error) {
	if len(counts) != c.size {
		return nil, fmt.Errorf("net: rank %d: allgatherv counts length %d, want %d: %w",
			c.rank, len(counts), c.size, cluster.ErrProtocol)
	}
	if len(contrib) != counts[c.rank] {
		return nil, fmt.Errorf("net: rank %d: allgatherv contributes %d, counts say %d: %w",
			c.rank, len(contrib), counts[c.rank], cluster.ErrProtocol)
	}
	c32 := make([]int32, len(counts))
	for i, n := range counts {
		if n < 0 {
			return nil, fmt.Errorf("net: rank %d: allgatherv negative count: %w", c.rank, cluster.ErrProtocol)
		}
		c32[i] = int32(n)
	}
	return c.collective(kindAllgatherv, 0, -1, c32, contrib)
}

// ---- Point-to-point ----

func (c *Comm) Send(dst, tag int, data []float64) error {
	if err := c.brokenErr(); err != nil {
		return err
	}
	if dst == c.rank {
		return fmt.Errorf("net: rank %d: %w", c.rank, cluster.ErrSelfSend)
	}
	if dst < 0 || dst >= c.size {
		return fmt.Errorf("net: rank %d: send to %d: %w", c.rank, dst, cluster.ErrInvalidRank)
	}
	// Fast path: the local log already knows the destination is dead.
	for _, d := range c.DeadRanks() {
		if d == dst {
			return fmt.Errorf("net: rank %d: send to %d: %w",
				c.rank, dst, &cluster.RankDeadError{Dead: c.DeadRanks()})
		}
	}
	c.mu.Lock()
	c.seq++
	seq := c.seq
	c.mu.Unlock()
	var w wire.Writer
	w.U64(seq)
	w.I32(int32(dst))
	w.I32(int32(tag))
	w.F64s(data)
	if err := c.fc.writeFrame(mRelay, w.Bytes()); err != nil {
		err = fmt.Errorf("net: rank %d: relay: %w", c.rank, cluster.ErrAborted)
		c.markBroken(err)
		return err
	}
	resp, err := c.await(c.sendCh, seq, "send")
	if err != nil {
		return err
	}
	r := wire.NewReader(resp.body)
	got := r.U64()
	if resp.typ == mSendErr {
		code := r.U8()
		events := decodeEvents(r)
		if r.Err() != nil || got != seq {
			return c.protoBroken("send failure")
		}
		c.adoptEvents(events)
		return fmt.Errorf("net: rank %d: send to %d: %w",
			c.rank, dst, codeToError(code, c.size, events))
	}
	if r.Err() != nil || got != seq {
		return c.protoBroken("send ack")
	}
	return nil
}

func (c *Comm) Recv(src, tag int) ([]float64, int, error) {
	if err := c.brokenErr(); err != nil {
		return nil, 0, err
	}
	if src != cluster.AnySource && (src < 0 || src >= c.size) {
		return nil, 0, fmt.Errorf("net: rank %d: recv from %d: %w", c.rank, src, cluster.ErrInvalidRank)
	}
	matches := func(m relayed) bool {
		return (src == cluster.AnySource || m.src == src) && (tag == cluster.AnyTag || m.tag == tag)
	}
	for i, m := range c.pending {
		if matches(m) {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return m.data, m.src, nil
		}
	}
	timer := time.NewTimer(c.opts.StallTimeout + 5*time.Second)
	defer timer.Stop()
	for {
		select {
		case m := <-c.inbox:
			if matches(m) {
				return m.data, m.src, nil
			}
			c.pending = append(c.pending, m)
		case <-c.readerDone:
			return nil, 0, c.brokenErr()
		case <-timer.C:
			err := fmt.Errorf("net: rank %d: recv stalled past %v: %w",
				c.rank, c.opts.StallTimeout, cluster.ErrTimeout)
			return nil, 0, err
		}
	}
}
