// Package cluster is gbpolar's message-passing substrate: an in-process
// SPMD runtime with MPI-like semantics (ranks, point-to-point sends,
// Barrier/Bcast/Reduce/Allreduce/Allgatherv collectives).
//
// The paper runs on Lonestar4 with MVAPICH2; this repository has no MPI,
// so the substrate "rolls its own cluster communication" (see DESIGN.md
// §2): ranks are goroutines, and every communication both actually moves
// the data (so algorithms compute exact results) and is *metered* by a
// virtual clock that charges the Grama-et-al. cost formulas the paper's
// own complexity analysis uses (t_s·log P startup plus t_w per word,
// Section IV.C), with distinct parameter tiers for intra-socket,
// intra-node and inter-node traffic. In Modeled mode the reported time is
// the virtual clock — allowing faithful replay of 144-core runs on a
// small host; in Real mode it is the wall clock.
package cluster

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"gbpolar/internal/obs"
)

// Mode selects how Run accounts time.
type Mode int

const (
	// Modeled meters compute via ChargeCompute/ChargeOps and
	// communication via the cost model; the result is deterministic for
	// a fixed seed and independent of the host's core count.
	Modeled Mode = iota
	// Real measures wall-clock time and ignores the virtual clock.
	Real
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Real {
		return "real"
	}
	return "modeled"
}

// Topology describes the machine being modeled. The defaults mirror the
// paper's Table I (Lonestar4: dual-socket hexa-core Westmere nodes).
type Topology struct {
	Nodes          int
	SocketsPerNode int
	CoresPerSocket int
}

// Lonestar4 returns the paper's Table I topology with the given node
// count.
func Lonestar4(nodes int) Topology {
	return Topology{Nodes: nodes, SocketsPerNode: 2, CoresPerSocket: 6}
}

// CoresPerNode returns SocketsPerNode·CoresPerSocket.
func (t Topology) CoresPerNode() int { return t.SocketsPerNode * t.CoresPerSocket }

// TotalCores returns the machine's core count.
func (t Topology) TotalCores() int { return t.Nodes * t.CoresPerNode() }

// LinkCost is the latency/bandwidth pair of one communication tier.
type LinkCost struct {
	// Latency is the per-message startup time t_s.
	Latency time.Duration
	// SecPerWord is the per-8-byte-word transfer time t_w.
	SecPerWord float64
}

// CostModel holds the three communication tiers. The strict ordering
// IntraSocket ≤ IntraNode ≤ InterNode is the paper's Section IV.B
// hierarchy ("cost of communication among k threads in shared-memory <
// ... < cost ... across the cluster").
type CostModel struct {
	IntraSocket LinkCost
	IntraNode   LinkCost
	InterNode   LinkCost
}

// DefaultCostModel returns parameters representative of a QDR-InfiniBand
// cluster of shared-memory nodes (Table I: 40 Gb/s point-to-point).
func DefaultCostModel() CostModel {
	return CostModel{
		IntraSocket: LinkCost{Latency: 200 * time.Nanosecond, SecPerWord: 8.0 / 16e9},
		IntraNode:   LinkCost{Latency: 500 * time.Nanosecond, SecPerWord: 8.0 / 8e9},
		InterNode:   LinkCost{Latency: 2 * time.Microsecond, SecPerWord: 8.0 / 3e9},
	}
}

// Config configures one SPMD run.
type Config struct {
	// Procs is the number of ranks (P in the paper).
	Procs int
	// ThreadsPerProc (p) is recorded for reports and used by callers to
	// size their per-rank worker pools; the runtime itself does not
	// spawn threads.
	ThreadsPerProc int
	// RanksPerNode controls placement: rank r lives on node
	// r/RanksPerNode, socket (r%RanksPerNode)/ceil(RanksPerNode/sockets).
	// 0 packs all ranks onto one node.
	RanksPerNode int
	// Topology describes the modeled machine. Zero value = one Lonestar4
	// node.
	Topology Topology
	// Cost is the communication cost model. Zero value = defaults.
	Cost CostModel
	// Mode selects virtual-clock vs wall-clock accounting.
	Mode Mode
	// OpsPerSecond is the calibrated single-core kernel rate used by
	// ChargeOps (interactions per second).
	OpsPerSecond float64
	// NoiseSigma adds multiplicative compute jitter (modeled mode): each
	// compute charge is scaled by 1 + |N(0,σ)|, emulating transient OS
	// noise. 0 disables jitter.
	NoiseSigma float64
	// HeteroSigma draws, once per rank at launch, a persistent slowdown
	// factor 1 + |N(0,σ_h)| applied to all of that rank's compute —
	// modeling heterogeneous or noisy NODES (the straggler scenario that
	// dynamic load balancing targets). 0 disables it; runs with only
	// HeteroSigma set are deterministic for a fixed Seed.
	HeteroSigma float64
	// Seed seeds the per-rank jitter generators.
	Seed int64
	// StartupCost is charged to every rank's virtual clock at launch:
	// the per-run MPI job-startup/connection overhead that makes
	// distributed runs lose to shared-memory runs on small molecules
	// (the paper's Section V.C crossover at ≈2500 atoms).
	StartupCost time.Duration
	// Paced aligns real execution order with virtual clocks (see
	// pace.go). Required for asynchronous protocols whose behaviour
	// depends on virtual timing (work stealing); unnecessary for purely
	// collective algorithms.
	Paced bool
	// PaceWindow is the allowed virtual-clock lead while paced (seconds;
	// 0 = strict ordering).
	PaceWindow float64
	// Faults optionally injects deterministic rank crashes, message
	// drops and delays (see faults.go). nil injects nothing.
	Faults *FaultPlan
	// StallTimeout is the real-time backstop on blocking communication:
	// a Recv or collective that makes no progress for this long returns
	// ErrTimeout instead of hanging. 0 disables it unless Faults is set,
	// in which case it defaults to 2 minutes — with faults active,
	// nothing may block forever.
	StallTimeout time.Duration
	// Obs, when non-nil, receives a span per collective (with bytes
	// moved), fault injections/detections/recoveries as timeline
	// instants, and communication counters. nil — the default — costs
	// one pointer test per communication call.
	Obs *obs.Obs
}

func (c Config) withDefaults() Config {
	if c.ThreadsPerProc <= 0 {
		c.ThreadsPerProc = 1
	}
	if c.Topology == (Topology{}) {
		c.Topology = Lonestar4(1)
	}
	if c.RanksPerNode <= 0 {
		c.RanksPerNode = c.Procs
	}
	if c.Cost == (CostModel{}) {
		c.Cost = DefaultCostModel()
	}
	if c.OpsPerSecond <= 0 {
		c.OpsPerSecond = 100e6
	}
	if c.Faults != nil && c.StallTimeout <= 0 {
		c.StallTimeout = 2 * time.Minute
	}
	return c
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	if c.Procs <= 0 {
		return fmt.Errorf("cluster: Procs must be positive, got %d", c.Procs)
	}
	cc := c.withDefaults()
	nodesUsed := (c.Procs + cc.RanksPerNode - 1) / cc.RanksPerNode
	if nodesUsed > cc.Topology.Nodes {
		return fmt.Errorf("cluster: %d ranks at %d/node need %d nodes, topology has %d",
			c.Procs, cc.RanksPerNode, nodesUsed, cc.Topology.Nodes)
	}
	if cc.ThreadsPerProc*cc.RanksPerNode > cc.Topology.CoresPerNode() {
		return fmt.Errorf("cluster: %d ranks × %d threads oversubscribe a %d-core node",
			cc.RanksPerNode, cc.ThreadsPerProc, cc.Topology.CoresPerNode())
	}
	if err := c.Faults.Validate(c.Procs); err != nil {
		return err
	}
	return nil
}

// world is the shared state of one Run.
type world struct {
	cfg   Config
	ranks []*Comm

	mu      sync.Mutex
	cond    *sync.Cond
	aborted bool

	// collective rendezvous state: cur* fields belong to the round being
	// assembled; result/doneMaxClock are the snapshot of the last
	// completed round (see rendezvous).
	gen          uint64
	arrived      int
	kind         string
	contribs     [][]float64
	present      []bool
	depEpoch     []uint64
	curMaxClock  float64
	result       []float64
	doneMaxClock float64

	// fault-layer state (guarded by mu): the ordered dead list, the
	// epoch counter bumped per death, and the aggregated fault report.
	plan      *FaultPlan
	dead      []bool
	deadOrder []int
	deadEpoch uint64
	fstats    FaultReport

	tier  LinkCost // tier spanning the whole communicator
	pacer *pacer
}

// Comm is one rank's communicator handle.
type Comm struct {
	w    *world
	rank int

	clock       float64 // virtual seconds
	slowdown    float64 // persistent rate factor (≥1), from HeteroSigma
	computeSecs float64
	commSecs    float64
	bytesSent   int64
	memoryBytes int64
	jitter      *rand.Rand

	// fault-layer state: compiled injection triggers (own goroutine
	// only) and the death epoch this rank has observed (guarded by w.mu).
	flt        *rankFaults
	seenEpoch  uint64
	seenDeaths int

	inbox struct {
		mu   sync.Mutex
		cond *sync.Cond
		msgs []p2pMsg
	}
}

type p2pMsg struct {
	src, tag  int
	data      []float64
	sendClock float64
}

// Rank returns this rank's index.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return len(c.w.ranks) }

// Threads returns the configured threads per rank (p).
func (c *Comm) Threads() int { return c.w.cfg.ThreadsPerProc }

// Clock returns the rank's current virtual time in seconds.
func (c *Comm) Clock() float64 { return c.clock }

// OpsPerSecond returns the configured calibrated kernel rate.
func (c *Comm) OpsPerSecond() float64 { return c.w.cfg.OpsPerSecond }

// Obs returns the run's observer; nil when observability is disabled.
// Rank functions use it to open phase spans on the shared timeline.
func (c *Comm) Obs() *obs.Obs { return c.w.cfg.Obs }

// node returns the node index hosting rank r.
func (w *world) node(r int) int { return r / w.cfg.RanksPerNode }

// socket returns the global socket index hosting rank r.
func (w *world) socket(r int) int {
	perSocket := (w.cfg.RanksPerNode + w.cfg.Topology.SocketsPerNode - 1) /
		w.cfg.Topology.SocketsPerNode
	if perSocket == 0 {
		perSocket = 1
	}
	local := r % w.cfg.RanksPerNode
	return w.node(r)*w.cfg.Topology.SocketsPerNode + local/perSocket
}

// linkTier returns the cost tier between two ranks.
func (w *world) linkTier(a, b int) LinkCost {
	switch {
	case w.node(a) != w.node(b):
		return w.cfg.Cost.InterNode
	case w.socket(a) != w.socket(b):
		return w.cfg.Cost.IntraNode
	default:
		return w.cfg.Cost.IntraSocket
	}
}

// spanTier returns the widest tier used by the whole communicator —
// the tier charged for collectives.
func (w *world) spanTier() LinkCost {
	p := len(w.ranks)
	if w.node(0) != w.node(p-1) {
		return w.cfg.Cost.InterNode
	}
	if w.socket(0) != w.socket(p-1) {
		return w.cfg.Cost.IntraNode
	}
	return w.cfg.Cost.IntraSocket
}

// ChargeCompute advances the rank's virtual clock by the given seconds of
// single-stream compute (already divided by whatever intra-rank
// parallelism the caller achieved), plus jitter.
func (c *Comm) ChargeCompute(seconds float64) {
	if seconds < 0 || math.IsNaN(seconds) {
		return
	}
	seconds *= c.slowdown
	if c.w.cfg.NoiseSigma > 0 {
		seconds *= 1 + math.Abs(c.jitter.NormFloat64())*c.w.cfg.NoiseSigma
	}
	c.clock += seconds
	c.computeSecs += seconds
	// A CrashAtClock trigger fires at the first charge that crosses it —
	// the modeled machine died mid-compute; we notice at the boundary.
	c.checkClockCrash()
}

// ChargeOps charges ops kernel evaluations at the configured calibrated
// rate.
func (c *Comm) ChargeOps(ops float64) {
	c.ChargeCompute(ops / c.w.cfg.OpsPerSecond)
}

// TrackMemory records bytes of resident per-rank data (replicated
// molecule, octrees, result arrays) for the report's memory accounting.
func (c *Comm) TrackMemory(bytes int64) {
	c.memoryBytes += bytes
}

// Run executes fn on every rank concurrently and gathers the report.
// The first error (by rank order) is returned; panics in rank functions
// are converted to errors. Ranks crashed by the fault plan are NOT
// errors: the run completes on the survivors and the report's Faults
// section records the deaths. On error the report is still returned
// (best effort) so fault accounting survives failed runs.
func Run(cfg Config, fn func(c *Comm) error) (*Report, error) {
	return RunContext(context.Background(), cfg, fn)
}

// RunContext is Run with cancellation: when ctx is cancelled the run
// aborts — every rank blocked in a communication call returns ErrAborted,
// and RunContext returns once ALL rank goroutines have exited (it joins
// them, so cancellation cannot leak goroutines). A rank that is busy in a
// pure compute section notices the abort at its next communication call;
// ranks that already finished successfully are unaffected.
func RunContext(ctx context.Context, cfg Config, fn func(c *Comm) error) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	w := &world{cfg: cfg, plan: cfg.Faults.withDefaults()}
	w.cond = sync.NewCond(&w.mu)
	w.pacer = newPacer(cfg.Procs, cfg.Paced)
	w.ranks = make([]*Comm, cfg.Procs)
	w.dead = make([]bool, cfg.Procs)
	for r := range w.ranks {
		c := &Comm{w: w, rank: r, jitter: rand.New(rand.NewSource(cfg.Seed + int64(r)*1000003 + 17))}
		c.inbox.cond = sync.NewCond(&c.inbox.mu)
		c.clock = cfg.StartupCost.Seconds()
		c.commSecs = cfg.StartupCost.Seconds()
		c.slowdown = 1
		if cfg.HeteroSigma > 0 {
			c.slowdown = 1 + math.Abs(c.jitter.NormFloat64())*cfg.HeteroSigma
		}
		if cfg.Faults != nil {
			c.flt = compileFaults(w.plan, r)
		}
		w.ranks[r] = c
	}
	w.tier = w.spanTier()

	errs := make([]error, cfg.Procs)
	var wg sync.WaitGroup
	wg.Add(cfg.Procs)
	start := time.Now()
	if ctx != nil && ctx.Done() != nil {
		watcherDone := make(chan struct{})
		defer close(watcherDone)
		go func() {
			select {
			case <-ctx.Done():
				w.abort()
			case <-watcherDone:
			}
		}()
	}
	for r := 0; r < cfg.Procs; r++ {
		go func(r int) {
			defer wg.Done()
			// A finished rank must not hold the virtual-time pacer's
			// minimum at its final clock (other ranks would wait on it
			// forever).
			defer w.pacer.block(r, math.Inf(1))
			defer func() {
				if rec := recover(); rec != nil {
					if _, killed := rec.(rankKilled); killed {
						// Injected death: already recorded by die();
						// survivors carry on.
						return
					}
					errs[r] = fmt.Errorf("cluster: rank %d panicked: %v", r, rec)
					w.abort()
				}
			}()
			if err := fn(w.ranks[r]); err != nil {
				errs[r] = fmt.Errorf("cluster: rank %d: %w", r, err)
				w.abort()
			}
		}(r)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	for _, err := range errs {
		if err != nil {
			return w.report(wall), err
		}
	}
	return w.report(wall), nil
}

// abort wakes every blocked rank so the run can unwind after a failure.
func (w *world) abort() {
	w.mu.Lock()
	w.aborted = true
	w.cond.Broadcast()
	w.mu.Unlock()
	for _, c := range w.ranks {
		c.inbox.mu.Lock()
		c.inbox.cond.Broadcast()
		c.inbox.mu.Unlock()
	}
}
