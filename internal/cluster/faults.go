package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"gbpolar/internal/obs"
)

// This file is the substrate's fault layer: deterministic, seeded
// injection of rank crashes, message drops and message delays, wired
// through Send/Recv and every collective, plus the liveness bookkeeping
// survivors use to detect and recover from them.
//
// Faults are INJECTED at the transport, DETECTED by the communication
// calls (never by the science kernels), and REPORTED on the run's
// Report.Faults. A crash kills the victim's rank goroutine at its next
// communication or compute-charge boundary; survivors observe the death
// as a *RankDeadError from their next blocking call — the in-process
// analogue of a heartbeat timeout, charged to the virtual clock with the
// cost-model-derived detection latency (timeout = collective estimate ×
// TimeoutSlack, see detectCharge).

// FaultKind enumerates the injectable fault classes.
type FaultKind int

const (
	// CrashAtClock kills the victim rank at the first fault check after
	// its virtual clock reaches Fault.Clock.
	CrashAtClock FaultKind = iota
	// CrashAtCollective kills the victim rank as it enters its Nth
	// collective call (1-based) — a phase-boundary crash.
	CrashAtCollective
	// DropMessages makes the victim's next Count matching sends vanish
	// in transit. The modeled reliable transport detects each loss and
	// retransmits with exponential backoff, so a drop costs time, not
	// correctness — unless the retry budget is exhausted (ErrTimeout).
	DropMessages
	// DelayMessages adds Delay to the virtual flight time of the
	// victim's next Count matching sends.
	DelayMessages
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case CrashAtClock:
		return "crash@clock"
	case CrashAtCollective:
		return "crash@collective"
	case DropMessages:
		return "drop"
	case DelayMessages:
		return "delay"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault describes one injected fault. Rank is always the victim (the
// crashing rank, or the sender of dropped/delayed messages).
type Fault struct {
	Kind FaultKind
	Rank int
	// Clock is the virtual-clock trigger time for CrashAtClock.
	Clock float64
	// Nth is the 1-based collective index for CrashAtCollective.
	Nth int
	// Count is how many matching sends are dropped/delayed (default 1).
	Count int
	// Peer filters dropped/delayed sends by destination (-1 = any).
	Peer int
	// Tag filters dropped/delayed sends by tag (AnyTag = any).
	Tag int
	// Delay is the added flight time for DelayMessages.
	Delay time.Duration
}

// FaultPlan is a deterministic schedule of faults for one run. The zero
// value (or a nil plan) injects nothing.
type FaultPlan struct {
	// Faults is the injection schedule.
	Faults []Fault
	// MaxRetries bounds the modeled retransmissions of a dropped
	// message before Send gives up with ErrTimeout (default 8).
	MaxRetries int
	// TimeoutSlack scales the cost-model estimate into the detection
	// latency charged when a survivor observes a death (default 3).
	TimeoutSlack float64
}

func (p *FaultPlan) withDefaults() *FaultPlan {
	out := &FaultPlan{MaxRetries: 8, TimeoutSlack: 3}
	if p == nil {
		return out
	}
	out.Faults = p.Faults
	if p.MaxRetries > 0 {
		out.MaxRetries = p.MaxRetries
	}
	if p.TimeoutSlack > 0 {
		out.TimeoutSlack = p.TimeoutSlack
	}
	return out
}

// Validate reports malformed faults (victim out of range, nonpositive
// triggers).
func (p *FaultPlan) Validate(procs int) error {
	if p == nil {
		return nil
	}
	for i, f := range p.Faults {
		if f.Rank < 0 || f.Rank >= procs {
			return fmt.Errorf("cluster: fault %d: %w %d", i, ErrInvalidRank, f.Rank)
		}
		switch f.Kind {
		case CrashAtClock:
			if f.Clock < 0 || math.IsNaN(f.Clock) {
				return fmt.Errorf("cluster: fault %d: bad crash clock %v", i, f.Clock)
			}
		case CrashAtCollective:
			if f.Nth <= 0 {
				return fmt.Errorf("cluster: fault %d: collective index must be ≥1, got %d", i, f.Nth)
			}
		case DropMessages, DelayMessages:
			if f.Peer < -1 || f.Peer >= procs {
				return fmt.Errorf("cluster: fault %d: %w peer %d", i, ErrInvalidRank, f.Peer)
			}
		default:
			return fmt.Errorf("cluster: fault %d: unknown kind %d", i, int(f.Kind))
		}
	}
	return nil
}

// RandomFaultPlan draws a deterministic fault schedule: n faults over P
// ranks, crash triggers uniform over (0, horizon] virtual seconds or the
// first few collective boundaries, drops and delays on random senders.
// Identical (seed, P, n, horizon) always yield the identical plan — the
// chaos tests rely on this.
func RandomFaultPlan(seed int64, procs, n int, horizon float64) *FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	plan := &FaultPlan{}
	for i := 0; i < n; i++ {
		f := Fault{Rank: rng.Intn(procs), Peer: -1, Tag: AnyTag, Count: 1 + rng.Intn(3)}
		switch rng.Intn(4) {
		case 0:
			f.Kind = CrashAtClock
			f.Clock = rng.Float64() * horizon
		case 1:
			f.Kind = CrashAtCollective
			f.Nth = 1 + rng.Intn(6)
		case 2:
			f.Kind = DropMessages
		default:
			f.Kind = DelayMessages
			f.Delay = time.Duration(rng.Float64() * horizon * float64(time.Second) / 4)
		}
		plan.Faults = append(plan.Faults, f)
	}
	return plan
}

// FaultEvent records one fault firing, stamped with the victim's
// virtual clock.
type FaultEvent struct {
	Kind  FaultKind
	Rank  int
	Clock float64
}

// Detection records one survivor observing one death.
type Detection struct {
	// DeadRank is the observed victim; ByRank the observer.
	DeadRank, ByRank int
	// Clock is the observer's virtual clock after charging Latency.
	Clock float64
	// Latency is the charged detection time (cost estimate × slack).
	Latency float64
}

// FaultReport aggregates what the fault layer injected, what the
// survivors detected, and what recovery cost.
type FaultReport struct {
	// Injected lists fired faults in firing order (crashes once;
	// drops/delays once per affected message).
	Injected []FaultEvent
	// Crashes/Drops/Delays/Retries are summary counters. Retries counts
	// modeled retransmissions of dropped messages.
	Crashes, Drops, Delays, Retries int
	// Detections lists every (victim, observer) death observation.
	Detections []Detection
	// RecomputedRows counts interaction-list rows survivors re-evaluated
	// to cover dead ranks' work.
	RecomputedRows int
	// Rejoins counts ranks re-admitted mid-run by an elastic transport
	// (always 0 on the modeled in-process transport, which has no join
	// path).
	Rejoins int
	// RespawnFailures counts respawn attempts that failed to launch a
	// replacement process (elastic net transport only). A nonzero value
	// means the run finished with fewer ranks than it could have.
	RespawnFailures int
	// RecoverySeconds is the virtual time charged to detection latency
	// plus recomputation across all survivors.
	RecoverySeconds float64
	// Degraded reports a fallback to the single-rank shared runner;
	// DegradedReason says why.
	Degraded       bool
	DegradedReason string
}

// String implements fmt.Stringer.
func (r *FaultReport) String() string {
	s := fmt.Sprintf("faults: %d crashes, %d drops (%d retries), %d delays; %d detections, %d rows recomputed, recovery %.3gs",
		r.Crashes, r.Drops, r.Retries, r.Delays, len(r.Detections), r.RecomputedRows, r.RecoverySeconds)
	if r.Rejoins > 0 {
		s += fmt.Sprintf("; %d rejoins", r.Rejoins)
	}
	if r.RespawnFailures > 0 {
		s += fmt.Sprintf("; %d respawn failures", r.RespawnFailures)
	}
	if r.Degraded {
		s += "; DEGRADED: " + r.DegradedReason
	}
	return s
}

// msgRule is a compiled drop/delay trigger for one sender.
type msgRule struct {
	peer, tag, count int
	delay            float64 // 0 for drops
}

func (r *msgRule) matches(dst, tag int) bool {
	return r.count > 0 && (r.peer == -1 || r.peer == dst) && (r.tag == AnyTag || r.tag == tag)
}

// rankFaults is one rank's compiled trigger state. It is touched only by
// the owning rank's goroutine.
type rankFaults struct {
	crashClock float64 // earliest CrashAtClock trigger; +Inf = none
	crashColl  int     // earliest CrashAtCollective index; 0 = none
	collCount  int     // collectives entered so far
	drops      []msgRule
	delays     []msgRule
}

func compileFaults(plan *FaultPlan, rank int) *rankFaults {
	rf := &rankFaults{crashClock: math.Inf(1)}
	if plan == nil {
		return rf
	}
	for _, f := range plan.Faults {
		if f.Rank != rank {
			continue
		}
		count := f.Count
		if count <= 0 {
			count = 1
		}
		switch f.Kind {
		case CrashAtClock:
			if f.Clock < rf.crashClock {
				rf.crashClock = f.Clock
			}
		case CrashAtCollective:
			if rf.crashColl == 0 || f.Nth < rf.crashColl {
				rf.crashColl = f.Nth
			}
		case DropMessages:
			rf.drops = append(rf.drops, msgRule{peer: f.Peer, tag: f.Tag, count: count})
		case DelayMessages:
			rf.delays = append(rf.delays, msgRule{peer: f.Peer, tag: f.Tag, count: count, delay: f.Delay.Seconds()})
		}
	}
	return rf
}

// takeDrop consumes one drop token matching (dst, tag), if any.
func (rf *rankFaults) takeDrop(dst, tag int) bool {
	for i := range rf.drops {
		if rf.drops[i].matches(dst, tag) {
			rf.drops[i].count--
			return true
		}
	}
	return false
}

// takeDelay consumes one delay token matching (dst, tag) and returns the
// added flight time.
func (rf *rankFaults) takeDelay(dst, tag int) float64 {
	for i := range rf.delays {
		if rf.delays[i].matches(dst, tag) {
			rf.delays[i].count--
			return rf.delays[i].delay
		}
	}
	return 0
}

// rankKilled is the panic sentinel that unwinds a crashed rank's
// goroutine. Run's recover treats it as an injected death, not an error.
type rankKilled struct{ rank int }

// die fires the rank's crash: records the death, wakes everyone blocked
// on it, and unwinds the goroutine.
func (c *Comm) die(kind FaultKind) {
	c.w.markDead(c.rank, c.clock, kind)
	panic(rankKilled{c.rank})
}

// checkClockCrash kills the rank when its virtual clock has crossed its
// crash trigger. Called from every compute charge and communication
// entry, so a crash "at virtual time t" fires at the first boundary
// after t — like a machine check noticed at the next syscall.
func (c *Comm) checkClockCrash() {
	if c.flt != nil && c.clock >= c.flt.crashClock {
		c.die(CrashAtClock)
	}
}

// enterCollective counts collective entries and fires phase-boundary
// crashes.
func (c *Comm) enterCollective() {
	if c.flt == nil {
		return
	}
	c.checkClockCrash()
	c.flt.collCount++
	if c.flt.crashColl != 0 && c.flt.collCount == c.flt.crashColl {
		c.die(CrashAtCollective)
	}
}

// markDead serializes a death into the world's ordered dead list and
// wakes every blocked rank so waiters can re-check liveness. Survivors
// observe the new epoch at their next blocking call.
func (w *world) markDead(rank int, clock float64, kind FaultKind) {
	w.mu.Lock()
	if !w.dead[rank] {
		w.dead[rank] = true
		w.deadOrder = append(w.deadOrder, rank)
		w.deadEpoch++
		w.noteEventLocked(FaultEvent{Kind: kind, Rank: rank, Clock: clock})
		w.fstats.Crashes++
		if o := w.cfg.Obs; o != nil {
			o.Instant(rank, "fault", "rank.crash", clock, obs.F("kind", float64(kind)))
			o.Counter("cluster.fault.crashes").Inc()
		}
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	for _, peer := range w.ranks {
		peer.inbox.mu.Lock()
		peer.inbox.cond.Broadcast()
		peer.inbox.mu.Unlock()
	}
	// A dead rank must not hold the pacer's minimum.
	w.pacer.block(rank, math.Inf(1))
}

// noteEventLocked appends to the fault log; w.mu must be held.
func (w *world) noteEventLocked(ev FaultEvent) {
	w.fstats.Injected = append(w.fstats.Injected, ev)
}

// noteDrop records one dropped message from rank at the given clock.
func (w *world) noteDrop(rank int, clock float64) {
	w.mu.Lock()
	w.fstats.Drops++
	w.noteEventLocked(FaultEvent{Kind: DropMessages, Rank: rank, Clock: clock})
	w.mu.Unlock()
	if o := w.cfg.Obs; o != nil {
		o.Instant(rank, "fault", "msg.drop", clock)
		o.Counter("cluster.fault.drops").Inc()
	}
}

// noteRetry records one modeled retransmission.
func (w *world) noteRetry() {
	w.mu.Lock()
	w.fstats.Retries++
	w.mu.Unlock()
	w.cfg.Obs.Counter("cluster.retransmits").Inc()
}

// noteDelay records one delayed message from rank at the given clock.
func (w *world) noteDelay(rank int, clock float64) {
	w.mu.Lock()
	w.fstats.Delays++
	w.noteEventLocked(FaultEvent{Kind: DelayMessages, Rank: rank, Clock: clock})
	w.mu.Unlock()
	if o := w.cfg.Obs; o != nil {
		o.Instant(rank, "fault", "msg.delay", clock)
		o.Counter("cluster.fault.delays").Inc()
	}
}

// liveCount returns len(ranks) − deaths; w.mu must be held.
func (w *world) liveCountLocked() int {
	return len(w.ranks) - len(w.deadOrder)
}

// observeDeathsLocked checks whether rank c has unobserved deaths and,
// if so, syncs its epoch, charges the detection latency and returns the
// RankDeadError. w.mu must be held. words sizes the cost estimate of the
// communication being attempted.
func (c *Comm) observeDeathsLocked(words int) error {
	w := c.w
	if c.seenEpoch == w.deadEpoch {
		return nil
	}
	charge := w.detectCharge(words)
	newly := w.deadOrder[c.seenDeaths:]
	c.seenEpoch = w.deadEpoch
	c.seenDeaths = len(w.deadOrder)
	c.clock += charge
	c.commSecs += charge
	for i, d := range newly {
		w.fstats.Detections = append(w.fstats.Detections, Detection{
			DeadRank: d, ByRank: c.rank, Clock: c.clock, Latency: charge,
		})
		if o := w.cfg.Obs; o != nil {
			// The latency was charged once for the whole batch of newly
			// observed deaths; attribute it to the first instant so the
			// trace's latency_us sum reconciles exactly with the report's
			// RecoverySeconds detection component.
			lat := 0.0
			if i == 0 {
				lat = charge
			}
			o.Instant(c.rank, "fault", "death.detect", c.clock,
				obs.F("dead_rank", float64(d)), obs.F("latency_us", lat*1e6))
			o.Counter("cluster.fault.detections").Inc()
		}
	}
	w.fstats.RecoverySeconds += charge
	return &RankDeadError{Dead: append([]int(nil), w.deadOrder...)}
}

// detectCharge is the modeled detection latency: the cost-model estimate
// of the communication being waited on, scaled by the plan's slack
// factor — timeout = (t_s·⌈log₂P⌉ + t_w·m)·slack, floored at one
// latency. See DESIGN.md §7.
func (w *world) detectCharge(words int) float64 {
	est := w.treeCost(words)
	if min := w.tier.Latency.Seconds(); est < min {
		est = min
	}
	return est * w.plan.TimeoutSlack
}

// NoteRecovery records rows of re-divided work a survivor recomputed and
// the virtual seconds it charged doing so.
func (c *Comm) NoteRecovery(rows int, seconds float64) {
	w := c.w
	w.mu.Lock()
	w.fstats.RecomputedRows += rows
	w.fstats.RecoverySeconds += seconds
	w.mu.Unlock()
	if o := w.cfg.Obs; o != nil {
		o.Instant(c.rank, "recover", "rows.recomputed", c.clock,
			obs.F("rows", float64(rows)), obs.F("virt_s", seconds))
		o.Counter("cluster.recovered_rows").Add(int64(rows))
	}
}

// DeadRanks returns the ordered death list observed so far (a copy).
func (c *Comm) DeadRanks() []int {
	w := c.w
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]int(nil), w.deadOrder...)
}

// LiveRanks returns the sorted indices of ranks not (yet) dead.
func (c *Comm) LiveRanks() []int {
	w := c.w
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]int, 0, w.liveCountLocked())
	for r := range w.ranks {
		if !w.dead[r] {
			out = append(out, r)
		}
	}
	return out
}

// armStall starts a timer that broadcasts cond under its lock after d,
// so a blocking loop holding that lock can bound its wait in real time.
// Returns nil when the backstop is disabled. Broadcasting under the lock
// guarantees the wakeup cannot fall between a waiter's deadline check
// and its cond.Wait.
func armStall(cond *sync.Cond, d time.Duration) *time.Timer {
	if d <= 0 {
		return nil
	}
	return time.AfterFunc(d, func() {
		cond.L.Lock()
		cond.Broadcast()
		cond.L.Unlock()
	})
}

// stopStall stops a timer from armStall (nil-safe).
func stopStall(t *time.Timer) {
	if t != nil {
		t.Stop()
	}
}
