package cluster

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func smallCfg(procs int) Config {
	return Config{
		Procs:        procs,
		Topology:     Lonestar4(4),
		RanksPerNode: 4,
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{Procs: 0}).Validate(); err == nil {
		t.Error("zero procs should fail")
	}
	// 13 ranks per node on a 12-core node: oversubscribed.
	bad := Config{Procs: 13, Topology: Lonestar4(1), RanksPerNode: 13}
	if err := bad.Validate(); err == nil {
		t.Error("oversubscription should fail")
	}
	// 24 ranks but only 1 node available.
	bad2 := Config{Procs: 24, Topology: Lonestar4(1), RanksPerNode: 12}
	if err := bad2.Validate(); err == nil {
		t.Error("too few nodes should fail")
	}
	ok := Config{Procs: 12, Topology: Lonestar4(1), RanksPerNode: 12}
	if err := ok.Validate(); err != nil {
		t.Error(err)
	}
	hybrid := Config{Procs: 24, ThreadsPerProc: 6, Topology: Lonestar4(12), RanksPerNode: 2}
	if err := hybrid.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRunAllRanksExecute(t *testing.T) {
	var count int64
	rep, err := Run(smallCfg(8), func(c *Comm) error {
		atomic.AddInt64(&count, 1)
		if c.Size() != 8 {
			return fmt.Errorf("size %d", c.Size())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 8 {
		t.Fatalf("ran %d ranks", count)
	}
	if len(rep.PerRank) != 8 {
		t.Fatalf("report has %d ranks", len(rep.PerRank))
	}
}

func TestRanksHaveDistinctIDs(t *testing.T) {
	seen := make([]int64, 8)
	_, err := Run(smallCfg(8), func(c *Comm) error {
		atomic.AddInt64(&seen[c.Rank()], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, n := range seen {
		if n != 1 {
			t.Errorf("rank %d ran %d times", r, n)
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	_, err := Run(smallCfg(6), func(c *Comm) error {
		data := []float64{float64(c.Rank()), 1, float64(c.Rank() * c.Rank())}
		res, err := c.Allreduce(data, Sum)
		if err != nil {
			return err
		}
		want := []float64{0 + 1 + 2 + 3 + 4 + 5, 6, 0 + 1 + 4 + 9 + 16 + 25}
		for i := range want {
			if res[i] != want[i] {
				return fmt.Errorf("rank %d: res[%d]=%v want %v", c.Rank(), i, res[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMinMax(t *testing.T) {
	_, err := Run(smallCfg(5), func(c *Comm) error {
		v := []float64{float64(c.Rank())}
		mn, err := c.Allreduce(v, Min)
		if err != nil {
			return err
		}
		mx, err := c.Allreduce(v, Max)
		if err != nil {
			return err
		}
		if mn[0] != 0 || mx[0] != 4 {
			return fmt.Errorf("min/max = %v/%v", mn[0], mx[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceOnlyRoot(t *testing.T) {
	_, err := Run(smallCfg(4), func(c *Comm) error {
		res, err := c.Reduce(2, []float64{1}, Sum)
		if err != nil {
			return err
		}
		if c.Rank() == 2 {
			if res == nil || res[0] != 4 {
				return fmt.Errorf("root got %v", res)
			}
		} else if res != nil {
			return fmt.Errorf("non-root got %v", res)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	_, err := Run(smallCfg(7), func(c *Comm) error {
		var data []float64
		if c.Rank() == 3 {
			data = []float64{42, 7}
		}
		res, err := c.Bcast(3, data)
		if err != nil {
			return err
		}
		if len(res) != 2 || res[0] != 42 || res[1] != 7 {
			return fmt.Errorf("rank %d got %v", c.Rank(), res)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherv(t *testing.T) {
	_, err := Run(smallCfg(4), func(c *Comm) error {
		counts := []int{1, 2, 3, 4}
		contrib := make([]float64, counts[c.Rank()])
		for i := range contrib {
			contrib[i] = float64(c.Rank()*10 + i)
		}
		res, err := c.Allgatherv(contrib, counts)
		if err != nil {
			return err
		}
		want := []float64{0, 10, 11, 20, 21, 22, 30, 31, 32, 33}
		if len(res) != len(want) {
			return fmt.Errorf("len %d", len(res))
		}
		for i := range want {
			if res[i] != want[i] {
				return fmt.Errorf("res[%d] = %v want %v", i, res[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgathervBadCounts(t *testing.T) {
	_, err := Run(smallCfg(2), func(c *Comm) error {
		_, err := c.Allgatherv([]float64{1}, []int{1})
		if err == nil {
			return errors.New("wrong counts length accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecv(t *testing.T) {
	_, err := Run(smallCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []float64{3.14, 2.71})
		}
		data, src, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if src != 0 || len(data) != 2 || data[0] != 3.14 {
			return fmt.Errorf("got %v from %d", data, src)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnySourceAndTagFiltering(t *testing.T) {
	_, err := Run(smallCfg(3), func(c *Comm) error {
		switch c.Rank() {
		case 0:
			if err := c.Send(2, 5, []float64{5}); err != nil {
				return err
			}
		case 1:
			if err := c.Send(2, 6, []float64{6}); err != nil {
				return err
			}
		case 2:
			// Receive tag 6 first even if tag 5 arrives earlier.
			d6, src6, err := c.Recv(AnySource, 6)
			if err != nil {
				return err
			}
			if src6 != 1 || d6[0] != 6 {
				return fmt.Errorf("tag 6: got %v from %d", d6, src6)
			}
			d5, _, err := c.Recv(AnySource, 5)
			if err != nil {
				return err
			}
			if d5[0] != 5 {
				return fmt.Errorf("tag 5: got %v", d5)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendErrors(t *testing.T) {
	_, err := Run(smallCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(5, 0, nil); err == nil {
				return errors.New("send to invalid rank accepted")
			}
			if err := c.Send(0, 0, nil); err == nil {
				return errors.New("send to self accepted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestErrorAbortsRun(t *testing.T) {
	_, err := Run(smallCfg(4), func(c *Comm) error {
		if c.Rank() == 1 {
			return errors.New("deliberate failure")
		}
		// Other ranks block in a collective; the failure must unblock them.
		if err := c.Barrier(); err != nil && !errors.Is(err, ErrAborted) {
			return err
		}
		return nil
	})
	if err == nil || !contains(err.Error(), "deliberate failure") {
		t.Fatalf("err = %v", err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	_, err := Run(smallCfg(3), func(c *Comm) error {
		if c.Rank() == 0 {
			panic("rank crashed")
		}
		if err := c.Barrier(); err != nil && !errors.Is(err, ErrAborted) {
			return err
		}
		return nil
	})
	if err == nil || !contains(err.Error(), "rank crashed") {
		t.Fatalf("err = %v", err)
	}
}

func TestCollectiveMismatchDetected(t *testing.T) {
	_, err := Run(smallCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Barrier()
		}
		_, err := c.Allreduce([]float64{1}, Sum)
		return err
	})
	if err == nil {
		t.Fatal("mismatched collectives not detected")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		})())
}

func TestVirtualClockAdvances(t *testing.T) {
	rep, err := Run(smallCfg(4), func(c *Comm) error {
		c.ChargeCompute(0.5)
		if err := c.Barrier(); err != nil {
			return err
		}
		c.ChargeCompute(0.25)
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every rank charged 0.75s of compute; the virtual total must be at
	// least that plus nonzero comm cost.
	if rep.VirtualSeconds < 0.75 {
		t.Errorf("virtual time %v < 0.75", rep.VirtualSeconds)
	}
	if rep.VirtualSeconds > 0.76 {
		t.Errorf("virtual time %v implausibly large", rep.VirtualSeconds)
	}
	for _, rs := range rep.PerRank {
		if math.Abs(rs.ComputeSeconds-0.75) > 1e-12 {
			t.Errorf("rank %d compute %v", rs.Rank, rs.ComputeSeconds)
		}
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	// The slowest rank dictates the post-barrier clock of every rank.
	_, err := Run(smallCfg(4), func(c *Comm) error {
		c.ChargeCompute(float64(c.Rank())) // rank 3 is slowest: 3s
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Clock() < 3 {
			return fmt.Errorf("rank %d clock %v after barrier, want ≥3", c.Rank(), c.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommCostGrowsWithRanksAndSpan(t *testing.T) {
	run := func(procs, perNode int) float64 {
		cfg := Config{Procs: procs, Topology: Lonestar4(24), RanksPerNode: perNode}
		rep, err := Run(cfg, func(c *Comm) error {
			data := make([]float64, 10000)
			for i := 0; i < 10; i++ {
				if _, err := c.Allreduce(data, Sum); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.VirtualSeconds
	}
	oneNode := run(12, 12)  // 12 ranks on one node
	multiNode := run(12, 1) // 12 ranks across 12 nodes
	more := run(24, 1)      // 24 ranks across 24 nodes
	if !(multiNode > oneNode) {
		t.Errorf("inter-node comm (%v) not costlier than intra-node (%v)", multiNode, oneNode)
	}
	if !(more > multiNode) {
		t.Errorf("more ranks (%v) not costlier than fewer (%v)", more, multiNode)
	}
}

func TestMemoryAccounting(t *testing.T) {
	cfg := Config{Procs: 8, Topology: Lonestar4(2), RanksPerNode: 4}
	rep, err := Run(cfg, func(c *Comm) error {
		c.TrackMemory(1000)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalMemoryBytes != 8000 {
		t.Errorf("total memory %d", rep.TotalMemoryBytes)
	}
	if rep.MaxNodeMemoryBytes != 4000 {
		t.Errorf("max node memory %d", rep.MaxNodeMemoryBytes)
	}
}

func TestDeterminismWithoutNoise(t *testing.T) {
	run := func() float64 {
		rep, err := Run(smallCfg(6), func(c *Comm) error {
			c.ChargeOps(1e6 * float64(c.Rank()+1))
			_, err := c.Allreduce([]float64{1, 2, 3}, Sum)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.VirtualSeconds
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("modeled runs differ: %v vs %v", a, b)
	}
}

func TestNoiseWidensSpread(t *testing.T) {
	run := func(seed int64) float64 {
		cfg := smallCfg(6)
		cfg.NoiseSigma = 0.05
		cfg.Seed = seed
		rep, err := Run(cfg, func(c *Comm) error {
			c.ChargeCompute(1.0)
			return c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.VirtualSeconds
	}
	a, b := run(1), run(2)
	if a == b {
		t.Error("different seeds gave identical noisy times")
	}
	if a < 1.0 || b < 1.0 {
		t.Error("noise must only slow down, never speed up")
	}
}

func TestRealModeWallClock(t *testing.T) {
	cfg := smallCfg(2)
	cfg.Mode = Real
	rep, err := Run(cfg, func(c *Comm) error {
		time.Sleep(20 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seconds() < 0.02 {
		t.Errorf("wall seconds %v < slept 0.02", rep.Seconds())
	}
}

func TestPlacement(t *testing.T) {
	cfg := Config{Procs: 24, ThreadsPerProc: 1, Topology: Lonestar4(2), RanksPerNode: 12}
	rep, err := Run(cfg, func(c *Comm) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerRank[0].Node != 0 || rep.PerRank[11].Node != 0 || rep.PerRank[12].Node != 1 {
		t.Error("node placement wrong")
	}
	// 12 ranks/node over 2 sockets: ranks 0-5 socket 0, 6-11 socket 1.
	if rep.PerRank[5].Socket != 0 || rep.PerRank[6].Socket != 1 {
		t.Errorf("socket placement wrong: %d, %d", rep.PerRank[5].Socket, rep.PerRank[6].Socket)
	}
}

func TestRepeatedCollectiveRounds(t *testing.T) {
	// Stress the cross-round state handoff (the done*/cur* split).
	_, err := Run(smallCfg(8), func(c *Comm) error {
		for round := 0; round < 200; round++ {
			res, err := c.Allreduce([]float64{float64(round)}, Sum)
			if err != nil {
				return err
			}
			if res[0] != float64(round*8) {
				return fmt.Errorf("round %d: got %v", round, res[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReportString(t *testing.T) {
	rep, err := Run(smallCfg(2), func(c *Comm) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.String(); s == "" {
		t.Error("empty report string")
	}
}
