package cluster

import "gbpolar/internal/obs"

// Transport is the communication surface the SPMD rank bodies program
// against. Two implementations exist:
//
//   - *Comm, the in-process modeled transport of this package: ranks are
//     goroutines, communication is metered by the virtual-clock cost
//     model, and faults are injected deterministically from a FaultPlan.
//     It remains the reference simulator and drives the perf gate.
//   - *net.Comm (internal/cluster/net), a real TCP transport: ranks are
//     OS processes exchanging length-prefixed frames through a
//     coordinator, deaths are real connection losses or heartbeat
//     timeouts, and membership is elastic (ranks can rejoin mid-run).
//
// Both return errors wrapping the same typed sentinels (ErrRankDead,
// ErrTimeout, ErrAborted, ...), checkable with errors.Is, so recovery
// protocols written against Transport behave identically over goroutines
// and over sockets.
type Transport interface {
	// Rank returns this rank's index in [0, Size).
	Rank() int
	// Size returns the number of ranks (P).
	Size() int
	// Threads returns the configured threads per rank (p).
	Threads() int
	// Clock returns the rank's current time in seconds: virtual on the
	// modeled transport, wall-since-start on the real one.
	Clock() float64
	// OpsPerSecond returns the calibrated kernel rate used to convert
	// operation counts into (modeled) seconds.
	OpsPerSecond() float64
	// Obs returns the run's observer; nil when observability is off.
	Obs() *obs.Obs
	// ChargeCompute accounts seconds of single-stream compute.
	ChargeCompute(seconds float64)
	// ChargeOps accounts ops kernel evaluations at OpsPerSecond.
	ChargeOps(ops float64)
	// TrackMemory records bytes of resident per-rank data.
	TrackMemory(bytes int64)
	// NoteRecovery meters rows of re-divided work recomputed after a
	// death and the seconds charged doing so.
	NoteRecovery(rows int, seconds float64)

	// Send delivers data to rank dst with the given tag.
	Send(dst, tag int, data []float64) error
	// Recv blocks for a message from src (or AnySource) with the given
	// tag (or AnyTag), returning payload and actual source.
	Recv(src, tag int) ([]float64, int, error)

	// Barrier blocks until every live rank arrives.
	Barrier() error
	// Bcast distributes root's data to every rank.
	Bcast(root int, data []float64) ([]float64, error)
	// Reduce combines data across ranks; only root receives the result.
	Reduce(root int, data []float64, op Op) ([]float64, error)
	// Allreduce combines data element-wise and returns it to every rank.
	Allreduce(data []float64, op Op) ([]float64, error)
	// Allgatherv concatenates contributions in rank order.
	Allgatherv(contrib []float64, counts []int) ([]float64, error)

	// DeadRanks returns the ordered death list observed so far.
	DeadRanks() []int
	// MemberEvents returns the ordered membership-change log agreed so
	// far: deaths, interleaved (on elastic transports) with rejoins.
	// Every rank that completes the same collective observes the same
	// prefix, so the log is a consensus object the recovery protocol can
	// re-divide work from deterministically.
	MemberEvents() []MemberEvent
}

var _ Transport = (*Comm)(nil)

// MemberEvent is one entry of the membership event log: a death
// (Join=false) or an elastic (re)join (Join=true) of the given rank.
// The modeled in-process transport only ever emits deaths.
type MemberEvent struct {
	Rank int
	Join bool
}

// MemberEvents implements Transport: the in-process transport's log is
// its ordered dead list (no joins).
func (c *Comm) MemberEvents() []MemberEvent {
	w := c.w
	w.mu.Lock()
	defer w.mu.Unlock()
	evs := make([]MemberEvent, len(w.deadOrder))
	for i, d := range w.deadOrder {
		evs[i] = MemberEvent{Rank: d}
	}
	return evs
}

// DeadFromEvents replays a membership log and returns the ranks whose
// most recent event is a death, ordered by when they (last) died — the
// list RankDeadError carries and RedivideSpans-style protocols consume.
func DeadFromEvents(procs int, events []MemberEvent) []int {
	dead := make([]bool, procs)
	var order []int
	for _, ev := range events {
		if ev.Rank < 0 || ev.Rank >= procs {
			continue
		}
		if ev.Join {
			if dead[ev.Rank] {
				dead[ev.Rank] = false
				for i, d := range order {
					if d == ev.Rank {
						order = append(order[:i], order[i+1:]...)
						break
					}
				}
			}
		} else if !dead[ev.Rank] {
			dead[ev.Rank] = true
			order = append(order, ev.Rank)
		}
	}
	return order
}

// LiveCountFromEvents returns how many of procs ranks are alive after
// replaying the membership log.
func LiveCountFromEvents(procs int, events []MemberEvent) int {
	return procs - len(DeadFromEvents(procs, events))
}
