package cluster

import (
	"math"
	"sync"
)

// The pacer keeps the REAL execution order of ranks roughly aligned with
// their VIRTUAL clocks — a conservative parallel-discrete-event-style
// throttle. Collectives don't need it (their barrier semantics are
// order-independent), but asynchronous protocols (the inter-rank
// work-stealing of internal/core/dyndist.go) do: without pacing, the Go
// scheduler may run a virtually-slow rank to completion before a
// virtually-idle thief ever gets to ask it for work, so steal
// availability would reflect goroutine scheduling instead of the modeled
// machine.
//
// Ranks call Pace() between work quanta: the call blocks while the
// rank's clock is ahead of the minimum clock among RUNNING ranks (ranks
// blocked in Recv or in a collective are excluded — they advance only
// when messages arrive). The rank with the smallest clock always
// proceeds, so pacing cannot deadlock.

type paceState uint8

const (
	paceRunning paceState = iota
	paceBlocked
)

type pacer struct {
	mu      sync.Mutex
	cond    *sync.Cond
	enabled bool
	state   []paceState
	clocks  []float64
}

func newPacer(n int, enabled bool) *pacer {
	p := &pacer{
		enabled: enabled,
		state:   make([]paceState, n),
		clocks:  make([]float64, n),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// pace blocks rank r until its clock is within window of the minimum
// running clock.
func (p *pacer) pace(r int, clock, window float64) {
	if !p.enabled {
		return
	}
	p.mu.Lock()
	p.clocks[r] = clock
	p.state[r] = paceRunning
	// Our own advance may unblock ranks waiting on this clock.
	p.cond.Broadcast()
	for clock > p.minOther(r)+window {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// minOther returns the minimum clock among the other running ranks
// (+Inf when none — then the caller may proceed).
func (p *pacer) minOther(r int) float64 {
	min := math.Inf(1)
	for i := range p.clocks {
		if i == r || p.state[i] != paceRunning {
			continue
		}
		if p.clocks[i] < min {
			min = p.clocks[i]
		}
	}
	return min
}

// block marks rank r as waiting on communication (excluded from the
// minimum) and wakes pacers.
func (p *pacer) block(r int, clock float64) {
	if !p.enabled {
		return
	}
	p.mu.Lock()
	p.clocks[r] = clock
	p.state[r] = paceBlocked
	p.cond.Broadcast()
	p.mu.Unlock()
}

// resume marks rank r running again with its (possibly advanced) clock.
func (p *pacer) resume(r int, clock float64) {
	if !p.enabled {
		return
	}
	p.mu.Lock()
	p.clocks[r] = clock
	p.state[r] = paceRunning
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Pace cooperates with the virtual-time pacer: a rank calls it between
// work quanta when the run was configured with Paced. It is a no-op
// otherwise.
func (c *Comm) Pace() {
	c.w.pacer.pace(c.rank, c.clock, c.w.cfg.PaceWindow)
}
