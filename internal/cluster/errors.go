package cluster

import (
	"errors"
	"fmt"
)

// Sentinel errors of the communication substrate. Every error returned
// from a Comm method wraps exactly one of these, so callers can branch
// with errors.Is regardless of the formatted detail around it.
var (
	// ErrAborted is returned from communication calls on surviving ranks
	// after another rank failed with a real (non-injected) error.
	ErrAborted = errors.New("cluster: run aborted by another rank's failure")

	// ErrSelfSend is returned by Send when source and destination rank
	// coincide (the substrate has no self-delivery loopback).
	ErrSelfSend = errors.New("cluster: send to self")

	// ErrInvalidRank is returned when a rank argument is outside
	// [0, Size).
	ErrInvalidRank = errors.New("cluster: invalid rank")

	// ErrRankDead is the detection signal of the fault layer: a
	// communication call observed that one or more peer ranks died (were
	// crashed by the fault plan). The concrete error is a *RankDeadError
	// carrying the ordered dead list; errors.Is(err, ErrRankDead) is true
	// for it.
	ErrRankDead = errors.New("cluster: peer rank dead")

	// ErrTimeout is returned when a blocking communication call exceeds
	// its deadline: either the modeled retry budget of a lossy link was
	// exhausted, or the real-time stall backstop (Config.StallTimeout)
	// fired. Nothing blocks forever once a fault plan is active.
	ErrTimeout = errors.New("cluster: communication timed out")

	// ErrProtocol reports a misuse of the communication protocol itself —
	// mismatched collective kinds across ranks, inconsistent Allgatherv
	// counts, a reply to a nil request, or a malformed frame on the wire
	// transport. Unlike the fault sentinels it signals a programming or
	// framing error, never a recoverable machine failure.
	ErrProtocol = errors.New("cluster: protocol violation")
)

// RankDeadError reports dead ranks to a communication caller. Dead is
// the ordered death list (globally serialized; every rank observes the
// same order), truncated to the deaths known when the call observed the
// failure — the recovery protocol processes it sequentially so all
// survivors re-divide work identically.
type RankDeadError struct {
	// Dead holds rank indices in death order.
	Dead []int
}

// Error implements error.
func (e *RankDeadError) Error() string {
	return fmt.Sprintf("cluster: ranks %v dead", e.Dead)
}

// Is makes errors.Is(err, ErrRankDead) true.
func (e *RankDeadError) Is(target error) bool { return target == ErrRankDead }

// AsRankDead unwraps err into its *RankDeadError if it carries one.
func AsRankDead(err error) (*RankDeadError, bool) {
	var rd *RankDeadError
	if errors.As(err, &rd) {
		return rd, true
	}
	return nil, false
}
