package cluster

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// Cancelling the context while every rank is blocked in communication
// aborts all of them with ErrAborted, returns from RunContext, and leaks
// no goroutines.
func TestRunContextCancelUnblocksAndDoesNotLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	var aborted atomic.Int32
	done := make(chan struct{})
	var rep *Report
	var err error
	go func() {
		defer close(done)
		rep, err = RunContext(ctx, Config{Procs: 4}, func(c *Comm) error {
			// Nobody ever sends: every rank parks in Recv until the abort.
			_, _, rerr := c.Recv(AnySource, AnyTag)
			if errors.Is(rerr, ErrAborted) {
				aborted.Add(1)
			}
			return rerr
		})
	}()

	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RunContext did not return after cancel")
	}

	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("want ErrAborted in chain, got %v", err)
	}
	if got := aborted.Load(); got != 4 {
		t.Fatalf("want all 4 ranks to observe ErrAborted, got %d", got)
	}
	if rep == nil {
		t.Fatal("aborted run returned no best-effort report")
	}

	// Leak check: rank goroutines and the ctx watcher must all be gone.
	// Poll — goroutine teardown is asynchronous after wg.Wait returns.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancelled RunContext: baseline %d, now %d",
				baseline, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// A context that is never cancelled changes nothing: RunContext behaves
// exactly like Run.
func TestRunContextNilAndBackground(t *testing.T) {
	for _, ctx := range []context.Context{nil, context.Background()} {
		rep, err := RunContext(ctx, Config{Procs: 2}, func(c *Comm) error {
			_, err := c.Allreduce([]float64{1}, Sum)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep == nil {
			t.Fatal("nil report from successful run")
		}
	}
}

// An already-cancelled context aborts the run before any rank makes
// progress past its first communication call.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, Config{Procs: 2}, func(c *Comm) error {
		for {
			if _, err := c.Allreduce([]float64{1}, Sum); err != nil {
				return err
			}
		}
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("want ErrAborted, got %v", err)
	}
}
