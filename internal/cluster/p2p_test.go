package cluster

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestTryRecvNonBlocking(t *testing.T) {
	_, err := Run(smallCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			// No message with tag 99 ever exists: must not block.
			if _, _, ok, err := c.TryRecv(AnySource, 99); err != nil || ok {
				t.Errorf("TryRecv with unmatched tag: ok=%v err=%v", ok, err)
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			// Rank 1 sent before the barrier: must be there now.
			data, from, ok, err := c.TryRecv(1, 5)
			if err != nil {
				return err
			}
			if !ok || from != 1 || data[0] != 9 {
				t.Errorf("TryRecv after send: ok=%v from=%d data=%v", ok, from, data)
			}
			return nil
		}
		if err := c.Send(0, 5, []float64{9}); err != nil {
			return err
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvMsgMetadataAndAnyTag(t *testing.T) {
	_, err := Run(smallCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 7, []float64{1, 2}); err != nil {
				return err
			}
			return nil
		}
		msg, err := c.RecvMsg(AnySource, AnyTag, true)
		if err != nil {
			return err
		}
		if msg.Src != 0 || msg.Tag != 7 || len(msg.Data) != 2 {
			t.Errorf("msg = %+v", msg)
		}
		if msg.SentAt < 0 {
			t.Errorf("SentAt = %v", msg.SentAt)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReplyStampedIgnoresServerClock(t *testing.T) {
	// The server burns lots of virtual compute before answering; the
	// client's clock after the reply must reflect the request round trip,
	// NOT the server's inflated clock.
	_, err := Run(smallCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, nil); err != nil {
				return err
			}
			before := c.Clock()
			if _, _, err := c.Recv(1, 2); err != nil {
				return err
			}
			// Round trip ≈ a few latencies, far below the server's 10 s.
			if c.Clock() > before+0.001 {
				t.Errorf("client clock jumped to %v after stamped reply", c.Clock())
			}
			return nil
		}
		req, err := c.RecvMsg(0, 1, true)
		if err != nil {
			return err
		}
		c.ChargeCompute(10) // server is busy for 10 virtual seconds
		return c.ReplyStamped(req, 2, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReplyStampedNilRequest(t *testing.T) {
	_, err := Run(smallCfg(2), func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.ReplyStamped(nil, 1, nil); err == nil {
				t.Error("nil request accepted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHeteroSigmaPersistentAndDeterministic(t *testing.T) {
	run := func() []float64 {
		cfg := smallCfg(4)
		cfg.HeteroSigma = 1.0
		cfg.Seed = 7
		out := make([]float64, 4)
		_, err := Run(cfg, func(c *Comm) error {
			c.ChargeCompute(1)
			c.ChargeCompute(1)
			out[c.Rank()] = c.Clock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	distinct := map[float64]bool{}
	for r := range a {
		if a[r] != b[r] {
			t.Errorf("rank %d hetero slowdown not deterministic: %v vs %v", r, a[r], b[r])
		}
		if a[r] < 2 {
			t.Errorf("rank %d clock %v below unslowed 2 s", r, a[r])
		}
		// Persistent: both charges slowed equally ⇒ clock = 2·(1+f).
		distinct[a[r]] = true
	}
	if len(distinct) < 2 {
		t.Error("all ranks equally slow — hetero factors not varying")
	}
}

func TestPaceOrdersExecution(t *testing.T) {
	// With pacing on, a rank that charges big compute must not complete
	// its quanta before a virtually-slower... rather: quanta complete in
	// virtual-clock order across ranks (within the window).
	cfg := smallCfg(2)
	cfg.Paced = true
	var order []int
	var mu int64
	_, err := Run(cfg, func(c *Comm) error {
		quantum := 1.0
		if c.Rank() == 1 {
			quantum = 10.0 // rank 1 is virtually 10× slower per quantum
		}
		for i := 0; i < 3; i++ {
			c.Pace()
			c.ChargeCompute(quantum)
			for !atomic.CompareAndSwapInt64(&mu, 0, 1) {
			}
			order = append(order, c.Rank())
			atomic.StoreInt64(&mu, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0's three cheap quanta (clocks 1,2,3) must all complete before
	// rank 1's last quantum (clock 30); with strict pacing rank 1's
	// second quantum (starting at clock 10) cannot precede rank 0's
	// first (clock 0).
	if len(order) != 6 {
		t.Fatalf("order = %v", order)
	}
	first := order[0]
	if first != 0 {
		// rank 0 paces at clock 0, rank 1 at clock 0: either may start,
		// but rank 1 cannot run its SECOND quantum before rank 0 ran at
		// least once.
		second := -1
		for i, r := range order {
			if r == 1 && i > 0 && order[i-1] == 1 {
				second = i
				break
			}
		}
		if second == 1 {
			t.Errorf("rank 1 ran twice before rank 0 ran at all: %v", order)
		}
	}
}

func TestPaceNoopWhenDisabled(t *testing.T) {
	_, err := Run(smallCfg(2), func(c *Comm) error {
		c.Pace() // must not block or panic when Paced is false
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHeteroZeroMeansNoSlowdown(t *testing.T) {
	cfg := smallCfg(2)
	_, err := Run(cfg, func(c *Comm) error {
		c.ChargeCompute(1)
		if math.Abs(c.Clock()-1) > 1e-12 {
			t.Errorf("clock %v, want exactly 1", c.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
