package nblist

import (
	"errors"
	"math/rand"
	"testing"

	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
)

func randPts(rng *rand.Rand, n int, scale float64) []geom.Vec3 {
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.V(rng.Float64()*scale, rng.Float64()*scale, rng.Float64()*scale)
	}
	return pts
}

// bruteForcePairs counts pairs within cutoff the quadratic way.
func bruteForcePairs(pts []geom.Vec3, cutoff float64) map[[2]int32]bool {
	out := make(map[[2]int32]bool)
	c2 := cutoff * cutoff
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist2(pts[j]) <= c2 {
				out[[2]int32{int32(i), int32(j)}] = true
			}
		}
	}
	return out
}

func TestBuildMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 10; trial++ {
		pts := randPts(rng, 200+rng.Intn(300), 30)
		cutoff := 2 + rng.Float64()*8
		l, err := Build(pts, cutoff, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForcePairs(pts, cutoff)
		got := make(map[[2]int32]bool)
		l.ForEachPair(func(i, j int32) {
			if i >= j {
				t.Fatalf("pair (%d,%d) not half-ordered", i, j)
			}
			if got[[2]int32{i, j}] {
				t.Fatalf("pair (%d,%d) duplicated", i, j)
			}
			got[[2]int32{i, j}] = true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d pairs, want %d", trial, len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("missing pair %v", p)
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, 5, Options{}); err == nil {
		t.Error("empty input should error")
	}
	pts := randPts(rand.New(rand.NewSource(1)), 10, 5)
	if _, err := Build(pts, 0, Options{}); err == nil {
		t.Error("zero cutoff should error")
	}
	if _, err := Build(pts, -3, Options{}); err == nil {
		t.Error("negative cutoff should error")
	}
}

func TestMemoryBudgetOOM(t *testing.T) {
	m := molecule.GenProtein("oom", 2000, 52)
	pts := m.Positions()
	// Unbounded: fine.
	l, err := Build(pts, 12, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A budget of half the real usage must trip ErrOutOfMemory.
	_, err = Build(pts, 12, Options{MemoryBudgetBytes: l.MemoryBytes() / 2})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
}

func TestPairCountGrowsCubicallyWithCutoff(t *testing.T) {
	// The paper: nblist size grows cubically with the cutoff. For a bulk
	// molecule the pair count at cutoff 2c should be ≈8× the count at c.
	m := molecule.GenProtein("cubic", 6000, 53)
	pts := m.Positions()
	small, err := Build(pts, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build(pts, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(big.NumPairs) / float64(small.NumPairs)
	if ratio < 4.5 || ratio > 9 {
		t.Errorf("pair ratio for 2x cutoff = %.2f, expected ≈8 (surface effects allow ≥4.5)", ratio)
	}
}

func TestSinglePoint(t *testing.T) {
	l, err := Build([]geom.Vec3{geom.V(0, 0, 0)}, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l.NumPairs != 0 {
		t.Errorf("single point has %d pairs", l.NumPairs)
	}
}

func TestCoincidentPoints(t *testing.T) {
	pts := make([]geom.Vec3, 20)
	l, err := Build(pts, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(20 * 19 / 2); l.NumPairs != want {
		t.Errorf("coincident pairs = %d, want %d", l.NumPairs, want)
	}
}

func BenchmarkBuild5k(b *testing.B) {
	m := molecule.GenProtein("bench", 5000, 54)
	pts := m.Positions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(pts, 10, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
