// Package nblist implements cutoff-based nonbonded neighbor lists — the
// data structure used by the baseline MD packages (Amber, Gromacs, NAMD,
// Tinker) that the paper's octree replaces (Section II, "Octrees vs.
// Nblists").
//
// The list stores, per atom, every other atom within the cutoff. Its size
// grows linearly with the number of atoms and CUBICALLY with the cutoff,
// and the paper's observation that "MD implementations that use nblists
// run out of memory for molecules with millions of atoms" is reproduced
// via an explicit memory budget: Build fails with ErrOutOfMemory when the
// pair list exceeds it.
package nblist

import (
	"errors"
	"fmt"
	"math"

	"gbpolar/internal/geom"
)

// ErrOutOfMemory is returned when the pair list exceeds the memory
// budget, mirroring the allocation failures of the baseline packages on
// large molecules (Section V.D: Tinker and GBr⁶ fail beyond ≈12–13k
// atoms; Section V.F: both fail on CMV).
var ErrOutOfMemory = errors.New("nblist: pair list exceeds memory budget")

// List is a half neighbor list: Pairs[i] holds the neighbors j > i of
// atom i that lie within Cutoff.
type List struct {
	Cutoff float64
	Pairs  [][]int32
	// NumPairs is the total number of stored pairs.
	NumPairs int64
}

// Options configures construction.
type Options struct {
	// MemoryBudgetBytes bounds the size of the pair list (≤0 = no limit).
	MemoryBudgetBytes int64
}

// pairBytes is the accounting cost of one stored pair (index plus the
// amortized slice overhead).
const pairBytes = 8

// MemoryBytes returns the accounted size of the pair list.
func (l *List) MemoryBytes() int64 { return l.NumPairs * pairBytes }

// Build constructs the neighbor list with a cell grid (cells of side
// cutoff, 27-cell stencil), O(M·k) where k is the mean neighbor count —
// but k itself grows with cutoff³, which is the scaling the paper
// criticizes.
func Build(pts []geom.Vec3, cutoff float64, opts Options) (*List, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("nblist: empty point set")
	}
	if cutoff <= 0 || math.IsNaN(cutoff) || math.IsInf(cutoff, 0) {
		return nil, fmt.Errorf("nblist: invalid cutoff %g", cutoff)
	}
	bounds := geom.Bound(pts)
	size := bounds.Size()
	nx := cellCount(size.X, cutoff)
	ny := cellCount(size.Y, cutoff)
	nz := cellCount(size.Z, cutoff)

	cellOf := func(p geom.Vec3) (int, int, int) {
		cx := int((p.X - bounds.Min.X) / cutoff)
		cy := int((p.Y - bounds.Min.Y) / cutoff)
		cz := int((p.Z - bounds.Min.Z) / cutoff)
		return clampInt(cx, 0, nx-1), clampInt(cy, 0, ny-1), clampInt(cz, 0, nz-1)
	}

	// Bucket atoms into cells (counting sort into a flat layout).
	nCells := nx * ny * nz
	idx := func(cx, cy, cz int) int { return (cz*ny+cy)*nx + cx }
	counts := make([]int32, nCells+1)
	for _, p := range pts {
		cx, cy, cz := cellOf(p)
		counts[idx(cx, cy, cz)+1]++
	}
	for c := 1; c <= nCells; c++ {
		counts[c] += counts[c-1]
	}
	cellAtoms := make([]int32, len(pts))
	fill := make([]int32, nCells)
	for i, p := range pts {
		c := func() int { cx, cy, cz := cellOf(p); return idx(cx, cy, cz) }()
		cellAtoms[counts[c]+fill[c]] = int32(i)
		fill[c]++
	}

	l := &List{Cutoff: cutoff, Pairs: make([][]int32, len(pts))}
	cut2 := cutoff * cutoff
	for i := range pts {
		cx, cy, cz := cellOf(pts[i])
		var nbrs []int32
		for dz := -1; dz <= 1; dz++ {
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					ox, oy, oz := cx+dx, cy+dy, cz+dz
					if ox < 0 || oy < 0 || oz < 0 || ox >= nx || oy >= ny || oz >= nz {
						continue
					}
					c := idx(ox, oy, oz)
					for _, j := range cellAtoms[counts[c]:counts[c+1]] {
						if j <= int32(i) {
							continue
						}
						if pts[i].Dist2(pts[j]) <= cut2 {
							nbrs = append(nbrs, j)
						}
					}
				}
			}
		}
		l.Pairs[i] = nbrs
		l.NumPairs += int64(len(nbrs))
		if opts.MemoryBudgetBytes > 0 && l.MemoryBytes() > opts.MemoryBudgetBytes {
			return nil, fmt.Errorf("%w: %d pairs (%d bytes) at atom %d/%d, budget %d bytes",
				ErrOutOfMemory, l.NumPairs, l.MemoryBytes(), i, len(pts), opts.MemoryBudgetBytes)
		}
	}
	return l, nil
}

func cellCount(extent, cutoff float64) int {
	n := int(extent/cutoff) + 1
	if n < 1 {
		return 1
	}
	return n
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ForEachPair calls fn(i, j) for every stored pair (i < j).
func (l *List) ForEachPair(fn func(i, j int32)) {
	for i, nbrs := range l.Pairs {
		for _, j := range nbrs {
			fn(int32(i), j)
		}
	}
}
