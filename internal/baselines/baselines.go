// Package baselines re-implements the algorithmic approach of each GB
// package the paper compares against (Table II): Amber 12 (HCT,
// all-pairs, MPI), Gromacs 4.5.3 (HCT, cutoff nblist, MPI), NAMD 2.9
// (OBC, cutoff nblist, MPI, with the paper's subtract-two-runs
// measurement overhead), Tinker 6.0 (Still-style, all-pairs, OpenMP-like
// static shared-memory parallelism) and GBr⁶ (volume-based r⁶, serial).
//
// The comparison the paper draws is between algorithm classes —
// quadratic/cutoff pairwise over nblists versus the hierarchical
// O(M log M) octree — so each baseline here executes its real pairwise
// algorithm and is metered by the same virtual clock as the octree
// runners. Per-package cost multipliers (Spec.Efficiency) account for the
// implementation-maturity differences between Fortran/C++ production
// codes that a re-implementation cannot reproduce microarchitecturally;
// they are scalar constants calibrated once against the paper's observed
// ratios and documented in EXPERIMENTS.md. All scaling behaviour —
// growth with M, crossovers, out-of-memory failures — comes from the
// executed algorithms, not from the constants.
package baselines

import (
	"errors"
	"fmt"
	"time"

	"gbpolar/internal/cluster"
	"gbpolar/internal/gbmodels"
	"gbpolar/internal/molecule"
	"gbpolar/internal/nblist"
)

// ErrAtomLimit reports a molecule beyond a package's compiled-in or
// memory-bound capacity (the paper: Tinker fails >12k atoms, GBr⁶ >13k,
// both fail on CMV).
var ErrAtomLimit = errors.New("baselines: molecule exceeds package capacity")

// Spec describes one simulated package.
type Spec struct {
	// Name as reported in the paper's Table II.
	Name string
	// GBModel is the Born-radius flavor (HCT/OBC/STILL/VR6).
	GBModel string
	// Parallelism is the Table II description.
	Parallelism string
	// Efficiency multiplies per-op cost (1.0 = the calibrated kernel
	// rate; >1 = slower per op). Calibrated against the paper's Figure 8
	// ratios; see the package comment.
	Efficiency float64
	// Cutoff truncates pair interactions (Å); 0 = all pairs (Amber's GB
	// default behaviour, and the Still/GBr⁶ serial codes).
	Cutoff float64
	// AtomLimit fails molecules larger than this (0 = unlimited).
	AtomLimit int
	// Shared marks OpenMP-style shared-memory-only packages (Tinker).
	Shared bool
	// Serial marks single-core packages (GBr⁶).
	Serial bool
}

// Options configures a baseline run.
type Options struct {
	// Cores is the parallel width (ranks for MPI packages, threads for
	// shared packages; ignored for serial ones).
	Cores int
	// RanksPerNode places MPI ranks (default 12, one node's worth).
	RanksPerNode int
	// OpsPerSecond is the calibrated base kernel rate (0 = calibrate).
	OpsPerSecond float64
	// MemoryBudgetBytes bounds the per-run nblist memory for cutoff
	// packages (0 = no bound).
	MemoryBudgetBytes int64
	// Cutoff overrides the package's pair-interaction cutoff in Å
	// (0 = the package default; negative = force all-pairs). It models
	// the paper's Section V.F cutoff experiments on CMV.
	Cutoff float64
	// MPIStartup is the per-run job-launch overhead charged to
	// distributed packages (default 1 ms).
	MPIStartup time.Duration
	// EpsSolv is the solvent dielectric (default 80).
	EpsSolv float64
	// Mode selects modeled vs real cluster accounting.
	Mode cluster.Mode
}

func (o Options) withDefaults() Options {
	if o.Cores <= 0 {
		o.Cores = 1
	}
	if o.RanksPerNode <= 0 {
		o.RanksPerNode = 12
	}
	if o.EpsSolv <= 1 {
		o.EpsSolv = 80
	}
	if o.MPIStartup == 0 {
		o.MPIStartup = time.Millisecond
	}
	return o
}

// Result is a baseline run outcome.
type Result struct {
	// Epol is the polarization energy in kcal/mol.
	Epol float64
	// BornRadii holds the package's effective Born radii.
	BornRadii []float64
	// ModelSeconds is the modeled runtime (comparable with core.Result).
	ModelSeconds float64
	// Ops counts kernel evaluations across ranks.
	Ops float64
	// Report carries cluster accounting for MPI packages.
	Report *cluster.Report
}

// Pkg is one runnable simulated package.
type Pkg struct {
	Spec Spec
}

// Standard package roster (Table II).
var (
	Amber   = &Pkg{Spec{Name: "Amber 12", GBModel: "HCT", Parallelism: "Distributed (MPI)", Efficiency: 1.0}}
	Gromacs = &Pkg{Spec{Name: "Gromacs 4.5.3", GBModel: "HCT", Parallelism: "Distributed (MPI)", Efficiency: 0.37}}
	NAMD    = &Pkg{Spec{Name: "NAMD 2.9", GBModel: "OBC", Parallelism: "Distributed (MPI)", Efficiency: 0.55}}
	Tinker  = &Pkg{Spec{Name: "Tinker 6.0", GBModel: "STILL", Parallelism: "Shared (OpenMP)", Efficiency: 1.6, AtomLimit: 12000, Shared: true}}
	GBr6    = &Pkg{Spec{Name: "GBr6", GBModel: "VR6", Parallelism: "Serial", Efficiency: 1.2, AtomLimit: 13000, Serial: true}}
)

// All returns the roster in the paper's Table II order.
func All() []*Pkg { return []*Pkg{Gromacs, NAMD, Amber, Tinker, GBr6} }

// Run computes the GB polarization energy the way the simulated package
// would.
func (p *Pkg) Run(mol *molecule.Molecule, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if p.Spec.AtomLimit > 0 && mol.NumAtoms() > p.Spec.AtomLimit {
		return nil, fmt.Errorf("%w: %s handles ≤%d atoms, molecule has %d",
			ErrAtomLimit, p.Spec.Name, p.Spec.AtomLimit, mol.NumAtoms())
	}
	switch {
	case p.Spec.Serial:
		return p.runSerial(mol, opts)
	case p.Spec.Shared:
		return p.runShared(mol, opts)
	default:
		return p.runMPI(mol, opts)
	}
}

// rate returns the package's effective ops/second.
func (p *Pkg) rate(opts Options) float64 {
	base := opts.OpsPerSecond
	if base <= 0 {
		base = 100e6
	}
	return base / p.Spec.Efficiency
}

// measureOverhead is the extra factor for NAMD: the paper could not
// isolate GB energy, so it ran the full electrostatics twice and
// subtracted — doubling the measured cost (Section V.C).
func (p *Pkg) measureOverhead() float64 {
	if p.Spec.Name == "NAMD 2.9" {
		return 2.0
	}
	return 1.0
}

// radiiRows computes the package's Born radii for rows [lo,hi), either
// all-pairs or over a shared cutoff list, returning the radii and the op
// count expended.
func (p *Pkg) radiiRows(mol *molecule.Molecule, nb *nblist.List, lo, hi int) ([]float64, float64) {
	m := float64(mol.NumAtoms())
	switch p.Spec.GBModel {
	case "HCT":
		if nb == nil {
			inv := gbmodels.HCTInverseRadiiRange(mol, lo, hi, gbmodels.HCTDescreenScale)
			return gbmodels.HCTRadiiFromInverse(mol, lo, inv), float64(hi-lo) * m
		}
		inv, ops := hctInverseRows(mol, nb, lo, hi, gbmodels.HCTDescreenScale)
		return gbmodels.HCTRadiiFromInverse(mol, lo, inv), ops
	case "OBC":
		if nb == nil {
			inv := gbmodels.HCTInverseRadiiRange(mol, lo, hi, gbmodels.OBCDescreenScale)
			return gbmodels.OBCRadiiFromInverse(mol, lo, inv), float64(hi-lo) * m
		}
		inv, ops := hctInverseRows(mol, nb, lo, hi, gbmodels.OBCDescreenScale)
		return gbmodels.OBCRadiiFromInverse(mol, lo, inv), ops
	case "STILL":
		return gbmodels.StillRadiiRange(mol, lo, hi), float64(hi-lo) * m
	case "VR6":
		return gbmodels.VR6RadiiRange(mol, lo, hi), float64(hi-lo) * m
	}
	panic("baselines: unknown GB model " + p.Spec.GBModel)
}

// hctInverseRows accumulates the HCT descreening sum for rows [lo,hi)
// from a half neighbor list (contributions flow to whichever endpoint is
// owned).
func hctInverseRows(mol *molecule.Molecule, nb *nblist.List, lo, hi int, scale float64) ([]float64, float64) {
	inv := make([]float64, hi-lo)
	for k := range inv {
		inv[k] = 1 / (mol.Atoms[lo+k].Radius - gbmodels.DielectricOffset)
	}
	var ops float64
	nb.ForEachPair(func(i, j int32) {
		ii, jj := int(i), int(j)
		r := mol.Atoms[ii].Pos.Dist(mol.Atoms[jj].Pos)
		if ii >= lo && ii < hi {
			inv[ii-lo] -= 0.5 * gbmodels.HCTIntegral(r,
				mol.Atoms[ii].Radius-gbmodels.DielectricOffset,
				scale*(mol.Atoms[jj].Radius-gbmodels.DielectricOffset))
			ops++
		}
		if jj >= lo && jj < hi {
			inv[jj-lo] -= 0.5 * gbmodels.HCTIntegral(r,
				mol.Atoms[jj].Radius-gbmodels.DielectricOffset,
				scale*(mol.Atoms[ii].Radius-gbmodels.DielectricOffset))
			ops++
		}
	})
	return inv, ops
}

// energyRows returns the raw ordered-pair energy sum for rows [lo,hi)
// (all pairs, or cutoff-truncated plus self terms) and the ops expended.
func energyRows(mol *molecule.Molecule, radii []float64, nb *nblist.List, lo, hi int) (float64, float64) {
	if nb == nil {
		return gbmodels.EnergyRange(mol, radii, lo, hi),
			float64(hi-lo) * float64(mol.NumAtoms())
	}
	var e, ops float64
	for i := lo; i < hi; i++ {
		// Self term.
		e += mol.Atoms[i].Charge * mol.Atoms[i].Charge / radii[i]
		ops++
	}
	nb.ForEachPair(func(i, j int32) {
		ii, jj := int(i), int(j)
		inRange := 0
		if ii >= lo && ii < hi {
			inRange++
		}
		if jj >= lo && jj < hi {
			inRange++
		}
		if inRange == 0 {
			return
		}
		r2 := mol.Atoms[ii].Pos.Dist2(mol.Atoms[jj].Pos)
		v := mol.Atoms[ii].Charge * mol.Atoms[jj].Charge / gbmodels.FGB(r2, radii[ii], radii[jj])
		// The ordered double sum counts each unordered pair twice; a rank
		// owning both endpoints contributes both orders.
		e += float64(inRange) * v
		ops += float64(inRange)
	})
	return e, ops
}
