package baselines

import (
	"errors"
	"math"
	"testing"

	"gbpolar/internal/gbmodels"
	"gbpolar/internal/molecule"
)

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

func TestRosterSpecsMatchTableII(t *testing.T) {
	want := map[string]struct{ model, par string }{
		"Gromacs 4.5.3": {"HCT", "Distributed (MPI)"},
		"NAMD 2.9":      {"OBC", "Distributed (MPI)"},
		"Amber 12":      {"HCT", "Distributed (MPI)"},
		"Tinker 6.0":    {"STILL", "Shared (OpenMP)"},
		"GBr6":          {"VR6", "Serial"},
	}
	for _, p := range All() {
		w, ok := want[p.Spec.Name]
		if !ok {
			t.Fatalf("unexpected package %q", p.Spec.Name)
		}
		if p.Spec.GBModel != w.model || p.Spec.Parallelism != w.par {
			t.Errorf("%s: %s/%s, want %s/%s",
				p.Spec.Name, p.Spec.GBModel, p.Spec.Parallelism, w.model, w.par)
		}
	}
	if len(All()) != 5 {
		t.Errorf("roster has %d packages", len(All()))
	}
}

func TestAllPackagesProduceNegativeEnergy(t *testing.T) {
	mol := molecule.GenProtein("base", 400, 101)
	for _, p := range All() {
		res, err := p.Run(mol, Options{Cores: 4})
		if err != nil {
			t.Fatalf("%s: %v", p.Spec.Name, err)
		}
		if res.Epol >= 0 {
			t.Errorf("%s: E_pol = %v, want negative", p.Spec.Name, res.Epol)
		}
		if res.ModelSeconds <= 0 || res.Ops <= 0 {
			t.Errorf("%s: no time/ops accounted (%v, %v)", p.Spec.Name, res.ModelSeconds, res.Ops)
		}
		if len(res.BornRadii) != mol.NumAtoms() {
			t.Errorf("%s: %d radii", p.Spec.Name, len(res.BornRadii))
		}
	}
}

func TestAmberMatchesSerialHCTReference(t *testing.T) {
	mol := molecule.GenProtein("ref", 250, 102)
	res, err := Amber.Run(mol, Options{Cores: 3})
	if err != nil {
		t.Fatal(err)
	}
	inv := gbmodels.HCTInverseRadiiRange(mol, 0, mol.NumAtoms(), gbmodels.HCTDescreenScale)
	radii := gbmodels.HCTRadiiFromInverse(mol, 0, inv)
	want := gbmodels.EnergyAllPairs(mol, radii, 80)
	if relErr(res.Epol, want) > 1e-9 {
		t.Errorf("Amber E=%v, all-pairs HCT reference %v", res.Epol, want)
	}
	for i := range radii {
		if relErr(res.BornRadii[i], radii[i]) > 1e-12 {
			t.Fatalf("radius %d: %v vs %v", i, res.BornRadii[i], radii[i])
		}
	}
}

func TestMPIResultIndependentOfRankCount(t *testing.T) {
	mol := molecule.GenProtein("ranks", 300, 103)
	e1, err := Amber.Run(mol, Options{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	e6, err := Amber.Run(mol, Options{Cores: 6})
	if err != nil {
		t.Fatal(err)
	}
	if relErr(e1.Epol, e6.Epol) > 1e-9 {
		t.Errorf("energy depends on rank count: %v vs %v", e1.Epol, e6.Epol)
	}
	if !(e6.ModelSeconds < e1.ModelSeconds) {
		t.Errorf("6 cores (%v s) not faster than 1 (%v s)", e6.ModelSeconds, e1.ModelSeconds)
	}
}

func TestAtomLimits(t *testing.T) {
	big := molecule.GenProtein("big", 13500, 104)
	if _, err := Tinker.Run(big, Options{Cores: 2}); !errors.Is(err, ErrAtomLimit) {
		t.Errorf("Tinker accepted %d atoms: %v", big.NumAtoms(), err)
	}
	if _, err := GBr6.Run(big, Options{Cores: 1}); !errors.Is(err, ErrAtomLimit) {
		t.Errorf("GBr6 accepted %d atoms: %v", big.NumAtoms(), err)
	}
	// Amber has no compiled limit.
	small := molecule.GenProtein("ok", 500, 105)
	if _, err := Amber.Run(small, Options{Cores: 2}); err != nil {
		t.Errorf("Amber failed on small molecule: %v", err)
	}
}

func TestCutoffPackagesOOMOnBudget(t *testing.T) {
	mol := molecule.GenProtein("oom", 4000, 106)
	// Tiny budget: a forced 25 Å list cannot fit (the paper's Section
	// V.F cutoff experiments on CMV).
	_, err := Gromacs.Run(mol, Options{Cores: 4, Cutoff: 25, MemoryBudgetBytes: 10_000})
	if err == nil {
		t.Fatal("Gromacs built a 25 Å list in 10 kB")
	}
	// Generous budget: fine.
	if _, err := Gromacs.Run(mol, Options{Cores: 4, Cutoff: 25, MemoryBudgetBytes: 1 << 30}); err != nil {
		t.Fatalf("Gromacs failed with 1 GiB budget: %v", err)
	}
	// A tiny cutoff (the paper: Gromacs ran CMV only with cutoff ≤ 2)
	// fits even in the small budget.
	if _, err := Gromacs.Run(mol, Options{Cores: 4, Cutoff: 2, MemoryBudgetBytes: 1 << 20}); err != nil {
		t.Fatalf("Gromacs failed with cutoff 2: %v", err)
	}
}

func TestAmberSlowerThanGromacsFasterThanNothing(t *testing.T) {
	// Figure 8 ordering at one node: Gromacs < Amber < NAMD in time.
	mol := molecule.GenProtein("order", 2500, 107)
	amber, err := Amber.Run(mol, Options{Cores: 12})
	if err != nil {
		t.Fatal(err)
	}
	gromacs, err := Gromacs.Run(mol, Options{Cores: 12})
	if err != nil {
		t.Fatal(err)
	}
	namd, err := NAMD.Run(mol, Options{Cores: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !(gromacs.ModelSeconds < amber.ModelSeconds) {
		t.Errorf("Gromacs (%v) not faster than Amber (%v)", gromacs.ModelSeconds, amber.ModelSeconds)
	}
	if !(amber.ModelSeconds < namd.ModelSeconds) {
		t.Errorf("Amber (%v) not faster than NAMD (%v)", amber.ModelSeconds, namd.ModelSeconds)
	}
}

func TestSerialAndSharedScaling(t *testing.T) {
	mol := molecule.GenProtein("scale", 1200, 108)
	t1, err := Tinker.Run(mol, Options{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	t4, err := Tinker.Run(mol, Options{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !(t4.ModelSeconds < t1.ModelSeconds) {
		t.Errorf("Tinker 4 threads (%v) not faster than 1 (%v)", t4.ModelSeconds, t1.ModelSeconds)
	}
	// GBr6 ignores cores.
	g1, err := GBr6.Run(mol, Options{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	g8, err := GBr6.Run(mol, Options{Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	if relErr(g1.ModelSeconds, g8.ModelSeconds) > 1e-9 {
		t.Errorf("serial GBr6 time changed with cores: %v vs %v", g1.ModelSeconds, g8.ModelSeconds)
	}
}

func TestModelsDifferAcrossPackages(t *testing.T) {
	// Figure 9: different GB flavors give different energies.
	mol := molecule.GenProtein("flavors", 500, 109)
	amber, err := Amber.Run(mol, Options{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	tinker, err := Tinker.Run(mol, Options{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	gbr6, err := GBr6.Run(mol, Options{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if relErr(amber.Epol, tinker.Epol) < 1e-6 {
		t.Error("Amber and Tinker energies identical — models not distinct")
	}
	if relErr(amber.Epol, gbr6.Epol) < 1e-6 {
		t.Error("Amber and GBr6 energies identical — models not distinct")
	}
}

func TestQuadraticGrowth(t *testing.T) {
	// Amber's all-pairs ops must grow ≈quadratically with M.
	small := molecule.GenProtein("q1", 500, 110)
	big := molecule.GenProtein("q2", 2000, 111)
	rs, err := Amber.Run(small, Options{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Amber.Run(big, Options{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	ratio := rb.Ops / rs.Ops
	if ratio < 12 || ratio > 20 { // (2000/500)² = 16
		t.Errorf("ops ratio %v for 4× atoms, want ≈16", ratio)
	}
}
