package baselines

import (
	"fmt"

	"gbpolar/internal/cluster"
	"gbpolar/internal/gbmodels"
	"gbpolar/internal/molecule"
	"gbpolar/internal/nblist"
	"gbpolar/internal/sched"
)

// buildList constructs the cutoff neighbor list for cutoff-based
// packages (nil for all-pairs packages). The memory budget reproduces
// the nblist OOM failures of Section V.F.
func (p *Pkg) buildList(mol *molecule.Molecule, opts Options) (*nblist.List, error) {
	cutoff := p.Spec.Cutoff
	if opts.Cutoff != 0 {
		cutoff = opts.Cutoff
	}
	if cutoff <= 0 {
		return nil, nil
	}
	nb, err := nblist.Build(mol.Positions(), cutoff,
		nblist.Options{MemoryBudgetBytes: opts.MemoryBudgetBytes})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.Spec.Name, err)
	}
	return nb, nil
}

func segment(n, p, i int) (int, int) { return n * i / p, n * (i + 1) / p }

// runMPI executes the package under atom-based MPI division: rows of the
// pairwise sums are split across ranks, radii are allgathered, energies
// reduced — the parallel structure of Amber/Gromacs/NAMD GB.
func (p *Pkg) runMPI(mol *molecule.Molecule, opts Options) (*Result, error) {
	nb, err := p.buildList(mol, opts)
	if err != nil {
		return nil, err
	}
	nodes := (opts.Cores + opts.RanksPerNode - 1) / opts.RanksPerNode
	cfg := cluster.Config{
		Procs:        opts.Cores,
		RanksPerNode: opts.RanksPerNode,
		Topology:     cluster.Lonestar4(nodes),
		Mode:         opts.Mode,
		OpsPerSecond: p.rate(opts),
		StartupCost:  opts.MPIStartup,
	}
	M := mol.NumAtoms()
	radiiOut := make([]float64, M)
	var epolOut float64
	var totalOps float64
	overhead := p.measureOverhead()

	rep, err := cluster.Run(cfg, func(c *cluster.Comm) error {
		P, rank := c.Size(), c.Rank()
		c.TrackMemory(mol.MemoryBytes())
		if nb != nil {
			// Domain-decomposed packages hold roughly 1/P of the list.
			c.TrackMemory(nb.MemoryBytes() / int64(P))
		}
		lo, hi := segment(M, P, rank)
		radii, ops := p.radiiRows(mol, nb, lo, hi)
		c.ChargeOps(ops * overhead)

		counts := make([]int, P)
		for r := 0; r < P; r++ {
			l, h := segment(M, P, r)
			counts[r] = h - l
		}
		all, err := c.Allgatherv(radii, counts)
		if err != nil {
			return err
		}
		raw, eops := energyRows(mol, all, nb, lo, hi)
		c.ChargeOps(eops * overhead)

		total, err := c.Allreduce([]float64{raw, ops + eops}, cluster.Sum)
		if err != nil {
			return err
		}
		if rank == 0 {
			copy(radiiOut, all)
			epolOut = -0.5 * gbmodels.Tau(opts.EpsSolv) * total[0]
			totalOps = total[1]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Epol:         epolOut,
		BornRadii:    radiiOut,
		ModelSeconds: rep.VirtualSeconds,
		Ops:          totalOps,
		Report:       rep,
	}, nil
}

// runShared executes the package with OpenMP-style static loop
// partitioning over threads (Tinker): no work stealing, so the modeled
// time is the maximum statically-assigned chunk.
func (p *Pkg) runShared(mol *molecule.Molecule, opts Options) (*Result, error) {
	nb, err := p.buildList(mol, opts)
	if err != nil {
		return nil, err
	}
	M := mol.NumAtoms()
	threads := opts.Cores
	pool := sched.NewPool(threads)
	defer pool.Close()

	radii := make([]float64, M)
	chunkOps := make([]float64, threads)
	// Static partition: thread t gets exactly segment t (no stealing).
	done := make(chan int, threads)
	pool.Run(func(w *sched.Worker) {
		for t := 0; t < threads; t++ {
			t := t
			w.Spawn(func(*sched.Worker) {
				lo, hi := segment(M, threads, t)
				rows, ops := p.radiiRows(mol, nb, lo, hi)
				copy(radii[lo:hi], rows)
				chunkOps[t] = ops
				done <- t
			})
		}
	})
	for t := 0; t < threads; t++ {
		<-done
	}
	var raw float64
	rawParts := make([]float64, threads)
	pool.Run(func(w *sched.Worker) {
		for t := 0; t < threads; t++ {
			t := t
			w.Spawn(func(*sched.Worker) {
				lo, hi := segment(M, threads, t)
				e, ops := energyRows(mol, radii, nb, lo, hi)
				rawParts[t] = e
				chunkOps[t] += ops
				done <- t
			})
		}
	})
	var maxChunk, totalOps float64
	for t := 0; t < threads; t++ {
		<-done
	}
	for t := 0; t < threads; t++ {
		raw += rawParts[t]
		totalOps += chunkOps[t]
		if chunkOps[t] > maxChunk {
			maxChunk = chunkOps[t]
		}
	}
	return &Result{
		Epol:         -0.5 * gbmodels.Tau(opts.EpsSolv) * raw,
		BornRadii:    radii,
		ModelSeconds: maxChunk * p.measureOverhead() / p.rate(opts),
		Ops:          totalOps,
	}, nil
}

// runSerial executes single-core packages (GBr⁶).
func (p *Pkg) runSerial(mol *molecule.Molecule, opts Options) (*Result, error) {
	nb, err := p.buildList(mol, opts)
	if err != nil {
		return nil, err
	}
	M := mol.NumAtoms()
	radii, ops := p.radiiRows(mol, nb, 0, M)
	raw, eops := energyRows(mol, radii, nb, 0, M)
	total := ops + eops
	return &Result{
		Epol:         -0.5 * gbmodels.Tau(opts.EpsSolv) * raw,
		BornRadii:    radii,
		ModelSeconds: total * p.measureOverhead() / p.rate(opts),
		Ops:          total,
	}, nil
}
