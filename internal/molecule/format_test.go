package molecule

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func moleculesEqual(a, b *Molecule, tol float64) bool {
	if len(a.Atoms) != len(b.Atoms) {
		return false
	}
	for i := range a.Atoms {
		x, y := a.Atoms[i], b.Atoms[i]
		if x.Pos.Dist(y.Pos) > tol ||
			math.Abs(x.Charge-y.Charge) > tol ||
			math.Abs(x.Radius-y.Radius) > tol {
			return false
		}
	}
	return true
}

func TestPQRRoundTrip(t *testing.T) {
	m := GenProtein("rt", 123, 9)
	var buf bytes.Buffer
	if err := WritePQR(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPQR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !moleculesEqual(m, got, 1e-3) {
		t.Error("PQR round trip lost data")
	}
}

func TestXYZQRRoundTrip(t *testing.T) {
	m := GenLigand("rt", 40, 10)
	var buf bytes.Buffer
	if err := WriteXYZQR(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadXYZQR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !moleculesEqual(m, got, 1e-5) {
		t.Error("XYZQR round trip lost data")
	}
}

func TestReadPQRRealWorldShape(t *testing.T) {
	// Column-aligned PQR with residue names, chain IDs, etc.
	src := `REMARK   produced by pdb2pqr
ATOM      1  N   MET A   1      27.340  24.430   2.614  0.1592  1.8240
ATOM      2  CA  MET A   1      26.266  25.413   2.842  0.0221  1.9080
HETATM    3  O   HOH A 201      10.000  10.000  10.000 -0.8340  1.6612
TER
END
`
	m, err := ReadPQR(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Atoms) != 3 {
		t.Fatalf("got %d atoms", len(m.Atoms))
	}
	if m.Atoms[0].Charge != 0.1592 || m.Atoms[0].Radius != 1.8240 {
		t.Errorf("atom 0 = %+v", m.Atoms[0])
	}
	if m.Atoms[2].Pos.X != 10 || m.Atoms[2].Charge != -0.834 {
		t.Errorf("HETATM = %+v", m.Atoms[2])
	}
}

func TestReadPQRErrors(t *testing.T) {
	if _, err := ReadPQR(strings.NewReader("REMARK empty\nEND\n")); err == nil {
		t.Error("empty PQR should error")
	}
	if _, err := ReadPQR(strings.NewReader("ATOM 1 N MET A 1 x y z q r\n")); err == nil {
		t.Error("non-numeric fields should error")
	}
	if _, err := ReadPQR(strings.NewReader("ATOM 1 2\n")); err == nil {
		t.Error("short record should error")
	}
}

func TestReadXYZQRHeaderAndComments(t *testing.T) {
	src := "2\n# two atoms\n0 0 0 1.0 1.5\n# inline comment line\n1 1 1 -1.0 1.7\n"
	m, err := ReadXYZQR(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Atoms) != 2 {
		t.Fatalf("got %d atoms", len(m.Atoms))
	}
	if m.Atoms[1].Charge != -1 {
		t.Errorf("atom 1 charge = %v", m.Atoms[1].Charge)
	}
}

func TestReadXYZQRErrors(t *testing.T) {
	if _, err := ReadXYZQR(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	if _, err := ReadXYZQR(strings.NewReader("1 2 3\n")); err == nil {
		t.Error("short line should error")
	}
	if _, err := ReadXYZQR(strings.NewReader("1 2 3 4 bad\n")); err == nil {
		t.Error("non-numeric field should error")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	m := GenProtein("file", 60, 12)
	for _, name := range []string{"m.pqr", "m.xyzqr"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, m); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !moleculesEqual(m, got, 1e-3) {
			t.Errorf("%s: round trip lost data", name)
		}
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.pqr")); err == nil {
		t.Error("missing file should error")
	}
}
