package molecule

import (
	"cmp"
	"fmt"
	"math"
	"math/rand"
	"slices"

	"gbpolar/internal/geom"
)

// Protein-like atom composition: element frequencies, vdW radii and the
// partial-charge spread used by the synthetic generators. Frequencies are
// typical of an all-atom protein model (H≈50%, C≈32%, N≈8.5%, O≈9%,
// S≈0.5%).
var elementTable = []struct {
	frac   float64 // cumulative fraction
	radius float64 // van der Waals radius, Å
	sigma  float64 // partial-charge standard deviation, e
}{
	{0.50, 1.20, 0.10},  // H
	{0.82, 1.70, 0.15},  // C
	{0.905, 1.55, 0.35}, // N
	{0.995, 1.52, 0.40}, // O
	{1.00, 1.80, 0.20},  // S
}

// latticeSpacing gives a packed-protein number density of ≈0.094 atoms/Å³
// (experimental protein interiors are ≈0.1 atoms/Å³ including hydrogens).
const latticeSpacing = 2.2

// GenProtein deterministically generates a globular protein-like molecule
// with n atoms: a jittered cubic lattice filled from the center outward
// (packed like a folded protein), protein-like vdW radii and partial
// charges. A handful of atoms receive formal ±1e charges, mimicking
// charged side chains; the remainder get small partial charges.
//
// The same (n, seed) pair always yields the identical molecule.
func GenProtein(name string, n int, seed int64) *Molecule {
	if n <= 0 {
		return &Molecule{Name: name}
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Molecule{Name: name, Atoms: make([]Atom, 0, n)}

	// Radius of the ball that holds n lattice sites.
	r := latticeSpacing * math.Cbrt(3*float64(n)/(4*math.Pi)) * 1.02
	span := int(math.Ceil(r / latticeSpacing))

	type site struct {
		p  geom.Vec3
		d2 float64
	}
	sites := make([]site, 0, (2*span+1)*(2*span+1)*(2*span+1))
	for x := -span; x <= span; x++ {
		for y := -span; y <= span; y++ {
			for z := -span; z <= span; z++ {
				p := geom.Vec3{
					X: float64(x) * latticeSpacing,
					Y: float64(y) * latticeSpacing,
					Z: float64(z) * latticeSpacing,
				}
				sites = append(sites, site{p, p.Norm2()})
			}
		}
	}
	// Fill from the center outward so the molecule is compact for any n.
	slices.SortFunc(sites, func(a, b site) int { return cmp.Compare(a.d2, b.d2) })

	for i := 0; i < n; i++ {
		s := sites[i%len(sites)]
		// If n exceeds the lattice capacity (possible only for tiny radii
		// due to the 1.02 safety factor being insufficient), re-use sites
		// with a larger jitter; in practice len(sites) >= n.
		jit := 0.45
		p := s.p.Add(geom.Vec3{
			X: (rng.Float64()*2 - 1) * jit,
			Y: (rng.Float64()*2 - 1) * jit,
			Z: (rng.Float64()*2 - 1) * jit,
		})
		m.Atoms = append(m.Atoms, Atom{Pos: p, Radius: 1.7})
	}
	assignElements(m, rng)
	return m
}

// assignElements assigns radii and charges according to elementTable and
// sprinkles formal charges over ~5% of heavy atoms, then removes any net
// drift beyond physical bounds by spreading the excess over all atoms
// (proteins carry small integer net charges).
func assignElements(m *Molecule, rng *rand.Rand) {
	for i := range m.Atoms {
		u := rng.Float64()
		for _, e := range elementTable {
			if u <= e.frac {
				m.Atoms[i].Radius = e.radius
				q := rng.NormFloat64() * e.sigma
				if q > 0.8 {
					q = 0.8
				}
				if q < -0.8 {
					q = -0.8
				}
				m.Atoms[i].Charge = q
				break
			}
		}
		// Occasionally a formal charge (charged side chain, ~2%).
		if rng.Float64() < 0.02 {
			if rng.Float64() < 0.5 {
				m.Atoms[i].Charge = 1
			} else {
				m.Atoms[i].Charge = -1
			}
		}
	}
}

// GenLigand generates a small drug-like molecule with n atoms (default
// size class 20–60 atoms), a compact random coil placed at the origin.
func GenLigand(name string, n int, seed int64) *Molecule {
	rng := rand.New(rand.NewSource(seed))
	m := &Molecule{Name: name, Atoms: make([]Atom, 0, n)}
	p := geom.Vec3{}
	for i := 0; i < n; i++ {
		m.Atoms = append(m.Atoms, Atom{Pos: p, Radius: 1.7})
		// Bond step ~1.5 Å with a bias back toward the centroid to stay
		// compact.
		dir := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Unit()
		pull := p.Scale(-0.15)
		p = p.Add(dir.Scale(1.5)).Add(pull)
	}
	assignElements(m, rng)
	return m
}

// GenCapsid generates a virus-capsid-like hollow shell: atoms jittered on
// concentric spherical layers between innerR and outerR (Å), placed by a
// Fibonacci lattice so coverage is uniform. It reproduces the adaptive-
// refinement regime of the paper's CMV (509,640 atoms, radius ≈140 Å) and
// BTV (6M atoms) inputs: a thin shell, so the octree is deep near the
// surface and empty inside.
func GenCapsid(name string, n int, innerR, outerR float64, seed int64) *Molecule {
	if n <= 0 {
		return &Molecule{Name: name}
	}
	if outerR < innerR {
		innerR, outerR = outerR, innerR
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Molecule{Name: name, Atoms: make([]Atom, 0, n)}

	// Number of layers so intra-layer and inter-layer spacing match.
	thickness := outerR - innerR
	layers := int(thickness/latticeSpacing) + 1
	// Distribute atoms over layers proportionally to layer area.
	var totalArea float64
	layerR := make([]float64, layers)
	for l := 0; l < layers; l++ {
		r := innerR
		if layers > 1 {
			r += thickness * float64(l) / float64(layers-1)
		}
		layerR[l] = r
		totalArea += r * r
	}
	golden := math.Pi * (3 - math.Sqrt(5))
	for l := 0; l < layers && len(m.Atoms) < n; l++ {
		r := layerR[l]
		count := int(math.Round(float64(n) * r * r / totalArea))
		if l == layers-1 {
			count = n - len(m.Atoms)
		}
		if count > n-len(m.Atoms) {
			count = n - len(m.Atoms)
		}
		for i := 0; i < count; i++ {
			// Fibonacci sphere point i of count.
			z := 1 - 2*(float64(i)+0.5)/float64(count)
			ring := math.Sqrt(1 - z*z)
			th := golden * float64(i)
			p := geom.Vec3{X: math.Cos(th) * ring, Y: math.Sin(th) * ring, Z: z}.Scale(r)
			p = p.Add(geom.Vec3{
				X: (rng.Float64()*2 - 1) * 0.4,
				Y: (rng.Float64()*2 - 1) * 0.4,
				Z: (rng.Float64()*2 - 1) * 0.4,
			})
			m.Atoms = append(m.Atoms, Atom{Pos: p, Radius: 1.7})
		}
	}
	assignElements(m, rng)
	return m
}

// CMVAnalogue generates the Cucumber-Mosaic-Virus-analogue shell at the
// given scale factor. scale=1 reproduces the paper's 509,640 atoms on a
// 120–145 Å shell; smaller scales shrink atom count (and radius with the
// cube-root, preserving density).
func CMVAnalogue(scale float64, seed int64) *Molecule {
	n := int(509640 * scale)
	if n < 100 {
		n = 100
	}
	f := math.Cbrt(scale)
	return GenCapsid(fmt.Sprintf("CMV-analogue-%dk", n/1000), n, 120*f, 145*f, seed)
}

// BTVAnalogue generates the Blue-Tongue-Virus-analogue shell (paper: 6M
// atoms) at the given scale factor.
func BTVAnalogue(scale float64, seed int64) *Molecule {
	n := int(6_000_000 * scale)
	if n < 100 {
		n = 100
	}
	f := math.Cbrt(scale)
	return GenCapsid(fmt.Sprintf("BTV-analogue-%dk", n/1000), n, 250*f, 290*f, seed)
}

// SuiteEntry describes one molecule of the ZDock-like benchmark suite.
type SuiteEntry struct {
	Name  string
	Atoms int
}

// ZDockLikeSizes returns the 84 atom counts of the synthetic benchmark
// suite, spread log-uniformly over the paper's range (≈400 to ≈16,000
// atoms per protein, with the largest at 16,301 — the size the paper's
// Figure 8(b) quotes for the 11× Amber speedup).
func ZDockLikeSizes() []SuiteEntry {
	const count = 84
	entries := make([]SuiteEntry, count)
	lo, hi := math.Log(400.0), math.Log(16301.0)
	for i := 0; i < count; i++ {
		t := float64(i) / float64(count-1)
		n := int(math.Round(math.Exp(lo + (hi-lo)*t)))
		entries[i] = SuiteEntry{Name: fmt.Sprintf("zd%02d", i+1), Atoms: n}
	}
	entries[count-1].Atoms = 16301
	return entries
}

// GenZDockLikeSuite generates the full 84-protein synthetic suite. Each
// protein is deterministic in (seed, index).
func GenZDockLikeSuite(seed int64) []*Molecule {
	sizes := ZDockLikeSizes()
	out := make([]*Molecule, len(sizes))
	for i, e := range sizes {
		out[i] = GenProtein(e.Name, e.Atoms, seed+int64(i)*7919)
	}
	return out
}
