// Package molecule defines the molecular model used throughout gbpolar —
// atoms with positions, partial charges and van der Waals radii — along
// with file I/O (PQR and XYZQR) and deterministic synthetic generators
// that stand in for the paper's inputs (the ZDock Benchmark Suite 2.0
// proteins and the BTV/CMV virus capsids; see DESIGN.md §2).
package molecule

import (
	"fmt"
	"math"

	"gbpolar/internal/geom"
)

// Atom is one atom of a molecule.
type Atom struct {
	// Pos is the atom center in Ångströms.
	Pos geom.Vec3
	// Charge is the partial charge in elementary charges.
	Charge float64
	// Radius is the van der Waals radius in Ångströms. It is the lower
	// clamp for the effective Born radius (an atom's Born radius can
	// never be smaller than its intrinsic radius).
	Radius float64
}

// Molecule is a named collection of atoms.
type Molecule struct {
	Name  string
	Atoms []Atom
}

// NumAtoms returns the number of atoms.
func (m *Molecule) NumAtoms() int { return len(m.Atoms) }

// Positions returns a freshly allocated slice of atom centers.
func (m *Molecule) Positions() []geom.Vec3 {
	pts := make([]geom.Vec3, len(m.Atoms))
	for i, a := range m.Atoms {
		pts[i] = a.Pos
	}
	return pts
}

// Bounds returns the bounding box of the atom centers (not inflated by
// radii).
func (m *Molecule) Bounds() geom.AABB {
	b := geom.Empty()
	for _, a := range m.Atoms {
		b = b.Extend(a.Pos)
	}
	return b
}

// TotalCharge returns the sum of partial charges.
func (m *Molecule) TotalCharge() float64 {
	var q float64
	for _, a := range m.Atoms {
		q += a.Charge
	}
	return q
}

// Clone returns a deep copy.
func (m *Molecule) Clone() *Molecule {
	return &Molecule{Name: m.Name, Atoms: append([]Atom(nil), m.Atoms...)}
}

// ApplyTransform rigidly re-poses the molecule in place.
//
// The paper's motivating drug-design workload re-poses a ligand at
// thousands of positions relative to a receptor; combined with
// octree.Octree.ApplyTransform this avoids rebuilding any data structure
// per pose.
func (m *Molecule) ApplyTransform(t geom.Transform) {
	for i := range m.Atoms {
		m.Atoms[i].Pos = t.Apply(m.Atoms[i].Pos)
	}
}

// Merge returns a new molecule containing the atoms of all inputs, in
// order. It is used to form receptor+ligand complexes.
func Merge(name string, ms ...*Molecule) *Molecule {
	out := &Molecule{Name: name}
	for _, m := range ms {
		out.Atoms = append(out.Atoms, m.Atoms...)
	}
	return out
}

// Validate checks physical sanity: finite positions, positive radii,
// charges within ±2e. It returns the first problem found.
func (m *Molecule) Validate() error {
	for i, a := range m.Atoms {
		if !a.Pos.IsFinite() {
			return fmt.Errorf("molecule %q: atom %d has non-finite position %v", m.Name, i, a.Pos)
		}
		if a.Radius <= 0 || math.IsNaN(a.Radius) || a.Radius > 5 {
			return fmt.Errorf("molecule %q: atom %d has implausible radius %g", m.Name, i, a.Radius)
		}
		if math.Abs(a.Charge) > 2 || math.IsNaN(a.Charge) {
			return fmt.Errorf("molecule %q: atom %d has implausible charge %g", m.Name, i, a.Charge)
		}
	}
	return nil
}

// MemoryBytes estimates the resident size of the molecule's atom array.
// The cluster runtime uses it to account for per-rank data replication
// (every rank holds the full molecule; Section IV.B of the paper).
func (m *Molecule) MemoryBytes() int64 {
	const atomBytes = 5 * 8 // three coordinates + charge + radius
	return int64(len(m.Atoms)) * atomBytes
}
