package molecule

import (
	"math"
	"testing"

	"gbpolar/internal/geom"
)

func TestGenProteinDeterministic(t *testing.T) {
	a := GenProtein("p", 500, 42)
	b := GenProtein("p", 500, 42)
	if len(a.Atoms) != 500 || len(b.Atoms) != 500 {
		t.Fatalf("atom counts %d, %d", len(a.Atoms), len(b.Atoms))
	}
	for i := range a.Atoms {
		if a.Atoms[i] != b.Atoms[i] {
			t.Fatalf("atom %d differs between identical seeds", i)
		}
	}
	c := GenProtein("p", 500, 43)
	same := 0
	for i := range a.Atoms {
		if a.Atoms[i] == c.Atoms[i] {
			same++
		}
	}
	if same == len(a.Atoms) {
		t.Error("different seeds produced identical molecules")
	}
}

func TestGenProteinValid(t *testing.T) {
	for _, n := range []int{1, 10, 400, 5000} {
		m := GenProtein("p", n, 7)
		if m.NumAtoms() != n {
			t.Fatalf("n=%d: got %d atoms", n, m.NumAtoms())
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestGenProteinDensity(t *testing.T) {
	m := GenProtein("p", 4000, 11)
	// Radius of gyration of a uniform ball of radius R is R·sqrt(3/5);
	// check the generated molecule is packed, not a sparse gas.
	c := geom.Centroid(m.Positions())
	var rg2 float64
	for _, a := range m.Atoms {
		rg2 += a.Pos.Dist2(c)
	}
	rg := math.Sqrt(rg2 / float64(m.NumAtoms()))
	// Expected ball radius for 4000 atoms at lattice density.
	expR := latticeSpacing * math.Cbrt(3*4000/(4*math.Pi))
	expRg := expR * math.Sqrt(3.0/5)
	if rg < 0.7*expRg || rg > 1.3*expRg {
		t.Errorf("radius of gyration %.2f, expected ≈%.2f", rg, expRg)
	}
}

func TestGenProteinCompact(t *testing.T) {
	// No atom pair should be absurdly close (lattice + jitter guarantees
	// a minimum separation of spacing − 2·jitter = 1.3 Å).
	m := GenProtein("p", 300, 3)
	for i := 0; i < m.NumAtoms(); i++ {
		for j := i + 1; j < m.NumAtoms(); j++ {
			if d := m.Atoms[i].Pos.Dist(m.Atoms[j].Pos); d < 1.2 {
				t.Fatalf("atoms %d,%d only %.3f Å apart", i, j, d)
			}
		}
	}
}

func TestGenCapsidShell(t *testing.T) {
	inner, outer := 40.0, 50.0
	m := GenCapsid("shell", 5000, inner, outer, 5)
	if m.NumAtoms() != 5000 {
		t.Fatalf("got %d atoms", m.NumAtoms())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, a := range m.Atoms {
		r := a.Pos.Norm()
		if r < inner-1 || r > outer+1 {
			t.Fatalf("atom %d at radius %.2f outside shell [%v,%v]", i, r, inner, outer)
		}
	}
}

func TestGenCapsidSwappedRadii(t *testing.T) {
	m := GenCapsid("shell", 100, 50, 40, 5) // swapped on purpose
	for _, a := range m.Atoms {
		r := a.Pos.Norm()
		if r < 39 || r > 51 {
			t.Fatalf("atom outside shell at %.2f", r)
		}
	}
}

func TestCMVAnalogueScaling(t *testing.T) {
	m := CMVAnalogue(0.01, 1)
	if n := m.NumAtoms(); n != 5096 {
		t.Errorf("scale 0.01: %d atoms, want 5096", n)
	}
	tiny := CMVAnalogue(1e-9, 1)
	if tiny.NumAtoms() != 100 {
		t.Errorf("minimum clamp: %d", tiny.NumAtoms())
	}
}

func TestZDockLikeSizes(t *testing.T) {
	sizes := ZDockLikeSizes()
	if len(sizes) != 84 {
		t.Fatalf("suite has %d entries, want 84", len(sizes))
	}
	if sizes[0].Atoms != 400 {
		t.Errorf("smallest = %d, want 400", sizes[0].Atoms)
	}
	if sizes[len(sizes)-1].Atoms != 16301 {
		t.Errorf("largest = %d, want 16301", sizes[len(sizes)-1].Atoms)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i].Atoms < sizes[i-1].Atoms {
			t.Errorf("sizes not monotone at %d", i)
		}
	}
}

func TestMergeAndClone(t *testing.T) {
	a := GenProtein("a", 50, 1)
	b := GenLigand("b", 20, 2)
	c := Merge("complex", a, b)
	if c.NumAtoms() != 70 {
		t.Fatalf("merged has %d atoms", c.NumAtoms())
	}
	cl := c.Clone()
	cl.Atoms[0].Charge = 99
	if c.Atoms[0].Charge == 99 {
		t.Error("Clone shares storage with original")
	}
}

func TestApplyTransform(t *testing.T) {
	m := GenLigand("l", 30, 3)
	orig := m.Clone()
	tr := geom.Translate(geom.V(10, 0, 0))
	m.ApplyTransform(tr)
	for i := range m.Atoms {
		want := orig.Atoms[i].Pos.Add(geom.V(10, 0, 0))
		if m.Atoms[i].Pos != want {
			t.Fatalf("atom %d moved to %v, want %v", i, m.Atoms[i].Pos, want)
		}
	}
	// Rigid transforms preserve pairwise distances and therefore energies.
	rot := geom.RotateAxis(geom.V(1, 2, 3), 1.1)
	m2 := orig.Clone()
	m2.ApplyTransform(rot)
	d0 := orig.Atoms[0].Pos.Dist(orig.Atoms[29].Pos)
	d1 := m2.Atoms[0].Pos.Dist(m2.Atoms[29].Pos)
	if math.Abs(d0-d1) > 1e-9 {
		t.Errorf("rotation changed distance %v -> %v", d0, d1)
	}
}

func TestValidateCatchesBadAtoms(t *testing.T) {
	good := GenProtein("g", 10, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good.Clone()
	bad.Atoms[3].Radius = -1
	if bad.Validate() == nil {
		t.Error("negative radius not caught")
	}
	bad2 := good.Clone()
	bad2.Atoms[0].Charge = math.NaN()
	if bad2.Validate() == nil {
		t.Error("NaN charge not caught")
	}
	bad3 := good.Clone()
	bad3.Atoms[0].Pos.X = math.Inf(1)
	if bad3.Validate() == nil {
		t.Error("infinite position not caught")
	}
}

func TestTotalChargeFinite(t *testing.T) {
	m := GenProtein("p", 2000, 17)
	q := m.TotalCharge()
	if math.IsNaN(q) || math.Abs(q) > 200 {
		t.Errorf("implausible total charge %v", q)
	}
}

func TestMemoryBytes(t *testing.T) {
	m := GenProtein("p", 100, 1)
	if got := m.MemoryBytes(); got != 100*40 {
		t.Errorf("MemoryBytes = %d", got)
	}
}

func TestBounds(t *testing.T) {
	m := &Molecule{Atoms: []Atom{
		{Pos: geom.V(-1, 0, 5)},
		{Pos: geom.V(2, -3, 1)},
	}}
	b := m.Bounds()
	if b.Min != (geom.V(-1, -3, 1)) || b.Max != (geom.V(2, 0, 5)) {
		t.Errorf("Bounds = %v", b)
	}
}
