package mathx

import "math"

// This file holds the batch "lane" variants of the fast kernels: fixed
// width-4 blocks the compiled SoA kernels (internal/core/kernels_lanes.go)
// evaluate in place, plus the float32 kernel family backing the f32
// precision tier. The lane width matches the padding granularity of the
// System SoA arrays; kernels peel the sub-width remainder with the scalar
// functions.
//
// Two invariants matter more than raw speed:
//
//  1. The float64 lane variants are BIT-COMPATIBLE with their scalar
//     counterparts: ExpLanes4 performs, per lane, exactly the operations
//     of Exp, and RSqrtLanes4 those of RSqrt, so a laned sweep that
//     accumulates in scalar order reproduces the scalar approximate-math
//     path bit-for-bit (TestExpLanes4BitCompat / TestRSqrtLanes4BitCompat
//     pin this). The speedup comes from instruction-level parallelism —
//     four independent polynomial/Newton chains in flight — not from a
//     different algorithm.
//
//  2. The float32 family trades precision for throughput inside its
//     documented budget: RSqrt32 stays within ~1e-5 relative and Exp32
//     within ~1e-4 over the operand ranges the GB kernels produce
//     (lanes_test.go sweeps log-spaced operands over the octree's span
//     and pins these bounds). The f32 tier's end-to-end error budget
//     (≤1e-4 relative on E_pol and Born radii) is asserted separately in
//     internal/core.

// LaneWidth is the fixed SoA lane width of the batch kernels and the
// padding granularity of the System component arrays.
const LaneWidth = 4

// ExpLanes4 evaluates Exp on all four lanes in place. Each lane performs
// exactly the scalar Exp operation sequence (bit-compatible); the four
// range reductions, bit assemblies and Horner chains are independent, so
// they pipeline across lanes.
func ExpLanes4(x *[4]float64) {
	for i := range x {
		v := x[i]
		if v < -700 {
			x[i] = 0
			continue
		}
		if v > 700 {
			x[i] = math.Inf(1)
			continue
		}
		const ln2 = 0.6931471805599453
		const invLn2 = 1.4426950408889634
		kf := math.Floor(v*invLn2 + 0.5)
		k := int64(kf)
		r := v - kf*ln2
		p := 1.0 + r*(1.0+r*(0.5+r*(1.0/6+r*(1.0/24+r*(1.0/120+r/720)))))
		x[i] = math.Float64frombits(uint64(k+1023)<<52) * p
	}
}

// RSqrtLanes4 evaluates RSqrt on all four lanes in place, bit-compatible
// per lane with the scalar RSqrt (same seed, same three Newton steps).
func RSqrtLanes4(x *[4]float64) {
	for i := range x {
		v := x[i]
		j := math.Float64bits(v)
		j = 0x5fe6eb50c7b537a9 - (j >> 1)
		y := math.Float64frombits(j)
		half := 0.5 * v
		y = y * (1.5 - half*y*y)
		y = y * (1.5 - half*y*y)
		y = y * (1.5 - half*y*y)
		x[i] = y
	}
}

// CbrtLanes4 evaluates Cbrt on all four lanes in place, bit-compatible
// per lane with the scalar Cbrt.
func CbrtLanes4(x *[4]float64) {
	for i := range x {
		x[i] = Cbrt(x[i])
	}
}

// Exp32 is the float32 fast exponential: the same split-and-assemble
// scheme as Exp (k·ln2 range reduction in float64 to keep the reduction
// exact, degree-5 polynomial in float32), relative error ~4e-6 plus
// float32 rounding over the GB operand range (lanes_test.go pins ≤1e-4).
func Exp32(x float32) float32 {
	// Below/above the float32 exponent range: saturate like Exp does.
	if x < -87.3 {
		return 0
	}
	if x > 88.7 {
		return float32(math.Inf(1))
	}
	const ln2 = 0.6931471805599453
	const invLn2 = 1.4426950408889634
	kf := math.Floor(float64(x)*invLn2 + 0.5)
	k := int32(kf)
	r := float32(float64(x) - kf*ln2)
	p := 1 + r*(1+r*(0.5+r*(1.0/6+r*(1.0/24+r*(1.0/120)))))
	return math.Float32frombits(uint32(k+127)<<23) * p
}

// RSqrt32 is the float32 fast reciprocal square root for x > 0: the
// classic 0x5f375a86 seed refined with two Newton steps — full float32
// working precision is reached in two steps where the float64 kernel
// needs three, which is half the f32 tier's speed advantage.
func RSqrt32(x float32) float32 {
	i := math.Float32bits(x)
	i = 0x5f375a86 - (i >> 1)
	y := math.Float32frombits(i)
	half := 0.5 * x
	y = y * (1.5 - half*y*y)
	y = y * (1.5 - half*y*y)
	return y
}

// ExpLanes4x32 evaluates Exp32 on all four lanes in place.
func ExpLanes4x32(x *[4]float32) {
	for i := range x {
		x[i] = Exp32(x[i])
	}
}

// RSqrtLanes4x32 evaluates RSqrt32 on all four lanes in place.
func RSqrtLanes4x32(x *[4]float32) {
	for i := range x {
		v := x[i]
		j := math.Float32bits(v)
		j = 0x5f375a86 - (j >> 1)
		y := math.Float32frombits(j)
		half := 0.5 * v
		y = y * (1.5 - half*y*y)
		y = y * (1.5 - half*y*y)
		x[i] = y
	}
}
