package mathx

import (
	"math"
	"math/rand"
	"testing"
)

// sweepD2 returns log-spaced squared distances covering the operand range
// the GB kernels actually produce: from sub-Å contact pairs to the full
// diagonal of a virus-shell octree (~1000 Å), i.e. d² from 1e-4 to 1e6 Å².
func sweepD2(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		e := -4 + 10*float64(i)/float64(n-1) // 10^-4 .. 10^+6
		out[i] = math.Pow(10, e)
	}
	return out
}

// maxRelErr sweeps f against ref and returns the max relative error.
func maxRelErr(xs []float64, f, ref func(float64) float64) float64 {
	var worst float64
	for _, x := range xs {
		if e := relErr(f(x), ref(x)); e > worst {
			worst = e
		}
	}
	return worst
}

// The documented accuracy bounds of the scalar fast kernels, swept over
// the operand ranges the energy kernels produce (not just random points):
// Exp sees -d²/(4·R_uR_v) ∈ [-40, 0] thanks to the expSkip threshold,
// RSqrt sees f_GB² ∈ [d²_min, d²_max + R²], Cbrt sees the r⁻³ integral
// inversion operands. These pins are what DESIGN.md §11 cites.
func TestScalarKernelAccuracyOverKernelRanges(t *testing.T) {
	d2 := sweepD2(4000)

	// Exp operands: -d²/(4rr) for rr ∈ {1, 10, 100} Å², clipped to the
	// range the expSkip shortcut leaves live (≥ -40).
	var expWorst float64
	for _, rr := range []float64{1, 10, 100} {
		for _, d := range d2 {
			x := -d / (4 * rr)
			if x < -40 {
				continue
			}
			if e := relErr(Exp(x), math.Exp(x)); e > expWorst {
				expWorst = e
			}
		}
	}
	if expWorst > 1e-4 {
		t.Errorf("Exp worst relative error %.3g over kernel range, documented bound 1e-4", expWorst)
	}

	rsqrtWorst := maxRelErr(d2, RSqrt, func(x float64) float64 { return 1 / math.Sqrt(x) })
	if rsqrtWorst > 1e-6 {
		t.Errorf("RSqrt worst relative error %.3g over kernel range, documented bound 1e-6", rsqrtWorst)
	}

	cbrtWorst := maxRelErr(d2, Cbrt, math.Cbrt)
	if cbrtWorst > 1e-9 {
		t.Errorf("Cbrt worst relative error %.3g over kernel range, documented bound 1e-9", cbrtWorst)
	}

	t.Logf("scalar kernels over kernel operand range: Exp %.3g, RSqrt %.3g, Cbrt %.3g",
		expWorst, rsqrtWorst, cbrtWorst)
}

// The float64 lane variants must be bit-compatible with their scalar
// counterparts on every operand — the invariant that lets the laned
// approximate tier reproduce the scalar approximate path bit-for-bit.
func TestLanes4BitCompatWithScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	edge := []float64{0, 1, -701, 701, -700, 700, 1e-300, 1e300, 0.5, 2}
	for trial := 0; trial < 5000; trial++ {
		var in [4]float64
		for l := range in {
			if trial < len(edge)/4+3 && rng.Intn(2) == 0 {
				in[l] = edge[rng.Intn(len(edge))]
			} else {
				in[l] = rng.Float64()*120 - 80
			}
		}
		e := in
		ExpLanes4(&e)
		for l := range e {
			if math.Float64bits(e[l]) != math.Float64bits(Exp(in[l])) {
				t.Fatalf("ExpLanes4 lane %d: %g -> %x, scalar %x",
					l, in[l], math.Float64bits(e[l]), math.Float64bits(Exp(in[l])))
			}
		}
		var pos [4]float64
		for l := range pos {
			pos[l] = math.Exp(rng.Float64()*40 - 20)
		}
		r := pos
		RSqrtLanes4(&r)
		c := pos
		CbrtLanes4(&c)
		for l := range r {
			if math.Float64bits(r[l]) != math.Float64bits(RSqrt(pos[l])) {
				t.Fatalf("RSqrtLanes4 lane %d diverges from scalar at %g", l, pos[l])
			}
			if math.Float64bits(c[l]) != math.Float64bits(Cbrt(pos[l])) {
				t.Fatalf("CbrtLanes4 lane %d diverges from scalar at %g", l, pos[l])
			}
		}
	}
}

// The float32 kernels must stay inside the f32 tier's per-operation
// budget over the same kernel operand sweep: Exp32 ≤ 1e-4, RSqrt32 ≤
// 2e-5 relative (both well under the 1e-4 end-to-end budget the core
// acceptance test asserts).
func TestFloat32KernelAccuracy(t *testing.T) {
	d2 := sweepD2(4000)
	var expWorst, rsqrtWorst float64
	for _, d := range d2 {
		for _, rr := range []float64{1, 10, 100} {
			x := -d / (4 * rr)
			if x < -40 {
				continue
			}
			if e := relErr(float64(Exp32(float32(x))), math.Exp(x)); e > expWorst {
				expWorst = e
			}
		}
		if e := relErr(float64(RSqrt32(float32(d))), 1/math.Sqrt(d)); e > rsqrtWorst {
			rsqrtWorst = e
		}
	}
	if expWorst > 1e-4 {
		t.Errorf("Exp32 worst relative error %.3g, budget 1e-4", expWorst)
	}
	if rsqrtWorst > 2e-5 {
		t.Errorf("RSqrt32 worst relative error %.3g, budget 2e-5", rsqrtWorst)
	}
	t.Logf("float32 kernels: Exp32 %.3g, RSqrt32 %.3g", expWorst, rsqrtWorst)
}

func TestFloat32KernelEdges(t *testing.T) {
	if Exp32(-1000) != 0 {
		t.Error("Exp32(-1000) should underflow to 0")
	}
	if !math.IsInf(float64(Exp32(1000)), 1) {
		t.Error("Exp32(1000) should overflow to +Inf")
	}
	if relErr(float64(Exp32(0)), 1) > 1e-6 {
		t.Errorf("Exp32(0) = %g", Exp32(0))
	}
}

// The float32 lane variants are bit-compatible with their float32 scalar
// counterparts, mirroring the float64 invariant.
func TestLanes4x32BitCompatWithScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 5000; trial++ {
		var in [4]float32
		for l := range in {
			in[l] = float32(rng.Float64()*60 - 50)
		}
		e := in
		ExpLanes4x32(&e)
		for l := range e {
			if math.Float32bits(e[l]) != math.Float32bits(Exp32(in[l])) {
				t.Fatalf("ExpLanes4x32 lane %d diverges from Exp32 at %g", l, in[l])
			}
		}
		var pos [4]float32
		for l := range pos {
			pos[l] = float32(math.Exp(rng.Float64()*20 - 10))
		}
		r := pos
		RSqrtLanes4x32(&r)
		for l := range r {
			if math.Float32bits(r[l]) != math.Float32bits(RSqrt32(pos[l])) {
				t.Fatalf("RSqrtLanes4x32 lane %d diverges from RSqrt32 at %g", l, pos[l])
			}
		}
	}
}

func BenchmarkExpLanes4(b *testing.B) {
	in := [4]float64{-0.3, -1.7, -4.2, -9.8}
	var s float64
	for i := 0; i < b.N; i++ {
		x := in
		ExpLanes4(&x)
		s += x[0] + x[1] + x[2] + x[3]
		in[0] -= 1e-9
	}
	_ = s
}

func BenchmarkExpScalar4(b *testing.B) {
	in := [4]float64{-0.3, -1.7, -4.2, -9.8}
	var s float64
	for i := 0; i < b.N; i++ {
		s += Exp(in[0]) + Exp(in[1]) + Exp(in[2]) + Exp(in[3])
		in[0] -= 1e-9
	}
	_ = s
}

func BenchmarkRSqrtLanes4(b *testing.B) {
	in := [4]float64{1.3, 2.7, 14.2, 99.8}
	var s float64
	for i := 0; i < b.N; i++ {
		x := in
		RSqrtLanes4(&x)
		s += x[0] + x[1] + x[2] + x[3]
		in[0] += 1e-9
	}
	_ = s
}

func BenchmarkRSqrtLanes4x32(b *testing.B) {
	in := [4]float32{1.3, 2.7, 14.2, 99.8}
	var s float32
	for i := 0; i < b.N; i++ {
		x := in
		RSqrtLanes4x32(&x)
		s += x[0] + x[1] + x[2] + x[3]
		in[0] += 1e-7
	}
	_ = s
}
