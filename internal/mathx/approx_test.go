package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

func TestRSqrtAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		// Spread across many orders of magnitude, like r² values in Å².
		x := math.Exp(rng.Float64()*40 - 20)
		got := RSqrt(x)
		want := 1 / math.Sqrt(x)
		if relErr(got, want) > 1e-6 {
			t.Fatalf("RSqrt(%g) = %g want %g (rel %g)", x, got, want, relErr(got, want))
		}
	}
}

func TestSqrtAccuracyAndEdge(t *testing.T) {
	if Sqrt(0) != 0 {
		t.Error("Sqrt(0) != 0")
	}
	if Sqrt(-1) != 0 {
		t.Error("Sqrt(-1) != 0")
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		x := math.Exp(rng.Float64()*40 - 20)
		if relErr(Sqrt(x), math.Sqrt(x)) > 1e-6 {
			t.Fatalf("Sqrt(%g) rel err too big", x)
		}
	}
}

func TestExpAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		x := rng.Float64()*80 - 60 // the GB kernel only ever exponentiates ≤ 0
		got := Exp(x)
		want := math.Exp(x)
		if relErr(got, want) > 1e-4 {
			t.Fatalf("Exp(%g) = %g want %g (rel %g)", x, got, want, relErr(got, want))
		}
	}
}

func TestExpExtremes(t *testing.T) {
	if Exp(-1000) != 0 {
		t.Error("Exp(-1000) should underflow to 0")
	}
	if !math.IsInf(Exp(1000), 1) {
		t.Error("Exp(1000) should overflow to +Inf")
	}
	if relErr(Exp(0), 1) > 1e-12 {
		t.Errorf("Exp(0) = %g", Exp(0))
	}
}

func TestCbrtAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		x := math.Exp(rng.Float64()*60 - 30)
		if relErr(Cbrt(x), math.Cbrt(x)) > 1e-9 {
			t.Fatalf("Cbrt(%g) rel err too big: got %g want %g", x, Cbrt(x), math.Cbrt(x))
		}
	}
	if Cbrt(0) != 0 {
		t.Error("Cbrt(0) != 0")
	}
	if relErr(Cbrt(-8), -2) > 1e-9 {
		t.Errorf("Cbrt(-8) = %g", Cbrt(-8))
	}
	if relErr(Cbrt(27), 3) > 1e-9 {
		t.Errorf("Cbrt(27) = %g", Cbrt(27))
	}
}

func TestInvCbrt(t *testing.T) {
	if relErr(InvCbrt(8), 0.5) > 1e-9 {
		t.Errorf("InvCbrt(8) = %g", InvCbrt(8))
	}
}

func TestCbrtCubeRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		x = math.Mod(math.Abs(x), 1e10)
		if x == 0 {
			return true
		}
		y := Cbrt(x)
		return relErr(y*y*y, x) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKernelsForMode(t *testing.T) {
	for _, m := range []Mode{Exact, Approximate} {
		k := ForMode(m)
		if relErr(k.Sqrt(2), math.Sqrt2) > 1e-6 {
			t.Errorf("%v Sqrt(2) = %g", m, k.Sqrt(2))
		}
		if relErr(k.RSqrt(4), 0.5) > 1e-6 {
			t.Errorf("%v RSqrt(4) = %g", m, k.RSqrt(4))
		}
		if relErr(k.Exp(1), math.E) > 1e-4 {
			t.Errorf("%v Exp(1) = %g", m, k.Exp(1))
		}
		if relErr(k.Cbrt(8), 2) > 1e-6 {
			t.Errorf("%v Cbrt(8) = %g", m, k.Cbrt(8))
		}
	}
}

func TestModeString(t *testing.T) {
	if Exact.String() != "exact" || Approximate.String() != "approximate" {
		t.Error("Mode.String broken")
	}
}

func BenchmarkRSqrtApprox(b *testing.B) {
	x := 1.7
	var s float64
	for i := 0; i < b.N; i++ {
		s += RSqrt(x)
		x += 0.001
	}
	_ = s
}

func BenchmarkRSqrtExact(b *testing.B) {
	x := 1.7
	var s float64
	for i := 0; i < b.N; i++ {
		s += 1 / math.Sqrt(x)
		x += 0.001
	}
	_ = s
}

func BenchmarkExpApprox(b *testing.B) {
	x := -1.7
	var s float64
	for i := 0; i < b.N; i++ {
		s += Exp(x)
		x -= 0.0001
	}
	_ = s
}

func BenchmarkExpExact(b *testing.B) {
	x := -1.7
	var s float64
	for i := 0; i < b.N; i++ {
		s += math.Exp(x)
		x -= 0.0001
	}
	_ = s
}
