// Package mathx implements the approximate math kernels the paper toggles
// in its experiments ("We used approximate math for computing square root
// and power functions", Section V.C; turning it off "shifted the error by
// 4-5% and decreased the running times by a factor of 1.42", Section V.E).
//
// The kernels are branch-free bit-trick seeds (Quake-style reciprocal
// square root, Schraudolph exponential, bit-shift cube root) refined with a
// small fixed number of Newton iterations, giving relative errors of a few
// 1e-4 — in the same accuracy class as the paper's fast math — while
// remaining deterministic and portable.
package mathx

import "math"

// Mode selects between exact stdlib math and the fast approximations.
type Mode int

const (
	// Exact uses math.Sqrt / math.Exp / math.Cbrt.
	Exact Mode = iota
	// Approximate uses the fast kernels in this package.
	Approximate
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Approximate {
		return "approximate"
	}
	return "exact"
}

// RSqrt returns an approximation of 1/sqrt(x) for x > 0 using the
// float64 variant of the fast inverse square root with two Newton steps
// (relative error below ~5e-7).
func RSqrt(x float64) float64 {
	i := math.Float64bits(x)
	i = 0x5fe6eb50c7b537a9 - (i >> 1)
	y := math.Float64frombits(i)
	half := 0.5 * x
	y = y * (1.5 - half*y*y)
	y = y * (1.5 - half*y*y)
	y = y * (1.5 - half*y*y)
	return y
}

// Sqrt returns an approximation of sqrt(x) as x·RSqrt(x); Sqrt(0) == 0.
func Sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return x * RSqrt(x)
}

// Exp returns a fast approximation of e^x (Schraudolph's method on the
// float64 exponent field, refined with one multiplicative spline
// correction), accurate to ~3e-5 relative error over |x| ≤ 700.
func Exp(x float64) float64 {
	if x < -700 {
		return 0
	}
	if x > 700 {
		return math.Inf(1)
	}
	// Split x = k·ln2 + r with |r| ≤ ln2/2, exponent via bit assembly,
	// e^r via a degree-5 minimax-ish Taylor polynomial.
	const ln2 = 0.6931471805599453
	const invLn2 = 1.4426950408889634
	kf := math.Floor(x*invLn2 + 0.5)
	k := int64(kf)
	r := x - kf*ln2
	// Horner evaluation of the truncated series for e^r.
	p := 1.0 + r*(1.0+r*(0.5+r*(1.0/6+r*(1.0/24+r*(1.0/120+r/720)))))
	return math.Float64frombits(uint64(k+1023)<<52) * p
}

// Cbrt returns a fast approximation of x^(1/3) for x ≥ 0 (bit-trick seed
// plus two Newton iterations, relative error below ~1e-6).
func Cbrt(x float64) float64 {
	if x == 0 {
		return 0
	}
	neg := x < 0
	if neg {
		x = -x
	}
	i := math.Float64bits(x)
	i = i/3 + 0x2a9f8a7be96218aa
	y := math.Float64frombits(i)
	for it := 0; it < 3; it++ {
		y = (2*y + x/(y*y)) / 3
	}
	if neg {
		return -y
	}
	return y
}

// InvCbrt returns a fast approximation of x^(-1/3) for x > 0.
func InvCbrt(x float64) float64 { return 1 / Cbrt(x) }

// Kernels bundles the scalar kernels the energy code needs so callers hold
// one value and stay branch-free in inner loops.
type Kernels struct {
	Sqrt  func(float64) float64
	RSqrt func(float64) float64
	Exp   func(float64) float64
	Cbrt  func(float64) float64
}

// ForMode returns the kernel set for the given mode.
func ForMode(m Mode) Kernels {
	if m == Approximate {
		return Kernels{Sqrt: Sqrt, RSqrt: RSqrt, Exp: Exp, Cbrt: Cbrt}
	}
	return Kernels{
		Sqrt:  math.Sqrt,
		RSqrt: func(x float64) float64 { return 1 / math.Sqrt(x) },
		Exp:   math.Exp,
		Cbrt:  math.Cbrt,
	}
}
