// Package surface builds triangulated molecular surfaces and samples
// Gaussian quadrature points (q-points) from them — the inputs to the
// paper's surface-based r⁶ Born-radius approximation (Eq. 4): positions
// r_k, weights w_k and unit outward normals n_k.
//
// The construction is a star-shaped radial surface: an icosphere mesh
// whose vertices are pushed outward to the ray-cast boundary of the
// union of (vdW + probe) spheres, smoothed, and then sampled with a
// symmetric Dunavant quadrature rule on every triangle. The surface is a
// closed, consistently outward-oriented manifold, which is exactly what
// the divergence-theorem form of Eq. 4 requires (see DESIGN.md §2 for why
// this substitution preserves the paper's behaviour).
package surface

import (
	"math"

	"gbpolar/internal/geom"
)

// Mesh is a triangle mesh: vertex positions plus index triples.
type Mesh struct {
	Verts []geom.Vec3
	// Faces holds vertex indices, three per face, counter-clockwise when
	// seen from outside.
	Faces [][3]int
}

// NumFaces returns the face count.
func (m *Mesh) NumFaces() int { return len(m.Faces) }

// Icosphere returns a unit icosphere with the given subdivision level.
// Level 0 is the icosahedron (20 faces); each level quadruples the face
// count.
func Icosphere(level int) *Mesh {
	t := (1 + math.Sqrt(5)) / 2
	verts := []geom.Vec3{
		{X: -1, Y: t}, {X: 1, Y: t}, {X: -1, Y: -t}, {X: 1, Y: -t},
		{Y: -1, Z: t}, {Y: 1, Z: t}, {Y: -1, Z: -t}, {Y: 1, Z: -t},
		{X: t, Z: -1}, {X: t, Z: 1}, {X: -t, Z: -1}, {X: -t, Z: 1},
	}
	for i := range verts {
		verts[i] = verts[i].Unit()
	}
	faces := [][3]int{
		{0, 11, 5}, {0, 5, 1}, {0, 1, 7}, {0, 7, 10}, {0, 10, 11},
		{1, 5, 9}, {5, 11, 4}, {11, 10, 2}, {10, 7, 6}, {7, 1, 8},
		{3, 9, 4}, {3, 4, 2}, {3, 2, 6}, {3, 6, 8}, {3, 8, 9},
		{4, 9, 5}, {2, 4, 11}, {6, 2, 10}, {8, 6, 7}, {9, 8, 1},
	}
	m := &Mesh{Verts: verts, Faces: faces}
	for l := 0; l < level; l++ {
		m = m.subdivide()
	}
	m.orientOutward()
	return m
}

// subdivide splits every face into four, projecting midpoints onto the
// unit sphere.
func (m *Mesh) subdivide() *Mesh {
	type edge struct{ a, b int }
	mid := make(map[edge]int)
	out := &Mesh{Verts: append([]geom.Vec3(nil), m.Verts...)}
	midpoint := func(a, b int) int {
		if a > b {
			a, b = b, a
		}
		if v, ok := mid[edge{a, b}]; ok {
			return v
		}
		p := out.Verts[a].Add(out.Verts[b]).Scale(0.5).Unit()
		out.Verts = append(out.Verts, p)
		idx := len(out.Verts) - 1
		mid[edge{a, b}] = idx
		return idx
	}
	for _, f := range m.Faces {
		ab := midpoint(f[0], f[1])
		bc := midpoint(f[1], f[2])
		ca := midpoint(f[2], f[0])
		out.Faces = append(out.Faces,
			[3]int{f[0], ab, ca},
			[3]int{f[1], bc, ab},
			[3]int{f[2], ca, bc},
			[3]int{ab, bc, ca},
		)
	}
	return out
}

// orientOutward flips any face whose geometric normal points inward
// (relative to the mesh centroid). For star-shaped meshes this yields a
// consistent outward orientation.
func (m *Mesh) orientOutward() {
	c := geom.Centroid(m.Verts)
	for i, f := range m.Faces {
		a, b, d := m.Verts[f[0]], m.Verts[f[1]], m.Verts[f[2]]
		n := b.Sub(a).Cross(d.Sub(a))
		ctr := a.Add(b).Add(d).Scale(1.0 / 3)
		if n.Dot(ctr.Sub(c)) < 0 {
			m.Faces[i] = [3]int{f[0], f[2], f[1]}
		}
	}
}

// FaceNormalArea returns the outward unit normal and area of face i.
func (m *Mesh) FaceNormalArea(i int) (geom.Vec3, float64) {
	f := m.Faces[i]
	a, b, c := m.Verts[f[0]], m.Verts[f[1]], m.Verts[f[2]]
	cr := b.Sub(a).Cross(c.Sub(a))
	area2 := cr.Norm()
	if area2 == 0 {
		return geom.Vec3{}, 0
	}
	return cr.Scale(1 / area2), area2 / 2
}

// Area returns the total surface area.
func (m *Mesh) Area() float64 {
	var a float64
	for i := range m.Faces {
		_, fa := m.FaceNormalArea(i)
		a += fa
	}
	return a
}

// Volume returns the enclosed volume via the divergence theorem
// (1/3 ∮ p·n dA). It is positive for outward-oriented closed meshes —
// the orientation sanity check used by the tests.
func (m *Mesh) Volume() float64 {
	var v float64
	for _, f := range m.Faces {
		a, b, c := m.Verts[f[0]], m.Verts[f[1]], m.Verts[f[2]]
		v += a.Dot(b.Cross(c))
	}
	return v / 6
}
