package surface

// Dunavant symmetric Gaussian quadrature rules on the triangle
// (D. Dunavant, "High degree efficient symmetrical Gaussian quadrature
// rules for the triangle", IJNME 21(6), 1985 — reference [11] of the
// paper). Each rule lists barycentric points with weights that sum to 1;
// multiplying by the triangle area yields the surface weights w_k of
// Eq. 4. The paper uses "a constant number of quadrature points per
// triangle".
type baryPoint struct {
	l1, l2, l3 float64 // barycentric coordinates
	w          float64 // weight, normalized so the rule sums to 1
}

// quadRules[d] is the Dunavant rule of degree d.
var quadRules = map[int][]baryPoint{
	// Degree 1: centroid rule, exact for linear functions.
	1: {
		{1.0 / 3, 1.0 / 3, 1.0 / 3, 1.0},
	},
	// Degree 2: 3 points, exact for quadratics.
	2: {
		{2.0 / 3, 1.0 / 6, 1.0 / 6, 1.0 / 3},
		{1.0 / 6, 2.0 / 3, 1.0 / 6, 1.0 / 3},
		{1.0 / 6, 1.0 / 6, 2.0 / 3, 1.0 / 3},
	},
	// Degree 3: 4 points (one negative weight, the classical rule).
	3: {
		{1.0 / 3, 1.0 / 3, 1.0 / 3, -0.5625},
		{0.6, 0.2, 0.2, 0.5208333333333333},
		{0.2, 0.6, 0.2, 0.5208333333333333},
		{0.2, 0.2, 0.6, 0.5208333333333333},
	},
	// Degree 4: 6 points, all weights positive.
	4: {
		{0.108103018168070, 0.445948490915965, 0.445948490915965, 0.223381589678011},
		{0.445948490915965, 0.108103018168070, 0.445948490915965, 0.223381589678011},
		{0.445948490915965, 0.445948490915965, 0.108103018168070, 0.223381589678011},
		{0.816847572980459, 0.091576213509771, 0.091576213509771, 0.109951743655322},
		{0.091576213509771, 0.816847572980459, 0.091576213509771, 0.109951743655322},
		{0.091576213509771, 0.091576213509771, 0.816847572980459, 0.109951743655322},
	},
	// Degree 5: 7 points.
	5: {
		{1.0 / 3, 1.0 / 3, 1.0 / 3, 0.225},
		{0.059715871789770, 0.470142064105115, 0.470142064105115, 0.132394152788506},
		{0.470142064105115, 0.059715871789770, 0.470142064105115, 0.132394152788506},
		{0.470142064105115, 0.470142064105115, 0.059715871789770, 0.132394152788506},
		{0.797426985353087, 0.101286507323456, 0.101286507323456, 0.125939180544827},
		{0.101286507323456, 0.797426985353087, 0.101286507323456, 0.125939180544827},
		{0.101286507323456, 0.101286507323456, 0.797426985353087, 0.125939180544827},
	},
}

// QuadratureDegrees returns the available rule degrees in ascending order.
func QuadratureDegrees() []int { return []int{1, 2, 3, 4, 5} }

// PointsPerTriangle returns how many q-points the rule of the given
// degree places on each triangle (0 for an unknown degree).
func PointsPerTriangle(degree int) int { return len(quadRules[degree]) }
