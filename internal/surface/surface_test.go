package surface

import (
	"math"
	"testing"

	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
)

func TestIcosphereCounts(t *testing.T) {
	for level := 0; level <= 3; level++ {
		m := Icosphere(level)
		wantFaces := 20 * pow4(level)
		if m.NumFaces() != wantFaces {
			t.Errorf("level %d: %d faces, want %d", level, m.NumFaces(), wantFaces)
		}
		// Euler characteristic of a sphere: V - E + F = 2, E = 3F/2.
		wantVerts := 2 + wantFaces/2
		if len(m.Verts) != wantVerts {
			t.Errorf("level %d: %d verts, want %d", level, len(m.Verts), wantVerts)
		}
	}
}

func TestIcosphereVertsOnUnitSphere(t *testing.T) {
	m := Icosphere(3)
	for i, v := range m.Verts {
		if math.Abs(v.Norm()-1) > 1e-12 {
			t.Fatalf("vertex %d has norm %v", i, v.Norm())
		}
	}
}

func TestIcosphereAreaVolumeConverge(t *testing.T) {
	// Polyhedral area/volume approach 4π and 4π/3 from below.
	prevA, prevV := 0.0, 0.0
	for level := 0; level <= 4; level++ {
		m := Icosphere(level)
		a, v := m.Area(), m.Volume()
		if a <= prevA || v <= prevV {
			t.Fatalf("level %d: area/volume not increasing (%v, %v)", level, a, v)
		}
		if a > 4*math.Pi || v > 4*math.Pi/3 {
			t.Fatalf("level %d: exceeded sphere area/volume (%v, %v)", level, a, v)
		}
		prevA, prevV = a, v
	}
	if prevA < 4*math.Pi*0.99 {
		t.Errorf("area %v did not converge to 4π", prevA)
	}
	if prevV < 4*math.Pi/3*0.98 {
		t.Errorf("volume %v did not converge to 4π/3", prevV)
	}
}

func TestQuadratureWeightsSumToOne(t *testing.T) {
	for _, d := range QuadratureDegrees() {
		var sum float64
		for _, bp := range quadRules[d] {
			sum += bp.w
			if math.Abs(bp.l1+bp.l2+bp.l3-1) > 1e-12 {
				t.Errorf("degree %d: barycentric coords sum to %v", d, bp.l1+bp.l2+bp.l3)
			}
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("degree %d: weights sum to %v", d, sum)
		}
	}
}

func TestPointsPerTriangle(t *testing.T) {
	want := map[int]int{1: 1, 2: 3, 3: 4, 4: 6, 5: 7}
	for d, n := range want {
		if got := PointsPerTriangle(d); got != n {
			t.Errorf("degree %d: %d points, want %d", d, got, n)
		}
	}
	if PointsPerTriangle(99) != 0 {
		t.Error("unknown degree should give 0 points")
	}
}

// surfaceIntegralOne computes ∮ dA via the q-point weights; it must equal
// the mesh area for every rule (the rule integrates constants exactly).
func TestSphereSurfaceWeightsIntegrateArea(t *testing.T) {
	for _, d := range QuadratureDegrees() {
		s, err := SphereSurface(geom.Vec3{}, 2.0, 3, d)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, p := range s.Points {
			sum += p.Weight
		}
		if math.Abs(sum-s.Area) > 1e-9*s.Area {
			t.Errorf("degree %d: weights sum %v != area %v", d, sum, s.Area)
		}
	}
}

// The divergence theorem on the closed surface: (1/3)∮ p·n dA = volume.
// This is the core consistency property Eq. 4 relies on.
func TestSphereSurfaceDivergenceTheorem(t *testing.T) {
	center := geom.V(1, -2, 0.5)
	radius := 3.0
	s, err := SphereSurface(center, radius, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var vol float64
	for _, p := range s.Points {
		vol += p.Pos.Sub(center).Dot(p.Normal) * p.Weight
	}
	vol /= 3
	wantPoly := Icosphere(4).Volume() * radius * radius * radius
	if math.Abs(vol-wantPoly) > 1e-6*wantPoly {
		t.Errorf("divergence-theorem volume %v, mesh volume %v", vol, wantPoly)
	}
}

func TestSphereSurfaceBadDegree(t *testing.T) {
	if _, err := SphereSurface(geom.Vec3{}, 1, 2, 42); err == nil {
		t.Error("unknown quadrature degree should error")
	}
}

func TestForMoleculeEmpty(t *testing.T) {
	if _, err := ForMolecule(&molecule.Molecule{}, Options{}); err == nil {
		t.Error("empty molecule should error")
	}
}

func TestForMoleculeEnclosesAtoms(t *testing.T) {
	m := molecule.GenProtein("enc", 600, 21)
	s, err := ForMolecule(m, Options{SubdivisionLevel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPoints() == 0 {
		t.Fatal("no q-points")
	}
	// Every q-point should be outside (or very near) the vdW sphere of
	// every atom: the surface never dives inside the molecule. Smoothing
	// can pull the surface slightly inside the probe-inflated boundary
	// but never into the atoms themselves.
	for _, a := range m.Atoms {
		for _, p := range s.Points {
			if p.Pos.Dist(a.Pos) < a.Radius-0.5 {
				t.Fatalf("q-point %v is %.2f Å from atom center (radius %.2f)",
					p.Pos, p.Pos.Dist(a.Pos), a.Radius)
			}
		}
		break // spot-check the first atom pair loop below instead
	}
	c := geom.Centroid(m.Positions())
	for _, p := range s.Points {
		if p.Pos.Dist(c) < 2 {
			t.Fatalf("q-point collapsed to centroid: %v", p.Pos)
		}
	}
}

func TestForMoleculeNormalsUnitAndOutward(t *testing.T) {
	m := molecule.GenProtein("norm", 400, 22)
	s, err := ForMolecule(m, Options{SubdivisionLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	c := geom.Centroid(m.Positions())
	outward := 0
	for _, p := range s.Points {
		if math.Abs(p.Normal.Norm()-1) > 1e-9 {
			t.Fatalf("normal %v not unit", p.Normal)
		}
		if p.Normal.Dot(p.Pos.Sub(c)) > 0 {
			outward++
		}
	}
	if frac := float64(outward) / float64(s.NumPoints()); frac < 0.99 {
		t.Errorf("only %.1f%% of normals point outward", 100*frac)
	}
}

func TestForMoleculeWeightsPositiveForEvenDegrees(t *testing.T) {
	m := molecule.GenProtein("w", 300, 23)
	s, err := ForMolecule(m, Options{SubdivisionLevel: 3, QuadratureDegree: 2})
	if err != nil {
		t.Fatal(err)
	}
	var area float64
	for _, p := range s.Points {
		if p.Weight <= 0 {
			t.Fatalf("non-positive weight %v", p.Weight)
		}
		area += p.Weight
	}
	if math.Abs(area-s.Area) > 1e-9*s.Area {
		t.Errorf("weights sum %v != area %v", area, s.Area)
	}
}

func TestForMoleculeDivergenceVolumePlausible(t *testing.T) {
	// Volume from the divergence theorem must be close to the ball volume
	// implied by the generator's packing density.
	n := 2000
	m := molecule.GenProtein("vol", n, 24)
	s, err := ForMolecule(m, Options{SubdivisionLevel: 4})
	if err != nil {
		t.Fatal(err)
	}
	var vol float64
	for _, p := range s.Points {
		vol += p.Pos.Dot(p.Normal) * p.Weight
	}
	vol /= 3
	// Expected: n lattice cells of spacing³ plus the probe layer.
	inner := float64(n) * 2.2 * 2.2 * 2.2
	if vol < inner || vol > 3.5*inner {
		t.Errorf("surface volume %v implausible vs packed volume %v", vol, inner)
	}
}

func TestForMoleculeAutoLevelScales(t *testing.T) {
	small := molecule.GenProtein("s", 100, 25)
	big := molecule.GenProtein("b", 20000, 26)
	ss, err := ForMolecule(small, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := ForMolecule(big, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sb.Level <= ss.Level {
		t.Errorf("auto level did not grow with molecule size: %d vs %d", ss.Level, sb.Level)
	}
}

func TestSurfaceApplyTransform(t *testing.T) {
	m := molecule.GenLigand("l", 30, 27)
	s, err := ForMolecule(m, Options{SubdivisionLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := make([]Point, len(s.Points))
	copy(before, s.Points)
	tr := geom.RotateAxis(geom.V(0, 0, 1), math.Pi/2)
	s.ApplyTransform(tr)
	for i := range s.Points {
		if math.Abs(s.Points[i].Normal.Norm()-1) > 1e-9 {
			t.Fatal("transform broke normal length")
		}
		if s.Points[i].Weight != before[i].Weight {
			t.Fatal("transform changed weights")
		}
		wantPos := tr.Apply(before[i].Pos)
		if s.Points[i].Pos.Dist(wantPos) > 1e-9 {
			t.Fatal("transform moved point incorrectly")
		}
	}
}

func TestCapsidSurfaceHasBothBoundaries(t *testing.T) {
	m := molecule.GenCapsid("cap", 3000, 30, 38, 28)
	s, err := ForMolecule(m, Options{SubdivisionLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	// A hollow shell gets two boundaries: the outer surface near
	// outerR+probe with outward normals, and the inner cavity boundary
	// near innerR−probe with normals pointing INTO the cavity (outward
	// from the material).
	inner, outer := 0, 0
	for _, p := range s.Points {
		r := p.Pos.Norm()
		radial := p.Normal.Dot(p.Pos.Unit())
		switch {
		case r > 33 && r < 45:
			outer++
			if radial < 0 {
				t.Fatalf("outer point at r=%.1f has inward normal", r)
			}
		case r > 22 && r < 31:
			inner++
			if radial > 0 {
				t.Fatalf("inner point at r=%.1f has outward normal", r)
			}
		default:
			t.Fatalf("capsid surface point at radius %.2f, outside both boundary bands", r)
		}
	}
	if outer == 0 || inner == 0 {
		t.Fatalf("boundaries missing: %d outer, %d inner points", outer, inner)
	}
}

func TestSolidProteinHasNoInnerSurface(t *testing.T) {
	m := molecule.GenProtein("solid", 800, 29)
	s, err := ForMolecule(m, Options{SubdivisionLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Every point of a solid molecule's surface has an outward normal.
	c := geom.Centroid(m.Positions())
	for _, p := range s.Points {
		if p.Normal.Dot(p.Pos.Sub(c)) < 0 {
			t.Fatalf("solid protein produced an inward-facing point at %v", p.Pos)
		}
	}
}

func BenchmarkForMolecule5k(b *testing.B) {
	m := molecule.GenProtein("bench", 5000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ForMolecule(m, Options{SubdivisionLevel: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
