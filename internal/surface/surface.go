package surface

import (
	"fmt"
	"math"

	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
)

// Point is one surface quadrature point (q-point): the triple
// (r_k, n_k, w_k) of Eq. 4.
type Point struct {
	Pos    geom.Vec3
	Normal geom.Vec3 // unit outward surface normal at Pos
	Weight float64   // quadrature weight (has units of area, Å²)
}

// Surface is a sampled molecular surface.
type Surface struct {
	Points []Point
	// Area is the total area of the triangulated surface.
	Area float64
	// Level and Degree record how the surface was sampled.
	Level, Degree int
}

// NumPoints returns the number of q-points.
func (s *Surface) NumPoints() int { return len(s.Points) }

// MemoryBytes estimates the resident size of the q-point array, for the
// cluster runtime's replication accounting.
func (s *Surface) MemoryBytes() int64 {
	const pointBytes = 7 * 8 // two vectors + weight
	return int64(len(s.Points)) * pointBytes
}

// ApplyTransform rigidly re-poses the surface in place (positions moved,
// normals rotated), matching molecule.Molecule.ApplyTransform.
func (s *Surface) ApplyTransform(t geom.Transform) {
	for i := range s.Points {
		s.Points[i].Pos = t.Apply(s.Points[i].Pos)
		s.Points[i].Normal = t.ApplyVector(s.Points[i].Normal)
	}
}

// Options configures surface generation.
type Options struct {
	// SubdivisionLevel sets the icosphere level; 0 selects automatically
	// from the atom count (targeting ≈2–4 q-points per atom as in the
	// paper's inputs).
	SubdivisionLevel int
	// QuadratureDegree selects the Dunavant rule (1–5). Default 2
	// (3 points per triangle).
	QuadratureDegree int
	// ProbeRadius is added to every atom radius before ray casting
	// (solvent-accessible surface). Default 1.4 Å (water).
	ProbeRadius float64
	// SmoothingRounds applies Laplacian smoothing to the radial field to
	// remove single-atom spikes. Default 2.
	SmoothingRounds int
}

func (o Options) withDefaults(natoms int) Options {
	if o.QuadratureDegree == 0 {
		o.QuadratureDegree = 2
	}
	if o.ProbeRadius == 0 {
		o.ProbeRadius = 1.4
	}
	if o.SmoothingRounds == 0 {
		o.SmoothingRounds = 2
	}
	if o.SubdivisionLevel == 0 {
		ppt := PointsPerTriangle(o.QuadratureDegree)
		if ppt == 0 {
			ppt = 3
		}
		target := 3 * natoms
		level := 2
		for level < 7 && 20*pow4(level)*ppt < target {
			level++
		}
		o.SubdivisionLevel = level
	}
	return o
}

func pow4(l int) int {
	n := 1
	for i := 0; i < l; i++ {
		n *= 4
	}
	return n
}

// ForMolecule builds the sampled molecular surface of m.
//
// The surface is the star-shaped radial boundary of the union of
// (vdW+probe) spheres as seen from the molecule's centroid, triangulated
// on an icosphere and smoothed; every triangle carries a Dunavant
// quadrature rule. See the package comment for why this is a faithful
// substitute for the paper's externally-prepared surfaces.
func ForMolecule(m *molecule.Molecule, opts Options) (*Surface, error) {
	if m.NumAtoms() == 0 {
		return nil, fmt.Errorf("surface: molecule %q has no atoms", m.Name)
	}
	opts = opts.withDefaults(m.NumAtoms())
	rule, ok := quadRules[opts.QuadratureDegree]
	if !ok {
		return nil, fmt.Errorf("surface: no quadrature rule of degree %d", opts.QuadratureDegree)
	}

	mesh := Icosphere(opts.SubdivisionLevel)
	c := geom.Centroid(positionsOf(m))

	exit, entry := castRadii(m, c, mesh.Verts, opts.ProbeRadius)
	radii := exit
	for r := 0; r < opts.SmoothingRounds; r++ {
		radii = smoothRadial(mesh, radii)
	}
	// Displace the unit icosphere vertices to the radial surface.
	dirs := append([]geom.Vec3(nil), mesh.Verts...)
	for i := range mesh.Verts {
		mesh.Verts[i] = c.Add(mesh.Verts[i].Scale(radii[i]))
	}
	mesh.orientOutward()

	s := &Surface{
		Level:  opts.SubdivisionLevel,
		Degree: opts.QuadratureDegree,
		Points: make([]Point, 0, len(mesh.Faces)*len(rule)),
	}
	s.appendMesh(mesh, rule, false)

	// Hollow molecules (virus capsids): if every inward ray crosses a
	// solvent-sized gap before reaching the material, the interior cavity
	// is solvent-filled and needs its own boundary, oriented toward the
	// cavity (i.e. outward from the molecular material). Without it the
	// surface integral of Eq. 4 treats the cavity as buried interior and
	// the Born radii of shell atoms are badly overestimated.
	minEntry := math.Inf(1)
	for _, e := range entry {
		if e < minEntry {
			minEntry = e
		}
	}
	if minEntry > 2*opts.ProbeRadius+1 {
		inner := Icosphere(opts.SubdivisionLevel)
		entrySm := entry
		for r := 0; r < opts.SmoothingRounds; r++ {
			entrySm = smoothRadial(inner, entrySm)
		}
		for i := range inner.Verts {
			inner.Verts[i] = c.Add(dirs[i].Scale(entrySm[i]))
		}
		inner.orientOutward()
		s.appendMesh(inner, rule, true) // flipped: normals toward the cavity
	}
	return s, nil
}

// appendMesh samples one mesh into the surface; flip reverses the
// normals (inner cavity boundaries point away from the material).
func (s *Surface) appendMesh(mesh *Mesh, rule []baryPoint, flip bool) {
	for fi, f := range mesh.Faces {
		n, area := mesh.FaceNormalArea(fi)
		if area == 0 {
			continue
		}
		if flip {
			n = n.Scale(-1)
		}
		a, b, d := mesh.Verts[f[0]], mesh.Verts[f[1]], mesh.Verts[f[2]]
		for _, bp := range rule {
			p := a.Scale(bp.l1).Add(b.Scale(bp.l2)).Add(d.Scale(bp.l3))
			s.Points = append(s.Points, Point{Pos: p, Normal: n, Weight: bp.w * area})
		}
		s.Area += area
	}
}

func positionsOf(m *molecule.Molecule) []geom.Vec3 {
	pts := make([]geom.Vec3, len(m.Atoms))
	for i, a := range m.Atoms {
		pts[i] = a.Pos
	}
	return pts
}

// castRadii computes, for every direction dirs[i] (unit vectors from c),
// the largest ray–sphere exit distance over all inflated atom spheres
// (the outer radial surface for star-shaped molecules) and the smallest
// entry distance (the inner cavity boundary of hollow molecules; 0 when
// the ray starts inside the material).
//
// Atoms are bucketed on a latitude/longitude grid by their direction from
// c so each ray only tests nearby atoms; atoms subtending a wide angle
// (near the centroid) go to a broad list tested against every ray.
func castRadii(m *molecule.Molecule, c geom.Vec3, dirs []geom.Vec3, probe float64) (exits, entries []float64) {
	const binAngle = math.Pi / 36 // 5° bins
	nLat := int(math.Pi/binAngle) + 1
	nLon := int(2*math.Pi/binAngle) + 1
	type atomRec struct {
		rel geom.Vec3 // atom center relative to c
		r   float64   // inflated radius
	}
	bins := make([][]atomRec, nLat*nLon)
	var broad []atomRec

	latOf := func(v geom.Vec3) float64 { return math.Acos(clamp(v.Z, -1, 1)) }
	lonOf := func(v geom.Vec3) float64 {
		l := math.Atan2(v.Y, v.X)
		if l < 0 {
			l += 2 * math.Pi
		}
		return l
	}
	binIndex := func(la, lo int) int {
		lo = ((lo % nLon) + nLon) % nLon
		if la < 0 {
			la = 0
		}
		if la >= nLat {
			la = nLat - 1
		}
		return la*nLon + lo
	}

	for _, a := range m.Atoms {
		rec := atomRec{rel: a.Pos.Sub(c), r: a.Radius + probe}
		d := rec.rel.Norm()
		if d <= rec.r || math.Asin(clamp(rec.r/d, 0, 1)) > 4*binAngle {
			broad = append(broad, rec)
			continue
		}
		u := rec.rel.Scale(1 / d)
		alpha := math.Asin(clamp(rec.r/d, 0, 1))
		la := int(latOf(u) / binAngle)
		lo := int(lonOf(u) / binAngle)
		span := int(alpha/binAngle) + 1
		// Longitude bins shrink near the poles; widen the span there.
		sinLat := math.Sin(latOf(u))
		lonSpan := span
		if sinLat > 1e-3 {
			lonSpan = int(alpha/(binAngle*sinLat)) + 1
		}
		if lonSpan > nLon/2 {
			lonSpan = nLon / 2
		}
		for dla := -span; dla <= span; dla++ {
			for dlo := -lonSpan; dlo <= lonSpan; dlo++ {
				idx := binIndex(la+dla, lo+dlo)
				bins[idx] = append(bins[idx], rec)
			}
		}
	}

	hit := func(rec atomRec, u geom.Vec3) (tIn, tOut float64, ok bool) {
		b := rec.rel.Dot(u)
		disc := rec.r*rec.r - (rec.rel.Norm2() - b*b)
		if disc < 0 {
			return 0, 0, false
		}
		sq := math.Sqrt(disc)
		return b - sq, b + sq, b+sq > 0
	}

	exits = make([]float64, len(dirs))
	entries = make([]float64, len(dirs))
	for i, u := range dirs {
		la := int(latOf(u) / binAngle)
		lo := int(lonOf(u) / binAngle)
		best := 0.0
		first := math.Inf(1)
		scan := func(rec atomRec) {
			tIn, tOut, ok := hit(rec, u)
			if !ok {
				return
			}
			if tOut > best {
				best = tOut
			}
			if tIn < 0 {
				tIn = 0
			}
			if tIn < first {
				first = tIn
			}
		}
		for _, rec := range bins[binIndex(la, lo)] {
			scan(rec)
		}
		for _, rec := range broad {
			scan(rec)
		}
		if best == 0 {
			// No hit (ray through a gap): fall back to the smallest
			// inflated radius so the surface stays closed.
			best = probe + 1
			first = 0
		}
		exits[i] = best
		entries[i] = first
	}
	return exits, entries
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// smoothRadial runs one Laplacian smoothing round over the radial field.
func smoothRadial(mesh *Mesh, radii []float64) []float64 {
	sum := make([]float64, len(radii))
	cnt := make([]int, len(radii))
	for _, f := range mesh.Faces {
		for i := 0; i < 3; i++ {
			a, b := f[i], f[(i+1)%3]
			sum[a] += radii[b]
			cnt[a]++
			sum[b] += radii[a]
			cnt[b]++
		}
	}
	out := make([]float64, len(radii))
	for i := range radii {
		if cnt[i] == 0 {
			out[i] = radii[i]
			continue
		}
		avg := sum[i] / float64(cnt[i])
		out[i] = 0.5*radii[i] + 0.5*avg
	}
	return out
}

// SphereSurface samples a sphere of the given center and radius: the
// analytic reference surface used by the tests (a point charge at the
// center of a spherical solute has Born radius exactly equal to the
// sphere radius).
func SphereSurface(center geom.Vec3, radius float64, level, degree int) (*Surface, error) {
	rule, ok := quadRules[degree]
	if !ok {
		return nil, fmt.Errorf("surface: no quadrature rule of degree %d", degree)
	}
	mesh := Icosphere(level)
	for i := range mesh.Verts {
		mesh.Verts[i] = center.Add(mesh.Verts[i].Scale(radius))
	}
	mesh.orientOutward()
	s := &Surface{Level: level, Degree: degree}
	for fi, f := range mesh.Faces {
		n, area := mesh.FaceNormalArea(fi)
		a, b, d := mesh.Verts[f[0]], mesh.Verts[f[1]], mesh.Verts[f[2]]
		for _, bp := range rule {
			p := a.Scale(bp.l1).Add(b.Scale(bp.l2)).Add(d.Scale(bp.l3))
			s.Points = append(s.Points, Point{Pos: p, Normal: n, Weight: bp.w * area})
		}
		s.Area += area
	}
	return s, nil
}
