package gbmodels

import (
	"math"
	"testing"

	"gbpolar/internal/molecule"
	"gbpolar/internal/nblist"
)

func TestHCTRangeMatchesNblistWithFullCutoff(t *testing.T) {
	m := molecule.GenProtein("range", 300, 121)
	nb, err := nblist.Build(m.Positions(), 1e6, nblist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := HCT{}.BornRadii(m, nb)
	inv := HCTInverseRadiiRange(m, 0, m.NumAtoms(), HCTDescreenScale)
	got := HCTRadiiFromInverse(m, 0, inv)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*want[i] {
			t.Fatalf("atom %d: range %v, nblist %v", i, got[i], want[i])
		}
	}
}

func TestRangePartitionsCompose(t *testing.T) {
	m := molecule.GenProtein("parts", 200, 122)
	full := StillRadiiRange(m, 0, m.NumAtoms())
	lo := StillRadiiRange(m, 0, 77)
	hi := StillRadiiRange(m, 77, m.NumAtoms())
	for i := range full {
		var v float64
		if i < 77 {
			v = lo[i]
		} else {
			v = hi[i-77]
		}
		if v != full[i] {
			t.Fatalf("atom %d: partitioned %v, full %v", i, v, full[i])
		}
	}
}

func TestEnergyRangeMatchesAllPairs(t *testing.T) {
	m := molecule.GenProtein("erange", 200, 123)
	radii := make([]float64, m.NumAtoms())
	for i := range radii {
		radii[i] = m.Atoms[i].Radius * 1.5
	}
	want := EnergyAllPairs(m, radii, 80)
	raw := EnergyRange(m, radii, 0, 100) + EnergyRange(m, radii, 100, m.NumAtoms())
	got := -0.5 * Tau(80) * raw
	if math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Errorf("EnergyRange total %v, EnergyAllPairs %v", got, want)
	}
}

func TestOBCRangeMatchesModel(t *testing.T) {
	m := molecule.GenProtein("obcr", 250, 124)
	nb, err := nblist.Build(m.Positions(), 1e6, nblist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := OBC{}.BornRadii(m, nb)
	inv := HCTInverseRadiiRange(m, 0, m.NumAtoms(), OBCDescreenScale)
	got := OBCRadiiFromInverse(m, 0, inv)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*want[i] {
			t.Fatalf("atom %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestVR6RangeMatchesModel(t *testing.T) {
	m := molecule.GenProtein("vr6r", 250, 125)
	nb, err := nblist.Build(m.Positions(), 1e6, nblist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := VR6{}.BornRadii(m, nb)
	got := VR6RadiiRange(m, 0, m.NumAtoms())
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*want[i] {
			t.Fatalf("atom %d: %v vs %v", i, got[i], want[i])
		}
	}
}
