package gbmodels

import (
	"math"

	"gbpolar/internal/molecule"
)

// The functions in this file are the row-partitioned, untruncated
// (all-pairs) variants the baseline packages use under atom-based MPI
// division: rank r computes rows [lo, hi) of the pairwise sums against
// ALL atoms — Θ(M²/P) work per rank, the scaling the paper's octree
// replaces. They return values only for the owned rows.

// HCTInverseRadiiRange returns 1/R for atoms lo..hi−1 via all-pairs HCT
// descreening (Amber's GB default runs without a Born-radius cutoff)
// with the given descreening scale (HCTDescreenScale or
// OBCDescreenScale).
func HCTInverseRadiiRange(m *molecule.Molecule, lo, hi int, scale float64) []float64 {
	out := make([]float64, hi-lo)
	for i := lo; i < hi; i++ {
		rhoi := m.Atoms[i].Radius - dielectricOffset
		inv := 1 / rhoi
		for j := range m.Atoms {
			if j == i {
				continue
			}
			r := m.Atoms[i].Pos.Dist(m.Atoms[j].Pos)
			inv -= 0.5 * hctIntegral(r, rhoi, scale*(m.Atoms[j].Radius-dielectricOffset))
		}
		out[i-lo] = inv
	}
	return out
}

// HCTRadiiFromInverse converts inverse radii to clamped Born radii
// (shared by the HCT-family packages).
func HCTRadiiFromInverse(m *molecule.Molecule, lo int, inv []float64) []float64 {
	out := make([]float64, len(inv))
	for k, v := range inv {
		rho := m.Atoms[lo+k].Radius - dielectricOffset
		if v <= 0 {
			out[k] = 30 * rho
			continue
		}
		out[k] = 1 / v
		if out[k] < rho {
			out[k] = rho
		}
	}
	return out
}

// OBCRadiiFromInverse applies the OBC tanh rescaling to HCT inverse
// radii.
func OBCRadiiFromInverse(m *molecule.Molecule, lo int, inv []float64) []float64 {
	out := make([]float64, len(inv))
	for k, v := range inv {
		rhoTilde := m.Atoms[lo+k].Radius - dielectricOffset
		rho := m.Atoms[lo+k].Radius
		psi := rhoTilde * (1/rhoTilde - v)
		th := math.Tanh(obcAlpha*psi - obcBeta*psi*psi + obcGamma*psi*psi*psi)
		r := 1 / (1/rhoTilde - th/rho)
		if r < rhoTilde || math.IsInf(r, 0) || math.IsNaN(r) || r < 0 {
			r = rhoTilde
		}
		out[k] = r
	}
	return out
}

// StillRadiiRange returns Born radii for rows lo..hi−1 via all-pairs
// Coulomb-field (r⁴) volume descreening (Tinker's Still-style model).
func StillRadiiRange(m *molecule.Molecule, lo, hi int) []float64 {
	out := make([]float64, hi-lo)
	for i := lo; i < hi; i++ {
		rho := m.Atoms[i].Radius
		inv := 1 / rho
		for j := range m.Atoms {
			if j == i {
				continue
			}
			r2 := m.Atoms[i].Pos.Dist2(m.Atoms[j].Pos)
			r4 := r2 * r2
			inv -= StillVolumeFactor * sphereVolume(m.Atoms[j].Radius) / (4 * math.Pi * r4)
		}
		if inv <= 1/(30*rho) {
			out[i-lo] = 30 * rho
			continue
		}
		out[i-lo] = 1 / inv
		if out[i-lo] < rho {
			out[i-lo] = rho
		}
	}
	return out
}

// VR6RadiiRange returns Born radii for rows lo..hi−1 via all-pairs
// volume-based r⁶ descreening (GBr⁶'s model).
func VR6RadiiRange(m *molecule.Molecule, lo, hi int) []float64 {
	out := make([]float64, hi-lo)
	for i := lo; i < hi; i++ {
		rho := m.Atoms[i].Radius
		invCubed := 1 / (rho * rho * rho)
		for j := range m.Atoms {
			if j == i {
				continue
			}
			r2 := m.Atoms[i].Pos.Dist2(m.Atoms[j].Pos)
			r6 := r2 * r2 * r2
			invCubed -= VR6VolumeFactor * 3 * sphereVolume(m.Atoms[j].Radius) / (4 * math.Pi * r6)
		}
		maxR := 30 * rho
		if invCubed <= 1/(maxR*maxR*maxR) {
			out[i-lo] = maxR
			continue
		}
		out[i-lo] = 1 / math.Cbrt(invCubed)
		if out[i-lo] < rho {
			out[i-lo] = rho
		}
	}
	return out
}

// EnergyRange returns the raw ordered-pair energy sum Σ_i∈[lo,hi) Σ_j
// q_i·q_j/f_GB (diagonal included). Multiply the global total by −τ/2.
// radii must cover all atoms.
func EnergyRange(m *molecule.Molecule, radii []float64, lo, hi int) float64 {
	var e float64
	for i := lo; i < hi; i++ {
		qi := m.Atoms[i].Charge
		ri := radii[i]
		var row float64
		for j := range m.Atoms {
			r2 := m.Atoms[i].Pos.Dist2(m.Atoms[j].Pos)
			row += m.Atoms[j].Charge / FGB(r2, ri, radii[j])
		}
		// FGB(0, ri, ri) = ri, so the diagonal is handled by the j loop.
		e += qi * row
	}
	return e
}
