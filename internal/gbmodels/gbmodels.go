// Package gbmodels implements the pairwise Generalized Born flavors the
// baseline MD packages use (Table II of the paper): the HCT pairwise-
// descreening model (Amber, Gromacs), the OBC rescaled variant (NAMD),
// the Still-style model (Tinker) and the volume-based r⁶ descreening of
// GBr⁶ — plus the shared Still f_GB interaction kernel used by every
// package, including the paper's octree algorithms.
package gbmodels

import (
	"fmt"
	"math"

	"gbpolar/internal/molecule"
	"gbpolar/internal/nblist"
)

// CoulombConstant converts e²/Å to kcal/mol.
const CoulombConstant = 332.0636

// DefaultSolventDielectric is the relative permittivity of water.
const DefaultSolventDielectric = 80.0

// Tau returns the GB prefactor τ = k_e·(1 − 1/ε_solv) so that
// E_pol = −(τ/2)·Σ q_i q_j / f_GB is in kcal/mol.
func Tau(epsSolv float64) float64 {
	return CoulombConstant * (1 - 1/epsSolv)
}

// FGB evaluates the Still interaction kernel
// f_GB = sqrt(r² + R_i·R_j·exp(−r²/(4·R_i·R_j))) (Eq. 2 of the paper).
func FGB(r2, ri, rj float64) float64 {
	rr := ri * rj
	return math.Sqrt(r2 + rr*math.Exp(-r2/(4*rr)))
}

// PairEnergy returns the energy contribution of an ordered atom pair
// with squared distance r2 (use r2=0 and i==j for the self term, where
// f_GB reduces to R_i).
func PairEnergy(tau, qi, qj, r2, ri, rj float64) float64 {
	return -0.5 * tau * qi * qj / FGB(r2, ri, rj)
}

// Model computes effective Born radii for a molecule from a cutoff
// neighbor list. Implementations differ exactly the way the packages in
// Table II differ.
type Model interface {
	// Name identifies the model (HCT, OBC, STILL, VR6).
	Name() string
	// BornRadii returns one effective Born radius per atom. Interactions
	// beyond the neighbor list's cutoff are ignored — the truncation
	// artifact inherent to nblist-based packages.
	BornRadii(m *molecule.Molecule, nb *nblist.List) []float64
}

// DielectricOffset shrinks vdW radii to intrinsic Born radii
// (the standard 0.09 Å of HCT/OBC parameterizations).
const DielectricOffset = 0.09

// dielectricOffset is the package-internal alias.
const dielectricOffset = DielectricOffset

// Descreening scale factors applied to neighbor radii. Package
// parameterizations use per-element values tuned on real proteins; a
// single scale per model, calibrated once against the naive surface-r⁶
// reference on the synthetic generator's packing fraction (see
// EXPERIMENTS.md "model calibration"), keeps the models honest but
// simple. The generator's 2.2 Å jittered lattice has a lower van der
// Waals volume fraction than a covalently bonded protein, so the scales
// sit above the literature's ≈0.8 per-element values.
const (
	// HCTDescreenScale calibrates the plain HCT model (Amber, Gromacs).
	HCTDescreenScale = 1.08
	// OBCDescreenScale calibrates the tanh-rescaled variant (NAMD).
	OBCDescreenScale = 1.0
)

// StillVolumeFactor multiplies the Coulomb-field volume descreening of
// the Still-style model (Tinker). Calibrated so the model lands near the
// ≈70%-of-naive deviation the paper's Figure 9 reports for Tinker.
const StillVolumeFactor = 1.3

// VR6VolumeFactor multiplies the volume-r⁶ descreening of the GBr⁶-style
// model (overlap/self-consistency correction; GBr⁶ itself adds
// higher-order neighbor-overlap terms).
const VR6VolumeFactor = 2.0

// HCTIntegral exposes the closed-form HCT descreening integral for the
// baseline packages' row-partitioned accumulation.
func HCTIntegral(r, rhoi, sj float64) float64 { return hctIntegral(r, rhoi, sj) }

// HCT is the Hawkins–Cramer–Truhlar pairwise descreening model
// (reference [17] of the paper; Amber's and Gromacs' default GB).
type HCT struct{}

// Name implements Model.
func (HCT) Name() string { return "HCT" }

// BornRadii implements Model using the closed-form HCT descreening
// integral accumulated over neighbor pairs.
func (HCT) BornRadii(m *molecule.Molecule, nb *nblist.List) []float64 {
	inv := hctInverseRadii(m, nb, HCTDescreenScale)
	out := make([]float64, len(inv))
	for i, v := range inv {
		rho := m.Atoms[i].Radius - dielectricOffset
		if v <= 0 {
			// Fully descreened (deeply buried): clamp to a large radius.
			out[i] = 30 * rho
			continue
		}
		out[i] = 1 / v
		if out[i] < rho {
			out[i] = rho
		}
	}
	return out
}

// hctInverseRadii returns 1/R_i = 1/ρ_i − Σ_j I(r_ij, ρ_i, s·ρ_j)/2.
func hctInverseRadii(m *molecule.Molecule, nb *nblist.List, scale float64) []float64 {
	inv := make([]float64, len(m.Atoms))
	for i, a := range m.Atoms {
		inv[i] = 1 / (a.Radius - dielectricOffset)
	}
	nb.ForEachPair(func(i, j int32) {
		r := m.Atoms[i].Pos.Dist(m.Atoms[j].Pos)
		inv[i] -= 0.5 * hctIntegral(r, m.Atoms[i].Radius-dielectricOffset, scale*(m.Atoms[j].Radius-dielectricOffset))
		inv[j] -= 0.5 * hctIntegral(r, m.Atoms[j].Radius-dielectricOffset, scale*(m.Atoms[i].Radius-dielectricOffset))
	})
	return inv
}

// hctIntegral is the closed-form Coulomb-field descreening integral of a
// sphere of radius sj at distance r from an atom of intrinsic radius
// rhoi (Hawkins, Cramer & Truhlar 1996).
func hctIntegral(r, rhoi, sj float64) float64 {
	if sj <= 0 {
		return 0
	}
	// The descreening sphere does not reach the atom surface.
	if r >= rhoi+sj {
		u := r + sj
		l := r - sj
		return 1/l - 1/u + (r-sj*sj/r)*(1/(u*u)-1/(l*l))/4 + math.Log(l/u)/(2*r)
	}
	// Atom center inside the descreening sphere: full descreening of the
	// shell from rhoi outwards.
	if r+sj <= rhoi {
		return 0 // neighbor sphere entirely inside the atom: no effect
	}
	u := r + sj
	l := rhoi
	if l < r-sj {
		l = r - sj
	}
	v := 1/l - 1/u + (r-sj*sj/r)*(1/(u*u)-1/(l*l))/4 + math.Log(l/u)/(2*r)
	if r < sj-rhoi {
		// Atom engulfed by the neighbor sphere.
		v += 2 * (1/rhoi - 1/l)
	}
	return v
}

// OBC is the Onufriev–Bashford–Case model (reference [28]; NAMD's GB):
// the HCT integral sum rescaled through a tanh to keep buried atoms'
// radii finite.
type OBC struct{}

// Name implements Model.
func (OBC) Name() string { return "OBC" }

// OBC II parameters (α, β, γ).
const (
	obcAlpha = 1.0
	obcBeta  = 0.8
	obcGamma = 4.85
)

// BornRadii implements Model.
func (OBC) BornRadii(m *molecule.Molecule, nb *nblist.List) []float64 {
	inv := hctInverseRadii(m, nb, OBCDescreenScale)
	out := make([]float64, len(inv))
	for i := range inv {
		rhoTilde := m.Atoms[i].Radius - dielectricOffset
		rho := m.Atoms[i].Radius
		// Ψ = ρ̃·(Σ integral terms) = ρ̃·(1/ρ̃ − inv).
		psi := rhoTilde * (1/rhoTilde - inv[i])
		th := math.Tanh(obcAlpha*psi - obcBeta*psi*psi + obcGamma*psi*psi*psi)
		r := 1 / (1/rhoTilde - th/rho)
		if r < rhoTilde || math.IsInf(r, 0) || math.IsNaN(r) || r < 0 {
			r = rhoTilde
		}
		out[i] = r
	}
	return out
}

// Still is a Still-style empirical model (reference [16]; Tinker's GB):
// Coulomb-field (r⁴) pairwise descreening by neighbor volumes. Its
// radii differ systematically from the r⁶ family — the reason the
// paper's Figure 9 shows Tinker's energies deviating from the naïve
// reference while all r⁶-based codes agree.
type Still struct{}

// Name implements Model.
func (Still) Name() string { return "STILL" }

// BornRadii implements Model using 1/R_i = 1/ρ_i − Σ_j V_j/(4π·r_ij⁴)
// — the Coulomb-field approximation with point-volume neighbors.
func (Still) BornRadii(m *molecule.Molecule, nb *nblist.List) []float64 {
	inv := make([]float64, len(m.Atoms))
	for i, a := range m.Atoms {
		inv[i] = 1 / a.Radius
	}
	nb.ForEachPair(func(i, j int32) {
		r2 := m.Atoms[i].Pos.Dist2(m.Atoms[j].Pos)
		r4 := r2 * r2
		vi := sphereVolume(m.Atoms[i].Radius)
		vj := sphereVolume(m.Atoms[j].Radius)
		inv[i] -= StillVolumeFactor * vj / (4 * math.Pi * r4)
		inv[j] -= StillVolumeFactor * vi / (4 * math.Pi * r4)
	})
	out := make([]float64, len(inv))
	for i, v := range inv {
		rho := m.Atoms[i].Radius
		if v <= 1/(30*rho) {
			out[i] = 30 * rho
			continue
		}
		out[i] = 1 / v
		if out[i] < rho {
			out[i] = rho
		}
	}
	return out
}

// VR6 is the volume-based r⁶ descreening of GBr⁶ (Tjong & Zhou 2007,
// reference [35]): 1/R_i³ = 1/ρ_i³ − Σ_j (3/4π)·V_j/r_ij⁶. It is the
// volume-integral counterpart of the paper's surface-based r⁶ scheme.
type VR6 struct{}

// Name implements Model.
func (VR6) Name() string { return "VR6" }

// BornRadii implements Model.
func (VR6) BornRadii(m *molecule.Molecule, nb *nblist.List) []float64 {
	invCubed := make([]float64, len(m.Atoms))
	for i, a := range m.Atoms {
		invCubed[i] = 1 / (a.Radius * a.Radius * a.Radius)
	}
	nb.ForEachPair(func(i, j int32) {
		r2 := m.Atoms[i].Pos.Dist2(m.Atoms[j].Pos)
		r6 := r2 * r2 * r2
		invCubed[i] -= VR6VolumeFactor * 3 * sphereVolume(m.Atoms[j].Radius) / (4 * math.Pi * r6)
		invCubed[j] -= VR6VolumeFactor * 3 * sphereVolume(m.Atoms[i].Radius) / (4 * math.Pi * r6)
	})
	out := make([]float64, len(invCubed))
	for i, v := range invCubed {
		rho := m.Atoms[i].Radius
		maxR := 30 * rho
		if v <= 1/(maxR*maxR*maxR) {
			out[i] = maxR
			continue
		}
		out[i] = 1 / math.Cbrt(v)
		if out[i] < rho {
			out[i] = rho
		}
	}
	return out
}

func sphereVolume(r float64) float64 { return 4 * math.Pi / 3 * r * r * r }

// ByName returns the model with the given name.
func ByName(name string) (Model, error) {
	switch name {
	case "HCT":
		return HCT{}, nil
	case "OBC":
		return OBC{}, nil
	case "STILL":
		return Still{}, nil
	case "VR6":
		return VR6{}, nil
	}
	return nil, fmt.Errorf("gbmodels: unknown model %q", name)
}

// Energy computes the GB polarization energy from precomputed Born radii
// over the neighbor list (pairs beyond the cutoff are dropped — the
// truncation all nblist packages make) plus the exact self terms.
func Energy(m *molecule.Molecule, radii []float64, nb *nblist.List, epsSolv float64) float64 {
	tau := Tau(epsSolv)
	var e float64
	for i, a := range m.Atoms {
		e += PairEnergy(tau, a.Charge, a.Charge, 0, radii[i], radii[i])
	}
	nb.ForEachPair(func(i, j int32) {
		r2 := m.Atoms[i].Pos.Dist2(m.Atoms[j].Pos)
		// ×2: the naive double sum counts unordered pairs twice.
		e += 2 * PairEnergy(tau, m.Atoms[i].Charge, m.Atoms[j].Charge, r2, radii[i], radii[j])
	})
	return e
}

// EnergyAllPairs computes the untruncated pairwise GB energy (O(M²)),
// used by reference implementations and tests.
func EnergyAllPairs(m *molecule.Molecule, radii []float64, epsSolv float64) float64 {
	tau := Tau(epsSolv)
	var e float64
	for i := range m.Atoms {
		qi := m.Atoms[i].Charge
		e += PairEnergy(tau, qi, qi, 0, radii[i], radii[i])
		for j := i + 1; j < len(m.Atoms); j++ {
			r2 := m.Atoms[i].Pos.Dist2(m.Atoms[j].Pos)
			e += 2 * PairEnergy(tau, qi, m.Atoms[j].Charge, r2, radii[i], radii[j])
		}
	}
	return e
}
