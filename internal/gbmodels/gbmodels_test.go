package gbmodels

import (
	"math"
	"testing"

	"gbpolar/internal/geom"
	"gbpolar/internal/molecule"
	"gbpolar/internal/nblist"
)

func buildNB(t *testing.T, m *molecule.Molecule, cutoff float64) *nblist.List {
	t.Helper()
	nb, err := nblist.Build(m.Positions(), cutoff, nblist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return nb
}

func TestTau(t *testing.T) {
	got := Tau(80)
	want := CoulombConstant * (1 - 1.0/80)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Tau(80) = %v want %v", got, want)
	}
	if Tau(1) != 0 {
		t.Error("vacuum dielectric should give zero tau")
	}
}

func TestFGBLimits(t *testing.T) {
	// At r=0, f_GB = sqrt(Ri·Rj).
	if got := FGB(0, 2, 8); math.Abs(got-4) > 1e-12 {
		t.Errorf("FGB(0,2,8) = %v want 4", got)
	}
	// At large r, f_GB → r.
	r := 1000.0
	if got := FGB(r*r, 2, 3); math.Abs(got-r) > 1e-6 {
		t.Errorf("FGB large-r = %v want %v", got, r)
	}
	// Monotone in r.
	prev := 0.0
	for x := 0.5; x < 50; x += 0.5 {
		f := FGB(x*x, 1.5, 2.5)
		if f <= prev {
			t.Fatalf("FGB not monotone at r=%v", x)
		}
		prev = f
	}
}

func TestPairEnergySigns(t *testing.T) {
	tau := Tau(80)
	// Like charges: polarization stabilizes (negative contribution).
	if e := PairEnergy(tau, 1, 1, 4, 2, 2); e >= 0 {
		t.Errorf("like-charge pair energy %v not negative", e)
	}
	// Opposite charges: positive (solvent screening is destabilizing for
	// attractive pairs).
	if e := PairEnergy(tau, 1, -1, 4, 2, 2); e <= 0 {
		t.Errorf("opposite-charge pair energy %v not positive", e)
	}
}

func TestIsolatedAtomBornRadiusEqualsIntrinsic(t *testing.T) {
	m := &molecule.Molecule{Atoms: []molecule.Atom{
		{Pos: geom.V(0, 0, 0), Charge: 1, Radius: 1.5},
	}}
	nb := buildNB(t, m, 10)
	for _, model := range []Model{HCT{}, OBC{}, Still{}, VR6{}} {
		r := model.BornRadii(m, nb)
		var want float64
		switch model.(type) {
		case HCT, OBC:
			want = 1.5 - dielectricOffset
		default:
			want = 1.5
		}
		if math.Abs(r[0]-want) > 1e-9 {
			t.Errorf("%s: isolated Born radius %v, want %v", model.Name(), r[0], want)
		}
	}
}

func TestBornRadiiGrowWhenBuried(t *testing.T) {
	// An atom surrounded by others must have a larger Born radius than an
	// isolated one (more buried ⇒ weaker solvent interaction).
	center := molecule.Atom{Pos: geom.V(0, 0, 0), Charge: 1, Radius: 1.7}
	shellMol := &molecule.Molecule{Atoms: []molecule.Atom{center}}
	for i := 0; i < 30; i++ {
		th := float64(i) * 0.7
		ph := float64(i) * 1.3
		p := geom.V(math.Sin(th)*math.Cos(ph), math.Sin(th)*math.Sin(ph), math.Cos(th)).Scale(3.5)
		shellMol.Atoms = append(shellMol.Atoms, molecule.Atom{Pos: p, Radius: 1.7})
	}
	nb := buildNB(t, shellMol, 20)
	for _, model := range []Model{HCT{}, OBC{}, Still{}, VR6{}} {
		r := model.BornRadii(shellMol, nb)
		isolated := shellMol.Atoms[0].Radius
		if r[0] <= isolated {
			t.Errorf("%s: buried atom radius %v not larger than intrinsic %v",
				model.Name(), r[0], isolated)
		}
	}
}

func TestBornRadiiNeverBelowIntrinsic(t *testing.T) {
	m := molecule.GenProtein("clamp", 500, 61)
	nb := buildNB(t, m, 12)
	for _, model := range []Model{HCT{}, OBC{}, Still{}, VR6{}} {
		radii := model.BornRadii(m, nb)
		for i, r := range radii {
			lower := m.Atoms[i].Radius - dielectricOffset - 1e-9
			if r < lower || math.IsNaN(r) || math.IsInf(r, 0) {
				t.Fatalf("%s: atom %d radius %v below intrinsic %v",
					model.Name(), i, r, lower)
			}
		}
	}
}

func TestModelsDisagreeSystematically(t *testing.T) {
	// Different GB flavors must produce different radii on a real
	// molecule — that is the paper's explanation for Figure 9's spread.
	m := molecule.GenProtein("spread", 400, 62)
	nb := buildNB(t, m, 12)
	hct := HCT{}.BornRadii(m, nb)
	still := Still{}.BornRadii(m, nb)
	vr6 := VR6{}.BornRadii(m, nb)
	diff := 0
	for i := range hct {
		if math.Abs(hct[i]-still[i]) > 1e-6 || math.Abs(hct[i]-vr6[i]) > 1e-6 {
			diff++
		}
	}
	if diff < len(hct)/2 {
		t.Errorf("models agree on %d/%d atoms — suspiciously identical", len(hct)-diff, len(hct))
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"HCT", "OBC", "STILL", "VR6"} {
		mdl, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if mdl.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, mdl.Name())
		}
	}
	if _, err := ByName("XXX"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestEnergyMatchesAllPairsForLargeCutoff(t *testing.T) {
	m := molecule.GenProtein("e", 300, 63)
	nb := buildNB(t, m, 1000) // cutoff covers everything
	radii := HCT{}.BornRadii(m, nb)
	eNB := Energy(m, radii, nb, 80)
	eAll := EnergyAllPairs(m, radii, 80)
	if math.Abs(eNB-eAll) > 1e-6*math.Abs(eAll) {
		t.Errorf("Energy %v != EnergyAllPairs %v", eNB, eAll)
	}
}

func TestEnergyTruncationBias(t *testing.T) {
	// Small cutoffs must change the energy (that is the artifact the
	// paper's ε-controlled scheme avoids).
	m := molecule.GenProtein("trunc", 600, 64)
	nbBig := buildNB(t, m, 1000)
	nbSmall := buildNB(t, m, 6)
	radii := HCT{}.BornRadii(m, nbBig)
	eBig := Energy(m, radii, nbBig, 80)
	eSmall := Energy(m, radii, nbSmall, 80)
	if eBig == eSmall {
		t.Error("truncation had no effect — implausible")
	}
}

func TestEnergyNegativeForProtein(t *testing.T) {
	// Polarization energy is "typically negative" (paper, Section I).
	m := molecule.GenProtein("neg", 800, 65)
	nb := buildNB(t, m, 15)
	for _, model := range []Model{HCT{}, OBC{}, Still{}, VR6{}} {
		radii := model.BornRadii(m, nb)
		if e := Energy(m, radii, nb, 80); e >= 0 {
			t.Errorf("%s: E_pol = %v, want negative", model.Name(), e)
		}
	}
}

func TestHCTIntegralNonNegativeAndDecaying(t *testing.T) {
	prev := math.Inf(1)
	for r := 3.0; r < 60; r += 0.5 {
		v := hctIntegral(r, 1.5, 1.2)
		if v < 0 {
			t.Fatalf("integral negative at r=%v: %v", r, v)
		}
		if v > prev {
			t.Fatalf("integral not decaying at r=%v", r)
		}
		prev = v
	}
}

func BenchmarkHCTRadii2k(b *testing.B) {
	m := molecule.GenProtein("bench", 2000, 66)
	nb, err := nblist.Build(m.Positions(), 12, nblist.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HCT{}.BornRadii(m, nb)
	}
}
