package geom

import "math"

// Morton (Z-order) key math for the octree's sorted cold-path builder.
// A key interleaves the three 21-bit lattice coordinates of a point
// inside a root box into 63 bits, most significant octant first, so that
// sorting points by key visits them in the depth-first octant order of
// the recursive subdivision — tree-code builders (DASHMM,
// arXiv:1710.06316) derive both the hierarchy and the memory layout from
// that single sort.
//
// Exactness is the delicate part: the recursive builder classifies a
// point by comparing against midpoints computed as (lo+hi)/2 level by
// level, and a quantized key computed with different arithmetic can
// disagree by an ulp at cell seams. Two mechanisms close that gap
// without changing the box the tree subdivides:
//
//   - MortonKey replays the descent's own floating-point comparisons,
//     so it is bit-exact against OctantIndex for ANY box — at ~21
//     serial add/mul latencies per axis.
//   - MortonKeys quantizes in one multiply per axis and CERTIFIES the
//     result: the recursive midpoints drift from the ideal uniform
//     lattice by at most 21 rounding errors, so away from a guard band
//     around each cell seam the quantized verdict provably equals the
//     chain's. Points inside the band (a ~1e-6-cell sliver) fall back
//     to the chain per axis. Same bits, an order of magnitude faster.
const (
	// MortonBits is the lattice resolution per axis: 21 bits × 3 axes
	// fill a 63-bit key, leaving the top bit clear so keys order
	// correctly as both signed and unsigned integers.
	MortonBits = 21
	// mortonSpan is the number of leaf cells per axis.
	mortonSpan = 1 << MortonBits
)

// axisBits returns the MortonBits successive half-space verdicts of p
// against the interval [lo, hi), most significant first. It performs the
// SAME floating-point operations as the recursive octree descent —
// center c = (lo+hi)/2, upper half iff p >= c, then recurse into the
// half — so bit l of the result equals the axis bit of OctantIndex at
// depth l exactly, boundary points and all.
func axisBits(p, lo, hi float64) uint32 {
	var u uint32
	for l := 0; l < MortonBits; l++ {
		c := (lo + hi) * 0.5
		u <<= 1
		if p >= c {
			u |= 1
			lo = c
		} else {
			hi = c
		}
	}
	return u
}

// Spread3 distributes the low 21 bits of v to every third bit of the
// result (bit i of v lands at bit 3i).
func Spread3(v uint32) uint64 {
	x := uint64(v) & 0x1fffff
	x = (x | x<<32) & 0x1f00000000ffff
	x = (x | x<<16) & 0x1f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// Compact3 inverts Spread3: it gathers every third bit of x (starting at
// bit 0) into the low 21 bits of the result.
func Compact3(x uint64) uint32 {
	x &= 0x1249249249249249
	x = (x ^ x>>2) & 0x10c30c30c30c30c3
	x = (x ^ x>>4) & 0x100f00f00f00f00f
	x = (x ^ x>>8) & 0x1f0000ff0000ff
	x = (x ^ x>>16) & 0x1f00000000ffff
	x = (x ^ x>>32) & 0x1fffff
	return uint32(x)
}

// MortonEncode interleaves three 21-bit lattice coordinates into a
// 63-bit key. Bit 0 of each coordinate triple is the X axis, bit 1 the Y
// axis, bit 2 the Z axis — the same convention as AABB.Octant /
// AABB.OctantIndex, so the 3-bit group at depth d (counting from the
// most significant group) IS the octant index of the point at that depth.
func MortonEncode(x, y, z uint32) uint64 {
	return Spread3(x) | Spread3(y)<<1 | Spread3(z)<<2
}

// MortonDecode returns the three lattice coordinates of a key.
func MortonDecode(k uint64) (x, y, z uint32) {
	return Compact3(k), Compact3(k >> 1), Compact3(k >> 2)
}

// MortonKey returns the 63-bit Morton key of p inside box b. The
// per-axis bits replay the recursive subdivision's own comparisons, so
// for any depth d ≤ MortonBits,
//
//	MortonOctant(b.MortonKey(p), d) == (d-th recursive box).OctantIndex(p)
//
// holds exactly, for any box. Points outside b are clamped to its
// lattice by the comparison chain itself (every verdict simply
// saturates toward the nearest face), so the key is total.
func (b AABB) MortonKey(p Vec3) uint64 {
	return MortonEncode(
		axisBits(p.X, b.Min.X, b.Max.X),
		axisBits(p.Y, b.Min.Y, b.Max.Y),
		axisBits(p.Z, b.Min.Z, b.Max.Z),
	)
}

// MortonOctant extracts the octant index (0..7) a key selects at depth
// d, d = 0 being the root's split.
func MortonOctant(k uint64, d int) int {
	return int(k >> (3 * (MortonBits - 1 - d)) & 7)
}

// mortonAxis is the certified one-multiply quantizer for one axis of a
// box. The comparison chain's effective cell boundaries are nested
// midpoints, each off the ideal uniform lattice point lo + k·side/2^21
// by at most the accumulated rounding of 21 midpoint additions,
// ≤ 21·ulp(max(|lo|,|hi|)). guard is that drift plus the quantizer's own
// evaluation error, expressed in cell units with a 4x safety factor:
// whenever the quantized fraction is farther than guard from both
// adjacent seams, the floor verdict provably equals the chain's.
type mortonAxis struct {
	lo    float64
	hi    float64
	scale float64 // mortonSpan / (hi - lo)
	guard float64 // uncertainty radius around each seam, in cell units
	ok    bool    // false: degenerate axis, always use the chain
}

// ulp returns the distance from |x| to the next float64, the unit of the
// rounding error bounds above.
func ulp(x float64) float64 {
	x = math.Abs(x)
	if x == 0 || math.IsInf(x, 0) {
		return 0
	}
	return math.Ldexp(0x1p-52, math.Ilogb(x))
}

func makeMortonAxis(lo, hi float64) mortonAxis {
	side := hi - lo
	if !(side > 0) || math.IsInf(side, 0) {
		return mortonAxis{lo: lo, hi: hi}
	}
	m := math.Max(math.Abs(lo), math.Abs(hi))
	// 21 levels of midpoint rounding drift ≤ 21·ulp(m); the quantizer's
	// own evaluation error is ≲ 2^-30 cells, absorbed (with room to
	// spare) by the 1e-6 absolute floor.
	guard := 84*ulp(m)*mortonSpan/side + 1e-6
	if guard >= 0.5 {
		// The seams are uncertain everywhere (box astronomically far
		// from the origin relative to its size): chain only.
		return mortonAxis{lo: lo, hi: hi}
	}
	return mortonAxis{lo: lo, hi: hi, scale: mortonSpan / side, guard: guard, ok: true}
}

// quant returns the axis's lattice coordinate for p when it can be
// certified; ok == false sends the point to the exact chain.
func (a *mortonAxis) quant(p float64) (uint32, bool) {
	f := (p - a.lo) * a.scale
	u := math.Floor(f)
	frac := f - u
	if frac <= a.guard || frac >= 1-a.guard {
		return 0, false
	}
	if u < 0 {
		return 0, true // strictly below the box: the chain saturates to 0
	}
	if u >= mortonSpan {
		return mortonSpan - 1, true // strictly above: saturates to the top cell
	}
	return uint32(u), true
}

// MortonKeys fills out[i] = b.MortonKey(pts[i]), bit-identical to the
// comparison chain but about an order of magnitude faster: each axis is
// quantized with one multiply and certified by the guard-band bound
// above; only the vanishing fraction of coordinates inside a guard band
// (or every coordinate of a degenerate axis) pays the chain.
func MortonKeys(b AABB, pts []Vec3, out []uint64) {
	ax := makeMortonAxis(b.Min.X, b.Max.X)
	ay := makeMortonAxis(b.Min.Y, b.Max.Y)
	az := makeMortonAxis(b.Min.Z, b.Max.Z)
	if !ax.ok || !ay.ok || !az.ok {
		for i, p := range pts {
			out[i] = b.MortonKey(p)
		}
		return
	}
	for i, p := range pts {
		ux, okx := ax.quant(p.X)
		if !okx {
			ux = axisBits(p.X, ax.lo, ax.hi)
		}
		uy, oky := ay.quant(p.Y)
		if !oky {
			uy = axisBits(p.Y, ay.lo, ay.hi)
		}
		uz, okz := az.quant(p.Z)
		if !okz {
			uz = axisBits(p.Z, az.lo, az.hi)
		}
		out[i] = MortonEncode(ux, uy, uz)
	}
}
