package geom

import (
	"math/rand"
	"testing"
)

func TestEmptyBox(t *testing.T) {
	e := Empty()
	if !e.IsEmpty() {
		t.Fatal("Empty() not empty")
	}
	if e.Contains(Vec3{0, 0, 0}) {
		t.Error("empty box contains origin")
	}
	p := Vec3{1, 2, 3}
	b := e.Extend(p)
	if b.IsEmpty() || !b.Contains(p) {
		t.Error("Extend of empty box broken")
	}
	if b.Min != p || b.Max != p {
		t.Errorf("degenerate box = %v", b)
	}
}

func TestBoundContainsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randVecs(rng, 500, 42)
	b := Bound(pts)
	for _, p := range pts {
		if !b.Contains(p) {
			t.Fatalf("Bound does not contain %v", p)
		}
	}
}

func TestUnion(t *testing.T) {
	a := AABB{Vec3{0, 0, 0}, Vec3{1, 1, 1}}
	b := AABB{Vec3{2, -1, 0.5}, Vec3{3, 0.5, 2}}
	u := a.Union(b)
	if u.Min != (Vec3{0, -1, 0}) || u.Max != (Vec3{3, 1, 2}) {
		t.Errorf("Union = %v", u)
	}
	if got := a.Union(Empty()); got != a {
		t.Errorf("Union with empty = %v", got)
	}
	if got := Empty().Union(a); got != a {
		t.Errorf("empty Union a = %v", got)
	}
}

func TestCube(t *testing.T) {
	b := AABB{Vec3{0, 0, 0}, Vec3{4, 2, 1}}
	c := b.Cube()
	s := c.Size()
	if !approxEq(s.X, 4, 1e-12) || !approxEq(s.Y, 4, 1e-12) || !approxEq(s.Z, 4, 1e-12) {
		t.Errorf("Cube size = %v", s)
	}
	if c.Center() != b.Center() {
		t.Error("Cube moved center")
	}
	if !c.Contains(b.Min) || !c.Contains(b.Max) {
		t.Error("Cube does not contain original box")
	}
}

func TestOctantsPartition(t *testing.T) {
	b := AABB{Vec3{-1, -1, -1}, Vec3{1, 1, 1}}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		p := Vec3{rng.Float64()*2 - 1, rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		idx := b.OctantIndex(p)
		oct := b.Octant(idx)
		if !oct.Contains(p) {
			t.Fatalf("point %v assigned octant %d=%v which does not contain it", p, idx, oct)
		}
	}
	// The 8 octants exactly tile the box volume.
	var vol float64
	for i := 0; i < 8; i++ {
		s := b.Octant(i).Size()
		vol += s.X * s.Y * s.Z
	}
	want := 8.0
	if !approxEq(vol, want, 1e-9) {
		t.Errorf("octant volumes sum to %v, want %v", vol, want)
	}
}

func TestOctantIndexRoundTrip(t *testing.T) {
	b := AABB{Vec3{0, 0, 0}, Vec3{2, 2, 2}}
	for i := 0; i < 8; i++ {
		c := b.Octant(i).Center()
		if got := b.OctantIndex(c); got != i {
			t.Errorf("octant %d center maps to %d", i, got)
		}
	}
}

func TestHalfDiagonal(t *testing.T) {
	b := AABB{Vec3{0, 0, 0}, Vec3{2, 2, 2}}
	want := (Vec3{2, 2, 2}).Norm() / 2
	if got := b.HalfDiagonal(); !approxEq(got, want, 1e-12) {
		t.Errorf("HalfDiagonal = %v want %v", got, want)
	}
}

func TestLongestSide(t *testing.T) {
	b := AABB{Vec3{0, 0, 0}, Vec3{1, 5, 3}}
	if got := b.LongestSide(); got != 5 {
		t.Errorf("LongestSide = %v", got)
	}
}
