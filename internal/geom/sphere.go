package geom

import "math"

// Sphere is a center plus radius. It is used for the "smallest ball that
// encloses all atom centers under a node" bookkeeping from the paper's
// APPROX-INTEGRALS and APPROX-EPOL routines.
type Sphere struct {
	Center Vec3
	Radius float64
}

// Contains reports whether p lies inside the sphere (boundary inclusive,
// with a small tolerance to absorb floating-point noise).
func (s Sphere) Contains(p Vec3) bool {
	const eps = 1e-9
	r := s.Radius * (1 + eps)
	return s.Center.Dist2(p) <= r*r+eps
}

// EnclosingSphere returns a small sphere containing all points: the ball
// centered at the centroid with radius max distance to the centroid.
//
// This is the construction the paper uses for node radii (geometric center
// of the points under a node). It is within a factor 2 of the minimum
// enclosing ball, and using the centroid — rather than the true miniball
// center — matters for correctness of the far-field approximation because
// the pseudo-atom/pseudo-q-point is placed at the geometric center.
func EnclosingSphere(pts []Vec3) Sphere {
	if len(pts) == 0 {
		return Sphere{}
	}
	c := Centroid(pts)
	r2 := 0.0
	for _, p := range pts {
		if d2 := c.Dist2(p); d2 > r2 {
			r2 = d2
		}
	}
	return Sphere{Center: c, Radius: math.Sqrt(r2)}
}
