package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecApproxEq(a, b Vec3, tol float64) bool {
	return approxEq(a.X, b.X, tol) && approxEq(a.Y, b.Y, tol) && approxEq(a.Z, b.Z, tol)
}

func TestVecAddSub(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{-4, 5, 0.5}
	if got := v.Add(w); got != (Vec3{-3, 7, 3.5}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec3{5, -3, 2.5}) {
		t.Errorf("Sub = %v", got)
	}
}

func TestVecScaleDot(t *testing.T) {
	v := Vec3{1, -2, 3}
	if got := v.Scale(2); got != (Vec3{2, -4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(Vec3{4, 5, 6}); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
}

func TestVecCrossOrthogonal(t *testing.T) {
	f := func(a, b Vec3) bool {
		// Restrict to magnitudes where the products stay finite.
		clamp := func(v Vec3) Vec3 {
			c := func(x float64) float64 { return math.Mod(x, 1e6) }
			return Vec3{c(v.X), c(v.Y), c(v.Z)}
		}
		a, b = clamp(a), clamp(b)
		if !a.IsFinite() || !b.IsFinite() {
			return true
		}
		c := a.Cross(b)
		tol := 1e-6 * (1 + a.Norm2()*b.Norm2())
		return approxEq(c.Dot(a), 0, tol) && approxEq(c.Dot(b), 0, tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVecCrossRightHanded(t *testing.T) {
	got := Vec3{1, 0, 0}.Cross(Vec3{0, 1, 0})
	if got != (Vec3{0, 0, 1}) {
		t.Errorf("x cross y = %v, want z", got)
	}
}

func TestVecNorm(t *testing.T) {
	if got := (Vec3{3, 4, 0}).Norm(); !approxEq(got, 5, 1e-12) {
		t.Errorf("Norm = %v", got)
	}
	if got := (Vec3{1, 2, 2}).Norm(); !approxEq(got, 3, 1e-12) {
		t.Errorf("Norm = %v", got)
	}
}

func TestVecUnit(t *testing.T) {
	f := func(v Vec3) bool {
		n := v.Norm()
		// |v|² overflows for components near MaxFloat64; Unit is only
		// meaningful for vectors whose squared norm is representable.
		if !v.IsFinite() || n == 0 || math.IsInf(n, 0) {
			return true
		}
		return approxEq(v.Unit().Norm(), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if (Vec3{}).Unit() != (Vec3{}) {
		t.Error("Unit of zero vector should be zero")
	}
}

func TestVecDistSymmetric(t *testing.T) {
	f := func(a, b Vec3) bool {
		return a.Dist(b) == b.Dist(a) && a.Dist2(b) == b.Dist2(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVecMinMax(t *testing.T) {
	a := Vec3{1, 5, -2}
	b := Vec3{3, -1, 0}
	if got := a.Min(b); got != (Vec3{1, -1, -2}) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != (Vec3{3, 5, 0}) {
		t.Errorf("Max = %v", got)
	}
}

func TestVecIsFinite(t *testing.T) {
	if !(Vec3{1, 2, 3}).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	for _, bad := range []Vec3{
		{math.NaN(), 0, 0},
		{0, math.Inf(1), 0},
		{0, 0, math.Inf(-1)},
	} {
		if bad.IsFinite() {
			t.Errorf("%v reported finite", bad)
		}
	}
}

func TestVecLerp(t *testing.T) {
	a := Vec3{0, 0, 0}
	b := Vec3{2, 4, 6}
	if got := a.Lerp(b, 0.5); got != (Vec3{1, 2, 3}) {
		t.Errorf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestCentroid(t *testing.T) {
	if got := Centroid(nil); got != (Vec3{}) {
		t.Errorf("Centroid(nil) = %v", got)
	}
	pts := []Vec3{{0, 0, 0}, {2, 0, 0}, {0, 2, 0}, {0, 0, 2}}
	if got := Centroid(pts); !vecApproxEq(got, Vec3{0.5, 0.5, 0.5}, 1e-12) {
		t.Errorf("Centroid = %v", got)
	}
}

func randVecs(rng *rand.Rand, n int, scale float64) []Vec3 {
	pts := make([]Vec3, n)
	for i := range pts {
		pts[i] = Vec3{
			(rng.Float64() - 0.5) * scale,
			(rng.Float64() - 0.5) * scale,
			(rng.Float64() - 0.5) * scale,
		}
	}
	return pts
}

func TestCentroidTranslationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randVecs(rng, 100, 10)
	shift := Vec3{3, -7, 11}
	shifted := make([]Vec3, len(pts))
	for i, p := range pts {
		shifted[i] = p.Add(shift)
	}
	c1 := Centroid(pts).Add(shift)
	c2 := Centroid(shifted)
	if !vecApproxEq(c1, c2, 1e-9) {
		t.Errorf("centroid not translation invariant: %v vs %v", c1, c2)
	}
}
