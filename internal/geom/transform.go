package geom

import "math"

// Transform is a rigid-body transform (rotation followed by translation).
// The paper notes that for docking, the ligand's octree can be re-posed by
// "multiplying with proper transformation matrices" instead of rebuilding;
// Transform is the matrix that re-poses atoms, q-points and octree node
// centers alike.
type Transform struct {
	// R is the rotation matrix in row-major order.
	R [3][3]float64
	// T is the translation applied after rotation.
	T Vec3
}

// Identity returns the identity transform.
func Identity() Transform {
	return Transform{R: [3][3]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}}
}

// Translate returns a pure translation by t.
func Translate(t Vec3) Transform {
	tr := Identity()
	tr.T = t
	return tr
}

// RotateAxis returns a rotation of angle radians about the given axis
// (normalized internally) through the origin, via Rodrigues' formula.
func RotateAxis(axis Vec3, angle float64) Transform {
	u := axis.Unit()
	c, s := math.Cos(angle), math.Sin(angle)
	oc := 1 - c
	return Transform{R: [3][3]float64{
		{c + u.X*u.X*oc, u.X*u.Y*oc - u.Z*s, u.X*u.Z*oc + u.Y*s},
		{u.Y*u.X*oc + u.Z*s, c + u.Y*u.Y*oc, u.Y*u.Z*oc - u.X*s},
		{u.Z*u.X*oc - u.Y*s, u.Z*u.Y*oc + u.X*s, c + u.Z*u.Z*oc},
	}}
}

// Euler returns the rotation Rz(c)·Ry(b)·Rx(a).
func Euler(a, b, c float64) Transform {
	return RotateAxis(Vec3{0, 0, 1}, c).
		Compose(RotateAxis(Vec3{0, 1, 0}, b)).
		Compose(RotateAxis(Vec3{1, 0, 0}, a))
}

// Apply transforms the point p.
func (t Transform) Apply(p Vec3) Vec3 {
	return Vec3{
		t.R[0][0]*p.X + t.R[0][1]*p.Y + t.R[0][2]*p.Z + t.T.X,
		t.R[1][0]*p.X + t.R[1][1]*p.Y + t.R[1][2]*p.Z + t.T.Y,
		t.R[2][0]*p.X + t.R[2][1]*p.Y + t.R[2][2]*p.Z + t.T.Z,
	}
}

// ApplyVector rotates a direction (normals, etc.) without translating.
func (t Transform) ApplyVector(p Vec3) Vec3 {
	return Vec3{
		t.R[0][0]*p.X + t.R[0][1]*p.Y + t.R[0][2]*p.Z,
		t.R[1][0]*p.X + t.R[1][1]*p.Y + t.R[1][2]*p.Z,
		t.R[2][0]*p.X + t.R[2][1]*p.Y + t.R[2][2]*p.Z,
	}
}

// Compose returns the transform "t then u" as a single transform, i.e.
// (t.Compose(u)).Apply(p) == u.Apply(t.Apply(p)) is NOT the convention;
// the convention is standard matrix composition:
// (t.Compose(u)).Apply(p) == t.Apply(u.Apply(p)).
func (t Transform) Compose(u Transform) Transform {
	var r [3][3]float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				r[i][j] += t.R[i][k] * u.R[k][j]
			}
		}
	}
	return Transform{R: r, T: t.ApplyVector(u.T).Add(t.T)}
}

// Inverse returns the inverse rigid transform (Rᵀ, −Rᵀ·T).
func (t Transform) Inverse() Transform {
	var rt [3][3]float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			rt[i][j] = t.R[j][i]
		}
	}
	inv := Transform{R: rt}
	inv.T = inv.ApplyVector(t.T).Scale(-1)
	return inv
}
