package geom

import "math"

// AABB is an axis-aligned bounding box. A box with Min components greater
// than Max components is empty; Empty() constructs the canonical empty box.
type AABB struct {
	Min, Max Vec3
}

// Empty returns the identity element for Union: a box containing nothing.
func Empty() AABB {
	inf := math.Inf(1)
	return AABB{
		Min: Vec3{inf, inf, inf},
		Max: Vec3{-inf, -inf, -inf},
	}
}

// IsEmpty reports whether the box contains no points.
func (b AABB) IsEmpty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// Extend returns the smallest box containing b and p.
func (b AABB) Extend(p Vec3) AABB {
	return AABB{Min: b.Min.Min(p), Max: b.Max.Max(p)}
}

// Union returns the smallest box containing both b and c.
func (b AABB) Union(c AABB) AABB {
	if b.IsEmpty() {
		return c
	}
	if c.IsEmpty() {
		return b
	}
	return AABB{Min: b.Min.Min(c.Min), Max: b.Max.Max(c.Max)}
}

// Contains reports whether p lies inside b (boundaries inclusive).
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Center returns the midpoint of the box.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Size returns the box extents along each axis.
func (b AABB) Size() Vec3 { return b.Max.Sub(b.Min) }

// HalfDiagonal returns half the length of the main diagonal — the radius
// of the sphere centered at Center() that encloses the whole box.
func (b AABB) HalfDiagonal() float64 { return b.Size().Norm() / 2 }

// LongestSide returns the largest extent among the three axes.
func (b AABB) LongestSide() float64 {
	s := b.Size()
	return math.Max(s.X, math.Max(s.Y, s.Z))
}

// Cube returns the smallest cube sharing b's center that contains b.
// Octrees are built over cubic root cells so all eight octants stay
// congruent, which keeps the node-radius bookkeeping simple.
func (b AABB) Cube() AABB {
	if b.IsEmpty() {
		return b
	}
	h := b.LongestSide() / 2
	c := b.Center()
	d := Vec3{h, h, h}
	return AABB{Min: c.Sub(d), Max: c.Add(d)}
}

// Octant returns the i-th (0..7) octant of the box, splitting at the
// center. Bit 0 selects the upper X half, bit 1 upper Y, bit 2 upper Z.
func (b AABB) Octant(i int) AABB {
	c := b.Center()
	o := b
	if i&1 != 0 {
		o.Min.X = c.X
	} else {
		o.Max.X = c.X
	}
	if i&2 != 0 {
		o.Min.Y = c.Y
	} else {
		o.Max.Y = c.Y
	}
	if i&4 != 0 {
		o.Min.Z = c.Z
	} else {
		o.Max.Z = c.Z
	}
	return o
}

// OctantIndex returns which octant of b the point p falls in, using the
// same bit convention as Octant. Points exactly on a splitting plane go
// to the upper half, matching Octant's half-open split.
func (b AABB) OctantIndex(p Vec3) int {
	c := b.Center()
	i := 0
	if p.X >= c.X {
		i |= 1
	}
	if p.Y >= c.Y {
		i |= 2
	}
	if p.Z >= c.Z {
		i |= 4
	}
	return i
}

// Bound returns the smallest box containing all points.
func Bound(pts []Vec3) AABB {
	b := Empty()
	for _, p := range pts {
		b = b.Extend(p)
	}
	return b
}
