package geom

// Sym3 is a symmetric 3×3 tensor stored by its six independent
// components. It is the natural container for second moments (Σ w δ⊗δ)
// and for the Hessians of radially symmetric far-field kernels, both of
// which the higher-order far-field expansions carry per octree node.
type Sym3 struct {
	XX, YY, ZZ float64
	XY, XZ, YZ float64
}

// Add returns s + t.
func (s Sym3) Add(t Sym3) Sym3 {
	return Sym3{s.XX + t.XX, s.YY + t.YY, s.ZZ + t.ZZ,
		s.XY + t.XY, s.XZ + t.XZ, s.YZ + t.YZ}
}

// Scale returns k·s.
func (s Sym3) Scale(k float64) Sym3 {
	return Sym3{k * s.XX, k * s.YY, k * s.ZZ, k * s.XY, k * s.XZ, k * s.YZ}
}

// Trace returns tr(s).
func (s Sym3) Trace() float64 { return s.XX + s.YY + s.ZZ }

// Quad returns the quadratic form vᵀ s v.
func (s Sym3) Quad(v Vec3) float64 {
	return v.X*v.X*s.XX + v.Y*v.Y*s.YY + v.Z*v.Z*s.ZZ +
		2*(v.X*v.Y*s.XY+v.X*v.Z*s.XZ+v.Y*v.Z*s.YZ)
}

// MulVec returns s·v.
func (s Sym3) MulVec(v Vec3) Vec3 {
	return Vec3{
		X: s.XX*v.X + s.XY*v.Y + s.XZ*v.Z,
		Y: s.XY*v.X + s.YY*v.Y + s.YZ*v.Z,
		Z: s.XZ*v.X + s.YZ*v.Y + s.ZZ*v.Z,
	}
}

// Detraced returns the traceless part s − (tr(s)/3)·I.
func (s Sym3) Detraced() Sym3 {
	t := s.Trace() / 3
	return Sym3{s.XX - t, s.YY - t, s.ZZ - t, s.XY, s.XZ, s.YZ}
}

// Outer returns v ⊗ v.
func Outer(v Vec3) Sym3 {
	return Sym3{v.X * v.X, v.Y * v.Y, v.Z * v.Z, v.X * v.Y, v.X * v.Z, v.Y * v.Z}
}

// SymOuter returns the symmetrized outer product a ⊗ b + b ⊗ a.
func SymOuter(a, b Vec3) Sym3 {
	return Sym3{
		XX: 2 * a.X * b.X, YY: 2 * a.Y * b.Y, ZZ: 2 * a.Z * b.Z,
		XY: a.X*b.Y + a.Y*b.X, XZ: a.X*b.Z + a.Z*b.X, YZ: a.Y*b.Z + a.Z*b.Y,
	}
}

// Rotated returns R s Rᵀ for a row-major rotation matrix R (the form a
// second moment transforms under when its points rotate by R).
func (s Sym3) Rotated(r [3][3]float64) Sym3 {
	// t = s Rᵀ: t[k][j] = Σ_l s[k][l]·R[j][l].
	m := [3][3]float64{
		{s.XX, s.XY, s.XZ},
		{s.XY, s.YY, s.YZ},
		{s.XZ, s.YZ, s.ZZ},
	}
	var t [3][3]float64
	for k := 0; k < 3; k++ {
		for j := 0; j < 3; j++ {
			t[k][j] = m[k][0]*r[j][0] + m[k][1]*r[j][1] + m[k][2]*r[j][2]
		}
	}
	// out[i][j] = Σ_k R[i][k]·t[k][j]; only the upper triangle is needed.
	out := func(i, j int) float64 {
		return r[i][0]*t[0][j] + r[i][1]*t[1][j] + r[i][2]*t[2][j]
	}
	return Sym3{
		XX: out(0, 0), YY: out(1, 1), ZZ: out(2, 2),
		XY: out(0, 1), XZ: out(0, 2), YZ: out(1, 2),
	}
}
