package geom

import (
	"math"
	"math/rand"
	"testing"
)

func randTransform(rng *rand.Rand) Transform {
	rot := Euler(rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi, rng.Float64()*2*math.Pi)
	return Translate(Vec3{rng.NormFloat64() * 5, rng.NormFloat64() * 5, rng.NormFloat64() * 5}).Compose(rot)
}

func TestIdentity(t *testing.T) {
	id := Identity()
	p := Vec3{1, 2, 3}
	if id.Apply(p) != p {
		t.Error("identity moved point")
	}
}

func TestTranslate(t *testing.T) {
	tr := Translate(Vec3{1, 2, 3})
	if got := tr.Apply(Vec3{10, 20, 30}); got != (Vec3{11, 22, 33}) {
		t.Errorf("Translate apply = %v", got)
	}
	// Directions are unaffected by translation.
	if got := tr.ApplyVector(Vec3{1, 0, 0}); got != (Vec3{1, 0, 0}) {
		t.Errorf("ApplyVector = %v", got)
	}
}

func TestRotatePreservesDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		tr := randTransform(rng)
		a := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		b := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		d0 := a.Dist(b)
		d1 := tr.Apply(a).Dist(tr.Apply(b))
		if !approxEq(d0, d1, 1e-9*(1+d0)) {
			t.Fatalf("rigid transform changed distance: %v -> %v", d0, d1)
		}
	}
}

func TestRotateAxisQuarterTurn(t *testing.T) {
	tr := RotateAxis(Vec3{0, 0, 1}, math.Pi/2)
	got := tr.Apply(Vec3{1, 0, 0})
	if !vecApproxEq(got, Vec3{0, 1, 0}, 1e-12) {
		t.Errorf("quarter turn of x = %v, want y", got)
	}
}

func TestComposeOrder(t *testing.T) {
	// t.Compose(u).Apply(p) must equal t.Apply(u.Apply(p)).
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		a := randTransform(rng)
		b := randTransform(rng)
		p := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		want := a.Apply(b.Apply(p))
		got := a.Compose(b).Apply(p)
		if !vecApproxEq(got, want, 1e-9) {
			t.Fatalf("compose mismatch: %v vs %v", got, want)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		tr := randTransform(rng)
		inv := tr.Inverse()
		p := Vec3{rng.NormFloat64() * 10, rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		got := inv.Apply(tr.Apply(p))
		if !vecApproxEq(got, p, 1e-8) {
			t.Fatalf("inverse round trip: %v -> %v", p, got)
		}
	}
}

func TestRotationPreservesNormals(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		tr := randTransform(rng)
		n := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}.Unit()
		if n == (Vec3{}) {
			continue
		}
		got := tr.ApplyVector(n).Norm()
		if !approxEq(got, 1, 1e-9) {
			t.Fatalf("rotated normal has length %v", got)
		}
	}
}
