package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestSpreadCompactRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := rng.Uint32() & (1<<MortonBits - 1)
		if got := Compact3(Spread3(v)); got != v {
			t.Fatalf("Compact3(Spread3(%#x)) = %#x", v, got)
		}
	}
	// Spread3 must land bit i at bit 3i with nothing in between.
	for i := 0; i < MortonBits; i++ {
		if got, want := Spread3(1<<i), uint64(1)<<(3*i); got != want {
			t.Fatalf("Spread3(1<<%d) = %#x, want %#x", i, got, want)
		}
	}
}

func TestMortonEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		x := rng.Uint32() & (1<<MortonBits - 1)
		y := rng.Uint32() & (1<<MortonBits - 1)
		z := rng.Uint32() & (1<<MortonBits - 1)
		gx, gy, gz := MortonDecode(MortonEncode(x, y, z))
		if gx != x || gy != y || gz != z {
			t.Fatalf("decode(encode(%d,%d,%d)) = (%d,%d,%d)", x, y, z, gx, gy, gz)
		}
	}
	// The top bit of a key is always clear: 63 bits used.
	if k := MortonEncode(1<<MortonBits-1, 1<<MortonBits-1, 1<<MortonBits-1); k>>63 != 0 {
		t.Fatalf("max key %#x uses bit 63", k)
	}
}

// TestMortonKeyMatchesRecursiveDescent is the load-bearing property: the
// octant a key selects at every depth must equal OctantIndex's verdict
// in the recursively subdivided box, bit for bit. The Morton builder's
// claim of reproducing the recursive decomposition rests on this.
func TestMortonKeyMatchesRecursiveDescent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		box := AABB{
			Min: V(rng.NormFloat64()*10, rng.NormFloat64()*10, rng.NormFloat64()*10),
		}
		box.Max = box.Min.Add(V(1, 1, 1).Scale(0.1 + rng.Float64()*100))
		for pt := 0; pt < 50; pt++ {
			p := V(
				box.Min.X+rng.Float64()*(box.Max.X-box.Min.X),
				box.Min.Y+rng.Float64()*(box.Max.Y-box.Min.Y),
				box.Min.Z+rng.Float64()*(box.Max.Z-box.Min.Z),
			)
			key := box.MortonKey(p)
			b := box
			for d := 0; d < MortonBits; d++ {
				want := b.OctantIndex(p)
				if got := MortonOctant(key, d); got != want {
					t.Fatalf("trial %d depth %d: key octant %d, OctantIndex %d (p=%v box=%v)",
						trial, d, got, want, p, b)
				}
				b = b.Octant(want)
			}
		}
	}
}

// Boundary points (exactly on a split plane) must agree too — that is
// where naive floor-quantization schemes drift from the >=-center rule.
func TestMortonKeyBoundaryPoints(t *testing.T) {
	box := AABB{Min: V(-1, -1, -1), Max: V(1, 1, 1)}
	pts := []Vec3{
		V(0, 0, 0),                // root center: upper octant by the >= rule
		V(-1, -1, -1), V(1, 1, 1), // corners
		V(0.5, -0.5, 0), V(-0.25, 0.75, -0.125), // deeper split planes
	}
	for _, p := range pts {
		key := box.MortonKey(p)
		b := box
		for d := 0; d < MortonBits; d++ {
			want := b.OctantIndex(p)
			if got := MortonOctant(key, d); got != want {
				t.Fatalf("p=%v depth %d: key octant %d, OctantIndex %d", p, d, got, want)
			}
			b = b.Octant(want)
		}
	}
}

// The optimized interleaved MortonKey must agree with the per-axis
// reference chain bit for bit.
func TestMortonKeyMatchesAxisBits(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	box := AABB{Min: V(-3, 1, -7), Max: V(5, 9, 1)}
	for i := 0; i < 5000; i++ {
		p := V(rng.NormFloat64()*4, 5+rng.NormFloat64()*4, rng.NormFloat64()*4-3)
		want := MortonEncode(
			axisBits(p.X, box.Min.X, box.Max.X),
			axisBits(p.Y, box.Min.Y, box.Max.Y),
			axisBits(p.Z, box.Min.Z, box.Max.Z),
		)
		if got := box.MortonKey(p); got != want {
			t.Fatalf("p=%v: MortonKey %#x, axisBits reference %#x", p, got, want)
		}
	}
}

// TestMortonKeysFastPath: the guarded quantizer must match the
// comparison chain bit for bit — including points exactly ON (and
// within ulps of) the chain's own subdivision midpoints, the case plain
// floor-quantization without the guard-band fallback gets wrong.
func TestMortonKeysFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	boxes := []AABB{
		{Min: V(-3.7, 11.2, -0.9), Max: V(9.4, 24.3, 12.2)},
		{Min: V(-1, -1, -1), Max: V(1, 1, 1)},
		{Min: V(1e5, 1e5, 1e5), Max: V(1e5 + 60, 1e5 + 60, 1e5 + 60)}, // far offset: wide guard band
	}
	for bi, box := range boxes {
		var pts []Vec3
		for i := 0; i < 4000; i++ {
			pts = append(pts, V(
				box.Min.X+rng.Float64()*(box.Max.X-box.Min.X),
				box.Min.Y+rng.Float64()*(box.Max.Y-box.Min.Y),
				box.Min.Z+rng.Float64()*(box.Max.Z-box.Min.Z),
			))
		}
		// Points exactly on the chain's computed midpoints at every
		// depth (walking a random descent), and one ulp to either side —
		// the seams the guard band exists for.
		lo, hi := box.Min.X, box.Max.X
		for d := 0; d < MortonBits; d++ {
			c := (lo + hi) * 0.5
			for _, x := range []float64{c, math.Nextafter(c, lo), math.Nextafter(c, hi)} {
				pts = append(pts, V(x, x-lo+box.Min.Y, x-lo+box.Min.Z))
			}
			if rng.Intn(2) == 0 {
				lo = c
			} else {
				hi = c
			}
		}
		pts = append(pts,
			box.Min.Sub(V(1, 1, 1)), box.Max.Add(V(1, 1, 1)),
			box.Min, box.Max, box.Center(),
		)
		out := make([]uint64, len(pts))
		MortonKeys(box, pts, out)
		for i, p := range pts {
			if want := box.MortonKey(p); out[i] != want {
				t.Fatalf("box %d point %d (%v): fast path %#x, chain %#x", bi, i, p, out[i], want)
			}
		}
	}
}

// Degenerate and pathological boxes must fall back to the chain rather
// than mis-certify: zero-width axes, infinite extent, and a box so far
// from the origin that every cell sits inside the guard band.
func TestMortonKeysDegenerateBoxes(t *testing.T) {
	boxes := []AABB{
		{Min: V(1, 2, 3), Max: V(1, 2, 3)},
		{Min: V(0, 0, 0), Max: V(math.Inf(1), 1, 1)},
		{Min: V(1e18, 0, 0), Max: V(1e18 + 1, 1, 1)},
	}
	rng := rand.New(rand.NewSource(41))
	for bi, box := range boxes {
		pts := make([]Vec3, 64)
		for i := range pts {
			pts[i] = V(rng.NormFloat64()*3, rng.NormFloat64()*3, rng.NormFloat64()*3).Add(box.Min)
		}
		out := make([]uint64, len(pts))
		MortonKeys(box, pts, out)
		for i, p := range pts {
			if want := box.MortonKey(p); out[i] != want {
				t.Fatalf("box %d point %d: batch %#x, chain %#x", bi, i, out[i], want)
			}
		}
	}
}

func TestMortonKeysBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	box := AABB{Min: V(-2, -9, 4), Max: V(6, -1, 12)}
	for _, n := range []int{0, 1, 2, 3, 257} {
		pts := make([]Vec3, n)
		for i := range pts {
			pts[i] = V(rng.Float64()*8-2, rng.Float64()*8-9, rng.Float64()*8+4)
		}
		out := make([]uint64, n)
		MortonKeys(box, pts, out)
		for i, p := range pts {
			if want := box.MortonKey(p); out[i] != want {
				t.Fatalf("n=%d i=%d: batch %#x, scalar %#x", n, i, out[i], want)
			}
		}
	}
}

func BenchmarkMortonKeysBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	box := AABB{Min: V(-10.3, -10.1, -9.7), Max: V(10.1, 10.3, 10.7)}
	pts := make([]Vec3, 1024)
	for i := range pts {
		pts[i] = V(rng.Float64()*20-10, rng.Float64()*20-10, rng.Float64()*20-10)
	}
	out := make([]uint64, len(pts))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MortonKeys(box, pts, out)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(pts)), "ns/key")
}

func BenchmarkMortonKey(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	box := AABB{Min: V(-10, -10, -10), Max: V(10, 10, 10)}
	pts := make([]Vec3, 1024)
	for i := range pts {
		pts[i] = V(rng.Float64()*20-10, rng.Float64()*20-10, rng.Float64()*20-10)
	}
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink ^= box.MortonKey(pts[i&1023])
	}
	_ = sink
}

// Keys are total: points outside the box saturate instead of wrapping,
// so an out-of-box point keys like the nearest face.
func TestMortonKeyOutside(t *testing.T) {
	box := AABB{Min: V(0, 0, 0), Max: V(1, 1, 1)}
	lo := box.MortonKey(V(-5, -5, -5))
	hi := box.MortonKey(V(5, 5, 5))
	if lo != 0 {
		t.Errorf("far-below point keyed %#x, want 0", lo)
	}
	if want := MortonEncode(1<<MortonBits-1, 1<<MortonBits-1, 1<<MortonBits-1); hi != want {
		t.Errorf("far-above point keyed %#x, want %#x", hi, want)
	}
}
