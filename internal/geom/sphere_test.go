package geom

import (
	"math/rand"
	"testing"
)

func TestEnclosingSphereContainsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		pts := randVecs(rng, 1+rng.Intn(200), 100)
		s := EnclosingSphere(pts)
		for _, p := range pts {
			if !s.Contains(p) {
				t.Fatalf("trial %d: sphere %v misses %v", trial, s, p)
			}
		}
	}
}

func TestEnclosingSphereCenteredAtCentroid(t *testing.T) {
	pts := []Vec3{{0, 0, 0}, {2, 0, 0}}
	s := EnclosingSphere(pts)
	if !vecApproxEq(s.Center, Vec3{1, 0, 0}, 1e-12) {
		t.Errorf("center = %v", s.Center)
	}
	if !approxEq(s.Radius, 1, 1e-12) {
		t.Errorf("radius = %v", s.Radius)
	}
}

func TestEnclosingSphereEmptyAndSingle(t *testing.T) {
	if s := EnclosingSphere(nil); s.Radius != 0 {
		t.Errorf("empty sphere radius = %v", s.Radius)
	}
	s := EnclosingSphere([]Vec3{{5, 5, 5}})
	if s.Radius != 0 || s.Center != (Vec3{5, 5, 5}) {
		t.Errorf("single-point sphere = %v", s)
	}
	if !s.Contains(Vec3{5, 5, 5}) {
		t.Error("degenerate sphere should contain its center")
	}
}
