// Package geom provides the small 3-D geometry toolkit used throughout
// gbpolar: vectors, axis-aligned boxes, enclosing spheres and rigid
// transforms. Everything is allocation-free and safe for concurrent use
// (all values, no shared state).
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a point or direction in 3-D space, in Ångströms.
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for Vec3{X: x, Y: y, Z: z} that keeps call sites in other
// packages concise without unkeyed composite literals.
func V(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns |v|².
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Dist returns |v - w|.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Dist2 returns |v - w|².
func (v Vec3) Dist2(w Vec3) float64 { return v.Sub(w).Norm2() }

// Unit returns v/|v|. The zero vector is returned unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Min returns the component-wise minimum of v and w.
func (v Vec3) Min(w Vec3) Vec3 {
	return Vec3{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the component-wise maximum of v and w.
func (v Vec3) Max(w Vec3) Vec3 {
	return Vec3{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}

// IsFinite reports whether all components are finite numbers.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// String implements fmt.Stringer.
func (v Vec3) String() string { return fmt.Sprintf("(%.4g, %.4g, %.4g)", v.X, v.Y, v.Z) }

// Lerp returns v + t·(w−v).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 { return v.Add(w.Sub(v).Scale(t)) }

// Centroid returns the arithmetic mean of the given points.
// It returns the zero vector for an empty slice.
func Centroid(pts []Vec3) Vec3 {
	if len(pts) == 0 {
		return Vec3{}
	}
	var c Vec3
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}
