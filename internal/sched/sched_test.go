package sched

import (
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunSingleTask(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	ran := int32(0)
	p.Run(func(w *Worker) { atomic.AddInt32(&ran, 1) })
	if ran != 1 {
		t.Fatalf("root ran %d times", ran)
	}
}

func TestSpawnFanOut(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	const n = 10000
	var count int32
	p.Run(func(w *Worker) {
		for i := 0; i < n; i++ {
			w.Spawn(func(w2 *Worker) { atomic.AddInt32(&count, 1) })
		}
	})
	if count != n {
		t.Fatalf("ran %d of %d spawned tasks", count, n)
	}
}

func TestRecursiveSpawnTree(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var count int64
	var grow func(depth int) Task
	grow = func(depth int) Task {
		return func(w *Worker) {
			atomic.AddInt64(&count, 1)
			if depth > 0 {
				w.Spawn(grow(depth - 1))
				w.Spawn(grow(depth - 1))
			}
		}
	}
	p.Run(grow(12)) // 2^13 - 1 tasks
	if want := int64(1<<13 - 1); count != want {
		t.Fatalf("count = %d want %d", count, want)
	}
}

func TestRunReusable(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for round := 0; round < 5; round++ {
		var count int32
		p.Run(func(w *Worker) {
			for i := 0; i < 100; i++ {
				w.Spawn(func(*Worker) { atomic.AddInt32(&count, 1) })
			}
		})
		if count != 100 {
			t.Fatalf("round %d: count = %d", round, count)
		}
	}
}

func TestParallelForCoversExactlyOnce(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	const n = 100000
	hits := make([]int32, n)
	ParallelFor(p, n, 64, func(lo, hi, worker int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestParallelForEdgeCases(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ParallelFor(p, 0, 10, func(lo, hi, w int) { t.Error("called for n=0") })
	ran := int32(0)
	ParallelFor(p, 1, 0, func(lo, hi, w int) { atomic.AddInt32(&ran, 1) }) // grain<=0 normalized
	if ran != 1 {
		t.Errorf("n=1 ran %d times", ran)
	}
}

func TestParallelForUsesMultipleWorkers(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single CPU")
	}
	p := NewPool(4)
	defer p.Close()
	var used [4]int32
	ParallelFor(p, 4000, 1, func(lo, hi, worker int) {
		atomic.AddInt32(&used[worker], 1)
		time.Sleep(10 * time.Microsecond)
	})
	distinct := 0
	for _, u := range used {
		if u > 0 {
			distinct++
		}
	}
	if distinct < 2 {
		t.Errorf("only %d workers participated", distinct)
	}
	if p.Steals() == 0 {
		t.Error("no steals recorded despite fine-grained imbalance")
	}
}

func TestAccumulators(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	acc := NewAccumulators(p.NumWorkers())
	const n = 50000
	ParallelFor(p, n, 128, func(lo, hi, worker int) {
		for i := lo; i < hi; i++ {
			acc.Add(worker, float64(i))
		}
	})
	want := float64(n) * float64(n-1) / 2
	if got := acc.Sum(); got != want {
		t.Fatalf("Sum = %v want %v", got, want)
	}
	acc.Reset()
	if acc.Sum() != 0 {
		t.Error("Reset did not zero")
	}
}

func TestPanicPropagates(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	p.Run(func(w *Worker) {
		for i := 0; i < 10; i++ {
			w.Spawn(func(*Worker) {})
		}
		panic("boom")
	})
}

func TestPoolSurvivesPanic(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	func() {
		defer func() { recover() }()
		p.Run(func(w *Worker) { panic("first") })
	}()
	// The pool must still work.
	ran := int32(0)
	p.Run(func(w *Worker) { atomic.AddInt32(&ran, 1) })
	if ran != 1 {
		t.Fatal("pool broken after panic")
	}
}

func TestCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close()
}

func TestSingleWorkerPool(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var order []int
	p.Run(func(w *Worker) {
		for i := 0; i < 5; i++ {
			i := i
			w.Spawn(func(*Worker) { order = append(order, i) })
		}
	})
	if len(order) != 5 {
		t.Fatalf("ran %d tasks", len(order))
	}
	// Single worker pops LIFO, so spawned tasks run in reverse order.
	for i, v := range order {
		if v != 4-i {
			t.Fatalf("order = %v, want LIFO", order)
		}
	}
}

func TestStressRandomTrees(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 10; round++ {
		var count int64
		expected := int64(1)
		var build func(fanout, depth int) Task
		build = func(fanout, depth int) Task {
			return func(w *Worker) {
				atomic.AddInt64(&count, 1)
				if depth == 0 {
					return
				}
				for i := 0; i < fanout; i++ {
					w.Spawn(build(fanout, depth-1))
				}
			}
		}
		fanout := 1 + rng.Intn(4)
		depth := 1 + rng.Intn(6)
		expected = 0
		pow := int64(1)
		for d := 0; d <= depth; d++ {
			expected += pow
			pow *= int64(fanout)
		}
		p.Run(build(fanout, depth))
		if count != expected {
			t.Fatalf("round %d: count=%d want %d (fanout=%d depth=%d)",
				round, count, expected, fanout, depth)
		}
	}
}

func TestNewPoolDefaultSize(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.NumWorkers() != runtime.GOMAXPROCS(0) {
		t.Errorf("default pool size %d", p.NumWorkers())
	}
}

func BenchmarkParallelForSum(b *testing.B) {
	p := NewPool(0)
	defer p.Close()
	acc := NewAccumulators(p.NumWorkers())
	data := make([]float64, 1<<20)
	for i := range data {
		data[i] = float64(i % 97)
	}
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		acc.Reset()
		ParallelFor(p, len(data), 4096, func(lo, hi, w int) {
			var s float64
			for i := lo; i < hi; i++ {
				s += data[i]
			}
			acc.Add(w, s)
		})
	}
}

func BenchmarkSpawnOverhead(b *testing.B) {
	p := NewPool(0)
	defer p.Close()
	b.ResetTimer()
	p.Run(func(w *Worker) {
		for i := 0; i < b.N; i++ {
			w.Spawn(func(*Worker) {})
		}
	})
}
