package sched

// ParallelFor executes fn over [0, n) in parallel chunks of at most
// grain elements, using recursive range splitting (the shape cilk_for
// compiles to). fn receives the half-open range and the executing
// worker's ID, so callers can accumulate into per-worker slots without
// synchronization.
func ParallelFor(p *Pool, n, grain int, fn func(lo, hi, worker int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	p.Run(func(w *Worker) {
		forRange(w, 0, n, grain, fn)
	})
}

// ForRange is the in-task variant of ParallelFor: it spawns the split
// subranges onto the current worker's deque and processes the leading
// chunk itself. Unlike ParallelFor it returns before the spawned ranges
// necessarily finish; quiescence is reached when the enclosing Run
// drains.
func ForRange(w *Worker, lo, hi, grain int, fn func(lo, hi, worker int)) {
	if grain <= 0 {
		grain = 1
	}
	forRange(w, lo, hi, grain, fn)
}

func forRange(w *Worker, lo, hi, grain int, fn func(lo, hi, worker int)) {
	for hi-lo > grain {
		mid := lo + (hi-lo)/2
		right := hi
		w.Spawn(func(w2 *Worker) { forRange(w2, mid, right, grain, fn) })
		hi = mid
	}
	if hi > lo {
		fn(lo, hi, w.ID())
	}
}

// Accumulators is a padded per-worker float64 array for race-free
// reduction: each worker adds into its own cache line and Sum combines
// them after quiescence.
type Accumulators struct {
	slots []paddedFloat
}

type paddedFloat struct {
	v float64
	_ [7]float64 // pad to a 64-byte cache line to avoid false sharing
}

// NewAccumulators returns accumulators for a pool of n workers.
func NewAccumulators(n int) *Accumulators {
	return &Accumulators{slots: make([]paddedFloat, n)}
}

// Add adds x into worker slot w.
func (a *Accumulators) Add(w int, x float64) { a.slots[w].v += x }

// Sum returns the total across workers.
func (a *Accumulators) Sum() float64 {
	var s float64
	for i := range a.slots {
		s += a.slots[i].v
	}
	return s
}

// Reset zeroes all slots.
func (a *Accumulators) Reset() {
	for i := range a.slots {
		a.slots[i].v = 0
	}
}
