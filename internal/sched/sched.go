// Package sched implements a randomized work-stealing task pool modeled
// on the cilk++ runtime the paper uses for intra-node parallelism
// (Blumofe & Leiserson, "Scheduling multithreaded computations by work
// stealing", JACM 1999 — reference [3] of the paper).
//
// Each worker owns a double-ended queue: newly spawned tasks are pushed
// to the bottom and popped LIFO by the owner (depth-first, cache-warm);
// idle workers steal from the TOP of a random victim's deque — the oldest
// and typically largest piece of outstanding work — exactly the
// discipline the paper describes in Section IV.A ("Dynamic load balancing
// among threads").
package sched

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Task is a unit of work. Tasks may spawn further tasks via the worker.
type Task func(w *Worker)

// Pool is a fixed set of worker goroutines executing spawned tasks until
// quiescence. Create with NewPool, submit with Run, release with Close.
type Pool struct {
	workers []*Worker

	mu       sync.Mutex
	cond     *sync.Cond
	closed   bool
	sleeping int

	pending int64  // outstanding tasks across all deques + running
	epoch   uint64 // bumped on every push, defeats sleep/push races
	steals  int64  // successful steals (for tests and ablation benches)

	runMu      sync.Mutex // serializes Run calls
	panicMu    sync.Mutex
	panicVal   any
	panicValid bool

	wg sync.WaitGroup
}

// Worker is one of the pool's workers. The pointer is passed to every
// task so tasks can spawn children onto the local deque and key
// per-worker accumulators off ID().
type Worker struct {
	pool *Pool
	id   int
	dq   deque
	rng  *rand.Rand
}

// ID returns the worker's index in [0, NumWorkers).
func (w *Worker) ID() int { return w.id }

// NumWorkers returns the pool size.
func (p *Pool) NumWorkers() int { return len(p.workers) }

// Steals returns the number of successful steals since pool creation.
func (p *Pool) Steals() int64 { return atomic.LoadInt64(&p.steals) }

// NewPool creates a pool with n workers (n<=0 selects GOMAXPROCS).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	p.workers = make([]*Worker, n)
	for i := range p.workers {
		p.workers[i] = &Worker{
			pool: p,
			id:   i,
			rng:  rand.New(rand.NewSource(int64(i)*2654435761 + 1)),
		}
	}
	p.wg.Add(n)
	for _, w := range p.workers {
		go w.loop()
	}
	return p
}

// Run executes root (and everything it transitively spawns) to
// completion. It must not be called from inside a task, and concurrent
// Run calls are serialized. If any task panics, Run re-panics with that
// value after the pool drains.
func (p *Pool) Run(root Task) {
	p.runMu.Lock()
	defer p.runMu.Unlock()
	p.panicMu.Lock()
	p.panicVal, p.panicValid = nil, false
	p.panicMu.Unlock()
	atomic.StoreInt64(&p.pending, 1)
	p.workers[0].dq.pushBottom(root)
	p.bumpAndWake()

	p.mu.Lock()
	for atomic.LoadInt64(&p.pending) != 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
	p.panicMu.Lock()
	v, ok := p.panicVal, p.panicValid
	p.panicMu.Unlock()
	if ok {
		panic(fmt.Sprintf("sched: task panicked: %v", v))
	}
}

// Spawn schedules t for execution. Must only be called from inside a
// running task, on the worker that is executing it.
func (w *Worker) Spawn(t Task) {
	atomic.AddInt64(&w.pool.pending, 1)
	w.dq.pushBottom(t)
	w.pool.bumpAndWake()
}

// bumpAndWake advertises new work to sleeping workers.
func (p *Pool) bumpAndWake() {
	atomic.AddUint64(&p.epoch, 1)
	p.mu.Lock()
	if p.sleeping > 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// Close shuts the pool down. It must not be called while a Run is in
// flight. Close is idempotent.
func (p *Pool) Close() {
	p.runMu.Lock()
	defer p.runMu.Unlock()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

func (w *Worker) loop() {
	p := w.pool
	defer p.wg.Done()
	for {
		t := w.findWork()
		if t != nil {
			w.exec(t)
			continue
		}
		// Nothing found: record the epoch, then sleep unless new work
		// arrived since the search started.
		e := atomic.LoadUint64(&p.epoch)
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		if atomic.LoadUint64(&p.epoch) == e {
			p.sleeping++
			p.cond.Wait()
			p.sleeping--
		}
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return
		}
	}
}

// exec runs one task, recovering panics so the pool survives and Run can
// re-panic deterministically.
func (w *Worker) exec(t Task) {
	defer func() {
		if r := recover(); r != nil {
			p := w.pool
			p.panicMu.Lock()
			if !p.panicValid {
				p.panicVal, p.panicValid = r, true
			}
			p.panicMu.Unlock()
		}
		if atomic.AddInt64(&w.pool.pending, -1) == 0 {
			w.pool.mu.Lock()
			w.pool.cond.Broadcast()
			w.pool.mu.Unlock()
		}
	}()
	t(w)
}

// findWork pops locally, then makes a bounded number of random steal
// attempts across the other workers.
func (w *Worker) findWork() Task {
	if t := w.dq.popBottom(); t != nil {
		return t
	}
	n := len(w.pool.workers)
	if n == 1 {
		return nil
	}
	attempts := 4 * n
	for i := 0; i < attempts; i++ {
		victim := w.pool.workers[w.rng.Intn(n)]
		if victim == w {
			continue
		}
		if t := victim.dq.stealTop(); t != nil {
			atomic.AddInt64(&w.pool.steals, 1)
			return t
		}
	}
	return nil
}

// deque is a mutex-protected double-ended task queue: the owner pushes
// and pops at the bottom (LIFO), thieves take from the top (FIFO — the
// least-recently-pushed entry, which cilk++ steals "to reduce the number
// of cache misses", Section V.A).
type deque struct {
	mu    sync.Mutex
	tasks []Task
	head  int // index of the top (oldest) element
}

func (d *deque) pushBottom(t Task) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

func (d *deque) popBottom() Task {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == d.head {
		d.reset()
		return nil
	}
	t := d.tasks[len(d.tasks)-1]
	d.tasks[len(d.tasks)-1] = nil
	d.tasks = d.tasks[:len(d.tasks)-1]
	return t
}

func (d *deque) stealTop() Task {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == d.head {
		d.reset()
		return nil
	}
	t := d.tasks[d.head]
	d.tasks[d.head] = nil
	d.head++
	return t
}

// reset reclaims the dead prefix once the deque drains.
func (d *deque) reset() {
	d.tasks = d.tasks[:0]
	d.head = 0
}
