// Package bench is the experiment harness: one driver per table/figure
// of the paper's evaluation (Table I, Table II, Figures 5–11), each
// emitting the same rows/series the paper reports. See DESIGN.md §4 for
// the experiment ↔ module map and EXPERIMENTS.md for paper-vs-measured
// results.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"gbpolar/internal/cluster"
)

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carry caveats (substitutions, scale factors) printed under
	// the table.
	Notes []string
	// Report optionally carries the cluster accounting behind the last
	// distributed run of the experiment; persisted by gbbench -out as a
	// BENCH_<id>.report.json side file, never printed inline.
	Report *cluster.Report
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e5 || v < 1e-3 && v > -1e-3 || v <= -1e5:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		return strings.Join(parts, "  ")
	}
	fmt.Fprintln(w, line(t.Columns))
	fmt.Fprintln(w, strings.Repeat("-", lineWidth(widths)))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func lineWidth(widths []int) int {
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		total -= 2
	}
	return total
}

// WriteJSON emits the table (id, title, columns, rows, notes) as
// indented JSON for results/ archiving.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Columns, t.Rows, t.Notes})
}

// CSV renders the table as comma-separated values (quotes cells
// containing commas).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			out[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
