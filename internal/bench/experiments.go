package bench

import (
	"cmp"
	"fmt"
	"runtime"
	"slices"

	"gbpolar/internal/baselines"
	"gbpolar/internal/cluster"
	"gbpolar/internal/mathx"
	"gbpolar/internal/molecule"
	"gbpolar/internal/stats"
)

// Experiment is one regenerable table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) ([]*Table, error)
}

// Registry returns every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"tableI", "Simulation environment (modeled topology + cost model)", tableI},
		{"tableII", "Packages with GB models and types of parallelism", tableII},
		{"fig5", "Speedup w.r.t. running time on one node (BTV analogue)", fig5},
		{"fig6", "Scalability with increasing number of cores (min/max of repeated runs)", fig6},
		{"fig7", "Performance comparison of octree-based algorithms (ZDock-like suite)", fig7},
		{"fig8", "Performance comparison of all algorithms (times + speedup vs Amber)", fig8},
		{"fig9", "Energy value computed by different algorithms", fig9},
		{"fig10", "Error and running time vs E_pol approximation parameter", fig10},
		{"fig11", "Scalability on a large molecule (CMV analogue)", fig11},
		{"extensions", "Beyond the paper: inter-rank work stealing + dynamic octree updates", extensions},
		{"obs", "Observability overhead: tracing+metrics on vs off", obsOverhead},
		{"coldstart", "Cold-path performance: Morton vs recursive build + incremental list repair", coldstart},
		{"lanes", "Kernel ablation: scalar vs laned x exact vs approx vs f32 precision tiers", lanes},
		{"pareto", "Far-order frontier: error vs far-list size vs warm pose time across eps x FarOrder", pareto},
	}
}

// ByID looks up an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have tableI, tableII, fig5..fig11, extensions, obs, coldstart, lanes, pareto)", id)
}

// tableI reports the modeled environment — the analogue of the paper's
// Table I, plus the host actually executing the replay.
func tableI(cfg Config) ([]*Table, error) {
	cfg = cfg.WithDefaults()
	cm := cluster.DefaultCostModel()
	t := &Table{
		ID:      "tableI",
		Title:   "Simulation environment",
		Columns: []string{"Attribute", "Property"},
	}
	t.AddRow("Modeled node", "2 sockets x 6 cores (Lonestar4-like, paper Table I)")
	t.AddRow("Cores/node", coresPerNode)
	t.AddRow("Interconnect model (inter-node)",
		fmt.Sprintf("t_s=%v, t_w=%.3g s/word", cm.InterNode.Latency, cm.InterNode.SecPerWord))
	t.AddRow("Interconnect model (intra-node)",
		fmt.Sprintf("t_s=%v, t_w=%.3g s/word", cm.IntraNode.Latency, cm.IntraNode.SecPerWord))
	t.AddRow("Interconnect model (intra-socket)",
		fmt.Sprintf("t_s=%v, t_w=%.3g s/word", cm.IntraSocket.Latency, cm.IntraSocket.SecPerWord))
	t.AddRow("Parallelism platform", "internal/sched (cilk-like work stealing) + internal/cluster (MPI-like)")
	t.AddRow("Calibrated kernel rate", fmt.Sprintf("%.3g f_GB evals/s/core", cfg.OpsPerSecond))
	t.AddRow("Host executing the replay", fmt.Sprintf("%s/%s, %d CPUs, %s",
		runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.Version()))
	t.Notes = append(t.Notes,
		"communication is charged by the Grama et al. formulas the paper's Section IV.C analysis uses")
	return []*Table{t}, nil
}

// tableII reproduces the paper's Table II roster.
func tableII(Config) ([]*Table, error) {
	t := &Table{
		ID:      "tableII",
		Title:   "Packages with GB models and types of parallelism used",
		Columns: []string{"Package", "GB-Model", "Parallelism"},
	}
	for _, p := range baselines.All() {
		t.AddRow(p.Spec.Name, p.Spec.GBModel, p.Spec.Parallelism)
	}
	t.AddRow("OCT_CILK", "STILL (surface r6)", "Shared (work-stealing)")
	t.AddRow("OCT_MPI", "STILL (surface r6)", "Distributed (message passing)")
	t.AddRow("OCT_MPI+CILK", "STILL (surface r6)", "Distributed + shared (hybrid)")
	t.AddRow("Naive", "STILL (surface r6)", "Serial")
	return []*Table{t}, nil
}

// coreCounts is the sweep of Figures 5/6 (the paper plots 12..~300).
func coreCounts() []int { return []int{12, 24, 48, 96, 144, 192, 240, 288} }

// fig5: speedup of OCT_MPI and OCT_MPI+CILK relative to their own
// one-node (12-core) time, on the BTV analogue.
func fig5(cfg Config) ([]*Table, error) {
	cfg = cfg.WithDefaults()
	mol := molecule.BTVAnalogue(cfg.Scale/10, cfg.Seed) // BTV is 12x CMV; keep the default run light
	prep, err := prepare(mol, paperParams(mathx.Exact))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig5",
		Title:   fmt.Sprintf("Speedup vs one node (molecule %s, %d atoms, %d q-points)", mol.Name, mol.NumAtoms(), prep.surf.NumPoints()),
		Columns: []string{"Cores", "OCT_MPI time (s)", "OCT_MPI speedup", "OCT_MPI+CILK time (s)", "OCT_MPI+CILK speedup"},
	}
	var base [2]float64
	for _, cores := range coreCounts() {
		pure, err := runOctMPI(prep, cores, false, cfg, cfg.Seed)
		if err != nil {
			return nil, err
		}
		hyb, err := runOctMPI(prep, cores, true, cfg, cfg.Seed)
		if err != nil {
			return nil, err
		}
		if cores == coresPerNode {
			base[0], base[1] = pure.ModelSeconds, hyb.ModelSeconds
		}
		t.AddRow(cores, pure.ModelSeconds, speedup(base[0], pure.ModelSeconds),
			hyb.ModelSeconds, speedup(base[1], hyb.ModelSeconds))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("BTV analogue at scale %.4g of the paper's 6M atoms; modeled virtual time", cfg.Scale/10))
	return []*Table{t}, nil
}

// fig6: min and max times over Repetitions noisy runs, OCT_MPI vs
// OCT_MPI+CILK, plus the memory comparison of Section V.B.
func fig6(cfg Config) ([]*Table, error) {
	cfg = cfg.WithDefaults()
	mol := molecule.BTVAnalogue(cfg.Scale/10, cfg.Seed)
	prep, err := prepare(mol, paperParams(mathx.Exact))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig6",
		Title: fmt.Sprintf("Scalability with cores: min/max of %d runs (%s)", cfg.Repetitions, mol.Name),
		Columns: []string{"Cores", "OCT_MPI min (s)", "OCT_MPI max (s)",
			"OCT_MPI+CILK min (s)", "OCT_MPI+CILK max (s)"},
	}
	mem := &Table{
		ID:      "fig6-memory",
		Title:   "Per-node memory of the two configurations (Section V.B)",
		Columns: []string{"Cores", "OCT_MPI node mem (MB)", "OCT_MPI+CILK node mem (MB)", "Ratio"},
	}
	for _, cores := range coreCounts() {
		var pure, hyb stats.Summary
		var pureMem, hybMem int64
		for rep := 0; rep < cfg.Repetitions; rep++ {
			seed := cfg.Seed + int64(rep)*7919
			rp, err := runOctMPI(prep, cores, false, cfg, seed)
			if err != nil {
				return nil, err
			}
			rh, err := runOctMPI(prep, cores, true, cfg, seed)
			if err != nil {
				return nil, err
			}
			pure.Add(rp.ModelSeconds)
			hyb.Add(rh.ModelSeconds)
			pureMem = rp.Report.MaxNodeMemoryBytes
			hybMem = rh.Report.MaxNodeMemoryBytes
		}
		t.AddRow(cores, pure.Min(), pure.Max(), hyb.Min(), hyb.Max())
		mem.AddRow(cores, float64(pureMem)/(1<<20), float64(hybMem)/(1<<20),
			float64(pureMem)/float64(hybMem))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("compute jitter sigma=%.3g models OS noise; hybrid variance additionally reflects real work-stealing imbalance", cfg.NoiseSigma))
	return []*Table{t, mem}, nil
}

// sortRowsByFloatColumn sorts table rows ascending by a numeric column.
func sortRowsByFloatColumn(t *Table, col int) {
	slices.SortStableFunc(t.Rows, func(ri, rj []string) int {
		var a, b float64
		fmt.Sscanf(ri[col], "%g", &a)
		fmt.Sscanf(rj[col], "%g", &b)
		return cmp.Compare(a, b)
	})
}
