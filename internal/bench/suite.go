package bench

import (
	"errors"
	"fmt"
	"sync"

	"gbpolar/internal/baselines"
	"gbpolar/internal/core"
	"gbpolar/internal/mathx"
	"gbpolar/internal/molecule"
	"gbpolar/internal/stats"
	"gbpolar/internal/surface"
)

// suiteMolecules returns the subsampled ZDock-like suite.
func suiteMolecules(cfg Config) []*molecule.Molecule {
	sizes := molecule.ZDockLikeSizes()
	var out []*molecule.Molecule
	for i := 0; i < len(sizes); i += cfg.SuiteStride {
		out = append(out, molecule.GenProtein(sizes[i].Name, sizes[i].Atoms, cfg.Seed+int64(i)*7919))
	}
	// Always include the largest (16,301 atoms — the size Figure 8(b)
	// quotes), unless the stride already caught it.
	last := sizes[len(sizes)-1]
	if out[len(out)-1].NumAtoms() != last.Atoms {
		out = append(out, molecule.GenProtein(last.Name, last.Atoms, cfg.Seed+int64(len(sizes)-1)*7919))
	}
	return out
}

// suiteRow is the full measurement of one suite molecule.
type suiteRow struct {
	name  string
	atoms int
	// seconds and energies per program name; missing = failed (OOM).
	seconds  map[string]float64
	energies map[string]float64
	failures map[string]string
	naive    float64
}

const (
	progNaive   = "Naive"
	progOctCILK = "OCT_CILK"
	progOctMPI  = "OCT_MPI"
	progOctHyb  = "OCT_MPI+CILK"
)

// suiteCache memoizes the expensive full-suite sweep so fig8a/fig8b/fig9
// share one computation.
var suiteCache struct {
	sync.Mutex
	key  string
	rows []suiteRow
}

func suiteKey(cfg Config) string {
	return fmt.Sprintf("%d/%d/%d/%g", cfg.Seed, cfg.SuiteStride, cfg.Repetitions, cfg.OpsPerSecond)
}

// computeSuite runs every program of Table II over the suite at 12 cores
// (one modeled node), the setting of Figures 8 and 9.
func computeSuite(cfg Config) ([]suiteRow, error) {
	suiteCache.Lock()
	defer suiteCache.Unlock()
	if suiteCache.key == suiteKey(cfg) {
		return suiteCache.rows, nil
	}
	var rows []suiteRow
	for _, mol := range suiteMolecules(cfg) {
		row := suiteRow{
			name:     mol.Name,
			atoms:    mol.NumAtoms(),
			seconds:  map[string]float64{},
			energies: map[string]float64{},
			failures: map[string]string{},
		}
		// Octree programs share one prepared system (approximate math ON,
		// as in the paper's Figure 7/8 runs).
		prep, err := prepare(mol, paperParams(mathx.Approximate))
		if err != nil {
			return nil, err
		}
		// Naive reference (exact math, the accuracy baseline).
		naiveE, naiveR := core.NaiveEnergy(mol, prep.surf, 80, mathx.Exact)
		_ = naiveR
		row.naive = naiveE
		row.energies[progNaive] = naiveE
		// Naive modeled time: M·N + M² kernel evaluations on one core.
		m := float64(mol.NumAtoms())
		row.seconds[progNaive] = (m*float64(prep.surf.NumPoints()) + m*m) / cfg.OpsPerSecond

		if res, err := runOctCILK(prep, coresPerNode, cfg); err == nil {
			row.seconds[progOctCILK] = res.ModelSeconds
			row.energies[progOctCILK] = res.Epol
		} else {
			row.failures[progOctCILK] = err.Error()
		}
		if res, err := runOctMPI(prep, coresPerNode, false, cfg, cfg.Seed); err == nil {
			row.seconds[progOctMPI] = res.ModelSeconds
			row.energies[progOctMPI] = res.Epol
		} else {
			row.failures[progOctMPI] = err.Error()
		}
		if res, err := runOctMPI(prep, coresPerNode, true, cfg, cfg.Seed); err == nil {
			row.seconds[progOctHyb] = res.ModelSeconds
			row.energies[progOctHyb] = res.Epol
		} else {
			row.failures[progOctHyb] = err.Error()
		}

		for _, p := range baselines.All() {
			cores := coresPerNode
			if p.Spec.Serial {
				cores = 1
			}
			res, err := p.Run(mol, baselines.Options{
				Cores:        cores,
				OpsPerSecond: cfg.OpsPerSecond,
			})
			if err != nil {
				if errors.Is(err, baselines.ErrAtomLimit) {
					row.failures[p.Spec.Name] = "out of memory"
					continue
				}
				return nil, err
			}
			row.seconds[p.Spec.Name] = res.ModelSeconds
			row.energies[p.Spec.Name] = res.Epol
		}
		rows = append(rows, row)
	}
	suiteCache.key = suiteKey(cfg)
	suiteCache.rows = rows
	return rows, nil
}

// fig7: the three octree programs across the suite, sorted by OCT_CILK
// time (the paper's presentation).
func fig7(cfg Config) ([]*Table, error) {
	cfg = cfg.WithDefaults()
	rows, err := computeSuite(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig7",
		Title:   "Octree-based algorithms on one node, 12 cores (approximate math ON)",
		Columns: []string{"Molecule", "Atoms", "OCT_CILK (s)", "OCT_MPI (s)", "OCT_MPI+CILK (s)"},
	}
	for _, r := range rows {
		t.AddRow(r.name, r.atoms, r.seconds[progOctCILK], r.seconds[progOctMPI], r.seconds[progOctHyb])
	}
	sortRowsByFloatColumn(t, 2)
	t.Notes = append(t.Notes, "rows sorted by OCT_CILK time, as in the paper's Figure 7")
	return []*Table{t}, nil
}

// suiteProgramOrder is the Figure 8/9 program roster.
func suiteProgramOrder() []string {
	out := []string{progNaive}
	for _, p := range baselines.All() {
		out = append(out, p.Spec.Name)
	}
	return append(out, progOctCILK, progOctMPI, progOctHyb)
}

// fig8: running times of all programs sorted by molecule size (8a) and
// speedups w.r.t. Amber (8b).
func fig8(cfg Config) ([]*Table, error) {
	cfg = cfg.WithDefaults()
	rows, err := computeSuite(cfg)
	if err != nil {
		return nil, err
	}
	progs := suiteProgramOrder()
	ta := &Table{
		ID:      "fig8a",
		Title:   "Running time (s) of all programs, 12 cores (GBr6 serial), sorted by size",
		Columns: append([]string{"Molecule", "Atoms"}, progs...),
	}
	tb := &Table{
		ID:      "fig8b",
		Title:   "Speedup w.r.t. Amber 12 on 12 cores",
		Columns: append([]string{"Molecule", "Atoms"}, progs[1:]...),
	}
	for _, r := range rows {
		cells := []any{r.name, r.atoms}
		for _, p := range progs {
			if msg, bad := r.failures[p]; bad {
				cells = append(cells, "FAIL("+msg+")")
			} else {
				cells = append(cells, r.seconds[p])
			}
		}
		ta.AddRow(cells...)
		amber := r.seconds["Amber 12"]
		cells = []any{r.name, r.atoms}
		for _, p := range progs[1:] {
			if _, bad := r.failures[p]; bad {
				cells = append(cells, "-")
			} else {
				cells = append(cells, speedup(amber, r.seconds[p]))
			}
		}
		tb.AddRow(cells...)
	}
	return []*Table{ta, tb}, nil
}

// fig9: energy values per program (the paper's Figure 9: all r⁶-based
// codes track the naive value; other GB flavors deviate; Tinker/GBr6 run
// out of memory beyond ≈12–13k atoms).
func fig9(cfg Config) ([]*Table, error) {
	cfg = cfg.WithDefaults()
	rows, err := computeSuite(cfg)
	if err != nil {
		return nil, err
	}
	progs := suiteProgramOrder()
	t := &Table{
		ID:      "fig9",
		Title:   "GB-energy (kcal/mol) computed by different algorithms",
		Columns: append([]string{"Molecule", "Atoms"}, progs...),
	}
	for _, r := range rows {
		cells := []any{r.name, r.atoms}
		for _, p := range progs {
			if _, bad := r.failures[p]; bad {
				cells = append(cells, "OOM")
			} else {
				cells = append(cells, r.energies[p])
			}
		}
		t.AddRow(cells...)
	}
	return []*Table{t}, nil
}

// fig10: % error (avg ± std over the suite) and average running time as
// the E_pol ε sweeps 0.1..0.9 with Born ε fixed at 0.9, approximate math
// OFF — the paper's Figure 10 protocol.
func fig10(cfg Config) ([]*Table, error) {
	cfg = cfg.WithDefaults()
	mols := suiteMolecules(cfg)
	// Naive references, computed once per molecule (exact math).
	type ref struct {
		prepBySweep map[float64]*core.System
		surf        *surface.Surface
		naive       float64
	}
	refs := make([]ref, len(mols))
	for i, mol := range mols {
		surf, err := surface.ForMolecule(mol, surface.Options{})
		if err != nil {
			return nil, err
		}
		naiveE, _ := core.NaiveEnergy(mol, surf, 80, mathx.Exact)
		refs[i] = ref{surf: surf, naive: naiveE}
	}
	t := &Table{
		ID:      "fig10",
		Title:   "OCT_MPI+CILK error and time vs E_pol epsilon (Born epsilon fixed at 0.9, approximate math OFF)",
		Columns: []string{"EpsEpol", "Avg %error", "Std %error", "Avg time (s)"},
	}
	for _, eps := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		var errStat, timeStat stats.Summary
		for i, mol := range mols {
			params := core.Params{EpsBorn: 0.9, EpsEpol: eps, EpsSolv: 80, Math: mathx.Exact}
			sys, err := core.NewSystem(mol, refs[i].surf, params)
			if err != nil {
				return nil, err
			}
			prep := &prepared{mol: mol, surf: refs[i].surf, sys: sys}
			res, err := runOctMPI(prep, coresPerNode, true, cfg, cfg.Seed)
			if err != nil {
				return nil, err
			}
			errStat.Add(stats.PercentError(res.Epol, refs[i].naive))
			timeStat.Add(res.ModelSeconds)
		}
		t.AddRow(eps, errStat.Mean(), errStat.Std(), timeStat.Mean())
	}
	t.Notes = append(t.Notes,
		"paper: error grows and time falls with epsilon; approximate math ON shifts error by 4-5% and speeds up ~1.42x (see fig7/fig8 runs)")
	return []*Table{t}, nil
}
