package bench

import (
	"fmt"
	"math"
	"time"

	"gbpolar/internal/cluster"
	"gbpolar/internal/core"
	"gbpolar/internal/mathx"
	"gbpolar/internal/molecule"
	"gbpolar/internal/surface"
)

// Config parameterizes all experiments. The defaults run every figure at
// laptop scale; raise Scale/SuiteStride/Repetitions to approach the
// paper's full workloads.
type Config struct {
	// Seed drives every generator; a fixed seed reproduces every table
	// byte-for-byte.
	Seed int64
	// Scale shrinks the virus-shell molecules (1 = the paper's full
	// CMV/BTV sizes). Default 0.02 (≈10k-atom CMV analogue).
	Scale float64
	// SuiteStride subsamples the 84-protein ZDock-like suite (1 = all).
	// Default 7 (12 proteins).
	SuiteStride int
	// Repetitions is the per-configuration run count for min/max and
	// averaging figures (paper: 20 for Figure 6, 10 for Figure 8).
	Repetitions int
	// OpsPerSecond overrides the calibrated kernel rate (0 = calibrate).
	OpsPerSecond float64
	// NoiseSigma is the modeled OS jitter for repetition experiments.
	NoiseSigma float64
	// MPIStartup is the per-run launch overhead of distributed programs
	// (default 1 ms) — the cost that makes OCT_CILK the fastest octree
	// variant below ≈2500 atoms in the paper's Figure 7.
	MPIStartup time.Duration
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale <= 0 {
		c.Scale = 0.02
	}
	if c.SuiteStride <= 0 {
		c.SuiteStride = 7
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 5
	}
	if c.OpsPerSecond <= 0 {
		c.OpsPerSecond = core.CalibratedOpsPerSecond()
	}
	if c.NoiseSigma <= 0 {
		c.NoiseSigma = 0.03
	}
	if c.MPIStartup == 0 {
		c.MPIStartup = time.Millisecond
	}
	return c
}

// cilkNUMAFactor models the NUMA penalty of the affinity-less cilk++
// scheduler when one shared-memory pool spans both sockets (Section V.A:
// "cilk++ does not provide any thread affinity manager"). It multiplies
// OCT_CILK's modeled time when more than one socket's worth of threads
// share a pool; OCT_MPI+CILK avoids it by pinning one 6-thread rank per
// socket, exactly like the paper's ibrun tacc_affinity setup.
const cilkNUMAFactor = 1.3

// coresPerNode and threads-per-socket of the modeled Lonestar4 node.
const (
	coresPerNode   = 12
	threadsPerSock = 6
)

// prepared bundles a molecule with its surface and octree system.
type prepared struct {
	mol  *molecule.Molecule
	surf *surface.Surface
	sys  *core.System
}

func prepare(mol *molecule.Molecule, params core.Params) (*prepared, error) {
	surf, err := surface.ForMolecule(mol, surface.Options{})
	if err != nil {
		return nil, fmt.Errorf("bench: surface for %s: %w", mol.Name, err)
	}
	sys, err := core.NewSystem(mol, surf, params)
	if err != nil {
		return nil, fmt.Errorf("bench: system for %s: %w", mol.Name, err)
	}
	return &prepared{mol: mol, surf: surf, sys: sys}, nil
}

// runOctCILK is the OCT_CILK configuration: one shared-memory process
// with `threads` work-stealing workers. The NUMA factor applies when the
// pool spans sockets.
func runOctCILK(p *prepared, threads int, cfg Config) (*core.Result, error) {
	res, err := core.RunShared(p.sys, core.SharedOptions{
		Threads:      threads,
		OpsPerSecond: cfg.OpsPerSecond,
	})
	if err != nil {
		return nil, err
	}
	if threads > threadsPerSock {
		res.ModelSeconds *= cilkNUMAFactor
	}
	return res, nil
}

// octClusterConfig builds the cluster layout for `cores` total cores:
// pure MPI packs 12 single-threaded ranks per node; hybrid runs 2 ranks
// × 6 threads per node (one rank per socket, the paper's Section V.A
// placement).
func octClusterConfig(cores int, hybrid bool, cfg Config, seed int64) cluster.Config {
	nodes := (cores + coresPerNode - 1) / coresPerNode
	cc := cluster.Config{
		Topology:     cluster.Lonestar4(nodes),
		OpsPerSecond: cfg.OpsPerSecond,
		NoiseSigma:   cfg.NoiseSigma,
		Seed:         seed,
		StartupCost:  cfg.MPIStartup,
	}
	if hybrid {
		cc.Procs = cores / threadsPerSock
		cc.ThreadsPerProc = threadsPerSock
		cc.RanksPerNode = 2
	} else {
		cc.Procs = cores
		cc.ThreadsPerProc = 1
		cc.RanksPerNode = coresPerNode
	}
	return cc
}

// runOctMPI is OCT_MPI (hybrid=false) or OCT_MPI+CILK (hybrid=true) on
// the given total core count.
func runOctMPI(p *prepared, cores int, hybrid bool, cfg Config, seed int64) (*core.Result, error) {
	return core.RunDistributed(p.sys, octClusterConfig(cores, hybrid, cfg, seed))
}

// speedup formats base/t with a guard.
func speedup(base, t float64) float64 {
	if t <= 0 {
		return math.Inf(1)
	}
	return base / t
}

// paperParams returns the paper's headline parameters with the chosen
// math mode (Figures 7/8 use approximate math ON; Figure 10 turns it
// OFF).
func paperParams(mode mathx.Mode) core.Params {
	p := core.DefaultParams()
	p.Math = mode
	return p
}
