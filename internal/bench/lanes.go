package bench

import (
	"fmt"
	"math"
	"time"

	"gbpolar/internal/core"
	"gbpolar/internal/geom"
	"gbpolar/internal/mathx"
	"gbpolar/internal/molecule"
	"gbpolar/internal/sched"
)

// lanes is the kernel ablation (`gbbench -exp lanes`): the warm pose
// scan measured under every precision tier of the compiled batch kernels
// — scalar exact (the baseline), scalar approximate math (the paper's
// Section V.E comparison, which bought 1.42× standalone), the laned
// float64 approximate tier, and the float32 lane tier. One table,
// paper-style: energy, relative error against the exact tier at a fixed
// pose, best-of-reps ms per pose, and speedup over scalar exact.
func lanes(cfg Config) ([]*Table, error) {
	cfg = cfg.WithDefaults()
	n := int(40000 * cfg.Scale / 0.02)
	if n < 500 {
		n = 500
	}
	mol := molecule.GenProtein("lanes-ablation", n, cfg.Seed)
	prep, err := prepare(mol, paperParams(mathx.Exact))
	if err != nil {
		return nil, err
	}
	sys := prep.sys
	pool := sched.NewPool(0)
	defer pool.Close()
	opts := core.SharedOptions{Pool: pool}
	if _, err := core.RunShared(sys, opts); err != nil { // compile lists
		return nil, err
	}

	tiers := []struct {
		label string
		prec  core.Precision
		mode  mathx.Mode
	}{
		{"scalar exact (baseline)", core.PrecisionExact, mathx.Exact},
		{"scalar approx (paper V.E)", core.PrecisionExact, mathx.Approximate},
		{"laned approx f64", core.PrecisionLanes, mathx.Exact},
		{"laned f32", core.PrecisionF32, mathx.Exact},
	}
	saved := sys.Params
	defer func() { sys.Params = saved }()

	// Energies for the error column are all taken at the SAME fixed pose;
	// the timing loop below re-poses freely (rigid motion preserves the
	// lists and the work, so it cannot skew the comparison).
	energies := make([]float64, len(tiers))
	for i, tr := range tiers {
		sys.Params.Precision, sys.Params.Math = tr.prec, tr.mode
		res, err := core.RunShared(sys, opts)
		if err != nil {
			return nil, err
		}
		energies[i] = res.Epol
	}

	t := &Table{
		ID: "lanes",
		Title: fmt.Sprintf("Kernel ablation: precision tiers on the warm pose scan (%d atoms, %d q-points)",
			mol.NumAtoms(), prep.surf.NumPoints()),
		Columns: []string{"Kernel tier", "E_pol (kcal/mol)", "Rel err vs exact", "ms/pose (best)", "Speedup"},
	}
	step := geom.Translate(geom.V(1.5, -0.7, 0.9)).Compose(geom.RotateAxis(geom.V(0, 0, 1), 0.05))
	reps := cfg.Repetitions
	if reps < 3 {
		reps = 3
	}
	var baseMS float64
	for i, tr := range tiers {
		sys.Params.Precision, sys.Params.Math = tr.prec, tr.mode
		best := math.Inf(1)
		for rep := 0; rep < reps; rep++ {
			sys.ApplyRigidTransform(step)
			t0 := time.Now()
			if _, err := core.RunShared(sys, opts); err != nil {
				return nil, err
			}
			if ms := float64(time.Since(t0).Microseconds()) / 1000; ms < best {
				best = ms
			}
		}
		if i == 0 {
			baseMS = best
		}
		relE := math.Abs(energies[i]-energies[0]) / math.Abs(energies[0])
		t.AddRow(tr.label, fmt.Sprintf("%.6f", energies[i]), fmt.Sprintf("%.2e", relE),
			fmt.Sprintf("%.3f", best), fmt.Sprintf("%.2fx", baseMS/best))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("near-block kernel ISA: %s (runtime-detected; portable lane fallback elsewhere)", core.KernelISA()),
		"ms/pose includes the rigid transform, SoA refresh (and, for f32, the float32 mirror reconversion) plus both energy phases",
		"the portable laned-f64 path is bit-identical to a scalar-approx run (TestLanesTierBitCompatible); the avx2+fma path is pinned to it at ~1e-11 (TestAsmKernelsMatchPortable); f32 is budgeted at ≤1e-4 relative (TestF32TierErrorBudget)",
		"paper Section V.E reports 1.42× from approximate math alone; GOAMD64=v3 (make bench-lanes GOAMD64=v3) additionally lifts the compiled Go code to the AVX2 baseline")
	return []*Table{t}, nil
}

// gateKernelStats is the "kernel" perfgate measurement class: the warm
// pose scan of the gate molecule under each precision tier, best-of-2
// per-pose wall milliseconds. Stat names carry "wall" so the comparison
// applies the wall-clock tolerance floor.
func gateKernelStats(p *prepared) (map[string]float64, error) {
	sys := p.sys
	saved := sys.Params
	defer func() { sys.Params = saved }()
	step := geom.Translate(geom.V(0.9, 0.4, -1.1)).Compose(geom.RotateAxis(geom.V(1, 1, 0), 0.04))
	out := make(map[string]float64, 3)
	for _, tier := range []struct {
		stat string
		prec core.Precision
	}{
		{"kernel.exact.wall_ms", core.PrecisionExact},
		{"kernel.lanes.wall_ms", core.PrecisionLanes},
		{"kernel.f32.wall_ms", core.PrecisionF32},
	} {
		sys.Params.Precision = tier.prec
		if _, err := core.RunShared(sys, core.SharedOptions{}); err != nil { // tier warm-up
			return nil, err
		}
		best := math.Inf(1)
		for rep := 0; rep < 2; rep++ {
			sys.ApplyRigidTransform(step)
			t0 := time.Now()
			if _, err := core.RunShared(sys, core.SharedOptions{}); err != nil {
				return nil, err
			}
			if ms := float64(time.Since(t0)) / float64(time.Millisecond); ms < best {
				best = ms
			}
		}
		out[tier.stat] = best
	}
	return out, nil
}
