package bench

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"gbpolar/internal/bench/gate"
	"gbpolar/internal/obs"
	"gbpolar/internal/obs/analyze"
)

// TestGateReportReconciliation is the issue's acceptance run: `gbtrace
// report` on a traced 4-rank resilient 5k-atom run must print per-phase
// wall/virtual breakdowns whose totals reconcile with the raw span sums,
// and must name the dominant phase and a max/mean imbalance factor per
// phase. The analysis is driven through the same JSONL round-trip the
// CLI uses.
func TestGateReportReconciliation(t *testing.T) {
	p, err := gatePrepare(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	if err := gateRun(p, 1, o); err != nil {
		t.Fatal(err)
	}

	// Re-ingest through the JSONL round-trip, exactly as cmd/gbtrace does.
	var jsonl strings.Builder
	if err := o.Trace.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadJSONL(strings.NewReader(jsonl.String()))
	if err != nil {
		t.Fatal(err)
	}
	a := analyze.FromTrace(back)

	// Independent raw span sums straight off the event list.
	type sums struct{ wall, virt float64 }
	raw := map[string]*sums{}
	for _, ev := range back.Events() {
		if ev.Cat != "phase" || ev.Ph != "X" {
			continue
		}
		s := raw[ev.Name]
		if s == nil {
			s = &sums{}
			raw[ev.Name] = s
		}
		s.wall += ev.WallDurUS
		if ev.HasVirt && ev.Args["truncated"] == 0 {
			s.virt += ev.VirtDurUS
		}
	}
	if len(raw) == 0 {
		t.Fatal("traced run produced no phase spans")
	}
	for _, want := range []string{"build", "born", "push", "epol"} {
		if raw[want] == nil {
			t.Fatalf("no %q phase in trace; have %v", want, raw)
		}
	}
	for name, s := range raw {
		ps := a.Phase(name)
		if ps == nil {
			t.Fatalf("analysis dropped phase %q", name)
		}
		if e := relDiff(ps.Wall.TotalUS, s.wall); e > 1e-9 {
			t.Errorf("phase %s wall total %g != raw span sum %g", name, ps.Wall.TotalUS, s.wall)
		}
		if e := relDiff(ps.Virt.TotalUS, s.virt); e > 1e-9 {
			t.Errorf("phase %s virt total %g != raw span sum %g", name, ps.Virt.TotalUS, s.virt)
		}
		// A max/mean imbalance factor per phase, λ ≥ 1 by construction.
		if ps.Virt.TotalUS > 0 && ps.Virt.Imbalance < 1 {
			t.Errorf("phase %s imbalance %g < 1", name, ps.Virt.Imbalance)
		}
	}

	// The printed report names the dominant phase and the imbalance table.
	var buf strings.Builder
	if err := a.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "dominant phase: "+a.DominantPhase) || a.DominantPhase == "" {
		t.Errorf("report does not name the dominant phase:\n%s", out)
	}
	for _, want := range []string{"w-imb", "v-imb", "born", "push", "epol", "straggler: rank"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// The crash shows up as recovery attribution (rank 1, 2nd collective).
	if a.Recovery.Crashes != 1 || a.Recovery.RecomputedRows <= 0 {
		t.Errorf("recovery attribution = %+v, want 1 crash with recomputed rows", a.Recovery)
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) / den
}

// TestGateSelfCompare: the gate must pass when a run is compared against
// its own freshly measured baseline — the deterministic virtual stats
// match exactly and the wall stats sit inside the noise-aware tolerance.
func TestGateSelfCompare(t *testing.T) {
	const atoms, reps = 2000, 3
	first, err := GateSamples(atoms, reps, 1)
	if err != nil {
		t.Fatal(err)
	}
	second, err := GateSamples(atoms, reps, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := BuildBaseline(first, atoms, 1)
	cur := BuildBaseline(second, atoms, 1)
	if len(base.Stats) == 0 {
		t.Fatal("baseline tracked no stats")
	}
	rows, ok := CompareBaselines(base, cur)
	if !ok {
		var bad []GateRow
		for _, r := range rows {
			if r.Status == "REGRESSED" {
				bad = append(bad, r)
			}
		}
		t.Fatalf("self-compare failed the gate: %+v", bad)
	}
	// The virtual axis is pinned: identical medians, zero spread. (Event
	// counts are NOT in this list — collective retry attempts after the
	// crash depend on goroutine interleaving, so a loaded host can shift
	// the trace by a few events; the gate's gate.SchedFloor absorbs that.)
	for _, key := range []string{"critical.virt_ms", "makespan.virt_ms"} {
		b, c := base.Stats[key], cur.Stats[key]
		if b.Median != c.Median || b.Spread != 0 || c.Spread != 0 {
			t.Errorf("%s not deterministic: base %+v cur %+v", key, b, c)
		}
	}
	if _, ok := base.Stats["events"]; !ok {
		t.Error("events not tracked in the baseline")
	}
}

// TestGateRegressionDetected: a synthetic stat table with one phase
// slowed 2x must fail the gate with that stat flagged, on both axes;
// the same-sized improvement must not fail it.
func TestGateRegressionDetected(t *testing.T) {
	mk := func(epolVirt, epolWall float64) []map[string]float64 {
		var out []map[string]float64
		for i := 0; i < 3; i++ {
			jitter := 1 + 0.02*float64(i) // ±2% wall noise across reps
			out = append(out, map[string]float64{
				"phase.epol.virt_ms":        epolVirt,
				"phase.epol.wall_ms":        epolWall * jitter,
				"phase.born.virt_ms":        40,
				"critical.virt_ms":          epolVirt + 40,
				"makespan.wall_ms":          (epolWall + 30) * jitter,
				"events":                    100,
				"phase.epol.virt_imbalance": 1.2,
			})
		}
		return out
	}
	base := BuildBaseline(mk(100, 80), 2000, 1)

	slowed := BuildBaseline(mk(200, 160), 2000, 1)
	rows, ok := CompareBaselines(base, slowed)
	if ok {
		t.Fatal("gate passed a 2x phase slowdown")
	}
	flagged := map[string]bool{}
	for _, r := range rows {
		if r.Status == "REGRESSED" {
			flagged[r.Stat] = true
		}
	}
	for _, want := range []string{"phase.epol.virt_ms", "phase.epol.wall_ms", "critical.virt_ms"} {
		if !flagged[want] {
			t.Errorf("2x slowdown did not flag %s (flagged: %v)", want, flagged)
		}
	}
	if flagged["phase.born.virt_ms"] || flagged["events"] {
		t.Errorf("untouched stats flagged: %v", flagged)
	}
	// Regressions sort to the top of the printed table.
	if rows[0].Status != "REGRESSED" {
		t.Errorf("rows[0] = %+v, want a regression first", rows[0])
	}

	improved, ok := CompareBaselines(base, BuildBaseline(mk(50, 40), 2000, 1))
	if !ok {
		t.Fatalf("gate failed on an improvement: %+v", improved)
	}
}

// TestGateTolerancePolicy pins the noise-aware tolerance: wall stats get
// the generous floor, scheduling-sensitive counts the middle one,
// everything else the strict one, and the observed spread widens all.
func TestGateTolerancePolicy(t *testing.T) {
	if got := gate.Tolerance("phase.epol.wall_ms", GateStat{}, GateStat{}); got != gate.WallFloor {
		t.Errorf("wall floor = %v, want %v", got, gate.WallFloor)
	}
	for _, stat := range []string{"events", "collective.allreduce.count", "collective.allreduce.wait_ms"} {
		if got := gate.Tolerance(stat, GateStat{}, GateStat{}); got != gate.SchedFloor {
			t.Errorf("%s floor = %v, want %v", stat, got, gate.SchedFloor)
		}
	}
	if got := gate.Tolerance("phase.epol.virt_ms", GateStat{}, GateStat{}); got != gate.StrictFloor {
		t.Errorf("strict floor = %v, want %v", got, gate.StrictFloor)
	}
	wide := gate.Tolerance("phase.epol.virt_ms", GateStat{Spread: 0.1}, GateStat{Spread: 0.05})
	if want := gate.SpreadMult * 0.15; math.Abs(wide-want) > 1e-12 {
		t.Errorf("spread-widened tolerance = %v, want %v", wide, want)
	}
}

// TestBaselineRoundTrip: WriteFile/ReadBaseline preserve the stats and
// reject schema drift.
func TestBaselineRoundTrip(t *testing.T) {
	b := BuildBaseline([]map[string]float64{
		{"phase.epol.virt_ms": 10, "events": 5},
		{"phase.epol.virt_ms": 12, "events": 5},
	}, 2000, 7)
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Atoms != 2000 || back.Seed != 7 || back.Reps != 2 {
		t.Fatalf("baseline header lost: %+v", back)
	}
	if got := back.Stats["phase.epol.virt_ms"].Median; got != 11 {
		t.Fatalf("median = %v, want 11 (even-count midpoint)", got)
	}
	if back.Created == "" || back.Git == "" {
		t.Fatalf("missing provenance stamps: %+v", back)
	}

	bad := &Baseline{Schema: 99, Stats: map[string]GateStat{}}
	raw := filepath.Join(t.TempDir(), "bad.json")
	if err := bad.WriteFile(raw); err != nil {
		t.Fatal(err)
	}
	// WriteFile stamps the stale schema as-is; ReadBaseline must refuse it.
	bad.Schema = 99
	if _, err := ReadBaseline(raw); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema mismatch not rejected: %v", err)
	}
}
