package bench

import (
	"fmt"
	"math/rand"
	"time"

	"gbpolar/internal/core"
	"gbpolar/internal/geom"
	"gbpolar/internal/mathx"
	"gbpolar/internal/molecule"
	"gbpolar/internal/nblist"
	"gbpolar/internal/octree"
)

// extensions regenerates the measurements for the features built beyond
// the paper (its Section VI future work; see DESIGN.md "Extensions"):
// inter-rank work stealing under heterogeneous-node stragglers, and
// incremental octree updates vs rebuilds.
func extensions(cfg Config) ([]*Table, error) {
	cfg = cfg.WithDefaults()

	// --- Extension 1: inter-rank work stealing vs static division -----
	// 5k atoms so each of the 12 ranks owns ≈50 leaves — enough
	// granularity for balanced grants (stealing cannot help when a
	// segment is only a handful of grant quanta).
	mol := molecule.GenProtein("ext-steal", 5000, cfg.Seed)
	prep, err := prepare(mol, paperParams(mathx.Exact))
	if err != nil {
		return nil, err
	}
	t1 := &Table{
		ID:    "extA-stealing",
		Title: "Static vs work-stealing energy phase under heterogeneous nodes (12 ranks, hetero sigma)",
		Columns: []string{"Hetero sigma", "Static (s)", "Dynamic (s)", "Improvement",
			"Steals", "Leaves migrated"},
	}
	for _, sigma := range []float64{0, 0.5, 1.0, 2.0} {
		var statSum, dynSum float64
		var steals, migrated int
		for rep := 0; rep < cfg.Repetitions; rep++ {
			cc := octClusterConfig(coresPerNode, false, cfg, cfg.Seed+int64(rep)*101)
			cc.NoiseSigma = 0
			cc.HeteroSigma = sigma
			static, err := core.RunDistributed(prep.sys, cc)
			if err != nil {
				return nil, err
			}
			dyn, stats, err := core.RunDistributedDynamic(prep.sys, cc)
			if err != nil {
				return nil, err
			}
			statSum += static.ModelSeconds
			dynSum += dyn.ModelSeconds
			steals += stats.Steals
			migrated += stats.LeavesMigrated
		}
		t1.AddRow(sigma, statSum/float64(cfg.Repetitions), dynSum/float64(cfg.Repetitions),
			fmt.Sprintf("%.1f%%", 100*(1-dynSum/statSum)),
			steals/cfg.Repetitions, migrated/cfg.Repetitions)
	}
	t1.Notes = append(t1.Notes,
		"the paper's Section VI future work; static pays the slowest rank's whole segment, stealing migrates it")

	// --- Extension 2: incremental octree update vs rebuild ------------
	big := molecule.GenProtein("ext-upd", 20000, cfg.Seed+1)
	pts := big.Positions()
	tree, err := octree.Build(pts, octree.Options{LeafCap: 8})
	if err != nil {
		return nil, err
	}
	t2 := &Table{
		ID:    "extB-octree-update",
		Title: "Structure maintenance after motion: octree vs nonbonded list (20k atoms)",
		Columns: []string{"Displacement (Å)", "Moved points", "Octree update (ms)",
			"Octree rebuild (ms)", "Nblist rebuild 16Å (ms)", "Octree vs nblist"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	for _, disp := range []float64{0.05, 0.2, 1.0, 4.0} {
		jig := make([]geom.Vec3, len(pts))
		for i, p := range pts {
			jig[i] = p.Add(geom.V(
				(rng.Float64()*2-1)*disp, (rng.Float64()*2-1)*disp, (rng.Float64()*2-1)*disp))
		}
		t0 := time.Now()
		moved, err := tree.Update(jig)
		if err != nil {
			return nil, err
		}
		updMS := float64(time.Since(t0).Microseconds()) / 1000

		t0 = time.Now()
		if _, err := octree.Build(jig, octree.Options{LeafCap: 8}); err != nil {
			return nil, err
		}
		rebMS := float64(time.Since(t0).Microseconds()) / 1000

		t0 = time.Now()
		if _, err := nblist.Build(jig, 16, nblist.Options{}); err != nil {
			return nil, err
		}
		nbMS := float64(time.Since(t0).Microseconds()) / 1000
		t2.AddRow(disp, moved, updMS, rebMS, nbMS, fmt.Sprintf("%.0fx", nbMS/updMS))
		pts = jig
	}
	t2.Notes = append(t2.Notes,
		"Section II's update-efficiency claim: after motion, the octree is repaired (or even rebuilt) orders of magnitude cheaper than the cutoff pair list the baseline packages must refresh")

	// --- Extension 3: distributing data as well as computation ---------
	// (the paper's other Section VI item) — measured Local Essential
	// Trees under the node-node division.
	dmol := molecule.GenProtein("ext-ddist", 6000, cfg.Seed+3)
	dprep, err := prepare(dmol, paperParams(mathx.Exact))
	if err != nil {
		return nil, err
	}
	t3 := &Table{
		ID:    "extC-data-distribution",
		Title: "Per-rank memory if data were distributed (measured Local Essential Trees, 6k atoms)",
		Columns: []string{"Ranks", "Replicated (MB/rank)", "LET max (MB/rank)",
			"Saving", "Max ghost atoms", "Aggregates"},
	}
	for _, procs := range []int{2, 4, 12, 24, 48} {
		rep, err := core.MeasureDataDistribution(dprep.sys, procs)
		if err != nil {
			return nil, err
		}
		maxGhost, maxAgg := 0, 0
		for _, rd := range rep.PerRank {
			if rd.GhostAtoms > maxGhost {
				maxGhost = rd.GhostAtoms
			}
			if rd.Aggregates > maxAgg {
				maxAgg = rd.Aggregates
			}
		}
		t3.AddRow(procs, float64(rep.ReplicatedBytes)/(1<<20),
			float64(rep.MaxLETBytes())/(1<<20),
			fmt.Sprintf("%.1fx", rep.Savings()), maxGhost, maxAgg)
	}
	t3.Notes = append(t3.Notes,
		"ghosts = remote atoms a rank's near field reads; the exchange volume data distribution would add")
	return []*Table{t1, t2, t3}, nil
}
