package bench

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gbpolar/internal/cluster"
	"gbpolar/internal/core"
	"gbpolar/internal/mathx"
	"gbpolar/internal/molecule"
	"gbpolar/internal/obs"
	"gbpolar/internal/obs/analyze"
	"gbpolar/internal/obs/watch"
)

// obsOverhead measures the cost of the observability layer (DESIGN.md
// §8): the same 5k-atom energy computation with tracing+metrics off vs
// on, interleaved min-of-N so both variants see the same thermal/cache
// conditions. The disabled path must stay under 2% (guarded by
// TestDisabledObsOverhead in internal/core); the enabled path is
// reported here so EXPERIMENTS.md can quote it.
func obsOverhead(cfg Config) ([]*Table, error) {
	cfg = cfg.WithDefaults()
	mol := molecule.GenProtein("obs-bench", 5000, cfg.Seed)
	prep, err := prepare(mol, paperParams(mathx.Exact))
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "obs-overhead",
		Title: "Observability overhead: tracing+metrics on vs off (5k atoms, min of reps)",
		Columns: []string{"Runner", "Obs off (s)", "Obs on (s)", "Overhead",
			"Events", "Metrics"},
	}

	metricCount := func(o *obs.Obs) int {
		snap := o.Metrics.Snapshot()
		return len(snap.Counters) + len(snap.Gauges) + len(snap.Histograms)
	}

	// --- OCT_CILK: real wall time of the shared-memory runner ---------
	shared := func(o *obs.Obs) (float64, error) {
		res, err := core.RunShared(prep.sys, core.SharedOptions{
			Threads:      threadsPerSock,
			OpsPerSecond: cfg.OpsPerSecond,
			Obs:          o,
		})
		if err != nil {
			return 0, err
		}
		return res.WallSeconds, nil
	}
	if _, err := shared(nil); err != nil { // warm lists + pools
		return nil, err
	}
	offMin, onMin := math.Inf(1), math.Inf(1)
	var lastShared *obs.Obs
	for rep := 0; rep < cfg.Repetitions; rep++ {
		w, err := shared(nil)
		if err != nil {
			return nil, err
		}
		offMin = math.Min(offMin, w)
		o := obs.New()
		if w, err = shared(o); err != nil {
			return nil, err
		}
		onMin = math.Min(onMin, w)
		lastShared = o
	}
	t.AddRow("OCT_CILK (6 threads)", offMin, onMin,
		fmt.Sprintf("%+.1f%%", 100*(onMin/offMin-1)),
		lastShared.Trace.NumEvents(), metricCount(lastShared))

	// --- Resilient OCT_MPI replay with an injected crash --------------
	// Here the trace additionally carries per-collective spans and the
	// fault/recovery events; wall time is the replay cost, virtual time
	// is identical by construction.
	resilient := func(o *obs.Obs) (*core.Result, error) {
		cc := octClusterConfig(4, false, cfg, cfg.Seed)
		cc.Procs = 4
		cc.NoiseSigma = 0
		cc.Faults = &cluster.FaultPlan{Faults: []cluster.Fault{
			{Kind: cluster.CrashAtCollective, Rank: 1, Nth: 2},
		}}
		cc.Obs = o
		return core.RunDistributedResilient(prep.sys, cc)
	}
	if _, err := resilient(nil); err != nil {
		return nil, err
	}
	offMin, onMin = math.Inf(1), math.Inf(1)
	var lastRes *core.Result
	var lastObs *obs.Obs
	for rep := 0; rep < cfg.Repetitions; rep++ {
		res, err := resilient(nil)
		if err != nil {
			return nil, err
		}
		offMin = math.Min(offMin, res.WallSeconds)
		o := obs.New()
		if res, err = resilient(o); err != nil {
			return nil, err
		}
		onMin = math.Min(onMin, res.WallSeconds)
		lastRes, lastObs = res, o
	}
	t.AddRow("Resilient OCT_MPI (4 ranks, 1 crash)", offMin, onMin,
		fmt.Sprintf("%+.1f%%", 100*(onMin/offMin-1)),
		lastObs.Trace.NumEvents(), metricCount(lastObs))

	// --- Real 4-rank net transport with wire-shipped telemetry --------
	// The full distributed observability plane: per-worker observers
	// shipping span batches and metric deltas over TCP, the coordinator
	// folding them into the merged timeline. "On" here measures the
	// whole plane — collection, encoding, shipping, absorbing. A
	// negative health interval keeps the PR-9 sampler out of this row so
	// it isolates the telemetry cost; the next row turns it on.
	netRun := func(observe bool, health time.Duration, wcfg *watch.Config) (float64, *obs.Obs, error) {
		dir, err := os.MkdirTemp("", "gbbench-net-*")
		if err != nil {
			return 0, nil, err
		}
		defer os.RemoveAll(dir)
		membership := filepath.Join(dir, "cluster.json")
		var co *obs.Obs
		if observe {
			co = obs.New()
		}
		var wg sync.WaitGroup
		for r := 1; r < 4; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				var wo *obs.Obs
				if observe {
					wo = obs.New()
				}
				core.RunNetWorker(membership, r, core.NetWorkerOptions{
					StallTimeout:   time.Minute,
					JoinBudget:     time.Minute,
					Obs:            wo,
					HealthInterval: health,
				})
			}(r)
		}
		res, err := core.RunNetCoordinator(context.Background(), prep.sys, core.NetOptions{
			Procs:          4,
			MembershipPath: membership,
			CheckpointPath: filepath.Join(dir, "sys.ckpt"),
			StallTimeout:   time.Minute,
			Obs:            co,
			HealthInterval: health,
			Watch:          wcfg,
		})
		wg.Wait()
		if err != nil {
			return 0, nil, err
		}
		return res.WallSeconds, co, nil
	}
	if _, _, err := netRun(false, -1, nil); err != nil {
		return nil, err
	}
	offMin, onMin = math.Inf(1), math.Inf(1)
	netOff := math.Inf(1)
	var lastNet *obs.Obs
	for rep := 0; rep < cfg.Repetitions; rep++ {
		w, _, err := netRun(false, -1, nil)
		if err != nil {
			return nil, err
		}
		offMin = math.Min(offMin, w)
		if w, lastNet, err = netRun(true, -1, nil); err != nil {
			return nil, err
		}
		onMin = math.Min(onMin, w)
	}
	netOff = offMin
	t.AddRow("Net TCP (4 ranks, wire telemetry)", offMin, onMin,
		fmt.Sprintf("%+.1f%%", 100*(onMin/offMin-1)),
		lastNet.Trace.NumEvents(), metricCount(lastNet))

	// --- Net transport + health sampler + anomaly watchdog ------------
	// The PR-9 live-watch layer on top of the previous row: per-rank
	// runtime health samplers feeding the shipped registries, and the
	// coordinator-side watchdog evaluating every window against a
	// baseline derived from the telemetry-only run above. Same off
	// reference as the previous row, so the delta between the two rows
	// is the sampler+watchdog cost alone.
	baseline := watch.BaselineFromSummary(analyze.FromTrace(lastNet.Trace).Summary())
	wcfg := &watch.Config{Baseline: baseline}
	onMin = math.Inf(1)
	var lastWatch *obs.Obs
	for rep := 0; rep < cfg.Repetitions; rep++ {
		w, o, err := netRun(true, 0, wcfg)
		if err != nil {
			return nil, err
		}
		if w < onMin {
			onMin, lastWatch = w, o
		}
	}
	t.AddRow("Net TCP + sampler + watchdog", netOff, onMin,
		fmt.Sprintf("%+.1f%%", 100*(onMin/netOff-1)),
		lastWatch.Trace.NumEvents(), metricCount(lastWatch))

	t.Notes = append(t.Notes,
		"overhead is on replay wall time; modeled virtual time is identical by construction",
		"the disabled path (Obs=nil) is one pointer test per phase — guarded <2% by TestDisabledObsOverhead",
		"the net row measures the full telemetry plane: per-worker collection, binary encoding, TCP shipping, and coordinator-side merging",
		"the watchdog row adds per-rank runtime health samplers and the baseline-driven anomaly watchdog (DESIGN.md §14) against the same obs-off reference")
	t.Report = lastRes.Report
	return []*Table{t}, nil
}
