// Package gate is the statistical comparison core of the performance
// regression gate: per-stat medians and run-to-run spreads snapshotted
// into a baseline (results/baseline.json), and a noise-aware comparison
// that fails only when a tracked stat regresses beyond a per-class
// relative tolerance. It is a leaf package — only internal/obs below it —
// so both the offline gate (internal/bench, cmd/gbbench) and the live
// anomaly watchdog (internal/obs/watch) can share one definition of
// "nominal, within tolerance". See DESIGN.md §9 for the tolerance policy
// and §14 for the watchdog's use of it.
package gate

import (
	"cmp"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"slices"
	"sort"
	"strings"
	"time"

	"gbpolar/internal/obs"
)

// Schema is the persisted baseline format version.
const Schema = 1

// Tolerance policy: wall-clock stats are real timings with scheduler and
// thermal noise — a generous floor. Event counts and collective stats are
// only weakly deterministic (failed collective attempts are retried after
// a crash and the attempt count depends on goroutine interleaving) — a
// middle floor. Everything else (virtual clocks, imbalance factors,
// recovery rows) is deterministic for a pinned seed and cost model — a
// tight floor that only absorbs fp jitter.
const (
	WallFloor   = 0.30
	SchedFloor  = 0.15
	StrictFloor = 0.005
	SpreadMult  = 3.0
)

// Stat is one tracked stat's distribution over the repetitions.
type Stat struct {
	Median float64 `json:"median"`
	// Spread is the relative run-to-run spread (max−min)/median, the
	// noise estimate the comparison tolerance scales with.
	Spread float64 `json:"spread"`
}

// Baseline is the persisted gate snapshot (results/baseline.json).
type Baseline struct {
	Schema  int    `json:"schema"`
	Created string `json:"created,omitempty"`
	Atoms   int    `json:"atoms"`
	Procs   int    `json:"procs"`
	Reps    int    `json:"reps"`
	Seed    int64  `json:"seed"`
	// Git identifies the commit the baseline was measured at.
	Git   string          `json:"git,omitempty"`
	Stats map[string]Stat `json:"stats"`
}

// Reduce collapses per-repetition stat maps to median + spread per stat.
// Only stats present in every repetition are kept, so a one-off event can
// never install a flaky gate stat.
func Reduce(samples []map[string]float64) map[string]Stat {
	stats := map[string]Stat{}
	if len(samples) == 0 {
		return stats
	}
	for key := range samples[0] {
		vals := make([]float64, 0, len(samples))
		for _, s := range samples {
			v, ok := s[key]
			if !ok {
				vals = nil
				break
			}
			vals = append(vals, v)
		}
		if vals == nil {
			continue
		}
		sort.Float64s(vals)
		med := Median(vals)
		gs := Stat{Median: med}
		if med != 0 {
			gs.Spread = (vals[len(vals)-1] - vals[0]) / math.Abs(med)
		}
		stats[key] = gs
	}
	return stats
}

// Median returns the median of an ascending-sorted slice (0 when empty).
func Median(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Row is one stat's baseline-vs-current verdict.
type Row struct {
	Stat     string  `json:"stat"`
	Base     float64 `json:"base"`
	Cur      float64 `json:"cur"`
	DeltaPct float64 `json:"delta_pct"`
	TolPct   float64 `json:"tol_pct"`
	// Status: "ok", "improved", "REGRESSED", "new" (absent from the
	// baseline), "gone" (absent from the current run). Only REGRESSED
	// fails the gate; new/gone are surfaced for the operator to re-seed.
	Status string `json:"status"`
}

// Tolerance is the noise-aware relative tolerance for one stat: a
// per-class floor plus SpreadMult times the observed run-to-run spread on
// both sides of the comparison.
func Tolerance(stat string, base, cur Stat) float64 {
	floor := StrictFloor
	switch {
	case strings.Contains(stat, "wall"):
		floor = WallFloor
	case stat == "events" || strings.HasPrefix(stat, "collective."):
		floor = SchedFloor
	}
	return math.Max(floor, SpreadMult*(base.Spread+cur.Spread))
}

// Compare judges current against base stat-by-stat. ok is false when any
// tracked stat regressed beyond its tolerance. All tracked stats are
// costs (timings, wait times, imbalance factors, recovery rows) where
// higher is worse, so only upward moves fail.
func Compare(base, current *Baseline) (rows []Row, ok bool) {
	ok = true
	keys := map[string]bool{}
	for k := range base.Stats {
		keys[k] = true
	}
	for k := range current.Stats {
		keys[k] = true
	}
	for k := range keys {
		bs, inBase := base.Stats[k]
		cs, inCur := current.Stats[k]
		row := Row{Stat: k, Base: bs.Median, Cur: cs.Median}
		switch {
		case !inBase:
			row.Status = "new"
		case !inCur:
			row.Status = "gone"
		case bs.Median == 0:
			if cs.Median == 0 {
				row.Status = "ok"
			} else {
				row.Status = "new"
			}
		default:
			row.DeltaPct = 100 * (cs.Median - bs.Median) / bs.Median
			row.TolPct = 100 * Tolerance(k, bs, cs)
			switch {
			case row.DeltaPct > row.TolPct:
				row.Status = "REGRESSED"
				ok = false
			case row.DeltaPct < -row.TolPct:
				row.Status = "improved"
			default:
				row.Status = "ok"
			}
		}
		rows = append(rows, row)
	}
	// Worst offenders first, then biggest movers, then lexical.
	slices.SortFunc(rows, func(a, b Row) int {
		ra, rb := a.Status == "REGRESSED", b.Status == "REGRESSED"
		if ra != rb {
			if ra {
				return -1
			}
			return 1
		}
		if c := cmp.Compare(math.Abs(b.DeltaPct), math.Abs(a.DeltaPct)); c != 0 {
			return c
		}
		return cmp.Compare(a.Stat, b.Stat)
	})
	return rows, ok
}

// Fprint renders the comparison. When verbose is false only non-"ok" rows
// are listed (with a count of the quiet ones).
func Fprint(w io.Writer, rows []Row, verbose bool) error {
	if _, err := fmt.Fprintf(w, "%-34s %12s %12s %9s %8s  %s\n",
		"stat", "base", "current", "delta", "tol", "status"); err != nil {
		return err
	}
	quiet := 0
	for _, r := range rows {
		if !verbose && r.Status == "ok" {
			quiet++
			continue
		}
		if _, err := fmt.Fprintf(w, "%-34s %12.4f %12.4f %+8.2f%% %7.2f%%  %s\n",
			r.Stat, r.Base, r.Cur, r.DeltaPct, r.TolPct, r.Status); err != nil {
			return err
		}
	}
	if quiet > 0 {
		if _, err := fmt.Fprintf(w, "(%d stats within tolerance)\n", quiet); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile persists the baseline as indented JSON, stamping the creation
// time and current commit.
func (b *Baseline) WriteFile(path string) error {
	b.Created = time.Now().UTC().Format(time.RFC3339)
	b.Git = obs.GitDescribe()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBaseline loads a baseline written by WriteFile.
func ReadBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("gate: baseline %s: %w", path, err)
	}
	if b.Schema != Schema {
		return nil, fmt.Errorf("gate: baseline %s: schema %d, want %d (re-seed with -baseline)",
			path, b.Schema, Schema)
	}
	return &b, nil
}
