package bench

import (
	"fmt"
	"math"
	"time"

	"gbpolar/internal/core"
	"gbpolar/internal/geom"
	"gbpolar/internal/mathx"
	"gbpolar/internal/molecule"
	"gbpolar/internal/sched"
)

// paretoEps is the approximation-parameter sweep of `gbbench -exp
// pareto`, bracketing the paper's headline ε = 0.9 from the
// high-accuracy side (the regime the far-order ladder is built for)
// and the loose side. 0.5 is the loosened equal-error operating point:
// FarOrder=2 there lands at or below the FarOrder=0 ε=0.3 error with
// smaller lists and a faster pose.
var paretoEps = []float64{0.1, 0.3, 0.5, 1, 3}

// pareto is the far-order accuracy/cost frontier (`gbbench -exp
// pareto`): every (ε, FarOrder) cell reports the measured E_pol error
// against the exact O(N·M) reference, the compiled far/near list sizes,
// and the warm pose-scan wall time. It is the empirical pin for the
// opening-criterion ladder (core/farorder.go): FarOrder=2 must reach at
// or below the FarOrder=0 ε=0.3 error with materially fewer far entries
// and a wall-time win, and FarOrder=1 must cut the error at unchanged
// lists.
func pareto(cfg Config) ([]*Table, error) {
	cfg = cfg.WithDefaults()
	n := int(4000 * cfg.Scale / 0.02)
	if n < 500 {
		n = 500
	}
	mol := molecule.GenProtein("pareto-frontier", n, cfg.Seed)
	prep, err := prepare(mol, paperParams(mathx.Exact))
	if err != nil {
		return nil, err
	}
	sys := prep.sys
	exact, _ := core.NaiveEnergy(mol, prep.surf, sys.Params.EpsSolv, mathx.Exact)

	pool := sched.NewPool(0)
	defer pool.Close()
	opts := core.SharedOptions{Pool: pool}
	saved := sys.Params
	defer func() { sys.Params = saved }()

	t := &Table{
		ID: "pareto",
		Title: fmt.Sprintf("Far-order frontier: error vs far-list size vs warm pose time (%d atoms, %d q-points)",
			mol.NumAtoms(), prep.surf.NumPoints()),
		Columns: []string{"eps", "FarOrder", "E_pol rel err", "Far entries", "Near entries", "ms/pose (best)", "vs order 0"},
	}

	// Energies for the error column are all taken at the SAME fixed pose
	// (the one the exact reference integrated); the timing loop below
	// re-poses freely — rigid motion preserves the lists and the work.
	type cell struct{ relErr, ms float64 }
	orders := []int{0, 1, 2}
	errs := make(map[[2]int]cell)
	for ei, eps := range paretoEps {
		for _, ord := range orders {
			sys.Params = saved
			sys.Params.EpsBorn, sys.Params.EpsEpol = eps, eps
			sys.Params.FarOrder = ord
			res, err := core.RunShared(sys, opts)
			if err != nil {
				return nil, err
			}
			errs[[2]int{ei, ord}] = cell{relErr: math.Abs(res.Epol-exact) / math.Abs(exact)}
		}
	}

	step := geom.Translate(geom.V(1.5, -0.7, 0.9)).Compose(geom.RotateAxis(geom.V(0, 0, 1), 0.05))
	reps := cfg.Repetitions
	if reps < 3 {
		reps = 3
	}
	for ei, eps := range paretoEps {
		var baseMS float64
		for _, ord := range orders {
			sys.Params = saved
			sys.Params.EpsBorn, sys.Params.EpsEpol = eps, eps
			sys.Params.FarOrder = ord
			if _, err := core.RunShared(sys, opts); err != nil { // compile + warm up this cell
				return nil, err
			}
			lists := sys.Lists(pool)
			far := lists.Born.NumFar() + lists.Epol.NumFar()
			near := lists.Born.NumNear() + lists.Epol.NumNear()
			best := math.Inf(1)
			for rep := 0; rep < reps; rep++ {
				sys.ApplyRigidTransform(step)
				t0 := time.Now()
				if _, err := core.RunShared(sys, opts); err != nil {
					return nil, err
				}
				if ms := float64(time.Since(t0).Microseconds()) / 1000; ms < best {
					best = ms
				}
			}
			if ord == 0 {
				baseMS = best
			}
			c := errs[[2]int{ei, ord}]
			t.AddRow(fmt.Sprintf("%g", eps), ord, fmt.Sprintf("%.2e", c.relErr),
				far, near, fmt.Sprintf("%.3f", best), fmt.Sprintf("%.2fx", baseMS/best))
		}
	}
	t.Notes = append(t.Notes,
		"rel err is against the exact O(N*M) reference at the same pose; far/near entries count both phases' compiled lists",
		"FarOrder=1 corrects every far entry with the source dipole at unchanged lists; FarOrder=2 adds quadrupoles and loosens the Born opening criterion (internal nodes only) by re-spending the base criterion's certified worst-case tail (core/farorder.go)",
		"the E_pol ladder stays flat: its corrections expand the Coulomb limit of f_GB and must not buy admission where the smoothing term is alive; at eps >= 1 that Coulomb-limit model can overcorrect, so orders >= 1 may sit above order 0 there",
		"the headline pair is FarOrder=2 at eps=0.5 vs FarOrder=0 at eps=0.3: at or below the anchor's error with far fewer far entries and a faster warm pose")
	return []*Table{t}, nil
}
