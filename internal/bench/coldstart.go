package bench

import (
	"fmt"
	"math/rand"
	"time"

	"gbpolar/internal/geom"
	"gbpolar/internal/mathx"
	"gbpolar/internal/molecule"
	"gbpolar/internal/octree"
	"gbpolar/internal/sched"
)

// coldstart regenerates the cold-path measurements (DESIGN.md §10): the
// time from raw coordinates to a ready octree under the recursive vs
// Morton builders, and the cost of keeping compiled interaction lists
// valid across small-displacement updates via incremental repair vs a
// full recompile.
func coldstart(cfg Config) ([]*Table, error) {
	cfg = cfg.WithDefaults()
	pool := sched.NewPool(0)
	defer pool.Close()

	// --- Cold build: recursive vs Morton ------------------------------
	t1 := &Table{
		ID:    "coldstart-build",
		Title: "Cold octree construction: recursive vs Morton radix build (best of reps)",
		Columns: []string{"Atoms", "Recursive (ms)", "Morton serial (ms)",
			"Morton pooled (ms)", "Serial speedup", "Pooled speedup"},
	}
	for _, n := range []int{1000, 10000, 100000} {
		mol := molecule.GenProtein(fmt.Sprintf("cold-%d", n), n, cfg.Seed)
		pts := mol.Positions()
		rec := bestBuildMS(pts, octree.Options{}, cfg.Repetitions)
		ser := bestBuildMS(pts, octree.Options{Builder: octree.BuilderMorton}, cfg.Repetitions)
		par := bestBuildMS(pts, octree.Options{Builder: octree.BuilderMorton, Pool: pool}, cfg.Repetitions)
		t1.AddRow(n, rec, ser, par,
			fmt.Sprintf("%.2fx", rec/ser), fmt.Sprintf("%.2fx", rec/par))
	}
	t1.Notes = append(t1.Notes,
		"best-of-reps wall times; both builders produce node-identical trees (TestMortonBuildMatchesRecursive)",
		"pooled numbers depend on available cores — on a single-core host they track the serial column")

	// --- Update repair: incremental list repair vs recompile ----------
	mol := molecule.GenProtein("cold-repair", 5000, cfg.Seed+1)
	params := paperParams(mathx.Exact)
	params.Builder = octree.BuilderMorton
	prep, err := prepare(mol, params)
	if err != nil {
		return nil, err
	}
	prep.sys.Lists(pool)
	t2 := &Table{
		ID:    "coldstart-repair",
		Title: "Interaction-list maintenance after motion: incremental repair vs full recompile (5k atoms)",
		Columns: []string{"Motion (sigma Å)", "Keys moved", "Rows repaired", "Rows total",
			"Repair (ms)", "Recompile (ms)", "Speedup"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	pos := mol.Positions()
	// Two motion regimes: a localized perturbation (a binding-site
	// refinement step — atoms within 6 Å of a site jiggle, the rest hold
	// still) and a global thermal jiggle. The local regime is where the
	// per-entry certificates shine; the global one drifts every node at
	// once and approaches a full recompile (DESIGN.md §10).
	site := pos[0]
	regimes := []struct {
		label string
		local bool
		sigma float64
	}{
		{"local 0.05", true, 0.05},
		{"local 0.2", true, 0.2},
		{"global 0.005", false, 0.005},
	}
	for _, reg := range regimes {
		jig := make([]geom.Vec3, len(pos))
		for i, p := range pos {
			if reg.local && p.Dist(site) >= 6 {
				jig[i] = p
				continue
			}
			jig[i] = p.Add(geom.V(
				rng.NormFloat64()*reg.sigma, rng.NormFloat64()*reg.sigma, rng.NormFloat64()*reg.sigma))
		}
		t0 := time.Now()
		stats, err := prep.sys.UpdateAtomsRepair(jig, pool, nil)
		if err != nil {
			return nil, err
		}
		repairMS := float64(time.Since(t0).Microseconds()) / 1000
		if !stats.Repaired {
			// A rebuild or invalidation: report it honestly rather than
			// comparing a non-repair against a recompile.
			t2.AddRow(reg.label, stats.Moved, "-", "-", repairMS, "-", "rebuilt")
			prep.sys.Lists(pool)
			pos = jig
			continue
		}
		t0 = time.Now()
		prep.sys.InvalidateLists()
		prep.sys.Lists(pool)
		recompileMS := float64(time.Since(t0).Microseconds()) / 1000
		t2.AddRow(reg.label, stats.Moved, stats.RowsRepaired, stats.RowsTotal,
			repairMS, recompileMS, fmt.Sprintf("%.1fx", recompileMS/repairMS))
		pos = jig
	}
	t2.Notes = append(t2.Notes,
		"repair recomputes only rows whose per-entry drift certificates fail; clean rows keep decayed (lower-bound) margins",
		"every repaired list is byte-identical to a fresh compile (RecheckLists in the repair tests)",
		"the certificate scan is serial, so on few cores wall speedup tracks the row savings only loosely; a leaf materialized high in the tree forces rows that descended that node to redo (exactness)")
	return []*Table{t1, t2}, nil
}

// bestBuildMS times reps cold builds of pts under opts and returns the
// fastest, in milliseconds — the standard best-of-N for cold-path wall
// timings, which strips scheduler noise without averaging in outliers.
func bestBuildMS(pts []geom.Vec3, opts octree.Options, reps int) float64 {
	best := 0.0
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		if _, err := octree.Build(pts, opts); err != nil {
			return 0
		}
		d := float64(time.Since(t0).Microseconds()) / 1000
		if i == 0 || d < best {
			best = d
		}
	}
	return best
}
