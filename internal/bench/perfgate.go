package bench

import (
	"cmp"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"slices"
	"sort"
	"strings"
	"time"

	"gbpolar/internal/cluster"
	"gbpolar/internal/core"
	"gbpolar/internal/mathx"
	"gbpolar/internal/molecule"
	"gbpolar/internal/obs"
	"gbpolar/internal/obs/analyze"
	"gbpolar/internal/octree"
)

// This file is the performance regression gate (`gbbench -baseline` /
// `-compare`, `make perfgate`): the fixed gate workload — a traced
// 4-rank resilient run with one injected crash — is measured N times,
// each repetition reduced to the analyzer's summary stats, and the
// per-stat medians snapshotted into results/baseline.json. A compare run
// re-measures and fails when any tracked stat regresses beyond a
// noise-aware relative tolerance: a per-axis floor plus a multiple of
// the observed run-to-run spread on both sides. See DESIGN.md §9 for the
// tolerance policy.

const (
	gateProcs     = 4
	gateSchema    = 1
	gateCrashRank = 1
	gateCrashNth  = 2

	// gateOpsPerSecond pins the cost model instead of calibrating it, so
	// the virtual-axis stats are machine-independent: a baseline written
	// on one host compares cleanly on another, and only the wall-axis
	// stats carry real hardware speed.
	gateOpsPerSecond = 1e9

	// Tolerance policy: wall-clock stats are real timings with scheduler
	// and thermal noise — a generous floor. Event counts and collective
	// stats are only weakly deterministic: failed collective attempts
	// are retried after a crash, and how many attempts (spans) the
	// survivors rack up depends on goroutine interleaving, so a loaded
	// host can shift the trace by a few events and move the wait/xfer
	// attribution between attempts without touching any phase total —
	// a middle floor absorbs that. Everything else (phase virtual
	// clocks, imbalance factors, recovery rows) is deterministic for
	// the pinned seed and cost model — a tight floor that only absorbs
	// fp jitter.
	gateWallFloor   = 0.30
	gateSchedFloor  = 0.15
	gateStrictFloor = 0.005
	gateSpreadMult  = 3.0
)

// GateStat is one tracked stat's distribution over the repetitions.
type GateStat struct {
	Median float64 `json:"median"`
	// Spread is the relative run-to-run spread (max−min)/median, the
	// noise estimate the comparison tolerance scales with.
	Spread float64 `json:"spread"`
}

// Baseline is the persisted gate snapshot (results/baseline.json).
type Baseline struct {
	Schema  int    `json:"schema"`
	Created string `json:"created,omitempty"`
	Atoms   int    `json:"atoms"`
	Procs   int    `json:"procs"`
	Reps    int    `json:"reps"`
	Seed    int64  `json:"seed"`
	// Git identifies the commit the baseline was measured at.
	Git   string              `json:"git,omitempty"`
	Stats map[string]GateStat `json:"stats"`
}

// gateRun executes the gate workload once against a prepared system:
// the 4-rank resilient OCT_MPI replay with rank 1 crashing at its 2nd
// collective, fully traced.
func gateRun(p *prepared, seed int64, o *obs.Obs) error {
	cc := cluster.Config{
		Topology:       cluster.Lonestar4(1),
		Procs:          gateProcs,
		ThreadsPerProc: 1,
		RanksPerNode:   gateProcs,
		OpsPerSecond:   gateOpsPerSecond,
		Seed:           seed,
		Faults: &cluster.FaultPlan{Faults: []cluster.Fault{
			{Kind: cluster.CrashAtCollective, Rank: gateCrashRank, Nth: gateCrashNth},
		}},
		Obs: o,
	}
	_, err := core.RunDistributedResilient(p.sys, cc)
	return err
}

// gatePrepare builds the gate molecule/system once; repetitions reuse it
// so the warm compiled-list path is what the gate times.
func gatePrepare(atoms int, seed int64) (*prepared, error) {
	mol := molecule.GenProtein(fmt.Sprintf("gate-%d", atoms), atoms, seed)
	return prepare(mol, paperParams(mathx.Exact))
}

// gateBuildStats is the "build" measurement class: one cold octree
// construction per builder over the gate molecule's atom positions,
// timed wall-clock. The stat names carry "wall" so the comparison
// applies the generous wall-clock tolerance floor — these are real
// timings, not modeled ones.
func gateBuildStats(p *prepared) (map[string]float64, error) {
	pts := p.mol.Positions()
	out := make(map[string]float64, 2)
	for _, b := range []struct {
		stat    string
		builder octree.Builder
	}{
		{"build.recursive.wall_ms", octree.BuilderRecursive},
		{"build.morton.wall_ms", octree.BuilderMorton},
	} {
		t0 := time.Now()
		if _, err := octree.Build(pts, octree.Options{Builder: b.builder}); err != nil {
			return nil, fmt.Errorf("bench: gate %s: %w", b.stat, err)
		}
		out[b.stat] = float64(time.Since(t0)) / float64(time.Millisecond)
	}
	return out, nil
}

// GateSamples measures the gate workload reps times and returns one
// analyzer summary per repetition, each merged with the cold-build
// stats. The first (warm-up) run is discarded so list compilation and
// pool growth don't pollute the wall stats.
func GateSamples(atoms, reps int, seed int64) ([]map[string]float64, error) {
	p, err := gatePrepare(atoms, seed)
	if err != nil {
		return nil, err
	}
	if err := gateRun(p, seed, nil); err != nil { // warm-up
		return nil, err
	}
	samples := make([]map[string]float64, 0, reps)
	for rep := 0; rep < reps; rep++ {
		o := obs.New()
		if err := gateRun(p, seed, o); err != nil {
			return nil, err
		}
		s := analyze.FromTrace(o.Trace).Summary()
		builds, err := gateBuildStats(p)
		if err != nil {
			return nil, err
		}
		for k, v := range builds {
			s[k] = v
		}
		kernels, err := gateKernelStats(p)
		if err != nil {
			return nil, err
		}
		for k, v := range kernels {
			s[k] = v
		}
		samples = append(samples, s)
	}
	return samples, nil
}

// BuildBaseline reduces per-repetition summaries to median + spread per
// stat. Only stats present in every repetition are tracked, so a
// one-off event can never install a flaky gate stat.
func BuildBaseline(samples []map[string]float64, atoms int, seed int64) *Baseline {
	b := &Baseline{
		Schema: gateSchema,
		Atoms:  atoms, Procs: gateProcs,
		Reps: len(samples), Seed: seed,
		Stats: map[string]GateStat{},
	}
	if len(samples) == 0 {
		return b
	}
	for key := range samples[0] {
		vals := make([]float64, 0, len(samples))
		for _, s := range samples {
			v, ok := s[key]
			if !ok {
				vals = nil
				break
			}
			vals = append(vals, v)
		}
		if vals == nil {
			continue
		}
		sort.Float64s(vals)
		med := median(vals)
		gs := GateStat{Median: med}
		if med != 0 {
			gs.Spread = (vals[len(vals)-1] - vals[0]) / math.Abs(med)
		}
		b.Stats[key] = gs
	}
	return b
}

func median(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// GateRow is one stat's baseline-vs-current verdict.
type GateRow struct {
	Stat     string  `json:"stat"`
	Base     float64 `json:"base"`
	Cur      float64 `json:"cur"`
	DeltaPct float64 `json:"delta_pct"`
	TolPct   float64 `json:"tol_pct"`
	// Status: "ok", "improved", "REGRESSED", "new" (absent from the
	// baseline), "gone" (absent from the current run). Only REGRESSED
	// fails the gate; new/gone are surfaced for the operator to re-seed.
	Status string `json:"status"`
}

// gateTolerance is the noise-aware relative tolerance for one stat:
// a per-class floor plus gateSpreadMult times the observed run-to-run
// spread on both sides of the comparison.
func gateTolerance(stat string, base, cur GateStat) float64 {
	floor := gateStrictFloor
	switch {
	case strings.Contains(stat, "wall"):
		floor = gateWallFloor
	case stat == "events" || strings.HasPrefix(stat, "collective."):
		floor = gateSchedFloor
	}
	return math.Max(floor, gateSpreadMult*(base.Spread+cur.Spread))
}

// CompareBaselines judges current against base stat-by-stat. ok is
// false when any tracked stat regressed beyond its tolerance. All
// tracked stats are costs (timings, wait times, imbalance factors,
// recovery rows) where higher is worse, so only upward moves fail.
func CompareBaselines(base, current *Baseline) (rows []GateRow, ok bool) {
	ok = true
	keys := map[string]bool{}
	for k := range base.Stats {
		keys[k] = true
	}
	for k := range current.Stats {
		keys[k] = true
	}
	for k := range keys {
		bs, inBase := base.Stats[k]
		cs, inCur := current.Stats[k]
		row := GateRow{Stat: k, Base: bs.Median, Cur: cs.Median}
		switch {
		case !inBase:
			row.Status = "new"
		case !inCur:
			row.Status = "gone"
		case bs.Median == 0:
			if cs.Median == 0 {
				row.Status = "ok"
			} else {
				row.Status = "new"
			}
		default:
			row.DeltaPct = 100 * (cs.Median - bs.Median) / bs.Median
			row.TolPct = 100 * gateTolerance(k, bs, cs)
			switch {
			case row.DeltaPct > row.TolPct:
				row.Status = "REGRESSED"
				ok = false
			case row.DeltaPct < -row.TolPct:
				row.Status = "improved"
			default:
				row.Status = "ok"
			}
		}
		rows = append(rows, row)
	}
	// Worst offenders first, then biggest movers, then lexical.
	slices.SortFunc(rows, func(a, b GateRow) int {
		ra, rb := a.Status == "REGRESSED", b.Status == "REGRESSED"
		if ra != rb {
			if ra {
				return -1
			}
			return 1
		}
		if c := cmp.Compare(math.Abs(b.DeltaPct), math.Abs(a.DeltaPct)); c != 0 {
			return c
		}
		return cmp.Compare(a.Stat, b.Stat)
	})
	return rows, ok
}

// FprintGate renders the comparison. When verbose is false only
// non-"ok" rows are listed (with a count of the quiet ones).
func FprintGate(w io.Writer, rows []GateRow, verbose bool) error {
	if _, err := fmt.Fprintf(w, "%-34s %12s %12s %9s %8s  %s\n",
		"stat", "base", "current", "delta", "tol", "status"); err != nil {
		return err
	}
	quiet := 0
	for _, r := range rows {
		if !verbose && r.Status == "ok" {
			quiet++
			continue
		}
		if _, err := fmt.Fprintf(w, "%-34s %12.4f %12.4f %+8.2f%% %7.2f%%  %s\n",
			r.Stat, r.Base, r.Cur, r.DeltaPct, r.TolPct, r.Status); err != nil {
			return err
		}
	}
	if quiet > 0 {
		if _, err := fmt.Fprintf(w, "(%d stats within tolerance)\n", quiet); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile persists the baseline as indented JSON, stamping the
// creation time and current commit.
func (b *Baseline) WriteFile(path string) error {
	b.Created = time.Now().UTC().Format(time.RFC3339)
	b.Git = obs.GitDescribe()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBaseline loads a baseline written by WriteFile.
func ReadBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("bench: baseline %s: %w", path, err)
	}
	if b.Schema != gateSchema {
		return nil, fmt.Errorf("bench: baseline %s: schema %d, want %d (re-seed with -baseline)",
			path, b.Schema, gateSchema)
	}
	return &b, nil
}
