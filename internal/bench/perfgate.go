package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"gbpolar/internal/bench/gate"
	"gbpolar/internal/cluster"
	"gbpolar/internal/core"
	"gbpolar/internal/geom"
	"gbpolar/internal/mathx"
	"gbpolar/internal/molecule"
	"gbpolar/internal/obs"
	"gbpolar/internal/obs/analyze"
	"gbpolar/internal/octree"
)

// This file is the performance regression gate (`gbbench -baseline` /
// `-compare`, `make perfgate`): the fixed gate workload — a traced
// 4-rank resilient run with one injected crash — is measured N times,
// each repetition reduced to the analyzer's summary stats, and the
// per-stat medians snapshotted into results/baseline.json. A compare run
// re-measures and fails when any tracked stat regresses beyond a
// noise-aware relative tolerance: a per-axis floor plus a multiple of
// the observed run-to-run spread on both sides. The statistical core
// (median/spread reduction, tolerance policy, comparison) lives in
// internal/bench/gate so the live anomaly watchdog (internal/obs/watch)
// shares it; this file keeps the gate workload itself. See DESIGN.md §9.

const (
	gateProcs     = 4
	gateCrashRank = 1
	gateCrashNth  = 2

	// gateOpsPerSecond pins the cost model instead of calibrating it, so
	// the virtual-axis stats are machine-independent: a baseline written
	// on one host compares cleanly on another, and only the wall-axis
	// stats carry real hardware speed.
	gateOpsPerSecond = 1e9
)

// GateStat re-exports the gate package's per-stat distribution.
type GateStat = gate.Stat

// Baseline re-exports the persisted gate snapshot (results/baseline.json).
type Baseline = gate.Baseline

// GateRow re-exports one stat's baseline-vs-current verdict.
type GateRow = gate.Row

// CompareBaselines judges current against base stat-by-stat (see
// gate.Compare).
func CompareBaselines(base, current *Baseline) (rows []GateRow, ok bool) {
	return gate.Compare(base, current)
}

// FprintGate renders the comparison (see gate.Fprint).
func FprintGate(w io.Writer, rows []GateRow, verbose bool) error {
	return gate.Fprint(w, rows, verbose)
}

// ReadBaseline loads a baseline written by Baseline.WriteFile.
func ReadBaseline(path string) (*Baseline, error) { return gate.ReadBaseline(path) }

// gateRun executes the gate workload once against a prepared system:
// the 4-rank resilient OCT_MPI replay with rank 1 crashing at its 2nd
// collective, fully traced.
func gateRun(p *prepared, seed int64, o *obs.Obs) error {
	cc := cluster.Config{
		Topology:       cluster.Lonestar4(1),
		Procs:          gateProcs,
		ThreadsPerProc: 1,
		RanksPerNode:   gateProcs,
		OpsPerSecond:   gateOpsPerSecond,
		Seed:           seed,
		Faults: &cluster.FaultPlan{Faults: []cluster.Fault{
			{Kind: cluster.CrashAtCollective, Rank: gateCrashRank, Nth: gateCrashNth},
		}},
		Obs: o,
	}
	_, err := core.RunDistributedResilient(p.sys, cc)
	return err
}

// gatePrepare builds the gate molecule/system once; repetitions reuse it
// so the warm compiled-list path is what the gate times.
func gatePrepare(atoms int, seed int64) (*prepared, error) {
	mol := molecule.GenProtein(fmt.Sprintf("gate-%d", atoms), atoms, seed)
	return prepare(mol, paperParams(mathx.Exact))
}

// gateBuildStats is the "build" measurement class: one cold octree
// construction per builder over the gate molecule's atom positions,
// timed wall-clock. The stat names carry "wall" so the comparison
// applies the generous wall-clock tolerance floor — these are real
// timings, not modeled ones.
func gateBuildStats(p *prepared) (map[string]float64, error) {
	pts := p.mol.Positions()
	out := make(map[string]float64, 2)
	for _, b := range []struct {
		stat    string
		builder octree.Builder
	}{
		{"build.recursive.wall_ms", octree.BuilderRecursive},
		{"build.morton.wall_ms", octree.BuilderMorton},
	} {
		t0 := time.Now()
		if _, err := octree.Build(pts, octree.Options{Builder: b.builder}); err != nil {
			return nil, fmt.Errorf("bench: gate %s: %w", b.stat, err)
		}
		out[b.stat] = float64(time.Since(t0)) / float64(time.Millisecond)
	}
	return out, nil
}

// GateSamples measures the gate workload reps times and returns one
// analyzer summary per repetition, each merged with the cold-build
// stats. The first (warm-up) run is discarded so list compilation and
// pool growth don't pollute the wall stats.
func GateSamples(atoms, reps int, seed int64) ([]map[string]float64, error) {
	p, err := gatePrepare(atoms, seed)
	if err != nil {
		return nil, err
	}
	if err := gateRun(p, seed, nil); err != nil { // warm-up
		return nil, err
	}
	samples := make([]map[string]float64, 0, reps)
	for rep := 0; rep < reps; rep++ {
		o := obs.New()
		if err := gateRun(p, seed, o); err != nil {
			return nil, err
		}
		s := analyze.FromTrace(o.Trace).Summary()
		builds, err := gateBuildStats(p)
		if err != nil {
			return nil, err
		}
		for k, v := range builds {
			s[k] = v
		}
		kernels, err := gateKernelStats(p)
		if err != nil {
			return nil, err
		}
		for k, v := range kernels {
			s[k] = v
		}
		fars, err := gateFarStats(p)
		if err != nil {
			return nil, err
		}
		for k, v := range fars {
			s[k] = v
		}
		samples = append(samples, s)
	}
	return samples, nil
}

// gateFarStats is the "far" perfgate measurement class: the warm pose
// scan of the gate molecule at each far-field multipole order, best-of-2
// per-pose wall milliseconds. It keeps the order-0 path honest (the
// ladder branch in bornRow must stay off the FarOrder=0 fast path) and
// pins the correction kernels' cost at orders 1 and 2. Stat names carry
// "wall" so the comparison applies the wall-clock tolerance floor.
func gateFarStats(p *prepared) (map[string]float64, error) {
	sys := p.sys
	saved := sys.Params
	defer func() { sys.Params = saved }()
	step := geom.Translate(geom.V(0.9, 0.4, -1.1)).Compose(geom.RotateAxis(geom.V(1, 1, 0), 0.04))
	out := make(map[string]float64, 3)
	for ord := 0; ord <= 2; ord++ {
		sys.Params = saved
		sys.Params.FarOrder = ord
		if _, err := core.RunShared(sys, core.SharedOptions{}); err != nil { // order warm-up (recompiles lists)
			return nil, err
		}
		best := math.Inf(1)
		for rep := 0; rep < 2; rep++ {
			sys.ApplyRigidTransform(step)
			t0 := time.Now()
			if _, err := core.RunShared(sys, core.SharedOptions{}); err != nil {
				return nil, err
			}
			if ms := float64(time.Since(t0)) / float64(time.Millisecond); ms < best {
				best = ms
			}
		}
		out[fmt.Sprintf("far.p%d.wall_ms", ord)] = best
	}
	return out, nil
}

// BuildBaseline reduces per-repetition summaries to median + spread per
// stat (see gate.Reduce) and stamps the gate workload's shape.
func BuildBaseline(samples []map[string]float64, atoms int, seed int64) *Baseline {
	return &Baseline{
		Schema: gate.Schema,
		Atoms:  atoms, Procs: gateProcs,
		Reps: len(samples), Seed: seed,
		Stats: gate.Reduce(samples),
	}
}
