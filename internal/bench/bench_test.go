package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// tinyCfg keeps the experiment tests fast: ≈1k-atom shells, 3-molecule
// suite, 2 repetitions.
func tinyCfg() Config {
	return Config{Seed: 5, Scale: 0.002, SuiteStride: 40, Repetitions: 2}
}

func TestRegistryCoversEveryFigure(t *testing.T) {
	want := []string{"tableI", "tableII", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "extensions", "obs", "coldstart", "lanes", "pareto"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
	}
	if _, err := ByID("fig7"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "x", Title: "test", Columns: []string{"A", "B"}}
	tab.AddRow("hello", 3.14159)
	tab.AddRow(42, "with,comma")
	var buf bytes.Buffer
	if err := tab.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "hello") || !strings.Contains(out, "3.1416") {
		t.Errorf("text output missing cells:\n%s", out)
	}
	buf.Reset()
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"with,comma"`) {
		t.Errorf("CSV did not quote comma cell:\n%s", buf.String())
	}
}

func TestTablesIAndII(t *testing.T) {
	for _, id := range []string{"tableI", "tableII"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tabs, err := e.Run(tinyCfg())
		if err != nil {
			t.Fatal(err)
		}
		if len(tabs) != 1 || len(tabs[0].Rows) == 0 {
			t.Errorf("%s: empty output", id)
		}
	}
}

func TestFig5SpeedupMonotone(t *testing.T) {
	tabs, err := fig5(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := tabs[0].Rows
	if len(rows) != len(coreCounts()) {
		t.Fatalf("fig5 has %d rows", len(rows))
	}
	// First row is the 12-core baseline: speedup 1.
	var s0 float64
	fmt.Sscanf(rows[0][2], "%g", &s0)
	if s0 != 1 {
		t.Errorf("12-core speedup %v, want 1", s0)
	}
	// Speedup at 144 cores exceeds speedup at 12.
	var s144 float64
	fmt.Sscanf(rows[4][2], "%g", &s144)
	if s144 <= 1.5 {
		t.Errorf("144-core OCT_MPI speedup %v, want > 1.5", s144)
	}
}

func TestFig6MinLEMaxAndMemoryRatio(t *testing.T) {
	tabs, err := fig6(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("fig6 returned %d tables", len(tabs))
	}
	for _, row := range tabs[0].Rows {
		var mn, mx float64
		fmt.Sscanf(row[1], "%g", &mn)
		fmt.Sscanf(row[2], "%g", &mx)
		if mn > mx {
			t.Errorf("OCT_MPI min %v > max %v", mn, mx)
		}
	}
	// Memory ratio ≈ 6 on every row (12 ranks/node vs 2 ranks/node).
	for _, row := range tabs[1].Rows {
		var ratio float64
		fmt.Sscanf(row[3], "%g", &ratio)
		if ratio < 5.5 || ratio > 6.5 {
			t.Errorf("memory ratio %v, want ≈6", ratio)
		}
	}
}

func TestFig7RowsSorted(t *testing.T) {
	tabs, err := fig7(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := tabs[0].Rows
	if len(rows) < 3 {
		t.Fatalf("fig7 has %d rows", len(rows))
	}
	prev := -1.0
	for _, r := range rows {
		var v float64
		fmt.Sscanf(r[2], "%g", &v)
		if v < prev {
			t.Fatalf("fig7 rows not sorted by OCT_CILK time")
		}
		prev = v
	}
}

func TestFig8OctreeBeatsBaselines(t *testing.T) {
	tabs, err := fig8(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[1] // speedups vs Amber
	// Columns: Molecule, Atoms, Gromacs, NAMD, Amber, Tinker, GBr6,
	// OCT_CILK, OCT_MPI, OCT_MPI+CILK.
	hdr := tb.Columns
	col := func(name string) int {
		for i, c := range hdr {
			if c == name {
				return i
			}
		}
		t.Fatalf("no column %q", name)
		return -1
	}
	var prev float64
	for _, row := range tb.Rows {
		var octMPI, amber, atoms float64
		fmt.Sscanf(row[1], "%g", &atoms)
		fmt.Sscanf(row[col("OCT_MPI")], "%g", &octMPI)
		fmt.Sscanf(row[col("Amber 12")], "%g", &amber)
		if amber != 1 {
			t.Errorf("Amber speedup vs itself = %v", amber)
		}
		// The paper's Figure 8(b) shape: the octree's advantage grows
		// with molecule size; above a few thousand atoms it clearly wins.
		if atoms >= 2500 && octMPI <= 1 {
			t.Errorf("OCT_MPI speedup %v not above 1 at %v atoms (%s)", octMPI, atoms, row[0])
		}
		if octMPI < prev*0.5 {
			t.Errorf("OCT_MPI speedup collapsed with size: %v after %v", octMPI, prev)
		}
		prev = octMPI
	}
}

func TestFig9EnergiesTrackNaiveForOctree(t *testing.T) {
	tabs, err := fig9(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	hdr := tabs[0].Columns
	col := func(name string) int {
		for i, c := range hdr {
			if c == name {
				return i
			}
		}
		return -1
	}
	for _, row := range tabs[0].Rows {
		var naive, oct float64
		fmt.Sscanf(row[col("Naive")], "%g", &naive)
		fmt.Sscanf(row[col("OCT_MPI")], "%g", &oct)
		if naive >= 0 {
			t.Errorf("naive energy %v not negative", naive)
		}
		if rel := (oct - naive) / naive; rel > 0.08 || rel < -0.08 {
			t.Errorf("OCT_MPI energy %v deviates >8%% from naive %v", oct, naive)
		}
	}
}

func TestFig10ErrorGrowsTimeFalls(t *testing.T) {
	cfg := tinyCfg()
	tabs, err := fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := tabs[0].Rows
	if len(rows) != 9 {
		t.Fatalf("fig10 has %d rows", len(rows))
	}
	var err01, err09, t01, t09 float64
	fmt.Sscanf(rows[0][1], "%g", &err01)
	fmt.Sscanf(rows[8][1], "%g", &err09)
	fmt.Sscanf(rows[0][3], "%g", &t01)
	fmt.Sscanf(rows[8][3], "%g", &t09)
	if abs(err01) > abs(err09)+0.5 {
		t.Errorf("error at eps=0.1 (%v%%) larger than at 0.9 (%v%%)", err01, err09)
	}
	if t09 > t01 {
		t.Errorf("time at eps=0.9 (%v) above time at 0.1 (%v)", t09, t01)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestFig11ShapeMatchesPaper(t *testing.T) {
	// Below ~2k atoms the 1 ms MPI startup dominates every program and
	// the octree's advantage vanishes (the paper's own small-molecule
	// regime); test the shape at a size where the algorithms matter.
	cfg := tinyCfg()
	cfg.Scale = 0.008 // ≈4k-atom CMV analogue
	tabs, err := fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	byProg := map[string][]string{}
	for _, row := range tab.Rows {
		byProg[row[0]] = row
	}
	var amber12, oct12, oct144 float64
	fmt.Sscanf(byProg["Amber 12"][1], "%g", &amber12)
	fmt.Sscanf(byProg["OCT_MPI"][1], "%g", &oct12)
	fmt.Sscanf(byProg["OCT_MPI"][2], "%g", &oct144)
	if !(oct12 < amber12) {
		t.Errorf("OCT_MPI (%v) not faster than Amber (%v) at 12 cores", oct12, amber12)
	}
	if !(oct144 < oct12) {
		t.Errorf("OCT_MPI at 144 cores (%v) not faster than at 12 (%v)", oct144, oct12)
	}
	// Octree error vs naive below 1% in magnitude (paper: <1%).
	var diff float64
	fmt.Sscanf(byProg["OCT_MPI"][6], "%g", &diff)
	if abs(diff) > 2.0 {
		t.Errorf("OCT_MPI %% diff with naive = %v, want within ±2", diff)
	}
}

func TestTableWriteJSON(t *testing.T) {
	tab := &Table{ID: "x", Title: "test", Columns: []string{"A", "B"}, Notes: []string{"n"}}
	tab.AddRow("hello", 1.5)
	var buf bytes.Buffer
	if err := tab.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		ID      string     `json:"id"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != "x" || len(got.Columns) != 2 || len(got.Rows) != 1 || len(got.Notes) != 1 {
		t.Errorf("bad JSON round-trip: %+v", got)
	}
}

func TestObsOverheadExperiment(t *testing.T) {
	cfg := tinyCfg()
	cfg.Repetitions = 1
	tabs, err := obsOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 1 || len(tabs[0].Rows) != 4 {
		t.Fatalf("obs experiment shape: %d tables", len(tabs))
	}
	if tabs[0].Report == nil {
		t.Error("obs experiment did not attach the cluster report")
	}
	// The enabled resilient run must have captured the injected crash.
	var events int
	fmt.Sscanf(tabs[0].Rows[1][4], "%d", &events)
	if events < 10 {
		t.Errorf("resilient timeline captured only %d events", events)
	}
}

func TestParetoExperiment(t *testing.T) {
	cfg := tinyCfg()
	cfg.Repetitions = 1 // the runner floors timing reps at 3
	tabs, err := pareto(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 1 {
		t.Fatalf("pareto returned %d tables", len(tabs))
	}
	rows := tabs[0].Rows
	if len(rows) != 3*len(paretoEps) {
		t.Fatalf("pareto has %d rows, want %d", len(rows), 3*len(paretoEps))
	}
	// FarOrder=1 is the pinned accuracy rung: it corrects every far
	// entry but must not change the compiled lists, so its far/near
	// counts match order 0 within each eps block.
	for b := 0; b < len(rows); b += 3 {
		if rows[b][3] != rows[b+1][3] || rows[b][4] != rows[b+1][4] {
			t.Errorf("eps=%s: order-1 lists (%s far/%s near) differ from order 0 (%s/%s)",
				rows[b][0], rows[b+1][3], rows[b+1][4], rows[b][3], rows[b][4])
		}
		var far0, far2 int
		fmt.Sscanf(rows[b][3], "%d", &far0)
		fmt.Sscanf(rows[b+2][3], "%d", &far2)
		if far2 > far0 {
			t.Errorf("eps=%s: order-2 far list grew (%d > %d)", rows[b][0], far2, far0)
		}
	}
}

func TestExtensionsExperiment(t *testing.T) {
	cfg := tinyCfg()
	cfg.Repetitions = 1
	tabs, err := extensions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("extensions returned %d tables", len(tabs))
	}
	if len(tabs[0].Rows) != 4 || len(tabs[1].Rows) != 4 || len(tabs[2].Rows) != 5 {
		t.Errorf("row counts: %d, %d, %d", len(tabs[0].Rows), len(tabs[1].Rows), len(tabs[2].Rows))
	}
}
