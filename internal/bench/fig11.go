package bench

import (
	"errors"
	"fmt"

	"gbpolar/internal/baselines"
	"gbpolar/internal/core"
	"gbpolar/internal/mathx"
	"gbpolar/internal/molecule"
	"gbpolar/internal/stats"
)

// fig11 reproduces the paper's Figure 11 table: the CMV shell on 12 and
// 144 cores for OCT_CILK / Amber / OCT_MPI+CILK / OCT_MPI, with speedups
// w.r.t. Amber and % difference from the naive energy. Tinker and GBr⁶
// are also attempted to reproduce their out-of-memory failures
// (Section V.F).
func fig11(cfg Config) ([]*Table, error) {
	cfg = cfg.WithDefaults()
	mol := molecule.CMVAnalogue(cfg.Scale, cfg.Seed)
	prep, err := prepare(mol, paperParams(mathx.Exact))
	if err != nil {
		return nil, err
	}
	naiveE, _ := core.NaiveEnergy(mol, prep.surf, 80, mathx.Exact)
	m := float64(mol.NumAtoms())
	naiveOps := m*float64(prep.surf.NumPoints()) + m*m

	t := &Table{
		ID: "fig11",
		Title: fmt.Sprintf("Scalability on a large molecule: %s (%d atoms, %d q-points)",
			mol.Name, mol.NumAtoms(), prep.surf.NumPoints()),
		Columns: []string{"Program", "12 cores (s)", "144 cores (s)",
			"Speedup vs Amber (12)", "Speedup vs Amber (144)",
			"Energy (kcal/mol)", "% diff with Naive"},
	}

	amber12, err := baselines.Amber.Run(mol, baselines.Options{Cores: 12, OpsPerSecond: cfg.OpsPerSecond})
	if err != nil {
		return nil, err
	}
	amber144, err := baselines.Amber.Run(mol, baselines.Options{Cores: 144, OpsPerSecond: cfg.OpsPerSecond})
	if err != nil {
		return nil, err
	}

	cilk, err := runOctCILK(prep, coresPerNode, cfg)
	if err != nil {
		return nil, err
	}
	t.AddRow(progOctCILK, cilk.ModelSeconds, "X",
		speedup(amber12.ModelSeconds, cilk.ModelSeconds), "X",
		cilk.Epol, stats.PercentError(cilk.Epol, naiveE))

	t.AddRow("Amber 12", amber12.ModelSeconds, amber144.ModelSeconds, 1.0, 1.0,
		amber12.Epol, stats.PercentError(amber12.Epol, naiveE))

	for _, hy := range []bool{true, false} {
		name := progOctMPI
		if hy {
			name = progOctHyb
		}
		r12, err := runOctMPI(prep, 12, hy, cfg, cfg.Seed)
		if err != nil {
			return nil, err
		}
		r144, err := runOctMPI(prep, 144, hy, cfg, cfg.Seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, r12.ModelSeconds, r144.ModelSeconds,
			speedup(amber12.ModelSeconds, r12.ModelSeconds),
			speedup(amber144.ModelSeconds, r144.ModelSeconds),
			r12.Epol, stats.PercentError(r12.Epol, naiveE))
	}

	t.AddRow("Naive (1 core)", naiveOps/cfg.OpsPerSecond, "X", "-", "-", naiveE, 0.0)

	// The paper: GBr6 and Tinker run out of memory on CMV; Gromacs/NAMD
	// only run with unreasonably small cutoffs.
	for _, p := range []*baselines.Pkg{baselines.Tinker, baselines.GBr6} {
		if _, err := p.Run(mol, baselines.Options{Cores: 12, OpsPerSecond: cfg.OpsPerSecond}); err != nil {
			if errors.Is(err, baselines.ErrAtomLimit) {
				t.Notes = append(t.Notes, fmt.Sprintf("%s: out of memory on %d atoms (as in the paper)",
					p.Spec.Name, mol.NumAtoms()))
				continue
			}
			return nil, err
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: ran (molecule below its capacity at scale %.3g)",
			p.Spec.Name, cfg.Scale))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"CMV analogue at scale %.4g of the paper's 509,640 atoms; use -scale 1 for the full size", cfg.Scale))
	return []*Table{t}, nil
}
